package sdl

// One testing.B benchmark per experiment (E1–E12). The paper reports no
// measured tables, so these regenerate its worked examples and performance
// claims; the full parameter sweeps live in cmd/sdlbench. Each benchmark
// iteration runs one complete experiment configuration, so ns/op is the
// end-to-end time of that configuration.

import (
	"context"
	"fmt"
	"testing"

	"github.com/sdl-lang/sdl/internal/bench"
)

func benchExperiment(b *testing.B, run func(ctx context.Context) error) {
	b.Helper()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1ArraySumSum1(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E1ArraySum(ctx, []int{64})
		return err
	})
}

func BenchmarkE1ArraySumAllVariants(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E1ArraySum(ctx, []int{16, 64})
		return err
	})
}

func BenchmarkE2PropertyList(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E2PropertyList(ctx, []int{256})
		return err
	})
}

func BenchmarkE3SortConsensus(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E3SortConsensus(ctx, []int{16})
		return err
	})
}

func BenchmarkE4RegionLabel(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E4RegionLabel(ctx, []int{12})
		return err
	})
}

func BenchmarkE5ViewScoping(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E5ViewScoping(ctx, []int{10000})
		return err
	})
}

func BenchmarkE6ConsensusScale(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E6ConsensusScale(ctx, []int{64})
		return err
	})
}

func BenchmarkE7LindaVsSDL(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E7LindaVsSDL(ctx, []int{4})
		return err
	})
}

func BenchmarkE8SocietyScale(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E8SocietyScale(ctx, []int{1000})
		return err
	})
}

func BenchmarkE9ConcurrencyControl(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E9ConcurrencyControl(ctx, []int{8})
		return err
	})
}

func BenchmarkE10WakeupIndex(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E10WakeupIndex(ctx, []int{100})
		return err
	})
}

func BenchmarkE11JoinPlanner(b *testing.B) {
	benchExperiment(b, func(ctx context.Context) error {
		_, err := bench.E11JoinPlanner(ctx, []int{1000})
		return err
	})
}

// BenchmarkE12ShardScaling runs the keyed RMW workload once per iteration
// at each shard count; compare the sub-benchmarks' ns/op to see the
// per-shard-lock scaling (flat at GOMAXPROCS=1, diverging with cores).
func BenchmarkE12ShardScaling(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchExperiment(b, func(context.Context) error {
				return bench.ShardedRMW(shards, 1024)
			})
		})
	}
}

// BenchmarkE13CommutingUpserts runs the disjoint-key upsert workload once
// per iteration, with the commutativity-aware commit path (key latches +
// group commit) on or off at each shard count. Compare commute=true against
// commute=false at the same shard count for the commit-path speedup;
// divergence requires hardware parallelism (flat at GOMAXPROCS=1).
func BenchmarkE13CommutingUpserts(b *testing.B) {
	for _, shards := range []int{1, 8} {
		for _, commuting := range []bool{false, true} {
			b.Run(fmt.Sprintf("shards=%d/commute=%v", shards, commuting), func(b *testing.B) {
				benchExperiment(b, func(context.Context) error {
					return bench.CommutingUpserts(shards, commuting)
				})
			})
		}
	}
}

// BenchmarkE15RefinedAdmission runs the view-restricted disjoint-key upsert
// workload once per iteration, with the footprint class the interprocedural
// refiner proves (refined=true, the key-latch path) or the unrefined
// default (refined=false, every commit under the full lock set). The
// admission split is deterministic; the throughput gap needs hardware
// parallelism, like E13.
func BenchmarkE15RefinedAdmission(b *testing.B) {
	for _, refined := range []bool{false, true} {
		b.Run(fmt.Sprintf("refined=%v", refined), func(b *testing.B) {
			benchExperiment(b, func(context.Context) error {
				return bench.RefinedUpserts(refined)
			})
		})
	}
}

// BenchmarkE16ReactiveWakeups runs the shared-bucket wakeup workload once
// per iteration: P waiters blocked on delta-safe constant guards while 300
// unrelated commits land in their index bucket, then one batched release.
// With reactive=true the publisher-side delta filters suppress every noise
// wakeup; reactive=false re-evaluates all P guards per noise commit.
func BenchmarkE16ReactiveWakeups(b *testing.B) {
	for _, waiters := range []int{50, 200} {
		for _, reactive := range []bool{false, true} {
			b.Run(fmt.Sprintf("waiters=%d/reactive=%v", waiters, reactive), func(b *testing.B) {
				benchExperiment(b, func(ctx context.Context) error {
					return bench.ReactiveWakeups(ctx, waiters, reactive)
				})
			})
		}
	}
}

// BenchmarkE17SecondaryIndex runs the field-addressed lookup workload once
// per iteration: n records keyed by a non-lead group field, then ∀ group
// fetches and two-leg joins that address them by that field. With
// secondary=true the scanned shape promotes an adaptive field index and
// lookups visit only its value buckets; secondary=false walks the arity
// population.
func BenchmarkE17SecondaryIndex(b *testing.B) {
	for _, n := range []int{20000} {
		for _, secondary := range []bool{false, true} {
			b.Run(fmt.Sprintf("n=%d/secondary=%v", n, secondary), func(b *testing.B) {
				benchExperiment(b, func(context.Context) error {
					return bench.SecondaryLookups(n, secondary)
				})
			})
		}
	}
}
