// Command benchgate is the CI performance-regression gate. It compares a
// freshly measured BENCH_<rev>.json (written by sdlbench -json, in the
// github-action-benchmark data.js shape) against a committed baseline run
// and exits nonzero when any gated metric regressed by more than the
// threshold — by default 30% on the E1/E9/E12/E13/E14/E15/E16/E17 series, wide enough to
// ride out shared-runner noise while still catching a 2x cliff.
//
// Metric direction is taken from each bench entry's unit (kops/s up is
// good, ms and locks/op down is good), so the gate handles throughput and
// latency series alike. Metrics present in only one of the two files are
// reported but never fail the gate (sweep shapes may evolve).
//
// Usage:
//
//	benchgate -new BENCH_ci.json [-threshold 0.30] [-experiments E1,E9,E12] baseline.json...
//
// Multiple baseline candidates may be given (e.g. a BENCH_*.json glob); the
// most recent run among them — excluding the -new file itself — is the
// baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/sdl-lang/sdl/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		newPath   = fs.String("new", "", "freshly measured BENCH_<rev>.json (required)")
		threshold = fs.Float64("threshold", 0.30, "maximum tolerated fractional regression")
		expList   = fs.String("experiments", "E1,E9,E12,E13,E14,E15,E16,E17", "comma-separated gated experiment ids")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *newPath == "" {
		return fmt.Errorf("-new is required")
	}
	gated := map[string]bool{}
	for _, id := range strings.Split(*expList, ",") {
		gated[strings.ToUpper(strings.TrimSpace(id))] = true
	}

	fresh, err := readRun(*newPath)
	if err != nil {
		return fmt.Errorf("new run: %w", err)
	}
	base, basePath, err := pickBaseline(fs.Args(), *newPath)
	if err != nil {
		return err
	}
	fmt.Printf("benchgate: %s (rev %s) vs baseline %s (rev %s)\n",
		*newPath, fresh.Commit.ID, basePath, base.Commit.ID)

	baseline := make(map[string]bench.BenchEntry, len(base.Benches))
	for _, b := range base.Benches {
		baseline[b.Name] = b
	}
	var failures []string
	compared := 0
	for _, b := range fresh.Benches {
		id, _, _ := strings.Cut(b.Name, " ")
		if !gated[strings.ToUpper(id)] {
			continue
		}
		old, ok := baseline[b.Name]
		if !ok {
			fmt.Printf("  new metric (not gated): %s = %.3g %s\n", b.Name, b.Value, b.Unit)
			continue
		}
		compared++
		reg := regression(old.Value, b.Value, bench.BiggerIsBetter(b.Unit))
		if reg > *threshold {
			failures = append(failures, fmt.Sprintf(
				"%s: %.3g -> %.3g %s (%.0f%% regression, threshold %.0f%%)",
				b.Name, old.Value, b.Value, b.Unit, reg*100, *threshold*100))
		}
	}
	if compared == 0 {
		return fmt.Errorf("no gated metrics in common between %s and %s", *newPath, basePath)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: REGRESSION "+f)
		}
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", len(failures), *threshold*100)
	}
	fmt.Printf("benchgate: OK — %d gated metrics within %.0f%%\n", compared, *threshold*100)
	return nil
}

// regression returns the fractional worsening from old to new given the
// metric's improvement direction; improvements and zero baselines yield 0.
func regression(old, new float64, biggerIsBetter bool) float64 {
	if old == 0 {
		return 0
	}
	if biggerIsBetter {
		return (old - new) / old
	}
	return (new - old) / old
}

// readRun loads the latest run from one trajectory file.
func readRun(path string) (bench.BenchRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.BenchRun{}, err
	}
	defer f.Close()
	run, err := bench.ReadTrajectory(f)
	if err != nil {
		return bench.BenchRun{}, fmt.Errorf("%s: %w", path, err)
	}
	return run, nil
}

// pickBaseline selects the most recent run among the candidate paths,
// skipping the new file itself and unreadable candidates.
func pickBaseline(candidates []string, newPath string) (bench.BenchRun, string, error) {
	newAbs, _ := filepath.Abs(newPath)
	var (
		best     bench.BenchRun
		bestPath string
	)
	for _, path := range candidates {
		abs, _ := filepath.Abs(path)
		if abs == newAbs {
			continue
		}
		run, err := readRun(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: skipping baseline candidate %s: %v\n", path, err)
			continue
		}
		if bestPath == "" || run.Date > best.Date {
			best, bestPath = run, path
		}
	}
	if bestPath == "" {
		return bench.BenchRun{}, "", fmt.Errorf("no usable baseline among %v", candidates)
	}
	return best, bestPath, nil
}
