package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn, draining the pipe
// concurrently so large outputs cannot deadlock the writer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- string(data)
	}()
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	return <-outCh, runErr
}

func TestRunList(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"barrier", "sum1", "micro-upsert", "micro-parallel", "micro-fair"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestRunCleanCampaign(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-seeds", "2", "-program", "micro-upsert"})
	})
	if err != nil {
		t.Fatalf("clean campaign failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "explored 2 runs") || !strings.Contains(out, "0 failure(s)") {
		t.Errorf("campaign summary:\n%s", out)
	}
}

func TestRunSingleSeedReplay(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-seed", "5", "-limit", "50", "-program", "micro-upsert"})
	})
	if err != nil {
		t.Fatalf("replay failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok   micro-upsert seed=5 limit=50") {
		t.Errorf("replay output:\n%s", out)
	}
}

// TestRunBugCampaignCatchesAndReplays is the CLI-level teeth check: -bug
// must surface a shrunk serializability failure whose printed replay pair
// reproduces it.
func TestRunBugCampaignCatchesAndReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("bug campaign skipped in -short")
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-bug", "-seeds", "30", "-program", "micro-parallel", "-trace"})
	})
	if err == nil {
		t.Fatalf("injected bug not caught:\n%s", out)
	}
	for _, want := range []string{"serializability", "shrunk to", "replay: sdlexplore -program micro-parallel -seed"} {
		if !strings.Contains(out, want) {
			t.Errorf("bug report missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-faults", "bogus"},
		{"-mode", "bogus"},
		{"-program", "no-such-program"},
		{"-seed", "1", "-limit", "5"}, // -limit replay without -program
	}
	for i, args := range cases {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
