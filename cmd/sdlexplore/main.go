// Command sdlexplore drives the schedule-exploration harness: it runs the
// SDL example corpus (plus targeted micro-programs) across many seeds
// under a deterministic fault-injecting scheduler, replays every commit
// log through the reference model for serializability, and shrinks any
// failing seed to a minimal replayable decision budget.
//
// Usage:
//
//	sdlexplore [flags]
//
// Flags:
//
//	-seeds n        seeds to explore per program (default 100)
//	-start-seed n   first seed (default 0)
//	-seed n         replay exactly one seed (implies -seeds 1 -start-seed n)
//	-limit n        bound the active decisions when replaying (-1 = all);
//	                use the budget printed by a shrunk failure
//	-program name   restrict to one corpus program (see -list)
//	-faults p       fault profile: off, light (default), or heavy
//	-bug            enable the test-only racy-version ordering bug (proves
//	                the harness catches and shrinks real violations)
//	-shards n       fix the shard count (0 = derive from each seed)
//	-mode m         fix the mode: coarse or optimistic ("" = derive)
//	-timeout d      per-run timeout (default 30s)
//	-trace          print the decision trace of failing runs
//	-list           list the corpus programs and exit
//
// Any failure prints a replay command with its seed and shrunk decision
// budget; the same seed always re-derives the same decision stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/sched/explore"
	"github.com/sdl-lang/sdl/internal/txn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdlexplore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdlexplore", flag.ContinueOnError)
	var (
		seeds     = fs.Int("seeds", 100, "seeds to explore per program")
		startSeed = fs.Uint64("start-seed", 0, "first seed")
		oneSeed   = fs.Int64("seed", -1, "replay exactly this seed (overrides -seeds/-start-seed)")
		limit     = fs.Int64("limit", -1, "active-decision budget for replay (-1 = unlimited)")
		program   = fs.String("program", "", "restrict to one corpus program")
		faults    = fs.String("faults", "light", "fault profile: off, light, or heavy")
		bug       = fs.Bool("bug", false, "enable the test-only racy-version ordering bug")
		shards    = fs.Int("shards", 0, "fix the shard count (0 = derive from each seed)")
		modeName  = fs.String("mode", "", "fix the mode: coarse or optimistic (default: derive from each seed)")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-run timeout")
		showTrace = fs.Bool("trace", false, "print the decision trace of failing runs")
		list      = fs.Bool("list", false, "list the corpus programs and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, p := range explore.Corpus() {
			fmt.Println(p.Name)
		}
		return nil
	}

	var f sched.Faults
	switch *faults {
	case "off", "none":
		f = sched.NoFaults()
	case "light":
		f = sched.Light()
	case "heavy":
		f = sched.Heavy()
	default:
		return fmt.Errorf("unknown fault profile %q (off, light, heavy)", *faults)
	}
	if *bug {
		f.RacyVersionBug = 255
		if *shards == 0 {
			// The bug needs concurrent disjoint-footprint commits.
			*shards = 8
		}
	}

	var mode txn.Mode
	switch *modeName {
	case "":
	case "coarse":
		mode = txn.Coarse
	case "optimistic":
		mode = txn.Optimistic
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	opts := explore.Options{
		Seeds:     *seeds,
		StartSeed: *startSeed,
		Faults:    f,
		Shards:    *shards,
		Mode:      mode,
		Timeout:   *timeout,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if *program != "" {
		p, ok := explore.Find(*program)
		if !ok {
			return fmt.Errorf("unknown program %q (try -list)", *program)
		}
		opts.Programs = []explore.Program{p}
	}
	if *oneSeed >= 0 {
		opts.Seeds = 1
		opts.StartSeed = uint64(*oneSeed)
	}

	// Single-seed replay with an explicit budget goes through RunSeed so
	// the limit applies.
	if *oneSeed >= 0 && *limit >= 0 {
		if len(opts.Programs) != 1 {
			return fmt.Errorf("-limit replay needs -program")
		}
		p := opts.Programs[0]
		decisions, err := explore.RunSeed(p, opts.StartSeed, *limit, opts)
		if err != nil {
			fmt.Printf("FAIL %s seed=%d limit=%d (%d decisions): %v\n", p.Name, opts.StartSeed, *limit, decisions, err)
			return fmt.Errorf("replay failed (as expected for a reported seed)")
		}
		fmt.Printf("ok   %s seed=%d limit=%d (%d decisions)\n", p.Name, opts.StartSeed, *limit, decisions)
		return nil
	}

	start := time.Now()
	rep := explore.Run(opts)
	fmt.Printf("explored %d runs over %d program(s) in %v: %d failure(s)\n",
		rep.Runs, rep.Programs, time.Since(start).Round(time.Millisecond), len(rep.Failures))
	if len(rep.Failures) == 0 {
		return nil
	}
	for _, fl := range rep.Failures {
		fmt.Println(fl)
		if *showTrace && len(fl.Trace) > 0 {
			fmt.Print(sched.FormatTrace(fl.Trace))
		}
	}
	return fmt.Errorf("%d failing seed(s)", len(rep.Failures))
}
