// Command sdlvet statically analyzes SDL source programs. It parses each
// named file and runs the internal/analysis passes over it, printing
// machine-readable diagnostics:
//
//	file:line:col: [check-id] message
//
// Each file is analyzed as its own program: a file with a main block is
// checked whole-program (spawn reachability, shape inference across
// process and driver), a library file of process definitions is checked
// with every process assumed reachable.
//
// Usage:
//
//	sdlvet [flags] program.sdl [more.sdl ...]
//
// Flags:
//
//	-checks list   comma-separated check ids to run (default: all)
//	-json          emit diagnostics as a JSON array on stdout
//	-notes         include informational notes (consensus communities)
//
// Exit status: 0 if every file is clean, 1 if any warning or error was
// reported, 2 on usage, read, or parse failures.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/sdl-lang/sdl/internal/analysis"
	"github.com/sdl-lang/sdl/internal/lang"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("sdlvet", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		checksFlag = fs.String("checks", "", "comma-separated check ids to run (default all: "+strings.Join(analysis.AllChecks, ",")+")")
		jsonOut    = fs.Bool("json", false, "emit diagnostics as a JSON array")
		notes      = fs.Bool("notes", false, "include informational notes in the output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(errw, "usage: sdlvet [flags] program.sdl [more.sdl ...]")
		return 2
	}
	var opts analysis.Options
	if *checksFlag != "" {
		opts.Checks = strings.Split(*checksFlag, ",")
	}

	var jsonDiags []jsonDiag
	findings := false
	broken := false
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(errw, "sdlvet:", err)
			broken = true
			continue
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			// Positioned parse errors keep the file:line:col convention so
			// editors can jump to them like any other diagnostic.
			var le *lang.Error
			if errors.As(err, &le) {
				fmt.Fprintf(errw, "%s:%s\n", path, le.Error())
			} else {
				fmt.Fprintf(errw, "%s: %s\n", path, err)
			}
			broken = true
			continue
		}
		diags, err := analysis.Analyze(prog, opts)
		if err != nil {
			// Unknown check id: a usage error, same for every file.
			fmt.Fprintln(errw, "sdlvet:", err)
			return 2
		}
		for _, d := range diags {
			if d.Severity >= analysis.Warn {
				findings = true
			} else if !*notes {
				continue
			}
			if *jsonOut {
				jsonDiags = append(jsonDiags, jsonDiag{
					File:     path,
					Line:     d.Pos.Line,
					Col:      d.Pos.Col,
					Check:    d.Check,
					Severity: d.Severity.String(),
					Message:  d.Message,
				})
			} else {
				fmt.Fprintf(out, "%s:%s\n", path, d.String())
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if jsonDiags == nil {
			jsonDiags = []jsonDiag{}
		}
		if err := enc.Encode(jsonDiags); err != nil {
			fmt.Fprintln(errw, "sdlvet:", err)
			return 2
		}
	}
	switch {
	case broken:
		return 2
	case findings:
		return 1
	}
	return 0
}
