package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the path of a shared analyzer fixture.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", name)
}

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestCleanProgramExitsZero(t *testing.T) {
	code, out, errw := runVet(t, fixture("clean.sdl"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if out != "" {
		t.Errorf("clean program produced output: %s", out)
	}
}

func TestNotesFlagRevealsCommunities(t *testing.T) {
	code, out, _ := runVet(t, "-notes", fixture("clean.sdl"))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "[consensus] consensus community") {
		t.Errorf("missing community note in: %s", out)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, out, _ := runVet(t, fixture("view.sdl"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "view.sdl:") || !strings.Contains(out, "[view]") {
		t.Errorf("diagnostics missing file prefix or check id: %s", out)
	}
}

func TestChecksFlagRestrictsPasses(t *testing.T) {
	// The view fixture has no hygiene findings, so a hygiene-only run is
	// clean.
	code, out, _ := runVet(t, "-checks", "hygiene", fixture("view.sdl"))
	if code != 0 {
		t.Fatalf("exit %d, output: %s", code, out)
	}
	code, _, errw := runVet(t, "-checks", "bogus", fixture("view.sdl"))
	if code != 2 {
		t.Fatalf("unknown check: exit %d, want 2 (stderr: %s)", code, errw)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runVet(t, "-json", fixture("shape.sdl"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.File == "" || d.Line < 1 || d.Col < 1 || d.Check != "shape" || d.Severity != "warn" || d.Message == "" {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runVet(t, "-json", fixture("clean.sdl"))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("want empty JSON array, got: %s", out)
	}
}

func TestParseErrorExitsTwo(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.sdl")
	if err := os.WriteFile(bad, []byte("process oops\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := runVet(t, bad)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw, "bad.sdl:") {
		t.Errorf("parse error not attributed to file: %s", errw)
	}
}

func TestMultipleFilesAggregate(t *testing.T) {
	// One dirty file among clean ones still fails the batch.
	code, out, _ := runVet(t, fixture("clean.sdl"), fixture("hygiene.sdl"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(out, "clean.sdl:") {
		t.Errorf("clean file produced findings: %s", out)
	}
	if !strings.Contains(out, "hygiene.sdl:") {
		t.Errorf("dirty file missing from output: %s", out)
	}
}

func TestUsageErrorExitsTwo(t *testing.T) {
	if code, _, _ := runVet(t); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
}

// TestWarningsOnlyExitOneAllModes pins the exit-code contract for a file
// whose worst finding is a warning: every output mode and check
// narrowing that still surfaces the warning must exit 1. (Regression
// guard for the documented contract — -json in particular must not
// swallow the failure status.)
func TestWarningsOnlyExitOneAllModes(t *testing.T) {
	// shape.sdl's findings are all warnings.
	cases := [][]string{
		{fixture("shape.sdl")},
		{"-json", fixture("shape.sdl")},
		{"-notes", fixture("shape.sdl")},
		{"-checks", "shape", fixture("shape.sdl")},
		{"-json", "-checks", "shape", fixture("shape.sdl")},
	}
	for _, args := range cases {
		code, out, errw := runVet(t, args...)
		if code != 1 {
			t.Errorf("%v: exit %d, want 1 (stdout: %s, stderr: %s)", args, code, out, errw)
		}
	}
}

// TestNotesOnlyExitZeroAllModes pins the other half of the contract: a
// file whose findings are all informational notes is clean (exit 0) in
// every mode — -notes and -json change what is printed, never the
// status.
func TestNotesOnlyExitZeroAllModes(t *testing.T) {
	// footprint.sdl's findings are all notes (the pass is informational
	// by design).
	cases := []struct {
		args       []string
		wantOutput bool
	}{
		{[]string{"-checks", "footprint", fixture("footprint.sdl")}, false},
		{[]string{"-notes", "-checks", "footprint", fixture("footprint.sdl")}, true},
		{[]string{"-json", "-checks", "footprint", fixture("footprint.sdl")}, false},
		{[]string{"-json", "-notes", "-checks", "footprint", fixture("footprint.sdl")}, true},
	}
	for _, tc := range cases {
		code, out, errw := runVet(t, tc.args...)
		if code != 0 {
			t.Errorf("%v: exit %d, want 0 (stderr: %s)", tc.args, code, errw)
		}
		trimmed := strings.TrimSpace(out)
		hasOutput := trimmed != "" && trimmed != "[]"
		if hasOutput != tc.wantOutput {
			t.Errorf("%v: output presence = %v, want %v: %q", tc.args, hasOutput, tc.wantOutput, out)
		}
	}
}
