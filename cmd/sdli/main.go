// Command sdli runs SDL source programs: it parses one or more .sdl files
// (library files of process definitions plus one driver with the main
// block), compiles them onto the runtime, executes main, and waits for
// the process society to terminate.
//
// Usage:
//
//	sdli [flags] program.sdl [more.sdl ...]
//
// Flags:
//
//	-mode coarse|optimistic   concurrency control (default coarse)
//	-shards n                 dataspace shard count (0 = GOMAXPROCS default)
//	-timeout duration         abort the run after this long (default 1m);
//	                          on timeout, prints each live process's state
//	-dump                     print the final dataspace contents
//	-trace                    print the dataspace event log after the run
//	-stats                    print engine/runtime statistics and metrics
//	-metrics-addr host:port   serve the metrics snapshot over HTTP while
//	                          running (expvar, /debug/vars)
//	-sched-seed n             install the deterministic schedule controller
//	                          with this seed (-1 = off); replays the exact
//	                          decision stream a failing exploration reported
//	-sched-faults p           fault profile under -sched-seed: off, light
//	                          (default), or heavy
//	-watch duration           live snapshot sampling while running
//	-svg file                 write a tuple-lifetime timeline SVG
//	-checkpoint file          write the final dataspace to a checkpoint
//	-restore file             load a dataspace checkpoint before running
//	-wal-dir dir              durable mode: recover the dataspace from this
//	                          write-ahead-log directory, then log every
//	                          commit durably before it becomes visible; the
//	                          final state is checkpointed on exit
//	-wal-sync commit|batch|interval
//	                          WAL fsync policy (default commit): per-commit,
//	                          group-amortized, or timer-driven
//	-fmt                      format the program to stdout instead
//	-vet                      run the static analyzer first and refuse to
//	                          run if it reports errors; -vet=warn reports
//	                          but runs anyway
//	-refine                   apply the interprocedural footprint refiner
//	                          at compile time (default true); -refine=false
//	                          keeps the compiler's intraprocedural
//	                          classification only
//	-reactive                 delta-driven wakeups for blocked delayed
//	                          transactions (default true); -reactive=false
//	                          restores the full re-query baseline of
//	                          experiment E16
//	-secondary-index          adaptive secondary field indexes and
//	                          selectivity-guided join planning (default
//	                          true); -secondary-index=false restores full
//	                          arity scans and the boundness heuristic, the
//	                          baseline of experiment E17
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sdl-lang/sdl/internal/analysis"
	"github.com/sdl-lang/sdl/internal/analysis/dataflow"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/trace"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/vis"
	"github.com/sdl-lang/sdl/internal/wal"
)

// currentMetrics is the registry of the store the running program uses.
// expvar variables are process-global and can be published only once, so
// the published Func indirects through this pointer (tests call run
// repeatedly in one process).
var (
	currentMetrics atomic.Pointer[metrics.Registry]
	publishOnce    sync.Once
)

// serveMetrics publishes the registry under the expvar name "sdl" and
// serves the standard /debug/vars endpoint on addr. It returns the bound
// address (addr may use port 0) and a shutdown function.
func serveMetrics(addr string, reg *metrics.Registry) (string, func(), error) {
	currentMetrics.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("sdl", expvar.Func(func() any {
			if r := currentMetrics.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdli:", err)
		os.Exit(1)
	}
}

// vetFlag is the tri-state -vet flag: "off" (default), "on" (bare -vet:
// analyzer errors refuse the run), or "warn" (-vet=warn: report and run
// anyway).
type vetFlag struct{ mode string }

func (v *vetFlag) String() string { return v.mode }

func (v *vetFlag) Set(s string) error {
	switch s {
	case "true", "on":
		v.mode = "on"
	case "false", "off":
		v.mode = "off"
	case "warn":
		v.mode = "warn"
	default:
		return fmt.Errorf(`-vet accepts "on", "off", or "warn"`)
	}
	return nil
}

// IsBoolFlag lets bare -vet (no value) mean -vet=on.
func (v *vetFlag) IsBoolFlag() bool { return true }

// vetProgram runs the static analyzer over the merged program and prints
// warnings and errors to stderr. In "on" mode any error-severity finding
// (view soundness) refuses the run; "warn" mode reports and continues.
func vetProgram(prog *lang.Program, mode string) error {
	diags, err := analysis.Analyze(prog, analysis.Options{})
	if err != nil {
		return err
	}
	nerrs := 0
	for _, d := range diags {
		if d.Severity < analysis.Warn {
			continue
		}
		if d.Severity >= analysis.Error {
			nerrs++
		}
		fmt.Fprintf(os.Stderr, "sdli: vet: %s: %s\n", d.Severity, d)
	}
	if nerrs > 0 && mode != "warn" {
		return fmt.Errorf("vet reported %d error(s); fix them or run with -vet=warn", nerrs)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdli", flag.ContinueOnError)
	var (
		modeName    = fs.String("mode", "coarse", "concurrency control: coarse or optimistic")
		shards      = fs.Int("shards", 0, "dataspace shard count, rounded up to a power of two (0 = GOMAXPROCS default)")
		timeout     = fs.Duration("timeout", time.Minute, "abort the run after this long")
		dump        = fs.Bool("dump", false, "print the final dataspace contents")
		showTrace   = fs.Bool("trace", false, "print the dataspace event log")
		showStats   = fs.Bool("stats", false, "print engine/runtime statistics and metrics")
		metricsAddr = fs.String("metrics-addr", "", "serve the metrics snapshot over HTTP on this address (expvar, /debug/vars)")
		format      = fs.Bool("fmt", false, "format the program to stdout instead of running it")
		watch       = fs.Duration("watch", 0, "print dataspace size/version on this cadence while running")
		svgPath     = fs.String("svg", "", "write a tuple-lifetime timeline SVG to this file after the run")
		restore     = fs.String("restore", "", "load a dataspace checkpoint before running")
		ckptPath    = fs.String("checkpoint", "", "write the final dataspace to this checkpoint file")
		walDir      = fs.String("wal-dir", "", "recover from and durably log commits to this write-ahead-log directory")
		walSync     = fs.String("wal-sync", "commit", "WAL fsync policy: commit, batch, or interval")

		schedSeed   = fs.Int64("sched-seed", -1, "deterministic schedule-controller seed (-1 = off)")
		schedFaults = fs.String("sched-faults", "light", "fault profile under -sched-seed: off, light, or heavy")
		refine      = fs.Bool("refine", true, "apply the interprocedural footprint refiner (analysis/dataflow) at compile time")
		reactive    = fs.Bool("reactive", true, "delta-driven wakeups for blocked delayed transactions (false = full re-query baseline)")
		secondary   = fs.Bool("secondary-index", true, "adaptive secondary field indexes and selectivity-guided join planning (false = arity-scan baseline)")
	)
	vet := &vetFlag{mode: "off"}
	fs.Var(vet, "vet", `run the static analyzer first: "on" refuses to run on errors, "warn" reports and runs anyway`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: sdli [flags] program.sdl [more.sdl ...]")
	}
	progs := make([]*lang.Program, 0, fs.NArg())
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		progs = append(progs, prog)
	}
	prog, err := lang.Merge(progs...)
	if err != nil {
		return err
	}
	if *format {
		fmt.Print(lang.Format(prog))
		return nil
	}
	if vet.mode != "off" {
		if err := vetProgram(prog, vet.mode); err != nil {
			return err
		}
	}

	var mode txn.Mode
	switch *modeName {
	case "coarse":
		mode = txn.Coarse
	case "optimistic":
		mode = txn.Optimistic
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	var sc *sched.Controller
	if *schedSeed >= 0 {
		var f sched.Faults
		switch *schedFaults {
		case "off", "none":
			f = sched.NoFaults()
		case "light":
			f = sched.Light()
		case "heavy":
			f = sched.Heavy()
		default:
			return fmt.Errorf("unknown -sched-faults profile %q (off, light, heavy)", *schedFaults)
		}
		sc = sched.New(uint64(*schedSeed), f)
	}

	store := dataspace.New(dataspace.WithShards(*shards), dataspace.WithScheduler(sc),
		dataspace.WithReactive(*reactive), dataspace.WithSecondaryIndex(*secondary))
	var wlog *wal.Log
	if *walDir != "" {
		if *restore != "" {
			return fmt.Errorf("-wal-dir and -restore are mutually exclusive: the WAL directory carries its own checkpoints")
		}
		syncMode, err := wal.ParseSyncMode(*walSync)
		if err != nil {
			return err
		}
		wlog, err = wal.Open(*walDir, wal.Options{Sync: syncMode, Metrics: store.Metrics()})
		if err != nil {
			return err
		}
		stats, err := wlog.Recover(store)
		if err != nil {
			wlog.Close()
			return fmt.Errorf("wal recovery: %w", err)
		}
		if stats.Replayed > 0 || stats.CheckpointVersion > 0 {
			fmt.Printf("wal: recovered to version %d (checkpoint v%d + %d replayed records", stats.Version, stats.CheckpointVersion, stats.Replayed)
			if stats.TornSegments > 0 {
				fmt.Printf(", %d torn bytes discarded", stats.TornBytes)
			}
			fmt.Printf(") in %v\n", stats.Elapsed.Round(time.Microsecond))
		}
		store.SetDurable(wlog)
		defer func() {
			if err := wlog.Checkpoint(store); err != nil {
				fmt.Fprintln(os.Stderr, "sdli: wal checkpoint:", err)
			}
			if err := wlog.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sdli: wal close:", err)
			}
		}()
	}
	var rec *trace.Recorder
	if *showTrace || *svgPath != "" {
		rec = trace.NewRecorder(0)
		rec.Attach(store)
	}
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			return err
		}
		err = store.ReadCheckpoint(f)
		_ = f.Close()
		if err != nil {
			return err
		}
	}
	engine := txn.New(store, mode)
	rt := process.NewRuntime(engine, nil)
	defer func() {
		rt.Shutdown()
		rt.Consensus().Close()
	}()

	if *metricsAddr != "" || *showStats {
		// An observer is attached: enable the gated instruments (latency,
		// footprint, fan-out histograms).
		store.Metrics().SetObserved(true)
	}
	if *metricsAddr != "" {
		bound, stopMetrics, err := serveMetrics(*metricsAddr, store.Metrics())
		if err != nil {
			return err
		}
		defer stopMetrics()
		fmt.Printf("metrics: http://%s/debug/vars\n", bound)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	if *watch > 0 {
		// A decoupled visualization process: it observes consistent
		// snapshots while the society runs.
		watcher := vis.NewWatcher(store, *watch, func(r dataspace.Reader) {
			fmt.Printf("watch: v%-6d %6d tuples  %4d processes\n",
				r.Version(), r.Len(), rt.Running())
		})
		defer watcher.Stop()
	}
	var compiled *lang.Compiled
	if *refine {
		compiled, _, err = dataflow.Compile(prog)
	} else {
		compiled, err = lang.Compile(prog)
	}
	if err != nil {
		return err
	}
	if err := compiled.Run(ctx, rt); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Stall diagnosis: show what every live process was doing.
			fmt.Fprintln(os.Stderr, "sdli: timed out; society at timeout:")
			for _, p := range rt.Society() {
				fmt.Fprintf(os.Stderr, "  P%-4d %-20s %s\n", p.PID, p.Type, p.State)
			}
		}
		return err
	}
	elapsed := time.Since(start)

	if *dump {
		fmt.Println("-- dataspace --")
		all := store.All()
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		for _, inst := range all {
			fmt.Printf("  #%-6d P%-4d %s\n", inst.ID, inst.Owner, inst.Tuple)
		}
	}
	if *showTrace {
		fmt.Println("-- trace --")
		if err := rec.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if *svgPath != "" {
		svg := vis.RenderSVGTimeline(rec.Events(), 512)
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("timeline written to %s\n", *svgPath)
	}
	if *ckptPath != "" {
		f, err := os.Create(*ckptPath)
		if err != nil {
			return err
		}
		werr := store.WriteCheckpoint(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("checkpoint written to %s (%d tuples)\n", *ckptPath, store.Len())
	}
	if *showStats {
		es := engine.Stats()
		ss := store.Stats()
		fmt.Println("-- stats --")
		fmt.Printf("  elapsed       %v\n", elapsed)
		fmt.Printf("  processes     %d spawned\n", rt.SpawnCount())
		fmt.Printf("  transactions  %d commits, %d failures, %d attempts, %d conflicts, %d wakeups\n",
			es.Commits, es.Failures, es.Attempts, es.Conflicts, es.Wakeups)
		fmt.Printf("  dataspace     %d asserts, %d retracts, %d left, version %d\n",
			ss.Asserts, ss.Retracts, store.Len(), store.Version())
		fmt.Printf("  consensus     %d fires\n", rt.Consensus().Fires())
		printMetrics(store.Metrics().Snapshot())
	}
	return nil
}

// printMetrics renders the metrics snapshot under the -stats dump.
func printMetrics(snap metrics.Snapshot) {
	fmt.Println("-- metrics --")
	reads, writes := snap.ShardLockTotals()
	fmt.Printf("  shards        %d shards, %d read locks, %d write locks, %d store commits\n",
		len(snap.Shards), reads, writes, snap.StoreCommits)
	for _, kind := range []string{"immediate", "delayed", "consensus"} {
		c := snap.Txn[kind]
		if c.Attempts == 0 && c.Blocks == 0 {
			continue
		}
		lat := snap.TxnLatency[kind]
		fmt.Printf("  txn %-9s %d attempts, %d commits, %d retries, %d blocks, mean %.1fµs\n",
			kind, c.Attempts, c.Commits, c.Retries, c.Blocks, lat.Mean()/1e3)
	}
	fmt.Printf("  footprint     mean %.2f shards/update\n", snap.Footprint.Mean())
	fmt.Printf("  commit paths  %d key-latched, %d shard fallbacks, %d coarse\n",
		snap.KeyCommits, snap.ShardFallbacks, snap.CoarseCommits)
	for _, class := range []string{"ground", "ground-keys", "wildcard", "unknown"} {
		if n := snap.FootprintAdmissions[class]; n > 0 {
			fmt.Printf("  admit %-8s %d executions, %d planned\n",
				class, n, snap.FootprintPlanned[class])
		}
	}
	fmt.Printf("  wakeups       mean fan-out %.2f, waiter depth %d\n",
		snap.WakeupFanout.Mean(), snap.WaiterDepth)
	if snap.ReactiveSignals > 0 || snap.ReactiveEvals > 0 {
		fmt.Printf("  reactive      %d signals (%d suppressed), %d evals (%d delta hits, %d full re-queries), %d consensus kicks suppressed\n",
			snap.ReactiveSignals, snap.ReactiveSuppressed, snap.ReactiveEvals,
			snap.ReactiveHits, snap.ReactiveFallbacks, snap.ConsensusKicksSuppressed)
	}
	if snap.SecondaryFieldScans > 0 {
		fmt.Printf("  sec index     %d field scans (%d indexed, %d arity walks), %d tuples visited, %d promotions, %d demotions\n",
			snap.SecondaryFieldScans, snap.SecondaryIndexedScans, snap.SecondaryArityScans,
			snap.SecondaryTuplesVisited, snap.SecondaryPromotions, snap.SecondaryDemotions)
	}
	fmt.Printf("  consensus     %d detection rounds, mean community %.1f\n",
		snap.ConsensusRounds, snap.ConsensusCommunity.Mean())
	if snap.CheckpointWrite.Count > 0 || snap.CheckpointRead.Count > 0 {
		fmt.Printf("  checkpoints   %d writes (mean %.1fms), %d reads (mean %.1fms)\n",
			snap.CheckpointWrite.Count, snap.CheckpointWrite.Mean()/1e6,
			snap.CheckpointRead.Count, snap.CheckpointRead.Mean()/1e6)
	}
	if snap.WalAppends > 0 || snap.WalRecoveries > 0 {
		fmt.Printf("  wal           %d appends (%d bytes), %d fsyncs (mean cover %.1f records), %d segments\n",
			snap.WalAppends, snap.WalAppendBytes, snap.WalSyncs, snap.WalSyncCover.Mean(), snap.WalSegments)
		fmt.Printf("  wal recovery  %d recoveries, %d records replayed, %d version gaps, mean %.1fms\n",
			snap.WalRecoveries, snap.WalRecovered, snap.WalDiscarded, snap.WalRecoveryTime.Mean()/1e6)
	}
}
