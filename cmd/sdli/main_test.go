package main

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	sdl "github.com/sdl-lang/sdl"
	"github.com/sdl-lang/sdl/internal/metrics"
)

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.sdl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout redirects os.Stdout around fn, draining the pipe
// concurrently so large outputs cannot deadlock the writer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- string(data)
	}()
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	return <-outCh, runErr
}

func TestRunBasicProgram(t *testing.T) {
	path := writeProgram(t, `main -> <hello, 1> end`)
	out, err := captureStdout(t, func() error {
		return run([]string{"-dump", "-stats", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<hello, 1>", "-- stats --", "1 spawned"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOptimisticMode(t *testing.T) {
	path := writeProgram(t, `main -> <x, 1> end`)
	if _, err := captureStdout(t, func() error {
		return run([]string{"-mode", "optimistic", path})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceOutput(t *testing.T) {
	path := writeProgram(t, `main -> <seen, 9> end`)
	out, err := captureStdout(t, func() error {
		return run([]string{"-trace", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "assert") || !strings.Contains(out, "<seen, 9>") {
		t.Errorf("trace output:\n%s", out)
	}
}

func TestRunFmt(t *testing.T) {
	path := writeProgram(t, "main   ->    <a,1>   end")
	out, err := captureStdout(t, func() error {
		return run([]string{"-fmt", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "main\n") || !strings.Contains(out, "<a, 1>") {
		t.Errorf("fmt output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                        // missing file
		{"/nonexistent/prog.sdl"}, // unreadable
		{"-mode", "bogus", writeProgram(t, `main -> skip end`)}, // bad mode
	}
	for i, args := range cases {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Parse error in the program.
	bad := writeProgram(t, `process`)
	if _, err := captureStdout(t, func() error { return run([]string{bad}) }); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestRunWatch(t *testing.T) {
	path := writeProgram(t, `main -> <w, 1> end`)
	out, err := captureStdout(t, func() error {
		return run([]string{"-watch", "1ms", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "watch:") {
		t.Errorf("watch output missing:\n%s", out)
	}
}

func TestRunSVGExport(t *testing.T) {
	path := writeProgram(t, `main -> <a, 1>; exists v: <a, ?v>! -> <b, ?v> end`)
	svg := filepath.Join(t.TempDir(), "out.svg")
	if _, err := captureStdout(t, func() error {
		return run([]string{"-svg", svg, path})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "rect") {
		t.Errorf("svg content:\n%s", data)
	}
}

func TestRunCheckpointAndRestore(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.ckpt")
	// Stage 1: produce tuples and checkpoint.
	p1 := writeProgram(t, `main -> <stage, 1>, <data, 42> end`)
	if _, err := captureStdout(t, func() error {
		return run([]string{"-checkpoint", ckpt, p1})
	}); err != nil {
		t.Fatal(err)
	}
	// Stage 2: restore and continue the computation.
	p2 := writeProgram(t, `main exists v: <data, ?v>! -> <doubled, ?v * 2> end`)
	out, err := captureStdout(t, func() error {
		return run([]string{"-restore", ckpt, "-dump", p2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<doubled, 84>") || !strings.Contains(out, "<stage, 1>") {
		t.Errorf("restored run output:\n%s", out)
	}
	// Restoring a nonexistent checkpoint fails cleanly.
	if _, err := captureStdout(t, func() error {
		return run([]string{"-restore", "/nonexistent.ckpt", p2})
	}); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestRunTimeoutStallReport(t *testing.T) {
	path := writeProgram(t, `
process Stuck()
behavior
  <never> => skip
end
main spawn Stuck() end`)
	// Stderr carries the society dump; we only assert the error here and
	// that the run indeed timed out quickly.
	_, err := captureStdout(t, func() error {
		return run([]string{"-timeout", "100ms", path})
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestRunStatsMetricsSection(t *testing.T) {
	path := writeProgram(t, `main -> <m, 1>, <m, 2>; exists v: <m, ?v>! -> <got, ?v> end`)
	out, err := captureStdout(t, func() error {
		return run([]string{"-stats", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"-- metrics --",
		"txn immediate",
		"footprint",
		"waiter depth 0",
		"detection rounds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMetricsEndpoint(t *testing.T) {
	// The in-run server shuts down when run returns, so validate the
	// published expvar payload after the run, then exercise the HTTP path
	// against a fresh listener over the same registry.
	path := writeProgram(t, `main -> <e, 1> end`)
	out, err := captureStdout(t, func() error {
		return run([]string{"-metrics-addr", "127.0.0.1:0", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "metrics: http://127.0.0.1:") {
		t.Errorf("bound address not printed:\n%s", out)
	}
	// The expvar Func stays published (publish-once) and indirects through
	// currentMetrics, which still points at the last run's registry.
	v := expvar.Get("sdl")
	if v == nil {
		t.Fatal("expvar \"sdl\" not published")
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar payload not a metrics snapshot: %v\n%s", err, v.String())
	}
	if snap.StoreCommits == 0 {
		t.Errorf("snapshot records no commits: %+v", snap)
	}
	if !snap.Observed {
		t.Error("registry not marked observed despite -metrics-addr")
	}
	// The HTTP path itself: serve a fresh listener and scrape /debug/vars.
	bound, stop, err := serveMetrics("127.0.0.1:0", currentMetrics.Load())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"sdl"`) || !strings.Contains(string(body), `"storeCommits"`) {
		t.Errorf("/debug/vars scrape missing sdl metrics:\n%.400s", body)
	}
}

// TestRunMetricsKeySetMatchesSystemSnapshot pins the contract between the
// -metrics-addr expvar payload and the library's System.Snapshot(): both
// are the same Snapshot type, so a scrape exposes exactly the keys an
// embedding application sees. A drift (renamed or dropped JSON field)
// breaks dashboards silently; this catches it.
func TestRunMetricsKeySetMatchesSystemSnapshot(t *testing.T) {
	topKeys := func(raw []byte) []string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("payload is not a JSON object: %v\n%s", err, raw)
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}

	// Scrape the served endpoint after a real run.
	path := writeProgram(t, `main -> <k, 1>; exists v: <k, ?v>! -> <k2, ?v> end`)
	if _, err := captureStdout(t, func() error {
		return run([]string{"-metrics-addr", "127.0.0.1:0", path})
	}); err != nil {
		t.Fatal(err)
	}
	bound, stop, err := serveMetrics("127.0.0.1:0", currentMetrics.Load())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	scraped, ok := vars["sdl"]
	if !ok {
		t.Fatalf("/debug/vars has no \"sdl\" entry:\n%.400s", body)
	}

	// The reference key set: a System's own snapshot, marshaled the same way.
	sys := sdl.New(sdl.Options{})
	defer sys.Close()
	ref, err := json.Marshal(sys.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	got, want := topKeys(scraped), topKeys(ref)
	if len(got) != len(want) {
		t.Fatalf("scraped %d keys, System.Snapshot has %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("key %d: scraped %q, System.Snapshot has %q", i, got[i], want[i])
		}
	}
}

func TestRunMetricsBadAddr(t *testing.T) {
	path := writeProgram(t, `main -> skip end`)
	if _, err := captureStdout(t, func() error {
		return run([]string{"-metrics-addr", "127.0.0.1:notaport", path})
	}); err == nil {
		t.Error("bad metrics address accepted")
	}
}

func TestRunMultipleFiles(t *testing.T) {
	lib := writeProgram(t, `
process Emit(v)
behavior -> <out, v> end`)
	driver := filepath.Join(t.TempDir(), "driver.sdl")
	if err := os.WriteFile(driver, []byte(`main spawn Emit(9) end`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-dump", lib, driver})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<out, 9>") {
		t.Errorf("multi-file run output:\n%s", out)
	}
	// Two mains across files must be rejected.
	main2 := writeProgram(t, `main -> skip end`)
	if _, err := captureStdout(t, func() error {
		return run([]string{driver, main2})
	}); err == nil || !strings.Contains(err.Error(), "multiple main") {
		t.Errorf("err = %v", err)
	}
}

// unsoundSrc has a view-soundness error: Logger's assert falls outside
// its export clause. The program itself runs fine (the bad assert is
// simply filtered by the view at runtime), which is exactly why the
// static gate matters.
const unsoundSrc = `
process Logger()
import <job, *>
export <log, *>
behavior
  -> <audit, 1>
end

main
  spawn Logger()
end
`

func TestRunVetRefusesUnsoundProgram(t *testing.T) {
	path := writeProgram(t, unsoundSrc)
	_, err := captureStdout(t, func() error {
		return run([]string{"-vet", path})
	})
	if err == nil {
		t.Fatal("vet gate let an unsound program run")
	}
	if !strings.Contains(err.Error(), "-vet=warn") {
		t.Errorf("error does not mention the override: %v", err)
	}
}

func TestRunVetWarnModeRunsAnyway(t *testing.T) {
	path := writeProgram(t, unsoundSrc)
	_, err := captureStdout(t, func() error {
		return run([]string{"-vet=warn", path})
	})
	if err != nil {
		t.Fatalf("vet=warn should run the program: %v", err)
	}
}

func TestRunVetCleanProgramRuns(t *testing.T) {
	path := writeProgram(t, `main -> <hello, 1> end`)
	out, err := captureStdout(t, func() error {
		return run([]string{"-vet", "-dump", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<hello, 1>") {
		t.Errorf("program did not run under -vet:\n%s", out)
	}
}

// schedSeedSrc has genuine concurrency (three contending incrementers) so
// the installed controller actually draws decisions, yet a fully
// deterministic final state.
const schedSeedSrc = `
process Inc()
behavior
  exists v: <c, ?v>! => <c, ?v + 1>
end

main
  -> <c, 0>;
  spawn Inc(), spawn Inc(), spawn Inc()
end
`

func TestRunSchedSeed(t *testing.T) {
	path := writeProgram(t, schedSeedSrc)
	// The same seed must produce a correct run under every fault profile;
	// the controller perturbs schedules, never outcomes.
	for _, profile := range []string{"off", "light", "heavy"} {
		out, err := captureStdout(t, func() error {
			return run([]string{"-sched-seed", "42", "-sched-faults", profile, "-dump", path})
		})
		if err != nil {
			t.Fatalf("profile %s: %v", profile, err)
		}
		if !strings.Contains(out, "<c, 3>") {
			t.Errorf("profile %s: perturbed run corrupted the final state:\n%s", profile, out)
		}
	}
}

func TestRunSchedSeedBadProfile(t *testing.T) {
	path := writeProgram(t, `main -> skip end`)
	if _, err := captureStdout(t, func() error {
		return run([]string{"-sched-seed", "1", "-sched-faults", "frobnicate", path})
	}); err == nil || !strings.Contains(err.Error(), "sched-faults") {
		t.Errorf("bad profile accepted: %v", err)
	}
}

func TestRunVetBadValue(t *testing.T) {
	path := writeProgram(t, `main -> <hello, 1> end`)
	_, err := captureStdout(t, func() error {
		return run([]string{"-vet=frobnicate", path})
	})
	if err == nil {
		t.Fatal("bad -vet value accepted")
	}
}
