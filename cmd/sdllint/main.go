// Command sdllint checks the runtime's lock discipline. It lints the
// shared-dataspace store (and any other package directory named on the
// command line) against three rules the code comments promise but the
// compiler cannot enforce:
//
//   - lock-order: the three-layer commit ladder acquires key latches,
//     then intent locks, then shard mu — never a lower class while a
//     higher one is held; the group-commit queue mutex is a leaf.
//   - unlocked/rlock-mutation: the live tuple maps (shard.entries and
//     its indexes) are only written under an exclusive shard mu — never
//     lock-free, never under a read lock.
//   - unlocked-append: DurableSink.Append runs inside the commit
//     critical section (exclusive mu held), so conflicting commits reach
//     the log in version order.
//
// The analysis is intraprocedural; functions whose callers hold locks
// carry a `lint:holds <class ...>` doc-comment annotation (see lint.go).
// Exit status: 0 clean, 1 findings, 2 usage or parse error.
//
// Usage:
//
//	sdllint [-q] [package-dir ...]   (default: internal/dataspace)
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the per-directory summary")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdllint [-q] [package-dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"internal/dataspace"}
	}
	bad := false
	for _, dir := range dirs {
		findings, err := LintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdllint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			bad = true
		} else if !*quiet {
			fmt.Printf("sdllint: %s: ok\n", dir)
		}
	}
	if bad {
		os.Exit(1)
	}
}
