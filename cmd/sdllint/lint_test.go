package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededViolations lints the fixture and requires exactly the
// findings its `// want <rule>` markers declare, at the marked lines —
// proving each rule both fires on its seeded violation and stays quiet on
// the adjacent clean patterns (early-exit balancing, annotations,
// closure scoping).
func TestSeededViolations(t *testing.T) {
	path := filepath.Join("testdata", "bad.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{} // line -> rule
	for i, line := range strings.Split(string(src), "\n") {
		if _, rule, ok := strings.Cut(line, "// want "); ok {
			want[i+1] = strings.TrimSpace(rule)
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture has no // want markers")
	}

	findings, err := LintFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]string{}
	for _, f := range findings {
		if prev, dup := got[f.Pos.Line]; dup {
			t.Errorf("line %d: two findings (%s, %s)", f.Pos.Line, prev, f.Rule)
		}
		got[f.Pos.Line] = f.Rule
	}
	for line, rule := range want {
		if got[line] != rule {
			t.Errorf("line %d: want rule %q, got %q", line, rule, got[line])
		}
	}
	for line, rule := range got {
		if _, expected := want[line]; !expected {
			t.Errorf("line %d: unexpected finding %q", line, rule)
		}
	}
}

// TestDataspaceClean is the acceptance gate: the real runtime passes its
// own lock-discipline lint.
func TestDataspaceClean(t *testing.T) {
	findings, err := LintDir(filepath.Join("..", "..", "internal", "dataspace"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestAnnotationParsing: a lint:holds annotation seeds exactly the named
// classes; unknown names are ignored rather than crashing.
func TestAnnotationParsing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ann.go")
	src := `package p

import "sync"

type shard struct {
	mu      sync.RWMutex
	entries map[int]int
}

// lint:holds mu, bogus
func ok(sh *shard) { sh.entries[1] = 2 }

// lint:holds latch
func bad(sh *shard) { sh.entries[1] = 2 }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := LintFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 finding (bad only), got %d: %v", len(findings), findings)
	}
	if findings[0].Rule != "unlocked-mutation" || !strings.Contains(findings[0].Msg, "bad ") {
		t.Errorf("wrong finding: %v", findings[0])
	}
}

// TestLockSetModeling: the store's lockSet/unlockSet helpers are modeled
// as intent+mu acquisition, including through a defer.
func TestLockSetModeling(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "helpers.go")
	src := `package p

type store struct {
	durable interface{ Append(any) uint64 }
}

func (s *store) lockSet()   {}
func (s *store) unlockSet() {}

type shard struct{ entries map[int]int }

func viaDefer(s *store, sh *shard) {
	s.lockSet()
	defer s.unlockSet()
	sh.entries[1] = 2
	s.durable.Append(nil)
}

func afterRelease(s *store, sh *shard) {
	s.lockSet()
	s.unlockSet()
	sh.entries[1] = 2
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := LintFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 finding (afterRelease only), got %d: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Msg, "afterRelease") {
		t.Errorf("wrong function blamed: %v", findings[0])
	}
}
