// lint.go implements the lock-discipline analysis behind sdllint. It is
// deliberately stdlib-only (go/parser + go/ast, no type checker): lock
// identity is recovered from selector-chain *text*, which is stable
// because the runtime names its synchronization fields uniformly (see the
// lock-class table below). The analysis is intraprocedural and
// flow-ordered: each function body is walked in statement order with a
// held-lock multiset, function literals are independent scopes, loop
// bodies are processed once, and defers fire at scope exit. Where a
// function relies on its caller's locks, a machine-readable annotation in
// its doc comment (`lint:holds mu latch`) seeds the held set; the
// annotation is itself documentation that the linter keeps honest.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Lock classes, in the runtime's documented acquisition order (see the
// shard doc comment in internal/dataspace/store.go): a commit takes its
// key latches first, then intent locks, then shard mu; the group-commit
// queue mutex is a leaf — nothing may be acquired while it is held.
const (
	classLatch  = 1 // shard.latches[i] — striped per-key lock table
	classIntent = 2 // shard.intent — commit-discipline separator
	classMu     = 3 // shard.mu — shard data lock (also registry mutexes)
	classQueue  = 4 // shard.queue.mu — group-commit queue, leaf
)

var classNames = map[int]string{
	classLatch:  "latch",
	classIntent: "intent",
	classMu:     "mu",
	classQueue:  "queue.mu",
}

var classByName = map[string]int{
	"latch":    classLatch,
	"intent":   classIntent,
	"mu":       classMu,
	"queue":    classQueue,
	"queue.mu": classQueue,
}

// Finding is one lock-discipline violation.
type Finding struct {
	Pos  token.Position
	Rule string // lock-order, leaf-lock, unlocked-mutation, rlock-mutation, unlocked-append, rlock-append, unlocked-index
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// LintDir parses every non-test .go file in dir and lints each function.
func LintDir(dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths)
	return LintFiles(paths)
}

// LintFiles lints the given Go source files.
func LintFiles(paths []string) ([]Finding, error) {
	fset := token.NewFileSet()
	var all []Finding
	for _, p := range paths {
		file, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		all = append(all, lintFile(fset, file)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all, nil
}

func lintFile(fset *token.FileSet, file *ast.File) []Finding {
	var out []Finding
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sc := newScope(fset, fd.Name.Name)
		sc.seedAnnotation(fd.Doc)
		sc.walkBody(fd.Body)
		out = append(out, sc.findings...)
	}
	return out
}

// scope is the per-function analysis state. held maps lock class to
// acquisition count plus exclusivity of the most recent acquisition.
type scope struct {
	fset     *token.FileSet
	name     string
	held     map[int]*heldLock
	deferred []*ast.CallExpr
	pending  []*ast.FuncLit // literals to analyze as fresh scopes
	findings []Finding
}

type heldLock struct {
	n    int
	excl bool
}

func newScope(fset *token.FileSet, name string) *scope {
	return &scope{fset: fset, name: name, held: make(map[int]*heldLock)}
}

// seedAnnotation reads a `lint:holds <class ...>` line from the doc
// comment and marks those classes as exclusively held on entry — the
// contract that the function's callers hold them. The special name `rmu`
// seeds a read-held mu: enough for the operations that only need *some*
// shard lock (secondary-index bucket builds), but not for exclusive
// mutations.
func (sc *scope) seedAnnotation(doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimLeft(c.Text, "/ \t"))
		if !strings.HasPrefix(text, "lint:holds") {
			continue
		}
		for _, f := range strings.FieldsFunc(strings.TrimPrefix(text, "lint:holds"), func(r rune) bool {
			return r == ' ' || r == ',' || r == '\t'
		}) {
			if f == "rmu" {
				sc.held[classMu] = &heldLock{n: 1, excl: false}
				continue
			}
			if class, ok := classByName[f]; ok {
				sc.held[class] = &heldLock{n: 1, excl: true}
			}
		}
	}
}

func (sc *scope) addf(pos token.Pos, rule, format string, args ...any) {
	sc.findings = append(sc.findings, Finding{
		Pos:  sc.fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// walkBody processes a function body in statement order, then fires the
// deferred events, then analyzes any collected function literals as
// independent scopes.
func (sc *scope) walkBody(body *ast.BlockStmt) {
	sc.walkStmt(body)
	for i := len(sc.deferred) - 1; i >= 0; i-- {
		sc.callEvent(sc.deferred[i])
	}
	for _, lit := range sc.pending {
		inner := newScope(sc.fset, sc.name+".func")
		inner.walkBody(lit.Body)
		sc.findings = append(sc.findings, inner.findings...)
	}
}

func (sc *scope) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s2 := range st.List {
			sc.walkStmt(s2)
		}
	case *ast.IfStmt:
		sc.walkStmt(st.Init)
		sc.walkExpr(st.Cond)
		if terminates(st.Body) {
			// An error-exit branch (`if err != nil { unlock; return }`)
			// releases locks only on the path that leaves the function:
			// its lock events must not leak into the fall-through state.
			saved := sc.snapshotHeld()
			sc.walkStmt(st.Body)
			sc.held = saved
		} else {
			sc.walkStmt(st.Body)
		}
		sc.walkStmt(st.Else)
	case *ast.ForStmt:
		sc.walkStmt(st.Init)
		sc.walkExpr(st.Cond)
		sc.walkStmt(st.Body) // loop body once: same-class reacquisition is legal
		sc.walkStmt(st.Post)
	case *ast.RangeStmt:
		sc.walkExpr(st.X)
		sc.walkStmt(st.Body)
	case *ast.SwitchStmt:
		sc.walkStmt(st.Init)
		sc.walkExpr(st.Tag)
		sc.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		sc.walkStmt(st.Init)
		sc.walkStmt(st.Assign)
		sc.walkStmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			sc.walkExpr(e)
		}
		for _, s2 := range st.Body {
			sc.walkStmt(s2)
		}
	case *ast.SelectStmt:
		sc.walkStmt(st.Body)
	case *ast.CommClause:
		sc.walkStmt(st.Comm)
		for _, s2 := range st.Body {
			sc.walkStmt(s2)
		}
	case *ast.LabeledStmt:
		sc.walkStmt(st.Stmt)
	case *ast.ExprStmt:
		sc.walkExpr(st.X)
	case *ast.DeferStmt:
		// Defer fires at scope exit: queue the event, but still scan the
		// arguments (a deferred closure is analyzed separately).
		sc.deferred = append(sc.deferred, st.Call)
		for _, a := range st.Call.Args {
			sc.walkExpr(a)
		}
	case *ast.GoStmt:
		sc.walkExpr(st.Call.Fun)
		for _, a := range st.Call.Args {
			sc.walkExpr(a)
		}
	case *ast.AssignStmt:
		for _, l := range st.Lhs {
			sc.mutationEvent(l)
			sc.walkExpr(l)
		}
		for _, r := range st.Rhs {
			sc.walkExpr(r)
		}
	case *ast.IncDecStmt:
		sc.walkExpr(st.X)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			sc.walkExpr(r)
		}
	case *ast.SendStmt:
		sc.walkExpr(st.Chan)
		sc.walkExpr(st.Value)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.walkExpr(v)
					}
				}
			}
		}
	}
}

func (sc *scope) walkExpr(e ast.Expr) {
	switch ex := e.(type) {
	case nil:
	case *ast.CallExpr:
		sc.callEvent(ex)
	case *ast.FuncLit:
		sc.pending = append(sc.pending, ex)
	case *ast.BinaryExpr:
		sc.walkExpr(ex.X)
		sc.walkExpr(ex.Y)
	case *ast.UnaryExpr:
		sc.walkExpr(ex.X)
	case *ast.ParenExpr:
		sc.walkExpr(ex.X)
	case *ast.StarExpr:
		sc.walkExpr(ex.X)
	case *ast.IndexExpr:
		sc.walkExpr(ex.X)
		sc.walkExpr(ex.Index)
	case *ast.SelectorExpr:
		sc.walkExpr(ex.X)
	case *ast.SliceExpr:
		sc.walkExpr(ex.X)
		sc.walkExpr(ex.Low)
		sc.walkExpr(ex.High)
		sc.walkExpr(ex.Max)
	case *ast.TypeAssertExpr:
		sc.walkExpr(ex.X)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			sc.walkExpr(el)
		}
	case *ast.KeyValueExpr:
		sc.walkExpr(ex.Key)
		sc.walkExpr(ex.Value)
	}
}

// callEvent interprets one call: a lock operation, a modeled store helper,
// a durability append, an index mutation, or an ordinary call (whose
// arguments may carry function literals and nested calls).
func (sc *scope) callEvent(call *ast.CallExpr) {
	// delete(sh.entries, id) is a mutation of the live store; deletes from a
	// secondary-index bucket map need at least a shard lock.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) > 0 {
		switch chain := chainOf(call.Args[0]); {
		case strings.HasSuffix(chain, ".entries"):
			sc.requireExclusiveMu(call.Pos(), "mutation", "delete from the live entries map")
		case strings.HasSuffix(chain, ".buckets"):
			sc.requireAnyMu(call.Pos(), "delete from a secondary-index bucket map")
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		sc.walkExpr(call.Fun)
		for _, a := range call.Args {
			sc.walkExpr(a)
		}
		return
	}
	method := sel.Sel.Name
	recv := chainOf(sel.X)

	switch method {
	case "Lock", "RLock":
		if class := classify(recv); class != 0 {
			sc.acquire(call.Pos(), class, method == "Lock")
			return
		}
	case "Unlock", "RUnlock":
		if class := classify(recv); class != 0 {
			sc.release(class)
			return
		}
	case "lockSet":
		// Modeled helper: intent.Lock + mu.Lock per shard, ascending.
		sc.acquire(call.Pos(), classIntent, true)
		sc.acquire(call.Pos(), classMu, true)
		return
	case "unlockSet":
		sc.release(classMu)
		sc.release(classIntent)
		return
	case "rlockSet":
		sc.acquire(call.Pos(), classMu, false)
		return
	case "runlockSet":
		sc.release(classMu)
		return
	case "indexAdd", "indexRemove", "secAdd", "secRemove":
		sc.requireExclusiveMu(call.Pos(), "mutation", method+" on the shard indexes")
	case "bumpSeq":
		// Advances the change sequence and re-stamps maintained field
		// indexes: commit-publication work, exclusive mu only.
		sc.requireExclusiveMu(call.Pos(), "mutation", "change-sequence bump")
	case "Append":
		if strings.HasSuffix(recv, ".durable") {
			sc.requireExclusiveMu(call.Pos(), "append", "durability append")
		}
	}
	sc.walkExpr(sel.X)
	for _, a := range call.Args {
		sc.walkExpr(a)
	}
}

// mutationEvent flags assignments into the live entries map (exclusive mu
// only) and into secondary-index bucket maps (any shard lock: a fresh
// index is built under the read lock and atomically published, but a
// published index is mutated only by the exclusive-mu maintenance hooks —
// a bucket write with no lock at all is always a bug).
func (sc *scope) mutationEvent(lhs ast.Expr) {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	switch chain := chainOf(idx.X); {
	case strings.HasSuffix(chain, ".entries"):
		sc.requireExclusiveMu(lhs.Pos(), "mutation", "write to the live entries map")
	case strings.HasSuffix(chain, ".buckets"):
		sc.requireAnyMu(lhs.Pos(), "write to a secondary-index bucket map")
	}
}

func (sc *scope) acquire(pos token.Pos, class int, excl bool) {
	if q := sc.held[classQueue]; q != nil && q.n > 0 {
		sc.addf(pos, "leaf-lock",
			"%s acquires %s while holding queue.mu: the group-commit queue mutex is a leaf lock (release it before taking anything else, as groupCommit does)",
			sc.name, classNames[class])
	} else {
		for c := class + 1; c <= classQueue; c++ {
			if h := sc.held[c]; h != nil && h.n > 0 && c != classQueue {
				sc.addf(pos, "lock-order",
					"%s acquires %s while holding %s: the lock-class order is latches -> intent -> mu -> queue.mu",
					sc.name, classNames[class], classNames[c])
				break
			}
		}
	}
	h := sc.held[class]
	if h == nil {
		h = &heldLock{}
		sc.held[class] = h
	}
	h.n++
	h.excl = excl
}

// snapshotHeld deep-copies the held set so a terminating branch can be
// walked (collecting findings) without its lock events escaping.
func (sc *scope) snapshotHeld() map[int]*heldLock {
	out := make(map[int]*heldLock, len(sc.held))
	for c, h := range sc.held {
		cp := *h
		out[c] = &cp
	}
	return out
}

// terminates reports whether a block always leaves the enclosing scope:
// its last statement is a return, a branch (break/continue/goto), or a
// panic call.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// release is best-effort: branch-dependent unlocks (early returns) make an
// exact pairing undecidable without a CFG, so releasing an unheld class is
// ignored rather than reported.
func (sc *scope) release(class int) {
	if h := sc.held[class]; h != nil && h.n > 0 {
		h.n--
	}
}

// requireAnyMu demands that *some* shard mu (read or write) is held — the
// discipline for secondary-index bucket maps, whose lazy builds run under
// the read lock (see internal/dataspace/secondary.go).
func (sc *scope) requireAnyMu(pos token.Pos, what string) {
	if h := sc.held[classMu]; h == nil || h.n == 0 {
		sc.addf(pos, "unlocked-index",
			"%s performs a %s with no shard mu held at all (annotate with `lint:holds mu` or `lint:holds rmu` if the callers lock)",
			sc.name, what)
	}
}

func (sc *scope) requireExclusiveMu(pos token.Pos, family, what string) {
	h := sc.held[classMu]
	switch {
	case h == nil || h.n == 0:
		sc.addf(pos, "unlocked-"+family,
			"%s performs a %s with no shard mu held (annotate the function with `lint:holds mu` if its callers hold it)",
			sc.name, what)
	case !h.excl:
		sc.addf(pos, "rlock-"+family,
			"%s performs a %s under a read-locked mu: this requires the exclusive lock",
			sc.name, what)
	}
}

// chainOf renders a selector chain as dotted text with index expressions
// collapsed to `[]`: s.shards[i].latches[l.stripe] -> "s.shards[].latches[]".
// Non-chain expressions render as "".
func chainOf(e ast.Expr) string {
	switch ex := e.(type) {
	case *ast.Ident:
		return ex.Name
	case *ast.SelectorExpr:
		base := chainOf(ex.X)
		if base == "" {
			return ""
		}
		return base + "." + ex.Sel.Name
	case *ast.IndexExpr:
		base := chainOf(ex.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.ParenExpr:
		return chainOf(ex.X)
	case *ast.StarExpr:
		return chainOf(ex.X)
	}
	return ""
}

// classify maps a lock selector chain to its class, by suffix:
//
//	*.latches[]  -> latch
//	*.intent     -> intent
//	*.queue.mu   -> queue.mu (leaf)
//	*.mu         -> mu (shard data locks and registry mutexes)
//
// Anything else (sync primitives outside the discipline) is class 0 and
// ignored.
func classify(chain string) int {
	switch {
	case chain == "":
		return 0
	case strings.HasSuffix(chain, ".latches[]"):
		return classLatch
	case strings.HasSuffix(chain, ".intent"):
		return classIntent
	case strings.HasSuffix(chain, ".queue.mu"):
		return classQueue
	case strings.HasSuffix(chain, ".mu") || chain == "mu":
		return classMu
	}
	return 0
}
