// Package fixture seeds one violation per lock-discipline rule; the test
// asserts sdllint reports each at its expected line. This file is under
// testdata, so the Go tool never builds it — it only has to parse.
package fixture

import "sync"

type shard struct {
	mu      sync.RWMutex
	intent  sync.RWMutex
	latches [8]sync.Mutex
	queue   struct{ mu sync.Mutex }
	entries map[int]int
}

type store struct {
	shards  []*shard
	durable interface{ Append(any) uint64 }
}

// orderInversion takes the shard mu before the intent lock: mu is class 3,
// intent is class 2, and the ladder only descends.
func orderInversion(sh *shard) {
	sh.mu.Lock()
	sh.intent.Lock() // want lock-order
	sh.intent.Unlock()
	sh.mu.Unlock()
}

// latchAfterIntent latches a key bucket after taking the intent lock —
// the commuting path must latch first.
func latchAfterIntent(sh *shard) {
	sh.intent.RLock()
	sh.latches[3].Lock() // want lock-order
	sh.latches[3].Unlock()
	sh.intent.RUnlock()
}

// leafViolation acquires a shard lock while holding the group-commit
// queue mutex, which is a leaf.
func leafViolation(sh *shard) {
	sh.queue.mu.Lock()
	sh.mu.Lock() // want leaf-lock
	sh.mu.Unlock()
	sh.queue.mu.Unlock()
}

// rlockMutation writes the live entries map under a read lock.
func rlockMutation(sh *shard) {
	sh.mu.RLock()
	sh.entries[1] = 2 // want rlock-mutation
	sh.mu.RUnlock()
}

// bareMutation deletes from the live entries map with no lock at all.
func bareMutation(sh *shard) {
	delete(sh.entries, 1) // want unlocked-mutation
}

// bareAppend reaches the durability sink outside any commit critical
// section.
func bareAppend(s *store) {
	s.durable.Append(nil) // want unlocked-append
}

// earlyExitBalanced is CLEAN: the error branch unlocks and returns, the
// fall-through keeps the lock for the mutation. The linter must not let
// the branch's unlock leak into the main path.
func earlyExitBalanced(sh *shard, err error) {
	sh.mu.Lock()
	if err != nil {
		sh.mu.Unlock()
		return
	}
	sh.entries[1] = 2
	sh.mu.Unlock()
}

// annotated is CLEAN: its caller holds the exclusive mu, declared by the
// annotation below.
//
// lint:holds mu
func annotated(sh *shard) {
	sh.entries[3] = 4
}

// closureScope is CLEAN: the literal passed to run executes under the
// lock its own body takes.
func closureScope(sh *shard, run func(func())) {
	run(func() {
		sh.mu.Lock()
		sh.entries[5] = 6
		sh.mu.Unlock()
	})
}

type fieldIndex struct {
	buckets map[int]map[int]struct{}
}

type shapeStats struct{ idx *fieldIndex }

// bareIndexWrite mutates a secondary-index bucket map with no shard lock
// held at all — a published index may only be touched by the exclusive-mu
// maintenance hooks, and even a fresh build holds at least the read lock.
func bareIndexWrite(st *shapeStats) {
	st.idx.buckets[1] = nil // want unlocked-index
}

// bareIndexDelete drops a bucket with no shard lock.
func bareIndexDelete(st *shapeStats) {
	delete(st.idx.buckets, 1) // want unlocked-index
}

// bareSecMaintain calls the secondary-index maintenance hook without the
// exclusive mu the hook's bucket mutations require.
func bareSecMaintain(sh *shard) {
	sh.secAdd(1, 2) // want unlocked-mutation
}

// rlockSecMaintain holds only the read lock across maintenance — the hook
// mutates published buckets, so the exclusive lock is required.
func rlockSecMaintain(sh *shard) {
	sh.mu.RLock()
	sh.secRemove(1, 2) // want rlock-mutation
	sh.mu.RUnlock()
}

// rlockBump bumps the change sequence under a read lock; sequence bumps
// are commit publication and need the exclusive mu.
func rlockBump(sh *shard) {
	sh.mu.RLock()
	sh.bumpSeq() // want rlock-mutation
	sh.mu.RUnlock()
}

// readLockedRebuild is CLEAN: a fresh index build may run under the read
// lock (racing builders each fill their own map and publication is an
// atomic store), declared by the read-held annotation.
//
// lint:holds rmu
func readLockedRebuild(st *shapeStats) {
	st.idx.buckets[2] = nil
}

// rmuIsNotExclusive: the read-held annotation must NOT satisfy the
// exclusive-mu rules.
//
// lint:holds rmu
func rmuIsNotExclusive(sh *shard) {
	sh.entries[7] = 8 // want rlock-mutation
}
