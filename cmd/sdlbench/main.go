// Command sdlbench runs the paper-reproduction experiments (E1–E17, see
// DESIGN.md §4) as full parameter sweeps and prints one table per
// experiment. EXPERIMENTS.md records a reference run.
//
// With -json, the sweep additionally writes BENCH_<rev>.json — one run in
// the github-action-benchmark data.js shape (see internal/bench
// trajectory.go) — so committed runs form a machine-diffable performance
// trajectory; cmd/benchgate compares two such files and fails on
// regression.
//
// Usage:
//
//	sdlbench [-run E1,E4] [-quick] [-json] [-rev abc1234] [-timeout 10m]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sdl-lang/sdl/internal/bench"
)

type experiment struct {
	id    string
	quick func(ctx context.Context) (*bench.Table, error)
	full  func(ctx context.Context) (*bench.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"E1",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E1ArraySum(ctx, []int{16, 64, 256})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E1ArraySum(ctx, []int{16, 64, 256, 1024, 4096})
			}},
		{"E2",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E2PropertyList(ctx, []int{16, 128})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E2PropertyList(ctx, []int{16, 64, 256, 1024, 4096})
			}},
		{"E3",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E3SortConsensus(ctx, []int{8, 16})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E3SortConsensus(ctx, []int{8, 16, 32, 64, 128})
			}},
		{"E4",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E4RegionLabel(ctx, []int{8})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E4RegionLabel(ctx, []int{8, 12, 16, 24, 32})
			}},
		{"E5",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E5ViewScoping(ctx, []int{1000, 10000})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E5ViewScoping(ctx, []int{100, 1000, 10000, 100000})
			}},
		{"E6",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E6ConsensusScale(ctx, []int{8, 64})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E6ConsensusScale(ctx, []int{2, 8, 32, 128, 512, 2048})
			}},
		{"E7",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E7LindaVsSDL(ctx, []int{2, 8})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E7LindaVsSDL(ctx, []int{1, 2, 4, 8, 16})
			}},
		{"E8",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E8SocietyScale(ctx, []int{500})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E8SocietyScale(ctx, []int{100, 1000, 5000, 10000})
			}},
		{"E9",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E9ConcurrencyControl(ctx, []int{2, 8})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E9ConcurrencyControl(ctx, []int{1, 2, 4, 8, 16})
			}},
		{"E10",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E10WakeupIndex(ctx, []int{100})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E10WakeupIndex(ctx, []int{50, 200, 800})
			}},
		{"E11",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E11JoinPlanner(ctx, []int{100, 1000})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E11JoinPlanner(ctx, []int{100, 1000, 10000, 50000})
			}},
		{"E12",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E12ShardScaling(ctx, []int{256})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E12ShardScaling(ctx, []int{1024, 4096})
			}},
		{"E13",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E13CommutingUpserts(ctx, []int{8})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E13CommutingUpserts(ctx, []int{2, 8, 64})
			}},
		{"E14",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E14DurableUpserts(ctx, []int{250})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E14DurableUpserts(ctx, []int{250, 1000})
			}},
		{"E15",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E15RefinedAdmission(ctx, []int{8})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E15RefinedAdmission(ctx, []int{2, 8, 64})
			}},
		{"E16",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E16ReactiveWakeups(ctx, []int{100})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E16ReactiveWakeups(ctx, []int{50, 200, 800})
			}},
		{"E17",
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E17SecondaryIndex(ctx, []int{20000})
			},
			func(ctx context.Context) (*bench.Table, error) {
				return bench.E17SecondaryIndex(ctx, []int{10000, 100000, 400000})
			}},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdlbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdlbench", flag.ContinueOnError)
	var (
		only    = fs.String("run", "", "comma-separated experiment ids (default: all)")
		quick   = fs.Bool("quick", false, "small parameter sweeps")
		timeout = fs.Duration("timeout", 15*time.Minute, "total time budget")
		asJSON  = fs.Bool("json", false, "also write BENCH_<rev>.json (github-action-benchmark data.js shape)")
		rev     = fs.String("rev", "local", "revision id recorded in BENCH_<rev>.json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var tables []*bench.Table
	for _, ex := range experiments() {
		if len(selected) > 0 && !selected[ex.id] {
			continue
		}
		runFn := ex.full
		if *quick {
			runFn = ex.quick
		}
		start := time.Now()
		tbl, err := runFn(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", ex.id, err)
		}
		tables = append(tables, tbl)
		if err := tbl.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("   (%s took %v)\n\n", ex.id, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		name := "BENCH_" + *rev + ".json"
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := bench.WriteTrajectory(f, *rev, time.Now(), tables); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d experiments)\n", name, len(tables))
	}
	return nil
}
