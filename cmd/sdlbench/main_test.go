package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- string(data)
	}()
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	return <-outCh, runErr
}

func TestRunSelectedQuick(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-quick", "-run", "e5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== E5:") || strings.Contains(out, "== E1:") {
		t.Errorf("selection failed:\n%s", out)
	}
	if !strings.Contains(out, "speedup") {
		t.Errorf("table content missing:\n%s", out)
	}
}

func TestRunMultipleSelection(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-quick", "-run", "E2, E3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== E2:") || !strings.Contains(out, "== E3:") {
		t.Errorf("multi selection failed:\n%s", out)
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	exps := experiments()
	if len(exps) != 12 {
		t.Fatalf("experiments = %d, want 12", len(exps))
	}
	seen := map[string]bool{}
	for _, ex := range exps {
		if seen[ex.id] {
			t.Errorf("duplicate id %s", ex.id)
		}
		seen[ex.id] = true
		if ex.quick == nil || ex.full == nil {
			t.Errorf("%s missing a sweep", ex.id)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-no-such-flag"}) }); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-quick", "-json", "-run", "E5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var tbl map[string]any
	if err := json.Unmarshal([]byte(out), &tbl); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if tbl["id"] != "E5" {
		t.Errorf("id = %v", tbl["id"])
	}
	rows, ok := tbl["rows"].([]any)
	if !ok || len(rows) == 0 {
		t.Errorf("rows = %v", tbl["rows"])
	}
}
