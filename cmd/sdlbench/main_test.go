package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"github.com/sdl-lang/sdl/internal/bench"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- string(data)
	}()
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	return <-outCh, runErr
}

func TestRunSelectedQuick(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-quick", "-run", "e5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== E5:") || strings.Contains(out, "== E1:") {
		t.Errorf("selection failed:\n%s", out)
	}
	if !strings.Contains(out, "speedup") {
		t.Errorf("table content missing:\n%s", out)
	}
}

func TestRunMultipleSelection(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-quick", "-run", "E2, E3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== E2:") || !strings.Contains(out, "== E3:") {
		t.Errorf("multi selection failed:\n%s", out)
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	exps := experiments()
	if len(exps) != 17 {
		t.Fatalf("experiments = %d, want 17", len(exps))
	}
	seen := map[string]bool{}
	for _, ex := range exps {
		if seen[ex.id] {
			t.Errorf("duplicate id %s", ex.id)
		}
		seen[ex.id] = true
		if ex.quick == nil || ex.full == nil {
			t.Errorf("%s missing a sweep", ex.id)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-no-such-flag"}) }); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	t.Chdir(t.TempDir())
	out, err := capture(t, func() error {
		return run([]string{"-quick", "-json", "-rev", "testrev", "-run", "E5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Human tables still print alongside the trajectory file.
	if !strings.Contains(out, "== E5:") {
		t.Errorf("human table missing:\n%s", out)
	}
	f, err := os.Open("BENCH_testrev.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	run, err := bench.ReadTrajectory(f)
	if err != nil {
		t.Fatal(err)
	}
	if run.Tool != "sdlbench" || run.Commit.ID != "testrev" {
		t.Errorf("run header = %+v", run)
	}
	if len(run.Benches) == 0 {
		t.Fatal("no benches recorded")
	}
	for _, b := range run.Benches {
		if !strings.HasPrefix(b.Name, "E5 ") {
			t.Errorf("bench %q not from the selected experiment", b.Name)
		}
		if b.Unit == "" || b.Extra == "" {
			t.Errorf("bench %q missing unit/direction: %+v", b.Name, b)
		}
	}
}
