package sdl

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/sdl-lang/sdl/internal/refmodel"
)

// Secondary-index ablation equivalence: the adaptive field indexes are a
// pure access-path optimization, so the same workload must produce the
// same query results and the same final content multiset whether
// field-addressed scans hit promoted value buckets (secondary on) or walk
// the arity population (secondary off). The workload drives all the
// moving parts across the promotion point: concurrent writers churn the
// indexed shape (retract + re-assert through the engine, so incremental
// maintenance runs under every commit path) while field-scan readers
// apply the scan pressure that promotes it; a deterministic ∀ phase then
// pins exact result equality for both a field-addressed lookup and a
// two-leg join the selectivity planner reorders.
func TestSecondaryIndexAblationEquivalence(t *testing.T) {
	const (
		records = 200
		groups  = 8
		workers = 8
		readers = 4
		reads   = 30
	)
	run := func(t *testing.T, shards int, disable bool) ([]string, map[uint64]int) {
		sys := New(Options{Shards: shards, DisableSecondaryIndex: disable})
		defer sys.Close()

		// Load: records addressed by a non-lead group field, plus one
		// probe row per group for the join phase.
		for i := 0; i < records; i++ {
			sys.Store.Assert(Environment, NewTuple(Int(int64(i)), Atom("rec"), Int(int64(i%groups))))
		}
		for g := 0; g < groups; g++ {
			sys.Store.Assert(Environment, NewTuple(Atom(fmt.Sprintf("probe%d", g)), Atom("link"), Int(int64(g))))
		}

		var wg sync.WaitGroup
		per := records / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < per; j++ {
					id := int64(w*per + j)
					res, err := sys.Immediate(Request{
						Proc:    ProcessID(w + 1),
						View:    Universal(),
						Query:   Q(R(C(Int(id)), C(Atom("rec")), V("g"))),
						Asserts: []Pattern{P(C(Int(id)), C(Atom("done")), V("g"))},
					})
					if err != nil || !res.OK {
						t.Errorf("writer %d id %d: res=%+v err=%v", w, id, res, err)
						return
					}
				}
			}(w)
		}
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < reads; i++ {
					// ∃ lookups addressed purely by non-lead fields. The
					// matched record is arbitrary (and may not exist yet),
					// so only error-freedom is checked here; exact result
					// equality is pinned by the ∀ phase below.
					if _, err := sys.Immediate(Request{
						Proc:  ProcessID(100 + r),
						View:  Universal(),
						Query: Q(P(V("x"), C(Atom("done")), C(Int(int64(i%groups))))),
					}); err != nil {
						t.Errorf("reader %d scan %d: %v", r, i, err)
						return
					}
				}
			}(r)
		}
		wg.Wait()

		// Deterministic ∀ phase against the settled store: a
		// field-addressed lookup per group, then the planner-reordered
		// join over every (probe, record) pair.
		var results []string
		for g := 0; g < groups; g++ {
			res, err := sys.Immediate(Request{
				Proc:  ProcessID(200),
				View:  Universal(),
				Query: QAll(P(V("x"), C(Atom("done")), C(Int(int64(g))))),
			})
			if err != nil {
				t.Fatalf("lookup g=%d: %v", g, err)
			}
			for _, env := range res.Solutions {
				results = append(results, fmt.Sprintf("g%d:%v", g, env["x"]))
			}
		}
		res, err := sys.Immediate(Request{
			Proc: ProcessID(201),
			View: Universal(),
			Query: QAll(
				P(V("p"), C(Atom("link")), V("g")),
				P(V("y"), C(Atom("done")), V("g"))),
		})
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		for _, env := range res.Solutions {
			results = append(results, fmt.Sprintf("join:%v:%v:%v", env["p"], env["g"], env["y"]))
		}
		sort.Strings(results)
		return results, refmodel.MultisetOf(sys.Store)
	}
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			onRes, onSet := run(t, shards, false)
			offRes, offSet := run(t, shards, true)
			if len(onRes) != len(offRes) {
				t.Fatalf("result counts diverge: indexed %d, scan %d", len(onRes), len(offRes))
			}
			for i := range onRes {
				if onRes[i] != offRes[i] {
					t.Fatalf("result %d diverges: indexed %q, scan %q", i, onRes[i], offRes[i])
				}
			}
			if !refmodel.SameMultiset(onSet, offSet) {
				t.Errorf("final multisets diverge: indexed %d distinct tuples, scan %d",
					len(onSet), len(offSet))
			}
			// Sanity: every record was converted and found — per-group
			// lookups return all records, the join pairs each probe with
			// its whole group.
			if want := records + records; len(onRes) != want {
				t.Errorf("deterministic phase returned %d solutions, want %d", len(onRes), want)
			}
		})
	}
}
