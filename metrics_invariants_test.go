package sdl

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
)

// Metrics invariants over a whole System run: the observability layer's
// counters must agree with the ground truth the commit log records, per
// kind and in aggregate, and the waiter gauge must drain when the system
// shuts down.
func TestSystemMetricsInvariants(t *testing.T) {
	sys := New(Options{Mode: Optimistic, Shards: 4})
	clog := NewCommitLog()
	clog.Attach(sys.Store)
	sys.Metrics().SetObserved(true)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Workload: immediate increments on per-worker counters, plus delayed
	// consumers fed by a producer, so both kinds record.
	const workers = 4
	const ops = 100
	for w := 0; w < workers; w++ {
		sys.Store.Assert(Environment, NewTuple(Atom(fmt.Sprintf("ctr%d", w)), Int(0)))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lead := Atom(fmt.Sprintf("ctr%d", w))
			for i := 0; i < ops; i++ {
				res, err := sys.Immediate(Request{
					Proc:    ProcessID(w + 1),
					View:    Universal(),
					Query:   Q(R(C(lead), V("n"))),
					Asserts: []Pattern{P(C(lead), E(Add(X("n"), Lit(Int(1)))))},
				})
				if err != nil || !res.OK {
					t.Errorf("worker %d op %d: res=%+v err=%v", w, i, res, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			res, err := sys.Delayed(ctx, Request{
				Proc:    ProcessID(100),
				View:    Universal(),
				Query:   Q(R(C(Atom("job")), V("v"))),
				Asserts: []Pattern{P(C(Atom("done")), V("v"))},
			})
			if err != nil || !res.OK {
				t.Errorf("consumer %d: res=%+v err=%v", i, res, err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		sys.Store.Assert(Environment, NewTuple(Atom("job"), Int(int64(i))))
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	snap := sys.Snapshot()

	// Commit counters equal the transitions the commit log observed, minus
	// the environment's direct Asserts (which bypass the engine but still
	// commit on the store).
	records := uint64(clog.Len())
	if snap.StoreCommits != records {
		t.Errorf("store commits %d, commit records %d", snap.StoreCommits, records)
	}
	const envAsserts = workers + 10
	if got := snap.TotalCommits(); got != records-envAsserts {
		t.Errorf("txn commits %d, want %d (records %d - env asserts %d)",
			got, records-envAsserts, records, envAsserts)
	}

	// Attempts dominate commits, per kind and in total.
	if snap.TotalAttempts() < snap.TotalCommits() {
		t.Errorf("attempts %d < commits %d", snap.TotalAttempts(), snap.TotalCommits())
	}
	for kind, c := range snap.Txn {
		if c.Attempts < c.Commits {
			t.Errorf("%s: attempts %d < commits %d", kind, c.Attempts, c.Commits)
		}
		// One latency observation per attempt while observed, and bucket
		// counts internally consistent.
		lat := snap.TxnLatency[kind]
		if lat.Count != c.Attempts {
			t.Errorf("%s: latency count %d, attempts %d", kind, lat.Count, c.Attempts)
		}
		var buckets uint64
		for _, n := range lat.Counts {
			buckets += n
		}
		if buckets != lat.Count {
			t.Errorf("%s: bucket sum %d, count %d", kind, buckets, lat.Count)
		}
	}
	if imm := snap.Txn["immediate"]; imm.Commits != workers*ops {
		t.Errorf("immediate commits %d, want %d", imm.Commits, workers*ops)
	}
	if del := snap.Txn["delayed"]; del.Commits != 10 {
		t.Errorf("delayed commits %d, want 10", del.Commits)
	}

	// Lock discipline: the 4-shard registry exposes per-shard resolution,
	// and every environment Assert write-locked at least one shard. (Write
	// locks no longer dominate commits: group commit drains a whole batch
	// of key-mode commits under one acquisition.)
	if len(snap.Shards) != 4 {
		t.Fatalf("shard counters = %d, want 4", len(snap.Shards))
	}
	if _, writes := snap.ShardLockTotals(); writes < envAsserts {
		t.Errorf("write locks %d < env asserts %d", writes, envAsserts)
	}

	// Commutativity-aware commit path accounting. Every engine commit in
	// this workload is planned (concrete leads, universal views), so each
	// one either committed under key latches or was demoted to shard
	// locking — nothing else.
	if got := snap.KeyCommits + snap.ShardFallbacks; got != snap.TotalCommits() {
		t.Errorf("key commits %d + shard fallbacks %d = %d, want %d engine commits",
			snap.KeyCommits, snap.ShardFallbacks, got, snap.TotalCommits())
	}
	// The full commit-path ladder: every mutating store commit is exactly
	// one of key-latched, shard-fallback, or coarse. The environment's
	// direct Asserts are this workload's only coarse commits.
	if got := snap.KeyCommits + snap.ShardFallbacks + snap.CoarseCommits; got != snap.StoreCommits {
		t.Errorf("commit ladder: key %d + fallback %d + coarse %d = %d, want %d store commits",
			snap.KeyCommits, snap.ShardFallbacks, snap.CoarseCommits, got, snap.StoreCommits)
	}
	if snap.CoarseCommits != envAsserts {
		t.Errorf("coarse commits %d, want %d (env asserts only)", snap.CoarseCommits, envAsserts)
	}
	// Footprint admission accounting: the planned subset never exceeds the
	// admissions per class, and every engine commit here came from a
	// planned execution.
	var plannedTotal uint64
	for class, admits := range snap.FootprintAdmissions {
		if p := snap.FootprintPlanned[class]; p > admits {
			t.Errorf("class %s: planned %d > admitted %d", class, p, admits)
		}
	}
	for _, p := range snap.FootprintPlanned {
		plannedTotal += p
	}
	if plannedTotal < snap.TotalCommits() {
		t.Errorf("planned executions %d < engine commits %d (an unplanned commit slipped through)",
			plannedTotal, snap.TotalCommits())
	}
	// Group-commit batches contain only key-mode commits (multi-shard key
	// commits publish directly), batch sizes are at least one, and every
	// key commit acquired at least one key latch.
	if snap.GroupBatch.Sum > snap.KeyCommits {
		t.Errorf("group-batched commits %d > key commits %d", snap.GroupBatch.Sum, snap.KeyCommits)
	}
	if snap.GroupBatch.Sum < snap.GroupBatch.Count {
		t.Errorf("group batch sum %d < batch count %d (empty batch observed)",
			snap.GroupBatch.Sum, snap.GroupBatch.Count)
	}
	if snap.KeyLockTotal() < snap.KeyCommits {
		t.Errorf("key-latch acquisitions %d < key commits %d", snap.KeyLockTotal(), snap.KeyCommits)
	}
	// This workload is write-only from the engine's perspective (every
	// query retracts), so the epoch read path must not have engaged.
	if snap.EpochReads != 0 {
		t.Errorf("epoch reads %d on a retract-only workload, want 0", snap.EpochReads)
	}

	// Epoch read path: statically read-only planned queries evaluate
	// lock-free. With no concurrent writers every one must validate, and
	// the first read of each touched shard rebuilds its snapshot.
	const reads = 50
	for i := 0; i < reads; i++ {
		res, err := sys.Immediate(Request{
			Proc:  ProcessID(1),
			View:  Universal(),
			Query: Q(P(C(Atom("ctr0")), V("n"))),
		})
		if err != nil || !res.OK {
			t.Fatalf("read %d: res=%+v err=%v", i, res, err)
		}
	}
	after := sys.Snapshot()
	if got := after.EpochReads - snap.EpochReads; got != reads {
		t.Errorf("epoch reads %d, want %d", got, reads)
	}
	if after.EpochFallbacks != snap.EpochFallbacks {
		t.Errorf("epoch fallbacks %d with no concurrent writers, want 0",
			after.EpochFallbacks-snap.EpochFallbacks)
	}
	if after.EpochRebuilds == 0 {
		t.Error("epoch reads ran but no snapshot was ever rebuilt")
	}
	// Lock-free reads commit without key latches or store writes.
	if after.KeyCommits != snap.KeyCommits || after.StoreCommits != snap.StoreCommits {
		t.Errorf("read-only epoch phase changed commit counters: key %d->%d store %d->%d",
			snap.KeyCommits, after.KeyCommits, snap.StoreCommits, after.StoreCommits)
	}
	if got := after.TotalCommits() - snap.TotalCommits(); got != reads {
		t.Errorf("engine commits grew by %d over the read phase, want %d", got, reads)
	}

	// Refined admission under a restricted view: a request the compiler's
	// interprocedural refiner classified Ground, under a plannable
	// (pure-matcher) view, takes the key-latch path — while the identical
	// request without the refinement (class Unknown) serializes on the
	// coarse full-store lock. This is the fast-path widening the refiner
	// buys, observed through the admission counters.
	ctrPat := P(C(Atom("ctr0")), W())
	restricted := NewView(Union(Pat(ctrPat)), Union(Pat(ctrPat)))
	pre := sys.Snapshot()
	const refined = 20
	for i := 0; i < refined; i++ {
		res, err := sys.Immediate(Request{
			Proc:      ProcessID(2),
			View:      restricted,
			Footprint: footprint.Ground,
			Query:     Q(R(C(Atom("ctr0")), V("n"))),
			Asserts:   []Pattern{P(C(Atom("ctr0")), E(Add(X("n"), Lit(Int(1)))))},
		})
		if err != nil || !res.OK {
			t.Fatalf("refined op %d: res=%+v err=%v", i, res, err)
		}
	}
	mid := sys.Snapshot()
	if got := mid.KeyCommits - pre.KeyCommits; got != refined {
		t.Errorf("refined view-restricted phase: key commits grew by %d, want %d", got, refined)
	}
	if mid.CoarseCommits != pre.CoarseCommits {
		t.Errorf("refined view-restricted phase took %d coarse commits, want 0",
			mid.CoarseCommits-pre.CoarseCommits)
	}
	if got := mid.FootprintPlanned["ground"] - pre.FootprintPlanned["ground"]; got < refined {
		t.Errorf("ground planned admissions grew by %d, want >= %d", got, refined)
	}
	const unrefined = 5
	for i := 0; i < unrefined; i++ {
		res, err := sys.Immediate(Request{
			Proc:    ProcessID(2),
			View:    restricted,
			Query:   Q(R(C(Atom("ctr0")), V("n"))),
			Asserts: []Pattern{P(C(Atom("ctr0")), E(Add(X("n"), Lit(Int(1)))))},
		})
		if err != nil || !res.OK {
			t.Fatalf("unrefined op %d: res=%+v err=%v", i, res, err)
		}
	}
	post := sys.Snapshot()
	if got := post.CoarseCommits - mid.CoarseCommits; got != unrefined {
		t.Errorf("unrefined view-restricted phase: coarse commits grew by %d, want %d", got, unrefined)
	}
	if post.KeyCommits != mid.KeyCommits {
		t.Errorf("unrefined view-restricted phase took %d key commits, want 0",
			post.KeyCommits-mid.KeyCommits)
	}
	if got := post.FootprintPlanned["unknown"] - mid.FootprintPlanned["unknown"]; got != 0 {
		t.Errorf("unknown-class planned admissions grew by %d under a restricted view, want 0", got)
	}
	if got := post.KeyCommits + post.ShardFallbacks + post.CoarseCommits; got != post.StoreCommits {
		t.Errorf("commit ladder after view phases: key %d + fallback %d + coarse %d = %d, want %d",
			post.KeyCommits, post.ShardFallbacks, post.CoarseCommits, got, post.StoreCommits)
	}

	// Reactive delta-wakeup accounting: every guard re-evaluation after a
	// subscription fired was either driven by a concrete delta batch or
	// fell back to a full re-query — nothing else; a commit can suppress at
	// most the signals it raised; and the consensus detector can only
	// elide kicks that commits actually offered.
	if got := post.ReactiveHits + post.ReactiveFallbacks; got != post.ReactiveEvals {
		t.Errorf("reactive evals %d != hits %d + fallbacks %d",
			post.ReactiveEvals, post.ReactiveHits, post.ReactiveFallbacks)
	}
	if post.ReactiveSuppressed > post.ReactiveSignals {
		t.Errorf("reactive suppressed %d > signals %d",
			post.ReactiveSuppressed, post.ReactiveSignals)
	}
	if post.ConsensusKicksSuppressed > post.StoreCommits {
		t.Errorf("consensus kicks suppressed %d > store commits %d",
			post.ConsensusKicksSuppressed, post.StoreCommits)
	}
	// Every delayed block registered a subscription wait that ended in
	// exactly one re-evaluation (this workload cancels nothing).
	if del := post.Txn["delayed"]; post.ReactiveEvals != del.Blocks {
		t.Errorf("reactive evals %d != delayed blocks %d", post.ReactiveEvals, del.Blocks)
	}

	// Secondary-index accounting: every non-lead field scan is served by
	// exactly one access path — a promoted field index or the arity-walk
	// fallback — so the two access-path counters partition the total, and
	// a field-addressed read phase heavy enough to cross the promotion
	// bar must move both the promotion counter and the indexed-scan
	// counter.
	for i := 0; i < 40; i++ {
		sys.Store.Assert(Environment, NewTuple(Int(int64(1000+i)), Atom("mark"), Int(int64(i%4))))
	}
	preSec := sys.Snapshot()
	const fieldReads = 30
	for i := 0; i < fieldReads; i++ {
		res, err := sys.Immediate(Request{
			Proc:  ProcessID(3),
			View:  Universal(),
			Query: Q(P(V("x"), C(Atom("mark")), C(Int(int64(i%4))))),
		})
		if err != nil || !res.OK {
			t.Fatalf("field read %d: res=%+v err=%v", i, res, err)
		}
	}
	secSnap := sys.Snapshot()
	if got := secSnap.SecondaryIndexedScans + secSnap.SecondaryArityScans; got != secSnap.SecondaryFieldScans {
		t.Errorf("secondary access paths: indexed %d + arity %d = %d, want %d field scans",
			secSnap.SecondaryIndexedScans, secSnap.SecondaryArityScans, got, secSnap.SecondaryFieldScans)
	}
	if secSnap.SecondaryFieldScans == preSec.SecondaryFieldScans {
		t.Error("field-addressed phase recorded no field scans")
	}
	if secSnap.SecondaryPromotions == 0 {
		t.Error("scan pressure promoted no shape")
	}
	if secSnap.SecondaryIndexedScans == preSec.SecondaryIndexedScans {
		t.Error("no scan was served by a promoted index after the promotion bar")
	}
	if secSnap.SecondaryDemotions > secSnap.SecondaryPromotions {
		t.Errorf("secondary demotions %d > promotions %d", secSnap.SecondaryDemotions, secSnap.SecondaryPromotions)
	}

	// All waiters were satisfied, and shutdown leaves both gauges at zero.
	sys.Close()
	final := sys.Snapshot()
	if d := final.WaiterDepth; d != 0 {
		t.Errorf("waiter depth %d after Close, want 0", d)
	}
	if d := final.ReactiveSubscriptions; d != 0 {
		t.Errorf("live subscriptions %d after Close, want 0", d)
	}
}

// The blocked-guard gauges must drain even when waiters are cancelled
// rather than satisfied. With reactive wakeups on, a blocked delayed
// transaction registers a subscription; with them off, a one-shot waiter —
// both gauges must reach zero after cancellation either way.
func TestWaiterDepthDrainsOnCancel(t *testing.T) {
	for _, reactive := range []bool{true, false} {
		t.Run(fmt.Sprintf("reactive=%t", reactive), func(t *testing.T) {
			sys := New(Options{DisableReactive: !reactive})
			defer sys.Close()
			depth := func() int64 {
				snap := sys.Snapshot()
				return snap.WaiterDepth + snap.ReactiveSubscriptions
			}
			ctx, cancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, err := sys.Delayed(ctx, Request{
						Proc:  ProcessID(i + 1),
						View:  Universal(),
						Query: Q(R(C(Atom("never")), C(Int(int64(i))))),
					})
					if err == nil {
						t.Error("cancelled delayed txn returned nil error")
					}
				}(i)
			}
			// Wait until every waiter has registered, then cancel them all.
			deadline := time.Now().Add(5 * time.Second)
			for depth() < 8 {
				if time.Now().After(deadline) {
					t.Fatalf("waiters never registered: depth %d", depth())
				}
				time.Sleep(time.Millisecond)
			}
			snap := sys.Snapshot()
			if reactive && snap.ReactiveSubscriptions != 8 {
				t.Errorf("reactive subscriptions %d, want 8", snap.ReactiveSubscriptions)
			}
			if !reactive && snap.WaiterDepth != 8 {
				t.Errorf("waiter depth %d, want 8", snap.WaiterDepth)
			}
			cancel()
			wg.Wait()
			if d := depth(); d != 0 {
				t.Errorf("blocked-guard depth %d after cancellation, want 0", d)
			}
		})
	}
}
