package sdl

import (
	"context"
)

// Options configures a System.
type Options struct {
	// Mode selects the transaction engine's concurrency control
	// (default Coarse).
	Mode Mode
	// Trace attaches a Recorder when positive (event cap) or when -1
	// (unbounded).
	Trace int
	// Shards sets the dataspace shard count (see WithShards); 0 selects
	// the GOMAXPROCS-based default.
	Shards int
	// Scheduler installs a deterministic schedule controller (see
	// NewScheduler). Every runtime layer draws its scheduling decisions
	// from it, making adversarial interleavings reproducible from the
	// controller's seed. Nil (the default) leaves all hook points as
	// no-ops.
	Scheduler *SchedController
	// DisableCommuting turns off the commutativity-aware commit path
	// (per-key latches, group commit, epoch reads), demoting every planned
	// commit to shard-level locking. The E13 ablation baseline.
	DisableCommuting bool
}

// System bundles a complete SDL runtime: store, engine, consensus manager,
// process runtime, and optional trace recorder. It is the recommended
// entry point for applications.
type System struct {
	Store    *Store
	Engine   *Engine
	Cons     *ConsensusManager
	Runtime  *Runtime
	Recorder *Recorder // nil unless Options.Trace was set
}

// New assembles a System.
func New(opts Options) *System {
	store := NewStore(WithShards(opts.Shards), WithScheduler(opts.Scheduler),
		WithCommuting(!opts.DisableCommuting))
	var rec *Recorder
	switch {
	case opts.Trace > 0:
		rec = NewRecorder(opts.Trace)
		rec.Attach(store)
	case opts.Trace < 0:
		rec = NewRecorder(0)
		rec.Attach(store)
	}
	mode := opts.Mode
	if mode == 0 {
		mode = Coarse
	}
	engine := NewEngine(store, mode)
	cons := NewConsensusManager(engine)
	rt := NewRuntime(engine, cons)
	return &System{Store: store, Engine: engine, Cons: cons, Runtime: rt, Recorder: rec}
}

// Close shuts the system down: processes are cancelled and the consensus
// detector stops.
func (s *System) Close() {
	s.Runtime.Shutdown()
	s.Cons.Close()
}

// Metrics returns the system's metrics registry (shared by the store,
// engine, consensus manager, and runtime). Use SetObserved(true) to enable
// the gated instruments (latency/footprint/fan-out histograms) before a
// workload you want to profile.
func (s *System) Metrics() *MetricsRegistry { return s.Store.Metrics() }

// Snapshot returns a point-in-time copy of the system's metrics: per-shard
// lock acquisitions, transaction attempts/commits/retries/blocks by kind,
// waiter depth and wakeup fan-out, consensus rounds and community sizes,
// and checkpoint timings.
func (s *System) Snapshot() MetricsSnapshot { return s.Store.Metrics().Snapshot() }

// Define registers a process definition.
func (s *System) Define(defs ...*Definition) error {
	for _, d := range defs {
		if err := s.Runtime.Define(d); err != nil {
			return err
		}
	}
	return nil
}

// SpawnVals spawns a process with the given argument values.
func (s *System) SpawnVals(name string, args ...Value) (ProcessID, error) {
	return s.Runtime.Spawn(name, args...)
}

// Run spawns the named process and waits until the whole society
// terminates or ctx is cancelled.
func (s *System) Run(ctx context.Context, name string, args ...Value) error {
	if _, err := s.Runtime.Spawn(name, args...); err != nil {
		return err
	}
	return s.Runtime.WaitCtx(ctx)
}

// Immediate issues a one-shot immediate transaction from the environment.
func (s *System) Immediate(req Request) (Result, error) {
	return s.Engine.Immediate(req)
}

// Delayed issues a one-shot delayed transaction from the environment.
func (s *System) Delayed(ctx context.Context, req Request) (Result, error) {
	return s.Engine.Delayed(ctx, req)
}

// CollectInt scans tuples with the given leading atom and arity 2 and
// returns their integer second fields (a common test/report helper).
func (s *System) CollectInt(lead Value) []int64 {
	var out []int64
	s.Store.Snapshot(func(r Reader) {
		r.Scan(2, lead, true, func(_ TupleID, t Tuple) bool {
			if n, ok := t.Field(1).AsInt(); ok {
				out = append(out, n)
			}
			return true
		})
	})
	return out
}
