package sdl

import (
	"context"
)

// Options configures a System.
type Options struct {
	// Mode selects the transaction engine's concurrency control
	// (default Coarse).
	Mode Mode
	// Trace attaches a Recorder when positive (event cap) or when -1
	// (unbounded).
	Trace int
	// Shards sets the dataspace shard count (see WithShards); 0 selects
	// the GOMAXPROCS-based default.
	Shards int
	// Scheduler installs a deterministic schedule controller (see
	// NewScheduler). Every runtime layer draws its scheduling decisions
	// from it, making adversarial interleavings reproducible from the
	// controller's seed. Nil (the default) leaves all hook points as
	// no-ops.
	Scheduler *SchedController
	// DisableCommuting turns off the commutativity-aware commit path
	// (per-key latches, group commit, epoch reads), demoting every planned
	// commit to shard-level locking. The E13 ablation baseline.
	DisableCommuting bool
	// DisableReactive turns off delta-driven wakeups for blocked delayed
	// transactions and consensus kick suppression: every covering commit
	// wakes every blocked guard for a full re-query. The E16 ablation
	// baseline.
	DisableReactive bool
	// DisableSecondaryIndex turns off adaptive secondary field indexes and
	// the selectivity-guided join planner they feed: non-lead constrained
	// scans degrade to full arity walks and plans to the boundness
	// heuristic. The E17 ablation baseline.
	DisableSecondaryIndex bool
	// WALDir enables durability: commits are appended to a write-ahead
	// log in this directory and become visible only once durable (per
	// WALSync), and Open recovers any state the directory already holds —
	// newest valid checkpoint plus the log suffix, verified against the
	// reference semantics — before the system accepts work. Empty
	// disables the WAL.
	WALDir string
	// WALSync selects the fsync policy (WALSyncCommit, WALSyncBatch,
	// WALSyncInterval). Default WALSyncCommit.
	WALSync WALSyncMode
}

// System bundles a complete SDL runtime: store, engine, consensus manager,
// process runtime, and optional trace recorder. It is the recommended
// entry point for applications.
type System struct {
	Store    *Store
	Engine   *Engine
	Cons     *ConsensusManager
	Runtime  *Runtime
	Recorder *Recorder // nil unless Options.Trace was set
	// WAL is the open write-ahead log (nil unless Options.WALDir was set).
	WAL *WAL
	// Recovery reports what the WAL reconstructed at Open (nil without a
	// WAL; zero-valued for a fresh directory).
	Recovery *WALRecoveryStats
}

// New assembles a System. It panics if Options.WALDir is set and the log
// cannot be opened or recovered — durable systems should prefer Open,
// which returns the error (and the recovery report) instead.
func New(opts Options) *System {
	sys, err := Open(opts)
	if err != nil {
		panic("sdl: " + err.Error())
	}
	return sys
}

// Open assembles a System, recovering durable state first when
// Options.WALDir is set: the newest valid checkpoint is restored, the log
// suffix is replayed and verified against the reference semantics, the
// recovered state is re-checkpointed, and only then is the log attached so
// every commit is durable before it becomes visible.
func Open(opts Options) (*System, error) {
	store := NewStore(WithShards(opts.Shards), WithScheduler(opts.Scheduler),
		WithCommuting(!opts.DisableCommuting), WithReactive(!opts.DisableReactive),
		WithSecondaryIndex(!opts.DisableSecondaryIndex))
	var (
		wlog     *WAL
		recovery *WALRecoveryStats
	)
	if opts.WALDir != "" {
		var err error
		wlog, err = OpenWAL(opts.WALDir, WALOptions{Sync: opts.WALSync, Metrics: store.Metrics()})
		if err != nil {
			return nil, err
		}
		recovery, err = wlog.Recover(store)
		if err != nil {
			wlog.Close()
			return nil, err
		}
		store.SetDurable(wlog)
	}
	var rec *Recorder
	switch {
	case opts.Trace > 0:
		rec = NewRecorder(opts.Trace)
		rec.Attach(store)
	case opts.Trace < 0:
		rec = NewRecorder(0)
		rec.Attach(store)
	}
	mode := opts.Mode
	if mode == 0 {
		mode = Coarse
	}
	engine := NewEngine(store, mode)
	cons := NewConsensusManager(engine)
	rt := NewRuntime(engine, cons)
	return &System{Store: store, Engine: engine, Cons: cons, Runtime: rt, Recorder: rec,
		WAL: wlog, Recovery: recovery}, nil
}

// Close shuts the system down: processes are cancelled, the consensus
// detector stops, and — when a WAL is attached — the final state is
// checkpointed and the log is synced and closed, so the next Open restores
// from the checkpoint without replay. The returned error reports
// checkpoint or log-close failures (always nil without a WAL).
func (s *System) Close() error {
	s.Runtime.Shutdown()
	s.Cons.Close()
	if s.WAL == nil {
		return nil
	}
	ckptErr := s.WAL.Checkpoint(s.Store)
	if err := s.WAL.Close(); err != nil {
		return err
	}
	return ckptErr
}

// Metrics returns the system's metrics registry (shared by the store,
// engine, consensus manager, and runtime). Use SetObserved(true) to enable
// the gated instruments (latency/footprint/fan-out histograms) before a
// workload you want to profile.
func (s *System) Metrics() *MetricsRegistry { return s.Store.Metrics() }

// Snapshot returns a point-in-time copy of the system's metrics: per-shard
// lock acquisitions, transaction attempts/commits/retries/blocks by kind,
// waiter depth and wakeup fan-out, consensus rounds and community sizes,
// and checkpoint timings.
func (s *System) Snapshot() MetricsSnapshot { return s.Store.Metrics().Snapshot() }

// Define registers a process definition.
func (s *System) Define(defs ...*Definition) error {
	for _, d := range defs {
		if err := s.Runtime.Define(d); err != nil {
			return err
		}
	}
	return nil
}

// SpawnVals spawns a process with the given argument values.
func (s *System) SpawnVals(name string, args ...Value) (ProcessID, error) {
	return s.Runtime.Spawn(name, args...)
}

// Run spawns the named process and waits until the whole society
// terminates or ctx is cancelled.
func (s *System) Run(ctx context.Context, name string, args ...Value) error {
	if _, err := s.Runtime.Spawn(name, args...); err != nil {
		return err
	}
	return s.Runtime.WaitCtx(ctx)
}

// Immediate issues a one-shot immediate transaction from the environment.
func (s *System) Immediate(req Request) (Result, error) {
	return s.Engine.Immediate(req)
}

// Delayed issues a one-shot delayed transaction from the environment.
func (s *System) Delayed(ctx context.Context, req Request) (Result, error) {
	return s.Engine.Delayed(ctx, req)
}

// CollectInt scans tuples with the given leading atom and arity 2 and
// returns their integer second fields (a common test/report helper).
func (s *System) CollectInt(lead Value) []int64 {
	var out []int64
	s.Store.Snapshot(func(r Reader) {
		r.Scan(2, lead, true, func(_ TupleID, t Tuple) bool {
			if n, ok := t.Field(1).AsInt(); ok {
				out = append(out, n)
			}
			return true
		})
	})
	return out
}
