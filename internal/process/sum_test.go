package process

// Integration tests: the paper's three array-summation programs (§3.1),
// executed end-to-end through the process runtime. They double as the
// reference implementations for experiment E1.

import (
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
)

// ints is a convenience literal.
func iv(n int64) expr.Expr { return expr.Const(tuple.Int(n)) }

// sumArray loads <k, A(k)> tuples for k = 1..n with A(k) = k.
func loadArray(s *dataspace.Store, n int64) int64 {
	total := int64(0)
	for k := int64(1); k <= n; k++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(k), tuple.Int(k)))
		total += k
	}
	return total
}

// --- Sum3: the replication program -------------------------------------
//
//	PROCESS Sum3
//	≋ [ ∃ν,µ,α,β: <ν,α>!, <µ,β>! : ν ≠ µ → <µ, α+β> ]
func sum3Def() *Definition {
	return &Definition{
		Name: "Sum3",
		Body: []Stmt{Replicate{Branches: []Branch{{
			Guard: Transact{
				Kind: Immediate,
				Query: pattern.Q(
					pattern.R(pattern.V("n"), pattern.V("a")),
					pattern.R(pattern.V("m"), pattern.V("b")),
				).Where(expr.Ne(expr.V("n"), expr.V("m"))),
				Asserts: []pattern.Pattern{pattern.P(
					pattern.V("m"),
					pattern.E(expr.Add(expr.V("a"), expr.V("b"))),
				)},
			},
		}}}},
	}
}

func TestSum3Replication(t *testing.T) {
	for _, mode := range []txn.Mode{txn.Coarse, txn.Optimistic} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s, rt := newRuntime(t, mode)
			want := loadArray(s, 16)
			if err := rt.Define(sum3Def()); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Spawn("Sum3"); err != nil {
				t.Fatal(err)
			}
			waitDone(t, rt, 20*time.Second)
			if s.Len() != 1 {
				t.Fatalf("store len = %d, want 1", s.Len())
			}
			var got int64
			s.Snapshot(func(r dataspace.Reader) {
				r.Each(func(inst dataspace.Instance) bool {
					got, _ = inst.Tuple.Field(1).AsInt()
					return false
				})
			})
			if got != want {
				t.Errorf("sum = %d, want %d", got, want)
			}
		})
	}
}

// --- Sum2: the asynchronous program ------------------------------------
//
//	PROCESS Sum2(k, j)
//	∃α,β: <k−2^(j−1), α, j>!, <k, β, j>! ⇒ <k, α+β, j+1>
func sum2Def() *Definition {
	return &Definition{
		Name:   "Sum2",
		Params: []string{"k", "j"},
		Body: []Stmt{Transact{
			Kind: Delayed,
			Query: pattern.Q(
				pattern.R(
					pattern.E(expr.Sub(expr.V("k"), expr.Fn("pow2", expr.Sub(expr.V("j"), iv(1))))),
					pattern.V("alpha"),
					pattern.V("j"),
				),
				pattern.R(pattern.V("k"), pattern.V("beta"), pattern.V("j")),
			),
			Asserts: []pattern.Pattern{pattern.P(
				pattern.V("k"),
				pattern.E(expr.Add(expr.V("alpha"), expr.V("beta"))),
				pattern.E(expr.Add(expr.V("j"), iv(1))),
			)},
		}},
	}
}

func TestSum2Asynchronous(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	const n, phases = 16, 4
	want := int64(0)
	for k := int64(1); k <= n; k++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(k), tuple.Int(k), tuple.Int(1)))
		want += k
	}
	if err := rt.Define(sum2Def()); err != nil {
		t.Fatal(err)
	}
	// Society: Sum2(k, j) for 1 ≤ j ≤ a and k mod 2^j == 0.
	for j := int64(1); j <= phases; j++ {
		for k := int64(1); k <= n; k++ {
			if k%(1<<j) == 0 {
				if _, err := rt.Spawn("Sum2", tuple.Int(k), tuple.Int(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	waitDone(t, rt, 20*time.Second)
	if s.Len() != 1 {
		t.Fatalf("store len = %d, want 1", s.Len())
	}
	var got, phase int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			got, _ = inst.Tuple.Field(1).AsInt()
			phase, _ = inst.Tuple.Field(2).AsInt()
			return false
		})
	})
	if got != want || phase != phases+1 {
		t.Errorf("sum = %d (phase %d), want %d (phase %d)", got, phase, want, phases+1)
	}
}

// --- Sum1: the synchronous (consensus-barrier) program ------------------
//
//	PROCESS Sum1(k, j)
//	∃α,β: <k−2^(j−1), α>!, <k, β>! ⇒ <k, α+β> ;
//	[ k mod 2^(j+1) = 0 ⇑ Sum1(k, j+1)
//	| k mod 2^(j+1) ≠ 0 ⇑ skip ]
func sum1Def() *Definition {
	phaseDone := expr.Eq(
		expr.Mod(expr.V("k"), expr.Fn("pow2", expr.Add(expr.V("j"), iv(1)))), iv(0))
	phaseNotDone := expr.Ne(
		expr.Mod(expr.V("k"), expr.Fn("pow2", expr.Add(expr.V("j"), iv(1)))), iv(0))
	return &Definition{
		Name:   "Sum1",
		Params: []string{"k", "j"},
		Body: []Stmt{
			Transact{
				Kind: Delayed,
				Query: pattern.Q(
					pattern.R(
						pattern.E(expr.Sub(expr.V("k"), expr.Fn("pow2", expr.Sub(expr.V("j"), iv(1))))),
						pattern.V("alpha"),
					),
					pattern.R(pattern.V("k"), pattern.V("beta")),
				),
				Asserts: []pattern.Pattern{pattern.P(
					pattern.V("k"),
					pattern.E(expr.Add(expr.V("alpha"), expr.V("beta"))),
				)},
			},
			Select{Branches: []Branch{
				{Guard: Transact{
					Kind:  Consensus,
					Query: pattern.Query{Quant: pattern.Exists, Test: phaseDone},
					Actions: []Action{Spawn{
						Type: "Sum1",
						Args: []expr.Expr{expr.V("k"), expr.Add(expr.V("j"), iv(1))},
					}},
				}},
				{Guard: Transact{
					Kind:  Consensus,
					Query: pattern.Query{Quant: pattern.Exists, Test: phaseNotDone},
				}},
			}},
		},
	}
}

func TestSum1SynchronousConsensus(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	const n = 8
	want := loadArray(s, n)
	if err := rt.Define(sum1Def()); err != nil {
		t.Fatal(err)
	}
	// Initial society: Sum1(k, 1) for even k.
	for k := int64(2); k <= n; k += 2 {
		if _, err := rt.Spawn("Sum1", tuple.Int(k), tuple.Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, rt, 30*time.Second)
	if s.Len() != 1 {
		t.Fatalf("store len = %d, want 1", s.Len())
	}
	var got int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			got, _ = inst.Tuple.Field(1).AsInt()
			return false
		})
	})
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if fires := rt.Consensus().Fires(); fires < 2 {
		t.Errorf("consensus fires = %d, want phase barriers", fires)
	}
}

func TestSelectionWithTwoConsensusGuards(t *testing.T) {
	// Directly exercises the alternatives mechanism: two processes, each
	// in a selection with two mutually exclusive consensus guards.
	s, rt := newRuntime(t, txn.Coarse)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))
	if err := rt.Define(&Definition{
		Name:   "Chooser",
		Params: []string{"x"},
		Body: []Stmt{Select{Branches: []Branch{
			{Guard: Transact{
				Kind:    Consensus,
				Query:   pattern.Query{Quant: pattern.Exists, Test: expr.Eq(expr.Mod(expr.V("x"), iv(2)), iv(0))},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("even")), pattern.V("x"))},
			}},
			{Guard: Transact{
				Kind:    Consensus,
				Query:   pattern.Query{Quant: pattern.Exists, Test: expr.Ne(expr.Mod(expr.V("x"), iv(2)), iv(0))},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("odd")), pattern.V("x"))},
			}},
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{3, 4} {
		if _, err := rt.Spawn("Chooser", tuple.Int(x)); err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, rt, 10*time.Second)
	var even, odd int64 = -1, -1
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, tuple.Atom("even"), true, func(_ tuple.ID, tp tuple.Tuple) bool {
			even, _ = tp.Field(1).AsInt()
			return false
		})
		r.Scan(2, tuple.Atom("odd"), true, func(_ tuple.ID, tp tuple.Tuple) bool {
			odd, _ = tp.Field(1).AsInt()
			return false
		})
	})
	if even != 4 || odd != 3 {
		t.Errorf("even=%d odd=%d", even, odd)
	}
}
