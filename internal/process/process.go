// Package process implements SDL's process society: parameterized process
// definitions, dynamic process creation, and the four flow-of-control
// constructs — sequence, selection, repetition, and replication — that
// sequence transaction execution within a process.
//
// Each process instance runs on its own goroutine with a private
// environment (parameters plus let-constants), a programmer-defined view,
// and a unique ProcessID that owns the tuples it asserts. Processes are
// created by other processes (the Spawn action) or by the embedding
// program (Runtime.Spawn), and terminate when their behavior completes or
// an abort action executes.
package process

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/sdl-lang/sdl/internal/consensus"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/view"
)

// Errors.
var (
	// ErrUnknownDefinition reports a spawn of an undefined process type.
	ErrUnknownDefinition = errors.New("process: unknown process definition")
	// ErrArity reports a spawn with the wrong number of arguments.
	ErrArity = errors.New("process: wrong number of arguments")
	// ErrRuntimeClosed reports a spawn on a shut-down runtime.
	ErrRuntimeClosed = errors.New("process: runtime closed")
)

// control-flow sentinels used by the interpreter.
var (
	errExit  = errors.New("process: exit")
	errAbort = errors.New("process: abort")
)

// ViewFunc builds a process's view from its parameter environment, so
// views can reference parameters (IMPORT <node_id,*,*,*> in the Sort
// process). A nil ViewFunc means the universal view.
type ViewFunc func(env expr.Env) view.View

// Definition is a parameterized process type.
type Definition struct {
	// Name identifies the type for Spawn actions.
	Name string
	// Params names the formal parameters, bound in the process environment.
	Params []string
	// View builds the process view from the parameters (nil = universal).
	View ViewFunc
	// Body is the behavior: a sequence of statements.
	Body []Stmt
}

// Runtime hosts a process society over one dataspace/engine/consensus
// manager.
type Runtime struct {
	engine *txn.Engine
	cons   *consensus.Manager
	sc     *sched.Controller // the store's exploration controller (usually nil)

	defsMu sync.RWMutex
	defs   map[string]*Definition

	nextPID atomic.Uint64
	running atomic.Int64
	spawned atomic.Uint64

	liveMu sync.Mutex
	live   map[tuple.ProcessID]*proc

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool

	errMu  sync.Mutex
	errs   []error
	maxErr int
}

// NewRuntime creates a runtime over the engine. The consensus manager may
// be shared with other components; pass nil to create a private one.
func NewRuntime(engine *txn.Engine, cons *consensus.Manager) *Runtime {
	if cons == nil {
		cons = consensus.NewManager(engine)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Runtime{
		engine: engine,
		cons:   cons,
		sc:     engine.Store().Sched(),
		defs:   make(map[string]*Definition),
		live:   make(map[tuple.ProcessID]*proc),
		ctx:    ctx,
		cancel: cancel,
		maxErr: 64,
	}
}

// Engine returns the runtime's transaction engine.
func (rt *Runtime) Engine() *txn.Engine { return rt.engine }

// Metrics returns the metrics registry of the runtime's store, which
// aggregates the whole system's activity (store, engine, consensus,
// processes).
func (rt *Runtime) Metrics() *metrics.Registry { return rt.engine.Metrics() }

// Consensus returns the runtime's consensus manager.
func (rt *Runtime) Consensus() *consensus.Manager { return rt.cons }

// Define registers a process definition. For a given program the set of
// definitions is static; Define is typically called before any Spawn.
func (rt *Runtime) Define(def *Definition) error {
	if def == nil || def.Name == "" {
		return errors.New("process: empty definition")
	}
	rt.defsMu.Lock()
	defer rt.defsMu.Unlock()
	if _, dup := rt.defs[def.Name]; dup {
		return fmt.Errorf("process: duplicate definition %q", def.Name)
	}
	rt.defs[def.Name] = def
	return nil
}

// Spawn creates a process instance of the named definition with the given
// argument values and starts it. It returns the new process's ID.
func (rt *Runtime) Spawn(name string, args ...tuple.Value) (tuple.ProcessID, error) {
	pids, err := rt.SpawnGroup([]SpawnReq{{Type: name, Args: args}})
	if err != nil {
		return 0, err
	}
	return pids[0], nil
}

// SpawnReq describes one process instance for SpawnGroup.
type SpawnReq struct {
	Type string
	Args []tuple.Value
}

// SpawnGroup creates several process instances atomically with respect to
// consensus detection: every instance is registered with the consensus
// manager before any of them starts running. Programs whose termination is
// detected by a consensus transaction over the whole community (the
// paper's §3.2 Sort) need this — spawning the members one by one would let
// an early, already-satisfied prefix of the community reach consensus and
// exit before the rest of the community exists to block it.
//
// Either every request spawns or none does: validation errors (unknown
// definition, wrong arity) are returned before any registration.
func (rt *Runtime) SpawnGroup(reqs []SpawnReq) ([]tuple.ProcessID, error) {
	if rt.closed.Load() {
		return nil, ErrRuntimeClosed
	}
	procs := make([]*proc, len(reqs))
	rt.defsMu.RLock()
	for i, req := range reqs {
		def := rt.defs[req.Type]
		if def == nil {
			rt.defsMu.RUnlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownDefinition, req.Type)
		}
		if len(req.Args) != len(def.Params) {
			rt.defsMu.RUnlock()
			return nil, fmt.Errorf("%w: %s takes %d, got %d",
				ErrArity, req.Type, len(def.Params), len(req.Args))
		}
		env := make(expr.Env, len(req.Args))
		for j, p := range def.Params {
			env[p] = req.Args[j]
		}
		v := view.Universal()
		if def.View != nil {
			v = def.View(env)
		}
		pid := tuple.ProcessID(rt.nextPID.Add(1))
		procs[i] = &proc{rt: rt, pid: pid, def: def, view: v, env: env}
	}
	rt.defsMu.RUnlock()

	// Register the whole group before starting any member.
	pids := make([]tuple.ProcessID, len(procs))
	for i, p := range procs {
		pids[i] = p.pid
		rt.cons.Register(p.pid, p.view, p.env)
	}
	start := procs
	if perm := rt.sc.Perm(sched.PointProcSpawn, len(procs)); perm != nil {
		// Start order within a group is unspecified (registration above is
		// what carries the atomicity guarantee); explore permutations of it.
		// pids keeps the request order regardless.
		start = make([]*proc, len(procs))
		for i, j := range perm {
			start[i] = procs[j]
		}
	}
	for _, p := range start {
		rt.running.Add(1)
		rt.spawned.Add(1)
		rt.wg.Add(1)
		p.state.Store(int32(StateRunning))
		rt.liveMu.Lock()
		rt.live[p.pid] = p
		rt.liveMu.Unlock()
		go func(p *proc) {
			defer rt.wg.Done()
			defer rt.running.Add(-1)
			defer rt.cons.Unregister(p.pid)
			defer func() {
				rt.liveMu.Lock()
				delete(rt.live, p.pid)
				rt.liveMu.Unlock()
			}()
			if err := p.runSeq(rt.ctx, p.def.Body); err != nil && !isControl(err) {
				rt.recordError(fmt.Errorf("process %s[%d]: %w", p.def.Name, p.pid, err))
			}
		}(p)
	}
	return pids, nil
}

// ProcessInfo describes one live process for introspection.
type ProcessInfo struct {
	PID   tuple.ProcessID
	Type  string
	State State
}

// Society returns a snapshot of the live processes and their states,
// sorted by PID. Combined with the dataspace version, it diagnoses stalls:
// if every process is blocked and no commits are happening, the program is
// deadlocked — the failure mode the paper warns the community model about
// ("individual decisions based on incomplete information can undermine the
// communal objective and lead to premature termination or deadlock").
func (rt *Runtime) Society() []ProcessInfo {
	rt.liveMu.Lock()
	out := make([]ProcessInfo, 0, len(rt.live))
	for pid, p := range rt.live {
		out = append(out, ProcessInfo{
			PID:   pid,
			Type:  p.def.Name,
			State: State(p.state.Load()),
		})
	}
	rt.liveMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

func isControl(err error) bool {
	return errors.Is(err, errExit) || errors.Is(err, errAbort) ||
		errors.Is(err, context.Canceled) || errors.Is(err, consensus.ErrClosed)
}

func (rt *Runtime) recordError(err error) {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	if len(rt.errs) < rt.maxErr {
		rt.errs = append(rt.errs, err)
	}
}

// Errors returns runtime errors recorded from process bodies (malformed
// queries, export violations under strict policy, …).
func (rt *Runtime) Errors() []error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	out := make([]error, len(rt.errs))
	copy(out, rt.errs)
	return out
}

// Running returns the number of live processes.
func (rt *Runtime) Running() int64 { return rt.running.Load() }

// SpawnCount returns the total number of processes ever spawned.
func (rt *Runtime) SpawnCount() uint64 { return rt.spawned.Load() }

// Wait blocks until the process society is empty (every process has
// terminated). Programs whose processes all terminate — like the paper's
// examples — use this as the end-of-computation barrier.
func (rt *Runtime) Wait() { rt.wg.Wait() }

// WaitCtx is Wait with cancellation.
func (rt *Runtime) WaitCtx(ctx context.Context) error {
	done := make(chan struct{})
	go func() { rt.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown cancels every process and waits for them to stop. The consensus
// manager is left running if it was supplied externally; Close it
// separately.
func (rt *Runtime) Shutdown() {
	rt.closed.Store(true)
	rt.cancel()
	rt.wg.Wait()
}
