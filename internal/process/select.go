package process

import (
	"context"
	"errors"

	"github.com/sdl-lang/sdl/internal/consensus"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/txn"
)

// runSelect executes the selection construct. It returns whether a branch
// was selected; false with a nil error is the paper's "selection fails,
// modeled as skip". Delayed and consensus guards make the selection block
// until one guard commits. Multiple consensus guards (as in Sum1's phase
// barrier) are offered as alternatives of a single consensus offer: when
// the set fires, the first guard whose query succeeds is the one selected.
func (p *proc) runSelect(ctx context.Context, branches []Branch, _ bool) (bool, error) {
	var consensusIdx []int
	hasBlocking := false
	for i, b := range branches {
		switch b.Guard.Kind {
		case Consensus:
			consensusIdx = append(consensusIdx, i)
			hasBlocking = true
		case Delayed:
			hasBlocking = true
		}
	}

	// First pass: attempt every non-consensus guard once.
	if idx, res, err := p.tryGuards(branches); err != nil {
		return false, err
	} else if idx >= 0 {
		return true, p.runBranch(ctx, branches[idx], res)
	}
	if !hasBlocking {
		return false, nil // all guards immediate and all failed: skip
	}

	// Blocking loop: register interest, re-try, offer consensus, wait.
	keys := p.guardInterestKeys(branches)
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		ch, cancel := p.rt.engine.Store().Wait(keys)

		// Re-try after registration so a commit racing with the first pass
		// is not lost.
		idx, res, err := p.tryGuards(branches)
		if err != nil {
			cancel()
			return false, err
		}
		if idx >= 0 {
			cancel()
			return true, p.runBranch(ctx, branches[idx], res)
		}

		// Offer the consensus guards (if any), as alternatives of a single
		// offer, while the process is otherwise idle.
		var offer *consensus.Offer
		var offerDone <-chan struct{}
		if len(consensusIdx) > 0 {
			reqs := make([]txn.Request, len(consensusIdx))
			for i, bi := range consensusIdx {
				reqs[i] = p.request(branches[bi].Guard)
			}
			o, oerr := p.rt.cons.StartOfferAlts(reqs)
			if oerr != nil {
				cancel()
				return false, oerr
			}
			offer = o
			offerDone = o.Done()
		}

		firedBranch := func() (bool, error) {
			res, oerr := offer.Result()
			if oerr != nil {
				return false, oerr
			}
			bi := consensusIdx[offer.Chosen()]
			return true, p.runBranch(ctx, branches[bi], res)
		}

		restore := p.setState(StateBlockedSelect)
		select {
		case <-offerDone:
			restore()
			cancel()
			return firedBranch()
		case <-ch:
			restore()
			cancel()
			if offer != nil && !offer.Withdraw() {
				// The consensus fired while we were withdrawing: its effect
				// is committed, so that guard is the selected one.
				<-offer.Done()
				return firedBranch()
			}
			// Dataspace changed: loop and re-try the guards.
		case <-ctx.Done():
			restore()
			cancel()
			if offer != nil && !offer.Withdraw() {
				<-offer.Done()
				return firedBranch()
			}
			return false, ctx.Err()
		}
	}
}

// tryGuards attempts each non-consensus guard once and returns the index
// and result of the first that commits (-1 if none). The paper specifies
// that among several executable guards "an arbitrary one (but only one) is
// selected"; attempts start at a rotating offset so a repetition does not
// starve later guards whose earlier siblings are always enabled.
func (p *proc) tryGuards(branches []Branch) (int, txn.Result, error) {
	start := int(p.selSeq % uint64(len(branches)))
	p.selSeq++
	for off := 0; off < len(branches); off++ {
		i := (start + off) % len(branches)
		b := branches[i]
		if b.Guard.Kind == Consensus {
			continue
		}
		res, err := p.rt.engine.Immediate(p.request(b.Guard))
		if err != nil {
			return -1, txn.Result{}, err
		}
		if res.OK {
			return i, res, nil
		}
	}
	return -1, txn.Result{}, nil
}

// runBranch executes a selected branch: the guard's actions, then the
// branch body.
func (p *proc) runBranch(ctx context.Context, b Branch, res txn.Result) error {
	if err := p.runActions(ctx, b.Guard.Actions, res); err != nil {
		return err
	}
	return p.runSeq(ctx, b.Body)
}

// guardInterestKeys unions the interest keys of every guard's query
// patterns (positive and negated), with leads pinned when determined by
// the process environment.
func (p *proc) guardInterestKeys(branches []Branch) []dataspace.InterestKey {
	var keys []dataspace.InterestKey
	for _, b := range branches {
		for _, pat := range b.Guard.Query.Patterns {
			lead, known := pat.Lead(p.env)
			keys = append(keys, dataspace.InterestOf(pat.Arity(), lead, known))
		}
	}
	return keys
}

// runRepeat executes the repetition construct: the selection restarts
// after each selected branch; a failed selection or an exit action
// terminates it.
func (p *proc) runRepeat(ctx context.Context, branches []Branch) error {
	for {
		selected, err := p.runSelect(ctx, branches, true)
		switch {
		case errors.Is(err, errExit):
			return nil // exit terminates the guarded sequence and the repetition
		case err != nil:
			return err
		case !selected:
			return nil // selection failed: repetition terminates
		}
	}
}
