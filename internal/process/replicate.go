package process

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrReplicationGuard reports a replication whose guard is not immediate.
// The construct's unbounded copies are transactions that either succeed
// (spawning further copies) or terminate; a blocking guard would keep the
// construct alive forever. The paper's replication examples all use '→'.
var ErrReplicationGuard = errors.New("process: replication guards must be immediate")

// runReplicate executes the replication construct ('≋'). Operationally we
// follow the paper's second model: each guarded sequence starts
// concurrently; every successful guard execution leads to further copies
// (the worker loops again); the construct terminates when all generated
// sequences have terminated — detected as a full round in which no guard
// committed and the dataspace version did not move.
func (p *proc) runReplicate(ctx context.Context, r Replicate) error {
	for _, b := range r.Branches {
		if b.Guard.Kind != Immediate {
			return ErrReplicationGuard
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	store := p.rt.engine.Store()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		v0 := store.Version()
		var (
			committed atomic.Uint64
			wg        sync.WaitGroup
			errMu     sync.Mutex
			firstErr  error
		)
		fail := func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
		for bi := range r.Branches {
			b := r.Branches[bi]
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Each copy runs on a clone so Let actions in the body
					// cannot race with sibling copies.
					copyProc := &proc{rt: p.rt, pid: p.pid, def: p.def, view: p.view, env: p.env}
					for {
						if ctx.Err() != nil {
							return
						}
						res, err := p.rt.engine.Immediate(copyProc.request(b.Guard))
						if err != nil {
							fail(err)
							return
						}
						if !res.OK {
							return // this copy terminates
						}
						committed.Add(1)
						if err := copyProc.runBranch(ctx, b, res); err != nil {
							if errors.Is(err, errExit) {
								return // exit ends this sequence copy
							}
							fail(err)
							return
						}
					}
				}()
			}
		}
		wg.Wait()
		if firstErr != nil {
			return fmt.Errorf("replication: %w", firstErr)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Quiescence: nothing committed in this round and the configuration
		// did not change under us.
		if committed.Load() == 0 && store.Version() == v0 {
			return nil
		}
	}
}
