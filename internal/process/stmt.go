package process

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/view"
)

// TxnKind selects the operational type of a transaction statement.
type TxnKind uint8

// Transaction kinds, mirroring the paper's '→', '⇒', and '⇑' tags.
const (
	Immediate TxnKind = iota + 1
	Delayed
	Consensus
)

// String renders the kind's ASCII tag.
func (k TxnKind) String() string {
	switch k {
	case Immediate:
		return "->"
	case Delayed:
		return "=>"
	case Consensus:
		return "@>"
	default:
		return "?"
	}
}

// Stmt is one statement of a process behavior.
type Stmt interface{ stmt() }

// Transact is a transaction statement: query, assertions, and local
// actions, executed with the given operational kind.
type Transact struct {
	Kind    TxnKind
	Query   pattern.Query
	Asserts []pattern.Pattern
	Actions []Action
	// Export selects the policy for assertions outside the export set.
	Export txn.ExportPolicy
	// Footprint is the compiler's static footprint classification
	// (footprint.Unknown for hand-built statements), forwarded to the
	// transaction engine as a planning hint.
	Footprint footprint.Class
	// StaticKeys is the statically computed footprint key set attached by
	// the compiler's interprocedural refiner alongside
	// footprint.GroundKeys; nil for hand-built statements.
	StaticKeys []dataspace.InterestKey
}

// Branch is one guarded sequence of a selection/repetition/replication.
type Branch struct {
	Guard Transact
	Body  []Stmt
}

// Select is the selection construct: at most one guarded sequence runs. If
// every guard is immediate and all fail, the selection acts as skip. If
// any guard is delayed or consensus, the selection blocks until one guard
// commits.
type Select struct{ Branches []Branch }

// Repeat is the repetition construct: the selection restarts after each
// selected branch; it terminates when a selection fails (no branch
// selectable) or a branch executes the exit action.
type Repeat struct{ Branches []Branch }

// Replicate is the replication construct ('≋'): unbounded concurrent
// execution of the guarded sequences; every successful guard execution
// conceptually spawns further copies. It terminates when all generated
// sequences have terminated and no guard can succeed against a
// configuration that did not change during the final round. Guards must be
// immediate.
type Replicate struct {
	Branches []Branch
	// Workers bounds the concurrency per branch (0 = GOMAXPROCS). The
	// construct's semantics do not depend on the worker count, only its
	// throughput does.
	Workers int
}

func (Transact) stmt()  {}
func (Select) stmt()    {}
func (Repeat) stmt()    {}
func (Replicate) stmt() {}

// Action is a local action in a transaction's action list, executed after
// the transaction commits.
type Action interface{ action() }

// Let binds a constant in the process environment, evaluated under the
// transaction's solution environment (the paper's `let N = α`).
type Let struct {
	Name string
	Expr expr.Expr
}

// Spawn creates a new process instance; argument expressions evaluate
// under the solution environment. For a ∀ transaction the spawn executes
// once per solution.
type Spawn struct {
	Type string
	Args []expr.Expr
}

// Exit terminates the enclosing guarded sequence and repetition (or the
// process body when at top level).
type Exit struct{}

// Abort terminates the process.
type Abort struct{}

func (Let) action()   {}
func (Spawn) action() {}
func (Exit) action()  {}
func (Abort) action() {}

// State describes what a live process is doing, for society introspection
// and stall diagnosis.
type State int32

// Process states.
const (
	StateRunning State = iota + 1
	StateBlockedDelayed
	StateBlockedConsensus
	StateBlockedSelect
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateBlockedDelayed:
		return "blocked-delayed"
	case StateBlockedConsensus:
		return "blocked-consensus"
	case StateBlockedSelect:
		return "blocked-select"
	default:
		return "unknown"
	}
}

// proc is one live process instance.
type proc struct {
	rt     *Runtime
	pid    tuple.ProcessID
	def    *Definition
	view   view.View
	env    expr.Env
	selSeq uint64       // rotates the guard-attempt order across selections
	state  atomic.Int32 // State, for introspection
}

// setState records the process's current activity and returns a restore
// function for the previous state.
func (p *proc) setState(s State) func() {
	prev := p.state.Swap(int32(s))
	return func() { p.state.Store(prev) }
}

// runSeq executes a statement sequence; control-flow sentinels propagate
// as errors.
func (p *proc) runSeq(ctx context.Context, stmts []Stmt) error {
	for _, s := range stmts {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.rt.sc.Yield(sched.PointProcStep)
		if err := p.runStmt(ctx, s); err != nil {
			return err
		}
	}
	return nil
}

func (p *proc) runStmt(ctx context.Context, s Stmt) error {
	switch st := s.(type) {
	case Transact:
		_, err := p.runTransact(ctx, st)
		return err
	case Select:
		_, err := p.runSelect(ctx, st.Branches, false)
		return err
	case Repeat:
		return p.runRepeat(ctx, st.Branches)
	case Replicate:
		return p.runReplicate(ctx, st)
	default:
		return fmt.Errorf("process: unknown statement %T", s)
	}
}

// request assembles the txn.Request for a transaction statement under the
// current process environment.
func (p *proc) request(t Transact) txn.Request {
	return txn.Request{
		Proc:       p.pid,
		View:       p.view,
		Env:        p.env,
		Query:      t.Query,
		Asserts:    t.Asserts,
		Export:     t.Export,
		Footprint:  t.Footprint,
		StaticKeys: t.StaticKeys,
	}
}

// runTransact executes a transaction statement. It returns whether the
// transaction committed; a failed immediate transaction is not an error
// (the paper treats it as information available to the selection).
func (p *proc) runTransact(ctx context.Context, t Transact) (bool, error) {
	var (
		res txn.Result
		err error
	)
	switch t.Kind {
	case Delayed:
		restore := p.setState(StateBlockedDelayed)
		res, err = p.rt.engine.Delayed(ctx, p.request(t))
		restore()
	case Consensus:
		restore := p.setState(StateBlockedConsensus)
		res, err = p.rt.cons.Offer(ctx, p.request(t))
		restore()
	default:
		res, err = p.rt.engine.Immediate(p.request(t))
	}
	if err != nil {
		return false, err
	}
	if !res.OK {
		return false, nil
	}
	return true, p.runActions(ctx, t.Actions, res)
}

// runActions executes the local actions of a committed transaction.
// Actions run in list order; a let-constant is visible to the actions
// after it (the paper's `let N = α, (found, N)` idiom) and to all later
// statements of the process.
func (p *proc) runActions(_ context.Context, actions []Action, res txn.Result) error {
	sols := res.Solutions
	if len(sols) == 0 {
		sols = []expr.Env{res.Env}
	}
	var lets expr.Env // accumulated let bindings from this action list
	withLets := func(env expr.Env) expr.Env {
		if len(lets) == 0 {
			return env
		}
		merged := env.Clone()
		for k, v := range lets {
			merged[k] = v
		}
		return merged
	}
	for _, a := range actions {
		switch act := a.(type) {
		case Let:
			v, err := act.Expr.Eval(withLets(res.Env))
			if err != nil {
				return fmt.Errorf("let %s: %w", act.Name, err)
			}
			if lets == nil {
				lets = expr.Env{}
			}
			lets[act.Name] = v
			// The process environment is shared with in-flight requests
			// only within this goroutine; copy-on-write keeps issued
			// requests stable.
			env := p.env.Clone()
			env[act.Name] = v
			p.env = env
		case Spawn:
			for _, sol := range sols {
				vals, err := evalArgs(act.Args, withLets(sol))
				if err != nil {
					return fmt.Errorf("spawn %s: %w", act.Type, err)
				}
				if _, err := p.rt.Spawn(act.Type, vals...); err != nil {
					return fmt.Errorf("spawn %s: %w", act.Type, err)
				}
			}
		case Exit:
			return errExit
		case Abort:
			return errAbort
		default:
			return fmt.Errorf("process: unknown action %T", a)
		}
	}
	return nil
}

func evalArgs(args []expr.Expr, env expr.Env) ([]tuple.Value, error) {
	vals := make([]tuple.Value, len(args))
	for i, a := range args {
		v, err := a.Eval(env)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}
