package process

// Randomized soak: pipelines of random shape (stage count, token count,
// movers per stage, concurrency-control mode) built from delayed guards,
// repetitions, negation-based termination, and dynamic spawning. Each
// configuration must drain completely with every token accounted for —
// a liveness and atomicity workout across the whole runtime.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
)

// stageDef builds the mover process for stage s: it shifts <s, i, v>
// tokens to <s+1, i, v+1>, and exits — forwarding the end-of-stream marker
// — once the stage is drained.
func stageDef() *Definition {
	return &Definition{
		Name:   "Stage",
		Params: []string{"s"},
		Body: []Stmt{Repeat{Branches: []Branch{
			{Guard: Transact{
				Kind:  Delayed,
				Query: pattern.Q(pattern.R(pattern.V("s"), pattern.V("i"), pattern.V("v"))),
				Asserts: []pattern.Pattern{pattern.P(
					pattern.E(expr.Add(expr.V("s"), expr.Const(tuple.Int(1)))),
					pattern.V("i"),
					pattern.E(expr.Add(expr.V("v"), expr.Const(tuple.Int(1)))),
				)},
			}},
			{Guard: Transact{
				Kind: Delayed,
				Query: pattern.Q(
					pattern.P(pattern.C(tuple.Atom("eof")), pattern.V("s")),
					pattern.N(pattern.V("s"), pattern.W(), pattern.W()),
				),
				Asserts: []pattern.Pattern{pattern.P(
					pattern.C(tuple.Atom("eof")),
					pattern.E(expr.Add(expr.V("s"), expr.Const(tuple.Int(1)))),
				)},
				Actions: []Action{Exit{}},
			}},
		}}},
	}
}

func TestSoakRandomPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(1988))
	for trial := 0; trial < 8; trial++ {
		stages := 1 + rng.Intn(4)
		tokens := 5 + rng.Intn(40)
		movers := 1 + rng.Intn(3)
		mode := txn.Coarse
		if trial%2 == 1 {
			mode = txn.Optimistic
		}
		t.Logf("trial %d: stages=%d tokens=%d movers=%d mode=%v",
			trial, stages, tokens, movers, mode)

		s, rt := newRuntime(t, mode)
		if err := rt.Define(stageDef()); err != nil {
			t.Fatal(err)
		}
		// Seed stage 0 and its end-of-stream marker.
		batch := make([]tuple.Tuple, 0, tokens+1)
		for i := 0; i < tokens; i++ {
			batch = append(batch, tuple.New(tuple.Int(0), tuple.Int(int64(i)), tuple.Int(0)))
		}
		batch = append(batch, tuple.New(tuple.Atom("eof"), tuple.Int(0)))
		s.Assert(tuple.Environment, batch...)

		for st := 0; st < stages; st++ {
			for w := 0; w < movers; w++ {
				if _, err := rt.Spawn("Stage", tuple.Int(int64(st))); err != nil {
					t.Fatal(err)
				}
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := rt.WaitCtx(ctx)
		cancel()
		if err != nil {
			t.Fatalf("trial %d stalled: %v\nsociety: %+v", trial, err, rt.Society())
		}
		for _, perr := range rt.Errors() {
			t.Fatalf("trial %d process error: %v", trial, perr)
		}

		// Every token must sit at the final stage with v == stages, and
		// every eof marker 0..stages must exist exactly once per... the
		// final marker is asserted once per mover of the last stage; count
		// tokens strictly.
		got := 0
		s.Snapshot(func(r dataspace.Reader) {
			r.Scan(3, tuple.Int(int64(stages)), true, func(_ tuple.ID, tp tuple.Tuple) bool {
				v, _ := tp.Field(2).AsInt()
				if v != int64(stages) {
					t.Errorf("trial %d: token %v at wrong version", trial, tp)
				}
				got++
				return true
			})
			// No stragglers at earlier stages.
			for st := 0; st < stages; st++ {
				r.Scan(3, tuple.Int(int64(st)), true, func(_ tuple.ID, tp tuple.Tuple) bool {
					t.Errorf("trial %d: straggler %v at stage %d", trial, tp, st)
					return true
				})
			}
		})
		if got != tokens {
			t.Errorf("trial %d: %d tokens at final stage, want %d", trial, got, tokens)
		}
	}
}
