package process

import (
	"errors"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
)

// newRuntime builds a runtime over a fresh store, cleaning up at test end.
func newRuntime(t *testing.T, mode txn.Mode) (*dataspace.Store, *Runtime) {
	t.Helper()
	s := dataspace.New()
	e := txn.New(s, mode)
	rt := NewRuntime(e, nil)
	t.Cleanup(func() {
		rt.Shutdown()
		rt.Consensus().Close()
	})
	return s, rt
}

// waitDone waits for the society to empty, failing the test on timeout.
func waitDone(t *testing.T, rt *Runtime, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { rt.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("society not empty after %v (running=%d)", d, rt.Running())
	}
	for _, err := range rt.Errors() {
		t.Errorf("process error: %v", err)
	}
}

func atom(s string) tuple.Value { return tuple.Atom(s) }

func TestDefineAndSpawnValidation(t *testing.T) {
	_, rt := newRuntime(t, txn.Coarse)
	def := &Definition{Name: "P", Params: []string{"x"}}
	if err := rt.Define(def); err != nil {
		t.Fatal(err)
	}
	if err := rt.Define(def); err == nil {
		t.Error("duplicate Define should fail")
	}
	if err := rt.Define(nil); err == nil {
		t.Error("nil Define should fail")
	}
	if _, err := rt.Spawn("NoSuch"); !errors.Is(err, ErrUnknownDefinition) {
		t.Errorf("err = %v", err)
	}
	if _, err := rt.Spawn("P"); !errors.Is(err, ErrArity) {
		t.Errorf("err = %v", err)
	}
	if _, err := rt.Spawn("P", tuple.Int(1)); err != nil {
		t.Errorf("valid spawn failed: %v", err)
	}
	waitDone(t, rt, 2*time.Second)
}

func TestSequenceAndAssert(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	err := rt.Define(&Definition{
		Name:   "Asserter",
		Params: []string{"n"},
		Body: []Stmt{
			Transact{
				Kind:    Immediate,
				Query:   pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("out")), pattern.V("n"))},
			},
			Transact{
				Kind:  Immediate,
				Query: pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{pattern.P(
					pattern.C(atom("out")),
					pattern.E(expr.Add(expr.V("n"), expr.Const(tuple.Int(1)))),
				)},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("Asserter", tuple.Int(10)); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 2*time.Second)
	got := map[int64]bool{}
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, atom("out"), true, func(_ tuple.ID, tp tuple.Tuple) bool {
			n, _ := tp.Field(1).AsInt()
			got[n] = true
			return true
		})
	})
	if !got[10] || !got[11] {
		t.Errorf("outputs = %v", got)
	}
}

func TestImmediateFailureContinuesSequence(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{
			Transact{Kind: Immediate, Query: pattern.Q(pattern.P(pattern.C(atom("missing"))))},
			Transact{
				Kind:    Immediate,
				Query:   pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("reached")))},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 2*time.Second)
	if s.Len() != 1 {
		t.Errorf("store len = %d; failed immediate should not stop the sequence", s.Len())
	}
}

func TestDelayedStatementBlocksAndResumes(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	err := rt.Define(&Definition{
		Name: "Waiter",
		Body: []Stmt{
			Transact{
				Kind:    Delayed,
				Query:   pattern.Q(pattern.R(pattern.C(atom("go")), pattern.V("x"))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("went")), pattern.V("x"))},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("Waiter"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if rt.Running() != 1 {
		t.Fatal("waiter terminated prematurely")
	}
	s.Assert(tuple.Environment, tuple.New(atom("go"), tuple.Int(5)))
	waitDone(t, rt, 2*time.Second)
	found := false
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, atom("went"), true, func(_ tuple.ID, tp tuple.Tuple) bool {
			found = tp.Field(1).Equal(tuple.Int(5))
			return false
		})
	})
	if !found {
		t.Error("went tuple missing")
	}
}

func TestLetBindsConstantForLaterStatements(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	// let N = a; assert <const, N> in a later transaction.
	err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{
			Transact{
				Kind:    Immediate,
				Query:   pattern.Q(pattern.R(pattern.C(atom("year")), pattern.V("a"))),
				Actions: []Action{Let{Name: "N", Expr: expr.V("a")}},
			},
			Transact{
				Kind:    Immediate,
				Query:   pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("const")), pattern.V("N"))},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Assert(tuple.Environment, tuple.New(atom("year"), tuple.Int(90)))
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 2*time.Second)
	found := false
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, atom("const"), true, func(_ tuple.ID, tp tuple.Tuple) bool {
			found = tp.Field(1).Equal(tuple.Int(90))
			return false
		})
	})
	if !found {
		t.Error("let-bound constant not visible to later statement")
	}
}

func TestSpawnActionCreatesProcess(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	if err := rt.Define(&Definition{
		Name:   "Child",
		Params: []string{"v"},
		Body: []Stmt{Transact{
			Kind:    Immediate,
			Query:   pattern.Query{Quant: pattern.Exists},
			Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("child")), pattern.V("v"))},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Define(&Definition{
		Name: "Parent",
		Body: []Stmt{Transact{
			Kind:  Immediate,
			Query: pattern.Q(pattern.P(pattern.C(atom("year")), pattern.V("a"))),
			Actions: []Action{Spawn{
				Type: "Child",
				Args: []expr.Expr{expr.Add(expr.V("a"), expr.Const(tuple.Int(1)))},
			}},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	s.Assert(tuple.Environment, tuple.New(atom("year"), tuple.Int(87)))
	if _, err := rt.Spawn("Parent"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 2*time.Second)
	if rt.SpawnCount() != 2 {
		t.Errorf("spawned = %d", rt.SpawnCount())
	}
	found := false
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, atom("child"), true, func(_ tuple.ID, tp tuple.Tuple) bool {
			found = tp.Field(1).Equal(tuple.Int(88))
			return false
		})
	})
	if !found {
		t.Error("child tuple missing")
	}
}

func TestAbortStopsProcess(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	if err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{
			Transact{
				Kind:    Immediate,
				Query:   pattern.Query{Quant: pattern.Exists},
				Actions: []Action{Abort{}},
			},
			Transact{
				Kind:    Immediate,
				Query:   pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("unreachable")))},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 2*time.Second)
	if s.Len() != 0 {
		t.Error("statement after abort executed")
	}
}

func TestSelectionPicksExactlyOneGuard(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	branch := func(tag string) Branch {
		return Branch{Guard: Transact{
			Kind:    Immediate,
			Query:   pattern.Q(pattern.R(pattern.C(atom("tok")))),
			Asserts: []pattern.Pattern{pattern.P(pattern.C(atom(tag)))},
		}}
	}
	if err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{Select{Branches: []Branch{branch("a"), branch("b")}}},
	}); err != nil {
		t.Fatal(err)
	}
	s.Assert(tuple.Environment, tuple.New(atom("tok")))
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 2*time.Second)
	if s.Len() != 1 {
		t.Errorf("store len = %d, want exactly one branch effect", s.Len())
	}
}

func TestSelectionAllImmediateFailIsSkip(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	if err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{
			Select{Branches: []Branch{{Guard: Transact{
				Kind:  Immediate,
				Query: pattern.Q(pattern.P(pattern.C(atom("missing")))),
			}}}},
			Transact{
				Kind:    Immediate,
				Query:   pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("after")))},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 2*time.Second)
	if s.Len() != 1 {
		t.Error("failed selection should act as skip and continue")
	}
}

func TestSelectionDelayedGuardBlocks(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	if err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{Select{Branches: []Branch{
			{Guard: Transact{
				Kind:    Delayed,
				Query:   pattern.Q(pattern.R(pattern.C(atom("a")), pattern.V("x"))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("got_a")), pattern.V("x"))},
			}},
			{Guard: Transact{
				Kind:    Delayed,
				Query:   pattern.Q(pattern.R(pattern.C(atom("b")), pattern.V("x"))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("got_b")), pattern.V("x"))},
			}},
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if rt.Running() != 1 {
		t.Fatal("selection with delayed guards should block")
	}
	s.Assert(tuple.Environment, tuple.New(atom("b"), tuple.Int(7)))
	waitDone(t, rt, 2*time.Second)
	found := false
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, atom("got_b"), true, func(tuple.ID, tuple.Tuple) bool {
			found = true
			return false
		})
	})
	if !found {
		t.Error("delayed guard b did not fire")
	}
}

func TestRepeatDrainsAndTerminates(t *testing.T) {
	// The paper's index/value pairing repetition, simplified: pair each
	// positive index with a fresh output; drop non-positive indices;
	// terminate when no index tuples remain.
	s, rt := newRuntime(t, txn.Coarse)
	if err := rt.Define(&Definition{
		Name: "Pairer",
		Body: []Stmt{Repeat{Branches: []Branch{
			{Guard: Transact{
				Kind: Immediate,
				Query: pattern.Q(pattern.R(pattern.C(atom("index")), pattern.V("p"))).
					Where(expr.Gt(expr.V("p"), expr.Const(tuple.Int(0)))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("paired")), pattern.V("p"))},
			}},
			{Guard: Transact{
				Kind: Immediate,
				Query: pattern.Q(pattern.R(pattern.C(atom("index")), pattern.V("p"))).
					Where(expr.Le(expr.V("p"), expr.Const(tuple.Int(0)))),
			}},
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := int64(-2); i <= 3; i++ {
		s.Assert(tuple.Environment, tuple.New(atom("index"), tuple.Int(i)))
	}
	if _, err := rt.Spawn("Pairer"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 5*time.Second)
	var paired, index int
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, atom("paired"), true, func(tuple.ID, tuple.Tuple) bool { paired++; return true })
		r.Scan(2, atom("index"), true, func(tuple.ID, tuple.Tuple) bool { index++; return true })
	})
	if paired != 3 || index != 0 {
		t.Errorf("paired=%d index=%d", paired, index)
	}
}

func TestRepeatExitAction(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	// Repetition that consumes tokens but exits on the stop token even
	// though more work remains.
	if err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{
			Repeat{Branches: []Branch{
				{Guard: Transact{
					Kind:    Immediate,
					Query:   pattern.Q(pattern.R(pattern.C(atom("stop")))),
					Actions: []Action{Exit{}},
				}},
				{Guard: Transact{
					Kind:    Immediate,
					Query:   pattern.Q(pattern.R(pattern.C(atom("work")))),
					Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("done_one")))},
				}},
			}},
			Transact{
				Kind:    Immediate,
				Query:   pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("after_repeat")))},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	s.Assert(tuple.Environment, tuple.New(atom("stop")))
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 2*time.Second)
	var after bool
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(1, atom("after_repeat"), true, func(tuple.ID, tuple.Tuple) bool {
			after = true
			return false
		})
	})
	if !after {
		t.Error("exit did not continue after the repetition")
	}
}

func TestReplicateGuardValidation(t *testing.T) {
	_, rt := newRuntime(t, txn.Coarse)
	if err := rt.Define(&Definition{
		Name: "Bad",
		Body: []Stmt{Replicate{Branches: []Branch{{Guard: Transact{
			Kind:  Delayed,
			Query: pattern.Query{Quant: pattern.Exists},
		}}}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("Bad"); err != nil {
		t.Fatal(err)
	}
	rt.Wait()
	errs := rt.Errors()
	if len(errs) != 1 || !errors.Is(errs[0], ErrReplicationGuard) {
		t.Errorf("errors = %v", errs)
	}
}

func TestRuntimeShutdownCancelsBlockedProcesses(t *testing.T) {
	_, rt := newRuntime(t, txn.Coarse)
	if err := rt.Define(&Definition{
		Name: "Stuck",
		Body: []Stmt{Transact{
			Kind:  Delayed,
			Query: pattern.Q(pattern.P(pattern.C(atom("never")))),
		}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rt.Spawn("Stuck"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	rt.Shutdown()
	if rt.Running() != 0 {
		t.Errorf("running = %d after Shutdown", rt.Running())
	}
	if _, err := rt.Spawn("Stuck"); !errors.Is(err, ErrRuntimeClosed) {
		t.Errorf("spawn after shutdown: %v", err)
	}
}

func TestSelectionFairnessRotation(t *testing.T) {
	// Two always-enabled guards in a repetition: both must be selected
	// over the run ("an arbitrary one of them is selected" — our
	// implementation rotates).
	s, rt := newRuntime(t, txn.Coarse)
	for i := 0; i < 20; i++ {
		s.Assert(tuple.Environment, tuple.New(atom("tok"), tuple.Int(int64(i))))
	}
	branch := func(tag string) Branch {
		return Branch{Guard: Transact{
			Kind:    Immediate,
			Query:   pattern.Q(pattern.R(pattern.C(atom("tok")), pattern.V("i"))),
			Asserts: []pattern.Pattern{pattern.P(pattern.C(atom(tag)), pattern.V("i"))},
		}}
	}
	if err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{Repeat{Branches: []Branch{branch("a"), branch("b")}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 5*time.Second)
	count := func(tag string) int {
		n := 0
		s.Snapshot(func(r dataspace.Reader) {
			r.Scan(2, atom(tag), true, func(tuple.ID, tuple.Tuple) bool { n++; return true })
		})
		return n
	}
	na, nb := count("a"), count("b")
	if na+nb != 20 {
		t.Fatalf("a=%d b=%d", na, nb)
	}
	if na == 0 || nb == 0 {
		t.Errorf("guard starvation: a=%d b=%d", na, nb)
	}
}

func TestNestedConstructs(t *testing.T) {
	// A repetition containing a selection whose branch body contains
	// another transaction; exit in the inner selection terminates the
	// outer repetition (per the paper: "the exit action terminates the
	// guarded sequence and the repetition").
	s, rt := newRuntime(t, txn.Coarse)
	s.Assert(tuple.Environment,
		tuple.New(atom("work"), tuple.Int(1)),
		tuple.New(atom("work"), tuple.Int(2)),
		tuple.New(atom("halt")))
	if err := rt.Define(&Definition{
		Name: "P",
		Body: []Stmt{
			Repeat{Branches: []Branch{
				{
					Guard: Transact{
						Kind:    Immediate,
						Query:   pattern.Q(pattern.R(pattern.C(atom("work")), pattern.V("i"))),
						Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("did")), pattern.V("i"))},
					},
					Body: []Stmt{Select{Branches: []Branch{{
						Guard: Transact{
							Kind:    Immediate,
							Query:   pattern.Q(pattern.P(pattern.C(atom("did")), pattern.C(tuple.Int(2)))),
							Actions: []Action{Exit{}},
						},
					}}}},
				},
			}},
			Transact{
				Kind:    Immediate,
				Query:   pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atom("after")))},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("P"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 5*time.Second)
	var after int
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(1, atom("after"), true, func(tuple.ID, tuple.Tuple) bool { after++; return true })
	})
	if after != 1 {
		t.Errorf("after = %d; exit should terminate the repetition and continue", after)
	}
}

func TestReplicationMultipleBranches(t *testing.T) {
	// Two branch families drain two tuple populations concurrently.
	s, rt := newRuntime(t, txn.Coarse)
	for i := 0; i < 30; i++ {
		s.Assert(tuple.Environment, tuple.New(atom("xs"), tuple.Int(int64(i))))
		s.Assert(tuple.Environment, tuple.New(atom("ys"), tuple.Int(int64(i))))
	}
	mk := func(from, to string) Branch {
		return Branch{Guard: Transact{
			Kind:    Immediate,
			Query:   pattern.Q(pattern.R(pattern.C(atom(from)), pattern.V("i"))),
			Asserts: []pattern.Pattern{pattern.P(pattern.C(atom(to)), pattern.V("i"))},
		}}
	}
	if err := rt.Define(&Definition{
		Name: "Drain",
		Body: []Stmt{Replicate{Branches: []Branch{mk("xs", "xd"), mk("ys", "yd")}, Workers: 4}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("Drain"); err != nil {
		t.Fatal(err)
	}
	waitDone(t, rt, 10*time.Second)
	count := func(tag string) int {
		n := 0
		s.Snapshot(func(r dataspace.Reader) {
			r.Scan(2, atom(tag), true, func(tuple.ID, tuple.Tuple) bool { n++; return true })
		})
		return n
	}
	if count("xd") != 30 || count("yd") != 30 || count("xs") != 0 || count("ys") != 0 {
		t.Errorf("xd=%d yd=%d xs=%d ys=%d", count("xd"), count("yd"), count("xs"), count("ys"))
	}
}

func TestSocietyIntrospection(t *testing.T) {
	s, rt := newRuntime(t, txn.Coarse)
	if err := rt.Define(&Definition{
		Name: "Stuck",
		Body: []Stmt{Transact{
			Kind:  Delayed,
			Query: pattern.Q(pattern.P(pattern.C(atom("never")))),
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Define(&Definition{
		Name: "Waiting",
		Body: []Stmt{Select{Branches: []Branch{{
			Guard: Transact{
				Kind:  Delayed,
				Query: pattern.Q(pattern.P(pattern.C(atom("also_never")))),
			},
		}}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("Stuck"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("Waiting"); err != nil {
		t.Fatal(err)
	}
	// Wait until both are blocked.
	deadline := time.Now().Add(5 * time.Second)
	var soc []ProcessInfo
	for time.Now().Before(deadline) {
		soc = rt.Society()
		blocked := 0
		for _, p := range soc {
			if p.State != StateRunning {
				blocked++
			}
		}
		if len(soc) == 2 && blocked == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(soc) != 2 {
		t.Fatalf("society = %+v", soc)
	}
	states := map[string]State{}
	for _, p := range soc {
		states[p.Type] = p.State
	}
	if states["Stuck"] != StateBlockedDelayed {
		t.Errorf("Stuck state = %v", states["Stuck"])
	}
	if states["Waiting"] != StateBlockedSelect {
		t.Errorf("Waiting state = %v", states["Waiting"])
	}
	// Unblock one and check it leaves the society.
	s.Assert(tuple.Environment, tuple.New(atom("never")))
	for time.Now().Before(deadline) && len(rt.Society()) != 1 {
		time.Sleep(time.Millisecond)
	}
	if got := rt.Society(); len(got) != 1 || got[0].Type != "Waiting" {
		t.Errorf("society after unblock = %+v", got)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateRunning: "running", StateBlockedDelayed: "blocked-delayed",
		StateBlockedConsensus: "blocked-consensus", StateBlockedSelect: "blocked-select",
		State(0): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}
