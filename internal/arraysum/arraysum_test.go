package arraysum

import (
	"context"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/workload"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func runOne(t *testing.T, mode txn.Mode, n int, seed int64,
	run func(context.Context, *process.Runtime, int, int64) (int64, error)) {
	t.Helper()
	rt := NewRuntime(mode)
	defer CloseRuntime(rt)
	_, want := workload.Array(n, seed)
	got, err := run(ctxT(t), rt, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestSum3Sizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 32, 100} {
		runOne(t, txn.Coarse, n, int64(n), RunSum3)
	}
}

func TestSum3Optimistic(t *testing.T) {
	runOne(t, txn.Optimistic, 64, 5, RunSum3)
}

func TestSum2Sizes(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		runOne(t, txn.Coarse, n, int64(n), RunSum2)
	}
}

func TestSum1Sizes(t *testing.T) {
	for _, n := range []int{2, 4, 16} {
		runOne(t, txn.Coarse, n, int64(n), RunSum1)
	}
}

func TestPowerOfTwoValidation(t *testing.T) {
	rt := NewRuntime(txn.Coarse)
	defer CloseRuntime(rt)
	if _, err := RunSum2(ctxT(t), rt, 6, 1); err == nil {
		t.Error("n=6 should be rejected")
	}
	rt2 := NewRuntime(txn.Coarse)
	defer CloseRuntime(rt2)
	if _, err := RunSum1(ctxT(t), rt2, 1, 1); err == nil {
		t.Error("n=1 should be rejected")
	}
}

func TestSum1UsesConsensusBarriers(t *testing.T) {
	rt := NewRuntime(txn.Coarse)
	defer CloseRuntime(rt)
	if _, err := RunSum1(ctxT(t), rt, 8, 2); err != nil {
		t.Fatal(err)
	}
	// Three phases of barriers for n=8.
	if fires := rt.Consensus().Fires(); fires != 3 {
		t.Errorf("consensus fires = %d, want 3", fires)
	}
}
