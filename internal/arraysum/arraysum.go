// Package arraysum implements the paper's §3.1 parallel array-summation
// programs as reusable runners for the benchmark harness (experiment E1):
//
//   - Sum1: synchronous phase-by-phase summation, one process per active
//     array position, with a consensus transaction as the phase barrier
//     (the Connection-Machine-style solution).
//   - Sum2: asynchronous summation with phase-tagged data and delayed
//     transactions (the message-passing-style solution).
//   - Sum3: the replication one-liner the paper prefers — "it conveniently
//     expresses the desired computation while imposing minimal control
//     constraints".
package arraysum

import (
	"context"
	"fmt"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/workload"
)

func iv(n int64) expr.Expr { return expr.Const(tuple.Int(n)) }

// Sum3Def returns the replication program:
//
//	≋ [ ∃ν,µ,α,β: <ν,α>!, <µ,β>! : ν ≠ µ → <µ, α+β> ]
func Sum3Def() *process.Definition {
	return &process.Definition{
		Name: "Sum3",
		Body: []process.Stmt{process.Replicate{Branches: []process.Branch{{
			Guard: process.Transact{
				Kind: process.Immediate,
				Query: pattern.Q(
					pattern.R(pattern.V("n"), pattern.V("a")),
					pattern.R(pattern.V("m"), pattern.V("b")),
				).Where(expr.Ne(expr.V("n"), expr.V("m"))),
				Asserts: []pattern.Pattern{pattern.P(
					pattern.V("m"),
					pattern.E(expr.Add(expr.V("a"), expr.V("b"))),
				)},
			},
		}}}},
	}
}

// Sum2Def returns the asynchronous program:
//
//	PROCESS Sum2(k, j)
//	∃α,β: <k−2^(j−1), α, j>!, <k, β, j>! ⇒ <k, α+β, j+1>
func Sum2Def() *process.Definition {
	return &process.Definition{
		Name:   "Sum2",
		Params: []string{"k", "j"},
		Body: []process.Stmt{process.Transact{
			Kind: process.Delayed,
			Query: pattern.Q(
				pattern.R(
					pattern.E(expr.Sub(expr.V("k"), expr.Fn("pow2", expr.Sub(expr.V("j"), iv(1))))),
					pattern.V("alpha"),
					pattern.V("j"),
				),
				pattern.R(pattern.V("k"), pattern.V("beta"), pattern.V("j")),
			),
			Asserts: []pattern.Pattern{pattern.P(
				pattern.V("k"),
				pattern.E(expr.Add(expr.V("alpha"), expr.V("beta"))),
				pattern.E(expr.Add(expr.V("j"), iv(1))),
			)},
		}},
	}
}

// Sum1Def returns the synchronous program with the consensus phase barrier:
//
//	PROCESS Sum1(k, j)
//	∃α,β: <k−2^(j−1), α>!, <k, β>! ⇒ <k, α+β> ;
//	[ k mod 2^(j+1) = 0 ⇑ Sum1(k, j+1) | k mod 2^(j+1) ≠ 0 ⇑ skip ]
func Sum1Def() *process.Definition {
	phase := expr.Mod(expr.V("k"), expr.Fn("pow2", expr.Add(expr.V("j"), iv(1))))
	return &process.Definition{
		Name:   "Sum1",
		Params: []string{"k", "j"},
		Body: []process.Stmt{
			process.Transact{
				Kind: process.Delayed,
				Query: pattern.Q(
					pattern.R(
						pattern.E(expr.Sub(expr.V("k"), expr.Fn("pow2", expr.Sub(expr.V("j"), iv(1))))),
						pattern.V("alpha"),
					),
					pattern.R(pattern.V("k"), pattern.V("beta")),
				),
				Asserts: []pattern.Pattern{pattern.P(
					pattern.V("k"),
					pattern.E(expr.Add(expr.V("alpha"), expr.V("beta"))),
				)},
			},
			process.Select{Branches: []process.Branch{
				{Guard: process.Transact{
					Kind:  process.Consensus,
					Query: pattern.Query{Quant: pattern.Exists, Test: expr.Eq(phase, iv(0))},
					Actions: []process.Action{process.Spawn{
						Type: "Sum1",
						Args: []expr.Expr{expr.V("k"), expr.Add(expr.V("j"), iv(1))},
					}},
				}},
				{Guard: process.Transact{
					Kind:  process.Consensus,
					Query: pattern.Query{Quant: pattern.Exists, Test: expr.Ne(phase, iv(0))},
				}},
			}},
		},
	}
}

// result extracts the final sum from a store expected to hold exactly one
// tuple whose second field is the sum.
func result(s *dataspace.Store) (int64, error) {
	if s.Len() != 1 {
		return 0, fmt.Errorf("arraysum: %d tuples left, want 1", s.Len())
	}
	var got int64
	var ok bool
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			got, ok = inst.Tuple.Field(1).AsInt()
			return false
		})
	})
	if !ok {
		return 0, fmt.Errorf("arraysum: malformed result tuple")
	}
	return got, nil
}

// wait drains the runtime and surfaces the first process error.
func wait(ctx context.Context, rt *process.Runtime) error {
	if err := rt.WaitCtx(ctx); err != nil {
		return err
	}
	if errs := rt.Errors(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// RunSum3 loads <k, A(k)> for n values, runs the replication program, and
// returns the computed sum.
func RunSum3(ctx context.Context, rt *process.Runtime, n int, seed int64) (int64, error) {
	workload.LoadArray(rt.Engine().Store(), n, seed)
	if err := rt.Define(Sum3Def()); err != nil {
		return 0, err
	}
	if _, err := rt.Spawn("Sum3"); err != nil {
		return 0, err
	}
	if err := wait(ctx, rt); err != nil {
		return 0, err
	}
	return result(rt.Engine().Store())
}

// RunSum2 loads <k, A(k), 1>, spawns the Sum2(k, j) society, and returns
// the computed sum. n must be a power of two.
func RunSum2(ctx context.Context, rt *process.Runtime, n int, seed int64) (int64, error) {
	if n&(n-1) != 0 || n < 2 {
		return 0, fmt.Errorf("arraysum: n must be a power of two, got %d", n)
	}
	workload.LoadArrayPhased(rt.Engine().Store(), n, seed)
	if err := rt.Define(Sum2Def()); err != nil {
		return 0, err
	}
	for j := int64(1); 1<<j <= int64(n); j++ {
		for k := int64(1); k <= int64(n); k++ {
			if k%(1<<j) == 0 {
				if _, err := rt.Spawn("Sum2", tuple.Int(k), tuple.Int(j)); err != nil {
					return 0, err
				}
			}
		}
	}
	if err := wait(ctx, rt); err != nil {
		return 0, err
	}
	s := rt.Engine().Store()
	if s.Len() != 1 {
		return 0, fmt.Errorf("arraysum: %d tuples left, want 1", s.Len())
	}
	var got int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			got, _ = inst.Tuple.Field(1).AsInt()
			return false
		})
	})
	return got, nil
}

// RunSum1 loads <k, A(k)>, spawns Sum1(k, 1) for even k, and returns the
// computed sum. n must be a power of two.
func RunSum1(ctx context.Context, rt *process.Runtime, n int, seed int64) (int64, error) {
	if n&(n-1) != 0 || n < 2 {
		return 0, fmt.Errorf("arraysum: n must be a power of two, got %d", n)
	}
	workload.LoadArray(rt.Engine().Store(), n, seed)
	if err := rt.Define(Sum1Def()); err != nil {
		return 0, err
	}
	// The phase barrier is a consensus over every live Sum1 process, so the
	// initial community must be registered as a group: spawning one by one
	// would let an early member's consensus fire before the rest exist.
	reqs := make([]process.SpawnReq, 0, n/2)
	for k := int64(2); k <= int64(n); k += 2 {
		reqs = append(reqs, process.SpawnReq{
			Type: "Sum1",
			Args: []tuple.Value{tuple.Int(k), tuple.Int(1)},
		})
	}
	if _, err := rt.SpawnGroup(reqs); err != nil {
		return 0, err
	}
	if err := wait(ctx, rt); err != nil {
		return 0, err
	}
	return result(rt.Engine().Store())
}

// NewRuntime builds a fresh runtime for one summation run.
func NewRuntime(mode txn.Mode) *process.Runtime {
	return process.NewRuntime(txn.New(dataspace.New(), mode), nil)
}

// CloseRuntime tears a runtime down.
func CloseRuntime(rt *process.Runtime) {
	rt.Shutdown()
	rt.Consensus().Close()
}
