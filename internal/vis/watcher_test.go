package vis

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

func TestWatcherObservesEvolution(t *testing.T) {
	s := dataspace.New()
	var mu sync.Mutex
	var sizes []int
	w := NewWatcher(s, 5*time.Millisecond, func(r dataspace.Reader) {
		mu.Lock()
		sizes = append(sizes, r.Len())
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(int64(i))))
		time.Sleep(3 * time.Millisecond)
	}
	w.Stop()
	if w.Samples() == 0 {
		t.Fatal("no samples taken")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) == 0 {
		t.Fatal("render never called")
	}
	// The final sample (taken at Stop) must see the terminal state.
	if sizes[len(sizes)-1] != 10 {
		t.Errorf("final sample saw %d tuples, want 10", sizes[len(sizes)-1])
	}
	// Sizes are monotonically non-decreasing (snapshots are consistent).
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Errorf("sizes went backwards: %v", sizes)
		}
	}
}

func TestWatcherStopIdempotent(t *testing.T) {
	s := dataspace.New()
	var n atomic.Int32
	w := NewWatcher(s, time.Millisecond, func(dataspace.Reader) { n.Add(1) })
	w.Stop()
	w.Stop()
	after := n.Load()
	time.Sleep(10 * time.Millisecond)
	if n.Load() != after {
		t.Error("watcher rendered after Stop")
	}
}

func TestWatcherNeverSeesPartialCommit(t *testing.T) {
	// A transaction-sized batch (delete one, insert one) must never be
	// observed half-applied: the count is always exactly 100.
	s := dataspace.New()
	ids := s.Assert(tuple.Environment, make100()...)
	_ = ids
	var bad atomic.Int32
	w := NewWatcher(s, 100*time.Microsecond, func(r dataspace.Reader) {
		if r.Len() != 100 {
			bad.Add(1)
		}
	})
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for i := 0; i < 500; i++ {
			_ = s.Update(tuple.Environment, func(wr dataspace.Writer) error {
				var victim tuple.ID
				wr.Scan(1, tuple.Value{}, false, func(id tuple.ID, _ tuple.Tuple) bool {
					victim = id
					return false
				})
				if err := wr.Delete(victim); err != nil {
					return err
				}
				wr.Insert(tuple.New(tuple.Int(int64(1000+i))), tuple.Environment)
				return nil
			})
		}
	}()
	<-stop
	w.Stop()
	if bad.Load() != 0 {
		t.Errorf("watcher saw %d inconsistent snapshots", bad.Load())
	}
}

func make100() []tuple.Tuple {
	out := make([]tuple.Tuple, 100)
	for i := range out {
		out[i] = tuple.New(tuple.Int(int64(i)))
	}
	return out
}
