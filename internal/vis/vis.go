// Package vis renders dataspace-derived structures as text: image grids,
// region labelings, and trace activity summaries. It is the minimal
// realization of the paper's vision of "visualization processes completely
// decoupled from the rest of the process society, yet having complete
// access to the data state of the computation": renderers consume
// dataspace snapshots and trace logs, never process state.
package vis

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sdl-lang/sdl/internal/trace"
	"github.com/sdl-lang/sdl/internal/workload"
)

// RenderImage renders an image as characters by intensity band
// (' ', '.', ':', '*', '#' from dark to bright).
func RenderImage(im *workload.Image) string {
	ramp := []byte(" .:*#")
	var b strings.Builder
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.At(x, y)
			idx := int(v * int64(len(ramp)) / 256)
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderLabels renders a region labeling, assigning each distinct label a
// letter (a..z, A..Z, then '?') in order of first appearance.
func RenderLabels(w, h int, labels []int64) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	assigned := make(map[int64]byte)
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			l := labels[y*w+x]
			ch, ok := assigned[l]
			if !ok {
				if len(assigned) < len(alphabet) {
					ch = alphabet[len(assigned)]
				} else {
					ch = '?'
				}
				assigned[l] = ch
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderActivity renders per-process assert/retract counts as aligned
// rows with proportional bars.
func RenderActivity(acts []trace.OwnerActivity) string {
	if len(acts) == 0 {
		return "(no activity)\n"
	}
	maxTotal := 0
	for _, a := range acts {
		if t := a.Asserts + a.Retracts; t > maxTotal {
			maxTotal = t
		}
	}
	var b strings.Builder
	for _, a := range acts {
		total := a.Asserts + a.Retracts
		barLen := 0
		if maxTotal > 0 {
			barLen = total * 40 / maxTotal
		}
		fmt.Fprintf(&b, "P%-5d %6d asserts %6d retracts %s\n",
			a.Process, a.Asserts, a.Retracts, strings.Repeat("█", barLen))
	}
	return b.String()
}

// RenderVersionHistogram buckets events by commit version into `buckets`
// columns and renders commit activity over (logical) time.
func RenderVersionHistogram(events []trace.Event, buckets int) string {
	if len(events) == 0 || buckets <= 0 {
		return "(no events)\n"
	}
	maxV := uint64(1)
	for _, e := range events {
		if e.Version > maxV {
			maxV = e.Version
		}
	}
	counts := make([]int, buckets)
	for _, e := range events {
		idx := int((e.Version - 1) * uint64(buckets) / maxV)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	const height = 8
	var b strings.Builder
	for row := height; row >= 1; row-- {
		for _, c := range counts {
			if peak > 0 && c*height >= row*peak {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s\nversions 1..%d, %d events, peak %d/bucket\n",
		strings.Repeat("-", buckets), maxV, len(events), peak)
	return b.String()
}

// RegionSummary lists the distinct labels of a labeling with their sizes,
// largest first.
func RegionSummary(labels []int64) string {
	sizes := make(map[int64]int)
	for _, l := range labels {
		sizes[l]++
	}
	type row struct {
		label int64
		size  int
	}
	rows := make([]row, 0, len(sizes))
	for l, n := range sizes {
		rows = append(rows, row{l, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].size != rows[j].size {
			return rows[i].size > rows[j].size
		}
		return rows[i].label < rows[j].label
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%d regions\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "  label %-6d %6d px\n", r.label, r.size)
	}
	return b.String()
}
