package vis

import (
	"sync"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
)

// Watcher realizes the paper's decoupled visualization process: an
// observer "completely decoupled from the rest of the process society, yet
// having complete access to the data state of the computation". It samples
// consistent dataspace snapshots on a fixed cadence (plus one final sample
// at Stop) and hands them to a render callback. Because sampling uses the
// store's reader lock, the observed configurations are exactly the
// committed ones — an observer can never see a half-applied transaction.
type Watcher struct {
	store    *dataspace.Store
	interval time.Duration
	render   func(r dataspace.Reader)

	stop    chan struct{}
	done    chan struct{}
	mu      sync.Mutex
	samples int
	stopped bool
}

// NewWatcher starts a watcher rendering every interval. Call Stop to
// terminate it; Stop renders one final sample so the terminal state is
// always observed.
func NewWatcher(store *dataspace.Store, interval time.Duration, render func(r dataspace.Reader)) *Watcher {
	w := &Watcher{
		store:    store,
		interval: interval,
		render:   render,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *Watcher) loop() {
	defer close(w.done)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.sample()
		case <-w.stop:
			w.sample() // final state
			return
		}
	}
}

func (w *Watcher) sample() {
	w.store.Snapshot(func(r dataspace.Reader) {
		w.render(r)
	})
	w.mu.Lock()
	w.samples++
	w.mu.Unlock()
}

// Samples reports how many snapshots have been rendered.
func (w *Watcher) Samples() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.samples
}

// Stop terminates the watcher after a final sample and waits for the
// observer goroutine to exit. Stop is idempotent.
func (w *Watcher) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		<-w.done
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done
}
