package vis

import (
	"strings"
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/trace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

func traceEvents(t *testing.T) []trace.Event {
	t.Helper()
	s := dataspace.New()
	r := trace.NewRecorder(0)
	r.Attach(s)
	ids := s.Assert(1, tuple.New(tuple.Atom("year"), tuple.Int(87)))
	s.Assert(2, tuple.New(tuple.Atom("month"), tuple.Int(3)))
	_ = s.Update(3, func(w dataspace.Writer) error { return w.Delete(ids[0]) })
	return r.Events()
}

func TestRenderSVGTimelineBasics(t *testing.T) {
	out := RenderSVGTimeline(traceEvents(t), 0)
	for _, want := range []string{
		"<svg", "</svg>",
		"&lt;year, 87&gt;", // escaped tuple label
		"&lt;month, 3&gt;",
		"3 events, versions 1..3",
		"v1..v3", // the retracted tuple's lifetime
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q:\n%s", want, out)
		}
	}
	// Two rects (one per instance).
	if got := strings.Count(out, "<rect"); got != 2 {
		t.Errorf("rects = %d, want 2", got)
	}
}

func TestRenderSVGTimelineTruncation(t *testing.T) {
	s := dataspace.New()
	r := trace.NewRecorder(0)
	r.Attach(s)
	for i := 0; i < 20; i++ {
		s.Assert(1, tuple.New(tuple.Int(int64(i))))
	}
	out := RenderSVGTimeline(r.Events(), 5)
	if strings.Count(out, "<rect") != 5 {
		t.Errorf("rects = %d, want 5", strings.Count(out, "<rect"))
	}
	if !strings.Contains(out, "15 more instances omitted") {
		t.Errorf("truncation caption missing:\n%s", out)
	}
}

func TestRenderSVGTimelineEmpty(t *testing.T) {
	out := RenderSVGTimeline(nil, 0)
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("empty trace should still render a document")
	}
}

func TestEscapeXML(t *testing.T) {
	if got := escapeXML(`<a & "b">`); got != "&lt;a &amp; &quot;b&quot;&gt;" {
		t.Errorf("escape = %q", got)
	}
}
