package vis

import (
	"strings"
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/trace"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/workload"
)

func TestRenderImageShape(t *testing.T) {
	im := workload.GenImage(8, 4, 2, 1)
	out := RenderImage(im)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 8 {
			t.Errorf("line %q has width %d", l, len(l))
		}
	}
}

func TestRenderImageBands(t *testing.T) {
	im := &workload.Image{W: 5, H: 1, Pix: []int64{0, 60, 120, 180, 255}}
	out := strings.TrimRight(RenderImage(im), "\n")
	if out != " .:*#" {
		t.Errorf("bands = %q", out)
	}
}

func TestRenderLabels(t *testing.T) {
	labels := []int64{7, 7, 9, 9}
	out := RenderLabels(2, 2, labels)
	if out != "aa\nbb\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRenderLabelsManyRegions(t *testing.T) {
	labels := make([]int64, 60)
	for i := range labels {
		labels[i] = int64(i) // 60 distinct regions > 52 letters
	}
	out := RenderLabels(60, 1, labels)
	if !strings.Contains(out, "?") {
		t.Error("overflow regions should render as ?")
	}
}

func TestRenderActivity(t *testing.T) {
	out := RenderActivity([]trace.OwnerActivity{
		{Process: 1, Asserts: 10, Retracts: 2},
		{Process: 2, Asserts: 5, Retracts: 5},
	})
	if !strings.Contains(out, "P1") || !strings.Contains(out, "10 asserts") {
		t.Errorf("out = %q", out)
	}
	if RenderActivity(nil) != "(no activity)\n" {
		t.Error("empty activity rendering")
	}
}

func TestRenderVersionHistogram(t *testing.T) {
	s := dataspace.New()
	r := trace.NewRecorder(0)
	r.Attach(s)
	for i := 0; i < 50; i++ {
		s.Assert(1, tuple.New(tuple.Int(int64(i))))
	}
	out := RenderVersionHistogram(r.Events(), 10)
	if !strings.Contains(out, "50 events") {
		t.Errorf("out = %q", out)
	}
	if RenderVersionHistogram(nil, 10) != "(no events)\n" {
		t.Error("empty histogram rendering")
	}
}

func TestRegionSummary(t *testing.T) {
	labels := []int64{3, 3, 3, 8}
	out := RegionSummary(labels)
	if !strings.Contains(out, "2 regions") {
		t.Errorf("out = %q", out)
	}
	// Largest region first.
	i3 := strings.Index(out, "label 3")
	i8 := strings.Index(out, "label 8")
	if i3 < 0 || i8 < 0 || i3 > i8 {
		t.Errorf("ordering wrong: %q", out)
	}
}
