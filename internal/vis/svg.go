package vis

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sdl-lang/sdl/internal/trace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// RenderSVGTimeline renders a trace log as a tuple-lifetime timeline: one
// horizontal lane per tuple instance, a bar from its assertion version to
// its retraction version (or the end of the trace if it survives), colored
// by the asserting process. The output is a self-contained SVG document —
// the paper's program-visualization ambition in its simplest durable form.
//
// maxLanes bounds the number of instance lanes rendered (0 = all); when
// truncated, a caption says how many instances were omitted.
func RenderSVGTimeline(events []trace.Event, maxLanes int) string {
	type life struct {
		id         tuple.ID
		label      string
		owner      tuple.ProcessID
		birth      uint64
		death      uint64
		alive      bool
		birthIndex int
	}
	lives := make(map[tuple.ID]*life)
	var order []*life
	maxVersion := uint64(1)
	for i, e := range events {
		if e.Version > maxVersion {
			maxVersion = e.Version
		}
		switch e.Kind {
		case trace.Assert:
			l := &life{
				id: e.ID, label: e.Tuple, owner: e.Owner,
				birth: e.Version, alive: true, birthIndex: i,
			}
			lives[e.ID] = l
			order = append(order, l)
		case trace.Retract:
			if l, ok := lives[e.ID]; ok {
				l.death = e.Version
				l.alive = false
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].birthIndex < order[j].birthIndex })

	omitted := 0
	if maxLanes > 0 && len(order) > maxLanes {
		omitted = len(order) - maxLanes
		order = order[:maxLanes]
	}

	const (
		laneH    = 14
		topPad   = 28
		leftPad  = 220
		chartW   = 640
		rightPad = 16
	)
	height := topPad + laneH*len(order) + 24
	width := leftPad + chartW + rightPad
	x := func(v uint64) float64 {
		return leftPad + float64(v)*float64(chartW)/float64(maxVersion)
	}
	palette := []string{
		"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
		"#76b7b2", "#edc948", "#b07aa1", "#9c755f",
	}

	var b strings.Builder
	fmt.Fprintf(&b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n",
		width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="12">dataspace timeline — %d events, versions 1..%d</text>`+"\n",
		leftPad, len(events), maxVersion)
	for i, l := range order {
		y := topPad + i*laneH
		end := maxVersion
		if !l.alive {
			end = l.death
		}
		color := palette[int(l.owner)%len(palette)]
		label := l.label
		if len(label) > 30 {
			label = label[:27] + "..."
		}
		fmt.Fprintf(&b, `<text x="4" y="%d">#%d %s</text>`+"\n", y+laneH-4, l.id, escapeXML(label))
		w := x(end) - x(l.birth)
		if w < 2 {
			w = 2
		}
		opacity := "1.0"
		if l.alive {
			opacity = "0.55" // still alive at the end of the trace
		}
		fmt.Fprintf(&b,
			`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="%s"><title>%s: v%d..v%d (P%d)</title></rect>`+"\n",
			x(l.birth), y+2, w, laneH-4, color, opacity, escapeXML(l.label), l.birth, end, l.owner)
	}
	if omitted > 0 {
		fmt.Fprintf(&b, `<text x="4" y="%d" fill="#888">(%d more instances omitted)</text>`+"\n",
			topPad+len(order)*laneH+14, omitted)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
