package dataspace

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// This file implements the commutativity-aware commit path: transactions
// whose footprint resolves to concrete (arity, lead) index buckets commit
// under per-key latches instead of shard mutexes, and commits queued on the
// same shard batch their version allocation and hook publication under one
// critical section (group commit).
//
// Why it is sound. Two dataspace transactions conflict only when their
// footprints share an index bucket: tuple operations on disjoint buckets
// commute (insertions into a multiset commute; deletions of distinct
// instances commute; a scan is unaffected by writes outside the buckets it
// reads). The key path therefore latches exactly the buckets a planned
// transaction can scan, retract from, or assert into — strict two-phase
// locking at bucket granularity. Conflicting commits serialize on a shared
// latch and allocate their versions while it is held, so the global version
// order extends the conflict order and the serializability witness
// (trace.CommitLog + refmodel.Replay) remains exact.
//
// Lock classes, in fixed acquisition order:
//
//  1. key latches — striped per shard, acquired in ascending (shard,
//     stripe) order across the whole store;
//  2. shard intent locks — shared (RLock) by key-mode commits, exclusive
//     by shard-mode commits (updateSet), ascending shard order;
//  3. shard mu — mu.RLock during the key commit's evaluation, mu.Lock
//     briefly during the batched apply, ascending shard order.
//
// Every path acquires classes strictly in this order, and within a class in
// ascending global order, so the ladder is deadlock-free.
//
// A key-mode commit buffers its mutations (keyWriter) during evaluation
// under mu.RLock and publishes them under mu.Lock — either by enqueueing on
// its shard's commit queue, where the first committer becomes the leader
// and drains everyone's buffers under a single mu.Lock (amortizing the E12
// locks/op cost), or, for multi-shard footprints, by applying directly
// while holding every footprint shard's mu (so full-store snapshots never
// observe a torn commit). Latches are held until the commit's mutations are
// applied and its version allocated, preserving two-phase locking.

// keyStripes is the number of key-latch stripes per shard. Collisions only
// serialize (never break) commits, so a modest count suffices.
const keyStripes = 64

// latchRef addresses one latch: a shard and a stripe within it.
type latchRef struct {
	si     uint32
	stripe uint32
}

// latchPlan is a commit's latch set: deduplicated, ascending (shard,
// stripe) — the global latch order — plus the covered buckets for Insert
// validation and the footprint shard set.
type latchPlan struct {
	latches []latchRef
	keys    []indexKey
	ss      shardSet
}

// covers reports whether the plan's footprint includes bucket k.
func (lp *latchPlan) covers(k indexKey) bool {
	for _, have := range lp.keys {
		if have == k {
			return true
		}
	}
	return false
}

// stripeOf selects the latch stripe for a bucket from the high hash bits,
// independent of the low bits that select the shard.
func stripeOf(k indexKey) uint32 {
	return uint32(hashKey(k)>>32) % keyStripes
}

// planLatches maps interest keys onto a latch plan. ok=false when any key
// is lead-unknown (arity > 0): such a footprint can touch any bucket of its
// arity and must fall back to shard-level locking.
func (s *Store) planLatches(keys []InterestKey) (latchPlan, bool) {
	var lp latchPlan
	for _, k := range keys {
		var ik indexKey
		switch {
		case k.Arity == 0:
			// arity-0 tuples share the single zero-lead bucket
		case k.LeadKnown:
			ik = indexKey{arity: k.Arity, lead: canonLead(k.Lead)}
		default:
			return latchPlan{}, false
		}
		if lp.covers(ik) {
			continue
		}
		lp.keys = append(lp.keys, ik)
		si := s.shardIndex(ik)
		lp.ss.add(si)
		lp.latches = append(lp.latches, latchRef{si: si, stripe: stripeOf(ik)})
	}
	sort.Slice(lp.latches, func(i, j int) bool {
		a, b := lp.latches[i], lp.latches[j]
		if a.si != b.si {
			return a.si < b.si
		}
		return a.stripe < b.stripe
	})
	// Distinct buckets can collide on a stripe; latch each stripe once.
	dedup := lp.latches[:0]
	for _, l := range lp.latches {
		if len(dedup) == 0 || dedup[len(dedup)-1] != l {
			dedup = append(dedup, l)
		}
	}
	lp.latches = dedup
	return lp, true
}

// keyWriter implements Writer for the commuting path. Reads go to the live
// shard maps (under the footprint's mu read locks) overlaid with the
// writer's own buffered mutations, so fn observes the standard
// read-your-writes semantics; mutations are buffered and applied under
// mu.Lock at publication.
type keyWriter struct {
	s     *Store
	lp    *latchPlan
	owner tuple.ProcessID

	inserted []Instance
	insShard []uint32
	deleted  []Instance
	delShard []uint32
	delIDs   map[tuple.ID]struct{}
}

var _ Writer = (*keyWriter)(nil)

func (kw *keyWriter) isDeleted(id tuple.ID) bool {
	_, gone := kw.delIDs[id]
	return gone
}

func (kw *keyWriter) live() reader { return reader{s: kw.s, ss: &kw.lp.ss} }

func (kw *keyWriter) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	stopped := false
	kw.live().Scan(arity, lead, leadKnown, func(id tuple.ID, t tuple.Tuple) bool {
		if kw.isDeleted(id) {
			return true
		}
		if !fn(id, t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, ins := range kw.inserted {
		t := ins.Tuple
		if t.Arity() != arity {
			continue
		}
		if leadKnown && (arity == 0 || !canonLead(t.Field(0)).equal(canonLead(lead))) {
			continue
		}
		if !fn(ins.ID, t) {
			return
		}
	}
}

func (kw *keyWriter) Get(id tuple.ID) (Instance, bool) {
	if kw.isDeleted(id) {
		return Instance{}, false
	}
	for _, ins := range kw.inserted {
		if ins.ID == id {
			return ins, true
		}
	}
	return kw.live().Get(id)
}

func (kw *keyWriter) Each(fn func(Instance) bool) {
	stopped := false
	kw.live().Each(func(inst Instance) bool {
		if kw.isDeleted(inst.ID) {
			return true
		}
		if !fn(inst) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, ins := range kw.inserted {
		if !fn(ins) {
			return
		}
	}
}

func (kw *keyWriter) Arities() []int {
	out := kw.live().Arities()
	for _, ins := range kw.inserted {
		a := ins.Tuple.Arity()
		dup := false
		for _, have := range out {
			if have == a {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

func (kw *keyWriter) Version() uint64 { return kw.s.version.Load() }

func (kw *keyWriter) Len() int {
	return kw.live().Len() - len(kw.deleted) + len(kw.inserted)
}

func (kw *keyWriter) Insert(t tuple.Tuple, owner tuple.ProcessID) tuple.ID {
	ik := indexKeyOf(t)
	if !kw.lp.covers(ik) {
		panic(fmt.Sprintf("dataspace: Insert of %v outside the commit's latched buckets (footprint plan missed a bucket)", t))
	}
	id := tuple.ID(kw.s.nextID.Add(1))
	kw.inserted = append(kw.inserted, Instance{ID: id, Tuple: t, Owner: owner})
	kw.insShard = append(kw.insShard, kw.s.shardIndex(ik))
	return id
}

func (kw *keyWriter) Delete(id tuple.ID) error {
	if kw.isDeleted(id) {
		return fmt.Errorf("%w: %d", ErrNoSuchTuple, id)
	}
	for i, ins := range kw.inserted {
		if ins.ID == id {
			// Deleting a tuple inserted by this same transaction: cancel the
			// buffered insert.
			kw.inserted = append(kw.inserted[:i], kw.inserted[i+1:]...)
			kw.insShard = append(kw.insShard[:i], kw.insShard[i+1:]...)
			return nil
		}
	}
	inst, ok := kw.live().Get(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchTuple, id)
	}
	if !kw.lp.covers(indexKeyOf(inst.Tuple)) {
		panic(fmt.Sprintf("dataspace: Delete of %v outside the commit's latched buckets (footprint plan missed a bucket)", inst.Tuple))
	}
	if kw.delIDs == nil {
		kw.delIDs = make(map[tuple.ID]struct{})
	}
	kw.delIDs[id] = struct{}{}
	kw.deleted = append(kw.deleted, inst)
	kw.delShard = append(kw.delShard, kw.s.shardIndex(indexKeyOf(inst.Tuple)))
	return nil
}

// equal compares canonical lead keys (leadKey is comparable, but spelled
// out here so the Scan overlay reads clearly).
func (k leadKey) equal(o leadKey) bool { return k == o }

// commitItem is one buffered commit queued for a shard's group-commit
// drain. done is closed by the leader once the item's mutations are
// applied, its version allocated, and its hooks run.
type commitItem struct {
	kw   *keyWriter
	rec  CommitRecord
	dtok uint64 // durability wait token (set by the leader's apply)
	done chan struct{}
}

// commitQueue is a shard's group-commit queue. The first committer to find
// the queue inactive becomes the leader: it acquires the shard's mu once
// and drains every queued item — including items that arrive while it
// drains — under that single critical section.
type commitQueue struct {
	mu     sync.Mutex
	items  []*commitItem
	active bool
}

// UpdateCommuting is UpdateKeys routed through the commutativity-aware
// commit path. When every key is concrete (arity + known lead), fn runs
// under per-key latches: commits touching disjoint buckets — even buckets
// of the same shard — proceed in parallel, and same-shard commits batch
// their publication (group commit). Wildcard keys, and stores built with
// WithCommuting(false), fall back to shard-level locking.
//
// fn receives a Writer with standard semantics (reads observe the
// transaction's own mutations). As with UpdateKeys, the footprint must
// cover every bucket fn scans, retracts from, or asserts into; the writer
// panics on a mutation outside the latched buckets.
func (s *Store) UpdateCommuting(owner tuple.ProcessID, keys []InterestKey, fn func(w Writer) error) error {
	if !s.commuting {
		return s.fallbackUpdate(keys, owner, fn)
	}
	lp, ok := s.planLatches(keys)
	if !ok || len(lp.latches) == 0 {
		return s.fallbackUpdate(keys, owner, fn)
	}

	// 1. Key latches, ascending global (shard, stripe) order.
	for _, l := range lp.latches {
		s.sc.Yield(sched.PointLockKey)
		s.shards[l.si].latches[l.stripe].Lock()
		s.metrics.IncShardKeyLocks(l.si, 1)
	}
	unlatch := func() {
		for i := len(lp.latches) - 1; i >= 0; i-- {
			l := lp.latches[i]
			s.shards[l.si].latches[l.stripe].Unlock()
		}
	}
	if s.sc != nil {
		// Contention spike: widen the latched section, piling conflicting
		// key commits up behind this footprint.
		for n := s.sc.LockSpike(); n > 0; n-- {
			runtime.Gosched()
		}
	}

	// 2. Intent locks (shared), ascending shard order: shard-mode commits
	// are excluded from the footprint for the whole span.
	lp.ss.forEach(func(i uint32) bool {
		s.shards[i].intent.RLock()
		return true
	})
	unintent := func() {
		lp.ss.forEach(func(i uint32) bool {
			s.shards[i].intent.RUnlock()
			return true
		})
	}

	// 3. Evaluation under the footprint's read locks, mutations buffered.
	if s.metrics.Observed() {
		s.metrics.ObserveFootprint(lp.ss.count())
	}
	kw := &keyWriter{s: s, lp: &lp, owner: owner}
	s.rlockSet(&lp.ss)
	err := fn(kw)
	s.runlockSet(&lp.ss)
	if err != nil {
		// Nothing was applied; discarding the buffers is the whole rollback.
		unintent()
		unlatch()
		return err
	}
	if len(kw.inserted) == 0 && len(kw.deleted) == 0 {
		unintent()
		unlatch()
		return nil
	}

	// 4. Publication: batched through the shard's commit queue when the
	// footprint is a single shard, direct (holding every footprint mu, so
	// snapshots never see a torn commit) when it spans several.
	var (
		rec  CommitRecord
		dtok uint64
	)
	if lp.ss.count() == 1 {
		var si uint32
		lp.ss.forEach(func(i uint32) bool { si = i; return false })
		rec, dtok = s.groupCommit(si, kw)
	} else {
		rec, dtok = s.directCommit(kw)
	}
	unintent()
	unlatch()
	s.waitDurable(dtok)
	s.notify(rec, kw.insShard, kw.delShard)
	return nil
}

// fallbackUpdate demotes a planned commit to shard-level locking; the
// shard-fallback counter is bumped inside updateSet when it commits.
func (s *Store) fallbackUpdate(keys []InterestKey, owner tuple.ProcessID, fn func(w Writer) error) error {
	_, err := s.updateSet(s.planShards(keys), owner, false, fn)
	return err
}

// groupCommit publishes a single-shard buffered commit through the shard's
// queue. The leader drains the queue under one mu.Lock: it applies every
// item's buffer, allocates versions, and runs hooks — one lock acquisition
// for the whole batch. Items commute (their latch sets are disjoint, or
// they would not be in the queue concurrently), so the apply order within
// a batch is free; the exploration controller may permute it.
func (s *Store) groupCommit(si uint32, kw *keyWriter) (CommitRecord, uint64) {
	sh := s.shards[si]
	item := &commitItem{kw: kw, done: make(chan struct{})}
	sh.queue.mu.Lock()
	sh.queue.items = append(sh.queue.items, item)
	leader := !sh.queue.active
	if leader {
		sh.queue.active = true
	}
	sh.queue.mu.Unlock()

	if !leader {
		<-item.done
		return item.rec, item.dtok
	}

	s.sc.Yield(sched.PointGroupCommit)
	sh.mu.Lock()
	s.metrics.IncShardWrite(si)
	for {
		sh.queue.mu.Lock()
		batch := sh.queue.items
		sh.queue.items = nil
		if len(batch) == 0 {
			// The emptiness check and the handoff are atomic under queue.mu:
			// a committer enqueueing after this sees active=false and
			// becomes the next leader.
			sh.queue.active = false
			sh.queue.mu.Unlock()
			break
		}
		sh.queue.mu.Unlock()
		if perm := s.sc.Perm(sched.PointGroupCommit, len(batch)); perm != nil {
			reordered := make([]*commitItem, len(batch))
			for i, j := range perm {
				reordered[i] = batch[j]
			}
			batch = reordered
		}
		for _, it := range batch {
			it.rec, it.dtok = s.applyBuffered(it.kw)
		}
		sh.bumpSeq()
		s.metrics.ObserveGroupBatch(len(batch))
		for _, it := range batch {
			close(it.done)
		}
	}
	sh.mu.Unlock()
	return item.rec, item.dtok
}

// directCommit publishes a multi-shard buffered commit, holding every
// footprint shard's mu (ascending) for the apply so cross-shard snapshots
// observe the commit atomically.
func (s *Store) directCommit(kw *keyWriter) (CommitRecord, uint64) {
	kw.lp.ss.forEach(func(i uint32) bool {
		s.shards[i].mu.Lock()
		s.metrics.IncShardWrite(i)
		return true
	})
	rec, dtok := s.applyBuffered(kw)
	s.bumpSeqs(kw.insShard, kw.delShard)
	kw.lp.ss.forEach(func(i uint32) bool {
		s.shards[i].mu.Unlock()
		return true
	})
	return rec, dtok
}

// applyBuffered applies one keyWriter's buffered mutations to the live
// maps, allocates the commit's version, runs the hooks, and appends the
// record to the durability sink (the commit's key latches are still held,
// so conflicting commits append in version order). Callers hold the mu of
// every shard the buffer touches.
//
// lint:holds latch mu
func (s *Store) applyBuffered(kw *keyWriter) (CommitRecord, uint64) {
	for i, ins := range kw.inserted {
		sh := s.shards[kw.insShard[i]]
		sh.entries[ins.ID] = entry{t: ins.Tuple, owner: ins.Owner}
		sh.indexAdd(ins.ID, ins.Tuple)
		sh.asserts++
	}
	for i, del := range kw.deleted {
		sh := s.shards[kw.delShard[i]]
		if _, ok := sh.entries[del.ID]; !ok {
			// The latch held since evaluation makes this unreachable; a miss
			// means the two-phase-locking invariant was broken.
			panic(fmt.Sprintf("dataspace: buffered delete of %v lost its target (latch invariant violated)", del.Tuple))
		}
		delete(sh.entries, del.ID)
		sh.indexRemove(del.ID, del.Tuple)
		sh.retracts++
	}
	s.metrics.IncCommits()
	s.metrics.IncKeyCommit()
	rec := CommitRecord{
		Version:  s.allocVersion(),
		Owner:    kw.owner,
		Inserted: kw.inserted,
		Deleted:  kw.deleted,
	}
	for _, h := range s.onCommit {
		h(rec)
	}
	var dtok uint64
	if s.durable != nil {
		dtok = s.durable.Append(rec)
	}
	return rec, dtok
}
