package dataspace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sdl-lang/sdl/internal/tuple"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s := New()
	ids := s.Assert(3, year(85), year(90))
	s.Assert(7, tuple.New(tuple.Atom("x"), tuple.Float(1.5), tuple.String("s"), tuple.Bool(true)))
	_ = s.Update(3, func(w Writer) error { return w.Delete(ids[0]) })

	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	if err := s2.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() || s2.Version() != s.Version() {
		t.Errorf("len/version = %d/%d, want %d/%d", s2.Len(), s2.Version(), s.Len(), s.Version())
	}
	// Same instances, same IDs, same owners.
	orig := map[tuple.ID]Instance{}
	for _, inst := range s.All() {
		orig[inst.ID] = inst
	}
	for _, inst := range s2.All() {
		want, ok := orig[inst.ID]
		if !ok || !want.Tuple.Equal(inst.Tuple) || want.Owner != inst.Owner {
			t.Errorf("instance %d mismatch: %+v vs %+v", inst.ID, inst, want)
		}
	}
	// New inserts must not reuse restored IDs.
	newIDs := s2.Assert(1, year(99))
	if _, dup := orig[newIDs[0]]; dup {
		t.Errorf("restored store reused instance ID %d", newIDs[0])
	}
	// Restored indexes must serve scans.
	s2.Snapshot(func(r Reader) {
		if got := collect(r, 2, tuple.Atom("year"), true); len(got) != 2 {
			t.Errorf("scan after restore = %d", len(got))
		}
	})
}

func TestCheckpointDeterministic(t *testing.T) {
	s := New()
	s.Assert(1, year(1), year(2), year(3))
	var a, b bytes.Buffer
	if err := s.WriteCheckpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("checkpoints of the same configuration differ")
	}
}

func TestCheckpointEmptyStore(t *testing.T) {
	s := New()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.ReadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Errorf("len = %d", s2.Len())
	}
}

func TestCheckpointErrors(t *testing.T) {
	// Not empty.
	full := New()
	full.Assert(1, year(1))
	var good bytes.Buffer
	if err := New().WriteCheckpoint(&good); err != nil {
		t.Fatal(err)
	}
	if err := full.ReadCheckpoint(&good); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("non-empty restore: %v", err)
	}
	// Bad magic / truncation / trailing garbage.
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SDLD"),
		append([]byte("SDLD"), 99), // unsupported format version
	}
	for i, data := range cases {
		if err := New().ReadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	// Trailing bytes.
	s := New()
	s.Assert(1, year(1))
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0)
	if err := New().ReadCheckpoint(&buf); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("trailing: %v", err)
	}
}

// Property: checkpoint round trip preserves the multiset exactly.
func TestQuickCheckpointRoundTrip(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(testSeed(21))), MaxCount: 25}
	f := func(raw []uint8) bool {
		s := New()
		for _, r := range raw {
			s.Assert(tuple.ProcessID(r%5), tuple.New(tuple.Int(int64(r%7)), tuple.Int(int64(r))))
		}
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf); err != nil {
			return false
		}
		s2 := New()
		if err := s2.ReadCheckpoint(&buf); err != nil {
			return false
		}
		if s2.Len() != s.Len() {
			return false
		}
		want := map[tuple.ID]Instance{}
		for _, inst := range s.All() {
			want[inst.ID] = inst
		}
		for _, inst := range s2.All() {
			w, ok := want[inst.ID]
			if !ok || !w.Tuple.Equal(inst.Tuple) || w.Owner != inst.Owner {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
