package dataspace

import (
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/tuple"
)

func waitFired(t *testing.T, ch <-chan struct{}) bool {
	t.Helper()
	select {
	case <-ch:
		return true
	case <-time.After(2 * time.Second):
		return false
	}
}

func assertNotFired(t *testing.T, ch <-chan struct{}) {
	t.Helper()
	select {
	case <-ch:
		t.Error("waiter fired unexpectedly")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestWaitWakesOnMatchingInsert(t *testing.T) {
	s := New()
	ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Atom("year"), LeadKnown: true}})
	defer cancel()
	s.Assert(tuple.Environment, year(90))
	if !waitFired(t, ch) {
		t.Fatal("waiter not woken by matching insert")
	}
}

func TestWaitIgnoresIrrelevantCommit(t *testing.T) {
	s := New()
	ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Atom("year"), LeadKnown: true}})
	defer cancel()
	// Different lead and different arity must not wake the waiter.
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("month"), tuple.Int(1)))
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("year"), tuple.Int(1), tuple.Int(2)))
	assertNotFired(t, ch)
}

func TestWaitWakesOnDelete(t *testing.T) {
	// Deletes matter for negated patterns: retraction can enable a query.
	s := New()
	ids := s.Assert(tuple.Environment, year(90))
	ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Atom("year"), LeadKnown: true}})
	defer cancel()
	_ = s.Update(tuple.Environment, func(w Writer) error { return w.Delete(ids[0]) })
	if !waitFired(t, ch) {
		t.Fatal("waiter not woken by delete")
	}
}

func TestWaitArityOnlyKey(t *testing.T) {
	s := New()
	ch, cancel := s.Wait([]InterestKey{{Arity: 2}})
	defer cancel()
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("anything"), tuple.Int(1)))
	if !waitFired(t, ch) {
		t.Fatal("arity waiter not woken")
	}
}

func TestWaitNumericLeadCanonical(t *testing.T) {
	s := New()
	ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Float(2.0), LeadKnown: true}})
	defer cancel()
	s.Assert(tuple.Environment, tuple.New(tuple.Int(2), tuple.Int(9)))
	if !waitFired(t, ch) {
		t.Fatal("canonical numeric lead missed wakeup")
	}
}

func TestCancelRemovesRegistration(t *testing.T) {
	s := New()
	ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Atom("year"), LeadKnown: true}})
	cancel()
	cancel() // idempotent
	s.Assert(tuple.Environment, year(1))
	assertNotFired(t, ch)

	for i, sh := range s.shards {
		r := &sh.waiters
		r.mu.Lock()
		if len(r.byKey) != 0 || len(r.byArity) != 0 {
			t.Errorf("shard %d registry not empty after cancel: %d/%d", i, len(r.byKey), len(r.byArity))
		}
		r.mu.Unlock()
	}
}

func TestWaiterFiresOnce(t *testing.T) {
	s := New()
	ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Atom("year"), LeadKnown: true}})
	defer cancel()
	s.Assert(tuple.Environment, year(1))
	s.Assert(tuple.Environment, year(2)) // second fire must not panic (close once)
	if !waitFired(t, ch) {
		t.Fatal("not fired")
	}
}

func TestNoLostWakeupProtocol(t *testing.T) {
	// Register-then-evaluate: a commit racing with the evaluation is caught
	// because registration happened first.
	s := New()
	for i := 0; i < 200; i++ {
		ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Atom("year"), LeadKnown: true}})
		done := make(chan struct{})
		go func() {
			s.Assert(tuple.Environment, year(int64(i)))
			close(done)
		}()
		// Evaluate (find nothing or something — irrelevant); then wait.
		if !waitFired(t, ch) {
			t.Fatal("lost wakeup")
		}
		<-done
		cancel()
	}
}

func TestMultipleWaitersAllWoken(t *testing.T) {
	s := New()
	const n = 10
	chans := make([]<-chan struct{}, n)
	cancels := make([]func(), n)
	for i := range chans {
		chans[i], cancels[i] = s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Atom("year"), LeadKnown: true}})
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	s.Assert(tuple.Environment, year(90))
	for i, ch := range chans {
		if !waitFired(t, ch) {
			t.Fatalf("waiter %d not woken", i)
		}
	}
}
