package dataspace

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/sdl-lang/sdl/internal/tuple"
)

func TestShardCountNormalization(t *testing.T) {
	cases := []struct {
		in   int
		want int
	}{
		{1, 1},
		{2, 2},
		{3, 4},
		{4, 4},
		{5, 8},
		{16, 16},
		{200, 256},
		{100000, 256},
	}
	for _, c := range cases {
		if got := New(WithShards(c.in)).NumShards(); got != c.want {
			t.Errorf("WithShards(%d) → %d shards, want %d", c.in, got, c.want)
		}
	}
	if got := New().NumShards(); got < 1 || got&(got-1) != 0 {
		t.Errorf("default shard count %d is not a power of two ≥ 1", got)
	}
}

// leadsOnDistinctShards returns two int leads of the given arity that hash
// to different shards (the store must have ≥ 2 shards).
func leadsOnDistinctShards(t *testing.T, s *Store, arity int) (int64, int64) {
	t.Helper()
	first := int64(0)
	si0 := s.shardIndex(indexKey{arity: arity, lead: canonLead(tuple.Int(first))})
	for v := int64(1); v < 4096; v++ {
		if s.shardIndex(indexKey{arity: arity, lead: canonLead(tuple.Int(v))}) != si0 {
			return first, v
		}
	}
	t.Fatal("no pair of leads on distinct shards found")
	return 0, 0
}

func TestShardRoutingIsByBucket(t *testing.T) {
	s := New(WithShards(8))
	// Every tuple of one (arity, lead) bucket must land in one shard, and
	// an arity-wide scan must see tuples across all shards.
	for i := int64(0); i < 64; i++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(i%8), tuple.Int(i)))
	}
	for lead := int64(0); lead < 8; lead++ {
		si := s.shardIndex(indexKey{arity: 2, lead: canonLead(tuple.Int(lead))})
		sh := s.shards[si]
		k := indexKey{arity: 2, lead: canonLead(tuple.Int(lead))}
		if got := len(sh.byLead[k]); got != 8 {
			t.Errorf("bucket lead=%d has %d tuples in its shard, want 8", lead, got)
		}
	}
	s.Snapshot(func(r Reader) {
		if got := len(collect(r, 2, tuple.Value{}, false)); got != 64 {
			t.Errorf("arity scan across shards = %d, want 64", got)
		}
		if got := r.Len(); got != 64 {
			t.Errorf("Len across shards = %d", got)
		}
	})
}

func TestUpdateKeysSingleShardFootprint(t *testing.T) {
	s := New(WithShards(8))
	keys := []InterestKey{{Arity: 2, Lead: tuple.Int(7), LeadKnown: true}}
	err := s.UpdateKeys(tuple.Environment, keys, func(w Writer) error {
		w.Insert(tuple.New(tuple.Int(7), tuple.Atom("a")), tuple.Environment)
		w.Insert(tuple.New(tuple.Int(7), tuple.Atom("b")), tuple.Environment)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []tuple.ID
	s.SnapshotKeys(keys, func(r Reader) {
		r.Scan(2, tuple.Int(7), true, func(id tuple.ID, _ tuple.Tuple) bool {
			ids = append(ids, id)
			return true
		})
		if len(ids) != 2 {
			t.Fatalf("keyed scan = %d", len(ids))
		}
	})
	err = s.UpdateKeys(tuple.Environment, keys, func(w Writer) error {
		return w.Delete(ids[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after keyed delete", s.Len())
	}
}

func TestKeyedReaderScopedToFootprint(t *testing.T) {
	s := New(WithShards(8))
	a, b := leadsOnDistinctShards(t, s, 2)
	s.Assert(tuple.Environment, tuple.New(tuple.Int(a), tuple.Int(1)))
	ids := s.Assert(tuple.Environment, tuple.New(tuple.Int(b), tuple.Int(2)))
	keys := []InterestKey{{Arity: 2, Lead: tuple.Int(a), LeadKnown: true}}
	s.SnapshotKeys(keys, func(r Reader) {
		if got := len(collect(r, 2, tuple.Int(a), true)); got != 1 {
			t.Errorf("covered bucket scan = %d", got)
		}
		if got := len(collect(r, 2, tuple.Int(b), true)); got != 0 {
			t.Errorf("uncovered bucket scan = %d, want 0", got)
		}
		if _, ok := r.Get(ids[0]); ok {
			t.Error("Get found an instance outside the footprint")
		}
	})
}

func TestInsertOutsideFootprintPanics(t *testing.T) {
	s := New(WithShards(8))
	a, b := leadsOnDistinctShards(t, s, 2)
	keys := []InterestKey{{Arity: 2, Lead: tuple.Int(a), LeadKnown: true}}
	defer func() {
		if recover() == nil {
			t.Error("Insert outside the planned footprint did not panic")
		}
	}()
	_ = s.UpdateKeys(tuple.Environment, keys, func(w Writer) error {
		w.Insert(tuple.New(tuple.Int(b), tuple.Int(1)), tuple.Environment)
		return nil
	})
}

// dump captures the full observable store state: every instance plus every
// per-bucket scan result, for exact before/after comparison.
func dump(s *Store) string {
	var b bytes.Buffer
	insts := s.All()
	sort.Slice(insts, func(i, j int) bool { return insts[i].ID < insts[j].ID })
	for _, inst := range insts {
		fmt.Fprintf(&b, "%d %s %d\n", inst.ID, inst.Tuple, inst.Owner)
	}
	s.Snapshot(func(r Reader) {
		arities := r.Arities()
		sort.Ints(arities)
		for _, a := range arities {
			var ids []tuple.ID
			r.Scan(a, tuple.Value{}, false, func(id tuple.ID, _ tuple.Tuple) bool {
				ids = append(ids, id)
				return true
			})
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			fmt.Fprintf(&b, "arity %d: %v\n", a, ids)
		}
	})
	return b.String()
}

func TestCrossShardRollback(t *testing.T) {
	s := New(WithShards(8))
	a, b := leadsOnDistinctShards(t, s, 2)
	idsA := s.Assert(tuple.Environment, tuple.New(tuple.Int(a), tuple.Atom("keep")))
	idsB := s.Assert(tuple.Environment, tuple.New(tuple.Int(b), tuple.Atom("keep")))
	before := dump(s)
	v0 := s.Version()

	sentinel := errors.New("boom")
	keys := []InterestKey{
		{Arity: 2, Lead: tuple.Int(a), LeadKnown: true},
		{Arity: 2, Lead: tuple.Int(b), LeadKnown: true},
	}
	err := s.UpdateKeys(tuple.Environment, keys, func(w Writer) error {
		// Mutate both shards, then fail: inserts on each shard, deletes on
		// each shard — rollback must restore every one.
		w.Insert(tuple.New(tuple.Int(a), tuple.Atom("new")), 9)
		w.Insert(tuple.New(tuple.Int(b), tuple.Atom("new")), 9)
		if err := w.Delete(idsA[0]); err != nil {
			return err
		}
		if err := w.Delete(idsB[0]); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if s.Version() != v0 {
		t.Error("failed multi-shard update bumped version")
	}
	if after := dump(s); after != before {
		t.Errorf("state changed across rollback:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// Indexes must still serve the restored instances.
	s.Snapshot(func(r Reader) {
		for _, lead := range []int64{a, b} {
			if got := len(collect(r, 2, tuple.Int(lead), true)); got != 1 {
				t.Errorf("lead %d bucket = %d after rollback", lead, got)
			}
		}
	})
	// The store must be fully usable after rollback.
	s.Assert(tuple.Environment, tuple.New(tuple.Int(a), tuple.Atom("post")))
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestWaiterCancelAfterFire(t *testing.T) {
	s := New(WithShards(8))
	ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Int(1), LeadKnown: true}})
	s.Assert(tuple.Environment, tuple.New(tuple.Int(1), tuple.Int(0)))
	if !waitFired(t, ch) {
		t.Fatal("waiter not fired")
	}
	cancel() // after fire: must not panic or corrupt the registry
	cancel() // and stays idempotent
	for i, sh := range s.shards {
		sh.waiters.mu.Lock()
		if len(sh.waiters.byKey) != 0 || len(sh.waiters.byArity) != 0 {
			t.Errorf("shard %d registry not empty after cancel-after-fire", i)
		}
		sh.waiters.mu.Unlock()
	}
}

func TestCommitOnOtherShardDoesNotWake(t *testing.T) {
	s := New(WithShards(8))
	a, b := leadsOnDistinctShards(t, s, 2)
	ch, cancel := s.Wait([]InterestKey{{Arity: 2, Lead: tuple.Int(a), LeadKnown: true}})
	defer cancel()
	// A keyed commit on a different shard never even inspects the waiter's
	// registry; it must not wake.
	keys := []InterestKey{{Arity: 2, Lead: tuple.Int(b), LeadKnown: true}}
	_ = s.UpdateKeys(tuple.Environment, keys, func(w Writer) error {
		w.Insert(tuple.New(tuple.Int(b), tuple.Int(1)), tuple.Environment)
		return nil
	})
	assertNotFired(t, ch)
	// The matching commit still wakes it.
	s.Assert(tuple.Environment, tuple.New(tuple.Int(a), tuple.Int(1)))
	if !waitFired(t, ch) {
		t.Fatal("waiter missed its own shard's commit")
	}
}

func TestArityWaiterRegisteredInAllShards(t *testing.T) {
	s := New(WithShards(8))
	_, b := leadsOnDistinctShards(t, s, 2)
	// A lead-unknown waiter must be woken by a commit on ANY shard.
	ch, cancel := s.Wait([]InterestKey{{Arity: 2}})
	defer cancel()
	keys := []InterestKey{{Arity: 2, Lead: tuple.Int(b), LeadKnown: true}}
	_ = s.UpdateKeys(tuple.Environment, keys, func(w Writer) error {
		w.Insert(tuple.New(tuple.Int(b), tuple.Int(1)), tuple.Environment)
		return nil
	})
	if !waitFired(t, ch) {
		t.Fatal("arity-wide waiter missed a keyed commit")
	}
}

func TestConcurrentWaitUpdateSnapshotStress(t *testing.T) {
	// Cross-shard stress under -race: keyed updates on per-worker buckets,
	// full snapshots, multi-shard updates, and waiter churn, concurrently.
	s := New(WithShards(8))
	const workers = 8
	const iters = 150
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			lead := tuple.Int(int64(wkr))
			keys := []InterestKey{{Arity: 2, Lead: lead, LeadKnown: true}}
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // keyed insert+delete on this worker's bucket
					_ = s.UpdateKeys(tuple.ProcessID(wkr+1), keys, func(w Writer) error {
						id := w.Insert(tuple.New(lead, tuple.Int(int64(i))), tuple.ProcessID(wkr+1))
						return w.Delete(id)
					})
				case 1: // full snapshot sweeping all shards
					s.Snapshot(func(r Reader) {
						n := 0
						r.Each(func(Instance) bool { n++; return true })
						if n != r.Len() {
							t.Errorf("Each saw %d, Len %d", n, r.Len())
						}
					})
				case 2: // waiter churn: register, commit, await, cancel
					ch, cancel := s.Wait(keys)
					_ = s.UpdateKeys(tuple.ProcessID(wkr+1), keys, func(w Writer) error {
						id := w.Insert(tuple.New(lead, tuple.Int(-1)), tuple.ProcessID(wkr+1))
						return w.Delete(id)
					})
					<-ch
					cancel()
				default: // multi-shard update touching a neighbor's bucket too
					other := tuple.Int(int64((wkr + 1) % workers))
					mk := []InterestKey{
						{Arity: 2, Lead: lead, LeadKnown: true},
						{Arity: 2, Lead: other, LeadKnown: true},
					}
					_ = s.UpdateKeys(tuple.ProcessID(wkr+1), mk, func(w Writer) error {
						a := w.Insert(tuple.New(lead, tuple.Int(0)), tuple.ProcessID(wkr+1))
						b := w.Insert(tuple.New(other, tuple.Int(0)), tuple.ProcessID(wkr+1))
						if err := w.Delete(a); err != nil {
							return err
						}
						return w.Delete(b)
					})
				}
			}
		}(wkr)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Errorf("Len = %d after stress, want 0", s.Len())
	}
	st := s.Stats()
	if st.Asserts != st.Retracts {
		t.Errorf("asserts %d != retracts %d", st.Asserts, st.Retracts)
	}
	if s.Version() != st.Commits {
		t.Errorf("version %d != commits %d", s.Version(), st.Commits)
	}
}

func TestCheckpointAcrossShardCounts(t *testing.T) {
	// A checkpoint written by a many-shard store restores into stores of
	// any shard count: routing is by content, not by ID.
	src := New(WithShards(16))
	for i := int64(0); i < 40; i++ {
		src.Assert(tuple.ProcessID(i%3+1), tuple.New(tuple.Int(i%10), tuple.Int(i)))
	}
	var buf bytes.Buffer
	if err := src.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 16} {
		dst := New(WithShards(n))
		if err := dst.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore into %d shards: %v", n, err)
		}
		if got, want := dump(dst), dump(src); got != want {
			t.Errorf("%d-shard restore state differs:\n%s\nvs\n%s", n, got, want)
		}
		if dst.Version() != src.Version() {
			t.Errorf("version = %d, want %d", dst.Version(), src.Version())
		}
		// And the restored store keeps working (fresh IDs don't collide).
		dst.Assert(tuple.Environment, tuple.New(tuple.Int(0), tuple.Int(999)))
		if dst.Len() != src.Len()+1 {
			t.Errorf("Len = %d after post-restore assert", dst.Len())
		}
	}
}

func TestAritiesDedupedAcrossShards(t *testing.T) {
	s := New(WithShards(8))
	// Same arity spread over many shards must appear once.
	for i := int64(0); i < 16; i++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(i), tuple.Int(i)))
	}
	s.Assert(tuple.Environment, tuple.New(tuple.Int(1), tuple.Int(2), tuple.Int(3)))
	s.Assert(tuple.Environment, tuple.New())
	s.Snapshot(func(r Reader) {
		got := r.Arities()
		sort.Ints(got)
		want := []int{0, 2, 3}
		if len(got) != len(want) {
			t.Fatalf("Arities = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Arities = %v, want %v", got, want)
			}
		}
	})
}

func TestVersionCountsCommitsAcrossShards(t *testing.T) {
	s := New(WithShards(8))
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			lead := tuple.Int(int64(wkr))
			keys := []InterestKey{{Arity: 2, Lead: lead, LeadKnown: true}}
			for i := 0; i < perWorker; i++ {
				_ = s.UpdateKeys(tuple.ProcessID(wkr+1), keys, func(w Writer) error {
					w.Insert(tuple.New(lead, tuple.Int(int64(i))), tuple.ProcessID(wkr+1))
					return nil
				})
			}
		}(wkr)
	}
	wg.Wait()
	if s.Version() != workers*perWorker {
		t.Errorf("version = %d, want %d", s.Version(), workers*perWorker)
	}
	if s.Len() != workers*perWorker {
		t.Errorf("Len = %d", s.Len())
	}
}

func BenchmarkAllInto(b *testing.B) {
	s := New()
	for i := 0; i < 4096; i++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(int64(i%64)), tuple.Int(int64(i))))
	}
	var buf []Instance
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.AllInto(buf)
		if len(buf) != 4096 {
			b.Fatalf("len = %d", len(buf))
		}
	}
}

func BenchmarkArities(b *testing.B) {
	s := New(WithShards(8))
	for i := 0; i < 2048; i++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(int64(i%64)), tuple.Int(int64(i))))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Snapshot(func(r Reader) {
			if len(r.Arities()) != 1 {
				b.Fatal("arities")
			}
		})
	}
}

func BenchmarkKeyedUpdateSingleShard(b *testing.B) {
	s := New(WithShards(8))
	lead := tuple.Int(7)
	keys := []InterestKey{{Arity: 2, Lead: lead, LeadKnown: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.UpdateKeys(tuple.Environment, keys, func(w Writer) error {
			id := w.Insert(tuple.New(lead, tuple.Int(int64(i))), tuple.Environment)
			return w.Delete(id)
		})
	}
}
