package dataspace

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/sdl-lang/sdl/internal/tuple"
)

func year(n int64) tuple.Tuple { return tuple.New(tuple.Atom("year"), tuple.Int(n)) }

func collect(r Reader, arity int, lead tuple.Value, known bool) []tuple.Tuple {
	var out []tuple.Tuple
	r.Scan(arity, lead, known, func(_ tuple.ID, t tuple.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func TestAssertAndScanByLead(t *testing.T) {
	s := New()
	s.Assert(tuple.Environment, year(87), year(90), tuple.New(tuple.Atom("month"), tuple.Int(3)))

	s.Snapshot(func(r Reader) {
		got := collect(r, 2, tuple.Atom("year"), true)
		if len(got) != 2 {
			t.Errorf("year scan found %d", len(got))
		}
		got = collect(r, 2, tuple.Atom("month"), true)
		if len(got) != 1 {
			t.Errorf("month scan found %d", len(got))
		}
		got = collect(r, 2, tuple.Value{}, false)
		if len(got) != 3 {
			t.Errorf("arity scan found %d", len(got))
		}
		got = collect(r, 3, tuple.Value{}, false)
		if len(got) != 0 {
			t.Errorf("arity-3 scan found %d", len(got))
		}
	})
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestNumericLeadCanonicalization(t *testing.T) {
	s := New()
	s.Assert(tuple.Environment, tuple.New(tuple.Int(2), tuple.Atom("x")))
	s.Snapshot(func(r Reader) {
		// Scanning with Float(2.0) must find the Int(2)-led tuple.
		got := collect(r, 2, tuple.Float(2.0), true)
		if len(got) != 1 {
			t.Errorf("float lead scan found %d", len(got))
		}
	})
}

func TestMultisetInstances(t *testing.T) {
	s := New()
	ids := s.Assert(tuple.Environment, year(87), year(87))
	if ids[0] == ids[1] {
		t.Error("instances must have distinct IDs")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (multiset)", s.Len())
	}
	// Retracting one instance leaves the other.
	err := s.Update(tuple.Environment, func(w Writer) error {
		return w.Delete(ids[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after one retract", s.Len())
	}
}

func TestOwnershipRecorded(t *testing.T) {
	s := New()
	const owner tuple.ProcessID = 42
	ids := s.Assert(owner, year(87))
	s.Snapshot(func(r Reader) {
		inst, ok := r.Get(ids[0])
		if !ok {
			t.Fatal("instance missing")
		}
		if inst.Owner != owner {
			t.Errorf("owner = %d, want %d", inst.Owner, owner)
		}
	})
	if _, ok := instGet(s, tuple.ID(9999)); ok {
		t.Error("Get of unknown ID should fail")
	}
}

func instGet(s *Store, id tuple.ID) (Instance, bool) {
	var inst Instance
	var ok bool
	s.Snapshot(func(r Reader) { inst, ok = r.Get(id) })
	return inst, ok
}

func TestDeleteMissing(t *testing.T) {
	s := New()
	err := s.Update(tuple.Environment, func(w Writer) error {
		return w.Delete(tuple.ID(5))
	})
	if !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("err = %v, want ErrNoSuchTuple", err)
	}
}

func TestUpdateRollback(t *testing.T) {
	s := New()
	ids := s.Assert(tuple.Environment, year(87))
	v0 := s.Version()
	sentinel := errors.New("boom")
	err := s.Update(tuple.Environment, func(w Writer) error {
		w.Insert(year(99), tuple.Environment)
		if err := w.Delete(ids[0]); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if s.Version() != v0 {
		t.Error("failed update bumped version")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after rollback", s.Len())
	}
	if _, ok := instGet(s, ids[0]); !ok {
		t.Error("rollback did not restore deleted tuple")
	}
	s.Snapshot(func(r Reader) {
		if got := collect(r, 2, tuple.Atom("year"), true); len(got) != 1 {
			t.Errorf("index inconsistent after rollback: %d", len(got))
		}
	})
}

func TestVersionBumpsOnlyOnChange(t *testing.T) {
	s := New()
	v0 := s.Version()
	_ = s.Update(tuple.Environment, func(w Writer) error { return nil })
	if s.Version() != v0 {
		t.Error("no-op update bumped version")
	}
	s.Assert(tuple.Environment, year(1))
	if s.Version() != v0+1 {
		t.Errorf("version = %d, want %d", s.Version(), v0+1)
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	ids := s.Assert(tuple.Environment, year(1), year(2))
	_ = s.Update(tuple.Environment, func(w Writer) error { return w.Delete(ids[0]) })
	st := s.Stats()
	if st.Asserts != 2 || st.Retracts != 1 || st.Commits != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCommitHookObservesMutations(t *testing.T) {
	s := New()
	var recs []CommitRecord
	s.OnCommit(func(rec CommitRecord) { recs = append(recs, rec) })
	ids := s.Assert(tuple.Environment, year(1))
	_ = s.Update(7, func(w Writer) error {
		w.Insert(year(2), 7)
		return w.Delete(ids[0])
	})
	if len(recs) != 2 {
		t.Fatalf("hooks fired %d times", len(recs))
	}
	last := recs[1]
	if last.Owner != 7 || len(last.Inserted) != 1 || len(last.Deleted) != 1 {
		t.Errorf("record = %+v", last)
	}
	if last.Version != s.Version() {
		t.Errorf("record version = %d, store version = %d", last.Version, s.Version())
	}
}

func TestAllSnapshot(t *testing.T) {
	s := New()
	s.Assert(3, year(1), year(2))
	all := s.All()
	if len(all) != 2 {
		t.Fatalf("All = %d", len(all))
	}
	for _, inst := range all {
		if inst.Owner != 3 {
			t.Errorf("owner = %d", inst.Owner)
		}
	}
}

func TestEmptyTupleIndexedByArity(t *testing.T) {
	s := New()
	s.Assert(tuple.Environment, tuple.New())
	s.Snapshot(func(r Reader) {
		if got := collect(r, 0, tuple.Value{}, false); len(got) != 1 {
			t.Errorf("arity-0 scan = %d", len(got))
		}
	})
}

func TestScanEarlyStop(t *testing.T) {
	s := New()
	s.Assert(tuple.Environment, year(1), year(2), year(3))
	count := 0
	s.Snapshot(func(r Reader) {
		r.Scan(2, tuple.Atom("year"), true, func(tuple.ID, tuple.Tuple) bool {
			count++
			return false
		})
	})
	if count != 1 {
		t.Errorf("early stop scanned %d", count)
	}
}

func TestConcurrentUpdatesAreAtomic(t *testing.T) {
	s := New()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_ = s.Update(tuple.ProcessID(w+1), func(wr Writer) error {
					id := wr.Insert(tuple.New(tuple.Atom("tmp"), tuple.Int(int64(i))), tuple.ProcessID(w+1))
					return wr.Delete(id)
				})
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
	st := s.Stats()
	if st.Asserts != workers*perWorker || st.Retracts != workers*perWorker {
		t.Errorf("stats = %+v", st)
	}
	if s.Version() != workers*perWorker {
		t.Errorf("version = %d", s.Version())
	}
}

// Property: after a random interleaving of asserts and retracts, Len equals
// asserts minus retracts, and every surviving ID is Get-able.
func TestQuickMultisetInvariant(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(testSeed(11))), MaxCount: 30}
	f := func(ops []uint8) bool {
		s := New()
		var live []tuple.ID
		asserts, retracts := 0, 0
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				ids := s.Assert(tuple.Environment, tuple.New(tuple.Int(int64(op%5)), tuple.Int(int64(op))))
				live = append(live, ids[0])
				asserts++
			} else {
				id := live[int(op)%len(live)]
				live = append(live[:int(op)%len(live)], live[int(op)%len(live)+1:]...)
				if err := s.Update(tuple.Environment, func(w Writer) error { return w.Delete(id) }); err != nil {
					return false
				}
				retracts++
			}
		}
		if s.Len() != asserts-retracts {
			return false
		}
		for _, id := range live {
			if _, ok := instGet(s, id); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: index scans agree with a full filter over All().
func TestQuickIndexConsistency(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(testSeed(13))), MaxCount: 25}
	f := func(raw []uint8) bool {
		s := New()
		for _, r := range raw {
			if r%2 == 0 {
				s.Assert(tuple.Environment, tuple.New(tuple.Int(int64(r%4)), tuple.Int(int64(r))))
			} else {
				s.Assert(tuple.Environment, tuple.New(tuple.Int(int64(r%4))))
			}
		}
		for lead := int64(0); lead < 4; lead++ {
			for arity := 1; arity <= 2; arity++ {
				var scanned int
				s.Snapshot(func(rd Reader) {
					scanned = len(collect(rd, arity, tuple.Int(lead), true))
				})
				want := 0
				for _, inst := range s.All() {
					if inst.Tuple.Arity() == arity && inst.Tuple.Field(0).Equal(tuple.Int(lead)) {
						want++
					}
				}
				if scanned != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkScanIndexed(b *testing.B) {
	s := New()
	for i := 0; i < 10000; i++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Atom(fmt.Sprintf("k%d", i%100)), tuple.Int(int64(i))))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Snapshot(func(r Reader) {
			r.Scan(2, tuple.Atom("k42"), true, func(tuple.ID, tuple.Tuple) bool {
				n++
				return true
			})
		})
		if n != 100 {
			b.Fatalf("n = %d", n)
		}
	}
}

func TestLeadIndexNonNumericKinds(t *testing.T) {
	// String, bool, and atom leads index into distinct buckets; empty
	// (invalid) values never match a real lead.
	s := New()
	s.Assert(tuple.Environment,
		tuple.New(tuple.String("s"), tuple.Int(1)),
		tuple.New(tuple.Bool(true), tuple.Int(2)),
		tuple.New(tuple.Bool(false), tuple.Int(3)),
		tuple.New(tuple.Atom("s"), tuple.Int(4)), // same payload, different kind
	)
	s.Snapshot(func(r Reader) {
		if got := collect(r, 2, tuple.String("s"), true); len(got) != 1 {
			t.Errorf("string lead = %d", len(got))
		}
		if got := collect(r, 2, tuple.Atom("s"), true); len(got) != 1 {
			t.Errorf("atom lead = %d", len(got))
		}
		if got := collect(r, 2, tuple.Bool(true), true); len(got) != 1 {
			t.Errorf("bool lead = %d", len(got))
		}
		if got := collect(r, 2, tuple.Value{}, true); len(got) != 0 {
			t.Errorf("invalid lead = %d", len(got))
		}
	})
}

func TestInterestOfHelper(t *testing.T) {
	k := InterestOf(3, tuple.Atom("x"), true)
	if k.Arity != 3 || !k.LeadKnown || k.Lead != tuple.Atom("x") {
		t.Errorf("key = %+v", k)
	}
}
