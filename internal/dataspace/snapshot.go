package dataspace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/sdl-lang/sdl/internal/tuple"
)

// Checkpoint format: a small header followed by one record per tuple
// instance. The format is deterministic (records sorted by instance ID) so
// identical configurations produce identical bytes, regardless of the
// shard count on either side — tuples are (re)routed to shards by content,
// so a checkpoint written by a 16-shard store restores into a 1-shard
// store and vice versa.
//
//	header := magic "SDLD" version(uvarint) storeVersion(uvarint) count(uvarint)
//	record := id(uvarint) owner(uvarint) tuple
var (
	checkpointMagic = [4]byte{'S', 'D', 'L', 'D'}

	// ErrBadCheckpoint reports a malformed or unsupported checkpoint.
	ErrBadCheckpoint = errors.New("dataspace: bad checkpoint")
)

const checkpointVersion = 1

// WriteCheckpoint serializes the current configuration. The checkpoint
// captures tuple contents, instance IDs, owners, and the store version —
// enough to resume a stopped computation or to diff two configurations.
func (s *Store) WriteCheckpoint(w io.Writer) error {
	start := time.Now()
	defer func() { s.metrics.ObserveCheckpointWrite(time.Since(start)) }()
	var (
		insts   []Instance
		version uint64
	)
	s.Snapshot(func(r Reader) {
		insts = make([]Instance, 0, r.Len())
		r.Each(func(inst Instance) bool {
			insts = append(insts, inst)
			return true
		})
		version = r.Version()
	})
	sort.Slice(insts, func(i, j int) bool { return insts[i].ID < insts[j].ID })

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	buf = binary.AppendUvarint(buf, checkpointVersion)
	buf = binary.AppendUvarint(buf, version)
	buf = binary.AppendUvarint(buf, uint64(len(insts)))
	for _, inst := range insts {
		buf = binary.AppendUvarint(buf, uint64(inst.ID))
		buf = binary.AppendUvarint(buf, uint64(inst.Owner))
		buf = tuple.AppendTuple(buf, inst.Tuple)
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCheckpoint restores a configuration written by WriteCheckpoint into
// an empty store. It fails if the store already contains tuples (restoring
// into live state would corrupt instance identity).
func (s *Store) ReadCheckpoint(r io.Reader) error {
	start := time.Now()
	defer func() { s.metrics.ObserveCheckpointRead(time.Since(start)) }()
	s.lockSet(&s.all)
	defer s.unlockSet(&s.all)
	for _, sh := range s.shards {
		if len(sh.entries) != 0 {
			return fmt.Errorf("%w: store not empty", ErrBadCheckpoint)
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if len(data) < 4 || [4]byte(data[:4]) != checkpointMagic {
		return fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	data = data[4:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrBadCheckpoint)
		}
		data = data[n:]
		return v, nil
	}
	fv, err := next()
	if err != nil {
		return err
	}
	if fv != checkpointVersion {
		return fmt.Errorf("%w: unsupported format version %d", ErrBadCheckpoint, fv)
	}
	storeVersion, err := next()
	if err != nil {
		return err
	}
	count, err := next()
	if err != nil {
		return err
	}
	seen := make(map[tuple.ID]struct{}, count)
	var maxID uint64
	for i := uint64(0); i < count; i++ {
		id, err := next()
		if err != nil {
			return err
		}
		owner, err := next()
		if err != nil {
			return err
		}
		t, n, terr := tuple.DecodeTuple(data)
		if terr != nil {
			return fmt.Errorf("%w: record %d: %v", ErrBadCheckpoint, i, terr)
		}
		data = data[n:]
		if _, dup := seen[tuple.ID(id)]; dup {
			return fmt.Errorf("%w: duplicate instance %d", ErrBadCheckpoint, id)
		}
		seen[tuple.ID(id)] = struct{}{}
		sh := s.shards[s.shardIndex(indexKeyOf(t))]
		sh.entries[tuple.ID(id)] = entry{t: t, owner: tuple.ProcessID(owner)}
		sh.indexAdd(tuple.ID(id), t)
		if id > maxID {
			maxID = id
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(data))
	}
	s.version.Store(storeVersion)
	// Invalidate any epoch snapshots built against the pre-restore state.
	for _, sh := range s.shards {
		sh.seq.Add(1)
	}
	// Future IDs must not collide with restored instances.
	for {
		cur := s.nextID.Load()
		if cur >= maxID || s.nextID.CompareAndSwap(cur, maxID) {
			break
		}
	}
	return nil
}
