package dataspace

import "fmt"

// ApplyRecovered replays one committed record's effects verbatim during
// crash recovery: deletes are applied first (each target must be present
// with the same tuple), then inserts are added under their original
// instance IDs. Versions must arrive strictly increasing; gaps are legal
// (a version missing from a durable suffix was never fsynced, and it
// provably commuted with every durable record above it — see
// refmodel.ReplayFrom). The store ends at the last replayed version, so
// new commits never reuse a durable record's serialization position.
//
// Recovery is pre-visibility: no commit hooks run, nothing is appended to
// a durability sink, and no waiters are notified. Call it only before the
// store is shared (a recovery loop is single-goroutine by construction)
// and before SetDurable attaches the log whose records are being replayed.
func (s *Store) ApplyRecovered(rec CommitRecord) error {
	if cur := s.version.Load(); rec.Version <= cur {
		return fmt.Errorf("dataspace: recovered record has version %d, store already at %d (log suffix not strictly increasing)",
			rec.Version, cur)
	}
	s.lockSet(&s.all)
	defer s.unlockSet(&s.all)
	var touchedIns, touchedDel []uint32
	for _, del := range rec.Deleted {
		si := s.shardIndex(indexKeyOf(del.Tuple))
		sh := s.shards[si]
		e, ok := sh.entries[del.ID]
		if !ok {
			return fmt.Errorf("dataspace: recovered delete of absent instance #%d %s (version %d)",
				del.ID, del.Tuple, rec.Version)
		}
		if !e.t.Equal(del.Tuple) {
			return fmt.Errorf("dataspace: recovered delete of #%d sees %s, store has %s (version %d)",
				del.ID, del.Tuple, e.t, rec.Version)
		}
		delete(sh.entries, del.ID)
		sh.indexRemove(del.ID, del.Tuple)
		touchedDel = append(touchedDel, si)
	}
	for _, ins := range rec.Inserted {
		si := s.shardIndex(indexKeyOf(ins.Tuple))
		sh := s.shards[si]
		if _, dup := sh.entries[ins.ID]; dup {
			return fmt.Errorf("dataspace: recovered insert of duplicate instance #%d %s (version %d)",
				ins.ID, ins.Tuple, rec.Version)
		}
		sh.entries[ins.ID] = entry{t: ins.Tuple, owner: ins.Owner}
		sh.indexAdd(ins.ID, ins.Tuple)
		touchedIns = append(touchedIns, si)
		// Future IDs must not collide with recovered instances.
		for {
			cur := s.nextID.Load()
			if cur >= uint64(ins.ID) || s.nextID.CompareAndSwap(cur, uint64(ins.ID)) {
				break
			}
		}
	}
	s.bumpSeqs(touchedIns, touchedDel)
	s.version.Store(rec.Version)
	return nil
}
