package dataspace

import (
	"sync"

	"github.com/sdl-lang/sdl/internal/sched"
)

// Delta is one tuple-level change from a committed mutation, as delivered
// to reactive subscriptions: an instance asserted into or retracted from
// the dataspace. Deltas are routed through the same hash(arity, lead)
// index buckets as the tuples themselves, so a commit only inspects the
// subscriptions of the shards it wrote.
type Delta struct {
	Asserted bool // true: asserted; false: retracted
	Inst     Instance
}

// Subscription is a registered delta sink: the reactive replacement for
// the one-shot Wait channel. A blocked delayed transaction subscribes
// once, and every relevant commit publishes its deltas into the
// subscription's buffer and fires the ready channel; the waiter drains
// the buffer, re-evaluates, and blocks again on the SAME subscription —
// deltas arriving while it evaluates are buffered, not lost.
//
// The publisher filters: a subscription created with a non-nil filter
// receives only the deltas the filter accepts, and when every delta of a
// commit is rejected the wakeup is suppressed entirely (the legacy path
// would have woken the waiter for a full re-query). A nil filter marks
// the guard as not delta-safe: any covering commit marks the buffer full
// (re-query required) but still batches — one wakeup per drain, however
// many commits landed.
//
// The registration maps mirror Wait's: a lead-known interest key
// registers only in the shard owning its bucket; lead-unknown keys of
// arity > 0 register in every shard; arity-0 keys in the fixed zero-lead
// shard. Like the waiter registry, the subscription mutex is a leaf —
// publish and Drain never touch shard locks.
type Subscription struct {
	s      *Store
	filter func(Delta) bool

	mu     sync.Mutex
	ch     chan struct{}
	fired  bool
	deltas []Delta
	full   bool // a non-delta-safe or broad/spurious wakeup landed: re-query

	regKeys    []subKeyReg
	regArities []subArityReg
	cancelOnce sync.Once
}

type subKeyReg struct {
	si uint32
	ik indexKey
}

type subArityReg struct {
	si uint32
	a  int
}

// Subscribe registers a reactive subscription for the given interest keys.
// filter decides, per delta, whether the change can affect the blocked
// guard; nil means "any covering change requires a full re-query". Like
// Wait, callers must Subscribe BEFORE evaluating the query that may block,
// and must Cancel the subscription when done (idempotent).
func (s *Store) Subscribe(keys []InterestKey, filter func(Delta) bool) *Subscription {
	s.sc.Yield(sched.PointWaiterRegister)
	sub := &Subscription{s: s, filter: filter, ch: make(chan struct{})}
	s.metrics.SubscriptionsLive().Inc()
	for _, k := range keys {
		switch {
		case k.Arity == 0:
			si := s.shardIndex(indexKey{})
			s.shards[si].waiters.addSubArity(0, sub)
			sub.regArities = append(sub.regArities, subArityReg{si: si, a: 0})
		case k.LeadKnown:
			ik := indexKey{arity: k.Arity, lead: canonLead(k.Lead)}
			si := s.shardIndex(ik)
			s.shards[si].waiters.addSubKey(ik, sub)
			sub.regKeys = append(sub.regKeys, subKeyReg{si: si, ik: ik})
		default:
			for si := range s.shards {
				s.shards[si].waiters.addSubArity(k.Arity, sub)
				sub.regArities = append(sub.regArities, subArityReg{si: uint32(si), a: k.Arity})
			}
		}
	}
	return sub
}

// Ready returns the channel the next publish fires. The channel identity
// changes across Drain calls; re-read it before every wait.
func (sub *Subscription) Ready() <-chan struct{} {
	sub.mu.Lock()
	ch := sub.ch
	sub.mu.Unlock()
	return ch
}

// Drain swaps out the buffered deltas and the full-re-query flag, and
// re-arms the ready channel. Publishes racing with Drain land either in
// the returned batch or in the re-armed buffer with the fresh channel
// fired — never between, so no wakeup is lost.
func (sub *Subscription) Drain() (deltas []Delta, full bool) {
	sub.mu.Lock()
	deltas, full = sub.deltas, sub.full
	sub.deltas, sub.full = nil, false
	if sub.fired {
		sub.ch = make(chan struct{})
		sub.fired = false
	}
	sub.mu.Unlock()
	return deltas, full
}

// publish appends a commit's deltas (or the full flag) and fires the
// ready channel if it has not fired since the last Drain.
func (sub *Subscription) publish(deltas []Delta, full bool) {
	sub.mu.Lock()
	if full {
		sub.full = true
		sub.deltas = nil
	} else if !sub.full {
		sub.deltas = append(sub.deltas, deltas...)
	}
	if !sub.fired {
		sub.fired = true
		close(sub.ch)
	}
	sub.mu.Unlock()
}

// Cancel releases the registration (idempotent, safe concurrently with
// publishes).
func (sub *Subscription) Cancel() {
	sub.cancelOnce.Do(func() {
		for _, reg := range sub.regKeys {
			sub.s.shards[reg.si].waiters.removeSubKey(reg.ik, sub)
		}
		for _, reg := range sub.regArities {
			sub.s.shards[reg.si].waiters.removeSubArity(reg.a, sub)
		}
		sub.s.metrics.SubscriptionsLive().Dec()
	})
}

// subDelivery accumulates one commit's deltas for one subscription while
// the candidates are being collected.
type subDelivery struct {
	deltas []Delta
	full   bool
}

// deliverDeltas routes a commit's tuple-level changes to the reactive
// subscriptions whose interest covers them, returning how many it woke
// (published to; suppressed candidates are not counted — they are the
// wakeup fan-out the filter saved). It runs after the commit's locks are
// released (alongside waiter wakeup, after the durability wait), so
// filters may be arbitrary user-level matchers. broad forces a
// full-re-query delivery to every subscription in every shard (the
// broad-wakeup ablation and the spurious-wakeup fault; correctness never
// depends on suppression).
func (s *Store) deliverDeltas(rec CommitRecord, insShard, delShard []uint32, broad bool) int {
	cands := make(map[*Subscription]*subDelivery)
	var order []*Subscription // first-seen order: deterministic under replay
	get := func(sub *Subscription) *subDelivery {
		sd := cands[sub]
		if sd == nil {
			sd = &subDelivery{}
			cands[sub] = sd
			order = append(order, sub)
		}
		return sd
	}
	add := func(sub *Subscription, d Delta) {
		sd := get(sub)
		if sd.full {
			return
		}
		switch {
		case sub.filter == nil:
			sd.full = true
			sd.deltas = nil
		case sub.filter(d):
			sd.deltas = append(sd.deltas, d)
		}
	}
	if broad {
		var all []*Subscription
		for _, sh := range s.shards {
			all = sh.waiters.collectAllSubs(all)
		}
		for _, sub := range all {
			sd := get(sub)
			sd.full = true
			sd.deltas = nil
		}
	} else {
		var scratch []*Subscription
		for i, inst := range rec.Inserted {
			scratch = s.shards[insShard[i]].waiters.collectSubs(inst, scratch[:0])
			d := Delta{Asserted: true, Inst: inst}
			for _, sub := range scratch {
				add(sub, d)
			}
		}
		for i, inst := range rec.Deleted {
			scratch = s.shards[delShard[i]].waiters.collectSubs(inst, scratch[:0])
			d := Delta{Asserted: false, Inst: inst}
			for _, sub := range scratch {
				add(sub, d)
			}
		}
	}
	if len(order) == 0 {
		return 0
	}
	published := 0
	deliver := func(sub *Subscription) {
		sd := cands[sub]
		s.metrics.IncReactiveSignal()
		if sd.full || len(sd.deltas) > 0 {
			sub.publish(sd.deltas, sd.full)
			published++
		} else {
			s.metrics.IncReactiveSuppressed()
		}
	}
	if perm := s.sc.Perm(sched.PointReactiveDeliver, len(order)); perm != nil {
		for _, i := range perm {
			deliver(order[i])
		}
		return published
	}
	for _, sub := range order {
		deliver(sub)
	}
	return published
}
