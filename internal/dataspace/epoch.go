package dataspace

import (
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Epoch-based read path. Read-only planned transactions — no asserts, no
// retracts, concrete footprint — do not need locks at all: they evaluate
// against immutable per-shard snapshots and validate afterwards that no
// footprint shard changed while they ran. Validation compares each shard's
// change sequence (shard.seq, bumped under mu for every commit that touches
// the shard, before any of the commit's locks are released) against the
// sequence its snapshot was built at. If every sequence is unchanged, the
// snapshots form a consistent cut: a multi-shard commit bumps all of its
// shards' sequences before releasing any mu, so a commit visible in one
// snapshot but missing from another always leaves a sequence mismatch
// behind. On mismatch the caller falls back to the locked read path.
//
// Snapshots are cached per shard (shard.snap) and rebuilt lazily on the
// first epoch read after a change, so a read-hot bucket amortizes one
// rebuild over arbitrarily many lock-free reads.

// shardSnap is an immutable snapshot of one shard's contents, stamped with
// the change sequence it was built at. byField materializes the buckets of
// every shape that was hot in the shard's secondary index at build time;
// fieldShapes records which (arity, pos) shapes were materialized (bit pos
// of fieldShapes[arity]) so an absent bucket of a materialized shape
// proves emptiness instead of forcing an arity scan.
type shardSnap struct {
	seq         uint64
	insts       []Instance
	byLead      map[indexKey][]Instance
	byArity     map[int][]Instance
	byField     map[fieldKey][]Instance
	fieldShapes [maxFieldArity + 1]uint8
}

// buildSnap materializes a snapshot of sh. The caller holds sh.mu (read or
// write), so the maps and seq are mutually consistent.
func buildSnap(sh *shard, seq uint64) *shardSnap {
	snap := &shardSnap{
		seq:     seq,
		insts:   make([]Instance, 0, len(sh.entries)),
		byLead:  make(map[indexKey][]Instance, len(sh.byLead)),
		byArity: make(map[int][]Instance, len(sh.byArity)),
	}
	if sh.sec.hot.Load() != 0 {
		for a := 2; a <= maxFieldArity; a++ {
			for pos := 1; pos < a; pos++ {
				if sh.sec.shapes[a][pos].state.Load() == shapeHot {
					snap.fieldShapes[a] |= 1 << pos
				}
			}
		}
	}
	for id, e := range sh.entries {
		inst := Instance{ID: id, Tuple: e.t, Owner: e.owner}
		snap.insts = append(snap.insts, inst)
		a := e.t.Arity()
		snap.byArity[a] = append(snap.byArity[a], inst)
		if a > 0 {
			k := indexKey{arity: a, lead: canonLead(e.t.Field(0))}
			snap.byLead[k] = append(snap.byLead[k], inst)
		}
		if a >= 2 && a <= maxFieldArity && snap.fieldShapes[a] != 0 {
			for pos := 1; pos < a; pos++ {
				if snap.fieldShapes[a]&(1<<pos) == 0 {
					continue
				}
				if snap.byField == nil {
					snap.byField = make(map[fieldKey][]Instance)
				}
				fk := fieldKey{arity: a, pos: pos, val: canonLead(e.t.Field(pos))}
				snap.byField[fk] = append(snap.byField[fk], inst)
			}
		}
	}
	return snap
}

// getSnap returns a snapshot of shard si no older than the shard's state at
// some point after this call began. The fast path is a lock-free cache hit;
// a stale cache is rebuilt under the shard's read lock. A racing commit can
// invalidate the returned snapshot immediately — the caller's end-of-read
// sequence validation catches that.
func (s *Store) getSnap(si uint32) *shardSnap {
	sh := s.shards[si]
	if snap := sh.snap.Load(); snap != nil && snap.seq == sh.seq.Load() {
		return snap
	}
	sh.mu.RLock()
	seq := sh.seq.Load()
	if snap := sh.snap.Load(); snap != nil && snap.seq == seq {
		sh.mu.RUnlock()
		return snap
	}
	snap := buildSnap(sh, seq)
	sh.mu.RUnlock()
	sh.snap.Store(snap)
	s.metrics.IncEpochRebuild()
	return snap
}

// epochReader implements Reader over a set of shard snapshots. Like the
// locked SnapshotKeys reader it exposes ONLY tuples in the footprint
// shards.
type epochReader struct {
	s       *Store
	ss      *shardSet
	snaps   []*shardSnap // indexed by shard; nil outside the footprint
	version uint64
}

var _ Reader = epochReader{}

func (r epochReader) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	if leadKnown {
		k := indexKey{arity: arity, lead: canonLead(lead)}
		si := r.s.shardIndex(k)
		if !r.ss.has(si) {
			return
		}
		for _, inst := range r.snaps[si].byLead[k] {
			if !fn(inst.ID, inst.Tuple) {
				return
			}
		}
		return
	}
	r.ss.forEach(func(si uint32) bool {
		for _, inst := range r.snaps[si].byArity[arity] {
			if !fn(inst.ID, inst.Tuple) {
				return false
			}
		}
		return true
	})
}

func (r epochReader) Get(id tuple.ID) (Instance, bool) {
	var (
		found Instance
		ok    bool
	)
	r.ss.forEach(func(si uint32) bool {
		for _, inst := range r.snaps[si].insts {
			if inst.ID == id {
				found, ok = inst, true
				return false
			}
		}
		return true
	})
	return found, ok
}

func (r epochReader) Each(fn func(Instance) bool) {
	r.ss.forEach(func(si uint32) bool {
		for _, inst := range r.snaps[si].insts {
			if !fn(inst) {
				return false
			}
		}
		return true
	})
}

func (r epochReader) Arities() []int {
	var out []int
	r.ss.forEach(func(si uint32) bool {
		for a := range r.snaps[si].byArity {
			dup := false
			for _, have := range out {
				if have == a {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, a)
			}
		}
		return true
	})
	return out
}

func (r epochReader) Version() uint64 { return r.version }

func (r epochReader) Len() int {
	n := 0
	r.ss.forEach(func(si uint32) bool {
		n += len(r.snaps[si].insts)
		return true
	})
	return n
}

// SnapshotKeysEpoch runs fn against epoch snapshots of the shards covering
// keys, without taking any locks, and reports whether the read was
// consistent: true means no footprint shard changed while fn ran and its
// observations stand; false means the read may be torn and the caller must
// retry on the locked path (SnapshotKeys). Wildcard keys and stores built
// with WithCommuting(false) always return false.
func (s *Store) SnapshotKeysEpoch(keys []InterestKey, fn func(r Reader)) bool {
	if !s.commuting {
		return false
	}
	var ss shardSet
	for _, k := range keys {
		switch {
		case k.Arity == 0:
			ss.add(s.shardIndex(indexKey{}))
		case k.LeadKnown:
			ss.add(s.shardIndex(indexKey{arity: k.Arity, lead: canonLead(k.Lead)}))
		default:
			return false // unbounded footprint: locked path only
		}
	}
	s.metrics.IncEpochRead()
	snaps := make([]*shardSnap, len(s.shards))
	ss.forEach(func(si uint32) bool {
		snaps[si] = s.getSnap(si)
		return true
	})
	fn(epochReader{s: s, ss: &ss, snaps: snaps, version: s.version.Load()})
	valid := true
	ss.forEach(func(si uint32) bool {
		if s.shards[si].seq.Load() != snaps[si].seq {
			valid = false
			return false
		}
		return true
	})
	if !valid {
		s.metrics.IncEpochFallback()
	}
	return valid
}
