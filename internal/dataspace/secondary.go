package dataspace

import (
	"sync/atomic"

	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Adaptive secondary field indexes. The lead index (shard.byLead) only
// serves patterns whose leading field is known; every other constrained
// pattern — e.g. a constant in position 2 — degenerated to a full arity
// scan. This file adds, per shard, field-value indexes
//
//	(arity, field-pos, canonical value) → tuple-ID set
//
// built adaptively: each (arity, field-pos) scan shape carries an atomic
// fallback-scan counter, and a shape whose counter crosses the promotion
// threshold flips to hot. A hot shape's buckets are populated lazily — the
// first scan that needs them builds them under the shard lock already held
// for the read — then maintained incrementally by every assert/retract
// (writer, rollback, and the keyWriter's batched apply all funnel through
// indexAdd/indexRemove) and validated by the same change sequence the
// epoch snapshots use. Shapes whose write traffic dwarfs their scan usage
// are demoted back to cold, dropping their buckets.
//
// Concurrency discipline (checked by cmd/sdllint): bucket maps are
// mutated only while the shard's exclusive mu is held; readers touch them
// only under at least mu.RLock, where a published fieldIndex whose seq
// matches the shard's is immutable (writers need the exclusive mu to
// change either). Shape state, scan, and write counters are atomics so the
// read path stays lock-free-ish under mu.RLock; the cold→hot transition is
// a CAS that concurrent scanners race benignly.

const (
	// maxFieldArity bounds the shapes tracked per shard; tuples with more
	// fields fall back to arity scans (none of the paper's examples come
	// close).
	maxFieldArity = 8
	// promoteScanBar is the number of fallback arity scans a shape absorbs
	// before it is promoted.
	promoteScanBar = 2
	// demoteMinWrites is the write count (since promotion) below which a
	// hot shape is never demoted; past it, a shape whose writes outnumber
	// its indexed scans 8:1 drops its buckets.
	demoteMinWrites = 256
	// demoteCheckMask rate-limits the demotion check to every 256th write.
	demoteCheckMask = 0xFF
)

// Shape lifecycle states.
const (
	shapeCold uint32 = iota // counting fallback scans
	shapeHot                // promoted: buckets built lazily, maintained incrementally
)

// fieldKey addresses one bucket of a secondary field index (the epoch
// snapshot's materialized form; the live index nests per-shape maps).
type fieldKey struct {
	arity int
	pos   int
	val   leadKey
}

// fieldIndex is one hot shape's bucket map, stamped with the shard change
// sequence it is consistent with. A stale stamp (any commit the index was
// not maintained through) makes readers rebuild from the live maps.
type fieldIndex struct {
	seq     uint64
	buckets map[leadKey]map[tuple.ID]struct{}
}

// shapeStats is the adaptive state of one (arity, field-pos) scan shape.
type shapeStats struct {
	state  atomic.Uint32 // shapeCold | shapeHot
	scans  atomic.Uint64 // cold: fallback scans toward promotion; hot: indexed scans
	writes atomic.Uint64 // hot: writes at this arity since promotion
	idx    atomic.Pointer[fieldIndex]
}

// secondaryState is a shard's field-index layer. The shapes table is
// fixed-size so counting on the read path never allocates or locks.
type secondaryState struct {
	enabled bool
	met     *metrics.Registry
	hot     atomic.Int32 // promoted shapes in this shard (fast skip for writers)
	shapes  [maxFieldArity + 1][maxFieldArity]shapeStats
}

// secShape returns the stats slot for (arity, pos), or nil when the shape
// is outside the tracked range (pos 0 is the lead index's job).
func (sh *shard) secShape(arity, pos int) *shapeStats {
	if arity < 2 || arity > maxFieldArity || pos < 1 || pos >= arity {
		return nil
	}
	return &sh.sec.shapes[arity][pos]
}

// shapeIndex returns the shape's bucket map, rebuilding it when the shard
// has changed since it was built. The caller holds sh.mu (read or write),
// so the live maps and seq are stable; concurrent readers may race to
// rebuild and the last published wins — the epoch snapshot cache idiom
// (epoch.go).
//
// lint:holds rmu
func (sh *shard) shapeIndex(st *shapeStats, arity, pos int) *fieldIndex {
	seq := sh.seq.Load()
	if idx := st.idx.Load(); idx != nil && idx.seq == seq {
		return idx
	}
	idx := &fieldIndex{seq: seq, buckets: make(map[leadKey]map[tuple.ID]struct{})}
	for id := range sh.byArity[arity] {
		k := canonLead(sh.entries[id].t.Field(pos))
		b := idx.buckets[k]
		if b == nil {
			b = make(map[tuple.ID]struct{})
			idx.buckets[k] = b
		}
		b[id] = struct{}{}
	}
	st.idx.Store(idx)
	return idx
}

// fieldBucket picks the most selective promoted bucket among sels: the
// smallest (arity, pos, value) ID set over every hot selector shape.
// ok=true with a nil bucket means an index proved there are no matches.
// The caller holds sh.mu (read or write).
func (s *Store) fieldBucket(sh *shard, arity int, sels []pattern.FieldSel) (map[tuple.ID]struct{}, bool) {
	if !sh.sec.enabled || sh.sec.hot.Load() == 0 {
		return nil, false
	}
	var (
		best map[tuple.ID]struct{}
		ok   bool
	)
	for _, sel := range sels {
		st := sh.secShape(arity, sel.Pos)
		if st == nil || st.state.Load() != shapeHot {
			continue
		}
		st.scans.Add(1)
		b := sh.shapeIndex(st, arity, sel.Pos).buckets[canonLead(sel.Val)]
		if !ok || len(b) < len(best) {
			best, ok = b, true
		}
	}
	return best, ok
}

// countFieldShapes charges one fallback arity scan to every selector's
// shape, promoting shapes that cross the threshold (unless the scheduler
// defers the promotion — the exploration harness perturbs build timing
// through this decision point). Runs under sh.mu or lock-free from the
// epoch path; the transition is a CAS.
func (s *Store) countFieldShapes(sh *shard, arity int, sels []pattern.FieldSel) {
	if !sh.sec.enabled {
		return
	}
	for _, sel := range sels {
		st := sh.secShape(arity, sel.Pos)
		if st == nil || st.state.Load() != shapeCold {
			continue
		}
		if st.scans.Add(1) < promoteScanBar {
			continue
		}
		if s.sc.DeferPromote() {
			continue
		}
		if st.state.CompareAndSwap(shapeCold, shapeHot) {
			st.scans.Store(0)
			st.writes.Store(0)
			sh.sec.hot.Add(1)
			s.metrics.IncIndexPromotion()
		}
	}
}

// secAdd maintains hot shape buckets for one insert. Shapes whose index is
// stale (a commit slipped by unmaintained) are left for the next reader to
// rebuild; shapes that turned write-heavy are demoted here.
//
// lint:holds mu
func (sh *shard) secAdd(id tuple.ID, t tuple.Tuple) {
	if sh.sec.hot.Load() == 0 {
		return
	}
	a := t.Arity()
	if a < 2 || a > maxFieldArity {
		return
	}
	for pos := 1; pos < a; pos++ {
		st := &sh.sec.shapes[a][pos]
		if st.state.Load() != shapeHot || sh.secWrite(st) {
			continue
		}
		idx := st.idx.Load()
		if idx == nil || idx.seq != sh.seq.Load() {
			continue
		}
		k := canonLead(t.Field(pos))
		b := idx.buckets[k]
		if b == nil {
			b = make(map[tuple.ID]struct{})
			idx.buckets[k] = b
		}
		b[id] = struct{}{}
	}
}

// secRemove is secAdd's inverse for one delete.
//
// lint:holds mu
func (sh *shard) secRemove(id tuple.ID, t tuple.Tuple) {
	if sh.sec.hot.Load() == 0 {
		return
	}
	a := t.Arity()
	if a < 2 || a > maxFieldArity {
		return
	}
	for pos := 1; pos < a; pos++ {
		st := &sh.sec.shapes[a][pos]
		if st.state.Load() != shapeHot || sh.secWrite(st) {
			continue
		}
		idx := st.idx.Load()
		if idx == nil || idx.seq != sh.seq.Load() {
			continue
		}
		k := canonLead(t.Field(pos))
		if b := idx.buckets[k]; b != nil {
			delete(b, id)
			if len(b) == 0 {
				delete(idx.buckets, k)
			}
		}
	}
}

// secWrite charges one write to a hot shape and demotes it when its write
// rate since promotion dwarfs its indexed-scan usage; reports whether the
// shape was demoted.
//
// lint:holds mu
func (sh *shard) secWrite(st *shapeStats) bool {
	w := st.writes.Add(1)
	if w&demoteCheckMask != 0 || w < demoteMinWrites {
		return false
	}
	if w <= 8*(st.scans.Load()+1) {
		return false
	}
	st.state.Store(shapeCold)
	st.idx.Store(nil)
	st.scans.Store(0)
	st.writes.Store(0)
	sh.sec.hot.Add(-1)
	sh.sec.met.IncIndexDemotion()
	return true
}

// bumpSeq advances the shard's change sequence for one commit and
// re-stamps every hot shape index that was maintained through it, so
// incremental maintenance survives the sequence check instead of forcing a
// rebuild. An index whose stamp already lagged stays stale.
//
// lint:holds mu
func (sh *shard) bumpSeq() {
	seq := sh.seq.Add(1)
	if sh.sec.hot.Load() == 0 {
		return
	}
	for a := 2; a <= maxFieldArity; a++ {
		for pos := 1; pos < a; pos++ {
			st := &sh.sec.shapes[a][pos]
			if st.state.Load() != shapeHot {
				continue
			}
			if idx := st.idx.Load(); idx != nil && idx.seq == seq-1 {
				idx.seq = seq
			}
		}
	}
}

// ScanFields implements pattern.FieldSource over the live index: per
// footprint shard it serves the most selective promoted bucket among sels,
// falling back to the arity scan (charging every selector's shape toward
// promotion) when none is hot. Delivery is a superset of the tuples
// matching sels — the matcher re-verifies — and never includes tuples
// outside the reader's locked shards.
func (r reader) ScanFields(arity int, sels []pattern.FieldSel, fn func(tuple.ID, tuple.Tuple) bool) {
	var indexed, fallback, visited uint64
	r.ss.forEach(func(si uint32) bool {
		sh := r.s.shards[si]
		if len(sh.byArity[arity]) == 0 {
			return true
		}
		bucket, ok := r.s.fieldBucket(sh, arity, sels)
		if ok {
			indexed++
			for id := range bucket {
				visited++
				if !fn(id, sh.entries[id].t) {
					return false
				}
			}
			return true
		}
		fallback++
		r.s.countFieldShapes(sh, arity, sels)
		for id := range sh.byArity[arity] {
			visited++
			if !fn(id, sh.entries[id].t) {
				return false
			}
		}
		return true
	})
	r.s.metrics.AddFieldScans(indexed, fallback, visited)
}

// --- join-cost estimation (pattern.Estimator) ---

// estimator exposes the live index's cardinalities to the join planner.
// It is reachable only through JoinEstimator, which gates it on the
// secondary layer being enabled — the ablated store plans with the legacy
// boundness heuristic. Methods run under the same locks as Scan.
type estimator struct{ r reader }

// JoinEstimator implements pattern.EstimatorProvider.
func (r reader) JoinEstimator() pattern.Estimator {
	if !r.s.secondary {
		return nil
	}
	return estimator{r}
}

func (e estimator) ArityEstimate(arity int) float64 {
	n := 0
	e.r.ss.forEach(func(si uint32) bool {
		n += len(e.r.s.shards[si].byArity[arity])
		return true
	})
	return float64(n)
}

func (e estimator) LeadEstimate(arity int) float64 {
	n, buckets := 0, 0
	e.r.ss.forEach(func(si uint32) bool {
		sh := e.r.s.shards[si]
		n += len(sh.byArity[arity])
		buckets += sh.leadBuckets[arity]
		return true
	})
	if buckets == 0 {
		return 0
	}
	return float64(n) / float64(buckets)
}

func (e estimator) LeadValueEstimate(arity int, lead tuple.Value) float64 {
	k := indexKey{arity: arity, lead: canonLead(lead)}
	si := e.r.s.shardIndex(k)
	if !e.r.ss.has(si) {
		return 0
	}
	return float64(len(e.r.s.shards[si].byLead[k]))
}

func (e estimator) FieldEstimate(arity, pos int) float64 {
	total := 0.0
	e.r.ss.forEach(func(si uint32) bool {
		sh := e.r.s.shards[si]
		n := len(sh.byArity[arity])
		if n == 0 {
			return true
		}
		st := sh.secShape(arity, pos)
		if st != nil && st.state.Load() == shapeHot {
			if idx := st.idx.Load(); idx != nil && len(idx.buckets) > 0 {
				total += float64(n) / float64(len(idx.buckets))
				return true
			}
		}
		total += float64(n) // unpromoted (or unbuilt): honest full-scan cost
		return true
	})
	return total
}

func (e estimator) FieldValueEstimate(arity, pos int, val tuple.Value) float64 {
	total := 0.0
	e.r.ss.forEach(func(si uint32) bool {
		sh := e.r.s.shards[si]
		n := len(sh.byArity[arity])
		if n == 0 {
			return true
		}
		st := sh.secShape(arity, pos)
		if st != nil && st.state.Load() == shapeHot {
			total += float64(len(sh.shapeIndex(st, arity, pos).buckets[canonLead(val)]))
			return true
		}
		total += float64(n)
		return true
	})
	return total
}

// --- keyWriter overlay ---

// ScanFields mirrors the keyWriter's Scan overlay for the field access
// path: live results minus this transaction's buffered deletes, plus its
// buffered inserts of the arity (a superset of the sels match — the
// matcher re-verifies, and sels must not be re-read after delivery
// starts).
func (kw *keyWriter) ScanFields(arity int, sels []pattern.FieldSel, fn func(tuple.ID, tuple.Tuple) bool) {
	stopped := false
	kw.live().ScanFields(arity, sels, func(id tuple.ID, t tuple.Tuple) bool {
		if kw.isDeleted(id) {
			return true
		}
		if !fn(id, t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, ins := range kw.inserted {
		if ins.Tuple.Arity() != arity {
			continue
		}
		if !fn(ins.ID, ins.Tuple) {
			return
		}
	}
}

// JoinEstimator implements pattern.EstimatorProvider; buffered mutations
// are few, so the live estimates stand in for the overlay.
func (kw *keyWriter) JoinEstimator() pattern.Estimator {
	return kw.live().JoinEstimator()
}

// --- epoch read path ---

// ScanFields implements pattern.FieldSource over epoch snapshots. A shape
// materialized in the snapshot (it was hot at build time) serves its
// bucket — including proving emptiness — and scans against unmaterialized
// shapes count toward promotion exactly like locked reads, so a read-only
// workload on the epoch path still promotes.
func (r epochReader) ScanFields(arity int, sels []pattern.FieldSel, fn func(tuple.ID, tuple.Tuple) bool) {
	var indexed, fallback, visited uint64
	r.ss.forEach(func(si uint32) bool {
		snap := r.snaps[si]
		if len(snap.byArity[arity]) == 0 {
			return true
		}
		var (
			best []Instance
			ok   bool
		)
		if arity >= 2 && arity <= maxFieldArity {
			for _, sel := range sels {
				if sel.Pos < 1 || sel.Pos >= arity || snap.fieldShapes[arity]&(1<<sel.Pos) == 0 {
					continue
				}
				b := snap.byField[fieldKey{arity: arity, pos: sel.Pos, val: canonLead(sel.Val)}]
				if !ok || len(b) < len(best) {
					best, ok = b, true
				}
			}
		}
		if ok {
			indexed++
			for _, inst := range best {
				visited++
				if !fn(inst.ID, inst.Tuple) {
					return false
				}
			}
			return true
		}
		fallback++
		r.s.countFieldShapes(r.s.shards[si], arity, sels)
		for _, inst := range snap.byArity[arity] {
			visited++
			if !fn(inst.ID, inst.Tuple) {
				return false
			}
		}
		return true
	})
	r.s.metrics.AddFieldScans(indexed, fallback, visited)
}

// Interface conformance for every reader flavor (writer embeds reader).
var (
	_ pattern.FieldSource       = reader{}
	_ pattern.FieldSource       = (*keyWriter)(nil)
	_ pattern.FieldSource       = epochReader{}
	_ pattern.EstimatorProvider = reader{}
	_ pattern.EstimatorProvider = (*keyWriter)(nil)
)
