package dataspace

import (
	"sync"

	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// InterestKey describes the tuples a blocked (delayed) transaction could
// match: an arity plus, when known, the required leading-field value. A key
// with LeadKnown=false subscribes to every change among tuples of that
// arity.
//
// The transaction engine also uses interest keys to plan a transaction's
// shard footprint (SnapshotKeys/UpdateKeys): a key addresses exactly the
// index bucket its tuples — and therefore its shard — live in.
type InterestKey struct {
	Arity     int
	Lead      tuple.Value
	LeadKnown bool
}

// waiter is one registered wakeup target. Its channel is closed at most
// once, by the first relevant commit; fire is idempotent, so a multi-shard
// commit waking the same waiter through several registries is harmless.
type waiter struct {
	ch   chan struct{}
	once sync.Once
}

func (w *waiter) fire() { w.once.Do(func() { close(w.ch) }) }

// waiterRegistry indexes one shard's waiters — one-shot Wait channels and
// reactive subscriptions alike — by interest key. The zero value is ready
// to use. Its mutex is independent of the shard lock: Wait/Subscribe/cancel
// never block behind a running transaction.
type waiterRegistry struct {
	mu      sync.Mutex
	byKey   map[indexKey]map[*waiter]struct{}
	byArity map[int]map[*waiter]struct{}

	subsByKey   map[indexKey]map[*Subscription]struct{}
	subsByArity map[int]map[*Subscription]struct{}
}

func (r *waiterRegistry) addKey(ik indexKey, w *waiter) {
	r.mu.Lock()
	if r.byKey == nil {
		r.byKey = make(map[indexKey]map[*waiter]struct{})
	}
	set := r.byKey[ik]
	if set == nil {
		set = make(map[*waiter]struct{})
		r.byKey[ik] = set
	}
	set[w] = struct{}{}
	r.mu.Unlock()
}

func (r *waiterRegistry) addArity(a int, w *waiter) {
	r.mu.Lock()
	if r.byArity == nil {
		r.byArity = make(map[int]map[*waiter]struct{})
	}
	set := r.byArity[a]
	if set == nil {
		set = make(map[*waiter]struct{})
		r.byArity[a] = set
	}
	set[w] = struct{}{}
	r.mu.Unlock()
}

func (r *waiterRegistry) removeKey(ik indexKey, w *waiter) {
	r.mu.Lock()
	if set := r.byKey[ik]; set != nil {
		delete(set, w)
		if len(set) == 0 {
			delete(r.byKey, ik)
		}
	}
	r.mu.Unlock()
}

func (r *waiterRegistry) removeArity(a int, w *waiter) {
	r.mu.Lock()
	if set := r.byArity[a]; set != nil {
		delete(set, w)
		if len(set) == 0 {
			delete(r.byArity, a)
		}
	}
	r.mu.Unlock()
}

func (r *waiterRegistry) addSubKey(ik indexKey, sub *Subscription) {
	r.mu.Lock()
	if r.subsByKey == nil {
		r.subsByKey = make(map[indexKey]map[*Subscription]struct{})
	}
	set := r.subsByKey[ik]
	if set == nil {
		set = make(map[*Subscription]struct{})
		r.subsByKey[ik] = set
	}
	set[sub] = struct{}{}
	r.mu.Unlock()
}

func (r *waiterRegistry) addSubArity(a int, sub *Subscription) {
	r.mu.Lock()
	if r.subsByArity == nil {
		r.subsByArity = make(map[int]map[*Subscription]struct{})
	}
	set := r.subsByArity[a]
	if set == nil {
		set = make(map[*Subscription]struct{})
		r.subsByArity[a] = set
	}
	set[sub] = struct{}{}
	r.mu.Unlock()
}

func (r *waiterRegistry) removeSubKey(ik indexKey, sub *Subscription) {
	r.mu.Lock()
	if set := r.subsByKey[ik]; set != nil {
		delete(set, sub)
		if len(set) == 0 {
			delete(r.subsByKey, ik)
		}
	}
	r.mu.Unlock()
}

func (r *waiterRegistry) removeSubArity(a int, sub *Subscription) {
	r.mu.Lock()
	if set := r.subsByArity[a]; set != nil {
		delete(set, sub)
		if len(set) == 0 {
			delete(r.subsByArity, a)
		}
	}
	r.mu.Unlock()
}

// collectSubs appends the subscriptions whose interest covers inst.
func (r *waiterRegistry) collectSubs(inst Instance, into []*Subscription) []*Subscription {
	r.mu.Lock()
	a := inst.Tuple.Arity()
	for sub := range r.subsByArity[a] {
		into = append(into, sub)
	}
	if a > 0 {
		ik := indexKey{arity: a, lead: canonLead(inst.Tuple.Field(0))}
		for sub := range r.subsByKey[ik] {
			into = append(into, sub)
		}
	}
	r.mu.Unlock()
	return into
}

// collectAllSubs appends every registered subscription (broad wakeups and
// the spurious-wakeup fault).
func (r *waiterRegistry) collectAllSubs(into []*Subscription) []*Subscription {
	r.mu.Lock()
	for _, set := range r.subsByKey {
		for sub := range set {
			into = append(into, sub)
		}
	}
	for _, set := range r.subsByArity {
		for sub := range set {
			into = append(into, sub)
		}
	}
	r.mu.Unlock()
	return into
}

// collect appends the waiters whose interest covers inst.
func (r *waiterRegistry) collect(inst Instance, fired []*waiter) []*waiter {
	r.mu.Lock()
	a := inst.Tuple.Arity()
	for w := range r.byArity[a] {
		fired = append(fired, w)
	}
	if a > 0 {
		ik := indexKey{arity: a, lead: canonLead(inst.Tuple.Field(0))}
		for w := range r.byKey[ik] {
			fired = append(fired, w)
		}
	}
	r.mu.Unlock()
	return fired
}

// collectAll appends every registered waiter (broad-wakeup ablation).
func (r *waiterRegistry) collectAll(fired []*waiter) []*waiter {
	r.mu.Lock()
	for _, set := range r.byKey {
		for w := range set {
			fired = append(fired, w)
		}
	}
	for _, set := range r.byArity {
		for w := range set {
			fired = append(fired, w)
		}
	}
	r.mu.Unlock()
	return fired
}

// SetBroadWakeups disables interest-keyed wakeups: every commit wakes
// every waiter, as a naive implementation would. This exists solely for
// the E10 ablation benchmark; call it before the store is shared.
func (s *Store) SetBroadWakeups(broad bool) {
	s.broadWake.Store(broad)
}

// Wait registers interest in the given keys and returns a channel that is
// closed by the first commit touching any of them, plus a cancel function
// that must be called to release the registration (idempotent, safe after
// the wakeup fired).
//
// Registrations are sharded like the tuples themselves: a lead-known key
// registers only in the shard owning its bucket, so commits on other
// shards never even inspect it. A lead-unknown key of arity > 0 registers
// in every shard (its tuples may appear anywhere); arity-0 keys register
// in the fixed zero-lead shard.
//
// To avoid lost wakeups, callers must register BEFORE evaluating the query
// that may block: any commit after registration fires the channel, so a
// change racing with the evaluation is never missed.
func (s *Store) Wait(keys []InterestKey) (<-chan struct{}, func()) {
	s.sc.Yield(sched.PointWaiterRegister)
	w := &waiter{ch: make(chan struct{})}
	s.metrics.WaiterDepth().Inc()
	type keyReg struct {
		si uint32
		ik indexKey
	}
	type arityReg struct {
		si uint32
		a  int
	}
	var regKeys []keyReg
	var regArities []arityReg
	for _, k := range keys {
		switch {
		case k.Arity == 0:
			si := s.shardIndex(indexKey{})
			s.shards[si].waiters.addArity(0, w)
			regArities = append(regArities, arityReg{si: si, a: 0})
		case k.LeadKnown:
			ik := indexKey{arity: k.Arity, lead: canonLead(k.Lead)}
			si := s.shardIndex(ik)
			s.shards[si].waiters.addKey(ik, w)
			regKeys = append(regKeys, keyReg{si: si, ik: ik})
		default:
			for si := range s.shards {
				s.shards[si].waiters.addArity(k.Arity, w)
				regArities = append(regArities, arityReg{si: uint32(si), a: k.Arity})
			}
		}
	}

	var cancelOnce sync.Once
	cancel := func() {
		cancelOnce.Do(func() {
			for _, reg := range regKeys {
				s.shards[reg.si].waiters.removeKey(reg.ik, w)
			}
			for _, reg := range regArities {
				s.shards[reg.si].waiters.removeArity(reg.a, w)
			}
			s.metrics.WaiterDepth().Dec()
		})
	}
	return w.ch, cancel
}

// notify wakes every waiter whose interest intersects the commit (or every
// waiter, in the ablation's broad mode). Each written instance is matched
// against the registry of the shard it lives in — commits never touch the
// registries of shards outside their footprint. insShard and delShard are
// the per-instance shard indexes recorded by the commit's writer (shard
// path and key path alike).
func (s *Store) notify(rec CommitRecord, insShard, delShard []uint32) {
	broad := s.broadWake.Load()
	// Spurious-wakeup fault: also wake every registered waiter and
	// subscription, matched or not. Woken delayed transactions re-evaluate
	// and, finding their query still unsatisfied, block again — the
	// register-before-evaluate protocol makes this safe, and exploration
	// verifies it stays safe. Drawn once so the delta path and the legacy
	// path perturb together.
	spurious := s.sc != nil && s.sc.SpuriousWakeup()
	// Reactive subscriptions are served first, so a waiter blocked on both
	// paths (there are none today, but the invariant is cheap) would see
	// its deltas buffered before any legacy channel fires.
	delivered := s.deliverDeltas(rec, insShard, delShard, broad || spurious)
	var fired []*waiter
	if broad {
		for _, sh := range s.shards {
			fired = sh.waiters.collectAll(fired)
		}
	} else {
		for i, inst := range rec.Inserted {
			fired = s.shards[insShard[i]].waiters.collect(inst, fired)
		}
		for i, inst := range rec.Deleted {
			fired = s.shards[delShard[i]].waiters.collect(inst, fired)
		}
	}
	if spurious {
		for _, sh := range s.shards {
			fired = sh.waiters.collectAll(fired)
		}
	}
	if s.metrics.Observed() {
		// Fan-out counts everything this commit woke: legacy one-shot
		// waiters plus published (non-suppressed) subscriptions.
		s.metrics.ObserveWakeupFanout(len(fired) + delivered)
	}
	if perm := s.sc.Perm(sched.PointWakeupDispatch, len(fired)); perm != nil {
		// Dispatch-order perturbation: fire is idempotent and duplicate
		// waiters are possible in fired, so permuting indexes is safe.
		for _, i := range perm {
			fired[i].fire()
		}
		return
	}
	for _, wt := range fired {
		wt.fire()
	}
}

// InterestOf derives the interest keys for a set of (arity, lead) pattern
// descriptors. It is a convenience for the transaction engine, which knows
// each pattern's arity and — under the issuing environment — whether the
// leading field is determined.
func InterestOf(arity int, lead tuple.Value, leadKnown bool) InterestKey {
	return InterestKey{Arity: arity, Lead: lead, LeadKnown: leadKnown}
}
