package dataspace

import (
	"sync"

	"github.com/sdl-lang/sdl/internal/tuple"
)

// InterestKey describes the tuples a blocked (delayed) transaction could
// match: an arity plus, when known, the required leading-field value. A key
// with LeadKnown=false subscribes to every change among tuples of that
// arity.
type InterestKey struct {
	Arity     int
	Lead      tuple.Value
	LeadKnown bool
}

// waiter is one registered wakeup target. Its channel is closed at most
// once, by the first relevant commit.
type waiter struct {
	ch   chan struct{}
	once sync.Once
}

func (w *waiter) fire() { w.once.Do(func() { close(w.ch) }) }

// waiterRegistry indexes waiters by interest key. The zero value is ready
// to use.
type waiterRegistry struct {
	mu      sync.Mutex
	byKey   map[indexKey]map[*waiter]struct{}
	byArity map[int]map[*waiter]struct{}
	broad   bool
}

// SetBroadWakeups disables interest-keyed wakeups: every commit wakes
// every waiter, as a naive implementation would. This exists solely for
// the E10 ablation benchmark; call it before the store is shared.
func (s *Store) SetBroadWakeups(broad bool) {
	s.waiters.mu.Lock()
	s.waiters.broad = broad
	s.waiters.mu.Unlock()
}

// Wait registers interest in the given keys and returns a channel that is
// closed by the first commit touching any of them, plus a cancel function
// that must be called to release the registration (idempotent, safe after
// the wakeup fired).
//
// To avoid lost wakeups, callers must register BEFORE evaluating the query
// that may block: any commit after registration fires the channel, so a
// change racing with the evaluation is never missed.
func (s *Store) Wait(keys []InterestKey) (<-chan struct{}, func()) {
	w := &waiter{ch: make(chan struct{})}
	r := &s.waiters
	r.mu.Lock()
	if r.byKey == nil {
		r.byKey = make(map[indexKey]map[*waiter]struct{})
		r.byArity = make(map[int]map[*waiter]struct{})
	}
	var regKeys []indexKey
	var regArities []int
	for _, k := range keys {
		if k.LeadKnown {
			ik := indexKey{arity: k.Arity, lead: canonLead(k.Lead)}
			set := r.byKey[ik]
			if set == nil {
				set = make(map[*waiter]struct{})
				r.byKey[ik] = set
			}
			set[w] = struct{}{}
			regKeys = append(regKeys, ik)
		} else {
			set := r.byArity[k.Arity]
			if set == nil {
				set = make(map[*waiter]struct{})
				r.byArity[k.Arity] = set
			}
			set[w] = struct{}{}
			regArities = append(regArities, k.Arity)
		}
	}
	r.mu.Unlock()

	cancel := func() {
		r.mu.Lock()
		for _, ik := range regKeys {
			if set := r.byKey[ik]; set != nil {
				delete(set, w)
				if len(set) == 0 {
					delete(r.byKey, ik)
				}
			}
		}
		for _, a := range regArities {
			if set := r.byArity[a]; set != nil {
				delete(set, w)
				if len(set) == 0 {
					delete(r.byArity, a)
				}
			}
		}
		r.mu.Unlock()
	}
	return w.ch, cancel
}

// notify wakes every waiter whose interest intersects the commit record
// (or every waiter, in the ablation's broad mode).
func (r *waiterRegistry) notify(rec CommitRecord) {
	r.mu.Lock()
	var fired []*waiter
	if r.broad {
		for _, set := range r.byKey {
			for w := range set {
				fired = append(fired, w)
			}
		}
		for _, set := range r.byArity {
			for w := range set {
				fired = append(fired, w)
			}
		}
		r.mu.Unlock()
		for _, w := range fired {
			w.fire()
		}
		return
	}
	collect := func(inst Instance) {
		a := inst.Tuple.Arity()
		if set := r.byArity[a]; set != nil {
			for w := range set {
				fired = append(fired, w)
			}
		}
		if a > 0 {
			ik := indexKey{arity: a, lead: canonLead(inst.Tuple.Field(0))}
			if set := r.byKey[ik]; set != nil {
				for w := range set {
					fired = append(fired, w)
				}
			}
		}
	}
	for _, inst := range rec.Inserted {
		collect(inst)
	}
	for _, inst := range rec.Deleted {
		collect(inst)
	}
	r.mu.Unlock()
	for _, w := range fired {
		w.fire()
	}
}

// InterestOf derives the interest keys for a set of (arity, lead) pattern
// descriptors. It is a convenience for the transaction engine, which knows
// each pattern's arity and — under the issuing environment — whether the
// leading field is determined.
func InterestOf(arity int, lead tuple.Value, leadKnown bool) InterestKey {
	return InterestKey{Arity: arity, Lead: lead, LeadKnown: leadKnown}
}
