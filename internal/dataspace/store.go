// Package dataspace implements the SDL dataspace: a content-addressable
// multiset of tuples examined and altered by atomic transactions. The store
// provides:
//
//   - indexed scans (arity + leading-field value) implementing
//     pattern.Source;
//   - snapshot/update execution under a readers-writer lock, so a whole
//     transaction evaluates against one consistent configuration;
//   - a monotonically increasing version, bumped once per mutating commit;
//   - interest-keyed wakeups for delayed transactions: a blocked
//     transaction registers the (arity, lead) keys its binding query can
//     match and is woken only by commits that touch those keys.
//
// Tuple instances carry unique identifiers and record the asserting
// process, per the paper ("each tuple is owned by the process that asserted
// it and the owner may be determined by examining the unique tuple
// identifier").
package dataspace

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/sdl-lang/sdl/internal/tuple"
)

// ErrNoSuchTuple reports a retraction of a tuple instance that is not in
// the dataspace (already retracted by a concurrent transaction).
var ErrNoSuchTuple = errors.New("dataspace: no such tuple instance")

// entry is one stored tuple instance.
type entry struct {
	t     tuple.Tuple
	owner tuple.ProcessID
}

// leadClass canonicalizes a value for index keys so that values that are
// Equal (e.g. Int(2) and Float(2.0)) index identically.
type leadClass uint8

const (
	leadNumber leadClass = iota + 1
	leadAtom
	leadString
	leadBool
	leadOther
)

// leadKey is the comparable canonical form of a leading field value.
type leadKey struct {
	class leadClass
	num   float64
	str   string
}

func canonLead(v tuple.Value) leadKey {
	if n, ok := v.Numeric(); ok {
		return leadKey{class: leadNumber, num: n}
	}
	if a, ok := v.AsAtom(); ok {
		return leadKey{class: leadAtom, str: a}
	}
	if s, ok := v.AsString(); ok {
		return leadKey{class: leadString, str: s}
	}
	if b, ok := v.AsBool(); ok {
		k := leadKey{class: leadBool}
		if b {
			k.num = 1
		}
		return k
	}
	return leadKey{class: leadOther}
}

// indexKey addresses one bucket of the lead index.
type indexKey struct {
	arity int
	lead  leadKey
}

// Store is the shared dataspace. The zero value is not usable; construct
// with New.
type Store struct {
	nextID atomic.Uint64

	mu      sync.RWMutex
	entries map[tuple.ID]entry
	byArity map[int]map[tuple.ID]struct{}
	byLead  map[indexKey]map[tuple.ID]struct{}
	version uint64

	waiters  waiterRegistry
	stats    Stats
	onCommit []CommitHook
}

// Stats counts dataspace activity; retrieved via Store.Stats.
type Stats struct {
	Asserts  uint64 // tuple instances inserted
	Retracts uint64 // tuple instances deleted
	Commits  uint64 // mutating commits
}

// CommitHook observes committed mutations (used by the trace subsystem).
// Hooks run under the store's write lock and must not call back into the
// store.
type CommitHook func(rec CommitRecord)

// CommitRecord describes one committed mutation batch.
type CommitRecord struct {
	Version  uint64
	Owner    tuple.ProcessID
	Inserted []Instance
	Deleted  []Instance
}

// Instance pairs a tuple with its instance identifier and owner.
type Instance struct {
	ID    tuple.ID
	Tuple tuple.Tuple
	Owner tuple.ProcessID
}

// New returns an empty dataspace.
func New() *Store {
	return &Store{
		entries: make(map[tuple.ID]entry),
		byArity: make(map[int]map[tuple.ID]struct{}),
		byLead:  make(map[indexKey]map[tuple.ID]struct{}),
	}
}

// OnCommit registers a hook invoked for every mutating commit. Must be
// called before the store is shared between goroutines.
func (s *Store) OnCommit(h CommitHook) {
	s.onCommit = append(s.onCommit, h)
}

// Reader provides read access to one consistent dataspace configuration.
// It implements pattern.Source. Readers are only valid inside the callback
// that received them.
type Reader interface {
	// Scan implements pattern.Source over the live index.
	Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool)
	// Get returns the tuple instance with the given ID.
	Get(id tuple.ID) (Instance, bool)
	// Each calls fn for every tuple instance in the configuration, in
	// unspecified order, stopping early when fn returns false.
	Each(fn func(Instance) bool)
	// Arities returns the tuple arities currently present, in unspecified
	// order. Views use it to materialize imports bucket by bucket.
	Arities() []int
	// Version returns the configuration version.
	Version() uint64
	// Len returns the number of tuple instances.
	Len() int
}

// Writer extends Reader with mutation. Mutations take effect immediately
// (within the update callback) and are published as one commit when the
// callback returns nil.
type Writer interface {
	Reader
	// Insert adds a tuple instance owned by owner and returns its ID.
	Insert(t tuple.Tuple, owner tuple.ProcessID) tuple.ID
	// Delete removes the tuple instance with the given ID; it returns
	// ErrNoSuchTuple if absent.
	Delete(id tuple.ID) error
}

// reader/writer implement the interfaces over a locked store.
type reader struct{ s *Store }

type writer struct {
	reader
	owner    tuple.ProcessID
	inserted []Instance
	deleted  []Instance
}

var (
	_ Reader = reader{}
	_ Writer = (*writer)(nil)
)

// Snapshot runs fn with read access to a consistent configuration. Scans
// within fn are reentrant (the lock is held once, here).
func (s *Store) Snapshot(fn func(r Reader)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(reader{s: s})
}

// Update runs fn with exclusive access. If fn returns nil, its mutations
// are committed: the version is bumped (when anything changed), waiters
// whose interest keys intersect the written keys are woken, and commit
// hooks run. If fn returns an error, mutations made through the writer are
// rolled back and the error is returned.
func (s *Store) Update(owner tuple.ProcessID, fn func(w Writer) error) error {
	s.mu.Lock()
	w := &writer{reader: reader{s: s}, owner: owner}
	err := fn(w)
	if err != nil {
		w.rollback()
		s.mu.Unlock()
		return err
	}
	var rec CommitRecord
	changed := len(w.inserted) > 0 || len(w.deleted) > 0
	if changed {
		s.version++
		s.stats.Commits++
		s.stats.Asserts += uint64(len(w.inserted))
		s.stats.Retracts += uint64(len(w.deleted))
		rec = CommitRecord{
			Version:  s.version,
			Owner:    owner,
			Inserted: w.inserted,
			Deleted:  w.deleted,
		}
		for _, h := range s.onCommit {
			h(rec)
		}
	}
	s.mu.Unlock()
	if changed {
		s.waiters.notify(rec)
	}
	return nil
}

// Version returns the current configuration version.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Len returns the current number of tuple instances.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Stats returns a copy of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Assert inserts tuples outside any transaction (initial dataspace
// contents, tests). It returns the new instance IDs.
func (s *Store) Assert(owner tuple.ProcessID, ts ...tuple.Tuple) []tuple.ID {
	ids := make([]tuple.ID, len(ts))
	_ = s.Update(owner, func(w Writer) error {
		for i, t := range ts {
			ids[i] = w.Insert(t, owner)
		}
		return nil
	})
	return ids
}

// All returns every instance currently in the dataspace (test helper and
// trace support); order is unspecified.
func (s *Store) All() []Instance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Instance, 0, len(s.entries))
	for id, e := range s.entries {
		out = append(out, Instance{ID: id, Tuple: e.t, Owner: e.owner})
	}
	return out
}

// --- reader ---

func (r reader) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	s := r.s
	var ids map[tuple.ID]struct{}
	if leadKnown {
		ids = s.byLead[indexKey{arity: arity, lead: canonLead(lead)}]
	} else {
		ids = s.byArity[arity]
	}
	for id := range ids {
		e := s.entries[id]
		if !fn(id, e.t) {
			return
		}
	}
}

func (r reader) Get(id tuple.ID) (Instance, bool) {
	e, ok := r.s.entries[id]
	if !ok {
		return Instance{}, false
	}
	return Instance{ID: id, Tuple: e.t, Owner: e.owner}, true
}

func (r reader) Each(fn func(Instance) bool) {
	for id, e := range r.s.entries {
		if !fn(Instance{ID: id, Tuple: e.t, Owner: e.owner}) {
			return
		}
	}
}

func (r reader) Arities() []int {
	out := make([]int, 0, len(r.s.byArity))
	for a := range r.s.byArity {
		out = append(out, a)
	}
	return out
}

func (r reader) Version() uint64 { return r.s.version }

func (r reader) Len() int { return len(r.s.entries) }

// --- writer ---

func (w *writer) Insert(t tuple.Tuple, owner tuple.ProcessID) tuple.ID {
	s := w.s
	id := tuple.ID(s.nextID.Add(1))
	s.entries[id] = entry{t: t, owner: owner}
	s.indexAdd(id, t)
	w.inserted = append(w.inserted, Instance{ID: id, Tuple: t, Owner: owner})
	return id
}

func (w *writer) Delete(id tuple.ID) error {
	s := w.s
	e, ok := s.entries[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchTuple, id)
	}
	delete(s.entries, id)
	s.indexRemove(id, e.t)
	w.deleted = append(w.deleted, Instance{ID: id, Tuple: e.t, Owner: e.owner})
	return nil
}

// rollback undoes the writer's mutations (fn returned an error).
func (w *writer) rollback() {
	s := w.s
	for _, ins := range w.inserted {
		if _, ok := s.entries[ins.ID]; ok {
			delete(s.entries, ins.ID)
			s.indexRemove(ins.ID, ins.Tuple)
		}
	}
	for _, del := range w.deleted {
		s.entries[del.ID] = entry{t: del.Tuple, owner: del.Owner}
		s.indexAdd(del.ID, del.Tuple)
	}
}

func (s *Store) indexAdd(id tuple.ID, t tuple.Tuple) {
	a := t.Arity()
	byA := s.byArity[a]
	if byA == nil {
		byA = make(map[tuple.ID]struct{})
		s.byArity[a] = byA
	}
	byA[id] = struct{}{}
	if a > 0 {
		k := indexKey{arity: a, lead: canonLead(t.Field(0))}
		byL := s.byLead[k]
		if byL == nil {
			byL = make(map[tuple.ID]struct{})
			s.byLead[k] = byL
		}
		byL[id] = struct{}{}
	}
}

func (s *Store) indexRemove(id tuple.ID, t tuple.Tuple) {
	a := t.Arity()
	if byA := s.byArity[a]; byA != nil {
		delete(byA, id)
		if len(byA) == 0 {
			delete(s.byArity, a)
		}
	}
	if a > 0 {
		k := indexKey{arity: a, lead: canonLead(t.Field(0))}
		if byL := s.byLead[k]; byL != nil {
			delete(byL, id)
			if len(byL) == 0 {
				delete(s.byLead, k)
			}
		}
	}
}
