// Package dataspace implements the SDL dataspace: a content-addressable
// multiset of tuples examined and altered by atomic transactions. The store
// provides:
//
//   - indexed scans (arity + leading-field value) implementing
//     pattern.Source;
//   - snapshot/update execution under per-shard readers-writer locks, so a
//     whole transaction evaluates against one consistent configuration;
//   - a monotonically increasing version, bumped once per mutating commit;
//   - interest-keyed wakeups for delayed transactions: a blocked
//     transaction registers the (arity, lead) keys its binding query can
//     match and is woken only by commits that touch those keys.
//
// Tuple instances carry unique identifiers and record the asserting
// process, per the paper ("each tuple is owned by the process that asserted
// it and the owner may be determined by examining the unique tuple
// identifier").
//
// # Sharding
//
// The store is partitioned into a fixed power-of-two number of shards
// (default GOMAXPROCS-scaled, configurable with WithShards). A tuple lives
// in the shard addressed by hashing its index key — (arity, canonical
// leading value) — so one index bucket never straddles shards. Each shard
// owns its mutex, entry map, lead/arity indexes, waiter registry, and
// activity counters; the configuration version is a global atomic bumped
// while the commit's shard locks are held.
//
// Transactions whose footprint is statically bounded (every scanned or
// asserted bucket known up front) lock only the shards covering those
// buckets via SnapshotKeys/UpdateKeys; operations on disjoint shards
// commute (Malta & Martinez: tuple operations on disjoint tuples commute)
// and therefore run in parallel. Multi-shard operations acquire shard
// locks in ascending shard order — a global order that makes the locking
// deadlock-free — and hold them to commit (strict two-phase locking), so
// every execution is conflict-serializable. Snapshot/Update lock all
// shards and observe one consistent cross-shard configuration.
package dataspace

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// ErrNoSuchTuple reports a retraction of a tuple instance that is not in
// the dataspace (already retracted by a concurrent transaction).
var ErrNoSuchTuple = errors.New("dataspace: no such tuple instance")

// entry is one stored tuple instance.
type entry struct {
	t     tuple.Tuple
	owner tuple.ProcessID
}

// leadClass canonicalizes a value for index keys so that values that are
// Equal (e.g. Int(2) and Float(2.0)) index identically.
type leadClass uint8

const (
	leadNumber leadClass = iota + 1
	leadAtom
	leadString
	leadBool
	leadOther
)

// leadKey is the comparable canonical form of a leading field value.
type leadKey struct {
	class leadClass
	num   float64
	str   string
}

func canonLead(v tuple.Value) leadKey {
	if n, ok := v.Numeric(); ok {
		return leadKey{class: leadNumber, num: n}
	}
	if a, ok := v.AsAtom(); ok {
		return leadKey{class: leadAtom, str: a}
	}
	if s, ok := v.AsString(); ok {
		return leadKey{class: leadString, str: s}
	}
	if b, ok := v.AsBool(); ok {
		k := leadKey{class: leadBool}
		if b {
			k.num = 1
		}
		return k
	}
	return leadKey{class: leadOther}
}

// indexKey addresses one bucket of the lead index.
type indexKey struct {
	arity int
	lead  leadKey
}

// indexKeyOf returns the bucket a tuple is indexed (and sharded) under.
// Arity-0 tuples share the single zero-lead bucket.
func indexKeyOf(t tuple.Tuple) indexKey {
	a := t.Arity()
	if a == 0 {
		return indexKey{}
	}
	return indexKey{arity: a, lead: canonLead(t.Field(0))}
}

// maxShards bounds the shard count so lock sets fit a fixed-size bitset
// (no allocation on the per-transaction lock path).
const maxShards = 256

// shardSet is a fixed-capacity bitset of shard indexes.
type shardSet struct{ bits [maxShards / 64]uint64 }

func (ss *shardSet) add(i uint32)      { ss.bits[i>>6] |= 1 << (i & 63) }
func (ss *shardSet) has(i uint32) bool { return ss.bits[i>>6]&(1<<(i&63)) != 0 }

// count returns the number of shards in the set.
func (ss *shardSet) count() int {
	n := 0
	for _, word := range ss.bits {
		n += bits.OnesCount64(word)
	}
	return n
}

// forEach visits the set's shard indexes in ascending order (the global
// lock order), stopping early when fn returns false.
func (ss *shardSet) forEach(fn func(i uint32) bool) {
	for w, word := range ss.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !fn(uint32(w*64 + b)) {
				return
			}
			word &^= 1 << b
		}
	}
}

// shard is one partition of the dataspace. A shard's maps, counters, and
// waiter registry are guarded by its mu (the registry additionally has its
// own short-lived mutex so Wait/cancel need no shard lock).
//
// The commuting commit path (see locktable.go) layers two more lock
// classes around mu. intent separates the two commit disciplines: key-mode
// commits hold it shared for their whole span, shard-mode commits hold it
// exclusive, so the two never interleave on one shard while key-mode
// commits stack up freely. latches are the striped per-key lock table; a
// key-mode commit latches every bucket of its footprint before touching
// intent. The acquisition order is always latches (ascending global
// order), then intent (ascending shard order), then mu — a fixed class
// order that keeps the three-layer ladder deadlock-free.
//
// seq counts committed changes to this shard's contents and snap caches an
// immutable epoch snapshot of them (see epoch.go); both are maintained
// under mu and read lock-free by the epoch read path.
type shard struct {
	mu      sync.RWMutex
	entries map[tuple.ID]entry
	byArity map[int]map[tuple.ID]struct{}
	byLead  map[indexKey]map[tuple.ID]struct{}

	// leadBuckets counts the live byLead buckets per arity (maintained by
	// indexAdd/indexRemove) so the join planner's mean-bucket estimate is
	// O(1) instead of an index walk.
	leadBuckets map[int]int

	// sec is the adaptive secondary field-index layer (secondary.go).
	sec secondaryState

	asserts  uint64
	retracts uint64

	intent  sync.RWMutex
	latches [keyStripes]sync.Mutex
	queue   commitQueue

	seq  atomic.Uint64
	snap atomic.Pointer[shardSnap]

	waiters waiterRegistry
}

// Store is the shared dataspace. The zero value is not usable; construct
// with New.
type Store struct {
	nextID  atomic.Uint64
	version atomic.Uint64

	shards []*shard
	mask   uint32
	all    shardSet // every shard index, for the full-lock paths

	commuting bool // key-level locking + group commit enabled
	reactive  bool // delta-driven wakeups for delayed transactions enabled
	secondary bool // adaptive secondary field indexes + selectivity planning enabled

	metrics *metrics.Registry
	sc      *sched.Controller // nil unless schedule exploration is on

	broadWake atomic.Bool
	onCommit  []CommitHook
	durable   DurableSink // nil unless a WAL is attached
}

// Option configures a Store under construction.
type Option func(*storeConfig)

type storeConfig struct {
	shards      int
	sc          *sched.Controller
	noCommuting bool
	noReactive  bool
	noSecondary bool
}

// WithShards sets the shard count. Values are rounded up to a power of two
// and clamped to [1, 256]; zero or negative selects the default
// (GOMAXPROCS-scaled).
func WithShards(n int) Option {
	return func(c *storeConfig) { c.shards = n }
}

// WithScheduler installs a deterministic schedule-exploration controller.
// The store, and every component layered over it (transaction engine,
// consensus manager, process runtime — they discover the controller via
// Sched), then consults the controller at its decision points. A nil
// controller (the default) keeps every hook a no-op.
func WithScheduler(sc *sched.Controller) Option {
	return func(c *storeConfig) { c.sc = sc }
}

// WithCommuting enables or disables the commutativity-aware commit path
// (per-key latches plus group commit; on by default). Disabling it demotes
// every planned commit to shard-level locking — the E13 ablation baseline.
func WithCommuting(on bool) Option {
	return func(c *storeConfig) { c.noCommuting = !on }
}

// WithReactive enables or disables delta-driven wakeups for delayed
// transactions (on by default). Disabling it keeps blocked guards on the
// legacy signal-then-full-re-query loop — the E16 ablation baseline. The
// flag is advisory for the engine layered above: the store serves
// Subscribe either way.
func WithReactive(on bool) Option {
	return func(c *storeConfig) { c.noReactive = !on }
}

// WithSecondaryIndex enables or disables adaptive secondary field indexes
// and the selectivity-guided join planner they feed (on by default).
// Disabling it degrades every non-lead constrained scan to the full arity
// walk and the planner to the boundness heuristic — the E17 ablation
// baseline.
func WithSecondaryIndex(on bool) Option {
	return func(c *storeConfig) { c.noSecondary = !on }
}

func defaultShardCount() int {
	return runtime.GOMAXPROCS(0)
}

func normalizeShardCount(n int) int {
	if n <= 0 {
		n = defaultShardCount()
	}
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so shard selection is a mask.
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	return n
}

// Stats counts dataspace activity; retrieved via Store.Stats.
type Stats struct {
	Asserts  uint64 // tuple instances inserted
	Retracts uint64 // tuple instances deleted
	Commits  uint64 // mutating commits
}

// CommitHook observes committed mutations (used by the trace subsystem).
// Hooks run while the commit's shard write locks are held and must not
// call back into the store. Commits touching disjoint shard sets run — and
// therefore invoke hooks — concurrently, so hooks must be safe to call
// from multiple goroutines.
type CommitHook func(rec CommitRecord)

// CommitRecord describes one committed mutation batch (the merged record
// of every shard the commit touched).
type CommitRecord struct {
	Version  uint64
	Owner    tuple.ProcessID
	Inserted []Instance
	Deleted  []Instance
}

// Instance pairs a tuple with its instance identifier and owner.
type Instance struct {
	ID    tuple.ID
	Tuple tuple.Tuple
	Owner tuple.ProcessID
}

// New returns an empty dataspace.
func New(opts ...Option) *Store {
	var cfg storeConfig
	for _, o := range opts {
		o(&cfg)
	}
	n := normalizeShardCount(cfg.shards)
	s := &Store{
		shards:    make([]*shard, n),
		mask:      uint32(n - 1),
		commuting: !cfg.noCommuting,
		reactive:  !cfg.noReactive,
		secondary: !cfg.noSecondary,
		metrics:   metrics.NewRegistry(n),
		sc:        cfg.sc,
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			entries:     make(map[tuple.ID]entry),
			byArity:     make(map[int]map[tuple.ID]struct{}),
			byLead:      make(map[indexKey]map[tuple.ID]struct{}),
			leadBuckets: make(map[int]int),
		}
		s.shards[i].sec.enabled = s.secondary
		s.shards[i].sec.met = s.metrics
		s.all.add(uint32(i))
	}
	return s
}

// NumShards returns the store's shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Reactive reports whether delta-driven wakeups are enabled (the delayed
// engine consults this to pick its blocking path).
func (s *Store) Reactive() bool { return s.reactive }

// SecondaryIndex reports whether adaptive secondary field indexes are
// enabled.
func (s *Store) SecondaryIndex() bool { return s.secondary }

// Metrics returns the store's metrics registry. The registry is shared by
// every component layered over the store (transaction engine, consensus
// manager, process runtime), so it aggregates the whole system's activity.
func (s *Store) Metrics() *metrics.Registry { return s.metrics }

// Sched returns the schedule-exploration controller, or nil when none is
// installed. Components layered over the store call it once at construction
// and keep the (possibly nil) controller for their own decision points.
func (s *Store) Sched() *sched.Controller { return s.sc }

// hashKey hashes an index key: FNV-1a accumulation over the key's
// canonical fields, then a full-avalanche finalizer so that differences
// anywhere in the input (e.g. the high mantissa bits that distinguish
// small numeric leads) reach every output bit. The low 32 bits select the
// shard; the high 32 bits select the key-latch stripe, so the two
// partitions are independent.
func hashKey(k indexKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	mix(uint64(k.arity))
	mix(uint64(k.lead.class))
	mix(math.Float64bits(k.lead.num))
	for i := 0; i < len(k.lead.str); i++ {
		h ^= uint64(k.lead.str[i])
		h *= prime64
	}
	// murmur3 fmix64 finalizer.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// shardIndex maps an index key onto a shard. Every tuple of one bucket
// maps to the same shard.
func (s *Store) shardIndex(k indexKey) uint32 {
	if s.mask == 0 {
		return 0
	}
	return uint32(hashKey(k)) & s.mask
}

// planShards maps interest keys onto the shard set their buckets live in.
// A lead-unknown key of arity > 0 can match tuples in any shard, so it
// widens the plan to every shard; arity-0 keys address the single
// zero-lead bucket.
func (s *Store) planShards(keys []InterestKey) shardSet {
	var ss shardSet
	for _, k := range keys {
		switch {
		case k.Arity == 0:
			ss.add(s.shardIndex(indexKey{}))
		case k.LeadKnown:
			ss.add(s.shardIndex(indexKey{arity: k.Arity, lead: canonLead(k.Lead)}))
		default:
			return s.all
		}
	}
	return ss
}

func (s *Store) rlockSet(ss *shardSet) {
	ss.forEach(func(i uint32) bool {
		s.sc.Yield(sched.PointLockShard)
		s.shards[i].mu.RLock()
		s.metrics.IncShardRead(i)
		return true
	})
}

func (s *Store) runlockSet(ss *shardSet) {
	ss.forEach(func(i uint32) bool { s.shards[i].mu.RUnlock(); return true })
}

// lockSet takes the shard-mode (exclusive) locks: each shard's intent lock
// keeps key-mode commits off the shard for the whole critical section, and
// its mu grants exclusive access to the maps. Both are acquired in
// ascending shard order, intent before mu — the global lock-class order
// shared with the commuting path (locktable.go).
func (s *Store) lockSet(ss *shardSet) {
	ss.forEach(func(i uint32) bool {
		s.sc.Yield(sched.PointLockShard)
		s.shards[i].intent.Lock()
		s.shards[i].mu.Lock()
		s.metrics.IncShardWrite(i)
		return true
	})
}

func (s *Store) unlockSet(ss *shardSet) {
	ss.forEach(func(i uint32) bool {
		s.shards[i].mu.Unlock()
		s.shards[i].intent.Unlock()
		return true
	})
}

// OnCommit registers a hook invoked for every mutating commit. Must be
// called before the store is shared between goroutines.
func (s *Store) OnCommit(h CommitHook) {
	s.onCommit = append(s.onCommit, h)
}

// DurableSink makes commits durable before they become visible. Append is
// called inside the commit's critical section — the same place hooks run,
// after the version is allocated and while every conflicting commit is
// still excluded by the commit's locks — so conflicting commits append in
// version order and the sink's append order extends the conflict order.
// Append must be fast and non-blocking (buffer and return a wait token);
// WaitDurable blocks until the token's record is on stable storage. It is
// called after the commit's locks are released but before its waiters are
// notified and before the mutating call returns: a commit is observable
// only once durable (durable-before-visible), yet the fsync wait never
// extends lock hold times.
type DurableSink interface {
	Append(rec CommitRecord) (token uint64)
	WaitDurable(token uint64)
}

// SetDurable attaches a durability sink (a write-ahead log). Must be called
// before the store is shared between goroutines, and after any recovery
// replay (recovered records are already durable and must not re-append).
func (s *Store) SetDurable(d DurableSink) {
	s.durable = d
}

// waitDurable blocks the committing goroutine until its record is on
// stable storage (no-op without a sink). PointWalSync lets the exploration
// harness perturb which commit reaches the log's sync leader election
// first, permuting fsync batching.
func (s *Store) waitDurable(token uint64) {
	if s.durable == nil {
		return
	}
	s.sc.Yield(sched.PointWalSync)
	s.durable.WaitDurable(token)
}

// Reader provides read access to one consistent dataspace configuration.
// It implements pattern.Source. Readers are only valid inside the callback
// that received them.
type Reader interface {
	// Scan implements pattern.Source over the live index.
	Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool)
	// Get returns the tuple instance with the given ID.
	Get(id tuple.ID) (Instance, bool)
	// Each calls fn for every tuple instance in the configuration, in
	// unspecified order, stopping early when fn returns false.
	Each(fn func(Instance) bool)
	// Arities returns the tuple arities currently present, in unspecified
	// order. Views use it to materialize imports bucket by bucket.
	Arities() []int
	// Version returns the configuration version.
	Version() uint64
	// Len returns the number of tuple instances.
	Len() int
}

// Writer extends Reader with mutation. Mutations take effect immediately
// (within the update callback) and are published as one commit when the
// callback returns nil.
type Writer interface {
	Reader
	// Insert adds a tuple instance owned by owner and returns its ID.
	Insert(t tuple.Tuple, owner tuple.ProcessID) tuple.ID
	// Delete removes the tuple instance with the given ID; it returns
	// ErrNoSuchTuple if absent.
	Delete(id tuple.ID) error
}

// reader/writer implement the interfaces over a locked shard set.
type reader struct {
	s  *Store
	ss *shardSet // the shards this reader holds locked
}

type writer struct {
	reader
	owner    tuple.ProcessID
	inserted []Instance
	insShard []uint32
	deleted  []Instance
	delShard []uint32
}

var (
	_ Reader = reader{}
	_ Writer = (*writer)(nil)
)

// Snapshot runs fn with read access to a consistent configuration of the
// whole dataspace. Scans within fn are reentrant (the locks are held once,
// here).
func (s *Store) Snapshot(fn func(r Reader)) {
	s.snapshotSet(s.all, fn)
}

// SnapshotKeys runs fn with read access to a consistent configuration of
// the shards covering keys. The reader sees ONLY tuples in those shards:
// scans and Gets outside the covered buckets return nothing. Callers must
// derive keys from the same (arity, lead) pairs they will scan — the
// transaction engine's footprint planner does.
func (s *Store) SnapshotKeys(keys []InterestKey, fn func(r Reader)) {
	s.snapshotSet(s.planShards(keys), fn)
}

func (s *Store) snapshotSet(ss shardSet, fn func(r Reader)) {
	s.rlockSet(&ss)
	defer s.runlockSet(&ss)
	fn(reader{s: s, ss: &ss})
}

// Update runs fn with exclusive access to the whole dataspace. If fn
// returns nil, its mutations are committed: the version is bumped (when
// anything changed), waiters whose interest keys intersect the written
// keys are woken, and commit hooks run. If fn returns an error, mutations
// made through the writer are rolled back and the error is returned.
func (s *Store) Update(owner tuple.ProcessID, fn func(w Writer) error) error {
	_, err := s.updateSet(s.all, owner, true, fn)
	return err
}

// UpdateKeys is Update restricted to the shards covering keys: only those
// shards are locked, so transactions with disjoint footprints commit in
// parallel. The writer panics on an Insert outside the covered shards and
// reports ErrNoSuchTuple for Deletes outside them; callers must plan keys
// covering every bucket they scan, retract from, or assert into.
func (s *Store) UpdateKeys(owner tuple.ProcessID, keys []InterestKey, fn func(w Writer) error) error {
	_, err := s.updateSet(s.planShards(keys), owner, false, fn)
	return err
}

// updateSet is the shard-locked commit path. coarse distinguishes the
// accounting ladder: an unplanned commit over the full lock set (or a bulk
// Assert) counts as coarse, a keys-planned commit counts as a shard
// fallback. Together with the per-key path's IncKeyCommit, every mutating
// store commit lands in exactly one of the three counters.
func (s *Store) updateSet(ss shardSet, owner tuple.ProcessID, coarse bool, fn func(w Writer) error) (bool, error) {
	s.lockSet(&ss)
	if s.sc != nil {
		// Contention spike: widen the critical section while the shard
		// locks are held, so other commits pile up behind this footprint.
		for n := s.sc.LockSpike(); n > 0; n-- {
			runtime.Gosched()
		}
	}
	if s.metrics.Observed() {
		s.metrics.ObserveFootprint(ss.count())
	}
	w := &writer{reader: reader{s: s, ss: &ss}, owner: owner}
	err := fn(w)
	if err != nil {
		w.rollback()
		s.unlockSet(&ss)
		return false, err
	}
	var (
		rec  CommitRecord
		dtok uint64
	)
	changed := len(w.inserted) > 0 || len(w.deleted) > 0
	if changed {
		s.metrics.IncCommits()
		if coarse {
			s.metrics.IncCoarseCommit()
		} else {
			s.metrics.IncShardFallback()
		}
		for _, si := range w.insShard {
			s.shards[si].asserts++
		}
		for _, si := range w.delShard {
			s.shards[si].retracts++
		}
		s.bumpSeqs(w.insShard, w.delShard)
		rec = CommitRecord{
			Version:  s.allocVersion(),
			Owner:    owner,
			Inserted: w.inserted,
			Deleted:  w.deleted,
		}
		for _, h := range s.onCommit {
			h(rec)
		}
		if s.durable != nil {
			dtok = s.durable.Append(rec)
		}
	}
	s.unlockSet(&ss)
	if changed {
		s.waitDurable(dtok)
		s.notify(rec, w.insShard, w.delShard)
	}
	return changed, nil
}

// bumpSeqs advances the change sequence of every shard the commit wrote,
// once per shard, invalidating cached epoch snapshots (and re-stamping
// maintained field indexes — see shard.bumpSeq). Callers hold the written
// shards' mu locks.
//
// lint:holds mu
func (s *Store) bumpSeqs(insShard, delShard []uint32) {
	var touched shardSet
	for _, si := range insShard {
		if !touched.has(si) {
			touched.add(si)
			s.shards[si].bumpSeq()
		}
	}
	for _, si := range delShard {
		if !touched.has(si) {
			touched.add(si)
			s.shards[si].bumpSeq()
		}
	}
}

// allocVersion claims the commit's serialization position. Normally a
// single atomic add — correct even though commits with disjoint shard
// footprints allocate concurrently. When the exploration controller's
// RacyVersionBug fault fires, the allocation instead runs a deliberate
// load-yield-store race: two concurrent disjoint-footprint commits can both
// observe the same version and claim the same slot, corrupting the
// serialization witness the refmodel replay checks. This is the harness's
// "teeth" bug (ISSUE 4): it exists only to prove exploration detects and
// shrinks real ordering violations. The fault cannot fire without an
// installed controller whose RacyVersionBug probability is nonzero.
func (s *Store) allocVersion() uint64 {
	if s.sc != nil && s.sc.RacyVersion() {
		v := s.version.Load() + 1
		for i := 0; i < 64; i++ {
			runtime.Gosched()
		}
		s.version.Store(v)
		return v
	}
	return s.version.Add(1)
}

// Version returns the current configuration version.
func (s *Store) Version() uint64 {
	return s.version.Load()
}

// Len returns the current number of tuple instances.
func (s *Store) Len() int {
	n := 0
	s.Snapshot(func(r Reader) { n = r.Len() })
	return n
}

// Stats returns a copy of the activity counters.
func (s *Store) Stats() Stats {
	st := Stats{Commits: s.metrics.Commits()}
	s.rlockSet(&s.all)
	for _, sh := range s.shards {
		st.Asserts += sh.asserts
		st.Retracts += sh.retracts
	}
	s.runlockSet(&s.all)
	return st
}

// Assert inserts tuples outside any transaction (initial dataspace
// contents, tests). It returns the new instance IDs.
func (s *Store) Assert(owner tuple.ProcessID, ts ...tuple.Tuple) []tuple.ID {
	ids := make([]tuple.ID, len(ts))
	// Plan the exact shard set so bulk loads of one bucket stay narrow.
	var ss shardSet
	for _, t := range ts {
		ss.add(s.shardIndex(indexKeyOf(t)))
	}
	_, _ = s.updateSet(ss, owner, true, func(w Writer) error {
		for i, t := range ts {
			ids[i] = w.Insert(t, owner)
		}
		return nil
	})
	return ids
}

// All returns every instance currently in the dataspace (test helper and
// trace support); order is unspecified.
func (s *Store) All() []Instance {
	return s.AllInto(nil)
}

// AllInto appends every instance to buf (reusing its capacity) and returns
// the result. Callers that snapshot repeatedly can recycle one buffer.
func (s *Store) AllInto(buf []Instance) []Instance {
	out := buf[:0]
	s.Snapshot(func(r Reader) {
		if n := r.Len(); cap(out) < n {
			out = make([]Instance, 0, n)
		}
		r.Each(func(inst Instance) bool {
			out = append(out, inst)
			return true
		})
	})
	return out
}

// --- reader ---

func (r reader) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	if leadKnown {
		k := indexKey{arity: arity, lead: canonLead(lead)}
		si := r.s.shardIndex(k)
		if !r.ss.has(si) {
			return // bucket outside the reader's locked footprint
		}
		sh := r.s.shards[si]
		for id := range sh.byLead[k] {
			if !fn(id, sh.entries[id].t) {
				return
			}
		}
		return
	}
	// Lead unknown: tuples of this arity may live in any locked shard.
	stopped := false
	r.ss.forEach(func(si uint32) bool {
		sh := r.s.shards[si]
		for id := range sh.byArity[arity] {
			if !fn(id, sh.entries[id].t) {
				stopped = true
				return false
			}
		}
		return true
	})
	_ = stopped
}

func (r reader) Get(id tuple.ID) (Instance, bool) {
	var (
		inst Instance
		ok   bool
	)
	r.ss.forEach(func(si uint32) bool {
		if e, hit := r.s.shards[si].entries[id]; hit {
			inst = Instance{ID: id, Tuple: e.t, Owner: e.owner}
			ok = true
			return false
		}
		return true
	})
	return inst, ok
}

func (r reader) Each(fn func(Instance) bool) {
	r.ss.forEach(func(si uint32) bool {
		for id, e := range r.s.shards[si].entries {
			if !fn(Instance{ID: id, Tuple: e.t, Owner: e.owner}) {
				return false
			}
		}
		return true
	})
}

func (r reader) Arities() []int {
	// Pre-size to the summed bucket counts; the cross-shard union is
	// deduplicated with a linear probe (the arity population is tiny).
	n := 0
	r.ss.forEach(func(si uint32) bool {
		n += len(r.s.shards[si].byArity)
		return true
	})
	out := make([]int, 0, n)
	r.ss.forEach(func(si uint32) bool {
		for a := range r.s.shards[si].byArity {
			dup := false
			for _, have := range out {
				if have == a {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, a)
			}
		}
		return true
	})
	return out
}

func (r reader) Version() uint64 { return r.s.version.Load() }

func (r reader) Len() int {
	n := 0
	r.ss.forEach(func(si uint32) bool {
		n += len(r.s.shards[si].entries)
		return true
	})
	return n
}

// --- writer ---

// Insert applies immediately to the live maps; updateSet holds the
// exclusive locks of every shard in the writer's set for the whole fn.
//
// lint:holds intent mu
func (w *writer) Insert(t tuple.Tuple, owner tuple.ProcessID) tuple.ID {
	si := w.s.shardIndex(indexKeyOf(t))
	if !w.ss.has(si) {
		panic(fmt.Sprintf("dataspace: Insert of %v outside the update's locked shards (footprint plan missed a bucket)", t))
	}
	sh := w.s.shards[si]
	id := tuple.ID(w.s.nextID.Add(1))
	sh.entries[id] = entry{t: t, owner: owner}
	sh.indexAdd(id, t)
	w.inserted = append(w.inserted, Instance{ID: id, Tuple: t, Owner: owner})
	w.insShard = append(w.insShard, si)
	return id
}

// Delete applies immediately to the live maps; updateSet holds the
// exclusive locks of every shard in the writer's set for the whole fn.
//
// lint:holds intent mu
func (w *writer) Delete(id tuple.ID) error {
	var (
		sh *shard
		si uint32
		e  entry
		ok bool
	)
	w.ss.forEach(func(i uint32) bool {
		if got, hit := w.s.shards[i].entries[id]; hit {
			sh, si, e, ok = w.s.shards[i], i, got, true
			return false
		}
		return true
	})
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchTuple, id)
	}
	delete(sh.entries, id)
	sh.indexRemove(id, e.t)
	w.deleted = append(w.deleted, Instance{ID: id, Tuple: e.t, Owner: e.owner})
	w.delShard = append(w.delShard, si)
	return nil
}

// rollback undoes the writer's mutations (fn returned an error), restoring
// every touched shard's entries and indexes.
//
// lint:holds intent mu
func (w *writer) rollback() {
	for i, ins := range w.inserted {
		sh := w.s.shards[w.insShard[i]]
		if _, ok := sh.entries[ins.ID]; ok {
			delete(sh.entries, ins.ID)
			sh.indexRemove(ins.ID, ins.Tuple)
		}
	}
	for i, del := range w.deleted {
		sh := w.s.shards[w.delShard[i]]
		sh.entries[del.ID] = entry{t: del.Tuple, owner: del.Owner}
		sh.indexAdd(del.ID, del.Tuple)
	}
}

// indexAdd maintains the arity, lead, and secondary field indexes (plus
// the lead-bucket cardinality counters) for one insert; every caller holds
// the shard's exclusive mu.
//
// lint:holds mu
func (sh *shard) indexAdd(id tuple.ID, t tuple.Tuple) {
	a := t.Arity()
	byA := sh.byArity[a]
	if byA == nil {
		byA = make(map[tuple.ID]struct{})
		sh.byArity[a] = byA
	}
	byA[id] = struct{}{}
	if a > 0 {
		k := indexKey{arity: a, lead: canonLead(t.Field(0))}
		byL := sh.byLead[k]
		if byL == nil {
			byL = make(map[tuple.ID]struct{})
			sh.byLead[k] = byL
			sh.leadBuckets[a]++
		}
		byL[id] = struct{}{}
	}
	sh.secAdd(id, t)
}

// indexRemove maintains the arity, lead, and secondary field indexes (plus
// the lead-bucket cardinality counters) for one delete; every caller holds
// the shard's exclusive mu.
//
// lint:holds mu
func (sh *shard) indexRemove(id tuple.ID, t tuple.Tuple) {
	a := t.Arity()
	if byA := sh.byArity[a]; byA != nil {
		delete(byA, id)
		if len(byA) == 0 {
			delete(sh.byArity, a)
		}
	}
	if a > 0 {
		k := indexKey{arity: a, lead: canonLead(t.Field(0))}
		if byL := sh.byLead[k]; byL != nil {
			delete(byL, id)
			if len(byL) == 0 {
				delete(sh.byLead, k)
				if sh.leadBuckets[a]--; sh.leadBuckets[a] == 0 {
					delete(sh.leadBuckets, a)
				}
			}
		}
	}
	sh.secRemove(id, t)
}
