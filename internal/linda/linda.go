// Package linda is an independent implementation of the Linda tuple-space
// kernel — the system the paper positions SDL against ("Linda provides
// processes with very simple dataspace access primitives: read, assert,
// and retract one tuple at a time").
//
// It provides the six classic primitives:
//
//	Out  — assert a tuple
//	In   — retract a matching tuple, blocking until one exists
//	Rd   — read a matching tuple, blocking until one exists
//	Inp  — non-blocking In (predicate form)
//	Rdp  — non-blocking Rd
//	Eval — spawn a goroutine that Outs its result (live tuple)
//
// The implementation is deliberately independent of the SDL packages (its
// own store, matching, and blocking machinery) so that experiment E7
// compares two genuinely distinct kernels: Linda's one-tuple-at-a-time
// primitives — where a compound read-modify-write needs an In/Out pair and
// a retry loop — against SDL's multi-pattern atomic transactions.
package linda

import (
	"context"
	"sync"

	"github.com/sdl-lang/sdl/internal/tuple"
)

// Space is a Linda tuple space. The zero value is not usable; construct
// with NewSpace.
type Space struct {
	mu      sync.Mutex
	byLead  map[leadKey]map[int64]tuple.Tuple
	nextID  int64
	waiters map[*waiter]struct{}
	outs    uint64
	ins     uint64
	rds     uint64

	wg sync.WaitGroup // Eval goroutines
}

// leadKey buckets tuples by arity and canonical leading value.
type leadKey struct {
	arity int
	kind  uint8
	num   float64
	str   string
}

func keyOf(t tuple.Tuple) leadKey {
	k := leadKey{arity: t.Arity()}
	if t.Arity() == 0 {
		return k
	}
	v := t.Field(0)
	if n, ok := v.Numeric(); ok {
		k.kind, k.num = 1, n
		return k
	}
	if a, ok := v.AsAtom(); ok {
		k.kind, k.str = 2, a
		return k
	}
	if s, ok := v.AsString(); ok {
		k.kind, k.str = 3, s
		return k
	}
	if b, ok := v.AsBool(); ok {
		k.kind = 4
		if b {
			k.num = 1
		}
	}
	return k
}

// waiter blocks an In/Rd until a candidate tuple arrives.
type waiter struct {
	ch chan struct{}
}

// NewSpace returns an empty tuple space.
func NewSpace() *Space {
	return &Space{
		byLead:  make(map[leadKey]map[int64]tuple.Tuple),
		waiters: make(map[*waiter]struct{}),
	}
}

// Template is an anti-tuple: a sequence of fields that are either actuals
// (concrete values) or formals (typed or untyped wildcards that receive
// the matched tuple's fields).
type Template struct {
	fields []tfield
}

type tfield struct {
	actual  bool
	value   tuple.Value
	kind    tuple.Kind // formal type constraint; KindInvalid = any
	varName string     // formal result name (informational)
}

// T starts building a template.
func T() Template { return Template{} }

// Actual appends an actual (constant) field.
func (t Template) Actual(v tuple.Value) Template {
	t.fields = append(t.fields, tfield{actual: true, value: v})
	return t
}

// Formal appends an untyped formal field (matches any value).
func (t Template) Formal(name string) Template {
	t.fields = append(t.fields, tfield{varName: name})
	return t
}

// FormalTyped appends a formal constrained to a value kind.
func (t Template) FormalTyped(name string, k tuple.Kind) Template {
	t.fields = append(t.fields, tfield{varName: name, kind: k})
	return t
}

// Arity returns the template length.
func (t Template) Arity() int { return len(t.fields) }

// match reports whether tp matches the template.
func (t Template) match(tp tuple.Tuple) bool {
	if tp.Arity() != len(t.fields) {
		return false
	}
	for i, f := range t.fields {
		fv := tp.Field(i)
		if f.actual {
			if !f.value.Equal(fv) {
				return false
			}
		} else if f.kind != tuple.KindInvalid && fv.Kind() != f.kind {
			return false
		}
	}
	return true
}

// lead returns the index key the template constrains, if its first field
// is an actual.
func (t Template) lead() (leadKey, bool) {
	if len(t.fields) == 0 || !t.fields[0].actual {
		return leadKey{}, false
	}
	probe := make([]tuple.Value, len(t.fields))
	probe[0] = t.fields[0].value
	for i := 1; i < len(probe); i++ {
		probe[i] = tuple.Int(0)
	}
	return keyOf(tuple.New(probe...)), true
}

// Out adds a tuple to the space.
func (s *Space) Out(t tuple.Tuple) {
	s.mu.Lock()
	s.nextID++
	k := keyOf(t)
	bucket := s.byLead[k]
	if bucket == nil {
		bucket = make(map[int64]tuple.Tuple)
		s.byLead[k] = bucket
	}
	bucket[s.nextID] = t
	s.outs++
	// Wake all waiters; each re-checks its own template. Linda's classic
	// implementations wake conservatively, as we do.
	for w := range s.waiters {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

// take searches for a match and (when remove is set) retracts it.
func (s *Space) take(t Template, remove bool) (tuple.Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	scan := func(k leadKey) (tuple.Tuple, bool) {
		for id, tp := range s.byLead[k] {
			if t.match(tp) {
				if remove {
					delete(s.byLead[k], id)
					if len(s.byLead[k]) == 0 {
						delete(s.byLead, k)
					}
					s.ins++
				} else {
					s.rds++
				}
				return tp, true
			}
		}
		return tuple.Tuple{}, false
	}
	if k, ok := t.lead(); ok {
		return scan(k)
	}
	for k := range s.byLead {
		if k.arity != t.Arity() {
			continue
		}
		if tp, ok := scan(k); ok {
			return tp, true
		}
	}
	return tuple.Tuple{}, false
}

// Inp retracts a matching tuple if one exists (non-blocking In).
func (s *Space) Inp(t Template) (tuple.Tuple, bool) { return s.take(t, true) }

// Rdp reads a matching tuple if one exists (non-blocking Rd).
func (s *Space) Rdp(t Template) (tuple.Tuple, bool) { return s.take(t, false) }

// blocking performs the wait loop shared by In and Rd.
func (s *Space) blocking(ctx context.Context, t Template, remove bool) (tuple.Tuple, error) {
	for {
		w := &waiter{ch: make(chan struct{}, 1)}
		s.mu.Lock()
		s.waiters[w] = struct{}{}
		s.mu.Unlock()

		tp, ok := s.take(t, remove)
		if ok {
			s.dropWaiter(w)
			return tp, nil
		}
		select {
		case <-w.ch:
			s.dropWaiter(w)
		case <-ctx.Done():
			s.dropWaiter(w)
			return tuple.Tuple{}, ctx.Err()
		}
	}
}

func (s *Space) dropWaiter(w *waiter) {
	s.mu.Lock()
	delete(s.waiters, w)
	s.mu.Unlock()
}

// In retracts a matching tuple, blocking until one exists.
func (s *Space) In(ctx context.Context, t Template) (tuple.Tuple, error) {
	return s.blocking(ctx, t, true)
}

// Rd reads a matching tuple, blocking until one exists.
func (s *Space) Rd(ctx context.Context, t Template) (tuple.Tuple, error) {
	return s.blocking(ctx, t, false)
}

// Eval spawns fn on its own goroutine and Outs its result when it
// completes — Linda's "live tuple". Wait blocks until all Evals finish.
func (s *Space) Eval(fn func() tuple.Tuple) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Out(fn())
	}()
}

// Wait blocks until all Eval goroutines have completed.
func (s *Space) Wait() { s.wg.Wait() }

// Len returns the number of tuples in the space.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.byLead {
		n += len(b)
	}
	return n
}

// Stats reports primitive-use counters: outs, ins (retractions), rds.
func (s *Space) Stats() (outs, ins, rds uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outs, s.ins, s.rds
}
