package linda

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/tuple"
)

func tup(fields ...any) tuple.Tuple { return tuple.MustMake(fields...) }

func TestOutInpRoundTrip(t *testing.T) {
	s := NewSpace()
	s.Out(tuple.New(tuple.Atom("point"), tuple.Int(3), tuple.Int(4)))

	got, ok := s.Inp(T().Actual(tuple.Atom("point")).Formal("x").Formal("y"))
	if !ok {
		t.Fatal("Inp found nothing")
	}
	if x, _ := got.Field(1).AsInt(); x != 3 {
		t.Errorf("x = %d", x)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after In", s.Len())
	}
	if _, ok := s.Inp(T().Actual(tuple.Atom("point")).Formal("x").Formal("y")); ok {
		t.Error("second Inp should fail")
	}
}

func TestRdpDoesNotRemove(t *testing.T) {
	s := NewSpace()
	s.Out(tuple.New(tuple.Atom("k"), tuple.Int(1)))
	if _, ok := s.Rdp(T().Actual(tuple.Atom("k")).Formal("v")); !ok {
		t.Fatal("Rdp found nothing")
	}
	if s.Len() != 1 {
		t.Error("Rdp removed the tuple")
	}
}

func TestTemplateMatching(t *testing.T) {
	s := NewSpace()
	s.Out(tuple.New(tuple.Atom("k"), tuple.Int(1)))
	s.Out(tuple.New(tuple.Atom("k"), tuple.String("s")))

	// Typed formal selects by kind.
	got, ok := s.Inp(T().Actual(tuple.Atom("k")).FormalTyped("v", tuple.KindString))
	if !ok {
		t.Fatal("typed formal missed")
	}
	if _, isStr := got.Field(1).AsString(); !isStr {
		t.Errorf("got %v", got)
	}
	// Arity mismatch never matches.
	if _, ok := s.Inp(T().Actual(tuple.Atom("k"))); ok {
		t.Error("arity mismatch matched")
	}
	// Actual mismatch.
	if _, ok := s.Inp(T().Actual(tuple.Atom("z")).Formal("v")); ok {
		t.Error("actual mismatch matched")
	}
}

func TestUnconstrainedLeadScansAllBuckets(t *testing.T) {
	s := NewSpace()
	s.Out(tuple.New(tuple.Int(7), tuple.Atom("x")))
	got, ok := s.Inp(T().Formal("k").Formal("v"))
	if !ok {
		t.Fatal("formal-lead template missed")
	}
	if k, _ := got.Field(0).AsInt(); k != 7 {
		t.Errorf("k = %d", k)
	}
}

func TestInBlocksUntilOut(t *testing.T) {
	s := NewSpace()
	done := make(chan tuple.Tuple, 1)
	go func() {
		tp, err := s.In(context.Background(), T().Actual(tuple.Atom("job")).Formal("n"))
		if err != nil {
			t.Error(err)
		}
		done <- tp
	}()
	select {
	case <-done:
		t.Fatal("In returned before Out")
	case <-time.After(20 * time.Millisecond):
	}
	s.Out(tuple.New(tuple.Atom("job"), tuple.Int(9)))
	select {
	case tp := <-done:
		if n, _ := tp.Field(1).AsInt(); n != 9 {
			t.Errorf("n = %d", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("In never woke")
	}
}

func TestInContextCancel(t *testing.T) {
	s := NewSpace()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.In(ctx, T().Actual(tuple.Atom("never")))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("In ignored cancellation")
	}
}

func TestConcurrentInExactlyOnce(t *testing.T) {
	// Classic Linda semantics: each tuple is removed by exactly one In.
	s := NewSpace()
	const n = 200
	for i := 0; i < n; i++ {
		s.Out(tuple.New(tuple.Atom("job"), tuple.Int(int64(i))))
	}
	var wg sync.WaitGroup
	seen := make(chan int64, n)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tp, ok := s.Inp(T().Actual(tuple.Atom("job")).Formal("n"))
				if !ok {
					return
				}
				v, _ := tp.Field(1).AsInt()
				seen <- v
			}
		}()
	}
	wg.Wait()
	close(seen)
	got := map[int64]int{}
	for v := range seen {
		got[v]++
	}
	if len(got) != n {
		t.Fatalf("consumed %d distinct jobs, want %d", len(got), n)
	}
	for v, c := range got {
		if c != 1 {
			t.Errorf("job %d consumed %d times", v, c)
		}
	}
}

func TestEvalLiveTuple(t *testing.T) {
	s := NewSpace()
	s.Eval(func() tuple.Tuple {
		return tuple.New(tuple.Atom("result"), tuple.Int(42))
	})
	tp, err := s.Rd(context.Background(), T().Actual(tuple.Atom("result")).Formal("v"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tp.Field(1).AsInt(); v != 42 {
		t.Errorf("v = %d", v)
	}
	s.Wait()
}

func TestStats(t *testing.T) {
	s := NewSpace()
	s.Out(tup("a", 1))
	s.Out(tup("a", 2))
	_, _ = s.Rdp(T().Actual(tuple.String("a")).Formal("v"))
	_, _ = s.Inp(T().Actual(tuple.String("a")).Formal("v"))
	outs, ins, rds := s.Stats()
	if outs != 2 || ins != 1 || rds != 1 {
		t.Errorf("stats = %d/%d/%d", outs, ins, rds)
	}
}

// The E7 scenario in miniature: a compound read-modify-write in Linda is
// an In followed by an Out — not atomic, but linearizable per tuple, so
// concurrent counters still must not lose updates when the counter is held
// exclusively between In and Out.
func TestCounterViaInOut(t *testing.T) {
	s := NewSpace()
	s.Out(tuple.New(tuple.Atom("counter"), tuple.Int(0)))
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tp, err := s.In(context.Background(), T().Actual(tuple.Atom("counter")).Formal("n"))
				if err != nil {
					t.Error(err)
					return
				}
				n, _ := tp.Field(1).AsInt()
				s.Out(tuple.New(tuple.Atom("counter"), tuple.Int(n+1)))
			}
		}()
	}
	wg.Wait()
	tp, ok := s.Inp(T().Actual(tuple.Atom("counter")).Formal("n"))
	if !ok {
		t.Fatal("counter missing")
	}
	if n, _ := tp.Field(1).AsInt(); n != workers*per {
		t.Errorf("counter = %d, want %d", n, workers*per)
	}
}
