// Package tuple defines the value domain and tuple model of the SDL shared
// dataspace: tuples are finite sequences of values (atoms, integers, floats,
// strings, booleans), each stored tuple instance carries a unique identifier
// and records the process that asserted it.
package tuple

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the value domain V of the dataspace.
type Kind uint8

// Value kinds. The zero Kind is reserved so that the zero Value is
// distinguishable from any well-formed value.
const (
	KindInvalid Kind = iota
	KindAtom
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindAtom:
		return "atom"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a single field of a tuple. Values are immutable and comparable
// with ==, so they can be used directly as map keys (the dataspace indexes
// rely on this).
type Value struct {
	kind Kind
	num  int64   // int payload, or bool (0/1)
	flt  float64 // float payload
	str  string  // atom or string payload
}

// Atom returns an atom value. Atoms are symbolic constants such as `year`
// or `nil`; they compare equal iff their names are equal.
func Atom(name string) Value { return Value{kind: KindAtom, str: name} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, flt: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, str: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value is well formed (not the zero Value).
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsAtom returns the atom name; ok is false if the value is not an atom.
func (v Value) AsAtom() (string, bool) { return v.str, v.kind == KindAtom }

// AsInt returns the integer payload; ok is false if the value is not an int.
func (v Value) AsInt() (int64, bool) { return v.num, v.kind == KindInt }

// AsFloat returns the float payload; ok is false if the value is not a float.
func (v Value) AsFloat() (float64, bool) { return v.flt, v.kind == KindFloat }

// AsString returns the string payload; ok is false if the value is not a
// string.
func (v Value) AsString() (string, bool) { return v.str, v.kind == KindString }

// AsBool returns the boolean payload; ok is false if the value is not a bool.
func (v Value) AsBool() (bool, bool) { return v.num != 0, v.kind == KindBool }

// Numeric reports whether the value is an int or a float, and returns its
// value as a float64 for mixed-mode arithmetic.
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.num), true
	case KindFloat:
		return v.flt, true
	default:
		return 0, false
	}
}

// Equal reports value equality. Unlike ==, Equal treats an int and a float
// holding the same mathematical value as equal (2 == 2.0), matching the
// paper's untyped treatment of numbers in queries.
func (v Value) Equal(w Value) bool {
	if v.kind == w.kind {
		return v == w
	}
	vn, vok := v.Numeric()
	wn, wok := w.Numeric()
	return vok && wok && vn == wn
}

// Compare orders two values. Numbers order numerically across int/float;
// otherwise values order first by kind, then by payload. It returns -1, 0,
// or +1. A total order over all values is needed by ∀-transactions and by
// deterministic test fixtures.
func (v Value) Compare(w Value) int {
	vn, vok := v.Numeric()
	wn, wok := w.Numeric()
	if vok && wok {
		switch {
		case vn < wn:
			return -1
		case vn > wn:
			return 1
		default:
			return 0
		}
	}
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindAtom, KindString:
		return strings.Compare(v.str, w.str)
	case KindBool:
		switch {
		case v.num < w.num:
			return -1
		case v.num > w.num:
			return 1
		}
	}
	return 0
}

// String renders the value in SDL literal syntax: atoms bare, strings
// quoted, booleans as true/false.
func (v Value) String() string {
	switch v.kind {
	case KindAtom:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// Of converts a native Go value into a dataspace Value. Supported inputs:
// Value (returned unchanged), int, int64, float64, string (becomes a string
// value; use Atom for atoms), and bool. It returns an error for anything
// else.
func Of(x any) (Value, error) {
	switch t := x.(type) {
	case Value:
		return t, nil
	case int:
		return Int(int64(t)), nil
	case int64:
		return Int(t), nil
	case float64:
		return Float(t), nil
	case string:
		return String(t), nil
	case bool:
		return Bool(t), nil
	default:
		return Value{}, fmt.Errorf("tuple: unsupported value type %T", x)
	}
}

// MustOf is Of but panics on unsupported types. It is intended for literals
// in tests and examples where the type is statically known.
func MustOf(x any) Value {
	v, err := Of(x)
	if err != nil {
		panic(err)
	}
	return v
}
