package tuple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"atom", Atom("year"), KindAtom, "year"},
		{"int", Int(87), KindInt, "87"},
		{"negative int", Int(-3), KindInt, "-3"},
		{"float", Float(2.5), KindFloat, "2.5"},
		{"string", String("hello"), KindString, `"hello"`},
		{"bool true", Bool(true), KindBool, "true"},
		{"bool false", Bool(false), KindBool, "false"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.v.Kind(); got != tc.kind {
				t.Errorf("Kind() = %v, want %v", got, tc.kind)
			}
			if got := tc.v.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
			if !tc.v.IsValid() {
				t.Error("IsValid() = false, want true")
			}
		})
	}
}

func TestZeroValueIsInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Error("zero Value should be invalid")
	}
	if v.Kind() != KindInvalid {
		t.Errorf("zero Value kind = %v", v.Kind())
	}
}

func TestValueAccessorMismatch(t *testing.T) {
	v := Atom("x")
	if _, ok := v.AsInt(); ok {
		t.Error("AsInt on atom should fail")
	}
	if _, ok := v.AsFloat(); ok {
		t.Error("AsFloat on atom should fail")
	}
	if _, ok := v.AsBool(); ok {
		t.Error("AsBool on atom should fail")
	}
	if _, ok := v.AsString(); ok {
		t.Error("AsString on atom should fail")
	}
	if name, ok := v.AsAtom(); !ok || name != "x" {
		t.Errorf("AsAtom = %q, %v", name, ok)
	}
}

func TestNumericCrossKindEquality(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should Equal Float(2.0)")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not Equal Float(2.5)")
	}
	if Atom("2").Equal(Int(2)) {
		t.Error("Atom(\"2\") should not Equal Int(2)")
	}
	if String("a").Equal(Atom("a")) {
		t.Error("String and Atom with same payload must differ")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	// Total order: atoms (by name) < numbers (numeric, int/float mixed)
	// < strings < bools.
	ordered := []Value{
		Atom("alpha"), Atom("beta"),
		Int(-5), Float(-1.5), Int(0), Float(0.5), Int(1), Int(2), Float(9.5),
		String("alpha"),
		Bool(false), Bool(true),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			var want int
			switch {
			case i < j:
				want = -1
			case i > j:
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestOfConversions(t *testing.T) {
	tests := []struct {
		in   any
		want Value
	}{
		{5, Int(5)},
		{int64(7), Int(7)},
		{1.5, Float(1.5)},
		{"s", String("s")},
		{true, Bool(true)},
		{Atom("a"), Atom("a")},
	}
	for _, tc := range tests {
		got, err := Of(tc.in)
		if err != nil {
			t.Fatalf("Of(%v): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("Of(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := Of([]int{1}); err == nil {
		t.Error("Of(slice) should fail")
	}
}

func TestMustOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustOf should panic on unsupported type")
		}
	}()
	MustOf(struct{}{})
}

// randomValue produces an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Atom(randomName(r))
	case 1:
		return Int(r.Int63n(1000) - 500)
	case 2:
		return Float(float64(r.Int63n(1000)-500) / 4)
	case 3:
		return String(randomName(r))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func randomName(r *rand.Rand) string {
	letters := "abcdefgxyz"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// Generate implements quick.Generator for Value.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomValue(r))
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b Value) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareReflexiveEqualConsistent(t *testing.T) {
	f := func(a Value) bool {
		return a.Compare(a) == 0 && a.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualImpliesCompareZero(t *testing.T) {
	f := func(a, b Value) bool {
		if a.Equal(b) {
			return a.Compare(b) == 0
		}
		return a.Compare(b) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
