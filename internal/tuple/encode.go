package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary encoding of values and tuples. The dataspace itself is in-memory,
// but traces, checkpoints, and the bench harness persist tuples; the format
// is a compact length-prefixed encoding:
//
//	tuple  := uvarint(arity) value*
//	value  := kind-byte payload
//	payload:
//	  atom/string: uvarint(len) bytes
//	  int:         varint
//	  float:       8 bytes little-endian IEEE-754
//	  bool:        1 byte
var (
	// ErrCorrupt reports a malformed encoding.
	ErrCorrupt = errors.New("tuple: corrupt encoding")
)

// AppendValue appends the binary encoding of v to dst and returns the
// extended slice.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindAtom, KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case KindInt:
		dst = binary.AppendVarint(dst, v.num)
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.flt))
	case KindBool:
		dst = append(dst, byte(v.num))
	}
	return dst
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, ErrCorrupt
	}
	kind := Kind(b[0])
	rest := b[1:]
	n := 1
	switch kind {
	case KindAtom, KindString:
		l, w := binary.Uvarint(rest)
		if w <= 0 || uint64(len(rest)-w) < l {
			return Value{}, 0, ErrCorrupt
		}
		s := string(rest[w : w+int(l)])
		n += w + int(l)
		if kind == KindAtom {
			return Atom(s), n, nil
		}
		return String(s), n, nil
	case KindInt:
		x, w := binary.Varint(rest)
		if w <= 0 {
			return Value{}, 0, ErrCorrupt
		}
		return Int(x), n + w, nil
	case KindFloat:
		if len(rest) < 8 {
			return Value{}, 0, ErrCorrupt
		}
		bits := binary.LittleEndian.Uint64(rest)
		return Float(math.Float64frombits(bits)), n + 8, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, ErrCorrupt
		}
		return Bool(rest[0] != 0), n + 1, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: kind %d", ErrCorrupt, kind)
	}
}

// AppendTuple appends the binary encoding of t to dst.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t.fields)))
	for _, v := range t.fields {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeTuple decodes one tuple from b, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	arity, w := binary.Uvarint(b)
	if w <= 0 {
		return Tuple{}, 0, ErrCorrupt
	}
	n := w
	fields := make([]Value, 0, arity)
	for i := uint64(0); i < arity; i++ {
		v, vn, err := DecodeValue(b[n:])
		if err != nil {
			return Tuple{}, 0, err
		}
		fields = append(fields, v)
		n += vn
	}
	return Tuple{fields: fields}, n, nil
}

// mathFloat64bits is a tiny indirection so tuple.go does not import math
// twice; kept here with the other encoding helpers.
func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }
