package tuple

import (
	"testing"
	"testing/quick"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		Atom("year"), Atom(""), Int(0), Int(-1), Int(1 << 40),
		Float(2.5), Float(-0.0), String("hello world"), String(""),
		Bool(true), Bool(false),
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("decode %v consumed %d of %d bytes", v, n, len(buf))
		}
		if got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tuples := []Tuple{
		New(),
		New(Atom("year"), Int(87)),
		New(Int(1), Float(2.5), String("x"), Bool(true), Atom("nil")),
	}
	for _, tp := range tuples {
		buf := AppendTuple(nil, tp)
		got, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", tp, err)
		}
		if n != len(buf) {
			t.Errorf("decode %v consumed %d of %d bytes", tp, n, len(buf))
		}
		if !got.Equal(tp) || got.Arity() != tp.Arity() {
			t.Errorf("round trip %v -> %v", tp, got)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindAtom)},           // missing length
		{byte(KindAtom), 10, 'a'},  // truncated payload
		{byte(KindInt)},            // missing varint
		{byte(KindFloat), 1, 2, 3}, // short float
		{byte(KindBool)},           // missing bool byte
		{200},                      // unknown kind
	}
	for i, b := range cases {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, _, err := DecodeTuple(nil); err == nil {
		t.Error("DecodeTuple(nil) should fail")
	}
	// Tuple claiming 3 fields but containing 1.
	buf := AppendTuple(nil, New(Atom("a")))
	buf[0] = 3
	if _, _, err := DecodeTuple(buf); err == nil {
		t.Error("truncated tuple should fail")
	}
}

func TestQuickTupleEncodeRoundTrip(t *testing.T) {
	f := func(tp Tuple) bool {
		buf := AppendTuple(nil, tp)
		got, n, err := DecodeTuple(buf)
		return err == nil && n == len(buf) && got.Equal(tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendValueConcatenation(t *testing.T) {
	// Multiple values appended to one buffer decode in sequence.
	vals := []Value{Int(1), Atom("x"), Float(3.5)}
	var buf []byte
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	off := 0
	for _, want := range vals {
		got, n, err := DecodeValue(buf[off:])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("got %v want %v", got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d", off, len(buf))
	}
}
