package tuple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewCopiesFields(t *testing.T) {
	fields := []Value{Int(1), Int(2)}
	tp := New(fields...)
	fields[0] = Int(99)
	if got, _ := tp.Field(0).AsInt(); got != 1 {
		t.Errorf("tuple aliased caller slice: field 0 = %d", got)
	}
}

func TestFieldsReturnsCopy(t *testing.T) {
	tp := New(Int(1), Int(2))
	f := tp.Fields()
	f[0] = Int(99)
	if got, _ := tp.Field(0).AsInt(); got != 1 {
		t.Errorf("Fields leaked internal slice: field 0 = %d", got)
	}
}

func TestMakeAndString(t *testing.T) {
	tp, err := Make("year", 87)
	if err != nil {
		t.Fatal(err)
	}
	// Make converts Go strings to string values, so expect quotes.
	if got := tp.String(); got != `<"year", 87>` {
		t.Errorf("String() = %s", got)
	}
	tp2 := New(Atom("year"), Int(87))
	if got := tp2.String(); got != "<year, 87>" {
		t.Errorf("String() = %s", got)
	}
}

func TestMakeError(t *testing.T) {
	if _, err := Make("a", []int{1}); err == nil {
		t.Error("Make with unsupported field should fail")
	}
}

func TestMustMakePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMake should panic")
		}
	}()
	MustMake(map[string]int{})
}

func TestTupleEqual(t *testing.T) {
	a := New(Atom("k"), Int(2))
	b := New(Atom("k"), Float(2.0))
	c := New(Atom("k"), Int(3))
	d := New(Atom("k"))
	if !a.Equal(b) {
		t.Error("numeric cross-kind tuple equality failed")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal tuples reported equal")
	}
}

func TestTupleCompare(t *testing.T) {
	a := New(Atom("a"))
	b := New(Atom("a"), Int(1))
	c := New(Atom("a"), Int(2))
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter tuple should order first")
	}
	if b.Compare(c) != -1 || c.Compare(b) != 1 || b.Compare(b) != 0 {
		t.Error("lexicographic field ordering failed")
	}
}

func TestHashEqualityConsistency(t *testing.T) {
	a := New(Atom("k"), Int(2))
	b := New(Atom("k"), Float(2.0))
	if a.Hash() != b.Hash() {
		t.Error("Equal tuples must hash equal")
	}
	c := New(Atom("k"), Int(3))
	if a.Hash() == c.Hash() {
		t.Error("distinct tuples should (almost surely) hash distinct")
	}
	// Field-boundary confusion: <ab> vs <a, b> must differ.
	x := New(Atom("ab"))
	y := New(Atom("a"), Atom("b"))
	if x.Hash() == y.Hash() {
		t.Error("field separator missing from hash")
	}
}

// Generate implements quick.Generator for Tuple.
func (Tuple) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(5)
	fields := make([]Value, n)
	for i := range fields {
		fields[i] = randomValue(r)
	}
	return reflect.ValueOf(New(fields...))
}

func TestQuickHashRespectsEqual(t *testing.T) {
	f := func(a, b Tuple) bool {
		if a.Equal(b) {
			return a.Hash() == b.Hash()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTupleCompareAntisymmetric(t *testing.T) {
	f := func(a, b Tuple) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
