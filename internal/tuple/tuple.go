package tuple

import (
	"hash/fnv"
	"strings"
)

// ID uniquely identifies one tuple *instance* in a dataspace. The paper
// attaches a unique tuple identifier to every asserted tuple so that
// ownership can be determined and debugging tools can track instances;
// application programs typically ignore it.
type ID uint64

// NoID is the identifier of a tuple that has not been asserted.
const NoID ID = 0

// ProcessID identifies a process in the process society. The zero value
// identifies "the environment" (tuples asserted from outside any process,
// e.g. initial dataspace contents).
type ProcessID uint64

// Environment is the pseudo-process that owns initial dataspace contents.
const Environment ProcessID = 0

// Tuple is an immutable finite sequence of values. The zero Tuple is the
// empty tuple.
type Tuple struct {
	fields []Value
}

// New builds a tuple from the given values. The slice is copied, so the
// caller may reuse it.
func New(fields ...Value) Tuple {
	cp := make([]Value, len(fields))
	copy(cp, fields)
	return Tuple{fields: cp}
}

// Make builds a tuple from native Go values via Of. It returns an error if
// any field has an unsupported type.
func Make(fields ...any) (Tuple, error) {
	vals := make([]Value, len(fields))
	for i, f := range fields {
		v, err := Of(f)
		if err != nil {
			return Tuple{}, err
		}
		vals[i] = v
	}
	return Tuple{fields: vals}, nil
}

// MustMake is Make but panics on unsupported field types; for tests and
// examples with statically-known literals.
func MustMake(fields ...any) Tuple {
	t, err := Make(fields...)
	if err != nil {
		panic(err)
	}
	return t
}

// Arity returns the number of fields.
func (t Tuple) Arity() int { return len(t.fields) }

// Field returns the i-th field. It panics if i is out of range, mirroring
// slice indexing.
func (t Tuple) Field(i int) Value { return t.fields[i] }

// Fields returns a copy of the field slice.
func (t Tuple) Fields() []Value {
	cp := make([]Value, len(t.fields))
	copy(cp, t.fields)
	return cp
}

// Equal reports field-wise equality (using Value.Equal, so 2 and 2.0 match).
func (t Tuple) Equal(u Tuple) bool {
	if len(t.fields) != len(u.fields) {
		return false
	}
	for i := range t.fields {
		if !t.fields[i].Equal(u.fields[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples first by arity, then lexicographically by field.
func (t Tuple) Compare(u Tuple) int {
	if d := len(t.fields) - len(u.fields); d != 0 {
		if d < 0 {
			return -1
		}
		return 1
	}
	for i := range t.fields {
		if c := t.fields[i].Compare(u.fields[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Hash returns a 64-bit content hash of the tuple, suitable for grouping
// identical tuples in multiset accounting. Values that are Equal hash
// equal (numeric values hash through their float64 representation).
func (t Tuple) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	for _, v := range t.fields {
		switch v.kind {
		case KindAtom:
			buf[0] = 'a'
			_, _ = h.Write(buf[:1])
			_, _ = h.Write([]byte(v.str))
		case KindString:
			buf[0] = 's'
			_, _ = h.Write(buf[:1])
			_, _ = h.Write([]byte(v.str))
		case KindBool:
			buf[0] = 'b'
			buf[1] = byte(v.num)
			_, _ = h.Write(buf[:2])
		case KindInt, KindFloat:
			// Hash through float64 so Int(2) and Float(2.0) collide,
			// consistent with Equal.
			n, _ := v.Numeric()
			bits := mathFloat64bits(n)
			buf[0] = 'n'
			for i := 0; i < 8; i++ {
				buf[1+i] = byte(bits >> (8 * i))
			}
			_, _ = h.Write(buf[:9])
		default:
			buf[0] = '?'
			_, _ = h.Write(buf[:1])
		}
		buf[0] = 0xFF // field separator
		_, _ = h.Write(buf[:1])
	}
	return h.Sum64()
}

// String renders the tuple in the paper's angle-bracket notation,
// e.g. <year, 87>.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range t.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte('>')
	return b.String()
}
