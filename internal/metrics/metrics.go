// Package metrics is the runtime observability layer: a low-overhead
// registry of atomic counters, gauges, and fixed-bucket histograms that the
// dataspace store, the transaction engine, and the consensus manager record
// into on their hot paths.
//
// Design constraints (see DESIGN.md §6):
//
//   - Compiled-in, always present: every Store owns a Registry, so callers
//     never branch on nil.
//   - Near-free when no observer is attached: the always-on instruments are
//     single atomic adds on cache-line-padded cells (per-shard counters are
//     striped by shard index, so a counter cell is contended exactly as much
//     as the shard lock next to it). Everything that needs a clock reading
//     or touches a shared histogram on a per-operation basis — transaction
//     latencies, footprint sizes, wakeup fan-out — is gated behind an
//     Observed flag that Snapshot consumers flip on.
//   - Lock-free recording: recording never blocks and is safe from any
//     goroutine; Snapshot reads are racy-but-atomic (each field is a single
//     atomic load; cross-field consistency is not promised while a workload
//     runs).
package metrics

import (
	"sync/atomic"
	"time"
)

// cell is a cache-line-padded counter, so striped counters on adjacent
// indexes do not false-share.
type cell struct {
	v atomic.Uint64
	_ [120]byte
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. waiter queue depth).
type Gauge struct{ v atomic.Int64 }

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-boundary histogram: counts[i] tallies observations
// v <= Bounds[i]; the final bucket is the overflow (+Inf) bucket. Boundaries
// are fixed at construction so Observe is a short linear scan plus three
// atomic adds — no locks, no allocation.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last = overflow
	count  atomic.Uint64
	sum    atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending boundaries.
func NewHistogram(bounds []uint64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"` // ascending; last bucket is +Inf
	Counts []uint64 `json:"counts"` // len(Bounds)+1
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// Mean returns the average observed value (0 when empty).
func (hs HistogramSnapshot) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return float64(hs.Sum) / float64(hs.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// LatencyBounds are the nanosecond boundaries of the latency histograms:
// 250ns, 500ns, 1µs, … doubling up to ~268ms, then +Inf.
var LatencyBounds = expBounds(250, 21)

// SizeBounds are the boundaries of the size histograms (footprint shard
// counts, wakeup fan-out, consensus community sizes): 0, 1, 2, 4, … 256.
var SizeBounds = []uint64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

func expBounds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base << uint(i)
	}
	return out
}

// TxnKind labels the operational type of a transaction for the per-kind
// counters, mirroring the paper's '→', '⇒', and '⇑' tags.
type TxnKind uint8

// Transaction kinds.
const (
	TxnImmediate TxnKind = iota
	TxnDelayed
	TxnConsensus
	numTxnKinds
)

// String names the kind.
func (k TxnKind) String() string {
	switch k {
	case TxnImmediate:
		return "immediate"
	case TxnDelayed:
		return "delayed"
	case TxnConsensus:
		return "consensus"
	default:
		return "invalid"
	}
}

// TxnCounters is the per-kind transaction activity snapshot.
type TxnCounters struct {
	Attempts uint64 `json:"attempts"` // executions (one per Immediate/Delayed evaluation or consensus firing attempt)
	Commits  uint64 `json:"commits"`  // successful executions
	Retries  uint64 `json:"retries"`  // extra under-lock re-evaluations (optimistic conflicts, aborted fires)
	Blocks   uint64 `json:"blocks"`   // times a process blocked (delayed wait, consensus offer)
}

// txnCells holds one kind's counters on separate cache lines.
type txnCells struct {
	attempts cell
	commits  cell
	retries  cell
	blocks   cell
}

// shardCells holds one shard's lock counters on separate cache lines.
type shardCells struct {
	readLocks  cell
	writeLocks cell
	keyLocks   cell
}

// ShardCounters is the per-shard activity snapshot.
type ShardCounters struct {
	ReadLocks  uint64 `json:"readLocks"`  // read-lock acquisitions
	WriteLocks uint64 `json:"writeLocks"` // write-lock acquisitions
	KeyLocks   uint64 `json:"keyLocks"`   // per-key latch acquisitions (commuting path)
}

// Registry is the per-store metrics registry. Construct with NewRegistry;
// the zero value is not usable.
type Registry struct {
	observed atomic.Bool

	shards []shardCells

	commits Counter // mutating store commits (== commit-hook invocations)

	keyCommits     Counter    // commits admitted on the per-key commuting path
	shardFallbacks Counter    // planned commits that fell back to shard locking
	coarseCommits  Counter    // unplanned commits applied under the full lock set
	groupBatch     *Histogram // commits applied per group-commit drain (always on)
	epochReads     Counter    // lock-free epoch snapshot reads
	epochRebuilds  Counter    // epoch snapshot rebuilds (cache misses)
	epochFallbacks Counter    // epoch reads invalidated by a concurrent commit

	txn        [numTxnKinds]txnCells
	txnLatency [numTxnKinds]*Histogram // ns per execution; gated on Observed

	footprintAdmit   [FootprintClasses]cell // executions per static footprint class
	footprintPlanned [FootprintClasses]cell // of those, how many the planner admitted

	footprint    *Histogram // shards write-locked per update; gated on Observed
	wakeupFanout *Histogram // waiters woken per mutating commit; gated on Observed
	waiterDepth  Gauge      // currently registered waiters

	subsLive           Gauge   // currently registered reactive subscriptions
	reactiveSignals    Counter // subscription candidates a commit's delta delivery inspected
	reactiveSuppressed Counter // candidates whose deltas filtered to nothing (wakeup suppressed)
	reactiveEvals      Counter // guard re-evaluations after a subscription fired
	reactiveHits       Counter // of those, driven by a concrete delta batch
	reactiveFallbacks  Counter // of those, full re-queries (not delta-safe, or overflow/spurious)

	idxPromotions Counter // secondary-index shape promotions (cold -> hot)
	idxDemotions  Counter // secondary-index shape demotions (write-heavy)
	idxFieldScans Counter // non-lead field scans (every ScanFields shard visit)
	idxScans      Counter // of those, served by a promoted field index
	idxArityScans Counter // of those, served by the full arity-scan fallback
	idxTuples     Counter // tuple candidates delivered by field scans

	consensusKicksSuppressed Counter // detector kicks elided by the relevance filter

	consensusRounds    Counter    // detector evaluation rounds
	consensusCommunity *Histogram // members per fired consensus set (always on; fires are rare)

	checkpointWrite *Histogram // ns per WriteCheckpoint (always on; rare)
	checkpointRead  *Histogram // ns per ReadCheckpoint (always on; rare)

	walAppends      Counter    // commit records appended to the WAL
	walAppendBytes  Counter    // frame bytes appended (header + payload)
	walSyncs        Counter    // fsync calls issued by the log
	walSyncCover    *Histogram // records made durable per fsync (group-commit amortization)
	walSegments     Counter    // segment rotations (new segment files opened)
	walRecovered    Counter    // records replayed into a store during recovery
	walDiscarded    Counter    // decoded-but-unusable records discarded at recovery (torn tail / version gap)
	walRecoveries   Counter    // completed Recover calls
	walRecoveryTime *Histogram // ns per Recover (always on; rare)
}

// NewRegistry returns a registry for a store with the given shard count.
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	r := &Registry{
		shards:             make([]shardCells, shards),
		groupBatch:         NewHistogram(SizeBounds),
		footprint:          NewHistogram(SizeBounds),
		wakeupFanout:       NewHistogram(SizeBounds),
		consensusCommunity: NewHistogram(SizeBounds),
		checkpointWrite:    NewHistogram(LatencyBounds),
		checkpointRead:     NewHistogram(LatencyBounds),
		walSyncCover:       NewHistogram(SizeBounds),
		walRecoveryTime:    NewHistogram(LatencyBounds),
	}
	for k := range r.txnLatency {
		r.txnLatency[k] = NewHistogram(LatencyBounds)
	}
	return r
}

// SetObserved attaches (or detaches) an observer: it enables the gated
// instruments — transaction latency, footprint, and wakeup fan-out
// histograms — which need clock readings or shared-cacheline updates per
// operation. Flip it on before the workload whose histograms you want;
// the always-on counters are unaffected.
func (r *Registry) SetObserved(on bool) { r.observed.Store(on) }

// Observed reports whether an observer is attached.
func (r *Registry) Observed() bool { return r.observed.Load() }

// --- recording (store) ---

// IncShardRead counts one read-lock acquisition of shard i.
func (r *Registry) IncShardRead(i uint32) { r.shards[i].readLocks.v.Add(1) }

// IncShardWrite counts one write-lock acquisition of shard i.
func (r *Registry) IncShardWrite(i uint32) { r.shards[i].writeLocks.v.Add(1) }

// IncCommits counts one mutating store commit.
func (r *Registry) IncCommits() { r.commits.Add(1) }

// Commits returns the mutating-commit count.
func (r *Registry) Commits() uint64 { return r.commits.Value() }

// IncShardKeyLocks counts n per-key latch acquisitions on shard i.
func (r *Registry) IncShardKeyLocks(i uint32, n int) { r.shards[i].keyLocks.v.Add(uint64(n)) }

// IncKeyCommit counts one commit admitted on the per-key commuting path.
func (r *Registry) IncKeyCommit() { r.keyCommits.Add(1) }

// IncShardFallback counts one planned commit that fell back to shard locks.
func (r *Registry) IncShardFallback() { r.shardFallbacks.Add(1) }

// IncCoarseCommit counts one unplanned mutating commit applied under the
// full (or env-assert) lock set. Every mutating store commit is exactly
// one of key / fallback / coarse — the audited-ladder invariant.
func (r *Registry) IncCoarseCommit() { r.coarseCommits.Add(1) }

// FootprintClasses is the number of static footprint classes
// (analysis/footprint.NumClasses; the packages are kept decoupled and a
// test asserts the constants and names agree).
const FootprintClasses = 4

// footprintClassNames mirrors footprint.Class.String() per index.
var footprintClassNames = [FootprintClasses]string{"unknown", "ground", "wildcard", "ground-keys"}

// IncFootprintAdmission counts one transaction execution admitted to
// planning with the given static footprint class, and whether the dynamic
// planner produced an exact plan (the commuting fast path's intake).
func (r *Registry) IncFootprintAdmission(class uint8, planned bool) {
	if class >= FootprintClasses {
		class = 0
	}
	r.footprintAdmit[class].v.Add(1)
	if planned {
		r.footprintPlanned[class].v.Add(1)
	}
}

// ObserveGroupBatch records the number of commits one group-commit drain
// applied (always on; one observation per drain, not per commit).
func (r *Registry) ObserveGroupBatch(n int) { r.groupBatch.Observe(uint64(n)) }

// IncEpochRead counts one lock-free epoch snapshot read.
func (r *Registry) IncEpochRead() { r.epochReads.Add(1) }

// IncEpochRebuild counts one epoch snapshot rebuild.
func (r *Registry) IncEpochRebuild() { r.epochRebuilds.Add(1) }

// IncEpochFallback counts one epoch read invalidated by a concurrent commit.
func (r *Registry) IncEpochFallback() { r.epochFallbacks.Add(1) }

// ObserveFootprint records the number of shards an update write-locked.
// Gated: call only when Observed.
func (r *Registry) ObserveFootprint(shards int) { r.footprint.Observe(uint64(shards)) }

// ObserveWakeupFanout records the number of waiters a commit woke.
// Gated: call only when Observed.
func (r *Registry) ObserveWakeupFanout(n int) { r.wakeupFanout.Observe(uint64(n)) }

// WaiterDepth is the gauge of currently registered waiters.
func (r *Registry) WaiterDepth() *Gauge { return &r.waiterDepth }

// SubscriptionsLive is the gauge of currently registered reactive
// subscriptions (delta-driven delayed waiters).
func (r *Registry) SubscriptionsLive() *Gauge { return &r.subsLive }

// IncReactiveSignal counts one subscription candidate inspected during a
// commit's delta delivery (whether or not it was ultimately woken).
func (r *Registry) IncReactiveSignal() { r.reactiveSignals.Add(1) }

// IncReactiveSuppressed counts one subscription candidate whose deltas all
// filtered to nothing — the wakeup the legacy path would have issued was
// suppressed at the publisher.
func (r *Registry) IncReactiveSuppressed() { r.reactiveSuppressed.Add(1) }

// IncReactiveEval counts one guard re-evaluation after a subscription
// fired. Every eval is exactly one of hit / fallback — the audited
// invariant.
func (r *Registry) IncReactiveEval() { r.reactiveEvals.Add(1) }

// IncReactiveHit counts one re-evaluation driven by a concrete delta batch.
func (r *Registry) IncReactiveHit() { r.reactiveHits.Add(1) }

// IncReactiveFallback counts one re-evaluation that fell back to a full
// re-query (guard not delta-safe, broad/spurious wakeup, or empty batch).
func (r *Registry) IncReactiveFallback() { r.reactiveFallbacks.Add(1) }

// IncIndexPromotion counts one secondary-index shape promotion.
func (r *Registry) IncIndexPromotion() { r.idxPromotions.Add(1) }

// IncIndexDemotion counts one secondary-index shape demotion.
func (r *Registry) IncIndexDemotion() { r.idxDemotions.Add(1) }

// AddFieldScans records one batch of non-lead field scans: indexed scans
// served by a promoted field index, arity scans that fell back to the full
// per-shard arity walk, and the tuple candidates the batch delivered.
// Every field scan is exactly one of indexed / arity — the audited-ladder
// invariant mirroring the commit-path counters.
func (r *Registry) AddFieldScans(indexed, arity, visited uint64) {
	if indexed+arity == 0 {
		return
	}
	r.idxFieldScans.Add(indexed + arity)
	if indexed > 0 {
		r.idxScans.Add(indexed)
	}
	if arity > 0 {
		r.idxArityScans.Add(arity)
	}
	if visited > 0 {
		r.idxTuples.Add(visited)
	}
}

// IncConsensusKickSuppressed counts one commit whose invalidation was
// recorded without kicking the detector: its buckets were provably outside
// every registered offer's import relevance.
func (r *Registry) IncConsensusKickSuppressed() { r.consensusKicksSuppressed.Add(1) }

// ObserveCheckpointWrite records a WriteCheckpoint duration.
func (r *Registry) ObserveCheckpointWrite(d time.Duration) {
	r.checkpointWrite.Observe(uint64(d.Nanoseconds()))
}

// ObserveCheckpointRead records a ReadCheckpoint duration.
func (r *Registry) ObserveCheckpointRead(d time.Duration) {
	r.checkpointRead.Observe(uint64(d.Nanoseconds()))
}

// --- recording (write-ahead log) ---

// IncWalAppend counts one commit record appended to the WAL, n frame bytes
// long. Safe on a nil receiver: the log may run without a registry.
func (r *Registry) IncWalAppend(n int) {
	if r == nil {
		return
	}
	r.walAppends.Add(1)
	r.walAppendBytes.Add(uint64(n))
}

// WalAppends returns the number of records appended to the WAL.
func (r *Registry) WalAppends() uint64 { return r.walAppends.Value() }

// ObserveWalSync counts one fsync covering n newly durable records.
func (r *Registry) ObserveWalSync(n uint64) {
	if r == nil {
		return
	}
	r.walSyncs.Add(1)
	r.walSyncCover.Observe(n)
}

// IncWalSegment counts one segment rotation.
func (r *Registry) IncWalSegment() {
	if r != nil {
		r.walSegments.Add(1)
	}
}

// ObserveWalRecovery records one completed recovery: replayed records,
// discarded records (torn tail + version gap), and the wall time.
func (r *Registry) ObserveWalRecovery(replayed, discarded uint64, d time.Duration) {
	if r == nil {
		return
	}
	r.walRecovered.Add(replayed)
	r.walDiscarded.Add(discarded)
	r.walRecoveries.Add(1)
	r.walRecoveryTime.Observe(uint64(d.Nanoseconds()))
}

// --- recording (transaction engine / consensus) ---

// IncTxnAttempt counts one execution of a kind-k transaction.
func (r *Registry) IncTxnAttempt(k TxnKind) { r.txn[k].attempts.v.Add(1) }

// IncTxnCommit counts one successful kind-k transaction.
func (r *Registry) IncTxnCommit(k TxnKind) { r.txn[k].commits.v.Add(1) }

// IncTxnRetry counts one extra under-lock re-evaluation.
func (r *Registry) IncTxnRetry(k TxnKind) { r.txn[k].retries.v.Add(1) }

// IncTxnBlock counts one process block.
func (r *Registry) IncTxnBlock(k TxnKind) { r.txn[k].blocks.v.Add(1) }

// TxnAttempts returns the kind's execution count.
func (r *Registry) TxnAttempts(k TxnKind) uint64 { return r.txn[k].attempts.v.Load() }

// ObserveTxnLatency records one execution's duration. Gated: call only
// when Observed.
func (r *Registry) ObserveTxnLatency(k TxnKind, d time.Duration) {
	r.txnLatency[k].Observe(uint64(d.Nanoseconds()))
}

// IncConsensusRound counts one detector evaluation round.
func (r *Registry) IncConsensusRound() { r.consensusRounds.Add(1) }

// ObserveCommunity records the size of a fired consensus set.
func (r *Registry) ObserveCommunity(n int) { r.consensusCommunity.Observe(uint64(n)) }

// --- snapshot ---

// Snapshot is a point-in-time copy of every instrument, suitable for JSON
// export (the expvar endpoint serves exactly this).
type Snapshot struct {
	Observed bool `json:"observed"`

	Shards       []ShardCounters `json:"shards"`
	StoreCommits uint64          `json:"storeCommits"`

	KeyCommits     uint64            `json:"keyCommits"`     // commits on the per-key commuting path
	ShardFallbacks uint64            `json:"shardFallbacks"` // planned commits demoted to shard locks
	CoarseCommits  uint64            `json:"coarseCommits"`  // unplanned commits under the full lock set
	GroupBatch     HistogramSnapshot `json:"groupBatch"`     // commits per group-commit drain
	EpochReads     uint64            `json:"epochReads"`     // lock-free snapshot reads
	EpochRebuilds  uint64            `json:"epochRebuilds"`  // snapshot rebuilds
	EpochFallbacks uint64            `json:"epochFallbacks"` // epoch reads that fell back to locking

	Txn        map[string]TxnCounters       `json:"txn"`
	TxnLatency map[string]HistogramSnapshot `json:"txnLatencyNs"`

	// FootprintAdmissions counts transaction executions per static
	// footprint class; FootprintPlanned is the subset the dynamic planner
	// admitted to the commuting fast path.
	FootprintAdmissions map[string]uint64 `json:"footprintAdmissions"`
	FootprintPlanned    map[string]uint64 `json:"footprintPlanned"`

	Footprint    HistogramSnapshot `json:"footprintShards"`
	WakeupFanout HistogramSnapshot `json:"wakeupFanout"`
	WaiterDepth  int64             `json:"waiterDepth"`

	ReactiveSubscriptions    int64  `json:"reactiveSubscriptions"`    // live subscription gauge
	ReactiveSignals          uint64 `json:"reactiveSignals"`          // subscription candidates inspected by commits
	ReactiveSuppressed       uint64 `json:"reactiveSuppressed"`       // candidates suppressed (no relevant delta)
	ReactiveEvals            uint64 `json:"reactiveWakeupEvals"`      // guard re-evaluations after a subscription fired
	ReactiveHits             uint64 `json:"reactiveDeltaHits"`        // of those, driven by a concrete delta batch
	ReactiveFallbacks        uint64 `json:"reactiveFallbacks"`        // of those, full re-queries
	ConsensusKicksSuppressed uint64 `json:"consensusKicksSuppressed"` // detector kicks elided by relevance filtering

	SecondaryPromotions    uint64 `json:"secondaryPromotions"`    // field-index shape promotions (cold -> hot)
	SecondaryDemotions     uint64 `json:"secondaryDemotions"`     // field-index shape demotions (write-heavy)
	SecondaryFieldScans    uint64 `json:"secondaryFieldScans"`    // non-lead field scans, any access path
	SecondaryIndexedScans  uint64 `json:"secondaryIndexedScans"`  // of those, served by a promoted field index
	SecondaryArityScans    uint64 `json:"secondaryArityScans"`    // of those, full per-shard arity walks
	SecondaryTuplesVisited uint64 `json:"secondaryTuplesVisited"` // tuple candidates delivered by field scans

	ConsensusRounds    uint64            `json:"consensusRounds"`
	ConsensusCommunity HistogramSnapshot `json:"consensusCommunity"`

	CheckpointWrite HistogramSnapshot `json:"checkpointWriteNs"`
	CheckpointRead  HistogramSnapshot `json:"checkpointReadNs"`

	WalAppends      uint64            `json:"walAppends"`     // commit records appended to the WAL
	WalAppendBytes  uint64            `json:"walAppendBytes"` // frame bytes appended
	WalSyncs        uint64            `json:"walSyncs"`       // fsync calls
	WalSyncCover    HistogramSnapshot `json:"walSyncCover"`   // records durable per fsync
	WalSegments     uint64            `json:"walSegments"`    // segment rotations
	WalRecovered    uint64            `json:"walRecovered"`   // records replayed during recovery
	WalDiscarded    uint64            `json:"walDiscarded"`   // records discarded during recovery
	WalRecoveries   uint64            `json:"walRecoveries"`  // completed recoveries
	WalRecoveryTime HistogramSnapshot `json:"walRecoveryNs"`  // ns per recovery
}

// TotalAttempts sums transaction attempts across kinds.
func (s Snapshot) TotalAttempts() uint64 {
	var n uint64
	for _, c := range s.Txn {
		n += c.Attempts
	}
	return n
}

// TotalCommits sums transaction commits across kinds.
func (s Snapshot) TotalCommits() uint64 {
	var n uint64
	for _, c := range s.Txn {
		n += c.Commits
	}
	return n
}

// ShardLockTotals sums lock acquisitions across shards.
func (s Snapshot) ShardLockTotals() (reads, writes uint64) {
	for _, sc := range s.Shards {
		reads += sc.ReadLocks
		writes += sc.WriteLocks
	}
	return reads, writes
}

// KeyLockTotal sums per-key latch acquisitions across shards.
func (s Snapshot) KeyLockTotal() uint64 {
	var n uint64
	for _, sc := range s.Shards {
		n += sc.KeyLocks
	}
	return n
}

// Snapshot copies every instrument.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Observed:                 r.observed.Load(),
		Shards:                   make([]ShardCounters, len(r.shards)),
		StoreCommits:             r.commits.Value(),
		KeyCommits:               r.keyCommits.Value(),
		ShardFallbacks:           r.shardFallbacks.Value(),
		CoarseCommits:            r.coarseCommits.Value(),
		GroupBatch:               r.groupBatch.snapshot(),
		EpochReads:               r.epochReads.Value(),
		EpochRebuilds:            r.epochRebuilds.Value(),
		EpochFallbacks:           r.epochFallbacks.Value(),
		Txn:                      make(map[string]TxnCounters, int(numTxnKinds)),
		TxnLatency:               make(map[string]HistogramSnapshot, int(numTxnKinds)),
		FootprintAdmissions:      make(map[string]uint64, FootprintClasses),
		FootprintPlanned:         make(map[string]uint64, FootprintClasses),
		Footprint:                r.footprint.snapshot(),
		WakeupFanout:             r.wakeupFanout.snapshot(),
		WaiterDepth:              r.waiterDepth.Value(),
		ReactiveSubscriptions:    r.subsLive.Value(),
		ReactiveSignals:          r.reactiveSignals.Value(),
		ReactiveSuppressed:       r.reactiveSuppressed.Value(),
		ReactiveEvals:            r.reactiveEvals.Value(),
		ReactiveHits:             r.reactiveHits.Value(),
		ReactiveFallbacks:        r.reactiveFallbacks.Value(),
		ConsensusKicksSuppressed: r.consensusKicksSuppressed.Value(),
		SecondaryPromotions:      r.idxPromotions.Value(),
		SecondaryDemotions:       r.idxDemotions.Value(),
		SecondaryFieldScans:      r.idxFieldScans.Value(),
		SecondaryIndexedScans:    r.idxScans.Value(),
		SecondaryArityScans:      r.idxArityScans.Value(),
		SecondaryTuplesVisited:   r.idxTuples.Value(),
		ConsensusRounds:          r.consensusRounds.Value(),
		ConsensusCommunity:       r.consensusCommunity.snapshot(),
		CheckpointWrite:          r.checkpointWrite.snapshot(),
		CheckpointRead:           r.checkpointRead.snapshot(),
		WalAppends:               r.walAppends.Value(),
		WalAppendBytes:           r.walAppendBytes.Value(),
		WalSyncs:                 r.walSyncs.Value(),
		WalSyncCover:             r.walSyncCover.snapshot(),
		WalSegments:              r.walSegments.Value(),
		WalRecovered:             r.walRecovered.Value(),
		WalDiscarded:             r.walDiscarded.Value(),
		WalRecoveries:            r.walRecoveries.Value(),
		WalRecoveryTime:          r.walRecoveryTime.snapshot(),
	}
	for i := 0; i < FootprintClasses; i++ {
		s.FootprintAdmissions[footprintClassNames[i]] = r.footprintAdmit[i].v.Load()
		s.FootprintPlanned[footprintClassNames[i]] = r.footprintPlanned[i].v.Load()
	}
	for i := range r.shards {
		s.Shards[i] = ShardCounters{
			ReadLocks:  r.shards[i].readLocks.v.Load(),
			WriteLocks: r.shards[i].writeLocks.v.Load(),
			KeyLocks:   r.shards[i].keyLocks.v.Load(),
		}
	}
	for k := TxnKind(0); k < numTxnKinds; k++ {
		s.Txn[k.String()] = TxnCounters{
			Attempts: r.txn[k].attempts.v.Load(),
			Commits:  r.txn[k].commits.v.Load(),
			Retries:  r.txn[k].retries.v.Load(),
			Blocks:   r.txn[k].blocks.v.Load(),
		}
		s.TxnLatency[k.String()] = r.txnLatency[k].snapshot()
	}
	return s
}
