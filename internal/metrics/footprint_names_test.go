package metrics

import (
	"testing"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
)

// The registry's per-class admission counters are indexed by
// footprint.Class and labeled by footprintClassNames; both must track the
// footprint package exactly, or Snapshot would mislabel (or drop)
// admissions after a class is added or renamed.
func TestFootprintClassNamesSync(t *testing.T) {
	if FootprintClasses != footprint.NumClasses {
		t.Fatalf("metrics.FootprintClasses = %d, footprint.NumClasses = %d",
			FootprintClasses, footprint.NumClasses)
	}
	seen := make(map[string]bool, FootprintClasses)
	for c := 0; c < FootprintClasses; c++ {
		want := footprint.Class(c).String()
		if footprintClassNames[c] != want {
			t.Errorf("class %d: metrics name %q, footprint name %q", c, footprintClassNames[c], want)
		}
		if seen[footprintClassNames[c]] {
			t.Errorf("duplicate class name %q", footprintClassNames[c])
		}
		seen[footprintClassNames[c]] = true
	}
}

// Out-of-range classes (a future footprint.Class the registry predates)
// must land in the "unknown" bucket rather than out of bounds.
func TestFootprintAdmissionOutOfRange(t *testing.T) {
	r := NewRegistry(1)
	r.SetObserved(true)
	r.IncFootprintAdmission(uint8(FootprintClasses)+3, true)
	snap := r.Snapshot()
	if snap.FootprintAdmissions["unknown"] != 1 || snap.FootprintPlanned["unknown"] != 1 {
		t.Errorf("out-of-range admission not folded into unknown: %+v / %+v",
			snap.FootprintAdmissions, snap.FootprintPlanned)
	}
}
