package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(2)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Errorf("gauge = %d, want 1", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{0, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 2, 0, 1} // (<=10)x2, (<=100)x2, (<=1000)x0, overflow x1
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 || s.Sum != 0+10+11+100+5000 {
		t.Errorf("count=%d sum=%d", s.Count, s.Sum)
	}
	if got := s.Mean(); got != float64(s.Sum)/5 {
		t.Errorf("mean = %v", got)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Error("empty mean must be 0")
	}
}

// Bucket counts must sum to the observation count under concurrency — the
// invariant the audit suite relies on when it equates histogram counts with
// attempt counters.
func TestHistogramConcurrentConsistency(t *testing.T) {
	h := NewHistogram(SizeBounds)
	const workers = 8
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64((w*per + i) % 300))
			}
		}(w)
	}
	wg.Wait()
	s := h.snapshot()
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != workers*per || s.Count != workers*per {
		t.Errorf("bucket sum %d, count %d, want %d", total, s.Count, workers*per)
	}
}

func TestTxnKindString(t *testing.T) {
	cases := map[TxnKind]string{
		TxnImmediate: "immediate",
		TxnDelayed:   "delayed",
		TxnConsensus: "consensus",
		numTxnKinds:  "invalid",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry(4)
	if r.Observed() {
		t.Error("fresh registry must be unobserved")
	}
	r.SetObserved(true)

	r.IncShardRead(0)
	r.IncShardRead(0)
	r.IncShardWrite(3)
	r.IncCommits()
	r.ObserveFootprint(2)
	r.ObserveWakeupFanout(5)
	r.WaiterDepth().Inc()
	r.IncTxnAttempt(TxnDelayed)
	r.IncTxnCommit(TxnDelayed)
	r.IncTxnRetry(TxnDelayed)
	r.IncTxnBlock(TxnDelayed)
	r.ObserveTxnLatency(TxnDelayed, 3*time.Microsecond)
	r.IncConsensusRound()
	r.ObserveCommunity(7)
	r.ObserveCheckpointWrite(time.Millisecond)
	r.ObserveCheckpointRead(2 * time.Millisecond)

	s := r.Snapshot()
	if !s.Observed {
		t.Error("snapshot not observed")
	}
	if len(s.Shards) != 4 || s.Shards[0].ReadLocks != 2 || s.Shards[3].WriteLocks != 1 {
		t.Errorf("shards = %+v", s.Shards)
	}
	if reads, writes := s.ShardLockTotals(); reads != 2 || writes != 1 {
		t.Errorf("lock totals = %d/%d", reads, writes)
	}
	if s.StoreCommits != 1 || r.Commits() != 1 {
		t.Errorf("commits = %d", s.StoreCommits)
	}
	d := s.Txn["delayed"]
	if d != (TxnCounters{Attempts: 1, Commits: 1, Retries: 1, Blocks: 1}) {
		t.Errorf("delayed = %+v", d)
	}
	if r.TxnAttempts(TxnDelayed) != 1 {
		t.Error("TxnAttempts")
	}
	if s.TotalAttempts() != 1 || s.TotalCommits() != 1 {
		t.Errorf("totals = %d/%d", s.TotalAttempts(), s.TotalCommits())
	}
	if s.TxnLatency["delayed"].Count != 1 || s.TxnLatency["delayed"].Sum != 3000 {
		t.Errorf("latency = %+v", s.TxnLatency["delayed"])
	}
	if s.Footprint.Count != 1 || s.Footprint.Sum != 2 {
		t.Errorf("footprint = %+v", s.Footprint)
	}
	if s.WakeupFanout.Sum != 5 || s.WaiterDepth != 1 {
		t.Errorf("fanout=%+v depth=%d", s.WakeupFanout, s.WaiterDepth)
	}
	if s.ConsensusRounds != 1 || s.ConsensusCommunity.Sum != 7 {
		t.Errorf("consensus = %d/%+v", s.ConsensusRounds, s.ConsensusCommunity)
	}
	if s.CheckpointWrite.Count != 1 || s.CheckpointRead.Sum != 2e6 {
		t.Errorf("checkpoints = %+v / %+v", s.CheckpointWrite, s.CheckpointRead)
	}

	// Snapshots are copies: later recording must not mutate them.
	r.IncCommits()
	r.ObserveFootprint(1)
	if s.StoreCommits != 1 || s.Footprint.Count != 1 {
		t.Error("snapshot aliases live registry state")
	}
}

func TestNewRegistryClampsShards(t *testing.T) {
	r := NewRegistry(0)
	if len(r.Snapshot().Shards) != 1 {
		t.Error("shard floor not applied")
	}
}

func TestLatencyBoundsAscending(t *testing.T) {
	for _, bs := range [][]uint64{LatencyBounds, SizeBounds} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("bounds not ascending at %d: %v", i, bs)
			}
		}
	}
}
