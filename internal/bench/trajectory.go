package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trajectory output: the machine-readable counterpart of the human tables,
// in the github-action-benchmark data.js shape — a top-level window object
// whose entries map holds, per suite, a list of runs; each run carries its
// commit id, a date, and a flat "benches" list of named measurements. One
// sdlbench invocation appends exactly one run, so a committed series of
// BENCH_<rev>.json files (or a merged data.js) is a performance trajectory
// over revisions that generic tooling can chart and diff.

// BenchEntry is one measured value in a run ("benches" element).
type BenchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Extra records the improvement direction for gating tools:
	// "biggerIsBetter" (throughput, batch sizes, admission percentages) or
	// "smallerIsBetter" (latencies, locks/op, counts).
	Extra string `json:"extra,omitempty"`
}

// BenchCommit identifies the revision a run measured.
type BenchCommit struct {
	ID        string `json:"id"`
	Timestamp string `json:"timestamp"`
}

// BenchRun is one sdlbench invocation over a revision.
type BenchRun struct {
	Commit  BenchCommit  `json:"commit"`
	Date    int64        `json:"date"` // unix millis
	Tool    string       `json:"tool"`
	Benches []BenchEntry `json:"benches"`
}

// BenchFile is the top-level data.js window object.
type BenchFile struct {
	LastUpdate int64                 `json:"lastUpdate"` // unix millis
	RepoURL    string                `json:"repoUrl"`
	Entries    map[string][]BenchRun `json:"entries"`
}

// BiggerIsBetter reports the improvement direction of a metric unit.
func BiggerIsBetter(unit string) bool {
	switch unit {
	case "kops/s", "ops/s", "txns/batch", "%":
		return true
	default: // ms, locks/op, retries, counts…
		return false
	}
}

// direction renders the Extra field for a unit.
func direction(unit string) string {
	if BiggerIsBetter(unit) {
		return "biggerIsBetter"
	}
	return "smallerIsBetter"
}

// Flatten converts experiment tables into the flat benches list. Names are
// "<id> <config> · <metric>", unique across the sweep.
func Flatten(tables []*Table) []BenchEntry {
	var out []BenchEntry
	for _, t := range tables {
		for _, row := range t.Rows {
			for _, m := range row.Metrics {
				out = append(out, BenchEntry{
					Name:  fmt.Sprintf("%s %s · %s", t.ID, row.Config, m.Name),
					Value: m.Value,
					Unit:  m.Unit,
					Extra: direction(m.Unit),
				})
			}
		}
	}
	return out
}

// WriteTrajectory writes one run over the given tables as a complete
// data.js window holding a single entry under the "sdlbench" suite.
func WriteTrajectory(w io.Writer, rev string, now time.Time, tables []*Table) error {
	run := BenchRun{
		Commit:  BenchCommit{ID: rev, Timestamp: now.UTC().Format(time.RFC3339)},
		Date:    now.UnixMilli(),
		Tool:    "sdlbench",
		Benches: Flatten(tables),
	}
	file := BenchFile{
		LastUpdate: now.UnixMilli(),
		RepoURL:    "https://github.com/sdl-lang/sdl",
		Entries:    map[string][]BenchRun{"sdlbench": {run}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// ReadTrajectory parses a data.js window object written by WriteTrajectory
// (or merged by external tooling) and returns the most recent run of the
// "sdlbench" suite.
func ReadTrajectory(r io.Reader) (BenchRun, error) {
	var file BenchFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return BenchRun{}, err
	}
	runs := file.Entries["sdlbench"]
	if len(runs) == 0 {
		return BenchRun{}, fmt.Errorf("bench: no sdlbench runs in trajectory file")
	}
	latest := runs[0]
	for _, run := range runs[1:] {
		if run.Date > latest.Date {
			latest = run
		}
	}
	return latest, nil
}
