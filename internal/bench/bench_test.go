package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestTableWrite(t *testing.T) {
	tbl := &Table{
		ID:    "EX",
		Title: "demo",
		Note:  "claim",
		Rows: []Row{
			{Config: "n=1", Metrics: []Metric{Ms("a", 1500*time.Microsecond), Count("b", 3, "x")}},
			{Config: "n=200", Metrics: []Metric{Ms("a", 2*time.Millisecond)}},
		},
	}
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== EX: demo ==", "paper: claim", "a (ms)", "b (x)", "1.500", "n=200"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Each experiment runs at its smallest configuration to verify the harness
// end to end (correctness checks are built into the experiment functions).

func TestE1Smoke(t *testing.T) {
	tbl, err := E1ArraySum(ctxT(t), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || len(tbl.Rows[0].Metrics) != 3 {
		t.Errorf("rows = %+v", tbl.Rows)
	}
}

func TestE2Smoke(t *testing.T) {
	tbl, err := E2PropertyList(ctxT(t), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	// Search must spawn one process per hop (L of them for the tail).
	var procs float64
	for _, m := range tbl.Rows[0].Metrics {
		if m.Name == "Search procs" {
			procs = m.Value
		}
	}
	if procs != 8 {
		t.Errorf("search procs = %v, want 8", procs)
	}
}

func TestE3Smoke(t *testing.T) {
	if _, err := E3SortConsensus(ctxT(t), []int{6}); err != nil {
		t.Fatal(err)
	}
}

func TestE4Smoke(t *testing.T) {
	if _, err := E4RegionLabel(ctxT(t), []int{6}); err != nil {
		t.Fatal(err)
	}
}

func TestE5ShapeBoundedViewWins(t *testing.T) {
	tbl, err := E5ViewScoping(ctxT(t), []int{20000})
	if err != nil {
		t.Fatal(err)
	}
	var speedup float64
	for _, m := range tbl.Rows[0].Metrics {
		if m.Name == "speedup" {
			speedup = m.Value
		}
	}
	// The paper's claim: the view bounds the scan. With 20k background
	// tuples the bounded view must be decisively faster.
	if speedup < 3 {
		t.Errorf("speedup = %.2f, want >= 3", speedup)
	}
}

func TestE6Smoke(t *testing.T) {
	if _, err := E6ConsensusScale(ctxT(t), []int{2, 8}); err != nil {
		t.Fatal(err)
	}
}

func TestE7Smoke(t *testing.T) {
	if _, err := E7LindaVsSDL(ctxT(t), []int{2}); err != nil {
		t.Fatal(err)
	}
}

func TestE8Smoke(t *testing.T) {
	tbl, err := E8SocietyScale(ctxT(t), []int{200})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Errorf("rows = %+v", tbl.Rows)
	}
}

func TestE9Smoke(t *testing.T) {
	if _, err := E9ConcurrencyControl(ctxT(t), []int{4}); err != nil {
		t.Fatal(err)
	}
}

func TestE10ShapeKeyedBeatsBroad(t *testing.T) {
	tbl, err := E10WakeupIndex(ctxT(t), []int{300})
	if err != nil {
		t.Fatal(err)
	}
	var keyedWake, broadWake float64
	for _, m := range tbl.Rows[0].Metrics {
		switch m.Name {
		case "keyed wakeups":
			keyedWake = m.Value
		case "broad wakeups":
			broadWake = m.Value
		}
	}
	// Keyed wakeups must not balloon with unrelated commits; broad mode
	// re-evaluates waiters on every noise commit.
	if broadWake < 10*keyedWake {
		t.Errorf("keyed=%v broad=%v: expected broad ≫ keyed", keyedWake, broadWake)
	}
}

func TestE12Smoke(t *testing.T) {
	tbl, err := E12ShardScaling(ctxT(t), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	// Three shard counts × (RMW throughput + lock count) + three Sum3 times.
	if len(tbl.Rows) != 1 || len(tbl.Rows[0].Metrics) != 9 {
		t.Errorf("rows = %+v", tbl.Rows)
	}
	// The keyed RMW workload must lock at most ~one shard per op at every
	// count — group commit can drain several commits under one
	// acquisition, so values slightly below 1 are the mechanism working,
	// while values above ~1 would mean footprints widened.
	for _, m := range tbl.Rows[0].Metrics {
		if strings.HasPrefix(m.Name, "wlocks") && (m.Value <= 0 || m.Value > 1.5) {
			t.Errorf("%s = %v locks/op, want (0, ~1]", m.Name, m.Value)
		}
	}
}

func TestE11ShapePlannerWins(t *testing.T) {
	tbl, err := E11JoinPlanner(ctxT(t), []int{5000})
	if err != nil {
		t.Fatal(err)
	}
	var written, planned float64
	for _, m := range tbl.Rows[0].Metrics {
		switch m.Name {
		case "written order":
			written = m.Value
		case "planned":
			planned = m.Value
		}
	}
	if written < 5*planned {
		t.Errorf("planner speedup too small: written=%.1f planned=%.1f us/txn", written, planned)
	}
}

func TestE16ShapeReactiveBeatsRequery(t *testing.T) {
	tbl, err := E16ReactiveWakeups(ctxT(t), []int{200})
	if err != nil {
		t.Fatal(err)
	}
	var reactiveEvals, requeryEvals, suppressed float64
	for _, m := range tbl.Rows[0].Metrics {
		switch m.Name {
		case "reactive evals":
			reactiveEvals = m.Value
		case "requery evals":
			requeryEvals = m.Value
		case "suppressed":
			suppressed = m.Value
		}
	}
	// The noise commits share the waiters' index bucket, so the re-query
	// baseline re-evaluates blocked guards on every one; the reactive path
	// suppresses them at the publisher and re-evaluates each waiter only
	// for the delta that satisfies it.
	if requeryEvals < 10*reactiveEvals {
		t.Errorf("reactive=%v requery=%v evals: expected requery ≫ reactive",
			reactiveEvals, requeryEvals)
	}
	if suppressed == 0 {
		t.Error("no suppressed wakeups recorded: the delta filters never engaged")
	}
}
