package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/arraysum"
	"github.com/sdl-lang/sdl/internal/consensus"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/linda"
	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/proplist"
	"github.com/sdl-lang/sdl/internal/regionlabel"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/view"
	"github.com/sdl-lang/sdl/internal/wal"
	"github.com/sdl-lang/sdl/internal/workload"
)

const seed = 1988 // the paper's year, used as the global workload seed

func newRT(mode txn.Mode) *process.Runtime {
	return process.NewRuntime(txn.New(dataspace.New(), mode), nil)
}

func closeRT(rt *process.Runtime) {
	rt.Shutdown()
	rt.Consensus().Close()
}

// E1ArraySum compares the three §3.1 summation programs.
func E1ArraySum(ctx context.Context, sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "array summation: Sum1 (consensus phases) vs Sum2 (delayed) vs Sum3 (replication)",
		Note:  `"We find the third solution preferable … minimal control constraints"`,
	}
	type variant struct {
		name string
		run  func(context.Context, *process.Runtime, int, int64) (int64, error)
	}
	variants := []variant{
		{"Sum1", arraysum.RunSum1},
		{"Sum2", arraysum.RunSum2},
		{"Sum3", arraysum.RunSum3},
	}
	for _, n := range sizes {
		row := Row{Config: fmt.Sprintf("n=%d", n)}
		_, want := workload.Array(n, seed)
		for _, v := range variants {
			rt := newRT(txn.Coarse)
			var got int64
			d, err := timeIt(func() error {
				var err error
				got, err = v.run(ctx, rt, n, seed)
				return err
			})
			closeRT(rt)
			if err != nil {
				return nil, fmt.Errorf("E1 %s n=%d: %w", v.name, n, err)
			}
			if got != want {
				return nil, fmt.Errorf("E1 %s n=%d: sum %d, want %d", v.name, n, got, want)
			}
			row.Metrics = append(row.Metrics, Ms(v.name, d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E2PropertyList compares Search (process-per-hop traversal) against Find
// (content-addressable lookup) for the last property of the list.
func E2PropertyList(ctx context.Context, lengths []int) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "property list: Search (simulated recursion) vs Find (content-addressable)",
		Note:  `"It is unlikely the programmer would simulate the recursion when the language permits one to address data by contents"`,
	}
	for _, l := range lengths {
		nodes := workload.PropertyList(l, seed)
		target := nodes[l-1] // worst case: tail of the list
		row := Row{Config: fmt.Sprintf("L=%d", l)}

		for _, variant := range []string{"Search", "Find"} {
			rt := newRT(txn.Coarse)
			workload.LoadPropertyList(rt.Engine().Store(), nodes)
			var def *process.Definition
			var args []tuple.Value
			if variant == "Search" {
				def = proplist.SearchDef()
				args = []tuple.Value{tuple.Int(nodes[0].ID), tuple.Atom(target.Name)}
			} else {
				def = proplist.FindDef()
				args = []tuple.Value{tuple.Atom(target.Name)}
			}
			if err := rt.Define(def); err != nil {
				closeRT(rt)
				return nil, err
			}
			d, err := timeIt(func() error {
				if _, err := rt.Spawn(def.Name, args...); err != nil {
					return err
				}
				return rt.WaitCtx(ctx)
			})
			if err == nil {
				if errs := rt.Errors(); len(errs) > 0 {
					err = errs[0]
				}
			}
			if err == nil {
				val, found, present := proplist.Result(rt.Engine().Store(), target.Name)
				if !present || !found || val != target.Value {
					err = fmt.Errorf("wrong result %d/%v/%v", val, found, present)
				}
			}
			spawned := rt.SpawnCount()
			closeRT(rt)
			if err != nil {
				return nil, fmt.Errorf("E2 %s L=%d: %w", variant, l, err)
			}
			row.Metrics = append(row.Metrics, Ms(variant, d))
			if variant == "Search" {
				row.Metrics = append(row.Metrics, Count("Search procs", float64(spawned), "procs"))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E3SortConsensus measures the distributed sort with consensus-detected
// termination.
func E3SortConsensus(ctx context.Context, lengths []int) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "property-list sort with consensus termination",
		Note:  `"the consensus transaction … specifies the termination of a distributed computation"`,
	}
	for _, l := range lengths {
		nodes := workload.PropertyList(l, seed)
		rt := newRT(txn.Coarse)
		d, err := timeIt(func() error {
			return proplist.RunSort(ctx, rt, nodes)
		})
		if err == nil {
			if _, verr := proplist.Values(rt.Engine().Store(), l); verr != nil {
				err = verr
			}
		}
		fires := rt.Consensus().Fires()
		closeRT(rt)
		if err != nil {
			return nil, fmt.Errorf("E3 L=%d: %w", l, err)
		}
		t.Rows = append(t.Rows, Row{
			Config: fmt.Sprintf("L=%d", l),
			Metrics: []Metric{
				Ms("sort", d),
				Count("consensus fires", float64(fires), "fires"),
			},
		})
	}
	return t, nil
}

// E4RegionLabel compares the worker and community labeling models.
func E4RegionLabel(ctx context.Context, sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "region labeling: worker model vs community model",
		Note:  `"labeled regions are not available … until the entire program completes" (worker); the community model signals per-region completion`,
	}
	const cut = 100
	for _, w := range sizes {
		im := workload.GenImage(w, w, 3, seed)
		ref := workload.ReferenceLabels(im, cut)
		row := Row{Config: fmt.Sprintf("%dx%d (%d regions)", w, w, workload.RegionCount(ref))}

		rtW := newRT(txn.Coarse)
		resW, err := regionlabel.RunWorker(ctx, rtW, im, cut)
		closeRT(rtW)
		if err != nil {
			return nil, fmt.Errorf("E4 worker %d: %w", w, err)
		}
		rtC := newRT(txn.Coarse)
		resC, err := regionlabel.RunCommunity(ctx, rtC, im, cut)
		closeRT(rtC)
		if err != nil {
			return nil, fmt.Errorf("E4 community %d: %w", w, err)
		}
		for p := range ref {
			if resW.Labels[p] != ref[p] || resC.Labels[p] != ref[p] {
				return nil, fmt.Errorf("E4 %d: labeling mismatch at pixel %d", w, p)
			}
		}
		row.Metrics = append(row.Metrics,
			Ms("worker total", resW.Total),
			Ms("community total", resC.Total),
			Ms("worker first-region", resW.FirstRegion),
			Ms("community first-region", resC.FirstRegion),
		)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E5ViewScoping measures transaction latency with and without a
// lead-bounded view while the dataspace fills with irrelevant tuples.
func E5ViewScoping(_ context.Context, backgroundSizes []int) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "view-bounded transaction scope vs dataspace size",
		Note:  `"the view also provides bounds on the scope of the transactions which, in turn, reduce the transaction execution time"`,
	}
	const workSet = 64
	const reps = 200
	restricted := view.New(
		view.Union(view.Pat(pattern.P(pattern.C(tuple.Atom("work")), pattern.W()))),
		view.Everything(),
	)
	// The query's leading field is a variable, so without a view the scan
	// covers the whole arity-2 population.
	query := pattern.Q(pattern.P(pattern.V("tag"), pattern.V("v"))).
		Where(expr.Eq(expr.V("tag"), expr.Const(tuple.Atom("work"))))

	for _, bg := range backgroundSizes {
		s := dataspace.New()
		e := txn.New(s, txn.Coarse)
		for i := 0; i < workSet; i++ {
			s.Assert(tuple.Environment, tuple.New(tuple.Atom("work"), tuple.Int(int64(i))))
		}
		for i := 0; i < bg; i++ {
			s.Assert(tuple.Environment, tuple.New(tuple.Atom(fmt.Sprintf("noise%d", i%997)), tuple.Int(int64(i))))
		}
		measure := func(v view.View) (time.Duration, error) {
			return timeIt(func() error {
				for i := 0; i < reps; i++ {
					res, err := e.Immediate(txn.Request{Proc: 1, View: v, Query: query})
					if err != nil {
						return err
					}
					if !res.OK {
						return fmt.Errorf("query failed")
					}
				}
				return nil
			})
		}
		full, err := measure(view.Universal())
		if err != nil {
			return nil, fmt.Errorf("E5 full bg=%d: %w", bg, err)
		}
		bounded, err := measure(restricted)
		if err != nil {
			return nil, fmt.Errorf("E5 view bg=%d: %w", bg, err)
		}
		t.Rows = append(t.Rows, Row{
			Config: fmt.Sprintf("|D|=%d", bg+workSet),
			Metrics: []Metric{
				{Name: "full view", Value: float64(full.Microseconds()) / reps, Unit: "us/txn"},
				{Name: "bounded view", Value: float64(bounded.Microseconds()) / reps, Unit: "us/txn"},
				{Name: "speedup", Value: float64(full) / float64(bounded), Unit: "x"},
			},
		})
	}
	return t, nil
}

// E6ConsensusScale measures the time to detect and fire an all-process
// consensus as the society grows.
func E6ConsensusScale(ctx context.Context, sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "consensus (quiescence) detection vs society size",
		Note:  `"Determination that consensus has been reached is very similar to the quiescence detection problem"`,
	}
	for _, p := range sizes {
		s := dataspace.New()
		e := txn.New(s, txn.Coarse)
		m := consensus.NewManager(e)
		s.Assert(tuple.Environment, tuple.New(tuple.Atom("shared"), tuple.Int(1)))
		for i := 1; i <= p; i++ {
			m.Register(tuple.ProcessID(i), view.Universal(), nil)
		}
		var wg sync.WaitGroup
		var firstErr error
		var mu sync.Mutex
		d, err := timeIt(func() error {
			for i := 1; i <= p; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, err := m.Offer(ctx, txn.Request{
						Proc:  tuple.ProcessID(i),
						View:  view.Universal(),
						Query: pattern.Query{Quant: pattern.Exists},
					})
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}(i)
			}
			wg.Wait()
			return firstErr
		})
		m.Close()
		if err != nil {
			return nil, fmt.Errorf("E6 p=%d: %w", p, err)
		}
		snap := s.Metrics().Snapshot()
		t.Rows = append(t.Rows, Row{
			Config: fmt.Sprintf("P=%d", p),
			Metrics: []Metric{
				Ms("barrier", d),
				Count("detect rounds", float64(snap.ConsensusRounds), "rounds"),
				Count("community", snap.ConsensusCommunity.Mean(), "procs"),
			},
		})
	}
	return t, nil
}

// E7LindaVsSDL compares compound read-modify-write throughput: Linda's
// in/out composition against one SDL transaction, under contention.
func E7LindaVsSDL(ctx context.Context, workerCounts []int) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Linda in/out composition vs one SDL transaction (counter RMW)",
		Note:  `"Linda provides processes with very simple dataspace access primitives (read, assert, and retract one tuple at a time)"`,
	}
	const opsPerWorker = 500
	ctr := tuple.Atom("counter")
	for _, workers := range workerCounts {
		total := int64(workers * opsPerWorker)

		// Linda: In (blocks/retracts) then Out.
		sp := linda.NewSpace()
		sp.Out(tuple.New(ctr, tuple.Int(0)))
		dLinda, err := timeIt(func() error {
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					tmpl := linda.T().Actual(ctr).Formal("n")
					for i := 0; i < opsPerWorker; i++ {
						tp, err := sp.In(ctx, tmpl)
						if err != nil {
							errCh <- err
							return
						}
						n, _ := tp.Field(1).AsInt()
						sp.Out(tuple.New(ctr, tuple.Int(n+1)))
					}
				}()
			}
			wg.Wait()
			close(errCh)
			return <-errCh
		})
		if err != nil {
			return nil, fmt.Errorf("E7 linda w=%d: %w", workers, err)
		}
		if got, ok := sp.Inp(linda.T().Actual(ctr).Formal("n")); !ok {
			return nil, fmt.Errorf("E7 linda: counter missing")
		} else if n, _ := got.Field(1).AsInt(); n != total {
			return nil, fmt.Errorf("E7 linda: counter %d, want %d", n, total)
		}

		// SDL: one atomic transaction per increment.
		s := dataspace.New()
		e := txn.New(s, txn.Coarse)
		s.Assert(tuple.Environment, tuple.New(ctr, tuple.Int(0)))
		req := txn.Request{
			Proc:  1,
			View:  view.Universal(),
			Query: pattern.Q(pattern.R(pattern.C(ctr), pattern.V("n"))),
			Asserts: []pattern.Pattern{pattern.P(pattern.C(ctr),
				pattern.E(expr.Add(expr.V("n"), expr.Const(tuple.Int(1)))))},
		}
		dSDL, err := timeIt(func() error {
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPerWorker; i++ {
						if _, err := e.Delayed(ctx, req); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			return <-errCh
		})
		if err != nil {
			return nil, fmt.Errorf("E7 sdl w=%d: %w", workers, err)
		}
		// Compound atomicity: transfer between two of 16 account tuples.
		// Linda must retract both (acquiring in account order to avoid
		// deadlock) and re-assert both — four primitives and a locking
		// discipline; SDL is one two-pattern transaction.
		const accounts = 16
		acct := tuple.Atom("acct")
		spT := linda.NewSpace()
		for i := 0; i < accounts; i++ {
			spT.Out(tuple.New(acct, tuple.Int(int64(i)), tuple.Int(100)))
		}
		dLindaT, err := timeIt(func() error {
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < opsPerWorker; i++ {
						a := int64((w + i) % accounts)
						b := int64((w + i + 1 + i%7) % accounts)
						if a == b {
							continue
						}
						lo, hi := a, b
						if lo > hi {
							lo, hi = hi, lo
						}
						t1, err := spT.In(ctx, linda.T().Actual(acct).Actual(tuple.Int(lo)).Formal("x"))
						if err != nil {
							errCh <- err
							return
						}
						t2, err := spT.In(ctx, linda.T().Actual(acct).Actual(tuple.Int(hi)).Formal("y"))
						if err != nil {
							errCh <- err
							return
						}
						v1, _ := t1.Field(2).AsInt()
						v2, _ := t2.Field(2).AsInt()
						if lo == a {
							v1, v2 = v1-1, v2+1
						} else {
							v1, v2 = v1+1, v2-1
						}
						spT.Out(tuple.New(acct, tuple.Int(lo), tuple.Int(v1)))
						spT.Out(tuple.New(acct, tuple.Int(hi), tuple.Int(v2)))
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			return <-errCh
		})
		if err != nil {
			return nil, fmt.Errorf("E7 linda transfer w=%d: %w", workers, err)
		}

		sT := dataspace.New()
		eT := txn.New(sT, txn.Coarse)
		for i := 0; i < accounts; i++ {
			sT.Assert(tuple.Environment, tuple.New(acct, tuple.Int(int64(i)), tuple.Int(100)))
		}
		dSDLT, err := timeIt(func() error {
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < opsPerWorker; i++ {
						a := int64((w + i) % accounts)
						b := int64((w + i + 1 + i%7) % accounts)
						if a == b {
							continue
						}
						_, err := eT.Delayed(ctx, txn.Request{
							Proc: tuple.ProcessID(w + 1),
							View: view.Universal(),
							Query: pattern.Q(
								pattern.R(pattern.C(acct), pattern.C(tuple.Int(a)), pattern.V("x")),
								pattern.R(pattern.C(acct), pattern.C(tuple.Int(b)), pattern.V("y")),
							),
							Asserts: []pattern.Pattern{
								pattern.P(pattern.C(acct), pattern.C(tuple.Int(a)),
									pattern.E(expr.Sub(expr.V("x"), expr.Const(tuple.Int(1))))),
								pattern.P(pattern.C(acct), pattern.C(tuple.Int(b)),
									pattern.E(expr.Add(expr.V("y"), expr.Const(tuple.Int(1))))),
							},
						})
						if err != nil {
							errCh <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			return <-errCh
		})
		if err != nil {
			return nil, fmt.Errorf("E7 sdl transfer w=%d: %w", workers, err)
		}
		// Conservation check on both kernels.
		var lindaSum, sdlSum int64
		for i := 0; i < accounts; i++ {
			tp, ok := spT.Inp(linda.T().Actual(acct).Actual(tuple.Int(int64(i))).Formal("v"))
			if !ok {
				return nil, fmt.Errorf("E7 linda transfer: account %d missing", i)
			}
			v, _ := tp.Field(2).AsInt()
			lindaSum += v
		}
		sT.Snapshot(func(r dataspace.Reader) {
			r.Each(func(inst dataspace.Instance) bool {
				v, _ := inst.Tuple.Field(2).AsInt()
				sdlSum += v
				return true
			})
		})
		if lindaSum != accounts*100 || sdlSum != accounts*100 {
			return nil, fmt.Errorf("E7 transfer: money not conserved (linda=%d sdl=%d)", lindaSum, sdlSum)
		}

		t.Rows = append(t.Rows, Row{
			Config: fmt.Sprintf("workers=%d ops=%d", workers, total),
			Metrics: []Metric{
				{Name: "Linda ctr", Value: float64(total) / dLinda.Seconds() / 1000, Unit: "kops/s"},
				{Name: "SDL ctr", Value: float64(total) / dSDL.Seconds() / 1000, Unit: "kops/s"},
				{Name: "Linda xfer", Value: float64(total) / dLindaT.Seconds() / 1000, Unit: "kops/s"},
				{Name: "SDL xfer", Value: float64(total) / dSDLT.Seconds() / 1000, Unit: "kops/s"},
			},
		})
	}
	return t, nil
}

// E8SocietyScale measures spawning and waking large societies of blocked
// processes — the paper's "many thousands of concurrent processes".
func E8SocietyScale(ctx context.Context, sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "society scale: blocked-process count vs spawn time, wake time, memory",
		Note:  `"programs involving many thousands of concurrent processes"`,
	}
	for _, p := range sizes {
		rt := newRT(txn.Coarse)
		// Waiter(i): one delayed transaction on its own key.
		if err := rt.Define(&process.Definition{
			Name:   "Waiter",
			Params: []string{"i"},
			Body: []process.Stmt{process.Transact{
				Kind:  process.Delayed,
				Query: pattern.Q(pattern.R(pattern.V("i"), pattern.C(tuple.Atom("go")))),
				Asserts: []pattern.Pattern{pattern.P(
					pattern.V("i"), pattern.C(tuple.Atom("done")))},
			}},
		}); err != nil {
			closeRT(rt)
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		dSpawn, err := timeIt(func() error {
			for i := 0; i < p; i++ {
				if _, err := rt.Spawn("Waiter", tuple.Int(int64(i))); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			closeRT(rt)
			return nil, fmt.Errorf("E8 spawn p=%d: %w", p, err)
		}
		// Let the society block.
		for rt.Running() != int64(p) {
			runtime.Gosched()
		}
		runtime.ReadMemStats(&after)
		perProc := float64(after.HeapAlloc-before.HeapAlloc) / float64(p)

		s := rt.Engine().Store()
		dWake, err := timeIt(func() error {
			batch := make([]tuple.Tuple, 0, p)
			for i := 0; i < p; i++ {
				batch = append(batch, tuple.New(tuple.Int(int64(i)), tuple.Atom("go")))
			}
			s.Assert(tuple.Environment, batch...)
			return rt.WaitCtx(ctx)
		})
		if err != nil {
			closeRT(rt)
			return nil, fmt.Errorf("E8 wake p=%d: %w", p, err)
		}
		if s.Len() != p {
			closeRT(rt)
			return nil, fmt.Errorf("E8 p=%d: %d done tuples, want %d", p, s.Len(), p)
		}
		closeRT(rt)
		t.Rows = append(t.Rows, Row{
			Config: fmt.Sprintf("P=%d", p),
			Metrics: []Metric{
				Ms("spawn all", dSpawn),
				Ms("wake+drain all", dWake),
				{Name: "heap/proc", Value: perProc / 1024, Unit: "KiB"},
			},
		})
	}
	return t, nil
}

// E10WakeupIndex is the ablation for DESIGN.md decision 2: interest-keyed
// wakeups vs waking every blocked transaction on every commit. P processes
// block on distinct keys while a writer commits `noise` unrelated tuples;
// keyed wakeups should leave the waiters asleep (zero spurious
// re-evaluations), while broad wakeups re-evaluate all P waiters on every
// commit.
func E10WakeupIndex(ctx context.Context, waiterCounts []int) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "ablation: interest-keyed vs broad delayed-transaction wakeups",
		Note:  "design decision 2 in DESIGN.md",
	}
	const noise = 300
	for _, p := range waiterCounts {
		row := Row{Config: fmt.Sprintf("waiters=%d noise=%d", p, noise)}
		for _, broad := range []bool{false, true} {
			s := dataspace.New()
			s.SetBroadWakeups(broad)
			// Both variants observed, so the gated fan-out histogram records
			// and the timing handicap (one clock-free histogram update per
			// commit) is identical on each side of the ablation.
			s.Metrics().SetObserved(true)
			e := txn.New(s, txn.Coarse)
			var wg sync.WaitGroup
			errCh := make(chan error, p)
			for i := 0; i < p; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, err := e.Delayed(ctx, txn.Request{
						Proc:  tuple.ProcessID(i + 1),
						View:  view.Universal(),
						Query: pattern.Q(pattern.R(pattern.C(tuple.Int(int64(i))), pattern.C(tuple.Atom("go")))),
					})
					if err != nil {
						errCh <- err
					}
				}(i)
			}
			// Let every waiter run its first (failing) attempt and block.
			for int(e.Stats().Attempts) < p {
				runtime.Gosched()
			}
			d, err := timeIt(func() error {
				for i := 0; i < noise; i++ {
					s.Assert(tuple.Environment, tuple.New(tuple.Atom("noise"), tuple.Int(int64(i))))
					// Let woken waiters re-register between commits, as
					// they would under real interleaving.
					runtime.Gosched()
				}
				// Release everyone and drain.
				batch := make([]tuple.Tuple, 0, p)
				for i := 0; i < p; i++ {
					batch = append(batch, tuple.New(tuple.Int(int64(i)), tuple.Atom("go")))
				}
				s.Assert(tuple.Environment, batch...)
				wg.Wait()
				close(errCh)
				return <-errCh
			})
			if err != nil {
				return nil, fmt.Errorf("E10 broad=%v p=%d: %w", broad, p, err)
			}
			name := "keyed"
			if broad {
				name = "broad"
			}
			st := e.Stats()
			row.Metrics = append(row.Metrics,
				Ms(name, d),
				Count(name+" wakeups", float64(st.Wakeups), "wakeups"),
				Count(name+" fan-out", s.Metrics().Snapshot().WakeupFanout.Mean(), "waiters"),
			)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E11JoinPlanner is the ablation for the query matcher's boundness-based
// join planner: a region-labeling-style propagation query written in an
// unfavourable order (the unbounded label scan first, the parameter-led
// pattern last) is issued against stores of growing size, with the planner
// on (PlanAuto) and off (PlanWritten).
func E11JoinPlanner(_ context.Context, sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "ablation: join planner (boundness ordering) on a propagation query",
		Note:  "the 'sophisticated language implementation' §3.1 calls for",
	}
	const reps = 100
	label := tuple.Atom("label")
	for _, n := range sizes {
		s := dataspace.New()
		e := txn.New(s, txn.Coarse)
		for i := int64(0); i < int64(n); i++ {
			s.Assert(tuple.Environment,
				tuple.New(tuple.Int(i), label, tuple.Int(i)),
				tuple.New(tuple.Int(i), tuple.Int((i+1)%int64(n))),
			)
		}
		// Propagation for pixel r, written label-scan-first: find a
		// neighbour q of r whose label exceeds r's.
		mkQuery := func(plan pattern.Plan) pattern.Query {
			q := pattern.Q(
				pattern.P(pattern.V("q"), pattern.C(label), pattern.V("lq")),
				pattern.P(pattern.V("r"), pattern.C(label), pattern.V("lr")).
					Guarded(expr.Lt(expr.V("lr"), expr.V("lq"))),
				pattern.P(pattern.V("r"), pattern.V("q")),
			)
			q.Plan = plan
			return q
		}
		row := Row{Config: fmt.Sprintf("n=%d", n)}
		for _, plan := range []pattern.Plan{pattern.PlanWritten, pattern.PlanAuto} {
			req := txn.Request{
				Proc:  1,
				View:  view.Universal(),
				Env:   expr.Env{"r": tuple.Int(3)},
				Query: mkQuery(plan),
			}
			d, err := timeIt(func() error {
				for i := 0; i < reps; i++ {
					res, err := e.Immediate(req)
					if err != nil {
						return err
					}
					if !res.OK {
						return fmt.Errorf("propagation query failed")
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("E11 plan=%d n=%d: %w", plan, n, err)
			}
			name := "written order"
			if plan == pattern.PlanAuto {
				name = "planned"
			}
			row.Metrics = append(row.Metrics, Metric{
				Name: name, Value: float64(d.Microseconds()) / reps, Unit: "us/txn"})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// shardedRMW runs the E12 keyed read-modify-write workload over a loaded
// property list: `workers` goroutines each issue `opsPerWorker` Immediate
// transactions, every one naming its node by ID. The constant lead keys
// the transaction's footprint to one shard, so transactions on different
// nodes hold different shard locks and commit in parallel. Returns the
// wall time; verifies that every increment landed exactly once.
func shardedRMW(e *txn.Engine, s *dataspace.Store, nodes []workload.PropertyNode,
	workers, opsPerWorker int) (time.Duration, error) {
	var initSum int64
	for _, nd := range nodes {
		initSum += nd.Value
	}
	n := len(nodes)
	d, err := timeIt(func() error {
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPerWorker; i++ {
					id := int64((w*opsPerWorker+i)%n) + 1
					_, err := e.Immediate(txn.Request{
						Proc: tuple.ProcessID(w + 1),
						View: view.Universal(),
						Query: pattern.Q(pattern.R(
							pattern.C(tuple.Int(id)), pattern.V("p"), pattern.V("v"), pattern.V("x"))),
						Asserts: []pattern.Pattern{pattern.P(
							pattern.C(tuple.Int(id)), pattern.V("p"),
							pattern.E(expr.Add(expr.V("v"), expr.Const(tuple.Int(1)))),
							pattern.V("x"))},
					})
					if err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		return <-errCh
	})
	if err != nil {
		return 0, err
	}
	var gotSum int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			v, _ := inst.Tuple.Field(2).AsInt()
			gotSum += v
			return true
		})
	})
	total := int64(workers * opsPerWorker)
	if gotSum != initSum+total {
		return 0, fmt.Errorf("value sum %d, want %d (lost or duplicated increments)",
			gotSum, initSum+total)
	}
	return d, nil
}

// ShardedRMW runs one configuration of the E12 keyed RMW workload (for the
// per-shard-count testing.B benchmarks).
func ShardedRMW(shards, listLen int) error {
	nodes := workload.PropertyList(listLen, seed)
	s := dataspace.New(dataspace.WithShards(shards))
	workload.LoadPropertyList(s, nodes)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	_, err := shardedRMW(txn.New(s, txn.Coarse), s, nodes, workers, 1000)
	return err
}

// E12ShardScaling measures the sharded store at shard counts 1, 4, and 16
// on two workloads: a keyed read-modify-write sweep over the §3.2 property
// list (every transaction names its node, so its footprint is one shard
// and disjoint transactions commit in parallel), and the §3.1 Sum3
// replication program end to end. Shard-count gains require hardware
// parallelism: with GOMAXPROCS=1 the counts should tie to within noise,
// while at GOMAXPROCS>=4 the keyed workload scales with the shard count
// until it saturates the cores.
func E12ShardScaling(ctx context.Context, sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "sharded dataspace: shard count vs throughput (keyed RMW + Sum3)",
		Note:  `"large-scale concurrency … a large number of processes making progress simultaneously" — per-shard locks let disjoint-footprint transactions commit in parallel`,
	}
	shardCounts := []int{1, 4, 16}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const opsPerWorker = 2000
	for _, n := range sizes {
		row := Row{Config: fmt.Sprintf("n=%d workers=%d", n, workers)}
		nodes := workload.PropertyList(n, seed)
		_, want := workload.Array(n, seed)
		for _, sc := range shardCounts {
			s := dataspace.New(dataspace.WithShards(sc))
			workload.LoadPropertyList(s, nodes)
			d, err := shardedRMW(txn.New(s, txn.Coarse), s, nodes, workers, opsPerWorker)
			if err != nil {
				return nil, fmt.Errorf("E12 rmw shards=%d n=%d: %w", sc, n, err)
			}
			total := float64(workers * opsPerWorker)
			// Always-on shard counters (the gated histograms stay off so the
			// timing matches unobserved production runs).
			_, writeLocks := s.Metrics().Snapshot().ShardLockTotals()
			row.Metrics = append(row.Metrics,
				Metric{
					Name:  fmt.Sprintf("RMW s=%d", sc),
					Value: total / d.Seconds() / 1000,
					Unit:  "kops/s",
				},
				Metric{
					Name:  fmt.Sprintf("wlocks s=%d", sc),
					Value: float64(writeLocks) / total,
					Unit:  "locks/op",
				})
		}
		for _, sc := range shardCounts {
			rt := process.NewRuntime(
				txn.New(dataspace.New(dataspace.WithShards(sc)), txn.Coarse), nil)
			var got int64
			d, err := timeIt(func() error {
				var err error
				got, err = arraysum.RunSum3(ctx, rt, n, seed)
				return err
			})
			closeRT(rt)
			if err != nil {
				return nil, fmt.Errorf("E12 Sum3 shards=%d n=%d: %w", sc, n, err)
			}
			if got != want {
				return nil, fmt.Errorf("E12 Sum3 shards=%d n=%d: sum %d, want %d", sc, n, got, want)
			}
			row.Metrics = append(row.Metrics, Ms(fmt.Sprintf("Sum3 s=%d", sc), d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E9ConcurrencyControl compares the coarse and optimistic engines on a
// read-mostly workload (the ablation DESIGN.md calls out).
func E9ConcurrencyControl(_ context.Context, workerCounts []int) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "ablation: coarse lock vs optimistic validation (95% read workload)",
		Note:  "design decision 1 in DESIGN.md",
	}
	const opsPerWorker = 5000
	for _, workers := range workerCounts {
		row := Row{Config: fmt.Sprintf("workers=%d", workers)}
		for _, mode := range []txn.Mode{txn.Coarse, txn.Optimistic} {
			s := dataspace.New()
			e := txn.New(s, mode)
			for i := 0; i < 512; i++ {
				s.Assert(tuple.Environment, tuple.New(tuple.Atom("item"), tuple.Int(int64(i))))
			}
			readReq := txn.Request{
				Proc: 1,
				View: view.Universal(),
				Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("item")), pattern.V("v"))).
					Where(expr.Ge(expr.V("v"), expr.Const(tuple.Int(400)))),
			}
			writeReq := txn.Request{
				Proc:  1,
				View:  view.Universal(),
				Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("item")), pattern.V("v"))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("item")),
					pattern.V("v"))},
			}
			d, err := timeIt(func() error {
				var wg sync.WaitGroup
				errCh := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < opsPerWorker; i++ {
							req := readReq
							if i%20 == 0 { // 5% writes
								req = writeReq
							}
							if _, err := e.Immediate(req); err != nil {
								errCh <- err
								return
							}
						}
					}(w)
				}
				wg.Wait()
				close(errCh)
				return <-errCh
			})
			if err != nil {
				return nil, fmt.Errorf("E9 %v w=%d: %w", mode, workers, err)
			}
			total := float64(workers * opsPerWorker)
			snap := s.Metrics().Snapshot()
			row.Metrics = append(row.Metrics,
				Metric{Name: mode.String(), Value: total / d.Seconds() / 1000, Unit: "kops/s"},
				Count(mode.String()+" retries",
					float64(snap.Txn[metrics.TxnImmediate.String()].Retries), "retries"))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E14DurableUpserts measures the durability tax: the E13 disjoint-key
// upsert workload with the write-ahead log attached under each fsync
// policy, against the volatile baseline. SyncCommit pays one fsync per
// transaction; SyncBatch shares one fsync across the whole group that was
// waiting, so its throughput recovers most of the volatile rate — the
// batch/commit ratio is the experiment's headline. SyncInterval bounds
// loss by wall-clock and never blocks a commit. The syncs/op column shows
// the amortization directly.
func E14DurableUpserts(_ context.Context, opsPerWorkerCounts []int) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "durable upserts: WAL fsync policies vs volatile baseline (disjoint-key upserts)",
		Note:  "durable-before-visible: a commit's waiters and consensus signals fire only after its log record is fsynced; group commit shares one fsync across concurrent commits",
	}
	const workers, keysPerWorker, shards = 32, 8, 8
	// fsync parks an OS thread, not a core: on a single-P runtime the
	// blocked P is handed off only when sysmon notices the syscall, which
	// idles the CPU for most of each fsync and leaves no group behind the
	// leader. Two Ps let committers pile up while the leader syncs.
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	modes := []struct {
		name string
		sync wal.SyncMode
		wal  bool
	}{
		{"volatile", 0, false},
		{"interval", wal.SyncInterval, true},
		{"batch", wal.SyncBatch, true},
		{"commit", wal.SyncCommit, true},
	}
	for _, opw := range opsPerWorkerCounts {
		row := Row{Config: fmt.Sprintf("ops/worker=%d workers=%d shards=%d", opw, workers, shards)}
		rate := map[string]float64{}
		for _, m := range modes {
			s := dataspace.New(dataspace.WithShards(shards))
			if m.wal {
				dir, err := os.MkdirTemp("", "sdl-bench-wal-")
				if err != nil {
					return nil, err
				}
				wlog, err := wal.Open(dir, wal.Options{Sync: m.sync, Metrics: s.Metrics()})
				if err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
				if _, err := wlog.Recover(s); err != nil {
					wlog.Close()
					os.RemoveAll(dir)
					return nil, err
				}
				s.SetDurable(wlog)
				defer func() {
					wlog.Close()
					os.RemoveAll(dir)
				}()
			}
			d, err := commutingUpserts(txn.New(s, txn.Coarse), s, keysPerWorker, workers, opw)
			if err != nil {
				return nil, fmt.Errorf("E14 %s opw=%d: %w", m.name, opw, err)
			}
			total := float64(workers * opw)
			rate[m.name] = total / d.Seconds() / 1000
			row.Metrics = append(row.Metrics,
				Metric{Name: m.name, Value: rate[m.name], Unit: "kops/s"})
			if m.wal {
				snap := s.Metrics().Snapshot()
				row.Metrics = append(row.Metrics,
					Metric{Name: m.name + " syncs", Value: float64(snap.WalSyncs) / total, Unit: "syncs/op"})
			}
		}
		if rate["commit"] > 0 {
			row.Metrics = append(row.Metrics,
				Metric{Name: "batch/commit", Value: rate["batch"] / rate["commit"], Unit: "x"})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// commutingUpserts runs the E13 workload: workers upserting counters whose
// keys are disjoint per worker — every pair of concurrent transactions
// commutes, so an ideal commit path admits all of them in parallel. Each op
// is exists v: <k, ?v>! => <k, ?v + 1>; the final value sum must equal the
// op count (the lost-increment invariant).
func commutingUpserts(e *txn.Engine, s *dataspace.Store, keysPerWorker, workers, opsPerWorker int) (time.Duration, error) {
	nKeys := keysPerWorker * workers
	for k := 0; k < nKeys; k++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(int64(k)), tuple.Int(0)))
	}
	d, err := timeIt(func() error {
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := int64(w * keysPerWorker)
				for i := 0; i < opsPerWorker; i++ {
					id := base + int64(i%keysPerWorker)
					_, err := e.Immediate(txn.Request{
						Proc:  tuple.ProcessID(w + 1),
						View:  view.Universal(),
						Query: pattern.Q(pattern.R(pattern.C(tuple.Int(id)), pattern.V("v"))),
						Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Int(id)),
							pattern.E(expr.Add(expr.V("v"), expr.Const(tuple.Int(1)))))},
					})
					if err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		return <-errCh
	})
	if err != nil {
		return 0, err
	}
	var gotSum int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			v, _ := inst.Tuple.Field(1).AsInt()
			gotSum += v
			return true
		})
	})
	if total := int64(workers * opsPerWorker); gotSum != total {
		return 0, fmt.Errorf("value sum %d, want %d (lost or duplicated increments)", gotSum, total)
	}
	return d, nil
}

// restrictedUpserts runs the E15 workload: the E13 disjoint-key upserts,
// but every request carries a pure view-restricted pattern view (the shape
// a compiled `import <*, *>; export <*, *>` process issues) and the given
// static footprint class. With footprint.Unknown the admission gate in
// txn.footprintKeys rejects planning — a restricted view without a
// compiler-refined class forces the full lock set — so every commit is
// coarse. With footprint.Ground (what the interprocedural refiner proves
// for the same process) the same requests take the key-latch path. The
// lost-increment invariant holds either way. The caller seeds the counters
// (seedCounters) so its commit accounting covers only the upserts.
func restrictedUpserts(e *txn.Engine, s *dataspace.Store, keysPerWorker, workers, opsPerWorker int, fp footprint.Class) (time.Duration, error) {
	pairs := view.Union(view.Pat(pattern.P(pattern.W(), pattern.W())))
	restricted := view.New(pairs, pairs)
	d, err := timeIt(func() error {
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := int64(w * keysPerWorker)
				for i := 0; i < opsPerWorker; i++ {
					id := base + int64(i%keysPerWorker)
					_, err := e.Immediate(txn.Request{
						Proc:      tuple.ProcessID(w + 1),
						View:      restricted,
						Footprint: fp,
						Query:     pattern.Q(pattern.R(pattern.C(tuple.Int(id)), pattern.V("v"))),
						Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Int(id)),
							pattern.E(expr.Add(expr.V("v"), expr.Const(tuple.Int(1)))))},
					})
					if err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		return <-errCh
	})
	if err != nil {
		return 0, err
	}
	var gotSum int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			v, _ := inst.Tuple.Field(1).AsInt()
			gotSum += v
			return true
		})
	})
	if total := int64(workers * opsPerWorker); gotSum != total {
		return 0, fmt.Errorf("value sum %d, want %d (lost or duplicated increments)", gotSum, total)
	}
	return d, nil
}

// seedCounters asserts <k, 0> for each of n counter keys.
func seedCounters(s *dataspace.Store, n int) {
	for k := 0; k < n; k++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Int(int64(k)), tuple.Int(0)))
	}
}

// E15RefinedAdmission measures what the interprocedural refiner buys at the
// commit path: the same view-restricted disjoint-key upsert workload run
// with the footprint class an unrefined compile leaves (Unknown — every
// commit serializes on the full lock set) against the class the dataflow
// pass proves (Ground — commits take the key-latch/group-commit path). The
// headline column is fast-path admission: the percentage of store commits
// that went through per-key latches, 0% unrefined and 100% refined by
// construction — the gated trajectory metric make analyze-bench records.
// Throughput rides along; like E13 it needs hardware parallelism to
// separate, while the admission percentages are deterministic on any host.
func E15RefinedAdmission(_ context.Context, keysPerWorkerCounts []int) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "interprocedural footprint refinement: fast-path admission under view restriction (unrefined vs refined)",
		Note:  `a restricted view forces the full lock set unless the compiler proves the footprint Ground — the dataflow refiner widens the commuting fast path to view-restricted processes`,
	}
	variants := []struct {
		name string
		fp   footprint.Class
	}{
		{"unrefined", footprint.Unknown},
		{"refined", footprint.Ground},
	}
	const shards = 8
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const opsPerWorker = 2000
	for _, kpw := range keysPerWorkerCounts {
		row := Row{Config: fmt.Sprintf("keys/worker=%d workers=%d", kpw, workers)}
		for _, v := range variants {
			s := dataspace.New(dataspace.WithShards(shards), dataspace.WithCommuting(true))
			seedCounters(s, kpw*workers)
			before := s.Metrics().Snapshot()
			d, err := restrictedUpserts(txn.New(s, txn.Coarse), s, kpw, workers, opsPerWorker, v.fp)
			if err != nil {
				return nil, fmt.Errorf("E15 %s kpw=%d: %w", v.name, kpw, err)
			}
			total := float64(workers * opsPerWorker)
			after := s.Metrics().Snapshot()
			commits := after.StoreCommits - before.StoreCommits
			keyed := after.KeyCommits - before.KeyCommits
			fastPath := 0.0
			if commits > 0 {
				fastPath = 100 * float64(keyed) / float64(commits)
			}
			switch v.fp {
			case footprint.Ground:
				if keyed != uint64(total) {
					return nil, fmt.Errorf("E15 refined kpw=%d: %d key-path commits, want %d (refinement not admitted)", kpw, keyed, int(total))
				}
			default:
				if keyed != 0 {
					return nil, fmt.Errorf("E15 unrefined kpw=%d: %d key-path commits, want 0 (admission gate leaked)", kpw, keyed)
				}
			}
			row.Metrics = append(row.Metrics,
				Metric{Name: v.name + " fastpath", Value: fastPath, Unit: "%"},
				Metric{Name: v.name, Value: total / d.Seconds() / 1000, Unit: "kops/s"})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RefinedUpserts runs one configuration of the E15 workload (for the
// testing.B benchmark): view-restricted disjoint-key upserts carrying the
// footprint class the interprocedural refiner proves (Ground, the key-latch
// path) or the unrefined default (Unknown, the full lock set).
func RefinedUpserts(refined bool) error {
	fp := footprint.Unknown
	if refined {
		fp = footprint.Ground
	}
	s := dataspace.New(dataspace.WithShards(8), dataspace.WithCommuting(true))
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	seedCounters(s, 8*workers)
	_, err := restrictedUpserts(txn.New(s, txn.Coarse), s, 8, workers, 1000, fp)
	return err
}

// CommutingUpserts runs one configuration of the E13 workload (for the
// testing.B benchmark): disjoint-key upserts with the commutativity-aware
// commit path on or off.
func CommutingUpserts(shards int, commuting bool) error {
	s := dataspace.New(dataspace.WithShards(shards), dataspace.WithCommuting(commuting))
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	_, err := commutingUpserts(txn.New(s, txn.Coarse), s, 8, workers, 1000)
	return err
}

// E13CommutingUpserts is the commit-path ablation: key-level latches plus
// group commit (the commutativity-aware path) against the shard-mutex
// baseline, on disjoint-key contended upserts where every transaction pair
// commutes. The new always-on instruments are surfaced as columns: write
// locks per op (the group-commit amortization), key-latch acquisitions per
// op, and the mean group-commit batch size. Like E12, throughput gains
// over the baseline require hardware parallelism (GOMAXPROCS >= 4);
// single-core runs should tie to within noise while still exercising the
// full latch/batch machinery.
func E13CommutingUpserts(_ context.Context, keysPerWorkerCounts []int) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "commutativity-aware commit path: key latches + group commit vs shard mutex (disjoint-key upserts)",
		Note:  `PAPERS.md "full parallelism": operations on disjoint tuples commute, so an ideal commit path admits them all concurrently — the shard mutex serializes them, the key-latch path does not`,
	}
	shardCounts := []int{1, 8}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const opsPerWorker = 2000
	for _, kpw := range keysPerWorkerCounts {
		row := Row{Config: fmt.Sprintf("keys/worker=%d workers=%d", kpw, workers)}
		for _, sc := range shardCounts {
			for _, commuting := range []bool{false, true} {
				s := dataspace.New(dataspace.WithShards(sc), dataspace.WithCommuting(commuting))
				d, err := commutingUpserts(txn.New(s, txn.Coarse), s, kpw, workers, opsPerWorker)
				if err != nil {
					return nil, fmt.Errorf("E13 commuting=%v shards=%d kpw=%d: %w", commuting, sc, kpw, err)
				}
				total := float64(workers * opsPerWorker)
				snap := s.Metrics().Snapshot()
				_, writeLocks := snap.ShardLockTotals()
				label := fmt.Sprintf("mutex s=%d", sc)
				if commuting {
					label = fmt.Sprintf("commute s=%d", sc)
				}
				row.Metrics = append(row.Metrics,
					Metric{Name: label, Value: total / d.Seconds() / 1000, Unit: "kops/s"},
					Metric{Name: label + " wlocks", Value: float64(writeLocks) / total, Unit: "locks/op"})
				if commuting {
					batchMean := 0.0
					if snap.GroupBatch.Count > 0 {
						batchMean = float64(snap.GroupBatch.Sum) / float64(snap.GroupBatch.Count)
					}
					row.Metrics = append(row.Metrics,
						Metric{Name: label + " klocks", Value: float64(snap.KeyLockTotal()) / total, Unit: "locks/op"},
						Metric{Name: label + " batch", Value: batchMean, Unit: "txns/batch"})
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// reactiveWakeupCell runs one E16 configuration against an assembled
// store/engine pair: p delayed transactions block on the delta-safe
// constant guards <job, i, 1> — all hashing to the ONE (arity, lead)
// index bucket — then a writer streams noise commits into that same
// bucket that match none of them, and finally releases every waiter in a
// single batched commit.
func reactiveWakeupCell(ctx context.Context, s *dataspace.Store, e *txn.Engine, p, noise int) (time.Duration, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Delayed(ctx, txn.Request{
				Proc: tuple.ProcessID(i + 1),
				View: view.Universal(),
				Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("job")),
					pattern.C(tuple.Int(int64(i))), pattern.C(tuple.Int(1)))),
			})
			if err != nil {
				errCh <- err
			}
		}(i)
	}
	// Let every waiter run its first (failing) attempt and block.
	for int(e.Stats().Attempts) < p {
		runtime.Gosched()
	}
	return timeIt(func() error {
		for i := 0; i < noise; i++ {
			// Same bucket (arity 3, lead `job`), never a match: the keyed
			// wakeup index cannot filter these, only the delta layer can.
			s.Assert(tuple.Environment,
				tuple.New(tuple.Atom("job"), tuple.Int(int64(1000+i)), tuple.Int(0)))
			runtime.Gosched()
		}
		// Release everyone in one commit and drain.
		batch := make([]tuple.Tuple, 0, p)
		for i := 0; i < p; i++ {
			batch = append(batch, tuple.New(tuple.Atom("job"), tuple.Int(int64(i)), tuple.Int(1)))
		}
		s.Assert(tuple.Environment, batch...)
		wg.Wait()
		close(errCh)
		return <-errCh
	})
}

// E16ReactiveWakeups is the ablation for the reactive delta-wakeup layer
// (DESIGN.md section 11). Interest-keyed wakeups (E10) cannot tell the
// noise and release commits apart — they share the waiters' index bucket —
// so the full re-query baseline re-evaluates all P blocked guards on every
// noise commit. The reactive path compiles each guard into a delta filter,
// suppresses the unmatched wakeups at the publisher, and re-evaluates each
// waiter exactly once, against the delta that satisfies it.
func E16ReactiveWakeups(ctx context.Context, waiterCounts []int) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "ablation: reactive delta-driven wakeups vs full guard re-query (shared-bucket noise)",
		Note:  "subscription lifecycle and delta-safety rules in DESIGN.md section 11",
	}
	const noise = 300
	for _, p := range waiterCounts {
		row := Row{Config: fmt.Sprintf("waiters=%d noise=%d", p, noise)}
		for _, reactive := range []bool{true, false} {
			s := dataspace.New(dataspace.WithReactive(reactive))
			// Both variants observed, so the gated histograms record and the
			// timing handicap is identical on each side of the ablation.
			s.Metrics().SetObserved(true)
			e := txn.New(s, txn.Coarse)
			d, err := reactiveWakeupCell(ctx, s, e, p, noise)
			if err != nil {
				return nil, fmt.Errorf("E16 reactive=%v p=%d: %w", reactive, p, err)
			}
			name := "requery"
			if reactive {
				name = "reactive"
			}
			st := e.Stats()
			snap := s.Metrics().Snapshot()
			row.Metrics = append(row.Metrics,
				Ms(name, d),
				Count(name+" evals", float64(st.Wakeups), "wakeups"))
			if reactive {
				row.Metrics = append(row.Metrics,
					Count("suppressed", float64(snap.ReactiveSuppressed), "wakeups"),
					Count("delta hits", float64(snap.ReactiveHits), "evals"))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ReactiveWakeups runs one configuration of the E16 workload (for the
// testing.B benchmark): P blocked delta-safe guards under same-bucket
// noise, with the reactive delta path on or off.
func ReactiveWakeups(ctx context.Context, waiters int, reactive bool) error {
	s := dataspace.New(dataspace.WithReactive(reactive))
	_, err := reactiveWakeupCell(ctx, s, txn.New(s, txn.Coarse), waiters, 300)
	return err
}

// secondaryLoad fills the store with the E17 dataset: n arity-3 records
// <i, rec, i%groups> — every lead unique, so the (arity, lead) index never
// narrows a lookup and a wildcard-lead query degrades to a full arity scan
// — plus one probe row <p, link, p> per group for the join leg.
func secondaryLoad(s *dataspace.Store, n, groups int) {
	rec, link := tuple.Atom("rec"), tuple.Atom("link")
	batch := make([]tuple.Tuple, 0, 4096)
	flush := func() {
		if len(batch) > 0 {
			s.Assert(tuple.Environment, batch...)
			batch = batch[:0]
		}
	}
	for i := 0; i < n; i++ {
		batch = append(batch, tuple.New(
			tuple.Int(int64(i)), rec, tuple.Int(int64(i%groups))))
		if len(batch) == cap(batch) {
			flush()
		}
	}
	for p := 0; p < groups; p++ {
		batch = append(batch, tuple.New(
			tuple.Int(int64(p)), link, tuple.Int(int64(p%groups))))
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
}

// secondaryLookups issues reps rounds of the two E17 queries. The point
// lookup <?x, rec, G> constrains only non-lead fields, so the ablated
// store walks every arity-3 tuple while the indexed store reads one
// (arity, pos-2, G) bucket. The join's first leg <P, link, ?g> is
// lead-keyed and binds ?g; its second leg <?y, rec, ?g> is selective only
// through the runtime-bound ?g field, exercising both the bound-variable
// field selector and the estimator-driven join order (the selective leg
// must run second — ?g is unbound before the probe row binds it).
// secondaryLookups runs the measured phase: per rep, one ∀ group fetch
// addressed by the non-lead group field and one ∀ probe join whose second
// leg the planner orders by field selectivity. Universal quantification
// keeps the visited-candidate counters deterministic — an ∃ lookup stops
// at the first hit, which floats with shard/bucket iteration order and
// would make the benchgate series flap run to run.
func secondaryLookups(e *txn.Engine, reps, groups int) error {
	rec, link := tuple.Atom("rec"), tuple.Atom("link")
	for i := 0; i < reps; i++ {
		g := int64(i % groups)
		res, err := e.Immediate(txn.Request{
			Proc: 1,
			View: view.Universal(),
			Query: pattern.QAll(pattern.P(
				pattern.V("x"), pattern.C(rec), pattern.C(tuple.Int(g)))),
		})
		if err != nil {
			return err
		}
		if !res.OK || len(res.Solutions) == 0 {
			return fmt.Errorf("lookup g=%d missed", g)
		}
		res, err = e.Immediate(txn.Request{
			Proc: 1,
			View: view.Universal(),
			Query: pattern.QAll(
				pattern.P(pattern.C(tuple.Int(g)), pattern.C(link), pattern.V("g")),
				pattern.P(pattern.V("y"), pattern.C(rec), pattern.V("g")),
			),
		})
		if err != nil {
			return err
		}
		if !res.OK || len(res.Solutions) == 0 {
			return fmt.Errorf("join p=%d missed", g)
		}
	}
	return nil
}

// E17SecondaryIndex is the ablation for the adaptive secondary field
// indexes and the selectivity-guided join planner they feed (DESIGN.md
// section 12). Both arms run the same wildcard-lead lookups and probe
// joins after an identical warm-up; the indexed arm's warm-up pushes the
// (arity-3, pos) shapes past the promotion bar and builds their buckets,
// so the measured loop sees the steady state of each configuration. The
// tuples/txn column is the visited-candidate count the matcher actually
// enumerated — the quantity the index exists to shrink.
func E17SecondaryIndex(_ context.Context, sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "ablation: adaptive secondary field indexes + selectivity join planning vs full arity scans",
		Note:  "per-(arity, field, value) buckets promoted by scan pressure; the planner orders joins by estimated candidates visited (DESIGN.md section 12)",
	}
	const (
		groups   = 1024
		scanReps = 50
		warmReps = 4
	)
	for _, n := range sizes {
		row := Row{Config: fmt.Sprintf("n=%d groups=%d", n, groups)}
		for _, secondary := range []bool{false, true} {
			s := dataspace.New(dataspace.WithShards(8), dataspace.WithSecondaryIndex(secondary))
			e := txn.New(s, txn.Coarse)
			secondaryLoad(s, n, groups)
			if err := secondaryLookups(e, warmReps, groups); err != nil {
				return nil, fmt.Errorf("E17 warm secondary=%v n=%d: %w", secondary, n, err)
			}
			// The indexed arm's per-txn time is three orders of magnitude
			// smaller, so it gets proportionally more reps — the reported
			// metrics are per transaction, so the arms stay comparable
			// while both measurement windows are long enough to read.
			reps := scanReps
			if secondary {
				reps = 40 * scanReps
			}
			before := s.Metrics().Snapshot()
			d, err := timeIt(func() error { return secondaryLookups(e, reps, groups) })
			if err != nil {
				return nil, fmt.Errorf("E17 secondary=%v n=%d: %w", secondary, n, err)
			}
			after := s.Metrics().Snapshot()
			queries := float64(2 * reps)
			visited := float64(after.SecondaryTuplesVisited - before.SecondaryTuplesVisited)
			name := "scan"
			if secondary {
				name = "indexed"
			}
			row.Metrics = append(row.Metrics,
				Metric{Name: name, Value: float64(d.Microseconds()) / queries, Unit: "us/txn"},
				Metric{Name: name + " visited", Value: visited / queries, Unit: "tuples/txn"})
			if secondary {
				fieldScans := after.SecondaryFieldScans - before.SecondaryFieldScans
				share := 0.0
				if fieldScans > 0 {
					share = 100 * float64(after.SecondaryIndexedScans-before.SecondaryIndexedScans) / float64(fieldScans)
				}
				row.Metrics = append(row.Metrics,
					Count("promotions", float64(after.SecondaryPromotions), "shapes"),
					Metric{Name: "indexed share", Value: share, Unit: "%"})
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// SecondaryLookups runs one configuration of the E17 workload (for the
// testing.B benchmark): load, warm, then one measured round of lookups
// and joins with the secondary-index layer on or off.
func SecondaryLookups(n int, secondary bool) error {
	s := dataspace.New(dataspace.WithShards(8), dataspace.WithSecondaryIndex(secondary))
	e := txn.New(s, txn.Coarse)
	secondaryLoad(s, n, 1024)
	// Enough lookup rounds that the measured phase dominates the load
	// (each ∀ round on the scan arm walks the whole arity population).
	return secondaryLookups(e, 20, 1024)
}
