// Package bench is the experiment harness reproducing the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md). The paper — a language
// design overview — reports no measured tables or figures, so each
// experiment E1–E12 regenerates one of its worked examples or qualitative
// performance claims as a measured series. The harness is deterministic
// (seeded workloads) up to scheduler timing.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Metric is one measured quantity.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Ms wraps a duration as a milliseconds metric.
func Ms(name string, d time.Duration) Metric {
	return Metric{Name: name, Value: float64(d.Microseconds()) / 1000.0, Unit: "ms"}
}

// Count wraps an integer metric.
func Count(name string, v float64, unit string) Metric {
	return Metric{Name: name, Value: v, Unit: unit}
}

// Row is one configuration's measurements.
type Row struct {
	Config  string   `json:"config"`
	Metrics []Metric `json:"metrics"`
}

// Table is one experiment's output.
type Table struct {
	ID    string `json:"id"` // e.g. "E1"
	Title string `json:"title"`
	Note  string `json:"note,omitempty"` // the paper claim being checked
	Rows  []Row  `json:"rows"`
}

// WriteJSON renders the table as one JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   paper: %s\n", t.Note); err != nil {
			return err
		}
	}
	// Column layout: config + one column per metric name (union, in first
	// appearance order).
	var names []string
	seen := map[string]bool{}
	for _, r := range t.Rows {
		for _, m := range r.Metrics {
			key := m.Name + " (" + m.Unit + ")"
			if !seen[key] {
				seen[key] = true
				names = append(names, key)
			}
		}
	}
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cfgWidth := len("config")
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		if len(r.Config) > cfgWidth {
			cfgWidth = len(r.Config)
		}
		cells[ri] = make([]string, len(names))
		for _, m := range r.Metrics {
			key := m.Name + " (" + m.Unit + ")"
			for ci, n := range names {
				if n == key {
					cells[ri][ci] = fmt.Sprintf("%.3f", m.Value)
					if w := len(cells[ri][ci]); w > widths[ci] {
						widths[ci] = w
					}
				}
			}
		}
	}
	line := func(cfg string, cols []string) string {
		var b strings.Builder
		fmt.Fprintf(&b, "  %-*s", cfgWidth, cfg)
		for i, c := range cols {
			fmt.Fprintf(&b, "  %*s", widths[i], c)
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line("config", names)); err != nil {
		return err
	}
	for ri, r := range t.Rows {
		if _, err := fmt.Fprintln(w, line(r.Config, cells[ri])); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// timeIt measures fn.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
