// Package wal is the durability layer of the SDL engine: a segmented,
// CRC-framed write-ahead log of dataspace.CommitRecord values plus
// checkpoint files, with crash recovery that replays the newest valid
// checkpoint and the gap-free log suffix after it.
//
// The log implements dataspace.DurableSink. The store calls Append inside
// the commit critical section — after the commit's version is allocated and
// while every conflicting commit is still excluded by the commit locks — so
// the append order of the log extends the engine's conflict order: if two
// commits conflict, the one with the smaller version appears earlier in the
// log. WaitDurable is called after the locks are released but before the
// commit becomes visible (waiter notification, caller return), which gives
// durable-before-visible without stretching lock hold times by an fsync.
//
// Sync modes trade latency for throughput:
//
//   - SyncCommit: every commit issues its own fsync. The strongest and
//     slowest mode; the durability baseline.
//   - SyncBatch: a commit first checks whether a concurrent fsync already
//     covered its record; if not, it elects itself leader, fsyncs once, and
//     publishes the covered LSN. Concurrent committers behind the same
//     leader are all released by that single fsync — group fsync emerges
//     from the coverage check, one sync per batch.
//   - SyncInterval: WaitDurable returns immediately; a background ticker
//     fsyncs every Interval. Bounded data loss, no commit-path stall.
//
// Because commits that are BOTH in flight at once necessarily commute
// (conflicting commits serialize on the engine's locks around Append),
// any suffix of the append order that fsync has not yet covered consists
// of reorderable records only — prefix durability of the file is exactly
// prefix durability of some legal serialization.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/metrics"
)

// SyncMode selects when appended records are forced to disk.
type SyncMode int

const (
	// SyncCommit fsyncs on every commit.
	SyncCommit SyncMode = iota
	// SyncBatch fsyncs once per group of concurrent commits.
	SyncBatch
	// SyncInterval fsyncs on a timer; WaitDurable does not block.
	SyncInterval
)

func (m SyncMode) String() string {
	switch m {
	case SyncCommit:
		return "commit"
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode parses the -wal-sync flag values.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "commit":
		return SyncCommit, nil
	case "batch":
		return SyncBatch, nil
	case "interval":
		return SyncInterval, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (want commit, batch, or interval)", s)
	}
}

// Options configures a Log.
type Options struct {
	// Sync selects the fsync policy. Default SyncCommit.
	Sync SyncMode
	// SegmentSize rotates to a new segment file once the current one
	// exceeds this many bytes. Default 8 MiB.
	SegmentSize int64
	// Interval is the SyncInterval ticker period. Default 5ms.
	Interval time.Duration
	// Metrics receives append/sync/segment/recovery instruments. May be nil.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 8 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	return o
}

// Log is an open write-ahead log rooted at a directory. It is safe for
// concurrent use by any number of committers.
//
// Lock order: mu (file writes, rotation) is leaf-most; syncMu serializes
// fsyncs and may acquire mu briefly to read the coverage point. Checkpoint
// holds ckptMu across rotate + snapshot + prune.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards f, segSeq, segBytes, buf, pbuf, closed
	f        *os.File
	segSeq   uint64
	segBytes int64
	buf      []byte // frame scratch
	pbuf     []byte // payload scratch
	closed   bool

	appended atomic.Uint64 // LSN of the last fully written record
	synced   atomic.Uint64 // LSN through which fsync has covered

	syncMu   sync.Mutex // elects the fsync leader
	syncCond *sync.Cond // SyncBatch: broadcast when a leader's fsync lands
	syncing  bool       // SyncBatch: a leader's fsync is in flight
	ckptMu   sync.Mutex // serializes checkpoints

	ckptSeq uint64 // newest checkpoint sequence on disk

	stopInterval chan struct{}
	intervalDone chan struct{}
}

var _ dataspace.DurableSink = (*Log)(nil)

func segmentName(seq uint64) string    { return fmt.Sprintf("wal-%010d.seg", seq) }
func checkpointName(seq uint64) string { return fmt.Sprintf("ckpt-%010d.ckpt", seq) }

// Open opens (creating if needed) a log directory and starts a fresh append
// segment after any existing state. Opening NEVER deletes or rewrites
// existing segments or checkpoints — a crashed log's evidence stays intact
// until Recover has verified and re-checkpointed it. Callers reopening a
// non-empty directory must call Recover before attaching the log to a
// store; Append panics on a version that does not extend the recovered
// history's (the store enforces gap-free versions, not the log).
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	maxSeg, maxCkpt, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		segSeq:  maxSeg,
		ckptSeq: maxCkpt,
	}
	l.syncCond = sync.NewCond(&l.syncMu)
	if err := l.openSegmentLocked(maxSeg + 1); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.stopInterval = make(chan struct{})
		l.intervalDone = make(chan struct{})
		go l.intervalLoop()
	}
	return l, nil
}

// scanDir finds the highest segment and checkpoint sequence numbers.
func scanDir(dir string) (maxSeg, maxCkpt uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: scan: %w", err)
	}
	for _, e := range entries {
		var seq uint64
		switch {
		case parseSeq(e.Name(), "wal-", ".seg", &seq):
			if seq > maxSeg {
				maxSeg = seq
			}
		case parseSeq(e.Name(), "ckpt-", ".ckpt", &seq):
			if seq > maxCkpt {
				maxCkpt = seq
			}
		}
	}
	return maxSeg, maxCkpt, nil
}

func parseSeq(name, prefix, suffix string, seq *uint64) bool {
	if len(name) != len(prefix)+10+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	var v uint64
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + uint64(c-'0')
	}
	*seq = v
	return true
}

// openSegmentLocked creates segment seq, writes its header, fsyncs the
// directory entry, and makes it the append target. Callers hold mu or have
// exclusive access.
func (l *Log) openSegmentLocked(seq uint64) error {
	path := filepath.Join(l.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := append(append([]byte{}, segmentMagic[:]...), segmentFormat)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	// The header must be durable before any frame in this segment is: a
	// recovery that can read frames but not the header would discard them.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header sync: %w", err)
	}
	if err := syncDirEntry(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segSeq = seq
	l.segBytes = segmentHeaderLen
	l.opts.Metrics.IncWalSegment()
	return nil
}

func syncDirEntry(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Append encodes rec, writes its frame to the current segment with a bare
// write(2) (no user-space buffering: data handed to the kernel survives a
// SIGKILL of this process; only power loss needs the fsync that WaitDurable
// arranges), and returns the record's LSN. The store calls this inside the
// commit critical section, so append order extends the conflict order.
//
// A write failure panics: the engine has already applied the commit under
// its locks, and a log that cannot persist it can keep neither the
// durable-before-visible contract nor a consistent suffix for recovery.
func (l *Log) Append(rec dataspace.CommitRecord) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		panic("wal: Append after Close")
	}
	l.pbuf = appendRecordPayload(l.pbuf[:0], rec)
	l.buf = appendFrame(l.buf[:0], l.pbuf)
	if _, err := l.f.Write(l.buf); err != nil {
		panic(fmt.Sprintf("wal: append write failed: %v", err))
	}
	l.segBytes += int64(len(l.buf))
	l.opts.Metrics.IncWalAppend(len(l.buf))
	lsn := l.appended.Add(1)
	if l.segBytes >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			panic(fmt.Sprintf("wal: rotate failed: %v", err))
		}
	}
	return lsn
}

// rotateLocked seals the current segment and opens the next one. The old
// segment is fsynced before the switch, so every record in a non-current
// segment is durable — fsyncing only the current file then suffices to make
// everything appended so far durable.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	// Everything written so far now lives in sealed, synced segments.
	l.advanceSynced(l.appended.Load())
	return l.openSegmentLocked(l.segSeq + 1)
}

func (l *Log) advanceSynced(to uint64) {
	for {
		cur := l.synced.Load()
		if cur >= to || l.synced.CompareAndSwap(cur, to) {
			return
		}
	}
}

// WaitDurable blocks until the record with the given LSN is on disk, per
// the configured sync mode. The store calls it after releasing the commit
// locks and before making the commit visible.
func (l *Log) WaitDurable(lsn uint64) {
	switch l.opts.Sync {
	case SyncInterval:
		return
	case SyncCommit:
		l.syncMu.Lock()
		defer l.syncMu.Unlock()
		l.syncNow()
	default: // SyncBatch
		if l.synced.Load() >= lsn {
			return
		}
		// Group commit with explicit leader election. A plain
		// mutex-queue here destroys batching: waiters from the previous
		// round wake one release at a time while freshly committed
		// goroutines barge in and run near-empty fsyncs. Instead exactly
		// one uncovered waiter becomes the leader and fsyncs outside the
		// lock; everyone its sync covered is released by a single
		// broadcast, so the whole group pipelines its next commits while
		// the next leader's fsync is in flight.
		l.syncMu.Lock()
		for l.synced.Load() < lsn {
			if l.syncing {
				l.syncCond.Wait()
				continue
			}
			l.syncing = true
			l.syncMu.Unlock()
			l.syncNow()
			l.syncMu.Lock()
			l.syncing = false
			l.syncCond.Broadcast()
		}
		l.syncMu.Unlock()
	}
}

// syncNow fsyncs the current segment, covering every record appended
// before the call — in particular the caller's own, which it observed as
// appended (rotation seals and syncs older segments, so only the current
// file can hold unsynced frames). At most one syncNow runs at a time:
// commit/interval callers hold syncMu, batch leaders hold the syncing
// flag.
func (l *Log) syncNow() {
	l.mu.Lock()
	f := l.f
	cover := l.appended.Load()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return // Close already issued the final sync.
	}
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return // Close raced in and issued the final sync.
		}
		panic(fmt.Sprintf("wal: fsync failed: %v", err))
	}
	prev := l.synced.Load()
	l.advanceSynced(cover)
	if cover > prev {
		l.opts.Metrics.ObserveWalSync(cover - prev)
	} else {
		l.opts.Metrics.ObserveWalSync(0)
	}
}

func (l *Log) intervalLoop() {
	defer close(l.intervalDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopInterval:
			return
		case <-t.C:
			if l.appended.Load() > l.synced.Load() {
				l.syncMu.Lock()
				l.syncNow()
				l.syncMu.Unlock()
			}
		}
	}
}

// Durable returns the LSN through which the log is known durable.
func (l *Log) Durable() uint64 { return l.synced.Load() }

// Appended returns the LSN of the last appended record.
func (l *Log) Appended() uint64 { return l.appended.Load() }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the current segment. The log must be idle: the
// engine is shut down before its durability layer.
func (l *Log) Close() error {
	if l.stopInterval != nil {
		close(l.stopInterval)
		<-l.intervalDone
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: close sync: %w", err)
	}
	l.advanceSynced(l.appended.Load())
	// Release any batch waiters parked on the leader's broadcast; their
	// records are covered by the final sync above.
	l.syncCond.Broadcast()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Checkpoint writes a new checkpoint of the store and prunes the log
// history it subsumes. Safety: the current segment is rotated FIRST, then
// the snapshot is taken. The snapshot's version read happens under all
// shard locks, which excludes every commit critical section, and records
// are appended inside those critical sections — so every record that
// landed in a pre-rotation segment has version ≤ the checkpoint's version
// and is subsumed by it. Records racing into the new segment may or may not
// be subsumed; recovery filters by version, so keeping them is harmless.
// Old segments and checkpoints are deleted only after the new checkpoint's
// rename (and the directory entry) are durable.
func (l *Log) Checkpoint(s *dataspace.Store) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: checkpoint after close")
	}
	err := l.rotateLocked()
	keepSeg := l.segSeq
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: checkpoint rotate: %w", err)
	}

	seq := l.ckptSeq + 1
	tmp := filepath.Join(l.dir, checkpointName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	if err := s.WriteCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, checkpointName(seq))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := syncDirEntry(l.dir); err != nil {
		return err
	}
	l.ckptSeq = seq

	// Prune history the checkpoint subsumes. Failures here leave stale
	// files that recovery filters out by version; report but don't fail.
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		var n uint64
		switch {
		case parseSeq(e.Name(), "wal-", ".seg", &n) && n < keepSeg:
			os.Remove(filepath.Join(l.dir, e.Name()))
		case parseSeq(e.Name(), "ckpt-", ".ckpt", &n) && n < seq:
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	return nil
}
