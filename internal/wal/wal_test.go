package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/refmodel"
	"github.com/sdl-lang/sdl/internal/tuple"
)

func tup(vals ...int64) tuple.Tuple {
	fields := make([]tuple.Value, len(vals))
	for i, v := range vals {
		fields[i] = tuple.Int(v)
	}
	return tuple.New(fields...)
}

// attach opens a log in dir, recovers the store from it, and wires it in.
func attach(t *testing.T, dir string, s *dataspace.Store, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Recover(s); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	s.SetDurable(l)
	return l
}

// workload drives a mixed assert/delete sequence through the store.
func workload(t *testing.T, s *dataspace.Store, n int) {
	t.Helper()
	var ids []tuple.ID
	for i := 0; i < n; i++ {
		got := s.Assert(tuple.ProcessID(i%3+1), tup(int64(i), int64(i)*10))
		ids = append(ids, got...)
		if i%4 == 3 {
			victim := ids[len(ids)-2]
			err := s.Update(tuple.ProcessID(1), func(w dataspace.Writer) error {
				return w.Delete(victim)
			})
			if err != nil {
				t.Fatalf("delete #%d: %v", victim, err)
			}
		}
	}
}

func TestRoundTripRecover(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(4))
	l := attach(t, dir, s, Options{Sync: SyncCommit})
	workload(t, s, 40)
	wantMS := refmodel.MultisetOf(s)
	wantVersion := s.Version()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recover at a different shard count: checkpoints and records are
	// shard-count independent.
	for _, shards := range []int{1, 16} {
		s2 := dataspace.New(dataspace.WithShards(shards))
		l2, err := Open(dir, Options{Sync: SyncCommit})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		stats, err := l2.Recover(s2)
		if err != nil {
			t.Fatalf("Recover at %d shards: %v", shards, err)
		}
		if !refmodel.SameMultiset(wantMS, refmodel.MultisetOf(s2)) {
			t.Fatalf("recovered multiset at %d shards diverges", shards)
		}
		if s2.Version() != wantVersion {
			t.Fatalf("recovered version %d, want %d", s2.Version(), wantVersion)
		}
		if stats.TornSegments != 0 || stats.Gaps != 0 {
			t.Fatalf("clean close reported loss: %+v", stats)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestRecoverAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(2))
	// Tiny segments force rotation on nearly every commit.
	l := attach(t, dir, s, Options{Sync: SyncBatch, SegmentSize: 64})
	workload(t, s, 30)
	want := refmodel.MultisetOf(s)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := SegmentFiles(dir)
	if err != nil {
		t.Fatalf("SegmentFiles: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected many segments at 64-byte rotation, got %d", len(segs))
	}

	s2 := dataspace.New(dataspace.WithShards(8))
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := l2.Recover(s2); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !refmodel.SameMultiset(want, refmodel.MultisetOf(s2)) {
		t.Fatal("recovered multiset diverges after multi-segment recovery")
	}
	l2.Close()
}

func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(1))
	l := attach(t, dir, s, Options{Sync: SyncCommit})
	for i := 0; i < 10; i++ {
		s.Assert(1, tup(int64(i)))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := SegmentFiles(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("SegmentFiles: %v (%d)", err, len(segs))
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Tear the final frame: drop its last 3 bytes.
	if err := os.WriteFile(last, data[:len(data)-3], 0o666); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	st, err := ReadState(dir)
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	if st.TornSegments != 1 || st.TornBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", st)
	}
	// Recover: 9 surviving records on top of the recovery checkpoint.
	s2 := dataspace.New(dataspace.WithShards(1))
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stats, err := l2.Recover(s2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.TornSegments != 1 {
		t.Fatalf("recovery missed the torn tail: %+v", stats)
	}
	if got := s2.Len(); got != 9 {
		t.Fatalf("recovered %d instances, want 9 (last commit torn off)", got)
	}
	l2.Close()
}

func TestCorruptFrameCutsSuffix(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(1))
	l := attach(t, dir, s, Options{Sync: SyncCommit})
	for i := 0; i < 10; i++ {
		s.Assert(1, tup(int64(i)))
	}
	l.Close()
	segs, _ := SegmentFiles(dir)
	last := segs[len(segs)-1]
	data, _ := os.ReadFile(last)
	// Flip a byte in the middle of the record stream: everything at and
	// after the damaged frame must be dropped, even though later frames
	// are intact.
	mid := segmentHeaderLen + (len(data)-segmentHeaderLen)/2
	data[mid] ^= 0xff
	if err := os.WriteFile(last, data, 0o666); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	st, err := ReadState(dir)
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	if len(st.Records) >= 10 {
		t.Fatalf("corrupt frame did not cut the suffix: %d records", len(st.Records))
	}
	if st.TornSegments != 1 {
		t.Fatalf("corruption not reported: %+v", st)
	}
	// The surviving records are a version prefix.
	for i, rec := range st.Records {
		if rec.Version != uint64(i+1) {
			t.Fatalf("record %d has version %d", i, rec.Version)
		}
	}
}

func TestVersionGapKeepsDurableRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncCommit})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Hand-append records with a version gap (3 missing) — the shape a
	// crash leaves when a commuting commit allocated version 3 but its
	// append never got fsynced while 4 and 5 (appended earlier in file
	// order) did. Commits 4 and 5 were acknowledged; recovery must keep
	// ALL durable records and account the gap, not discard the suffix.
	for _, v := range []uint64{1, 2, 4, 5} {
		rec := dataspace.CommitRecord{
			Version:  v,
			Owner:    1,
			Inserted: []dataspace.Instance{{ID: tuple.ID(v), Owner: 1, Tuple: tup(int64(v))}},
		}
		l.WaitDurable(l.Append(rec))
	}
	l.Close()

	st, err := ReadState(dir)
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	if len(st.Records) != 4 || st.Gaps != 1 {
		t.Fatalf("gap handling wrong: kept %d records, %d gaps", len(st.Records), st.Gaps)
	}
	s := dataspace.New(dataspace.WithShards(1))
	l2, _ := Open(dir, Options{})
	stats, err := l2.Recover(s)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Replayed != 4 || stats.Gaps != 1 || s.Len() != 4 {
		t.Fatalf("recovered wrong state: %+v len=%d", stats, s.Len())
	}
	// New commits continue above the last durable version: position 3 is
	// gone for good, never resurrected.
	if s.Version() != 5 {
		t.Fatalf("recovered version %d, want 5", s.Version())
	}
	l2.Close()
}

func TestDuplicateVersionRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncCommit})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, v := range []uint64{1, 2, 2} {
		rec := dataspace.CommitRecord{
			Version:  v,
			Owner:    1,
			Inserted: []dataspace.Instance{{ID: tuple.ID(v), Owner: 1, Tuple: tup(int64(v))}},
		}
		l.WaitDurable(l.Append(rec))
	}
	l.Close()
	if _, err := ReadState(dir); err == nil {
		t.Fatal("ReadState accepted a duplicated serialization position")
	}
}

func TestCheckpointPrunesHistory(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(2))
	l := attach(t, dir, s, Options{Sync: SyncCommit, SegmentSize: 64})
	workload(t, s, 20)
	if err := l.Checkpoint(s); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segs, err := SegmentFiles(dir)
	if err != nil {
		t.Fatalf("SegmentFiles: %v", err)
	}
	if len(segs) != 1 {
		t.Fatalf("checkpoint left %d segments, want 1 (current)", len(segs))
	}
	// Commits after the checkpoint land in the fresh segment and recover
	// on top of it.
	workload(t, s, 10)
	want := refmodel.MultisetOf(s)
	l.Close()

	s2 := dataspace.New(dataspace.WithShards(4))
	l2, _ := Open(dir, Options{})
	stats, err := l2.Recover(s2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.CheckpointVersion == 0 {
		t.Fatal("recovery ignored the checkpoint")
	}
	if !refmodel.SameMultiset(want, refmodel.MultisetOf(s2)) {
		t.Fatal("checkpoint+suffix recovery diverges")
	}
	l2.Close()
}

func TestGroupFsyncCoversBatch(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(4))
	reg := s.Metrics()
	l := attach(t, dir, s, Options{Sync: SyncBatch, Metrics: reg})

	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Assert(tuple.ProcessID(w+1), tup(int64(w), int64(i)))
			}
		}(w)
	}
	wg.Wait()

	// Durable-before-visible: every Assert has returned, so every record
	// is covered by some fsync.
	if l.Durable() != l.Appended() {
		t.Fatalf("durable %d < appended %d after all commits returned", l.Durable(), l.Appended())
	}
	snap := reg.Snapshot()
	if snap.WalAppends != uint64(workers*per) {
		t.Fatalf("appends %d, want %d", snap.WalAppends, workers*per)
	}
	// Group commit: at most one fsync per append (usually far fewer with
	// concurrency; exactly equal only if the scheduler fully serialized).
	if snap.WalSyncs > snap.WalAppends {
		t.Fatalf("syncs %d > appends %d in batch mode", snap.WalSyncs, snap.WalAppends)
	}
	l.Close()
}

func TestIntervalSyncCatchesUp(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(1))
	l := attach(t, dir, s, Options{Sync: SyncInterval, Interval: time.Millisecond})
	for i := 0; i < 10; i++ {
		s.Assert(1, tup(int64(i)))
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Durable() < l.Appended() {
		if time.Now().After(deadline) {
			t.Fatalf("interval sync never covered: durable %d, appended %d", l.Durable(), l.Appended())
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

func TestAppendsMatchCommits(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(4))
	reg := s.Metrics()
	l := attach(t, dir, s, Options{Sync: SyncBatch, Metrics: reg})
	workload(t, s, 30)
	// Also push commits through the commuting (key-latch) path.
	key := dataspace.InterestKey{Arity: 2, Lead: tuple.Int(999), LeadKnown: true}
	for i := 0; i < 10; i++ {
		err := s.UpdateCommuting(1, []dataspace.InterestKey{key}, func(w dataspace.Writer) error {
			w.Insert(tup(999, int64(i)), 1)
			return nil
		})
		if err != nil {
			t.Fatalf("UpdateCommuting: %v", err)
		}
	}
	snap := reg.Snapshot()
	if snap.WalAppends != reg.Commits() {
		t.Fatalf("WAL invariant violated: %d appends, %d engine commits", snap.WalAppends, reg.Commits())
	}
	if snap.WalAppends == 0 {
		t.Fatal("no appends recorded")
	}
	l.Close()
}

func TestRecoverRejectsTamperedHistory(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(1))
	l := attach(t, dir, s, Options{Sync: SyncCommit})
	s.Assert(1, tup(1))
	id := s.Assert(1, tup(2))[0]
	if err := s.Update(1, func(w dataspace.Writer) error { return w.Delete(id) }); err != nil {
		t.Fatalf("delete: %v", err)
	}
	l.Close()

	// Rewrite the log so a delete references an instance that never
	// existed: the frame is CRC-valid but the history is inconsistent, and
	// recovery must refuse rather than guess.
	st, err := ReadState(dir)
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	segs, _ := SegmentFiles(dir)
	for _, p := range segs {
		os.Remove(p)
	}
	l2, err := Open(dir, Options{Sync: SyncCommit})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for _, rec := range st.Records {
		for i := range rec.Deleted {
			rec.Deleted[i].ID += 100 // dangling reference
		}
		l2.Append(rec)
	}
	l2.Close()

	s2 := dataspace.New(dataspace.WithShards(1))
	l3, _ := Open(dir, Options{})
	if _, err := l3.Recover(s2); err == nil {
		t.Fatal("Recover accepted a tampered history")
	}
	l3.Close()
}

func TestReadStateIsPure(t *testing.T) {
	dir := t.TempDir()
	s := dataspace.New(dataspace.WithShards(1))
	l := attach(t, dir, s, Options{Sync: SyncCommit})
	for i := 0; i < 5; i++ {
		s.Assert(1, tup(int64(i)))
	}
	l.Close()

	before, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := func(es []os.DirEntry) []string {
		var out []string
		for _, e := range es {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, e.Name()+fi.ModTime().String())
		}
		return out
	}
	want := names(before)
	if _, err := ReadState(dir); err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	after, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := names(after)
	if len(got) != len(want) {
		t.Fatalf("ReadState changed the directory: %v -> %v", want, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReadState changed %v -> %v", want[i], got[i])
		}
	}
	// And sizes are untouched.
	for _, e := range after {
		fi, _ := e.Info()
		if fi.Size() == 0 && filepath.Ext(e.Name()) == ".seg" {
			t.Fatalf("segment %s emptied", e.Name())
		}
	}
}
