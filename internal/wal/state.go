package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/sdl-lang/sdl/internal/dataspace"
)

// State is everything a log directory durably recorded, as a pure reading:
// the newest valid checkpoint plus the gap-free record suffix after it.
// ReadState never mutates the directory, so a crash investigator (or the
// kill-test harness) can capture the evidence before Recover rewrites it.
type State struct {
	// CheckpointSeq and CheckpointVersion identify the base configuration;
	// both are zero when no valid checkpoint exists (empty base).
	CheckpointSeq     uint64
	CheckpointVersion uint64
	// Base is the checkpoint's configuration.
	Base []dataspace.Instance
	// Records is the replayable suffix: every decodable record with
	// version > CheckpointVersion, sorted by version. Versions are
	// strictly increasing but may have GAPS: commuting commits append in
	// flight-order, not version order, so a crash can make version v+1
	// durable while v is not. A missing version was never fsynced — and
	// because conflicting commits DO append in version order, it commutes
	// with every durable record above it, so the durable records replayed
	// in version order remain a legal serial history (see
	// refmodel.ReplayFrom). Discarding at the first gap would instead
	// lose acknowledged commits.
	Records []dataspace.CommitRecord
	// Segments is the number of segment files scanned.
	Segments int
	// TornSegments counts segments whose scan stopped before end-of-file
	// (a torn or corrupt frame); TornBytes is the total discarded tail.
	TornSegments int
	TornBytes    int64
	// Subsumed counts decoded records the checkpoint already covers
	// (version ≤ CheckpointVersion) — stale segments, not data loss.
	Subsumed int
	// Gaps counts versions missing inside the Records span: in-flight
	// commits whose append was never fsynced. They were never
	// acknowledged (WaitDurable had not returned), so a gap is bounded
	// data loss of unacknowledged work only.
	Gaps int
}

// ReadState reads a log directory without modifying it. Checkpoints are
// tried newest-first; an undecodable checkpoint falls back to the next
// older one (checkpoint writes are tmp+rename, so this arises only from
// external damage). Segment scans stop at the first torn frame per segment.
func ReadState(dir string) (*State, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read state: %w", err)
	}
	var ckpts, segs []uint64
	for _, e := range entries {
		var seq uint64
		switch {
		case parseSeq(e.Name(), "wal-", ".seg", &seq):
			segs = append(segs, seq)
		case parseSeq(e.Name(), "ckpt-", ".ckpt", &seq):
			ckpts = append(ckpts, seq)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	st := &State{}
	for _, seq := range ckpts {
		base, version, err := readCheckpointFile(filepath.Join(dir, checkpointName(seq)))
		if err != nil {
			continue
		}
		st.CheckpointSeq = seq
		st.CheckpointVersion = version
		st.Base = base
		break
	}

	var recs []dataspace.CommitRecord
	for _, seq := range segs {
		st.Segments++
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %d: %w", seq, err)
		}
		if len(data) < segmentHeaderLen ||
			[4]byte(data[:4]) != segmentMagic || data[4] != segmentFormat {
			// A header that never reached the disk in full: the whole
			// segment is a torn tail.
			st.TornSegments++
			st.TornBytes += int64(len(data))
			continue
		}
		segRecs, tail := scanFrames(data[segmentHeaderLen:])
		if tail > 0 {
			st.TornSegments++
			st.TornBytes += int64(tail)
		}
		recs = append(recs, segRecs...)
	}

	// Keep everything past the checkpoint, in version order.
	kept := recs[:0]
	for _, rec := range recs {
		if rec.Version <= st.CheckpointVersion {
			st.Subsumed++
			continue
		}
		kept = append(kept, rec)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Version < kept[j].Version })
	prev := st.CheckpointVersion
	for i, rec := range kept {
		if rec.Version == prev {
			// The engine appends each version exactly once; a duplicate
			// cannot come from a crash, only from external damage.
			return nil, fmt.Errorf("wal: duplicate version %d in record %d", rec.Version, i)
		}
		st.Gaps += int(rec.Version - prev - 1)
		prev = rec.Version
	}
	st.Records = kept
	return st, nil
}

// readCheckpointFile decodes a checkpoint through the store's own restore
// path (a throwaway single-shard store), so the format has exactly one
// reader and checkpoints stay shard-count independent.
func readCheckpointFile(path string) ([]dataspace.Instance, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	tmp := dataspace.New(dataspace.WithShards(1))
	if err := tmp.ReadCheckpoint(f); err != nil {
		return nil, 0, err
	}
	return tmp.All(), tmp.Version(), nil
}

// SegmentFiles returns the directory's segment paths in ascending sequence
// order. The crash-injection harness uses it to pick a truncation target.
func SegmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if parseSeq(e.Name(), "wal-", ".seg", &seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]string, len(seqs))
	for i, seq := range seqs {
		out[i] = filepath.Join(dir, segmentName(seq))
	}
	return out, nil
}
