package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/refmodel"
)

// RecoveryStats summarizes what Recover reconstructed.
type RecoveryStats struct {
	// CheckpointVersion is the base the replay started from (0 = empty).
	CheckpointVersion uint64
	// Replayed is the number of log records applied after the checkpoint.
	Replayed int
	// Version is the store version after recovery.
	Version uint64
	// TornSegments/TornBytes/Gaps mirror the State fields: evidence of a
	// crash cut (torn frames) and of in-flight commits whose append was
	// never fsynced (all unacknowledged).
	TornSegments int
	TornBytes    int64
	Gaps         int
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// Recover rebuilds a store from the log directory and re-anchors the log:
//
//  1. Read the newest valid checkpoint and the gap-free record suffix
//     after it (ReadState).
//  2. Restore the checkpoint into the store (shard-count independent) and
//     replay the suffix record-by-record through Store.ApplyRecovered.
//  3. Verify: refmodel.ReplayFrom re-executes checkpoint+suffix on the
//     naive reference model, and its content multiset must equal the
//     recovered store's. Recovery refuses to hand back a store it cannot
//     prove equal to the durable history.
//  4. Write a fresh checkpoint of the recovered state and prune every
//     older segment and checkpoint. This clean slate keeps version
//     history unambiguous: new commits may reuse serialization positions
//     that crashed in-flight commits had claimed but never made durable
//     (torn frames, version gaps), so no old segment holding partial
//     evidence of them may survive into the next crash.
//
// The store must be empty and unshared, and the log must not yet be
// attached via SetDurable; attach it after Recover returns. Recover must
// be called at most once, before any Append.
func (l *Log) Recover(s *dataspace.Store) (*RecoveryStats, error) {
	start := time.Now()
	if n := l.appended.Load(); n != 0 {
		return nil, fmt.Errorf("wal: recover after %d appends", n)
	}
	st, err := ReadState(l.dir)
	if err != nil {
		return nil, err
	}
	if st.CheckpointSeq != 0 {
		f, err := os.Open(filepath.Join(l.dir, checkpointName(st.CheckpointSeq)))
		if err != nil {
			return nil, fmt.Errorf("wal: recover checkpoint: %w", err)
		}
		err = s.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("wal: recover checkpoint: %w", err)
		}
	}
	for _, rec := range st.Records {
		if err := s.ApplyRecovered(rec); err != nil {
			return nil, fmt.Errorf("wal: recover replay: %w", err)
		}
	}

	// Prove the recovered store equals the durable history's final
	// configuration by replaying the same evidence on the reference model.
	model, err := refmodel.ReplayFrom(st.Base, st.CheckpointVersion, st.Records)
	if err != nil {
		return nil, fmt.Errorf("wal: recover verify: %w", err)
	}
	if !refmodel.SameMultiset(model.Multiset(), refmodel.MultisetOf(s)) {
		return nil, fmt.Errorf("wal: recover verify: store multiset diverges from reference replay of %d records",
			len(st.Records))
	}

	// Re-anchor: checkpoint the recovered state and drop the old history,
	// including any discarded tail.
	if err := l.Checkpoint(s); err != nil {
		return nil, err
	}

	stats := &RecoveryStats{
		CheckpointVersion: st.CheckpointVersion,
		Replayed:          len(st.Records),
		Version:           s.Version(),
		TornSegments:      st.TornSegments,
		TornBytes:         st.TornBytes,
		Gaps:              st.Gaps,
		Elapsed:           time.Since(start),
	}
	l.opts.Metrics.ObserveWalRecovery(uint64(stats.Replayed), uint64(stats.Gaps), stats.Elapsed)
	return stats, nil
}
