package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Log encoding. A segment file is a fixed header followed by a sequence of
// CRC-framed records:
//
//	segment := magic "SDLW" format(1 byte) frame*
//	frame   := payloadLen(uint32 LE) crc32c(uint32 LE, over payload) payload
//	payload := version(uvarint) owner(uvarint) nIns(uvarint) nDel(uvarint)
//	           inserted* deleted*
//	inst    := id(uvarint) owner(uvarint) tuple
//
// Tuples use the repository-wide binary encoding (internal/tuple). The CRC
// is Castagnoli (CRC-32C), computed over the payload only: a torn write —
// a frame whose length prefix or body did not reach the disk in full — is
// detected either by the declared length exceeding the remaining bytes or
// by a checksum mismatch, and scanning stops at the last complete frame.
var (
	segmentMagic = [4]byte{'S', 'D', 'L', 'W'}

	// ErrCorrupt reports a frame that is present but not decodable: a bad
	// checksum, an oversized length prefix, or a malformed payload. Scans
	// treat it exactly like a truncated tail — the segment ends at the
	// previous frame.
	ErrCorrupt = errors.New("wal: corrupt frame")
)

const (
	segmentFormat = 1
	// segmentHeaderLen is magic + format byte.
	segmentHeaderLen = 5
	// SegmentHeaderLen is the exported segment header size; crash-injection
	// harnesses use it to aim truncation cuts at the record stream.
	SegmentHeaderLen = segmentHeaderLen
	// frameHeaderLen is payloadLen + crc.
	frameHeaderLen = 8
	// maxPayload bounds a frame's declared payload so a corrupt length
	// prefix cannot drive a huge allocation.
	maxPayload = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecordPayload appends the frame payload encoding rec to dst.
func appendRecordPayload(dst []byte, rec dataspace.CommitRecord) []byte {
	dst = binary.AppendUvarint(dst, rec.Version)
	dst = binary.AppendUvarint(dst, uint64(rec.Owner))
	dst = binary.AppendUvarint(dst, uint64(len(rec.Inserted)))
	dst = binary.AppendUvarint(dst, uint64(len(rec.Deleted)))
	for _, inst := range rec.Inserted {
		dst = appendInstance(dst, inst)
	}
	for _, inst := range rec.Deleted {
		dst = appendInstance(dst, inst)
	}
	return dst
}

func appendInstance(dst []byte, inst dataspace.Instance) []byte {
	dst = binary.AppendUvarint(dst, uint64(inst.ID))
	dst = binary.AppendUvarint(dst, uint64(inst.Owner))
	return tuple.AppendTuple(dst, inst.Tuple)
}

// decodeRecordPayload decodes one frame payload. The payload must be
// consumed exactly; trailing bytes mean the frame was mis-framed.
func decodeRecordPayload(b []byte) (dataspace.CommitRecord, error) {
	var rec dataspace.CommitRecord
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		b = b[n:]
		return v, nil
	}
	version, err := next()
	if err != nil {
		return rec, err
	}
	owner, err := next()
	if err != nil {
		return rec, err
	}
	nIns, err := next()
	if err != nil {
		return rec, err
	}
	nDel, err := next()
	if err != nil {
		return rec, err
	}
	if nIns+nDel > uint64(len(b)) {
		// Each instance needs at least one byte; an impossible count is a
		// corrupt frame, not an allocation request.
		return rec, fmt.Errorf("%w: implausible effect counts %d+%d", ErrCorrupt, nIns, nDel)
	}
	rec.Version = version
	rec.Owner = tuple.ProcessID(owner)
	decodeInst := func() (dataspace.Instance, error) {
		id, err := next()
		if err != nil {
			return dataspace.Instance{}, err
		}
		own, err := next()
		if err != nil {
			return dataspace.Instance{}, err
		}
		t, n, terr := tuple.DecodeTuple(b)
		if terr != nil {
			return dataspace.Instance{}, fmt.Errorf("%w: %v", ErrCorrupt, terr)
		}
		b = b[n:]
		return dataspace.Instance{ID: tuple.ID(id), Owner: tuple.ProcessID(own), Tuple: t}, nil
	}
	if nIns > 0 {
		rec.Inserted = make([]dataspace.Instance, 0, nIns)
		for i := uint64(0); i < nIns; i++ {
			inst, err := decodeInst()
			if err != nil {
				return rec, err
			}
			rec.Inserted = append(rec.Inserted, inst)
		}
	}
	if nDel > 0 {
		rec.Deleted = make([]dataspace.Instance, 0, nDel)
		for i := uint64(0); i < nDel; i++ {
			inst, err := decodeInst()
			if err != nil {
				return rec, err
			}
			rec.Deleted = append(rec.Deleted, inst)
		}
	}
	if len(b) != 0 {
		return rec, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(b))
	}
	return rec, nil
}

// appendFrame wraps a payload in its length + CRC header.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// scanFrames decodes the record stream of a segment body (everything after
// the segment header). It stops at the first torn or corrupt frame and
// NEVER returns a record from beyond it — later frames may be complete, but
// without the broken predecessor the suffix is not a prefix of the durable
// history. The returned tail length counts the bytes from the cut to the
// end of the body.
func scanFrames(body []byte) (recs []dataspace.CommitRecord, tail int) {
	off := 0
	for {
		rest := body[off:]
		if len(rest) == 0 {
			return recs, 0
		}
		if len(rest) < frameHeaderLen {
			return recs, len(body) - off
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n > maxPayload || len(rest) < frameHeaderLen+n {
			return recs, len(body) - off
		}
		payload := rest[frameHeaderLen : frameHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return recs, len(body) - off
		}
		rec, err := decodeRecordPayload(payload)
		if err != nil {
			return recs, len(body) - off
		}
		recs = append(recs, rec)
		off += frameHeaderLen + n
	}
}
