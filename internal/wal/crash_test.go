package wal

// Kill-and-restore test: a child process (this test binary re-executed
// with SDL_WAL_CHILD set) runs a counter-upsert + balance-transfer
// campaign against a WAL-backed store; the parent SIGKILLs it at a
// randomized point, reads the surviving log as pure evidence, replays it
// on the reference model, checks the workload invariants, and then
// recovers into a store with a DIFFERENT shard count.
//
// Durable-before-visible is what makes the acknowledgment invariant
// checkable: the child appends one ack byte (a plain write(2), which a
// SIGKILL cannot revoke) to a per-key file only AFTER the commit call
// returns, and a commit call returns only after WaitDurable. So every
// acked effect must be present in the recovered state — a missing one is
// a lost committed effect, and the strictly-increasing version check in
// refmodel.ReplayFrom rules out duplicated ones. (Version GAPS are legal:
// commuting commits append in flight order, so an unsynced commit can
// leave a hole below durable, acknowledged neighbors — see wal.State.)

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/refmodel"
	"github.com/sdl-lang/sdl/internal/tuple"
)

const (
	crashCounters   = 8    // counter keys 100..107, upserted via key latches
	crashAccounts   = 3    // account keys 200..202, transfers conserve the sum
	crashBalance    = 1000 // initial balance per account
	crashWorkers    = 4
	crashChildEnv   = "SDL_WAL_CHILD"
	crashDirEnv     = "SDL_WAL_DIR"
	crashAcksEnv    = "SDL_WAL_ACKS"
	crashShardsEnv  = "SDL_WAL_SHARDS"
	crashSyncEnv    = "SDL_WAL_SYNC"
	crashItersEnv   = "SDL_WAL_KILL_ITERS"
	crashSegSizeEnv = "SDL_WAL_SEGSIZE"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) != "" {
		runCrashChild()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCrashChild is the process that gets killed. It never exits on its
// own: setup, print "ready", then hammer the store until SIGKILL.
func runCrashChild() {
	dir := os.Getenv(crashDirEnv)
	acks := os.Getenv(crashAcksEnv)
	shards, _ := strconv.Atoi(os.Getenv(crashShardsEnv))
	mode, err := ParseSyncMode(os.Getenv(crashSyncEnv))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	segSize, _ := strconv.Atoi(os.Getenv(crashSegSizeEnv))

	s := dataspace.New(dataspace.WithShards(shards), dataspace.WithCommuting(true))
	l, err := Open(dir, Options{Sync: mode, SegmentSize: int64(segSize)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(2)
	}
	if _, err := l.Recover(s); err != nil {
		fmt.Fprintln(os.Stderr, "recover:", err)
		os.Exit(2)
	}
	s.SetDurable(l)

	// Seed the workload state: counters at 0, accounts at their opening
	// balance. These are commits too — they may be the only ones that
	// survive a fast kill.
	for k := 0; k < crashCounters; k++ {
		s.Assert(1, tuple.New(tuple.Int(int64(100+k)), tuple.Int(0)))
	}
	for a := 0; a < crashAccounts; a++ {
		s.Assert(1, tuple.New(tuple.Int(int64(200+a)), tuple.Int(crashBalance)))
	}

	ackFiles := make([]*os.File, crashCounters)
	for k := range ackFiles {
		f, err := os.OpenFile(filepath.Join(acks, fmt.Sprintf("upsert-%d", k)),
			os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o666)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ack:", err)
			os.Exit(2)
		}
		ackFiles[k] = f
	}

	fmt.Println("ready")

	for w := 0; w < crashWorkers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				k := rng.Intn(crashCounters)
				if err := crashUpsert(s, tuple.ProcessID(w+1), int64(100+k)); err != nil {
					fmt.Fprintln(os.Stderr, "upsert:", err)
					os.Exit(2)
				}
				// Acked only after the commit returned, i.e. after it
				// became durable.
				ackFiles[k].Write([]byte{1})
				if i%3 == 0 {
					from := rng.Intn(crashAccounts)
					to := (from + 1 + rng.Intn(crashAccounts-1)) % crashAccounts
					if err := crashTransfer(s, tuple.ProcessID(w+1), int64(200+from), int64(200+to), 1+int64(rng.Intn(5))); err != nil {
						fmt.Fprintln(os.Stderr, "transfer:", err)
						os.Exit(2)
					}
				}
			}
		}(w)
	}
	select {} // run until killed
}

// crashUpsert bumps counter <k, v> → <k, v+1> through the commuting
// (key-latch, group-commit) path.
func crashUpsert(s *dataspace.Store, owner tuple.ProcessID, k int64) error {
	key := dataspace.InterestKey{Arity: 2, Lead: tuple.Int(k), LeadKnown: true}
	return s.UpdateCommuting(owner, []dataspace.InterestKey{key}, func(w dataspace.Writer) error {
		var id tuple.ID
		var cur int64
		found := false
		w.Scan(2, tuple.Int(k), true, func(i tuple.ID, t tuple.Tuple) bool {
			if v, ok := t.Field(1).AsInt(); ok {
				id, cur, found = i, v, true
			}
			return false
		})
		if !found {
			return fmt.Errorf("counter %d missing", k)
		}
		if err := w.Delete(id); err != nil {
			return err
		}
		w.Insert(tuple.New(tuple.Int(k), tuple.Int(cur+1)), owner)
		return nil
	})
}

// crashTransfer moves amount between two accounts in one commit through
// the shard-2PL path.
func crashTransfer(s *dataspace.Store, owner tuple.ProcessID, from, to, amount int64) error {
	keys := []dataspace.InterestKey{
		{Arity: 2, Lead: tuple.Int(from), LeadKnown: true},
		{Arity: 2, Lead: tuple.Int(to), LeadKnown: true},
	}
	return s.UpdateKeys(owner, keys, func(w dataspace.Writer) error {
		get := func(acct int64) (tuple.ID, int64, error) {
			var id tuple.ID
			var bal int64
			found := false
			w.Scan(2, tuple.Int(acct), true, func(i tuple.ID, t tuple.Tuple) bool {
				if v, ok := t.Field(1).AsInt(); ok {
					id, bal, found = i, v, true
				}
				return false
			})
			if !found {
				return 0, 0, fmt.Errorf("account %d missing", acct)
			}
			return id, bal, nil
		}
		fid, fbal, err := get(from)
		if err != nil {
			return err
		}
		tid, tbal, err := get(to)
		if err != nil {
			return err
		}
		if err := w.Delete(fid); err != nil {
			return err
		}
		if err := w.Delete(tid); err != nil {
			return err
		}
		w.Insert(tuple.New(tuple.Int(from), tuple.Int(fbal-amount)), owner)
		w.Insert(tuple.New(tuple.Int(to), tuple.Int(tbal+amount)), owner)
		return nil
	})
}

// TestKillRecover is the kill-and-restore suite. Iteration count per
// (shards, mode) pair comes from SDL_WAL_KILL_ITERS (default 3, so the
// suite stays cheap in `go test ./...`; the acceptance run uses ~100).
func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short")
	}
	iters := 3
	if v := os.Getenv(crashItersEnv); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad %s: %v", crashItersEnv, err)
		}
		iters = n
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	shardCounts := []int{1, 4, 16}
	modes := []SyncMode{SyncCommit, SyncBatch}
	for _, shards := range shardCounts {
		for i := 0; i < iters; i++ {
			mode := modes[i%len(modes)]
			// Recover into a different shard count than the child wrote.
			reShards := shardCounts[(indexOf(shardCounts, shards)+1+i%2)%len(shardCounts)]
			t.Run(fmt.Sprintf("shards=%d/iter=%d/%s", shards, i, mode), func(t *testing.T) {
				runKillIteration(t, rng, shards, reShards, mode)
			})
		}
	}
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}

func runKillIteration(t *testing.T, rng *rand.Rand, shards, reShards int, mode SyncMode) {
	dir := t.TempDir()
	acks := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashDirEnv+"="+dir,
		crashAcksEnv+"="+acks,
		crashShardsEnv+"="+strconv.Itoa(shards),
		crashSyncEnv+"="+mode.String(),
		// Small segments so kills regularly land near rotation boundaries.
		crashSegSizeEnv+"=4096",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	// Wait for setup, then let the campaign run for a random slice before
	// pulling the plug.
	br := bufio.NewReader(stdout)
	if line, err := br.ReadString('\n'); err != nil || line != "ready\n" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child never became ready: %q %v", line, err)
	}
	time.Sleep(time.Duration(2+rng.Intn(58)) * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	cmd.Wait() // expected: signal: killed

	// Pure evidence pass: what did the log durably record?
	st, err := ReadState(dir)
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	model, err := refmodel.ReplayFrom(st.Base, st.CheckpointVersion, st.Records)
	if err != nil {
		t.Fatalf("reference replay of surviving log: %v", err)
	}

	// Workload invariants on the replayed state.
	counters := map[int64]int64{}
	balances := map[int64]int64{}
	for _, inst := range model.All() {
		lead, ok := inst.Tuple.Field(0).AsInt()
		if !ok || inst.Tuple.Arity() != 2 {
			t.Fatalf("unexpected tuple in history: %s", inst.Tuple)
		}
		val, _ := inst.Tuple.Field(1).AsInt()
		switch {
		case lead >= 100 && lead < 100+crashCounters:
			if _, dup := counters[lead]; dup {
				t.Fatalf("counter %d duplicated", lead)
			}
			counters[lead] = val
		case lead >= 200 && lead < 200+crashAccounts:
			if _, dup := balances[lead]; dup {
				t.Fatalf("account %d duplicated", lead)
			}
			balances[lead] = val
		default:
			t.Fatalf("unexpected lead %d", lead)
		}
	}
	if len(counters) > 0 || len(balances) > 0 {
		// Setup commits are individual; a kill mid-setup can leave a
		// prefix. Once all accounts exist the conservation law must hold.
		if len(balances) == crashAccounts {
			var sum int64
			for _, b := range balances {
				sum += b
			}
			if sum != crashAccounts*crashBalance {
				t.Fatalf("transfer sum not conserved: %d != %d", sum, crashAccounts*crashBalance)
			}
		}
		for k := int64(0); k < crashCounters; k++ {
			ackBytes, err := os.ReadFile(filepath.Join(acks, fmt.Sprintf("upsert-%d", k)))
			if err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
			acked := int64(len(ackBytes))
			got, present := counters[100+k]
			if !present {
				if acked > 0 {
					t.Fatalf("counter %d has %d acked upserts but no surviving instance", k, acked)
				}
				continue
			}
			// Acked ⇒ durable ⇒ recovered; at most one un-acked commit can
			// be in flight per worker.
			if got < acked {
				t.Fatalf("counter %d lost committed effects: recovered %d < acked %d", k, got, acked)
			}
			if got > acked+crashWorkers {
				t.Fatalf("counter %d duplicated effects: recovered %d > acked %d + %d workers", k, got, acked, crashWorkers)
			}
		}
	}

	// Full recovery at a different shard count must match the evidence.
	s := dataspace.New(dataspace.WithShards(reShards))
	l, err := Open(dir, Options{Sync: mode})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stats, err := l.Recover(s)
	if err != nil {
		t.Fatalf("Recover at %d shards: %v", reShards, err)
	}
	if !refmodel.SameMultiset(model.Multiset(), refmodel.MultisetOf(s)) {
		t.Fatalf("recovered store (%d shards) diverges from replayed evidence", reShards)
	}
	if stats.Replayed != len(st.Records) {
		t.Fatalf("recovery replayed %d records, evidence had %d", stats.Replayed, len(st.Records))
	}

	// And the recovered store keeps working: more durable commits, then a
	// clean close and one more recovery round-trip.
	s.SetDurable(l)
	s.Assert(9, tuple.New(tuple.Int(300), tuple.Int(1)))
	want := refmodel.MultisetOf(s)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := dataspace.New(dataspace.WithShards(shards))
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	if _, err := l2.Recover(s2); err != nil {
		t.Fatalf("final recover: %v", err)
	}
	if !refmodel.SameMultiset(want, refmodel.MultisetOf(s2)) {
		t.Fatal("post-recovery commits lost")
	}
	l2.Close()
}
