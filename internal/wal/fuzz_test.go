package wal

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// fuzzRecords is a fixed record stream used to seed the corpus and to
// check the round-trip property.
func fuzzRecords() []dataspace.CommitRecord {
	return []dataspace.CommitRecord{
		{Version: 1, Owner: 7, Inserted: []dataspace.Instance{
			{ID: 1, Owner: 7, Tuple: tuple.New(tuple.Int(1), tuple.Int(2))},
		}},
		{Version: 2, Owner: 3, Inserted: []dataspace.Instance{
			{ID: 2, Owner: 3, Tuple: tuple.New(tuple.Int(-9))},
		}, Deleted: []dataspace.Instance{
			{ID: 1, Owner: 7, Tuple: tuple.New(tuple.Int(1), tuple.Int(2))},
		}},
		{Version: 3, Owner: 1},
	}
}

func encodeFrames(recs []dataspace.CommitRecord) []byte {
	var body []byte
	for _, rec := range recs {
		body = appendFrame(body, appendRecordPayload(nil, rec))
	}
	return body
}

func sameRecord(a, b dataspace.CommitRecord) bool {
	if a.Version != b.Version || a.Owner != b.Owner ||
		len(a.Inserted) != len(b.Inserted) || len(a.Deleted) != len(b.Deleted) {
		return false
	}
	for i := range a.Inserted {
		x, y := a.Inserted[i], b.Inserted[i]
		if x.ID != y.ID || x.Owner != y.Owner || !x.Tuple.Equal(y.Tuple) {
			return false
		}
	}
	for i := range a.Deleted {
		x, y := a.Deleted[i], b.Deleted[i]
		if x.ID != y.ID || x.Owner != y.Owner || !x.Tuple.Equal(y.Tuple) {
			return false
		}
	}
	return true
}

// FuzzWALDecode feeds arbitrary bytes to the segment-body scanner. The
// scanner must never panic, and — the prefix property — every record it
// returns must be framed entirely inside the input before the first
// damaged frame: when the input is a valid frame stream with a suffix
// chopped or a byte flipped, the output is exactly the unbroken prefix.
func FuzzWALDecode(f *testing.F) {
	valid := encodeFrames(fuzzRecords())
	f.Add(valid)
	f.Add(valid[:len(valid)-3])          // torn tail
	f.Add([]byte{})                      // empty body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix
	mut := bytes.Clone(valid)
	mut[2] ^= 0x40
	f.Add(mut) // corrupt first frame

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, tail := scanFrames(data)
		if tail < 0 || tail > len(data) {
			t.Fatalf("tail %d out of range for %d bytes", tail, len(data))
		}
		// Every returned record must re-encode into a frame found intact,
		// in order, inside the consumed prefix — records cannot come from
		// beyond the cut.
		consumed := data[:len(data)-tail]
		off := 0
		for i, rec := range recs {
			if off+frameHeaderLen > len(consumed) {
				t.Fatalf("record %d claims bytes past the cut", i)
			}
			n := int(binary.LittleEndian.Uint32(consumed[off:]))
			payload := consumed[off+frameHeaderLen : off+frameHeaderLen+n]
			got, err := decodeRecordPayload(payload)
			if err != nil {
				t.Fatalf("record %d frame does not re-decode: %v", i, err)
			}
			if !sameRecord(got, rec) {
				t.Fatalf("record %d diverges from its frame", i)
			}
			off += frameHeaderLen + n
		}
		if off != len(consumed) {
			t.Fatalf("scan consumed %d bytes but frames account for %d", len(consumed), off)
		}
	})
}

// FuzzWALRoundTrip drives the encoder with fuzzer-chosen record contents
// and requires exact decode.
func FuzzWALRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(42), uint64(3), []byte("seed"))
	f.Fuzz(func(t *testing.T, version uint64, val int64, owner uint64, tag []byte) {
		if len(tag) > 64 {
			tag = tag[:64]
		}
		rec := dataspace.CommitRecord{
			Version: version,
			Owner:   tuple.ProcessID(owner),
			Inserted: []dataspace.Instance{
				{ID: 1, Owner: tuple.ProcessID(owner), Tuple: tuple.New(tuple.Int(val), tuple.String(string(tag)))},
			},
		}
		body := encodeFrames([]dataspace.CommitRecord{rec})
		recs, tail := scanFrames(body)
		if tail != 0 || len(recs) != 1 || !sameRecord(recs[0], rec) {
			t.Fatalf("round-trip failed: tail=%d n=%d", tail, len(recs))
		}
	})
}
