// Package workload generates the deterministic, seeded inputs for the
// paper's example programs and the benchmark harness: integer arrays
// (§3.1), property lists (§3.2), synthetic digitized images (§3.3 — the
// substitution for the paper's "continuous terrain scanning" imagery), and
// producer/consumer streams (E7/E8).
//
// Every generator is a pure function of its parameters and seed, so
// experiments are reproducible run to run.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Array returns n pseudo-random values in [1, 100] and their sum.
func Array(n int, seed int64) (values []int64, sum int64) {
	rng := rand.New(rand.NewSource(seed))
	values = make([]int64, n)
	for i := range values {
		values[i] = 1 + rng.Int63n(100)
		sum += values[i]
	}
	return values, sum
}

// LoadArray asserts <k, A(k)> tuples (1-based k) into the store and
// returns the expected sum.
func LoadArray(s *dataspace.Store, n int, seed int64) int64 {
	values, sum := Array(n, seed)
	ts := make([]tuple.Tuple, n)
	for i, v := range values {
		ts[i] = tuple.New(tuple.Int(int64(i+1)), tuple.Int(v))
	}
	s.Assert(tuple.Environment, ts...)
	return sum
}

// LoadArrayPhased asserts <k, A(k), 1> tuples (phase-tagged, for Sum2).
func LoadArrayPhased(s *dataspace.Store, n int, seed int64) int64 {
	values, sum := Array(n, seed)
	ts := make([]tuple.Tuple, n)
	for i, v := range values {
		ts[i] = tuple.New(tuple.Int(int64(i+1)), tuple.Int(v), tuple.Int(1))
	}
	s.Assert(tuple.Environment, ts...)
	return sum
}

// PropertyNode is one node of a §3.2 property list.
type PropertyNode struct {
	ID    int64
	Name  string
	Value int64
	Next  int64 // 0 means nil
}

// PropertyList generates a linked property list of n nodes with distinct
// property names prop0..prop(n-1) in shuffled order. Node IDs are 1..n in
// list order (node 1 is the head).
func PropertyList(n int, seed int64) []PropertyNode {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	nodes := make([]PropertyNode, n)
	for i := 0; i < n; i++ {
		next := int64(i + 2)
		if i == n-1 {
			next = 0
		}
		nodes[i] = PropertyNode{
			ID:    int64(i + 1),
			Name:  fmt.Sprintf("prop%d", perm[i]),
			Value: rng.Int63n(1000),
			Next:  next,
		}
	}
	return nodes
}

// NextValue encodes a Next link as a tuple value (atom nil for 0).
func NextValue(next int64) tuple.Value {
	if next == 0 {
		return tuple.Atom("nil")
	}
	return tuple.Int(next)
}

// LoadPropertyList asserts the <node_id, name, value, next> tuples.
func LoadPropertyList(s *dataspace.Store, nodes []PropertyNode) {
	ts := make([]tuple.Tuple, len(nodes))
	for i, nd := range nodes {
		ts[i] = tuple.New(
			tuple.Int(nd.ID), tuple.Atom(nd.Name), tuple.Int(nd.Value), NextValue(nd.Next))
	}
	s.Assert(tuple.Environment, ts...)
}

// Image is a synthetic digitized image: a W×H grid of intensities.
type Image struct {
	W, H int
	Pix  []int64 // row-major, intensities in [0, 255]
}

// At returns the intensity at (x, y).
func (im *Image) At(x, y int) int64 { return im.Pix[y*im.W+x] }

// Set writes the intensity at (x, y).
func (im *Image) Set(x, y int, v int64) { im.Pix[y*im.W+x] = v }

// Coord flattens (x, y) to the single pixel id used in tuples.
func (im *Image) Coord(x, y int) int64 { return int64(y*im.W + x) }

// XY recovers (x, y) from a pixel id.
func (im *Image) XY(p int64) (x, y int) { return int(p) % im.W, int(p) / im.W }

// Neighbors4 returns the 4-connected neighbour pixel ids of p.
func (im *Image) Neighbors4(p int64) []int64 {
	x, y := im.XY(p)
	out := make([]int64, 0, 4)
	if x > 0 {
		out = append(out, im.Coord(x-1, y))
	}
	if x < im.W-1 {
		out = append(out, im.Coord(x+1, y))
	}
	if y > 0 {
		out = append(out, im.Coord(x, y-1))
	}
	if y < im.H-1 {
		out = append(out, im.Coord(x, y+1))
	}
	return out
}

// GenImage synthesizes a w×h image made of `blobs` rectangular regions of
// random bright intensity over a dark background, mimicking a thresholded
// terrain scan. Blobs may overlap, merging into larger regions.
func GenImage(w, h, blobs int, seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := &Image{W: w, H: h, Pix: make([]int64, w*h)}
	for i := range im.Pix {
		im.Pix[i] = rng.Int63n(60) // background: dark
	}
	for b := 0; b < blobs; b++ {
		bw := 1 + rng.Intn(max(1, w/3))
		bh := 1 + rng.Intn(max(1, h/3))
		x0 := rng.Intn(max(1, w-bw))
		y0 := rng.Intn(max(1, h-bh))
		val := 150 + rng.Int63n(100) // bright
		for y := y0; y < y0+bh; y++ {
			for x := x0; x < x0+bw; x++ {
				im.Set(x, y, val)
			}
		}
	}
	return im
}

// Threshold is the paper's T operation: binarize at the given cut.
func Threshold(v, cut int64) int64 {
	if v >= cut {
		return 1
	}
	return 0
}

// LoadImage asserts <image, p, v> tuples for every pixel.
func LoadImage(s *dataspace.Store, im *Image) {
	ts := make([]tuple.Tuple, 0, im.W*im.H)
	for p := int64(0); p < int64(im.W*im.H); p++ {
		ts = append(ts, tuple.New(tuple.Atom("image"), tuple.Int(p), tuple.Int(im.Pix[p])))
	}
	s.Assert(tuple.Environment, ts...)
}

// ReferenceLabels computes the ground-truth region labeling: pixels are
// thresholded at cut, and each 4-connected region of equal threshold value
// is labeled with the largest pixel id it covers (the paper's "label of
// the largest xy-coordinate covered by the region"). It returns the label
// of every pixel.
func ReferenceLabels(im *Image, cut int64) []int64 {
	n := im.W * im.H
	th := make([]int64, n)
	for i, v := range im.Pix {
		th[i] = Threshold(v, cut)
	}
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = -1
	}
	for start := 0; start < n; start++ {
		if labels[start] >= 0 {
			continue
		}
		// Flood fill the region of `start`, tracking the max pixel id.
		stack := []int64{int64(start)}
		region := []int64{}
		maxID := int64(start)
		labels[start] = -2 // visiting
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			region = append(region, p)
			if p > maxID {
				maxID = p
			}
			for _, q := range im.Neighbors4(p) {
				if labels[q] == -1 && th[q] == th[int64(start)] {
					labels[q] = -2
					stack = append(stack, q)
				}
			}
		}
		for _, p := range region {
			labels[p] = maxID
		}
	}
	return labels
}

// RegionCount returns the number of distinct regions in a labeling.
func RegionCount(labels []int64) int {
	set := make(map[int64]struct{})
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}

// Stream generates n work items <job, i, payload> for producer/consumer
// experiments.
func Stream(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.New(tuple.Atom("job"), tuple.Int(int64(i)), tuple.Int(rng.Int63n(1000)))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
