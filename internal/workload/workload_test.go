package workload

import (
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

func TestArrayDeterministic(t *testing.T) {
	a1, s1 := Array(100, 42)
	a2, s2 := Array(100, 42)
	if s1 != s2 {
		t.Fatal("same seed produced different sums")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different arrays")
		}
	}
	_, s3 := Array(100, 43)
	if s3 == s1 {
		t.Error("different seeds should (almost surely) differ")
	}
	var manual int64
	for _, v := range a1 {
		manual += v
		if v < 1 || v > 100 {
			t.Fatalf("value %d out of range", v)
		}
	}
	if manual != s1 {
		t.Errorf("sum = %d, want %d", s1, manual)
	}
}

func TestLoadArray(t *testing.T) {
	s := dataspace.New()
	sum := LoadArray(s, 10, 1)
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	var got int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			v, _ := inst.Tuple.Field(1).AsInt()
			got += v
			return true
		})
	})
	if got != sum {
		t.Errorf("loaded sum = %d, want %d", got, sum)
	}

	s2 := dataspace.New()
	sum2 := LoadArrayPhased(s2, 10, 1)
	if sum2 != sum {
		t.Error("phased loader changed values")
	}
	s2.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			if inst.Tuple.Arity() != 3 || !inst.Tuple.Field(2).Equal(tuple.Int(1)) {
				t.Errorf("bad phased tuple %v", inst.Tuple)
			}
			return true
		})
	})
}

func TestPropertyListStructure(t *testing.T) {
	nodes := PropertyList(8, 7)
	if len(nodes) != 8 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	names := map[string]bool{}
	for i, nd := range nodes {
		if nd.ID != int64(i+1) {
			t.Errorf("node %d has ID %d", i, nd.ID)
		}
		if i < len(nodes)-1 && nd.Next != int64(i+2) {
			t.Errorf("node %d next = %d", i, nd.Next)
		}
		names[nd.Name] = true
	}
	if nodes[len(nodes)-1].Next != 0 {
		t.Error("last node should have Next 0")
	}
	if len(names) != 8 {
		t.Errorf("names not distinct: %v", names)
	}
}

func TestNextValue(t *testing.T) {
	if NextValue(0) != tuple.Atom("nil") {
		t.Error("0 should encode as nil")
	}
	if NextValue(3) != tuple.Int(3) {
		t.Error("3 should encode as Int(3)")
	}
}

func TestLoadPropertyList(t *testing.T) {
	s := dataspace.New()
	nodes := PropertyList(5, 1)
	LoadPropertyList(s, nodes)
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestImageCoordsAndNeighbors(t *testing.T) {
	im := &Image{W: 3, H: 2, Pix: make([]int64, 6)}
	if im.Coord(2, 1) != 5 {
		t.Errorf("Coord = %d", im.Coord(2, 1))
	}
	x, y := im.XY(5)
	if x != 2 || y != 1 {
		t.Errorf("XY = %d,%d", x, y)
	}
	// Corner pixel 0 has 2 neighbours; center-edge pixel 1 has 3.
	if n := im.Neighbors4(0); len(n) != 2 {
		t.Errorf("corner neighbours = %v", n)
	}
	if n := im.Neighbors4(1); len(n) != 3 {
		t.Errorf("edge neighbours = %v", n)
	}
}

func TestGenImageDeterministicAndBright(t *testing.T) {
	im1 := GenImage(16, 16, 3, 9)
	im2 := GenImage(16, 16, 3, 9)
	for i := range im1.Pix {
		if im1.Pix[i] != im2.Pix[i] {
			t.Fatal("same seed produced different images")
		}
	}
	bright := 0
	for _, v := range im1.Pix {
		if v >= 100 {
			bright++
		}
	}
	if bright == 0 {
		t.Error("no bright blob pixels generated")
	}
}

func TestThreshold(t *testing.T) {
	if Threshold(99, 100) != 0 || Threshold(100, 100) != 1 {
		t.Error("threshold misclassifies")
	}
}

func TestReferenceLabelsInvariants(t *testing.T) {
	im := GenImage(12, 12, 3, 5)
	labels := ReferenceLabels(im, 100)
	if len(labels) != 144 {
		t.Fatalf("labels = %d", len(labels))
	}
	th := make([]int64, len(im.Pix))
	for i, v := range im.Pix {
		th[i] = Threshold(v, 100)
	}
	for p := int64(0); p < int64(len(labels)); p++ {
		// The label is the max pixel id of the region, so label >= p only
		// for... actually each pixel's label must be >= some pixel in the
		// region — at minimum the label names a pixel of the same region.
		l := labels[p]
		if l < 0 || l >= int64(len(labels)) {
			t.Fatalf("label %d out of range", l)
		}
		if th[l] != th[p] {
			t.Errorf("label %d has different threshold class than pixel %d", l, p)
		}
		// 4-connected neighbours with the same threshold share the label.
		for _, q := range im.Neighbors4(p) {
			if th[q] == th[p] && labels[q] != labels[p] {
				t.Errorf("neighbours %d,%d same class, labels %d,%d", p, q, labels[p], labels[q])
			}
		}
	}
	// A region's label pixel must carry that label itself.
	for p, l := range labels {
		if labels[l] != l {
			t.Errorf("pixel %d labeled %d, but %d labeled %d", p, l, l, labels[l])
		}
	}
}

func TestReferenceLabelsUniform(t *testing.T) {
	// A uniform image is one region labeled with the last pixel id.
	im := &Image{W: 4, H: 4, Pix: make([]int64, 16)}
	labels := ReferenceLabels(im, 100)
	for _, l := range labels {
		if l != 15 {
			t.Fatalf("uniform image labels = %v", labels)
		}
	}
	if RegionCount(labels) != 1 {
		t.Error("uniform image should be one region")
	}
}

func TestStreamDeterministic(t *testing.T) {
	s1 := Stream(10, 3)
	s2 := Stream(10, 3)
	for i := range s1 {
		if !s1[i].Equal(s2[i]) {
			t.Fatal("stream not deterministic")
		}
	}
	if len(s1) != 10 {
		t.Errorf("len = %d", len(s1))
	}
}
