// Package refmodel is an executable reference semantics for SDL
// transactions: a deliberately naive, obviously-correct model of the
// dataspace (a plain slice of instances, no indexes, no locks) and of
// one-transaction-at-a-time evaluation, translated as directly as possible
// from the paper's definitions:
//
//	W  = Import(p) ∩ D
//	(W_r, W_a) = q(W)
//	D' = (D − W_r) ∪ (Export(p) ∩ W_a)
//
// The test suite uses it for differential testing: random transaction
// sequences are applied to both the production engine and this model, and
// the resulting configurations must be equal. The model is not exported
// outside the repository's tests and benchmarks.
package refmodel

import (
	"fmt"
	"sort"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/view"
)

// Instance is one tuple instance of the model.
type Instance struct {
	ID    tuple.ID
	Tuple tuple.Tuple
	Owner tuple.ProcessID
}

// Model is the naive dataspace: an append-only slice with tombstones
// compacted on demand. The zero value is an empty dataspace.
type Model struct {
	instances []Instance
	nextID    tuple.ID
}

// Assert adds a tuple and returns its instance ID.
func (m *Model) Assert(owner tuple.ProcessID, t tuple.Tuple) tuple.ID {
	m.nextID++
	m.instances = append(m.instances, Instance{ID: m.nextID, Tuple: t, Owner: owner})
	return m.nextID
}

// Len returns the number of instances.
func (m *Model) Len() int { return len(m.instances) }

// All returns the instances sorted by ID.
func (m *Model) All() []Instance {
	out := make([]Instance, len(m.instances))
	copy(out, m.instances)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// source adapts a window (import-filtered instance list) to
// pattern.Source by brute force: every scan enumerates everything and
// filters.
type source struct {
	insts []Instance
}

func (s source) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	for _, inst := range s.insts {
		if inst.Tuple.Arity() != arity {
			continue
		}
		if leadKnown && !inst.Tuple.Field(0).Equal(lead) {
			continue
		}
		if !fn(inst.ID, inst.Tuple) {
			return
		}
	}
}

// readerShim gives view matchers a dataspace.Reader over the model (for
// dynamic views). Only the methods matchers actually use do real work.
type readerShim struct {
	insts []Instance
}

func (r readerShim) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	source{insts: r.insts}.Scan(arity, lead, leadKnown, fn)
}

func (r readerShim) Get(id tuple.ID) (dataspace.Instance, bool) {
	for _, inst := range r.insts {
		if inst.ID == id {
			return dataspace.Instance{ID: inst.ID, Tuple: inst.Tuple, Owner: inst.Owner}, true
		}
	}
	return dataspace.Instance{}, false
}

func (r readerShim) Each(fn func(dataspace.Instance) bool) {
	for _, inst := range r.insts {
		if !fn(dataspace.Instance{ID: inst.ID, Tuple: inst.Tuple, Owner: inst.Owner}) {
			return
		}
	}
}

func (r readerShim) Arities() []int {
	seen := map[int]bool{}
	var out []int
	for _, inst := range r.insts {
		a := inst.Tuple.Arity()
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

func (r readerShim) Version() uint64 { return 0 }
func (r readerShim) Len() int        { return len(r.insts) }

// Txn is one transaction in the model's terms.
type Txn struct {
	Proc    tuple.ProcessID
	View    view.View
	Env     expr.Env
	Query   pattern.Query
	Asserts []pattern.Pattern
}

// Result reports the model's evaluation.
type Result struct {
	OK        bool
	Env       expr.Env
	Retracted []tuple.ID
	Asserted  []tuple.ID
}

// Apply evaluates one transaction per the paper's definition and, on
// success, applies its effect. On failure the model is unchanged.
//
// Solution choice is deterministic: among all solutions of an ∃ query the
// one with the lexicographically smallest retraction-ID list (then
// smallest environment rendering) is taken, so differential tests can
// steer the production engine only when queries are confluent (the tests
// use value-deterministic workloads).
func (m *Model) Apply(tx Txn) (Result, error) {
	rd := readerShim{insts: m.instances}

	// W = Import(p) ∩ D.
	var window []Instance
	for _, inst := range m.instances {
		if tx.View.Import.Admits(rd, tx.Env, inst.Tuple) {
			window = append(window, inst)
		}
	}

	var sols []pattern.Binding
	err := pattern.Enumerate(tx.Query, source{insts: window}, tx.Env, func(b pattern.Binding) bool {
		sols = append(sols, b)
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if len(sols) == 0 {
		return Result{Env: tx.Env}, nil
	}
	if tx.Query.Quant == pattern.Exists {
		sols = sols[:1]
	}

	// W_r: union of retractions, deduplicated.
	retract := map[tuple.ID]bool{}
	for _, sol := range sols {
		for _, id := range sol.RetractedIDs() {
			retract[id] = true
		}
	}
	// W_a ∩ Export(p).
	var asserts []tuple.Tuple
	for _, sol := range sols {
		for _, ap := range tx.Asserts {
			t, err := ap.Ground(sol.Env)
			if err != nil {
				return Result{}, fmt.Errorf("refmodel: ground: %w", err)
			}
			if tx.View.Exports(rd, sol.Env, t) {
				asserts = append(asserts, t)
			}
		}
	}

	// D' = (D − W_r) ∪ exports.
	kept := m.instances[:0]
	for _, inst := range m.instances {
		if !retract[inst.ID] {
			kept = append(kept, inst)
		}
	}
	m.instances = kept
	res := Result{OK: true, Env: tx.Env}
	if tx.Query.Quant == pattern.Exists {
		res.Env = sols[0].Env
	}
	for id := range retract {
		res.Retracted = append(res.Retracted, id)
	}
	sort.Slice(res.Retracted, func(i, j int) bool { return res.Retracted[i] < res.Retracted[j] })
	for _, t := range asserts {
		res.Asserted = append(res.Asserted, m.Assert(tx.Proc, t))
	}
	return res, nil
}

// ApplyEffects replays one committed transaction's effects verbatim: the
// deleted instances are removed (each must be present with the same tuple)
// and the inserted instances are added under their production IDs (each
// must be fresh). The serializability audit uses it to re-execute a
// CommitLog in version order: if the replay ever references an instance
// the serial history would not contain, the concurrent execution was not
// equivalent to its commit order.
func (m *Model) ApplyEffects(deleted, inserted []dataspace.Instance) error {
	for _, del := range deleted {
		idx := -1
		for i, inst := range m.instances {
			if inst.ID == del.ID {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("refmodel: delete of absent instance #%d %s", del.ID, del.Tuple)
		}
		if !m.instances[idx].Tuple.Equal(del.Tuple) {
			return fmt.Errorf("refmodel: delete of #%d sees %s, history has %s",
				del.ID, del.Tuple, m.instances[idx].Tuple)
		}
		m.instances = append(m.instances[:idx], m.instances[idx+1:]...)
	}
	for _, ins := range inserted {
		for _, inst := range m.instances {
			if inst.ID == ins.ID {
				return fmt.Errorf("refmodel: insert of duplicate instance #%d %s", ins.ID, ins.Tuple)
			}
		}
		m.instances = append(m.instances, Instance{ID: ins.ID, Tuple: ins.Tuple, Owner: ins.Owner})
		if ins.ID > m.nextID {
			m.nextID = ins.ID
		}
	}
	return nil
}

// Replay re-executes a commit log serially, in version order, against a
// fresh model. The records must arrive sorted by version (trace.CommitLog
// returns them that way) and their versions must form the gap-free
// sequence 1..n — a duplicate or missing version means two commits claimed
// the same serialization position, so no serial order exists. Each record's
// effects then replay verbatim through ApplyEffects; any reference to an
// instance the serial history would not contain proves the concurrent
// execution was not equivalent to its commit order. The schedule
// exploration harness runs this after every explored seed.
func Replay(recs []dataspace.CommitRecord) (*Model, error) {
	for i, rec := range recs {
		if rec.Version != uint64(i+1) {
			return nil, fmt.Errorf("refmodel: commit %d has version %d, want %d (duplicate or missing serialization position)",
				i, rec.Version, uint64(i+1))
		}
	}
	return ReplayFrom(nil, 0, recs)
}

// ReplayFrom is Replay seeded with a base configuration: the model starts
// from the base instances (a checkpoint's contents) at baseVersion, and
// the records must carry strictly increasing versions > baseVersion.
// Unlike Replay, version GAPS are legal: the WAL recovery path replays the
// durable suffix of a crashed run, and a commit missing from it was never
// fsynced — but conflicting commits append to the log in version order, so
// every durable record with a version above the missing one provably
// commuted with it, and the durable records applied in version order are
// still a legal serial history. Duplicate versions remain an error: two
// records claiming one serialization position can never replay soundly.
func ReplayFrom(base []dataspace.Instance, baseVersion uint64, recs []dataspace.CommitRecord) (*Model, error) {
	m := &Model{}
	for _, inst := range base {
		m.instances = append(m.instances, Instance{ID: inst.ID, Tuple: inst.Tuple, Owner: inst.Owner})
		if inst.ID > m.nextID {
			m.nextID = inst.ID
		}
	}
	prev := baseVersion
	for i, rec := range recs {
		if rec.Version <= prev {
			return nil, fmt.Errorf("refmodel: commit %d has version %d after %d (not strictly increasing)",
				i, rec.Version, prev)
		}
		prev = rec.Version
		if err := m.ApplyEffects(rec.Deleted, rec.Inserted); err != nil {
			return nil, fmt.Errorf("refmodel: replaying version %d: %w", rec.Version, err)
		}
	}
	return m, nil
}

// SameMultiset reports whether two content multisets are equal.
func SameMultiset(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// Multiset returns the content multiset (hash → count), ignoring instance
// identity — the right equality notion for differential tests, since the
// production engine and the model allocate IDs differently once their
// choices diverge.
func (m *Model) Multiset() map[uint64]int {
	out := make(map[uint64]int, len(m.instances))
	for _, inst := range m.instances {
		out[inst.Tuple.Hash()]++
	}
	return out
}

// MultisetOf computes the same content multiset for a production store.
func MultisetOf(s *dataspace.Store) map[uint64]int {
	out := map[uint64]int{}
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			out[inst.Tuple.Hash()]++
			return true
		})
	})
	return out
}

// Compile-time checks.
var (
	_ pattern.Source   = source{}
	_ dataspace.Reader = readerShim{}
)
