package refmodel

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/trace"
	"github.com/sdl-lang/sdl/internal/txn"
)

// Serializability audit: N goroutines hammer the sharded store with random
// transactions while a CommitLog records every commit's version and
// effects. Because each commit holds its shard write locks while the hook
// runs and takes its version from one global atomic, replaying the
// committed effects through the reference model in version order is an
// equivalent serial execution — it must visit only instances that exist at
// that point of the serial history and must land on exactly the store's
// final content multiset. A lost update, dirty read, or write-skew in the
// sharded 2PL would surface as a replay referencing a missing/duplicate
// instance or as a final-state mismatch.
func TestSerializabilityAudit(t *testing.T) {
	const workers = 8
	const opsPerWorker = 250
	for _, shards := range []int{1, 4, 16} {
		for _, mode := range []txn.Mode{txn.Coarse, txn.Optimistic} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(t *testing.T) {
				store := dataspace.New(dataspace.WithShards(shards))
				clog := trace.NewCommitLog()
				clog.Attach(store)
				engine := txn.New(store, mode)

				var wg sync.WaitGroup
				errCh := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(w)*7919 + int64(shards)))
						for i := 0; i < opsPerWorker; i++ {
							o := genOp(rng)
							if _, err := engine.Immediate(o.req); err != nil {
								errCh <- fmt.Errorf("worker %d op %d (%s): %w", w, i, o.descr, err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				close(errCh)
				if err := <-errCh; err != nil {
					t.Fatal(err)
				}

				recs := clog.Commits()
				// Every mutating commit produced exactly one record, and the
				// version sequence is gap-free: versions come from one atomic
				// allocated under the commit's locks, so a gap or duplicate
				// means a commit escaped the hook (or fired twice).
				if got := store.Metrics().Commits(); got != uint64(len(recs)) {
					t.Fatalf("store counts %d commits, log has %d records", got, len(recs))
				}
				if v := store.Version(); v != uint64(len(recs)) {
					t.Fatalf("store version %d, log has %d records", v, len(recs))
				}
				for i, rec := range recs {
					if rec.Version != uint64(i)+1 {
						t.Fatalf("record %d: version %d, want %d", i, rec.Version, i+1)
					}
				}

				// Replay the committed effects serially.
				model := &Model{}
				for i, rec := range recs {
					if err := model.ApplyEffects(rec.Deleted, rec.Inserted); err != nil {
						t.Fatalf("replaying record %d (v%d): %v", i, rec.Version, err)
					}
				}
				if !sameMultiset(model.Multiset(), MultisetOf(store)) {
					t.Fatalf("serial replay diverges from final dataspace\nreplay: %v\nstore:  %v",
						model.All(), dump(store))
				}

				// Metrics cross-check against the same ground truth: the
				// engine saw every commit it reported, and attempted at least
				// as many executions.
				snap := store.Metrics().Snapshot()
				if snap.TotalCommits() != uint64(len(recs)) {
					// Read-only successful transactions commit without
					// mutating; those add to txn commits but not to records,
					// so the txn total may only exceed the record count.
					if snap.TotalCommits() < uint64(len(recs)) {
						t.Fatalf("txn commits %d < %d committed records", snap.TotalCommits(), len(recs))
					}
				}
				if snap.TotalAttempts() < snap.TotalCommits() {
					t.Fatalf("attempts %d < commits %d", snap.TotalAttempts(), snap.TotalCommits())
				}
				if got := snap.Txn[metrics.TxnImmediate.String()].Attempts; got != workers*opsPerWorker {
					t.Fatalf("immediate attempts %d, want %d", got, workers*opsPerWorker)
				}
			})
		}
	}
}

// The audit must also hold when the gated instruments are live: observation
// may not perturb commit ordering or the hook protocol.
func TestSerializabilityAuditObserved(t *testing.T) {
	store := dataspace.New(dataspace.WithShards(4))
	store.Metrics().SetObserved(true)
	clog := trace.NewCommitLog()
	clog.Attach(store)
	engine := txn.New(store, txn.Optimistic)

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				o := genOp(rng)
				if _, err := engine.Immediate(o.req); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	model := &Model{}
	for i, rec := range clog.Commits() {
		if err := model.ApplyEffects(rec.Deleted, rec.Inserted); err != nil {
			t.Fatalf("replaying record %d: %v", i, err)
		}
	}
	if !sameMultiset(model.Multiset(), MultisetOf(store)) {
		t.Fatal("serial replay diverges from final dataspace under observation")
	}
	// The observed run populated the gated histograms consistently: one
	// latency observation per attempt, one footprint observation per update
	// (mutating commits are the subset of updates that changed something).
	snap := store.Metrics().Snapshot()
	imm := snap.Txn[metrics.TxnImmediate.String()]
	if lat := snap.TxnLatency[metrics.TxnImmediate.String()]; lat.Count != imm.Attempts {
		t.Errorf("latency observations %d, attempts %d", lat.Count, imm.Attempts)
	}
	if snap.Footprint.Count < snap.StoreCommits {
		t.Errorf("footprint observations %d < store commits %d", snap.Footprint.Count, snap.StoreCommits)
	}
}
