package refmodel

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/view"
)

// Differential testing: random confluent transaction sequences applied to
// the production engine and to the reference model must produce identical
// content multisets after every step. "Confluent" means the outcome does
// not depend on which solution an ∃ query picks: each ∃ here either has a
// unique match or all matches have identical content, and ∀ processes all
// solutions; so the engine's arbitrary choice cannot diverge from the
// model's deterministic one.

var tags = []string{"a", "b", "c"}

// op is one randomly generated confluent transaction.
type op struct {
	descr string
	req   txn.Request
	ref   Txn
}

func genOp(rng *rand.Rand) op {
	tag := tuple.Atom(tags[rng.Intn(len(tags))])
	val := rng.Int63n(6)
	switch rng.Intn(5) {
	case 0: // unconditional assert
		a := []pattern.Pattern{pattern.P(pattern.C(tag), pattern.C(tuple.Int(val)))}
		q := pattern.Query{Quant: pattern.Exists}
		return op{
			descr: fmt.Sprintf("assert <%s,%d>", tag, val),
			req:   txn.Request{Proc: 1, View: view.Universal(), Query: q, Asserts: a},
			ref:   Txn{Proc: 1, View: view.Universal(), Query: q, Asserts: a},
		}
	case 1: // ∃ retract of a specific content (all matches identical)
		q := pattern.Q(pattern.R(pattern.C(tag), pattern.C(tuple.Int(val))))
		return op{
			descr: fmt.Sprintf("retract one <%s,%d>", tag, val),
			req:   txn.Request{Proc: 1, View: view.Universal(), Query: q},
			ref:   Txn{Proc: 1, View: view.Universal(), Query: q},
		}
	case 2: // ∀ move: retract all <tag, v> with v >= val, assert <moved, v+1>
		q := pattern.QAll(pattern.R(pattern.C(tag), pattern.V("v"))).
			Where(expr.Ge(expr.V("v"), expr.Const(tuple.Int(val))))
		a := []pattern.Pattern{pattern.P(
			pattern.C(tuple.Atom("moved")),
			pattern.E(expr.Add(expr.V("v"), expr.Const(tuple.Int(1)))),
		)}
		return op{
			descr: fmt.Sprintf("move all <%s,>=%d>", tag, val),
			req:   txn.Request{Proc: 2, View: view.Universal(), Query: q, Asserts: a},
			ref:   Txn{Proc: 2, View: view.Universal(), Query: q, Asserts: a},
		}
	case 3: // membership test with guarded negation (no effect)
		q := pattern.Q(
			pattern.P(pattern.C(tag), pattern.V("v")),
			pattern.N(pattern.C(tag), pattern.V("w")).
				Guarded(expr.Gt(expr.V("w"), expr.V("v"))),
		)
		return op{
			descr: fmt.Sprintf("max-check <%s>", tag),
			req:   txn.Request{Proc: 3, View: view.Universal(), Query: q},
			ref:   Txn{Proc: 3, View: view.Universal(), Query: q},
		}
	default: // view-restricted ∀ retract through a bounded import
		v := view.New(
			view.Union(view.PatWhere(
				pattern.P(pattern.C(tag), pattern.V("x")),
				expr.Lt(expr.V("x"), expr.Const(tuple.Int(val))),
			)),
			view.Union(view.Pat(pattern.P(pattern.C(tuple.Atom("low")), pattern.W()))),
		)
		q := pattern.QAll(pattern.R(pattern.C(tag), pattern.V("v")))
		a := []pattern.Pattern{
			pattern.P(pattern.C(tuple.Atom("low")), pattern.V("v")),
			pattern.P(pattern.C(tuple.Atom("dropped")), pattern.V("v")), // not exportable
		}
		return op{
			descr: fmt.Sprintf("viewed move <%s,<%d>", tag, val),
			req:   txn.Request{Proc: 4, View: v, Query: q, Asserts: a},
			ref:   Txn{Proc: 4, View: v, Query: q, Asserts: a},
		}
	}
}

func sameMultiset(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestDifferentialRandomSequences(t *testing.T) {
	for _, mode := range []txn.Mode{txn.Coarse, txn.Optimistic} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for seedBase := int64(0); seedBase < 30; seedBase++ {
				rng := rand.New(rand.NewSource(seedBase))
				store := dataspace.New()
				engine := txn.New(store, mode)
				model := &Model{}

				for step := 0; step < 60; step++ {
					o := genOp(rng)
					engRes, err := engine.Immediate(o.req)
					if err != nil {
						t.Fatalf("seed %d step %d (%s): engine: %v", seedBase, step, o.descr, err)
					}
					refRes, err := model.Apply(o.ref)
					if err != nil {
						t.Fatalf("seed %d step %d (%s): model: %v", seedBase, step, o.descr, err)
					}
					if engRes.OK != refRes.OK {
						t.Fatalf("seed %d step %d (%s): OK %v vs model %v",
							seedBase, step, o.descr, engRes.OK, refRes.OK)
					}
					if !sameMultiset(MultisetOf(store), model.Multiset()) {
						t.Fatalf("seed %d step %d (%s): state diverged\nengine: %v\nmodel:  %v",
							seedBase, step, o.descr, dump(store), model.All())
					}
				}
			}
		})
	}
}

func dump(s *dataspace.Store) []string {
	var out []string
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			out = append(out, inst.Tuple.String())
			return true
		})
	})
	return out
}

func TestModelBasics(t *testing.T) {
	m := &Model{}
	id := m.Assert(1, tuple.New(tuple.Atom("x"), tuple.Int(1)))
	if m.Len() != 1 || id == 0 {
		t.Fatalf("len=%d id=%d", m.Len(), id)
	}
	res, err := m.Apply(Txn{
		Proc:  2,
		View:  view.Universal(),
		Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("x")), pattern.V("v"))),
		Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("y")),
			pattern.E(expr.Add(expr.V("v"), expr.Const(tuple.Int(1)))))},
	})
	if err != nil || !res.OK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	all := m.All()
	if len(all) != 1 || !all[0].Tuple.Equal(tuple.New(tuple.Atom("y"), tuple.Int(2))) {
		t.Errorf("state = %v", all)
	}
	if all[0].Owner != 2 {
		t.Errorf("owner = %d", all[0].Owner)
	}

	// Failed transaction: no effect.
	res, err = m.Apply(Txn{
		Proc:  2,
		View:  view.Universal(),
		Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("missing")))),
	})
	if err != nil || res.OK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if m.Len() != 1 {
		t.Error("failed txn changed the model")
	}
}

func TestModelWindowRestriction(t *testing.T) {
	m := &Model{}
	m.Assert(1, tuple.New(tuple.Atom("year"), tuple.Int(90)))
	v := view.New(
		view.Union(view.PatWhere(
			pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a")),
			expr.Le(expr.V("a"), expr.Const(tuple.Int(87))),
		)),
		view.Everything(),
	)
	res, err := m.Apply(Txn{
		Proc:  1,
		View:  v,
		Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a"))),
	})
	if err != nil || res.OK {
		t.Fatalf("window should hide year(90): %+v %v", res, err)
	}
}
