package analysis

import (
	"github.com/sdl-lang/sdl/internal/lang"
)

// runFootprint is the footprint pass: it reports, per transaction, when the
// runtime's commutativity-aware commit path (key-level locking + group
// commit, see internal/dataspace) cannot be used, and why. The pass mirrors
// the compiler's footprint.Classify judgment at the AST level:
//
//   - a transaction in a view-restricted process always bypasses footprint
//     planning (a restricted import may consult arbitrary buckets);
//   - a pattern or assertion whose leading field is a wildcard, a query
//     variable, or an expression over query variables is not determined by
//     the issuing environment, so the transaction's footprint cannot be
//     bounded and it falls back to coarse locking.
//
// Everything here is a Note: wide footprints are legal SDL, they just
// serialize. The pass makes the performance cliff visible at vet time
// instead of in a lock-contention profile.
func runFootprint(p *pass) {
	for _, u := range p.units {
		if !p.reachable[u.name] {
			continue
		}
		if u.decl != nil && (len(u.decl.Imports) > 0 || len(u.decl.Exports) > 0) {
			if allRefined(p, u) {
				p.addf(u.decl.Pos, CheckFootprint, Note,
					"process %s restricts its view, but every transaction's leads are ground: the interprocedural refiner re-admits them to footprint planning (see the dataflow check)", u.name)
			} else {
				p.addf(u.decl.Pos, CheckFootprint, Note,
					"process %s restricts its view; its transactions bypass footprint planning and take full-store locks", u.name)
			}
			continue
		}
		for _, ti := range u.txns {
			reportWideLeads(p, ti)
		}
	}
}

// allRefined reports whether the interprocedural refiner re-admits every
// transaction of a view-restricted unit to footprint planning, making the
// blanket "full-store locks" note stale.
func allRefined(p *pass, u *unit) bool {
	if len(u.txns) == 0 {
		return false
	}
	res := p.dataflowResult()
	for _, ti := range u.txns {
		j := res.Judgments[ti.txn]
		if j == nil || !j.Widened {
			return false
		}
	}
	return true
}

// reportWideLeads flags every pattern of ti whose lead is not determined by
// the unit's issuing environment (parameters + lets). One note per
// offending pattern, at the pattern's position.
func reportWideLeads(p *pass, ti *txnInfo) {
	check := func(pat lang.PatternNode, what string) {
		if len(pat.Fields) == 0 {
			return // arity-0: the fixed zero-lead bucket, always plannable
		}
		if leadDetermined(pat.Fields[0]) {
			return
		}
		p.addf(pat.Pos, CheckFootprint, Note,
			"lead of %s %s is not determined by parameters or lets; the transaction's footprint is unbounded and commits take shard-level locks",
			what, abstractPattern(pat, ti.bound).String())
	}
	for _, item := range ti.txn.Items {
		check(item.Pattern, "pattern")
	}
	for _, a := range ti.txn.Actions {
		if as, ok := a.(lang.AssertAction); ok {
			check(as.Pattern, "assertion")
		}
	}
}

// leadDetermined reports whether a leading field is determined by the
// issuing environment: a wildcard never is; an expression is iff it
// references no query variable (bare identifiers are atoms, bound
// identifiers take their runtime value — both determined).
func leadDetermined(f lang.FieldNode) bool {
	ef, ok := f.(lang.ExprField)
	if !ok {
		return false // wildcard lead
	}
	determined := true
	lang.Walk(ef.Expr, func(n lang.Node) bool {
		if _, isVar := n.(*lang.VarNode); isVar {
			determined = false
			return false
		}
		return true
	})
	return determined
}
