package analysis_test

import (
	"math/rand"
	"testing"

	"github.com/sdl-lang/sdl/internal/analysis"
	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/lang/langtest"
)

// FuzzAnalyze drives the analyzer over randomly generated programs (the
// same generator as the front-end's format/parse fixpoint test). Two
// properties: the analyzer never panics, and every diagnostic carries a
// valid position and a known check id. The hand-built AST is analyzed
// too — it has zero positions and no DeclVarPos, the worst case for
// position bookkeeping.
func FuzzAnalyze(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	known := make(map[string]bool, len(analysis.AllChecks))
	for _, id := range analysis.AllChecks {
		known[id] = true
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		g := langtest.NewGen(rand.New(rand.NewSource(seed)))
		prog := g.Program()

		// Robustness on synthetic ASTs (no positions at all).
		if _, err := analysis.Analyze(prog, analysis.Options{}); err != nil {
			t.Fatalf("analyze synthetic AST: %v", err)
		}

		// Positioned diagnostics on the parsed round trip.
		src := lang.Format(prog)
		parsed, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("formatted program does not parse: %v\n%s", err, src)
		}
		diags, err := analysis.Analyze(parsed, analysis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			if d.Pos.Line < 1 || d.Pos.Col < 1 {
				t.Errorf("diagnostic with invalid position %v: %s\n%s", d.Pos, d, src)
			}
			if !known[d.Check] {
				t.Errorf("diagnostic with unknown check id %q", d.Check)
			}
			if d.Message == "" {
				t.Error("diagnostic with empty message")
			}
		}
	})
}
