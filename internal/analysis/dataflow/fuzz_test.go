package dataflow

import (
	"math/rand"
	"testing"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/lang/langtest"
)

// FuzzDataflow drives the interprocedural analysis over randomly
// generated programs (the same generator as the analyzer's and the
// front-end's fuzz targets). Properties:
//
//   - Analyze never panics, on synthetic ASTs and parsed round trips;
//   - the fixpoint converges within its round budget (or reports that it
//     did not — it must never claim convergence after the cap);
//   - every judgment is internally consistent: GroundKeys always carries
//     a non-empty, concrete key set, Widened implies a view-restricted
//     process with an all-ground judgment, and every lead a judgment
//     reports belongs to the transaction it annotates;
//   - refined compilation succeeds exactly when plain compilation does
//     (the refiner can reclassify transactions, never break the build).
func FuzzDataflow(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		g := langtest.NewGen(rand.New(rand.NewSource(seed)))
		prog := g.Program()

		check := func(prog *lang.Program, label string) {
			res := Analyze(prog)
			if res == nil {
				t.Fatalf("%s: nil result", label)
			}
			if res.Rounds > maxRounds {
				t.Fatalf("%s: fixpoint ran %d rounds, cap is %d", label, res.Rounds, maxRounds)
			}
			if !res.Converged && res.Rounds < maxRounds {
				t.Fatalf("%s: reported non-convergence after only %d rounds", label, res.Rounds)
			}
			for txn, j := range res.Judgments {
				if txn == nil || j == nil {
					t.Fatalf("%s: nil judgment entry", label)
				}
				if j.Node != txn {
					t.Errorf("%s: judgment node mismatch", label)
				}
				switch j.Class {
				case footprint.Ground, footprint.Wildcard, footprint.GroundKeys:
				default:
					t.Errorf("%s: judgment class %v out of range", label, j.Class)
				}
				if j.Class == footprint.GroundKeys {
					if len(j.Keys) == 0 {
						t.Errorf("%s: GroundKeys judgment with no keys in %s", label, j.Proc)
					}
					for _, k := range j.Keys {
						if k.Arity > 0 && !k.LeadKnown {
							t.Errorf("%s: GroundKeys key with unknown lead (arity %d)", label, k.Arity)
						}
					}
				}
				if j.Widened && !j.ViewRestricted {
					t.Errorf("%s: widened judgment outside a view-restricted process (%s)", label, j.Proc)
				}
				for _, ld := range j.Leads {
					if ld.Index < 1 {
						t.Errorf("%s: lead with index %d", label, ld.Index)
					}
					if ld.Why == "" && !ld.Closed {
						t.Errorf("%s: open lead with no witness in %s", label, j.Proc)
					}
				}
			}
		}

		// Synthetic AST (zero positions — worst case for bookkeeping).
		check(prog, "synthetic")

		src := lang.Format(prog)
		parsed, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("formatted program does not parse: %v\n%s", err, src)
		}
		check(parsed, "parsed")

		// Refinement must never change whether the program compiles.
		_, plainErr := lang.Compile(parsed)
		_, _, refinedErr := Compile(parsed)
		if (plainErr == nil) != (refinedErr == nil) {
			t.Fatalf("compile divergence: plain err %v, refined err %v\n%s", plainErr, refinedErr, src)
		}
	})
}
