package dataflow

import (
	"sort"
	"strings"

	"github.com/sdl-lang/sdl/internal/tuple"
)

// maxConsts caps the size of a constant set before it widens to Top; the
// cap (with the monotone join) is what bounds the fixpoint.
const maxConsts = 8

// Value is an abstract runtime value: Bottom (no statically known
// producer), a finite set of constants, or Top (any value). The lattice
// orders Bottom ⊑ {c…} ⊑ Top, with set union as join and widening to Top
// past maxConsts constants.
type Value struct {
	top  bool
	vals []tuple.Value
}

// Bottom is the empty abstract value: nothing statically produces it.
func Bottom() Value { return Value{} }

// Top is the unconstrained abstract value.
func Top() Value { return Value{top: true} }

// Of builds the abstract value holding exactly the given constants.
func Of(vs ...tuple.Value) Value {
	var v Value
	for _, x := range vs {
		v = v.withConst(x)
	}
	return v
}

// IsTop reports whether the value is unconstrained.
func (v Value) IsTop() bool { return v.top }

// IsBottom reports whether no producer is statically known.
func (v Value) IsBottom() bool { return !v.top && len(v.vals) == 0 }

// Single returns the value's sole constant, if it has exactly one.
func (v Value) Single() (tuple.Value, bool) {
	if !v.top && len(v.vals) == 1 {
		return v.vals[0], true
	}
	return tuple.Value{}, false
}

// Consts returns the constant set (nil for Bottom and Top).
func (v Value) Consts() []tuple.Value {
	if v.top {
		return nil
	}
	return v.vals
}

// Contains reports whether x is admitted by the value (Top admits
// everything, Bottom nothing).
func (v Value) Contains(x tuple.Value) bool {
	if v.top {
		return true
	}
	for _, c := range v.vals {
		if c.Equal(x) {
			return true
		}
	}
	return false
}

// withConst adds one constant, widening to Top past the cap.
func (v Value) withConst(x tuple.Value) Value {
	if v.top || v.Contains(x) {
		return v
	}
	if len(v.vals) >= maxConsts {
		return Top()
	}
	vals := make([]tuple.Value, 0, len(v.vals)+1)
	vals = append(vals, v.vals...)
	return Value{vals: append(vals, x)}
}

// Join returns the least upper bound of v and w and whether it differs
// from v (the change signal driving the fixpoint).
func (v Value) Join(w Value) (Value, bool) {
	if v.top {
		return v, false
	}
	if w.top {
		return Top(), true
	}
	out, changed := v, false
	for _, x := range w.vals {
		next := out.withConst(x)
		if next.top || len(next.vals) != len(out.vals) {
			changed = true
		}
		out = next
		if out.top {
			break
		}
	}
	return out, changed
}

// String renders the value for diagnostics: "any" for Top, "none" for
// Bottom, otherwise the sorted constant set "{1, 2, 3}".
func (v Value) String() string {
	if v.top {
		return "any"
	}
	if len(v.vals) == 0 {
		return "none"
	}
	parts := make([]string, len(v.vals))
	for i, c := range v.vals {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
