// Package dataflow is the interprocedural constant/lead propagation pass:
// a constraint-based fixpoint over the program's spawn graph that tracks,
// per process parameter and per let-constant, the finite set of values the
// name can take at run time (widening to "any" past a small cap), and per
// query variable, the values statically-known assert sites can bind it to.
//
// Its product is a per-transaction footprint Judgment that refines the
// compiler's intraprocedural classification:
//
//   - GroundKeys: every lead folds to an environment-independent constant
//     (literals, atoms, and closed lets only — never a parameter or query
//     binding, because hosts can Spawn processes with arbitrary arguments
//     at run time), so the exact bucket set travels with the transaction
//     and the engine skips per-execution lead evaluation.
//   - Ground for view-restricted processes: compiled SDL views contain
//     only pure pattern matchers, so when every lead is determined by
//     parameters and lets the dynamic planner's per-pattern plan covers
//     everything the evaluation can touch; the judgment re-admits the
//     transaction to footprint planning that the compiler alone had to
//     deny (the runtime still double-checks View.Plannable()).
//   - Diagnostics: for leads that stay unplannable, the judgment carries a
//     witness — the binding chain from the lead back to the spawn or
//     assert sites that feed it — surfaced by sdlvet's dataflow check.
//
// The pass is deliberately conservative in the same direction as the rest
// of the analyzer: a refinement is only emitted when it is sound against
// an open world (host-spawned processes, host-asserted tuples), and
// anything the engine must trust without re-evaluation is derived from
// environment-independent folds alone.
package dataflow

import (
	"strings"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/tuple"
)

const (
	// maxRounds bounds the fixpoint; the monotone lattice (constant sets
	// capped at maxConsts) converges far earlier on real programs, and the
	// fuzz harness asserts the bound is never hit with Converged=false
	// while values are still changing unboundedly.
	maxRounds = 32
	// maxSites caps witness provenance kept per fact.
	maxSites = 3
	// maxCombos caps cartesian enumeration when folding an expression over
	// constant sets.
	maxCombos = 64
)

// Site is one provenance entry of a fact: where a value flowed from.
type Site struct {
	Proc string
	Pos  lang.Pos
	Desc string
}

// Fact is an abstract value with its (capped) provenance.
type Fact struct {
	Val   Value
	Sites []Site
}

func (f *Fact) join(v Value, s Site) bool {
	joined, changed := f.Val.Join(v)
	f.Val = joined
	if changed && len(f.Sites) < maxSites {
		for _, have := range f.Sites {
			if have.Proc == s.Proc && have.Pos == s.Pos {
				return changed
			}
		}
		f.Sites = append(f.Sites, s)
	}
	return changed
}

// Lead describes one lead (pattern or assertion) of a transaction.
type Lead struct {
	What   string // "pattern" or "assertion"
	Index  int    // 1-based position among the transaction's items
	Pos    lang.Pos
	Ground bool  // determined by the issuing environment (params + lets)
	Closed bool  // folds to an environment-independent constant
	Val    Value // abstract lead value (diagnostics)
	Why    string
}

// Judgment is the refined footprint classification of one transaction.
type Judgment struct {
	Proc           string
	Node           *lang.TxnNode
	ViewRestricted bool
	Class          footprint.Class
	Keys           []dataspace.InterestKey // with GroundKeys
	// Widened reports that the refinement admits the transaction to
	// footprint planning where the compiler's intraprocedural judgment
	// could not (a view-restricted process with ground leads).
	Widened bool
	Leads   []Lead
}

// Result is a completed analysis.
type Result struct {
	Judgments map[*lang.TxnNode]*Judgment
	// Params holds, per process, the per-parameter facts accumulated from
	// statically visible spawn sites. A Bottom fact means no spawn site in
	// the program feeds the parameter (e.g. host-spawned processes).
	Params map[string]map[string]*Fact
	// Rounds is the number of fixpoint rounds run; Converged reports that
	// the last round changed nothing (as opposed to hitting maxRounds).
	Rounds    int
	Converged bool
}

// --- program model ---

type procInfo struct {
	name           string
	decl           *lang.ProcessDecl // nil for main
	params         []string
	viewRestricted bool
	bound          map[string]bool // params + behavior-wide lets
	letNames       map[string]bool
	txns           []*txnCtx
}

type txnCtx struct {
	proc *procInfo
	node *lang.TxnNode
	vars map[string]bool // quantifier decls + pattern ?vars (compile scope)
	// queryFacts maps query variables to the values statically known
	// assert sites can bind them to; recomputed each round.
	queryFacts map[string]*Fact
}

type spawnEdge struct {
	site lang.SpawnSite
	from *txnCtx
	to   *procInfo
}

type assertSite struct {
	txn    *txnCtx
	pat    lang.PatternNode
	fields []Value // refreshed each round
}

type analysis struct {
	procs     []*procInfo
	byName    map[string]*procInfo
	byNode    map[*lang.TxnNode]*txnCtx
	spawns    []spawnEdge
	asserts   []*assertSite
	reachable map[string]bool

	params map[*procInfo][]*Fact          // per parameter index
	lets   map[*procInfo]map[string]*Fact // per let name
}

// Analyze runs the interprocedural pass over a parsed program.
func Analyze(prog *lang.Program) *Result {
	a := build(prog)
	rounds, converged := a.fixpoint()
	res := &Result{
		Judgments: make(map[*lang.TxnNode]*Judgment),
		Params:    make(map[string]map[string]*Fact, len(a.procs)),
		Rounds:    rounds,
		Converged: converged,
	}
	for _, p := range a.procs {
		pf := make(map[string]*Fact, len(p.params))
		for i, name := range p.params {
			pf[name] = a.params[p][i]
		}
		res.Params[p.name] = pf
		for _, t := range p.txns {
			res.Judgments[t.node] = a.judge(t)
		}
	}
	return res
}

func build(prog *lang.Program) *analysis {
	a := &analysis{
		byName: make(map[string]*procInfo),
		byNode: make(map[*lang.TxnNode]*txnCtx),
		params: make(map[*procInfo][]*Fact),
		lets:   make(map[*procInfo]map[string]*Fact),
	}
	add := func(name string, decl *lang.ProcessDecl, params []string, body []lang.StmtNode) {
		p := &procInfo{
			name:     name,
			decl:     decl,
			params:   params,
			bound:    make(map[string]bool, len(params)),
			letNames: make(map[string]bool),
		}
		if decl != nil {
			p.viewRestricted = len(decl.Imports) > 0 || len(decl.Exports) > 0
		}
		for _, prm := range params {
			p.bound[prm] = true
		}
		for _, s := range body {
			lang.Walk(s, func(n lang.Node) bool {
				if l, ok := n.(lang.LetAction); ok {
					p.bound[l.Name] = true
					p.letNames[l.Name] = true
				}
				return true
			})
		}
		for _, s := range body {
			lang.Walk(s, func(n lang.Node) bool {
				tx, ok := n.(*lang.TxnNode)
				if !ok {
					return true
				}
				t := &txnCtx{proc: p, node: tx, vars: make(map[string]bool)}
				for _, v := range tx.DeclVars {
					t.vars[v] = true
				}
				for _, item := range tx.Items {
					for _, f := range item.Pattern.Fields {
						if ef, ok := f.(lang.ExprField); ok {
							if v, ok := ef.Expr.(*lang.VarNode); ok {
								t.vars[v.Name] = true
							}
						}
					}
				}
				p.txns = append(p.txns, t)
				a.byNode[tx] = t
				for _, act := range tx.Actions {
					if as, ok := act.(lang.AssertAction); ok {
						a.asserts = append(a.asserts, &assertSite{txn: t, pat: as.Pattern})
					}
				}
				return true
			})
		}
		a.procs = append(a.procs, p)
		a.byName[name] = p
		a.params[p] = make([]*Fact, len(params))
		for i := range params {
			a.params[p][i] = &Fact{}
		}
		a.lets[p] = make(map[string]*Fact)
		for name := range p.letNames {
			a.lets[p][name] = &Fact{}
		}
	}
	for _, pd := range prog.Processes {
		add(pd.Name, pd, pd.Params, pd.Body)
	}
	if prog.Main != nil {
		add(lang.MainProcess, nil, nil, prog.Main.Body)
	}
	for _, site := range lang.SpawnSites(prog) {
		from := a.byNode[site.Txn]
		to := a.byName[site.Callee]
		if from == nil || to == nil || len(site.Args) != len(to.params) {
			continue // undefined callee or arity mismatch; compile rejects
		}
		a.spawns = append(a.spawns, spawnEdge{site: site, from: from, to: to})
	}
	a.reachable = reach(a)
	return a
}

// reach computes the processes reachable from main through spawn edges;
// programs without a main block (library files) are all-reachable.
func reach(a *analysis) map[string]bool {
	out := make(map[string]bool, len(a.procs))
	root := a.byName[lang.MainProcess]
	if root == nil {
		for _, p := range a.procs {
			out[p.name] = true
		}
		return out
	}
	var visit func(p *procInfo)
	visit = func(p *procInfo) {
		if out[p.name] {
			return
		}
		out[p.name] = true
		for _, e := range a.spawns {
			if e.from.proc == p {
				visit(e.to)
			}
		}
	}
	visit(root)
	return out
}

// --- fixpoint ---

func (a *analysis) fixpoint() (rounds int, converged bool) {
	for rounds = 1; rounds <= maxRounds; rounds++ {
		changed := false
		// 1. Refresh assert-site field abstractions under current facts.
		for _, s := range a.asserts {
			if !a.reachable[s.txn.proc.name] {
				continue
			}
			env := a.envOf(s.txn)
			fields := make([]Value, len(s.pat.Fields))
			for i, f := range s.pat.Fields {
				ef, ok := f.(lang.ExprField)
				if !ok {
					fields[i] = Top() // wildcard (compile rejects in asserts)
					continue
				}
				fields[i] = foldVal(ef.Expr, env)
			}
			s.fields = fields
		}
		// 2. Query-variable facts per transaction, from matching sites.
		for _, p := range a.procs {
			if !a.reachable[p.name] {
				continue
			}
			for _, t := range p.txns {
				t.queryFacts = a.solveQuery(t)
			}
		}
		// 3. Let facts: join each assignment's fold.
		for _, p := range a.procs {
			if !a.reachable[p.name] {
				continue
			}
			for _, t := range p.txns {
				env := a.envOf(t)
				for _, act := range t.node.Actions {
					l, ok := act.(lang.LetAction)
					if !ok {
						continue
					}
					f := a.lets[p][l.Name]
					if f.join(foldVal(l.Expr, env), Site{Proc: p.name, Pos: l.Pos, Desc: "let " + l.Name}) {
						changed = true
					}
				}
			}
		}
		// 4. Spawn edges: actuals flow into callee parameters.
		for _, e := range a.spawns {
			if !a.reachable[e.from.proc.name] {
				continue
			}
			env := a.envOf(e.from)
			for i, arg := range e.site.Args {
				f := a.params[e.to][i]
				if f.join(foldVal(arg, env), Site{Proc: e.from.proc.name, Pos: e.site.Pos, Desc: "spawn " + e.to.name}) {
					changed = true
				}
			}
		}
		if !changed {
			return rounds, true
		}
	}
	return maxRounds, false
}

// envOf builds the abstract environment lookup for a transaction: issuing
// names (parameters, then lets) shadow query variables, mirroring the
// runtime's treatment of already-bound variables as equality tests.
func (a *analysis) envOf(t *txnCtx) func(string) (Value, bool) {
	p := t.proc
	return func(name string) (Value, bool) {
		for i, prm := range p.params {
			if prm == name {
				return a.params[p][i].Val, true
			}
		}
		if p.letNames[name] {
			return a.lets[p][name].Val, true
		}
		if t.vars[name] {
			if t.queryFacts != nil {
				if f := t.queryFacts[name]; f != nil {
					return f.Val, true
				}
			}
			return Bottom(), true
		}
		return Value{}, false // unbound identifier: an atom
	}
}

// solveQuery derives facts for the transaction's query variables from the
// assert sites whose shape is compatible with each positive pattern.
func (a *analysis) solveQuery(t *txnCtx) map[string]*Fact {
	facts := make(map[string]*Fact)
	issuing := a.issuingEnv(t.proc)
	for _, item := range t.node.Items {
		if item.Negated {
			continue // negated patterns bind nothing
		}
		arity := len(item.Pattern.Fields)
		cons := make([]*tuple.Value, arity) // known constraints of the pattern
		varAt := make(map[int]string)
		for i, f := range item.Pattern.Fields {
			ef, ok := f.(lang.ExprField)
			if !ok {
				continue // wildcard: no constraint, no binding
			}
			if name, isVar := queryVarRef(ef.Expr, t); isVar {
				varAt[i] = name
				continue
			}
			if v, ok := foldVal(ef.Expr, issuing).Single(); ok {
				c := v
				cons[i] = &c
			}
		}
		if len(varAt) == 0 {
			continue
		}
		for _, s := range a.asserts {
			if !a.reachable[s.txn.proc.name] || len(s.fields) != arity {
				continue
			}
			ok := true
			for i, c := range cons {
				if c == nil {
					continue
				}
				if s.fields[i].IsBottom() || !s.fields[i].Contains(*c) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for i, name := range varAt {
				f := facts[name]
				if f == nil {
					f = &Fact{}
					facts[name] = f
				}
				f.join(s.fields[i], Site{
					Proc: s.txn.proc.name,
					Pos:  s.pat.Pos,
					Desc: "assert " + renderPattern(s.pat),
				})
			}
		}
	}
	return facts
}

// issuingEnv is envOf without query-variable facts: the environment the
// runtime evaluates leads under.
func (a *analysis) issuingEnv(p *procInfo) func(string) (Value, bool) {
	return func(name string) (Value, bool) {
		for i, prm := range p.params {
			if prm == name {
				return a.params[p][i].Val, true
			}
		}
		if p.letNames[name] {
			return a.lets[p][name].Val, true
		}
		return Value{}, false
	}
}

// queryVarRef reports whether e is a direct reference to one of the
// transaction's query variables (a ?var or a bare identifier the compiler
// binds to a quantifier declaration), i.e. a field that binds rather than
// constrains. Names in the issuing environment are equality tests, not
// bindings.
func queryVarRef(e lang.ExprNode, t *txnCtx) (string, bool) {
	var name string
	switch en := e.(type) {
	case *lang.VarNode:
		name = en.Name
	case *lang.IdentNode:
		name = en.Name
	default:
		return "", false
	}
	if t.proc.bound[name] {
		return "", false
	}
	return name, t.vars[name]
}

func renderPattern(p lang.PatternNode) string {
	parts := make([]string, len(p.Fields))
	for i, f := range p.Fields {
		ef, ok := f.(lang.ExprField)
		if !ok {
			parts[i] = "*"
			continue
		}
		switch en := ef.Expr.(type) {
		case *lang.LitNode:
			parts[i] = en.Value.String()
		case *lang.IdentNode:
			parts[i] = en.Name
		case *lang.VarNode:
			parts[i] = "?" + en.Name
		default:
			parts[i] = "…"
		}
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// --- abstract folding ---

// foldVal folds an expression to an abstract value under the lookup
// environment: Bottom if any referenced fact is still Bottom, Top on any
// unfoldable operand or enumeration overflow, otherwise the (capped)
// elementwise image computed through the runtime's own evaluator.
func foldVal(e lang.ExprNode, look func(string) (Value, bool)) Value {
	switch en := e.(type) {
	case *lang.LitNode:
		return Of(en.Value)
	case *lang.IdentNode:
		if v, ok := look(en.Name); ok {
			return v
		}
		return Of(tuple.Atom(en.Name))
	case *lang.VarNode:
		if v, ok := look(en.Name); ok {
			return v
		}
		return Top()
	case *lang.UnNode:
		x := foldVal(en.X, look)
		return mapVals([]Value{x}, func(vs []tuple.Value) (tuple.Value, error) {
			if en.Op == lang.TokNot {
				return expr.Not(expr.Const(vs[0])).Eval(nil)
			}
			return expr.Neg(expr.Const(vs[0])).Eval(nil)
		})
	case *lang.BinNode:
		op, ok := lang.OpFor(en.Op)
		if !ok {
			return Top()
		}
		l, r := foldVal(en.L, look), foldVal(en.R, look)
		return mapVals([]Value{l, r}, func(vs []tuple.Value) (tuple.Value, error) {
			return expr.Bin(op, expr.Const(vs[0]), expr.Const(vs[1])).Eval(nil)
		})
	case *lang.CallNode:
		if !expr.HasBuiltin(en.Name) {
			return Top()
		}
		args := make([]Value, len(en.Args))
		for i, an := range en.Args {
			args[i] = foldVal(an, look)
		}
		return mapVals(args, func(vs []tuple.Value) (tuple.Value, error) {
			ce := make([]expr.Expr, len(vs))
			for i, v := range vs {
				ce[i] = expr.Const(v)
			}
			return expr.Fn(en.Name, ce...).Eval(nil)
		})
	}
	return Top()
}

// mapVals applies fn over the cartesian product of the operand constant
// sets. Bottom operands yield Bottom (no producer yet); Top operands,
// evaluation errors, and enumeration overflow yield Top.
func mapVals(operands []Value, fn func([]tuple.Value) (tuple.Value, error)) Value {
	combos := 1
	for _, v := range operands {
		if v.IsBottom() {
			return Bottom()
		}
		if v.IsTop() {
			return Top()
		}
		combos *= len(v.Consts())
		if combos > maxCombos {
			return Top()
		}
	}
	out := Bottom()
	pick := make([]tuple.Value, len(operands))
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == len(operands) {
			v, err := fn(pick)
			if err != nil {
				out = Top()
				return false
			}
			out, _ = out.Join(Of(v))
			return !out.IsTop()
		}
		for _, c := range operands[i].Consts() {
			pick[i] = c
			if !walk(i + 1) {
				return false
			}
		}
		return true
	}
	walk(0)
	return out
}
