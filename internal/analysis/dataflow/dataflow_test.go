package dataflow

import (
	"sort"
	"strings"
	"testing"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/tuple"
)

func analyze(t *testing.T, src string) (*lang.Program, *Result) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res := Analyze(prog)
	if !res.Converged {
		t.Fatalf("fixpoint did not converge in %d rounds", res.Rounds)
	}
	return prog, res
}

// judgments returns the judgments of every transaction in the named
// process, in source order.
func judgments(t *testing.T, res *Result, proc string) []*Judgment {
	t.Helper()
	var out []*Judgment
	for _, j := range res.Judgments {
		if j.Proc == proc {
			out = append(out, j)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no judgments for process %s", proc)
	}
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			a, b := out[i].Node.Pos, out[k].Node.Pos
			if b.Line < a.Line || (b.Line == a.Line && b.Col < a.Col) {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	return out
}

// Spawn actuals flow into parameters, and a view-restricted process whose
// leads are those parameters is widened to Ground — the acceptance
// shape from the sort corpus program, reduced.
func TestSpawnActualsWidenParams(t *testing.T) {
	_, res := analyze(t, `
process Swap(a, b)
import <a, *>; <b, *>
export <a, *>; <b, *>
behavior
  exists x, y: <a, ?x>!, <b, ?y>! where ?x > ?y -> <a, ?y>, <b, ?x>
end

main
  -> <1, 10>, <2, 20>;
  spawn Swap(1, 2), spawn Swap(2, 3)
end
`)
	facts := res.Params["Swap"]
	if facts == nil {
		t.Fatal("no param facts for Swap")
	}
	a := facts["a"]
	if a == nil || a.Val.IsTop() || a.Val.IsBottom() {
		t.Fatalf("param a fact = %+v, want constant set", a)
	}
	consts := a.Val.Consts()
	if len(consts) != 2 || !a.Val.Contains(tuple.Int(1)) || !a.Val.Contains(tuple.Int(2)) {
		t.Errorf("param a values %v, want {1, 2}", consts)
	}
	if len(a.Sites) == 0 || !strings.Contains(a.Sites[0].Desc, "spawn Swap") {
		t.Errorf("param a provenance %v, want spawn sites", a.Sites)
	}
	j := judgments(t, res, "Swap")[0]
	if j.Class != footprint.Ground {
		t.Errorf("Swap judgment class %v, want Ground", j.Class)
	}
	if !j.ViewRestricted || !j.Widened {
		t.Errorf("Swap judgment restricted=%v widened=%v, want both true", j.ViewRestricted, j.Widened)
	}
	for _, ld := range j.Leads {
		if !ld.Ground {
			t.Errorf("lead %s %d not ground: %s", ld.What, ld.Index, ld.Why)
		}
	}
}

// Literal leads and lets folding through the runtime's own evaluator
// produce a GroundKeys judgment with the exact key set.
func TestClosedLetsFoldToStaticKeys(t *testing.T) {
	_, res := analyze(t, `
main
  let k = 1 + 2;
  exists v: <k, ?v>! -> <k, ?v + 1>
end
`)
	js := judgments(t, res, "main")
	j := js[len(js)-1]
	if j.Class != footprint.GroundKeys {
		t.Fatalf("class %v, want GroundKeys (leads: %+v)", j.Class, j.Leads)
	}
	if len(j.Keys) != 1 {
		t.Fatalf("keys %v, want exactly one (pattern and assert share the bucket)", j.Keys)
	}
	k := j.Keys[0]
	if k.Arity != 2 || !k.LeadKnown || !k.Lead.Equal(tuple.Int(3)) {
		t.Errorf("key %+v, want arity 2, lead 3", k)
	}
	for _, ld := range j.Leads {
		if !ld.Closed {
			t.Errorf("lead %s %d not closed: %s", ld.What, ld.Index, ld.Why)
		}
	}
}

// A lead bound only by a query variable stays unbounded, and the witness
// carries the binding chain back to the assert sites that can feed it.
func TestQueryBoundLeadBlocksWithChain(t *testing.T) {
	_, res := analyze(t, `
process Relay()
behavior
  exists c, v: <chan, ?c>, <item, ?v> -> <?c, ?v>
end

main
  -> <chan, left>, <item, 5>;
  spawn Relay()
end
`)
	j := judgments(t, res, "Relay")[0]
	if j.Class != footprint.Wildcard {
		t.Fatalf("class %v, want Wildcard", j.Class)
	}
	var blocked *Lead
	for i := range j.Leads {
		if !j.Leads[i].Ground {
			blocked = &j.Leads[i]
			break
		}
	}
	if blocked == nil {
		t.Fatal("no blocked lead on a Wildcard judgment")
	}
	if blocked.What != "assertion" {
		t.Errorf("blocked lead is a %s, want the assertion <?c, ?v>", blocked.What)
	}
	if !strings.Contains(blocked.Why, "?c") || !strings.Contains(blocked.Why, "assert") {
		t.Errorf("witness %q does not chain to the assert sites", blocked.Why)
	}
}

// A library file's processes have no spawn sites: parameters are Bottom,
// and the witness says host-spawned values are unbounded.
func TestHostSpawnedParamsUnbounded(t *testing.T) {
	_, res := analyze(t, `
process Worker(q)
behavior
  exists v: <q, ?v>! -> <done, ?v>
end
`)
	q := res.Params["Worker"]["q"]
	if q == nil || !q.Val.IsBottom() {
		t.Fatalf("param q fact %+v, want Bottom (no spawn sites)", q)
	}
	j := judgments(t, res, "Worker")[0]
	if j.Class != footprint.Ground {
		// The lead IS the issuing environment's parameter: ground, but not
		// closed — the dynamic planner evaluates it per execution.
		t.Fatalf("class %v, want Ground", j.Class)
	}
	found := false
	for _, ld := range j.Leads {
		if strings.Contains(ld.Why, "host-spawned") {
			found = true
		}
	}
	if !found {
		t.Errorf("no lead witness mentions host-spawned unboundedness: %+v", j.Leads)
	}
}

// The refiner's trust boundary: a GroundKeys judgment refines the
// compiled transaction only when its keys are non-empty, and a Ground
// judgment only upgrades Wildcard-classified view-restricted
// transactions (the dynamic planner stays authoritative elsewhere).
func TestRefinerTrustBoundary(t *testing.T) {
	prog, res := analyze(t, `
process Pair(a, b)
import <a, *>; <b, *>
export <a, *>; <b, *>
behavior
  exists x: <a, ?x>! -> <b, ?x>
end

main
  spawn Pair(1, 2)
end
`)
	compiled, err := lang.CompileWith(prog, lang.CompileOptions{Refiner: res.Refiner()})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := lang.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	refined := collectFootprints(compiled)
	base := collectFootprints(plain)
	if len(refined) != len(base) {
		t.Fatalf("transaction count changed: %d vs %d", len(refined), len(base))
	}
	upgraded := false
	for i := range refined {
		if base[i] == footprint.Wildcard && refined[i] == footprint.Ground {
			upgraded = true
		}
		if base[i] == footprint.Ground && refined[i] == footprint.Wildcard {
			t.Errorf("refinement downgraded a Ground transaction")
		}
	}
	if !upgraded {
		t.Errorf("no view-restricted transaction upgraded Wildcard -> Ground: base %v, refined %v", base, refined)
	}
}

// collectFootprints walks a compiled program's definitions (sorted by
// name) and gathers every transaction's footprint class in body order.
func collectFootprints(c *lang.Compiled) []footprint.Class {
	defs := append([]*process.Definition(nil), c.Defs...)
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	var out []footprint.Class
	for _, d := range defs {
		out = append(out, stmtFootprints(d.Body)...)
	}
	return out
}

func stmtFootprints(body []process.Stmt) []footprint.Class {
	var out []footprint.Class
	for _, s := range body {
		switch st := s.(type) {
		case process.Transact:
			out = append(out, st.Footprint)
		case process.Select:
			for _, b := range st.Branches {
				out = append(out, b.Guard.Footprint)
				out = append(out, stmtFootprints(b.Body)...)
			}
		case process.Repeat:
			for _, b := range st.Branches {
				out = append(out, b.Guard.Footprint)
				out = append(out, stmtFootprints(b.Body)...)
			}
		case process.Replicate:
			for _, b := range st.Branches {
				out = append(out, b.Guard.Footprint)
				out = append(out, stmtFootprints(b.Body)...)
			}
		}
	}
	return out
}
