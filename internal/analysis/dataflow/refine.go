package dataflow

import (
	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/lang"
)

// Refiner adapts the analysis result to the compiler's FootprintRefiner
// hook.
func (r *Result) Refiner() lang.FootprintRefiner { return refiner{res: r} }

type refiner struct{ res *Result }

// RefineTxn reports the refined judgment for a transaction the compiler
// just classified. Only two refinements are ever offered, each sound
// against an open world:
//
//   - GroundKeys with the attached key set, when every lead folds
//     environment-independently (the engine trusts the keys; the store's
//     writer panics on any mutation outside them, and the runtime still
//     requires a plannable view);
//   - Ground for a view-restricted transaction whose leads are all
//     determined by parameters and lets (purely optimistic: the dynamic
//     planner re-evaluates every lead per execution).
func (r refiner) RefineTxn(proc string, t *lang.TxnNode, base footprint.Class) (lang.FootprintJudgment, bool) {
	j := r.res.Judgments[t]
	if j == nil || j.Proc != proc {
		return lang.FootprintJudgment{}, false
	}
	switch j.Class {
	case footprint.GroundKeys:
		if len(j.Keys) > 0 && (base == footprint.Ground || j.ViewRestricted) {
			return lang.FootprintJudgment{Class: footprint.GroundKeys, Keys: j.Keys}, true
		}
	case footprint.Ground:
		if base == footprint.Wildcard && j.ViewRestricted {
			return lang.FootprintJudgment{Class: footprint.Ground}, true
		}
	}
	return lang.FootprintJudgment{}, false
}

// Compile compiles prog with the interprocedural refiner applied,
// returning the analysis result alongside the compiled program.
func Compile(prog *lang.Program) (*lang.Compiled, *Result, error) {
	res := Analyze(prog)
	compiled, err := lang.CompileWith(prog, lang.CompileOptions{Refiner: res.Refiner()})
	return compiled, res, err
}
