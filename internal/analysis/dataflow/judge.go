package dataflow

import (
	"fmt"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// judge classifies one transaction's refined footprint.
func (a *analysis) judge(t *txnCtx) *Judgment {
	p := t.proc
	j := &Judgment{
		Proc:           p.name,
		Node:           t.node,
		ViewRestricted: p.viewRestricted,
	}
	closedLets := a.closedLets(p)
	issuing := a.issuingEnv(p)

	allGround, allClosed := true, true
	var keys []dataspace.InterestKey
	addLead := func(pat lang.PatternNode, what string, index int) {
		ld := Lead{What: what, Index: index, Pos: pat.Pos}
		arity := len(pat.Fields)
		if arity == 0 {
			ld.Ground, ld.Closed = true, true
			ld.Why = "arity-0: the fixed zero-lead bucket"
			keys = addKey(keys, dataspace.InterestKey{Arity: 0})
			j.Leads = append(j.Leads, ld)
			return
		}
		f := pat.Fields[0]
		ef, isExpr := f.(lang.ExprField)
		if !isExpr {
			allGround, allClosed = false, false
			ld.Why = "lead is a wildcard"
			j.Leads = append(j.Leads, ld)
			return
		}
		if v, ok := closedFold(ef.Expr, t, closedLets); ok {
			ld.Ground, ld.Closed = true, true
			ld.Val = Of(v)
			ld.Why = fmt.Sprintf("lead folds to the constant %s independent of the environment", v)
			keys = addKey(keys, dataspace.InterestKey{Arity: arity, Lead: v, LeadKnown: true})
			j.Leads = append(j.Leads, ld)
			return
		}
		allClosed = false
		if groundLead(ef.Expr, t) {
			ld.Ground = true
			ld.Val = foldVal(ef.Expr, issuing)
			ld.Why = a.groundWitness(ef.Expr, t)
		} else {
			allGround = false
			ld.Val = foldVal(ef.Expr, a.envOf(t))
			ld.Why = a.queryWitness(ef.Expr, t)
		}
		j.Leads = append(j.Leads, ld)
	}

	for i, item := range t.node.Items {
		addLead(item.Pattern, "pattern", i+1)
	}
	n := 0
	for _, act := range t.node.Actions {
		if as, ok := act.(lang.AssertAction); ok {
			n++
			addLead(as.Pattern, "assertion", n)
		}
	}

	switch {
	case allClosed && len(keys) > 0:
		j.Class = footprint.GroundKeys
		j.Keys = keys
	case allGround:
		j.Class = footprint.Ground
	default:
		j.Class = footprint.Wildcard
	}
	j.Widened = p.viewRestricted && allGround
	return j
}

// addKey appends a key, deduplicating by (arity, lead).
func addKey(keys []dataspace.InterestKey, k dataspace.InterestKey) []dataspace.InterestKey {
	for _, have := range keys {
		if have.Arity == k.Arity && have.LeadKnown == k.LeadKnown && have.Lead.Equal(k.Lead) {
			return keys
		}
	}
	return append(keys, k)
}

// groundLead mirrors the compiler's footprint.Classify lead rule at the
// AST level: the lead is determined by the issuing environment iff it
// references no query variable. A ?var whose name is a parameter or let is
// an equality test against that binding, so it stays ground; a bare
// identifier bound only by a quantifier declaration compiles to a query
// variable and does not.
func groundLead(e lang.ExprNode, t *txnCtx) bool {
	ground := true
	lang.Walk(e, func(n lang.Node) bool {
		switch en := n.(type) {
		case *lang.VarNode:
			if !t.proc.bound[en.Name] {
				ground = false
				return false
			}
		case *lang.IdentNode:
			if !t.proc.bound[en.Name] && t.vars[en.Name] {
				ground = false
				return false
			}
		}
		return true
	})
	return ground
}

// closedLets computes the process's closed let-constants: lets whose every
// assignment folds, environment-independently (through literals, atoms,
// and other closed lets only), to one and the same constant. Only these
// may feed a GroundKeys key set — parameters never qualify, because hosts
// can spawn processes with arbitrary arguments at run time.
func (a *analysis) closedLets(p *procInfo) map[string]tuple.Value {
	assigns := make(map[string][]struct {
		e lang.ExprNode
		t *txnCtx
	})
	for _, t := range p.txns {
		for _, act := range t.node.Actions {
			if l, ok := act.(lang.LetAction); ok {
				assigns[l.Name] = append(assigns[l.Name], struct {
					e lang.ExprNode
					t *txnCtx
				}{l.Expr, t})
			}
		}
	}
	closed := make(map[string]tuple.Value)
	for iter := 0; iter <= len(assigns); iter++ { // lets can reference lets; iterate to a fixpoint
		changed := false
		for name, as := range assigns {
			if _, done := closed[name]; done {
				continue
			}
			if isParam(p, name) {
				continue
			}
			var val tuple.Value
			ok := len(as) > 0
			for i, asn := range as {
				v, folded := closedFold(asn.e, asn.t, closed)
				if !folded || (i > 0 && !v.Equal(val)) {
					ok = false
					break
				}
				val = v
			}
			if ok {
				closed[name] = val
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return closed
}

func isParam(p *procInfo, name string) bool {
	for _, prm := range p.params {
		if prm == name {
			return true
		}
	}
	return false
}

// closedFold folds an expression to an environment-independent constant:
// literals, unbound identifiers (atoms), closed lets, and operators and
// built-ins over those, evaluated through the runtime's own evaluator. A
// reference to a parameter, a query variable, or an open let fails the
// fold — this is the trust boundary for GroundKeys: nothing a host can
// influence at run time may feed a statically attached key.
func closedFold(e lang.ExprNode, t *txnCtx, closed map[string]tuple.Value) (tuple.Value, bool) {
	open := false
	v := foldVal(e, func(name string) (Value, bool) {
		if c, has := closed[name]; has {
			// A closed let (never a parameter: closedLets excludes them).
			// Referencing it — even as ?name — is an equality test against
			// a known constant.
			return Of(c), true
		}
		if t.proc.bound[name] || t.vars[name] {
			open = true
			return Top(), true
		}
		return Value{}, false // unbound identifier: an atom
	})
	if open {
		return tuple.Value{}, false
	}
	return v.Single()
}

// --- witnesses ---

// groundWitness explains a ground (but not closed) lead: which issuing
// names it depends on and what values flow into them.
func (a *analysis) groundWitness(e lang.ExprNode, t *txnCtx) string {
	p := t.proc
	names := leadNames(e, t)
	for _, name := range names {
		for i, prm := range p.params {
			if prm != name {
				continue
			}
			f := a.params[p][i]
			if f.Val.IsBottom() {
				return fmt.Sprintf("lead depends on parameter %s of %s; no spawn site in the program feeds it (host-spawned values are unbounded)", name, p.name)
			}
			return fmt.Sprintf("lead depends on parameter %s of %s, values %s %s", name, p.name, f.Val, renderSites(f.Sites))
		}
		if p.letNames[name] {
			f := a.lets[p][name]
			return fmt.Sprintf("lead depends on let %s, values %s %s", name, f.Val, renderSites(f.Sites))
		}
	}
	return "lead is determined by the issuing environment"
}

// queryWitness explains an unplannable lead: the binding chain from the
// query variable to the assert sites that can feed it.
func (a *analysis) queryWitness(e lang.ExprNode, t *txnCtx) string {
	for _, name := range leadNames(e, t) {
		if t.proc.bound[name] || !t.vars[name] {
			continue
		}
		f := (*Fact)(nil)
		if t.queryFacts != nil {
			f = t.queryFacts[name]
		}
		if f == nil || f.Val.IsBottom() {
			return fmt.Sprintf("lead is bound by query variable ?%s; no statically known assert site can bind it", name)
		}
		return fmt.Sprintf("lead is bound by query variable ?%s, values %s %s", name, f.Val, renderSites(f.Sites))
	}
	return "lead is not determined by the issuing environment"
}

// leadNames lists the identifier/variable names a lead expression
// references, in source order.
func leadNames(e lang.ExprNode, t *txnCtx) []string {
	var names []string
	seen := make(map[string]bool)
	lang.Walk(e, func(n lang.Node) bool {
		var name string
		switch en := n.(type) {
		case *lang.VarNode:
			name = en.Name
		case *lang.IdentNode:
			name = en.Name
		default:
			return true
		}
		if !seen[name] && (t.proc.bound[name] || t.vars[name]) {
			seen[name] = true
			names = append(names, name)
		}
		return true
	})
	return names
}

func renderSites(sites []Site) string {
	if len(sites) == 0 {
		return ""
	}
	out := "(via "
	for i, s := range sites {
		if i > 0 {
			out += "; "
		}
		out += fmt.Sprintf("%s in %s at %s", s.Desc, s.Proc, s.Pos)
	}
	return out + ")"
}
