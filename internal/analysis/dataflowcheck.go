package analysis

import (
	"github.com/sdl-lang/sdl/internal/analysis/dataflow"
	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/lang"
)

// runDataflow is the interprocedural footprint pass: it runs the
// constant/lead propagation analysis (analysis/dataflow) and reports, per
// transaction, where the refined judgment moves the transaction onto the
// commuting fast path — or why it stays off it, with the binding chain
// from the offending lead back to the spawn and assert sites that feed
// it. Everything is a Note: like the footprint pass, this surfaces a
// performance boundary, not a correctness defect.
func runDataflow(p *pass) {
	res := p.dataflowResult()
	for _, u := range p.units {
		if !p.reachable[u.name] {
			continue
		}
		for _, ti := range u.txns {
			j := res.Judgments[ti.txn]
			if j == nil {
				continue
			}
			switch {
			case j.Widened:
				what := "the dynamic planner re-evaluates its leads per execution"
				if j.Class == footprint.GroundKeys {
					what = "its exact key set travels with the transaction"
				}
				// Append the binding chain of the most informative lead: a
				// ground-but-open lead carries the interprocedural values.
				for _, ld := range j.Leads {
					if ld.Ground && !ld.Closed {
						what += "; " + ld.Why
						break
					}
				}
				p.addf(ti.txn.Pos, CheckDataflow, Note,
					"footprint-widened: transaction in view-restricted process %s is re-admitted to footprint planning (%s); %s",
					u.name, j.Class, what)
			case j.Class == footprint.GroundKeys:
				p.addf(ti.txn.Pos, CheckDataflow, Note,
					"footprint-widened: every lead folds to an environment-independent constant; %d bucket key(s) travel with the transaction and per-execution lead evaluation is skipped",
					len(j.Keys))
			case j.Class == footprint.Wildcard:
				for _, ld := range j.Leads {
					if ld.Ground {
						continue
					}
					p.addf(ld.Pos, CheckDataflow, Note,
						"footprint-blocked: %s %d of the transaction keeps the footprint unbounded: %s",
						ld.What, ld.Index, ld.Why)
					break // one witness per transaction
				}
				// A query pattern whose lead never grounds — under every
				// spawn environment the interprocedural analysis can see —
				// makes the matcher walk its whole arity. Report which of
				// those scans the adaptive secondary index can absorb.
				for _, ld := range j.Leads {
					if ld.Ground || ld.What != "pattern" ||
						ld.Index < 1 || ld.Index > len(ti.txn.Items) {
						continue
					}
					if scanSelective(ti.txn.Items[ld.Index-1].Pattern) {
						p.addf(ld.Pos, CheckDataflow, Note,
							"scan-heavy: pattern %d runs a full arity scan under every spawn environment (its lead never grounds); its constant non-lead field(s) key the adaptive secondary index once the shape promotes (-secondary-index)",
							ld.Index)
					} else {
						p.addf(ld.Pos, CheckDataflow, Note,
							"scan-heavy: pattern %d runs a full arity scan under every spawn environment (its lead never grounds) and no non-lead field is constant — neither the lead index nor the secondary index can narrow it",
							ld.Index)
					}
				}
			}
		}
	}
}

// scanSelective reports whether the pattern carries a non-lead field the
// adaptive secondary index can key on: a literal or a bare identifier
// (atoms and process constants both resolve to concrete values at match
// time). Wildcards and fresh variables select nothing.
func scanSelective(pat lang.PatternNode) bool {
	if len(pat.Fields) < 2 {
		return false
	}
	for _, f := range pat.Fields[1:] {
		ef, ok := f.(lang.ExprField)
		if !ok {
			continue
		}
		switch ef.Expr.(type) {
		case *lang.LitNode, *lang.IdentNode:
			return true
		}
	}
	return false
}

// dataflowResult lazily runs the interprocedural analysis; the footprint
// pass consults it too, so the fixpoint runs at most once per Analyze.
func (p *pass) dataflowResult() *dataflow.Result {
	if p.df == nil {
		p.df = dataflow.Analyze(p.prog)
	}
	return p.df
}
