// Package analysis is sdlvet's engine: a multi-pass static analyzer over
// the SDL surface AST (post-parse, pre-compile). Each pass is
// independently toggleable and emits positioned diagnostics:
//
//   - view: an assert whose shape provably falls outside the process's
//     export clause, or a query/retract pattern disjoint from its import
//     clause. Conservative — a diagnostic fires only when no view rule
//     can admit any instance of the pattern; guards are opaque unless
//     constant-foldable.
//   - shape: program-wide tuple shape inference. Every assert site's
//     (arity, constant-field) signature is collected; query patterns that
//     can match no asserted shape (arity mismatch, unknown lead, constant
//     field conflict) are flagged.
//   - blocked: a delayed (`=>`) transaction none of whose patterns can be
//     satisfied by main's initial assertions nor any reachable assert
//     site — the runtime's "blocks forever" failure mode, at vet time.
//   - consensus: a static over-approximation of consensus sets from the
//     import-overlap relation. Reports each `@>` transaction's potential
//     community, and flags singleton communities and communities with a
//     member that never offers a consensus transaction.
//   - hygiene: unused quantifier variables, variables referenced but
//     bound only by negated patterns, and branches with constant-false
//     guards.
//   - footprint: transactions the runtime's commutativity-aware commit
//     path cannot plan — view-restricted processes, and patterns or
//     assertions whose leading field is not determined by parameters and
//     lets. Notes only: wide footprints are legal, they just serialize.
//   - dataflow: the interprocedural refinement (analysis/dataflow) —
//     constant/lead propagation across the spawn graph. Reports
//     footprint-widened transactions (re-admitted to planning, or
//     carrying a static key set) and footprint-blocked ones with the
//     binding chain from the offending lead to the sites that feed it.
//
// All passes are conservative in the same direction: silence proves
// nothing, but every error-severity diagnostic identifies a transaction
// that cannot behave as written.
package analysis

import (
	"fmt"

	"github.com/sdl-lang/sdl/internal/analysis/dataflow"
	"github.com/sdl-lang/sdl/internal/lang"
)

// Check ids, one per pass.
const (
	CheckView      = "view"
	CheckShape     = "shape"
	CheckBlocked   = "blocked"
	CheckConsensus = "consensus"
	CheckHygiene   = "hygiene"
	CheckFootprint = "footprint"
	CheckDataflow  = "dataflow"
)

// AllChecks lists every pass in execution order.
var AllChecks = []string{CheckView, CheckShape, CheckBlocked, CheckConsensus, CheckHygiene, CheckFootprint, CheckDataflow}

// Options configures an analysis run.
type Options struct {
	// Checks selects the passes to run by id; nil or empty runs all.
	Checks []string
}

// pass carries the shared model and accumulates diagnostics.
type pass struct {
	prog      *lang.Program
	units     []*unit
	asserts   []assertSite
	reachable map[string]bool
	df        *dataflow.Result // lazily computed; see dataflowResult
	diags     []Diagnostic
}

func (p *pass) addf(pos lang.Pos, check string, sev Severity, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos: pos, Check: check, Severity: sev,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyze runs the selected passes over a parsed program and returns the
// diagnostics sorted by position. It fails only on an unknown check id.
func Analyze(prog *lang.Program, opts Options) ([]Diagnostic, error) {
	passes := map[string]func(*pass){
		CheckView:      runView,
		CheckShape:     runShape,
		CheckBlocked:   runBlocked,
		CheckConsensus: runConsensus,
		CheckHygiene:   runHygiene,
		CheckFootprint: runFootprint,
		CheckDataflow:  runDataflow,
	}
	selected := opts.Checks
	if len(selected) == 0 {
		selected = AllChecks
	}
	for _, id := range selected {
		if passes[id] == nil {
			return nil, fmt.Errorf("analysis: unknown check %q (known: %v)", id, AllChecks)
		}
	}

	p := &pass{prog: prog, units: buildUnits(prog)}
	p.asserts = collectAsserts(p.units)
	p.reachable = reachableUnits(p.units)

	enabled := make(map[string]bool, len(selected))
	for _, id := range selected {
		enabled[id] = true
	}
	for _, id := range AllChecks { // fixed execution order
		if enabled[id] {
			passes[id](p)
		}
	}
	sortDiags(p.diags)
	return p.diags, nil
}
