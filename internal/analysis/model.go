package analysis

import (
	"strings"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// This file holds the analyzer's shared static model: per-process scope
// computation, abstract tuple shapes, and the conservative constant
// folder. Every pass works over the same model, so "compatible" means the
// same thing to the view checker, the shape checker, and the blocked-
// transaction checker.

// absField is a statically-approximated tuple field: either a known
// constant value, or unknown (a variable, wildcard, parameter, or
// unfoldable expression — anything that may take any value at run time).
type absField struct {
	known bool
	val   tuple.Value
}

// compat reports whether two abstract fields can describe the same
// concrete value. Unknown is compatible with everything.
func (f absField) compat(g absField) bool {
	return !f.known || !g.known || f.val.Equal(g.val)
}

// absPat is a statically-approximated tuple shape.
type absPat struct {
	fields []absField
	pos    lang.Pos
}

func (a absPat) arity() int { return len(a.fields) }

// compat reports whether the two shapes can describe a common tuple.
func (a absPat) compat(b absPat) bool {
	if len(a.fields) != len(b.fields) {
		return false
	}
	for i := range a.fields {
		if !a.fields[i].compat(b.fields[i]) {
			return false
		}
	}
	return true
}

// String renders the shape with `?` for unknown fields: <ready, ?>.
func (a absPat) String() string {
	parts := make([]string, len(a.fields))
	for i, f := range a.fields {
		if f.known {
			parts[i] = f.val.String()
		} else {
			parts[i] = "?"
		}
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// boundSet tracks identifiers that denote runtime bindings (parameters,
// let-constants, quantifier declarations) rather than atoms, mirroring
// the compiler's scope rules.
type boundSet map[string]bool

func (b boundSet) clone() boundSet {
	c := make(boundSet, len(b))
	for k := range b {
		c[k] = true
	}
	return c
}

// unit is one analyzable behavior: a process declaration or the main
// block.
type unit struct {
	name  string
	decl  *lang.ProcessDecl // nil for main
	body  []lang.StmtNode
	bound boundSet // parameters + let-constants (behavior-wide, as compiled)
	txns  []*txnInfo
}

// txnInfo is a transaction with its effective scope.
type txnInfo struct {
	txn   *lang.TxnNode
	bound boundSet // unit scope + quantifier declarations
}

// buildUnits constructs the per-behavior model for every process
// declaration plus main (when present), in declaration order.
func buildUnits(prog *lang.Program) []*unit {
	var units []*unit
	add := func(name string, decl *lang.ProcessDecl, params []string, body []lang.StmtNode) {
		u := &unit{name: name, decl: decl, body: body, bound: make(boundSet)}
		for _, p := range params {
			u.bound[p] = true
		}
		for _, s := range body {
			lang.Walk(s, func(n lang.Node) bool {
				if l, ok := n.(lang.LetAction); ok {
					u.bound[l.Name] = true
				}
				return true
			})
		}
		for _, s := range body {
			lang.Walk(s, func(n lang.Node) bool {
				if tx, ok := n.(*lang.TxnNode); ok {
					tb := u.bound
					if len(tx.DeclVars) > 0 {
						tb = u.bound.clone()
						for _, v := range tx.DeclVars {
							tb[v] = true
						}
					}
					u.txns = append(u.txns, &txnInfo{txn: tx, bound: tb})
				}
				return true
			})
		}
		units = append(units, u)
	}
	for _, pd := range prog.Processes {
		add(pd.Name, pd, pd.Params, pd.Body)
	}
	if prog.Main != nil {
		add(lang.MainProcess, nil, nil, prog.Main.Body)
	}
	return units
}

// abstractPattern approximates a pattern under a bound set: bound
// identifiers and variables are unknown, bare identifiers are atom
// constants, literals are themselves, and other field expressions are
// constant-folded when possible.
func abstractPattern(p lang.PatternNode, bound boundSet) absPat {
	a := absPat{fields: make([]absField, 0, len(p.Fields)), pos: p.Pos}
	for _, f := range p.Fields {
		ef, ok := f.(lang.ExprField)
		if !ok { // wildcard
			a.fields = append(a.fields, absField{})
			continue
		}
		if v, ok := foldExpr(ef.Expr, bound); ok {
			a.fields = append(a.fields, absField{known: true, val: v})
		} else {
			a.fields = append(a.fields, absField{})
		}
	}
	return a
}

// foldExpr conservatively evaluates an expression to a constant. Bound
// identifiers and ?variables never fold; unbound identifiers fold to
// atoms; operators and built-in calls fold through the runtime's own
// evaluator, so static and dynamic semantics cannot drift apart.
func foldExpr(e lang.ExprNode, bound boundSet) (tuple.Value, bool) {
	switch en := e.(type) {
	case *lang.LitNode:
		return en.Value, true
	case *lang.IdentNode:
		if bound[en.Name] {
			return tuple.Value{}, false
		}
		return tuple.Atom(en.Name), true
	case *lang.VarNode:
		return tuple.Value{}, false
	case *lang.UnNode:
		x, ok := foldExpr(en.X, bound)
		if !ok {
			return tuple.Value{}, false
		}
		var folded expr.Expr
		if en.Op == lang.TokNot {
			folded = expr.Not(expr.Const(x))
		} else {
			folded = expr.Neg(expr.Const(x))
		}
		v, err := folded.Eval(nil)
		return v, err == nil
	case *lang.BinNode:
		op, ok := lang.OpFor(en.Op)
		if !ok {
			return tuple.Value{}, false
		}
		l, lok := foldExpr(en.L, bound)
		// Short-circuit folding: `false and X` and `true or X` are
		// constant regardless of X (mirroring Binary.Eval's shortcut).
		if lok {
			if b, isb := l.AsBool(); isb {
				if op == expr.OpAnd && !b {
					return tuple.Bool(false), true
				}
				if op == expr.OpOr && b {
					return tuple.Bool(true), true
				}
			}
		}
		r, rok := foldExpr(en.R, bound)
		if !lok || !rok {
			return tuple.Value{}, false
		}
		v, err := expr.Bin(op, expr.Const(l), expr.Const(r)).Eval(nil)
		return v, err == nil
	case *lang.CallNode:
		if !expr.HasBuiltin(en.Name) {
			return tuple.Value{}, false
		}
		args := make([]expr.Expr, len(en.Args))
		for i, a := range en.Args {
			v, ok := foldExpr(a, bound)
			if !ok {
				return tuple.Value{}, false
			}
			args[i] = expr.Const(v)
		}
		v, err := expr.Fn(en.Name, args...).Eval(nil)
		return v, err == nil
	}
	return tuple.Value{}, false
}

// constFalse reports whether e provably evaluates to false.
func constFalse(e lang.ExprNode, bound boundSet) bool {
	if e == nil {
		return false
	}
	v, ok := foldExpr(e, bound)
	if !ok {
		return false
	}
	b, isb := v.AsBool()
	return isb && !b
}

// absRule is one view rule in abstract form.
type absRule struct {
	pat  absPat
	dead bool // guard is constant-false: the rule admits nothing
}

// abstractClause approximates an import/export clause. It returns nil for
// an empty rule list, which means "everything" (no restriction).
func abstractClause(rules []lang.ViewRule, params []string) []absRule {
	if len(rules) == 0 {
		return nil
	}
	bound := make(boundSet, len(params))
	for _, p := range params {
		bound[p] = true
	}
	out := make([]absRule, 0, len(rules))
	for _, r := range rules {
		// Variables quantified by the rule's pattern are bound within
		// its guard.
		rb := bound.clone()
		for _, f := range r.Pattern.Fields {
			if ef, ok := f.(lang.ExprField); ok {
				if v, ok := ef.Expr.(*lang.VarNode); ok {
					rb[v.Name] = true
				}
			}
		}
		out = append(out, absRule{
			pat:  abstractPattern(r.Pattern, bound),
			dead: constFalse(r.Where, rb),
		})
	}
	return out
}

// clauseAdmits reports whether a clause may admit some instance of the
// shape. A nil clause (everything) admits all shapes.
func clauseAdmits(clause []absRule, pat absPat) bool {
	if clause == nil {
		return true
	}
	for _, r := range clause {
		if !r.dead && r.pat.compat(pat) {
			return true
		}
	}
	return false
}

// assertSite is one statically-known tuple producer: an assert action, or
// one of main's initial assertions.
type assertSite struct {
	unit *unit
	pat  absPat
}

// collectAsserts gathers every assert site across the given units.
func collectAsserts(units []*unit) []assertSite {
	var sites []assertSite
	for _, u := range units {
		for _, ti := range u.txns {
			for _, a := range ti.txn.Actions {
				if as, ok := a.(lang.AssertAction); ok {
					sites = append(sites, assertSite{unit: u, pat: abstractPattern(as.Pattern, ti.bound)})
				}
			}
		}
	}
	return sites
}

// reachableUnits computes the set of unit names reachable from main
// through spawn actions. Programs without a main block (library files)
// are treated as all-reachable.
func reachableUnits(units []*unit) map[string]bool {
	byName := make(map[string]*unit, len(units))
	var root *unit
	for _, u := range units {
		byName[u.name] = u
		if u.decl == nil {
			root = u
		}
	}
	reach := make(map[string]bool, len(units))
	if root == nil {
		for _, u := range units {
			reach[u.name] = true
		}
		return reach
	}
	var visit func(u *unit)
	visit = func(u *unit) {
		if reach[u.name] {
			return
		}
		reach[u.name] = true
		for _, s := range u.body {
			lang.Walk(s, func(n lang.Node) bool {
				if sp, ok := n.(lang.SpawnAction); ok {
					if next, ok := byName[sp.Name]; ok {
						visit(next)
					}
				}
				return true
			})
		}
	}
	visit(root)
	return reach
}
