package analysis

import "github.com/sdl-lang/sdl/internal/lang"

// runView is the view-soundness pass. The paper's safety story says a
// transaction operates on the window W = Import(p) ∩ D and its assertions
// pass through Export(p); a pattern provably disjoint from the relevant
// clause makes the operation a silent no-op (asserts vanish, queries see
// an empty window), which is always a bug in the program or its view.
func runView(p *pass) {
	for _, u := range p.units {
		if u.decl == nil {
			continue // main has no view declaration
		}
		exp := abstractClause(u.decl.Exports, u.decl.Params)
		imp := abstractClause(u.decl.Imports, u.decl.Params)
		if exp == nil && imp == nil {
			continue
		}
		for _, ti := range u.txns {
			if exp != nil {
				for _, a := range ti.txn.Actions {
					as, ok := a.(lang.AssertAction)
					if !ok {
						continue
					}
					pat := abstractPattern(as.Pattern, ti.bound)
					if !clauseAdmits(exp, pat) {
						p.addf(as.Pattern.Pos, CheckView, Error,
							"assert %s falls outside the export clause of process %s; the tuple would be silently discarded",
							lang.PatternString(as.Pattern), u.name)
					}
				}
			}
			if imp != nil {
				for _, it := range ti.txn.Items {
					pat := abstractPattern(it.Pattern, ti.bound)
					if clauseAdmits(imp, pat) {
						continue
					}
					if it.Negated {
						p.addf(it.Pos, CheckView, Warn,
							"negated pattern %s is disjoint from the import clause of process %s; the negation is vacuously true",
							lang.PatternString(it.Pattern), u.name)
					} else {
						p.addf(it.Pos, CheckView, Error,
							"query pattern %s is disjoint from the import clause of process %s; it can never match",
							lang.PatternString(it.Pattern), u.name)
					}
				}
			}
		}
	}
}
