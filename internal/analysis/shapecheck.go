package analysis

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sdl-lang/sdl/internal/lang"
)

// runShape is the tuple-shape inference pass. The dataspace is untyped, so
// a typo in an arity, a lead atom, or a constant field does not fail — the
// query just never matches. This pass collects every assert site's
// abstract shape program-wide and flags query patterns that are
// compatible with none of them.
func runShape(p *pass) {
	byArity := make(map[int][]assertSite)
	for _, s := range p.asserts {
		byArity[s.pat.arity()] = append(byArity[s.pat.arity()], s)
	}
	for _, u := range p.units {
		for _, ti := range u.txns {
			for _, it := range ti.txn.Items {
				pat := abstractPattern(it.Pattern, ti.bound)
				sites := byArity[pat.arity()]
				if len(sites) == 0 {
					p.addf(it.Pos, CheckShape, Warn,
						"query pattern %s has arity %d, but no assert site in the program produces %d-tuples",
						lang.PatternString(it.Pattern), pat.arity(), pat.arity())
					continue
				}
				if compatibleWithAny(pat, sites) {
					continue
				}
				p.addf(it.Pos, CheckShape, Warn, "%s", shapeMismatch(it, pat, sites))
			}
		}
	}
}

func compatibleWithAny(pat absPat, sites []assertSite) bool {
	for _, s := range sites {
		if pat.compat(s.pat) {
			return true
		}
	}
	return false
}

// shapeMismatch explains why no asserted shape matches: an unknown lead
// (with the asserted leads listed), or the first constant field on which
// every site conflicts.
func shapeMismatch(it lang.QueryItem, pat absPat, sites []assertSite) string {
	src := lang.PatternString(it.Pattern)
	if len(pat.fields) > 0 && pat.fields[0].known {
		leadOK := false
		for _, s := range sites {
			if pat.fields[0].compat(s.pat.fields[0]) {
				leadOK = true
				break
			}
		}
		if !leadOK {
			return fmt.Sprintf(
				"query pattern %s matches no asserted shape: no %d-tuple is asserted with lead %s (asserted leads: %s)",
				src, pat.arity(), pat.fields[0].val, assertedLeads(sites))
		}
	}
	for i := range pat.fields {
		if !pat.fields[i].known {
			continue
		}
		conflict := true
		for _, s := range sites {
			if pat.fields[i].compat(s.pat.fields[i]) {
				conflict = false
				break
			}
		}
		if conflict {
			return fmt.Sprintf(
				"query pattern %s matches no asserted shape: field %d (%s) conflicts with every asserted %d-tuple",
				src, i+1, pat.fields[i].val, pat.arity())
		}
	}
	return fmt.Sprintf("query pattern %s matches no statically asserted tuple shape", src)
}

// assertedLeads lists the distinct known lead values of the sites, with
// "?" standing in for sites whose lead is unknown.
func assertedLeads(sites []assertSite) string {
	seen := make(map[string]bool)
	var leads []string
	for _, s := range sites {
		str := "?"
		if len(s.pat.fields) > 0 && s.pat.fields[0].known {
			str = s.pat.fields[0].val.String()
		}
		if !seen[str] {
			seen[str] = true
			leads = append(leads, str)
		}
	}
	sort.Strings(leads)
	return strings.Join(leads, ", ")
}
