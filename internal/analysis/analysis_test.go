package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sdl-lang/sdl/internal/analysis"
	"github.com/sdl-lang/sdl/internal/lang"
)

var update = flag.Bool("update", false, "rewrite golden files")

// renderDiags produces the golden format: one `severity line:col:
// [check] message` line per diagnostic.
func renderDiags(ds []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.Severity.String())
		b.WriteByte(' ')
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func analyzeFixture(t *testing.T, name string, opts analysis.Options) []analysis.Diagnostic {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatalf("%s does not parse: %v", name, err)
	}
	diags, err := analysis.Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestGolden runs each seeded fixture under just its own pass (so the
// expectations stay focused), and the clean fixture under all passes.
func TestGolden(t *testing.T) {
	cases := []struct {
		fixture string
		opts    analysis.Options
	}{
		{"view", analysis.Options{Checks: []string{analysis.CheckView}}},
		{"shape", analysis.Options{Checks: []string{analysis.CheckShape}}},
		{"blocked", analysis.Options{Checks: []string{analysis.CheckBlocked}}},
		{"consensus", analysis.Options{Checks: []string{analysis.CheckConsensus}}},
		{"hygiene", analysis.Options{Checks: []string{analysis.CheckHygiene}}},
		{"footprint", analysis.Options{Checks: []string{analysis.CheckFootprint}}},
		{"dataflow", analysis.Options{Checks: []string{analysis.CheckDataflow}}},
		{"scanheavy", analysis.Options{Checks: []string{analysis.CheckDataflow}}},
		{"clean", analysis.Options{}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			got := renderDiags(analyzeFixture(t, tc.fixture+".sdl", tc.opts))
			goldenPath := filepath.Join("testdata", tc.fixture+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestSeededFindingsPerCheck is the acceptance gate in code: every check
// class detects at least one seeded violation in its fixture, at the
// expected worst severity (the footprint pass is informational by design,
// so its fixture is expected to surface notes).
func TestSeededFindingsPerCheck(t *testing.T) {
	worst := map[string]analysis.Severity{
		analysis.CheckView:      analysis.Error,
		analysis.CheckShape:     analysis.Warn,
		analysis.CheckBlocked:   analysis.Warn,
		analysis.CheckConsensus: analysis.Warn,
		analysis.CheckHygiene:   analysis.Warn,
		analysis.CheckFootprint: analysis.Note,
		analysis.CheckDataflow:  analysis.Note,
	}
	for _, check := range analysis.AllChecks {
		diags := analyzeFixture(t, check+".sdl", analysis.Options{Checks: []string{check}})
		max := analysis.Note
		count := 0
		for _, d := range diags {
			if d.Check != check {
				t.Errorf("%s fixture produced diagnostic for check %s", check, d.Check)
			}
			if d.Severity > max {
				max = d.Severity
			}
			if d.Severity >= worst[check] {
				count++
			}
		}
		if count == 0 {
			t.Errorf("%s fixture produced no findings", check)
		}
		if max != worst[check] {
			t.Errorf("%s fixture worst severity = %s, want %s", check, max, worst[check])
		}
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	prog, err := lang.Parse("main -> <a, 1> end")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.Analyze(prog, analysis.Options{Checks: []string{"bogus"}}); err == nil {
		t.Fatal("unknown check id accepted")
	}
}

// TestCheckToggling: a fixture's findings disappear when its pass is not
// selected.
func TestCheckToggling(t *testing.T) {
	diags := analyzeFixture(t, "hygiene.sdl", analysis.Options{Checks: []string{analysis.CheckView}})
	if len(diags) != 0 {
		t.Errorf("view-only run of hygiene fixture produced %d diagnostics: %v", len(diags), diags)
	}
}

// TestLibraryFileAllReachable: without a main block, every process is
// analyzed as reachable — the blocked pass must not flag a delayed
// transaction fed by a process nothing spawns.
func TestLibraryFileAllReachable(t *testing.T) {
	prog, err := lang.Parse(`
process Feeder()
behavior -> <food, 1> end

process Eater()
behavior exists v: <food, ?v>! => <ate, ?v> end
`)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Analyze(prog, analysis.Options{Checks: []string{analysis.CheckBlocked}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("library file flagged: %v", diags)
	}
}
