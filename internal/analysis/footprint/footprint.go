// Package footprint statically classifies a transaction's dataspace
// footprint: whether every index bucket the transaction can scan, retract
// from, or assert into is determined by the issuing environment (Ground),
// or at least one leading field is not (Wildcard).
//
// The classification is computed once, at compile time, against the set of
// names bound in the issuing environment (process parameters and
// let-constants). The transaction engine uses it as a planning hint:
//
//   - Wildcard is a certain judgment — a query-bound or wildcard lead can
//     never become ground at run time, because pattern matching only ever
//     adds query-quantified bindings, which are not in the issuing
//     environment the leads are evaluated under. The engine skips dynamic
//     footprint planning entirely for Wildcard transactions.
//   - Ground is an optimistic judgment — the dynamic planner remains
//     authoritative (a lead expression can still fail to evaluate). The
//     engine plans as usual and the plan is expected to succeed.
//   - Unknown (the zero value) means no static information; legacy
//     call sites that never ran the classifier behave exactly as before.
//
// The package sits below the compiler and the analyzer and imports only
// pattern and expr, so both can use it without import cycles.
package footprint

import (
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
)

// Class is a transaction's static footprint classification.
type Class uint8

const (
	// Unknown means the classifier never ran; dynamic planning decides.
	Unknown Class = iota
	// Ground means every lead is expected to be determined by the issuing
	// environment: the dynamic footprint plan should be exact.
	Ground
	// Wildcard means at least one lead is certainly not determined by the
	// issuing environment: dynamic planning would always fail, and the
	// engine skips it.
	Wildcard
	// GroundKeys strengthens Ground: every lead folds to a concrete,
	// environment-independent constant (a literal, an atom, or an
	// expression over those — never a parameter or query binding), so the
	// interprocedural analyzer attached the exact key set to the request
	// (Request.StaticKeys) and the engine may skip per-execution lead
	// evaluation. Only the compiler's refiner should stamp this class: the
	// engine trusts the attached keys to cover every bucket the
	// transaction scans, retracts from, or asserts into.
	GroundKeys
)

// NumClasses is the number of footprint classes, for per-class counters.
const NumClasses = 4

// String names the class.
func (c Class) String() string {
	switch c {
	case Ground:
		return "ground"
	case Wildcard:
		return "wildcard"
	case GroundKeys:
		return "ground-keys"
	default:
		return "unknown"
	}
}

// leadGround reports whether p's leading field is determined by the
// issuing environment, where bound reports membership in that environment.
// Arity-0 patterns address the fixed zero-lead bucket and count as ground.
func leadGround(p pattern.Pattern, bound func(string) bool) bool {
	if p.Arity() == 0 {
		return true
	}
	f := p.Fields[0]
	switch f.Kind {
	case pattern.FieldConst:
		return true
	case pattern.FieldVar:
		return bound(f.Name)
	case pattern.FieldExpr:
		var e expr.Expr = f.Expr
		if e == nil {
			return false
		}
		for _, v := range e.Vars(nil) {
			if !bound(v) {
				return false
			}
		}
		return true
	default: // FieldWildcard
		return false
	}
}

// Classify classifies the footprint of a transaction with binding query q
// and assertion patterns asserts, issued under an environment whose bound
// names are reported by bound. The result is Wildcard if any lead is not
// determined by that environment, Ground otherwise.
func Classify(q pattern.Query, asserts []pattern.Pattern, bound func(string) bool) Class {
	for _, p := range q.Patterns {
		if !leadGround(p, bound) {
			return Wildcard
		}
	}
	for _, p := range asserts {
		if !leadGround(p, bound) {
			return Wildcard
		}
	}
	return Ground
}
