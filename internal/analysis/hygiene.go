package analysis

import "github.com/sdl-lang/sdl/internal/lang"

// runHygiene is the hygiene pass: findings that do not change what a
// program can do, but reliably mark dead or misleading text — unused
// quantifier variables, variables consumed without a positive binding
// occurrence (the retract/assert-of-nothing mistake the compiler rejects
// later with a terser message), and branches guarded by constant-false
// predicates.
func runHygiene(p *pass) {
	for _, u := range p.units {
		for _, ti := range u.txns {
			checkUnusedDecls(p, ti)
			checkUnboundUses(p, u, ti)
		}
		for _, s := range u.body {
			lang.Walk(s, func(n lang.Node) bool {
				var branches []lang.BranchNode
				switch x := n.(type) {
				case *lang.SelNode:
					branches = x.Branches
				case *lang.RepNode:
					branches = x.Branches
				case *lang.ParNode:
					branches = x.Branches
				default:
					return true
				}
				for _, b := range branches {
					if b.Guard != nil && constFalse(b.Guard.Where, u.bound) {
						p.addf(b.Guard.Pos, CheckHygiene, Warn,
							"branch guard is constant-false; this branch is unreachable")
					}
				}
				return true
			})
		}
	}
}

// checkUnusedDecls flags quantifier variables that no pattern, predicate,
// or action ever mentions.
func checkUnusedDecls(p *pass, ti *txnInfo) {
	if len(ti.txn.DeclVars) == 0 {
		return
	}
	used := make(map[string]bool)
	mark := func(n lang.Node) bool {
		switch x := n.(type) {
		case *lang.VarNode:
			used[x.Name] = true
		case *lang.IdentNode:
			if ti.bound[x.Name] {
				used[x.Name] = true
			}
		}
		return true
	}
	for _, it := range ti.txn.Items {
		lang.Walk(it, mark)
	}
	lang.Walk(ti.txn.Where, mark)
	for _, a := range ti.txn.Actions {
		lang.Walk(a, mark)
	}
	for i, v := range ti.txn.DeclVars {
		if used[v] {
			continue
		}
		pos := ti.txn.Pos
		if i < len(ti.txn.DeclVarPos) {
			pos = ti.txn.DeclVarPos[i]
		}
		p.addf(pos, CheckHygiene, Warn, "quantifier variable %s is never used", v)
	}
}

// checkUnboundUses flags variables consumed by the predicate or the
// actions that no positive query pattern binds: variables appearing only
// under a negation are wildcards of the negation and carry no binding out
// of it.
func checkUnboundUses(p *pass, u *unit, ti *txnInfo) {
	posBound := u.bound.clone() // params + lets are runtime-bound
	for _, it := range ti.txn.Items {
		if it.Negated {
			continue
		}
		for _, f := range it.Pattern.Fields {
			ef, ok := f.(lang.ExprField)
			if !ok {
				continue
			}
			switch x := ef.Expr.(type) {
			case *lang.VarNode:
				posBound[x.Name] = true
			case *lang.IdentNode:
				if ti.bound[x.Name] {
					posBound[x.Name] = true
				}
			}
		}
	}
	reported := make(map[string]bool)
	check := func(n lang.Node) bool {
		var name string
		switch x := n.(type) {
		case *lang.VarNode:
			name = x.Name
		case *lang.IdentNode:
			if !ti.bound[x.Name] {
				return true // an atom, not a variable reference
			}
			name = x.Name
		default:
			return true
		}
		if !posBound[name] && !reported[name] {
			reported[name] = true
			pos, _ := lang.NodePos(n)
			p.addf(pos, CheckHygiene, Warn,
				"variable ?%s is referenced but no positive query pattern binds it", name)
		}
		return true
	}
	lang.Walk(ti.txn.Where, check)
	for _, a := range ti.txn.Actions {
		lang.Walk(a, check)
	}
}
