package analysis

import (
	"sort"
	"strings"

	"github.com/sdl-lang/sdl/internal/lang"
)

// runConsensus is the static consensus-set pass. At run time a consensus
// transaction commits only when every process in its community — the
// transitive closure of the import-overlap relation `p needs q ≡
// Import(p) ∩ Import(q) ∩ D ≠ ∅` — offers one. This pass over-approximates
// that relation from the view clauses alone (dropping the ∩ D term, so
// every runtime community is contained in a static one), reports each
// `@>` transaction's potential community as a note, and warns about two
// structural smells:
//
//   - a singleton community: the transaction can synchronize only with
//     other instances of its own process type;
//   - a community member that never offers a consensus transaction: while
//     an instance of it lives, no consensus in the community can fire.
//     main is exempt — it is the orchestrator and typically terminates
//     before consensus is attempted.
func runConsensus(p *pass) {
	// Participants: reachable units. Main participates (an undeclared
	// view imports everything) but is exempt from the no-offer warning.
	var parts []*unit
	for _, u := range p.units {
		if p.reachable[u.name] {
			parts = append(parts, u)
		}
	}
	imports := make(map[*unit][]absRule, len(parts))
	hasOffer := make(map[*unit]bool, len(parts))
	for _, u := range parts {
		if u.decl != nil {
			imports[u] = abstractClause(u.decl.Imports, u.decl.Params)
		}
		for _, ti := range u.txns {
			if ti.txn.Tag == lang.TagConsensus {
				hasOffer[u] = true
			}
		}
	}

	overlaps := func(a, b *unit) bool {
		ra, rb := imports[a], imports[b]
		if ra == nil || rb == nil {
			return true // an empty clause imports everything
		}
		for _, x := range ra {
			if x.dead {
				continue
			}
			for _, y := range rb {
				if !y.dead && x.pat.compat(y.pat) {
					return true
				}
			}
		}
		return false
	}
	community := func(root *unit) []*unit {
		in := map[*unit]bool{root: true}
		members := []*unit{root}
		for changed := true; changed; {
			changed = false
			for _, u := range parts {
				if in[u] {
					continue
				}
				for m := range in {
					if overlaps(u, m) {
						in[u] = true
						members = append(members, u)
						changed = true
						break
					}
				}
			}
		}
		return members
	}

	for _, u := range parts {
		for _, ti := range u.txns {
			if ti.txn.Tag != lang.TagConsensus {
				continue
			}
			members := community(u)
			names := make([]string, len(members))
			for i, m := range members {
				names[i] = m.name
			}
			sort.Strings(names)
			p.addf(ti.txn.Pos, CheckConsensus, Note,
				"consensus community of process %s: {%s}", u.name, strings.Join(names, ", "))
			if len(members) == 1 {
				p.addf(ti.txn.Pos, CheckConsensus, Warn,
					"consensus transaction's static community contains only %s; it cannot synchronize with any other process type", u.name)
				continue
			}
			for _, m := range members {
				if m == u || m.decl == nil || hasOffer[m] {
					continue
				}
				p.addf(ti.txn.Pos, CheckConsensus, Warn,
					"process %s is in this consensus community but never offers a consensus transaction; the community may never fire",
					m.name)
			}
		}
	}
}
