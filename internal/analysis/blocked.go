package analysis

import "github.com/sdl-lang/sdl/internal/lang"

// runBlocked is the permanently-blocked delayed-transaction pass. A
// delayed (`=>`) transaction suspends until its query succeeds; if one of
// its positive patterns can be satisfied by no assert site in any process
// reachable from main (nor by main's initial assertions), the transaction
// provably never wakes — the runtime's silent "blocks forever" failure
// mode. ∀-quantified queries are exempt from the pattern check (an empty
// match set satisfies them vacuously); a constant-false predicate blocks
// either way.
//
// The pass is conservative about the data it cannot see: a dataspace
// seeded from a checkpoint (sdli -restore) may satisfy patterns no assert
// site produces, hence Warn rather than Error severity.
func runBlocked(p *pass) {
	var reachableSites []assertSite
	for _, s := range p.asserts {
		if p.reachable[s.unit.name] {
			reachableSites = append(reachableSites, s)
		}
	}
	for _, u := range p.units {
		if !p.reachable[u.name] {
			continue
		}
		for _, ti := range u.txns {
			if ti.txn.Tag != lang.TagDelayed {
				continue
			}
			if constFalse(ti.txn.Where, ti.bound) {
				p.addf(ti.txn.Pos, CheckBlocked, Warn,
					"delayed transaction can never fire: its predicate is constant-false")
				continue
			}
			if ti.txn.Quant == lang.QuantForall {
				continue
			}
			for _, it := range ti.txn.Items {
				if it.Negated {
					continue
				}
				pat := abstractPattern(it.Pattern, ti.bound)
				if !compatibleWithAny(pat, reachableSites) {
					p.addf(it.Pos, CheckBlocked, Warn,
						"delayed transaction may block forever: pattern %s is satisfied by no reachable assert site",
						lang.PatternString(it.Pattern))
				}
			}
		}
	}
}
