package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/sdl-lang/sdl/internal/analysis"
	"github.com/sdl-lang/sdl/internal/lang"
)

// TestExamplesCorpusVetsClean pins the standing contract: every shipped
// example program passes every analyzer pass with nothing above a note
// (community reports are expected — they are information, not findings).
func TestExamplesCorpusVetsClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "sdl", "*.sdl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 7 {
		t.Fatalf("expected at least 7 example programs, found %d", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lang.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			diags, err := analysis.Analyze(prog, analysis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				if d.Severity >= analysis.Warn {
					t.Errorf("finding in shipped example: %s %s", d.Severity, d)
				}
			}
		})
	}
}
