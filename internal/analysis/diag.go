package analysis

import (
	"fmt"
	"sort"

	"github.com/sdl-lang/sdl/internal/lang"
)

// Severity grades a diagnostic.
type Severity uint8

// Severities. Note diagnostics are informational (consensus community
// reports); Warn marks probable bugs; Error marks programs the runtime
// will reject or that provably violate their declared views.
const (
	Note Severity = iota
	Warn
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      lang.Pos
	Check    string // check id: one of AllChecks
	Severity Severity
	Message  string
}

// String renders the finding in the canonical `line:col: [check-id]
// message` form. Callers that analyze files prepend `file:`.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// sortDiags orders diagnostics by position, then severity (most severe
// first), then check id, for deterministic output.
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Check < b.Check
	})
}
