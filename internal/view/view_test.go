package view

import (
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
)

func year(n int64) tuple.Tuple { return tuple.New(tuple.Atom("year"), tuple.Int(n)) }

func scanAll(w Window, arity int) []tuple.Tuple {
	var out []tuple.Tuple
	w.Scan(arity, tuple.Value{}, false, func(_ tuple.ID, t tuple.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// withWindow runs fn with a window over the store's current configuration.
func withWindow(s *dataspace.Store, v View, env expr.Env, fn func(w Window)) {
	s.Snapshot(func(r dataspace.Reader) { fn(v.Window(r, env)) })
}

func TestUniversalViewPassesEverything(t *testing.T) {
	s := dataspace.New()
	s.Assert(tuple.Environment, year(87), year(90))
	withWindow(s, Universal(), nil, func(w Window) {
		if got := scanAll(w, 2); len(got) != 2 {
			t.Errorf("scan = %d tuples", len(got))
		}
		if !w.Admits(year(1)) {
			t.Error("universal import must admit everything")
		}
	})
	s.Snapshot(func(r dataspace.Reader) {
		if !Universal().Exports(r, nil, year(1)) {
			t.Error("universal export must admit everything")
		}
	})
}

func TestPaperYearView(t *testing.T) {
	// The paper's example:
	//   IMPORT α : α ≤ 87 :: <year, α>
	//   EXPORT <year, *>
	v := New(
		Union(PatWhere(
			pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a")),
			expr.Le(expr.V("a"), expr.Const(tuple.Int(87))),
		)),
		Union(Pat(pattern.P(pattern.C(tuple.Atom("year")), pattern.W()))),
	)
	s := dataspace.New()
	s.Assert(tuple.Environment, year(85), year(87), year(90),
		tuple.New(tuple.Atom("month"), tuple.Int(1)))

	withWindow(s, v, nil, func(w Window) {
		got := scanAll(w, 2)
		if len(got) != 2 {
			t.Fatalf("window = %v", got)
		}
		for _, tp := range got {
			n, _ := tp.Field(1).AsInt()
			if n > 87 {
				t.Errorf("window leaked %v", tp)
			}
		}
		if w.Admits(year(90)) {
			t.Error("import must reject year > 87")
		}
		if w.Admits(tuple.New(tuple.Atom("month"), tuple.Int(1))) {
			t.Error("import must reject month tuples")
		}
	})
	s.Snapshot(func(r dataspace.Reader) {
		if !v.Exports(r, nil, year(99)) {
			t.Error("export <year,*> must admit any year")
		}
		if v.Exports(r, nil, tuple.New(tuple.Atom("month"), tuple.Int(1))) {
			t.Error("export must reject month tuples")
		}
	})
}

func TestViewWithProcessParameters(t *testing.T) {
	// Sort(node_id, next_node_id): IMPORT <node_id,*,*,*>, <next_node_id,*,*,*>
	mk := func(id int64) tuple.Tuple {
		return tuple.New(tuple.Int(id), tuple.Atom("p"), tuple.Int(id*10), tuple.Int(id+1))
	}
	v := New(
		Union(
			Pat(pattern.P(pattern.V("node_id"), pattern.W(), pattern.W(), pattern.W())),
			Pat(pattern.P(pattern.V("next_node_id"), pattern.W(), pattern.W(), pattern.W())),
		),
		Everything(),
	)
	env := expr.Env{"node_id": tuple.Int(1), "next_node_id": tuple.Int(2)}
	s := dataspace.New()
	s.Assert(tuple.Environment, mk(1), mk(2), mk(3))

	withWindow(s, v, env, func(w Window) {
		got := scanAll(w, 4)
		if len(got) != 2 {
			t.Fatalf("window = %v", got)
		}
		for _, tp := range got {
			id, _ := tp.Field(0).AsInt()
			if id != 1 && id != 2 {
				t.Errorf("leaked node %d", id)
			}
		}
	})
}

func TestBoundedScanUsesIndexBuckets(t *testing.T) {
	// A view whose import rules pin the lead must not enumerate the rest of
	// the arity bucket. We detect this with a counting reader.
	v := New(
		Union(
			Pat(pattern.P(pattern.C(tuple.Atom("a")), pattern.W())),
			Pat(pattern.P(pattern.C(tuple.Atom("b")), pattern.W())),
		),
		Everything(),
	)
	s := dataspace.New()
	s.Assert(tuple.Environment,
		tuple.New(tuple.Atom("a"), tuple.Int(1)),
		tuple.New(tuple.Atom("b"), tuple.Int(2)),
	)
	for i := int64(0); i < 100; i++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Atom("junk"), tuple.Int(i)))
	}
	s.Snapshot(func(r dataspace.Reader) {
		cr := &countingReader{Reader: r}
		w := v.Window(cr, nil)
		got := scanAll(w, 2)
		if len(got) != 2 {
			t.Fatalf("window = %v", got)
		}
		if cr.visited > 2 {
			t.Errorf("bounded view visited %d tuples, want ≤ 2", cr.visited)
		}
	})
}

type countingReader struct {
	dataspace.Reader
	visited int
}

func (c *countingReader) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	c.Reader.Scan(arity, lead, leadKnown, func(id tuple.ID, t tuple.Tuple) bool {
		c.visited++
		return fn(id, t)
	})
}

func TestClauseNoMatcherForArityScansNothing(t *testing.T) {
	v := New(
		Union(Pat(pattern.P(pattern.C(tuple.Atom("a")), pattern.W()))), // arity 2 only
		Everything(),
	)
	s := dataspace.New()
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("a"), tuple.Int(1), tuple.Int(2)))
	withWindow(s, v, nil, func(w Window) {
		if got := scanAll(w, 3); len(got) != 0 {
			t.Errorf("arity-3 scan through arity-2-only view = %v", got)
		}
	})
}

func TestDynamicMatcher(t *testing.T) {
	// The Label-style dynamic import: admit <label, p, l> only when a
	// <threshold, p, _> tuple currently exists — the view depends on D.
	dyn := Dyn(3, func(r dataspace.Reader, _ expr.Env, t tuple.Tuple) bool {
		if tag, _ := t.Field(0).AsAtom(); tag != "label" {
			return false
		}
		found := false
		r.Scan(3, tuple.Atom("threshold"), true, func(_ tuple.ID, th tuple.Tuple) bool {
			if th.Field(1).Equal(t.Field(1)) {
				found = true
				return false
			}
			return true
		})
		return found
	})
	v := New(Union(dyn), Everything())

	s := dataspace.New()
	lbl := tuple.New(tuple.Atom("label"), tuple.Int(7), tuple.Int(7))
	s.Assert(tuple.Environment, lbl)

	withWindow(s, v, nil, func(w Window) {
		if got := scanAll(w, 3); len(got) != 0 {
			t.Errorf("label admitted without threshold: %v", got)
		}
	})
	// After the threshold tuple appears, the same view admits the label.
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("threshold"), tuple.Int(7), tuple.Int(1)))
	withWindow(s, v, nil, func(w Window) {
		if got := scanAll(w, 3); len(got) != 1 {
			t.Errorf("label not admitted with threshold: %v", got)
		}
	})
}

func TestDynamicMatcherArityGate(t *testing.T) {
	m := Dyn(2, func(dataspace.Reader, expr.Env, tuple.Tuple) bool { return true })
	if m.Admits(nil, nil, tuple.New(tuple.Int(1), tuple.Int(2), tuple.Int(3))) {
		t.Error("arity-gated dynamic matcher admitted wrong arity")
	}
	if _, applies, _ := m.Restriction(nil, 3); applies {
		t.Error("restriction should not apply to other arities")
	}
	if _, applies, bounded := m.Restriction(nil, 2); !applies || bounded {
		t.Error("dynamic matcher must be unbounded for its arity")
	}
	anyArity := Dyn(0, func(dataspace.Reader, expr.Env, tuple.Tuple) bool { return true })
	if !anyArity.Admits(nil, nil, tuple.New(tuple.Int(1))) {
		t.Error("arity-0 dynamic matcher should admit any arity")
	}
}

func TestScanWithKnownLeadStillFilters(t *testing.T) {
	v := New(
		Union(PatWhere(
			pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a")),
			expr.Le(expr.V("a"), expr.Const(tuple.Int(87))),
		)),
		Everything(),
	)
	s := dataspace.New()
	s.Assert(tuple.Environment, year(85), year(90))
	withWindow(s, v, nil, func(w Window) {
		var got []tuple.Tuple
		w.Scan(2, tuple.Atom("year"), true, func(_ tuple.ID, t tuple.Tuple) bool {
			got = append(got, t)
			return true
		})
		if len(got) != 1 || !got[0].Equal(year(85)) {
			t.Errorf("known-lead scan = %v", got)
		}
	})
}

func TestMaterialize(t *testing.T) {
	v := New(
		Union(PatWhere(
			pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a")),
			expr.Le(expr.V("a"), expr.Const(tuple.Int(87))),
		)),
		Everything(),
	)
	s := dataspace.New()
	s.Assert(tuple.Environment, year(85), year(87), year(90),
		tuple.New(tuple.Atom("month"), tuple.Int(1)))
	var got int
	s.Snapshot(func(r dataspace.Reader) {
		got = len(Materialize(v, r, nil))
	})
	if got != 2 {
		t.Errorf("Materialize = %d IDs, want 2", got)
	}
}

func TestMaterializeOverlapDisjoint(t *testing.T) {
	// Two Sort-style views overlap iff they share a node.
	mkView := func(a, b int64) View {
		return New(Union(
			Pat(pattern.P(pattern.C(tuple.Int(a)), pattern.W())),
			Pat(pattern.P(pattern.C(tuple.Int(b)), pattern.W())),
		), Everything())
	}
	s := dataspace.New()
	s.Assert(tuple.Environment,
		tuple.New(tuple.Int(1), tuple.Atom("x")),
		tuple.New(tuple.Int(2), tuple.Atom("x")),
		tuple.New(tuple.Int(3), tuple.Atom("x")),
	)
	s.Snapshot(func(r dataspace.Reader) {
		v12 := Materialize(mkView(1, 2), r, nil)
		v23 := Materialize(mkView(2, 3), r, nil)
		v3x := Materialize(mkView(3, 9), r, nil)
		if !overlaps(v12, v23) {
			t.Error("v12 and v23 should overlap (node 2)")
		}
		if overlaps(v12, v3x) {
			t.Error("v12 and v3x should be disjoint")
		}
	})
}

func overlaps(a, b map[tuple.ID]struct{}) bool {
	for id := range a {
		if _, ok := b[id]; ok {
			return true
		}
	}
	return false
}

func TestWindowGetAndReader(t *testing.T) {
	s := dataspace.New()
	ids := s.Assert(tuple.Environment, year(85))
	withWindow(s, Universal(), nil, func(w Window) {
		inst, ok := w.Get(ids[0])
		if !ok || !inst.Tuple.Equal(year(85)) {
			t.Errorf("Get = %+v, %v", inst, ok)
		}
		if w.Reader() == nil {
			t.Error("Reader() is nil")
		}
	})
}

// Property: for random views and stores, a window scan (whatever internal
// path it takes — bounded buckets or filtered full scans) returns exactly
// the tuples a brute-force Admits filter returns.
func TestQuickWindowScanEquivalence(t *testing.T) {
	leads := []tuple.Value{tuple.Atom("a"), tuple.Atom("b"), tuple.Int(1), tuple.Int(2)}
	for trial := 0; trial < 40; trial++ {
		s := dataspace.New()
		// Random-ish population derived from the trial number.
		for i := 0; i < 30; i++ {
			lead := leads[(trial+i)%len(leads)]
			if (trial+i)%3 == 0 {
				s.Assert(tuple.Environment, tuple.New(lead, tuple.Int(int64(i))))
			} else {
				s.Assert(tuple.Environment, tuple.New(lead, tuple.Int(int64(i)), tuple.Int(int64(trial))))
			}
		}
		// Alternate between bounded, guarded, dynamic, and universal views.
		var v View
		switch trial % 4 {
		case 0:
			v = New(Union(
				Pat(pattern.P(pattern.C(tuple.Atom("a")), pattern.W())),
				Pat(pattern.P(pattern.C(tuple.Int(1)), pattern.W(), pattern.W())),
			), Everything())
		case 1:
			v = New(Union(PatWhere(
				pattern.P(pattern.V("l"), pattern.V("x")),
				expr.Ge(expr.V("x"), expr.Const(tuple.Int(10))),
			)), Everything())
		case 2:
			v = New(Union(Dyn(0, func(_ dataspace.Reader, _ expr.Env, tp tuple.Tuple) bool {
				n, ok := tp.Field(tp.Arity() - 1).AsInt()
				return ok && n%2 == 0
			})), Everything())
		default:
			v = Universal()
		}
		for arity := 1; arity <= 3; arity++ {
			for _, scanLead := range append([]tuple.Value{{}}, leads...) {
				known := scanLead.IsValid()
				var got []tuple.ID
				s.Snapshot(func(r dataspace.Reader) {
					v.Window(r, nil).Scan(arity, scanLead, known, func(id tuple.ID, _ tuple.Tuple) bool {
						got = append(got, id)
						return true
					})
				})
				var want []tuple.ID
				s.Snapshot(func(r dataspace.Reader) {
					r.Each(func(inst dataspace.Instance) bool {
						if inst.Tuple.Arity() != arity {
							return true
						}
						if known && !inst.Tuple.Field(0).Equal(scanLead) {
							return true
						}
						if v.Import.Admits(r, nil, inst.Tuple) {
							want = append(want, inst.ID)
						}
						return true
					})
				})
				if len(got) != len(want) {
					t.Fatalf("trial %d arity %d lead %v: window %d ids, brute force %d",
						trial, arity, scanLead, len(got), len(want))
				}
				seen := map[tuple.ID]bool{}
				for _, id := range got {
					seen[id] = true
				}
				for _, id := range want {
					if !seen[id] {
						t.Fatalf("trial %d: window missed id %d", trial, id)
					}
				}
			}
		}
	}
}
