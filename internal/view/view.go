// Package view implements SDL's programmer-defined process views: the
// abstraction mechanism that replaces the dataspace with a window
//
//	W  = Import(p) ∩ D
//	D' = (D − W_r) ∪ (Export(p) ∩ W_a)
//
// A view has an import clause (the tuples the process may query and
// retract) and an export clause (the tuples it may assert). Clauses are
// sets of matchers: pattern matchers (tuples with constants, wildcards and
// process-parameter variables, optionally guarded by a predicate — the
// paper's `α: α ≤ 87 :: <year, α>` form) and dynamic matchers, arbitrary
// predicates that may consult the current dataspace configuration (used by
// the region-labeling Label process, whose import set depends on the
// threshold tuples currently present).
//
// Beyond abstraction, views bound the scope of transactions: when every
// import matcher for a given arity pins the leading field, window scans
// touch only those index buckets instead of the whole dataspace. That is
// the paper's pragmatic claim ("the view also provides bounds on the scope
// of the transactions which, in turn, reduce the transaction execution
// time"), reproduced by experiment E5.
package view

import (
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Matcher decides whether a clause admits a tuple, and exposes the index
// restriction it implies so windows can scan narrowly.
//
// Contract for bounded matchers: when Restriction reports bounded leads
// for every arity the matcher covers, the matcher's Admits decision may
// depend only on tuples whose leading field is one of those leads (its
// own candidates, and — for dataspace-dependent matchers — any tuples it
// consults through the reader). The consensus detector relies on this to
// invalidate cached imports by index bucket.
type Matcher interface {
	// Admits reports whether the tuple belongs to the clause under the
	// process environment (parameters and let-constants). r provides the
	// current configuration for dynamic matchers; it is never nil during
	// transaction evaluation.
	Admits(r dataspace.Reader, env expr.Env, t tuple.Tuple) bool
	// Restriction returns the matcher's scan restriction for tuples of the
	// given arity: the concrete leading values it can admit. It reports
	// (nil, false, true) when it admits no tuple of this arity,
	// (keys, true, true) when admitted tuples must carry one of the given
	// leading values, and (nil, _, false) when unbounded.
	Restriction(env expr.Env, arity int) (leads []tuple.Value, applies bool, bounded bool)
	// Arities returns the tuple arities the matcher can admit; all=true
	// means any arity (and the list is ignored).
	Arities() (list []int, all bool)
}

// PureMatcher marks matchers whose Admits decision depends only on the
// candidate tuple and the environment — never on the dataspace reader.
// Purity is what makes a restricted view plannable: window scans with
// statically planned leads touch only the planned buckets, and the
// admit/export filters cannot reach outside them. The marker method is
// unexported on purpose: purity is audited in this package, not asserted
// by callers.
type PureMatcher interface {
	Matcher
	pureMatcher()
}

// PatternMatcher admits tuples matching a pattern under an optional
// predicate over the pattern's variables and the process environment.
type PatternMatcher struct {
	Pattern pattern.Pattern
	Where   expr.Expr
}

// pureMatcher marks PatternMatcher pure: Admits ignores the reader.
func (PatternMatcher) pureMatcher() {}

// Pat builds a pattern matcher.
func Pat(p pattern.Pattern) PatternMatcher { return PatternMatcher{Pattern: p} }

// PatWhere builds a guarded pattern matcher.
func PatWhere(p pattern.Pattern, where expr.Expr) PatternMatcher {
	return PatternMatcher{Pattern: p, Where: where}
}

// Admits implements Matcher.
func (m PatternMatcher) Admits(_ dataspace.Reader, env expr.Env, t tuple.Tuple) bool {
	env2, ok := m.Pattern.MatchInto(t, env)
	if !ok {
		return false
	}
	res, err := expr.EvalBool(m.Where, env2)
	return err == nil && res
}

// Restriction implements Matcher.
func (m PatternMatcher) Restriction(env expr.Env, arity int) ([]tuple.Value, bool, bool) {
	if m.Pattern.Arity() != arity {
		return nil, false, true
	}
	lead, known := m.Pattern.Lead(env)
	if !known {
		return nil, true, false
	}
	return []tuple.Value{lead}, true, true
}

// Arities implements Matcher.
func (m PatternMatcher) Arities() ([]int, bool) {
	return []int{m.Pattern.Arity()}, false
}

// DynamicMatcher admits tuples via an arbitrary predicate with access to
// the current dataspace configuration. Arity restricts the matcher to
// tuples of one arity; zero means any arity. Dynamic matchers are
// unbounded: windows fall back to arity scans for them.
type DynamicMatcher struct {
	Arity int
	Fn    func(r dataspace.Reader, env expr.Env, t tuple.Tuple) bool
}

// Dyn builds a dynamic matcher for a fixed arity (0 = any).
func Dyn(arity int, fn func(r dataspace.Reader, env expr.Env, t tuple.Tuple) bool) DynamicMatcher {
	return DynamicMatcher{Arity: arity, Fn: fn}
}

// Admits implements Matcher.
func (m DynamicMatcher) Admits(r dataspace.Reader, env expr.Env, t tuple.Tuple) bool {
	if m.Arity != 0 && t.Arity() != m.Arity {
		return false
	}
	return m.Fn(r, env, t)
}

// Restriction implements Matcher.
func (m DynamicMatcher) Restriction(_ expr.Env, arity int) ([]tuple.Value, bool, bool) {
	if m.Arity != 0 && m.Arity != arity {
		return nil, false, true
	}
	return nil, true, false
}

// Arities implements Matcher.
func (m DynamicMatcher) Arities() ([]int, bool) {
	if m.Arity == 0 {
		return nil, true
	}
	return []int{m.Arity}, false
}

// Clause is one side of a view (import or export): a union of matchers, or
// the universal clause admitting everything.
type Clause struct {
	All      bool
	Matchers []Matcher
}

// Everything is the universal clause.
func Everything() Clause { return Clause{All: true} }

// Union builds a clause from matchers.
func Union(ms ...Matcher) Clause { return Clause{Matchers: ms} }

// Admits reports whether the clause admits t.
func (c Clause) Admits(r dataspace.Reader, env expr.Env, t tuple.Tuple) bool {
	if c.All {
		return true
	}
	for _, m := range c.Matchers {
		if m.Admits(r, env, t) {
			return true
		}
	}
	return false
}

// Pure reports whether every matcher of the clause is a PureMatcher (the
// universal clause is trivially pure). A pure clause's admit decisions
// never consult the dataspace, so they hold identically under any reader.
func (c Clause) Pure() bool {
	if c.All {
		return true
	}
	for _, m := range c.Matchers {
		if _, ok := m.(PureMatcher); !ok {
			return false
		}
	}
	return true
}

// restriction aggregates the matchers' restrictions for one arity:
// admitsAny=false means no matcher covers the arity at all; bounded=true
// means all covering matchers pin the lead, with leads the (deduplicated)
// union.
func (c Clause) restriction(env expr.Env, arity int) (leads []tuple.Value, admitsAny, bounded bool) {
	if c.All {
		return nil, true, false
	}
	bounded = true
	for _, m := range c.Matchers {
		ls, applies, b := m.Restriction(env, arity)
		if !applies {
			continue
		}
		admitsAny = true
		if !b {
			bounded = false
			continue
		}
		for _, l := range ls {
			dup := false
			for _, have := range leads {
				if have.Equal(l) {
					dup = true
					break
				}
			}
			if !dup {
				leads = append(leads, l)
			}
		}
	}
	if !admitsAny {
		return nil, false, true
	}
	return leads, true, bounded
}

// View pairs the import and export clauses of a process.
type View struct {
	Import Clause
	Export Clause
}

// Universal is the unrestricted view: the window is the whole dataspace.
// The paper omits view specifications in this case.
func Universal() View {
	return View{Import: Everything(), Export: Everything()}
}

// New builds a view from explicit clauses.
func New(imp, exp Clause) View { return View{Import: imp, Export: exp} }

// Plannable reports whether transactions under this view may be footprint-
// planned despite the restriction: both clauses are pure, so evaluating
// the transaction under locks covering only its own pattern and assertion
// buckets is sound — the import filter and the export check read nothing
// outside those buckets. Views with dynamic matchers (whose admit sets
// depend on the current configuration) are never plannable.
func (v View) Plannable() bool {
	return v.Import.Pure() && v.Export.Pure()
}

// Exports reports whether the process may assert t (the Export(p) ∩ W_a
// filter).
func (v View) Exports(r dataspace.Reader, env expr.Env, t tuple.Tuple) bool {
	return v.Export.Admits(r, env, t)
}

// Window returns the pattern.Source presenting Import(p) ∩ D over the given
// reader. The environment carries the process parameters referenced by the
// view's patterns.
func (v View) Window(r dataspace.Reader, env expr.Env) Window {
	return Window{r: r, v: v, env: env}
}

// Window is the transaction-time projection of the dataspace through a
// view's import clause. It implements pattern.Source.
type Window struct {
	r   dataspace.Reader
	v   View
	env expr.Env
}

// Scan implements pattern.Source, filtering by the import clause and using
// the clause's lead restrictions to avoid full-arity scans when possible.
func (w Window) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	imp := w.v.Import
	if imp.All {
		w.r.Scan(arity, lead, leadKnown, fn)
		return
	}
	filtered := func(id tuple.ID, t tuple.Tuple) bool {
		if !imp.Admits(w.r, w.env, t) {
			return true
		}
		return fn(id, t)
	}
	if leadKnown {
		w.r.Scan(arity, lead, true, filtered)
		return
	}
	leads, admitsAny, bounded := imp.restriction(w.env, arity)
	switch {
	case !admitsAny:
		return // the view imports nothing of this arity
	case bounded:
		for _, l := range leads {
			w.r.Scan(arity, l, true, filtered)
		}
	default:
		w.r.Scan(arity, tuple.Value{}, false, filtered)
	}
}

// ScanFields implements pattern.FieldSource, forwarding the secondary
// field-index access path through the import filter. A bounded restriction
// already narrows the scan to concrete lead buckets — cheaper than any
// field index — so only the unbounded cases forward to the underlying
// reader's ScanFields (when it has one; plain sources fall back to the
// arity scan Scan performs).
func (w Window) ScanFields(arity int, sels []pattern.FieldSel, fn func(tuple.ID, tuple.Tuple) bool) {
	imp := w.v.Import
	if imp.All {
		if fs, ok := w.r.(pattern.FieldSource); ok {
			fs.ScanFields(arity, sels, fn)
			return
		}
		w.r.Scan(arity, tuple.Value{}, false, fn)
		return
	}
	filtered := func(id tuple.ID, t tuple.Tuple) bool {
		if !imp.Admits(w.r, w.env, t) {
			return true
		}
		return fn(id, t)
	}
	leads, admitsAny, bounded := imp.restriction(w.env, arity)
	switch {
	case !admitsAny:
		return // the view imports nothing of this arity
	case bounded:
		for _, l := range leads {
			w.r.Scan(arity, l, true, filtered)
		}
	default:
		if fs, ok := w.r.(pattern.FieldSource); ok {
			fs.ScanFields(arity, sels, filtered)
			return
		}
		w.r.Scan(arity, tuple.Value{}, false, filtered)
	}
}

// JoinEstimator implements pattern.EstimatorProvider, exposing the
// underlying reader's cardinalities to the join planner. For restricted
// views the estimates ignore the import filter — a uniform overestimate
// that still orders patterns usefully.
func (w Window) JoinEstimator() pattern.Estimator {
	if p, ok := w.r.(pattern.EstimatorProvider); ok {
		return p.JoinEstimator()
	}
	if e, ok := w.r.(pattern.Estimator); ok {
		return e
	}
	return nil
}

// Get exposes the underlying reader's Get so callers holding a window can
// re-inspect matched instances.
func (w Window) Get(id tuple.ID) (dataspace.Instance, bool) { return w.r.Get(id) }

// Admits reports whether the window contains the tuple (import check for a
// specific instance; used by retraction validation).
func (w Window) Admits(t tuple.Tuple) bool {
	return w.v.Import.Admits(w.r, w.env, t)
}

// Reader returns the underlying dataspace reader.
func (w Window) Reader() dataspace.Reader { return w.r }

// Materialize returns the IDs of every tuple in Import(p) ∩ D. Consensus-set
// computation uses this to evaluate the import-overlap relation
// `p needs q ≡ Import(p) ∩ Import(q) ∩ D ≠ ∅`.
//
// It goes through the window's bucket-aware Scan, so a view whose matchers
// pin their leading fields materializes in time proportional to its own
// import, not to |D| — the property that keeps consensus detection cheap
// for community-model programs.
func Materialize(v View, r dataspace.Reader, env expr.Env) map[tuple.ID]struct{} {
	out := make(map[tuple.ID]struct{})
	w := v.Window(r, env)
	for _, arity := range r.Arities() {
		w.Scan(arity, tuple.Value{}, false, func(id tuple.ID, _ tuple.Tuple) bool {
			out[id] = struct{}{}
			return true
		})
	}
	return out
}

// BucketKey identifies one index bucket: an arity plus the canonical form
// of a leading value. Keys from MaterializeKeyed and from commit records
// compare with ==.
type BucketKey struct {
	Arity int
	Lead  tuple.Value
}

// CanonBucket canonicalizes a bucket key so that leads that are Equal
// (Int(2) vs Float(2.0)) produce identical keys.
func CanonBucket(arity int, lead tuple.Value) BucketKey {
	if n, ok := lead.Numeric(); ok {
		return BucketKey{Arity: arity, Lead: tuple.Float(n)}
	}
	return BucketKey{Arity: arity, Lead: lead}
}

// MaterializeKeyed is Materialize plus the provenance the consensus
// detector needs for caching: the exact index buckets the import covers
// (including currently empty ones) and whether the import is bounded to
// those buckets. An unbounded import (universal clause, lead-free pattern,
// or any-arity dynamic matcher) returns bounded=false with nil keys, and
// its materialization must be recomputed after every commit.
func MaterializeKeyed(v View, r dataspace.Reader, env expr.Env) (ids map[tuple.ID]struct{}, keys map[BucketKey]struct{}, bounded bool) {
	ids = make(map[tuple.ID]struct{})
	imp := v.Import
	if imp.All {
		r.Each(func(inst dataspace.Instance) bool {
			ids[inst.ID] = struct{}{}
			return true
		})
		return ids, nil, false
	}

	// The arity set the clause covers: the union of the matchers' declared
	// arities (not just the arities currently present — empty buckets must
	// still produce invalidation keys).
	aritySet := make(map[int]struct{})
	anyArity := false
	for _, m := range imp.Matchers {
		list, all := m.Arities()
		if all {
			anyArity = true
			break
		}
		for _, a := range list {
			aritySet[a] = struct{}{}
		}
	}
	if anyArity {
		for _, a := range r.Arities() {
			aritySet[a] = struct{}{}
		}
	}

	keys = make(map[BucketKey]struct{})
	bounded = !anyArity
	w := v.Window(r, env)
	collect := func(id tuple.ID, _ tuple.Tuple) bool {
		ids[id] = struct{}{}
		return true
	}
	for arity := range aritySet {
		leads, admitsAny, b := imp.restriction(env, arity)
		if !admitsAny {
			continue
		}
		if !b {
			bounded = false
			w.Scan(arity, tuple.Value{}, false, collect)
			continue
		}
		for _, l := range leads {
			keys[CanonBucket(arity, l)] = struct{}{}
			w.Scan(arity, l, true, collect)
		}
	}
	if !bounded {
		keys = nil
	}
	return ids, keys, bounded
}

// Compile-time interface checks.
var (
	_ Matcher        = PatternMatcher{}
	_ Matcher        = DynamicMatcher{}
	_ pattern.Source = Window{}
)
