package txn

import "flag"

// randSeed lets a CI sweep vary the stress-test RNG without giving up
// reproducibility: the default (-1) keeps the fixed per-worker seeds, and
// any failure under `go test -randseed=N` reruns identically with the
// same N.
var randSeed = flag.Int64("randseed", -1, "override the fixed stress-test seeds (-1 = keep the defaults)")

// testSeed returns the test's fixed default seed, or one derived from
// -randseed when the override is set (offset by the default so distinct
// workers still draw distinct streams).
func testSeed(def int64) int64 {
	if *randSeed >= 0 {
		return *randSeed + def
	}
	return def
}
