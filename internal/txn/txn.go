// Package txn implements SDL's atomic transactions over a dataspace viewed
// through a process window.
//
// A transaction consists of a query (binding query + test query, under an
// ∃ or ∀ quantifier), the retractions implied by the query's retract tags,
// and a list of assertion patterns grounded under the solution environment.
// All four sub-actions — query evaluation, retraction, assertion, and the
// caller's local actions — appear as a single atomic transformation of the
// dataspace: transactions are serializable.
//
// Operational types:
//
//   - Immediate ('→'): evaluated once; either succeeds or fails with no
//     effect (Engine.Immediate).
//   - Delayed ('⇒'): blocks the issuing process until a successful
//     evaluation is possible (Engine.Delayed). Weak fairness: a transaction
//     that remains enabled is eventually executed.
//   - Consensus ('⇑') is built on top of this package by
//     internal/consensus.
//
// Two concurrency-control modes are provided (experiment E9 compares
// them): Coarse evaluates every transaction under the store's write lock;
// Optimistic evaluates the query under a read lock first and re-validates
// the dataspace version at commit time, falling back to an under-lock
// re-evaluation when a concurrent commit intervened.
package txn

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/view"
)

// Mode selects the engine's concurrency-control strategy.
type Mode uint8

// Concurrency-control modes.
const (
	// Coarse serializes all transactions behind the store's write lock:
	// the reference semantics, trivially serializable.
	Coarse Mode = iota + 1
	// Optimistic evaluates queries under a read lock against a version
	// snapshot and validates at commit; concurrent read-phase evaluation
	// proceeds in parallel.
	Optimistic
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Coarse:
		return "coarse"
	case Optimistic:
		return "optimistic"
	default:
		return "invalid"
	}
}

// ExportPolicy controls what happens when a transaction asserts a tuple
// outside the process's export set.
type ExportPolicy uint8

// Export policies.
const (
	// ExportDrop silently drops disallowed assertions — the formal
	// semantics D' = (D − W_r) ∪ (Export(p) ∩ W_a).
	ExportDrop ExportPolicy = iota
	// ExportError fails the transaction instead; a debugging aid.
	ExportError
)

// ErrExportViolation reports an assertion outside the export set under
// ExportError policy.
var ErrExportViolation = errors.New("txn: assertion outside export set")

// errFailed is the internal sentinel that rolls back a failed evaluation.
var errFailed = errors.New("txn: query failed")

// Request describes one transaction issued by a process.
type Request struct {
	// Proc is the issuing process (owner of asserted tuples).
	Proc tuple.ProcessID
	// View is the issuing process's view; use view.Universal() when the
	// process does not restrict it.
	View view.View
	// Env carries the process parameters and let-constants visible to the
	// query and the assertion patterns.
	Env expr.Env
	// Query is the transaction's query.
	Query pattern.Query
	// Asserts are the tuples added on success, grounded under each
	// solution's environment.
	Asserts []pattern.Pattern
	// Export selects the policy for assertions outside the export set.
	Export ExportPolicy
	// Footprint is the compiler's static classification of the
	// transaction's footprint (footprint.Unknown when no classifier ran).
	// Wildcard short-circuits dynamic footprint planning — the plan would
	// certainly fail; Ground and Unknown leave the dynamic planner, which
	// stays authoritative, to decide. GroundKeys additionally promises
	// that StaticKeys is the exact key set.
	Footprint footprint.Class
	// StaticKeys is the statically computed footprint key set attached by
	// the compiler's interprocedural refiner, valid only with
	// Footprint == footprint.GroundKeys. Every key is environment-
	// independent (folded from literals and closed lets), so the engine
	// uses it directly instead of re-evaluating pattern leads per
	// execution. The set must cover every bucket the transaction scans,
	// retracts from, or asserts into; hand-built requests should leave it
	// nil and let the dynamic planner decide.
	StaticKeys []dataspace.InterestKey
}

// Result reports a transaction's outcome.
type Result struct {
	// OK is true when the transaction committed.
	OK bool
	// Env is the solution environment of an ∃ transaction (the request Env
	// extended with the query's bindings); for ∀ it is the request Env.
	Env expr.Env
	// Solutions holds every solution environment of a ∀ transaction (one
	// entry, equal to Env, for ∃).
	Solutions []expr.Env
	// Retracted and Asserted list the tuple instances removed/added.
	Retracted []dataspace.Instance
	Asserted  []dataspace.Instance
}

// Stats counts engine activity.
type Stats struct {
	Attempts  uint64 // evaluation attempts (incl. retries and re-checks)
	Commits   uint64 // successful transactions
	Failures  uint64 // failed immediate evaluations
	Conflicts uint64 // optimistic validations that found a newer version
	Wakeups   uint64 // delayed-transaction wakeups
}

// Engine executes transactions against a store.
type Engine struct {
	store *dataspace.Store
	mode  Mode
	m     *metrics.Registry // the store's registry, cached
	sc    *sched.Controller // the store's exploration controller (usually nil)

	attempts  atomic.Uint64
	commits   atomic.Uint64
	failures  atomic.Uint64
	conflicts atomic.Uint64
	wakeups   atomic.Uint64
}

// New returns an engine over the store using the given mode.
func New(store *dataspace.Store, mode Mode) *Engine {
	if mode != Coarse && mode != Optimistic {
		mode = Coarse
	}
	return &Engine{store: store, mode: mode, m: store.Metrics(), sc: store.Sched()}
}

// Store returns the engine's dataspace.
func (e *Engine) Store() *dataspace.Store { return e.store }

// Metrics returns the store's metrics registry.
func (e *Engine) Metrics() *metrics.Registry { return e.m }

// Mode returns the engine's concurrency-control mode.
func (e *Engine) Mode() Mode { return e.mode }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Attempts:  e.attempts.Load(),
		Commits:   e.commits.Load(),
		Failures:  e.failures.Load(),
		Conflicts: e.conflicts.Load(),
		Wakeups:   e.wakeups.Load(),
	}
}

// Immediate executes req as an immediate ('→') transaction: one atomic
// evaluation that either commits or has no effect. res.OK reports whether
// the query succeeded; err reports evaluation errors (malformed queries,
// export violations under ExportError).
func (e *Engine) Immediate(req Request) (Result, error) {
	return e.exec(req, metrics.TxnImmediate)
}

// exec runs one evaluation of req under the engine's mode, recording the
// per-kind metrics: one attempt per exec, one commit on success, and —
// when an observer is attached — the end-to-end latency. The registry's
// attempts therefore count executions; extra under-lock re-evaluations
// inside one exec are counted as retries, so per kind
// latency-histogram count == attempts ≥ commits.
func (e *Engine) exec(req Request, kind metrics.TxnKind) (Result, error) {
	e.sc.Yield(sched.PointTxnExec)
	e.m.IncTxnAttempt(kind)
	observed := e.m.Observed()
	var start time.Time
	if observed {
		start = time.Now()
	}
	var (
		res Result
		err error
	)
	switch e.mode {
	case Optimistic:
		res, err = e.immediateOptimistic(req, kind)
	default:
		res, err = e.immediateCoarse(req)
	}
	if observed {
		e.m.ObserveTxnLatency(kind, time.Since(start))
	}
	if err == nil && res.OK {
		e.m.IncTxnCommit(kind)
	}
	return res, err
}

// footprintKeys statically plans the set of index buckets req can scan,
// retract from, or assert into. When the plan is exact (ok=true), the
// store needs to lock only the shards owning those buckets
// (UpdateKeys/SnapshotKeys) — transactions with disjoint footprints then
// commit in parallel.
//
// The plan is sound because pattern matching never rebinds a variable
// already bound in req.Env (MatchInto treats bound variables as equality
// tests), so a lead determined under req.Env keeps that value under every
// solution environment: every bucket the join, the negation checks, or the
// assertion grounding can touch is in the plan. The plan is abandoned
// (ok=false) when any lead of arity > 0 is undetermined under req.Env.
//
// A non-universal view normally forces the full-store lock — a restricted
// import may consult arbitrary buckets (dynamic matchers). The exception
// is a compiler-refined footprint (Ground or GroundKeys) under a plannable
// view: every matcher is pure, so the import filter and the export check
// decide on the candidate tuple alone, window scans with planned leads
// touch only planned buckets, and the per-pattern plan above covers
// everything the evaluation can read or write. That combination restores
// the key-latch/group-commit path to view-restricted processes.
//
// Secondary field indexes never narrow this plan: a pattern with an
// unknown lead stays unplanned even when constant non-lead fields give the
// matcher an indexed access path, because the field index serves a
// (possibly stale-shape) subset of the arity scan's buckets across every
// shard — the footprint must still cover any shard a tuple of that arity
// can live in. The index changes which tuples a scan visits inside the
// locked footprint, not which shards the footprint locks.
func footprintKeys(req Request) ([]dataspace.InterestKey, bool) {
	if !req.View.Import.All || !req.View.Export.All {
		if req.Footprint != footprint.Ground && req.Footprint != footprint.GroundKeys {
			return nil, false
		}
		if !req.View.Plannable() {
			return nil, false
		}
	}
	if req.Footprint == footprint.Wildcard {
		// The compiler proved a lead undetermined under the issuing
		// environment; per-pattern planning below would reach the same
		// conclusion the slow way.
		return nil, false
	}
	if req.Footprint == footprint.GroundKeys && len(req.StaticKeys) > 0 {
		// The refiner folded every lead to an environment-independent
		// constant and attached the exact key set; skip per-pattern lead
		// evaluation entirely.
		return req.StaticKeys, true
	}
	keys := make([]dataspace.InterestKey, 0, len(req.Query.Patterns)+len(req.Asserts))
	add := func(p pattern.Pattern) bool {
		a := p.Arity()
		if a == 0 {
			keys = append(keys, dataspace.InterestKey{Arity: 0})
			return true
		}
		lead, known := p.Lead(req.Env)
		if !known {
			return false
		}
		keys = append(keys, dataspace.InterestKey{Arity: a, Lead: lead, LeadKnown: true})
		return true
	}
	for _, p := range req.Query.Patterns {
		if !add(p) {
			return nil, false
		}
	}
	for _, ap := range req.Asserts {
		if !add(ap) {
			return nil, false
		}
	}
	return keys, true
}

// planKeys runs the footprint planner and records the admission: one
// counter bump per execution, keyed by the request's static class and by
// whether the plan succeeded (planned executions are the commuting fast
// path's intake; unplanned ones serialize on the full-store lock).
func (e *Engine) planKeys(req Request) ([]dataspace.InterestKey, bool) {
	keys, planned := footprintKeys(req)
	e.m.IncFootprintAdmission(uint8(req.Footprint), planned)
	return keys, planned
}

// update runs fn under the narrowest sound lock: the commutativity-aware
// key-level path when the footprint plan is exact (per-bucket latches plus
// group commit, falling back to shard locks for plans the lock table cannot
// latch), the whole store otherwise.
func (e *Engine) update(req Request, keys []dataspace.InterestKey, planned bool, fn func(w dataspace.Writer) error) error {
	if planned {
		return e.store.UpdateCommuting(req.Proc, keys, fn)
	}
	return e.store.Update(req.Proc, fn)
}

func (e *Engine) immediateCoarse(req Request) (Result, error) {
	var res Result
	e.attempts.Add(1)
	keys, planned := e.planKeys(req)
	err := e.update(req, keys, planned, func(w dataspace.Writer) error {
		r, err := e.evalAndApply(w, req)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	switch {
	case errors.Is(err, errFailed):
		e.failures.Add(1)
		return Result{Env: req.Env}, nil
	case err != nil:
		return Result{}, err
	default:
		e.commits.Add(1)
		return res, nil
	}
}

// immediateOptimistic evaluates the query against a read snapshot. Three
// outcomes:
//
//   - The transaction is read-only (no retract tags matched, nothing to
//     assert): the snapshot answer is final — a read-only transaction
//     serializes at its snapshot point — and no write lock is taken at
//     all. This is the mode's payoff on read-mostly workloads.
//   - The transaction mutates and the version is unchanged under the
//     write lock: the snapshot's solutions are applied directly, without
//     re-evaluating the query.
//   - A concurrent commit intervened: re-evaluate under the lock
//     (degenerating to coarse for this attempt) and count a conflict.
//
// Validation compares the store's global version, which any shard's commit
// bumps. Under a sharded store this is conservative: a commit on shards
// disjoint from the footprint triggers a spurious re-evaluation (never an
// incorrect commit) — the retry runs under the footprint's shard locks and
// observes exactly the configuration it validates against.
func (e *Engine) immediateOptimistic(req Request, kind metrics.TxnKind) (Result, error) {
	var (
		snapVersion uint64
		sols        []pattern.Binding
		evalErr     error
	)
	e.attempts.Add(1)
	// Forced-retry fault: treat this evaluation's validation as failed even
	// when the version matches, driving the under-lock re-evaluation path a
	// wall-clock schedule rarely reaches. Drawn before the snapshot so the
	// decision stream is independent of evaluation timing.
	forced := e.sc.ForceRetry()
	keys, planned := e.planKeys(req)
	eval := func(r dataspace.Reader) {
		snapVersion = r.Version()
		win := req.View.Window(r, req.Env)
		switch req.Query.Quant {
		case pattern.ForAll:
			sols, evalErr = pattern.SolveAll(req.Query, win, req.Env)
		default:
			b, found, err := pattern.Solve(req.Query, win, req.Env)
			if err != nil {
				evalErr = err
			} else if found {
				sols = []pattern.Binding{b}
			}
		}
	}

	if planned && !forced && len(req.Asserts) == 0 && retractFree(req.Query) {
		// Epoch read path: a statically read-only planned transaction
		// evaluates lock-free against epoch snapshots. A valid read (no
		// footprint shard changed during evaluation) is final — success and
		// failure alike serialize at the validation point, and commits on
		// shards outside the footprint cannot affect the answer. A torn
		// read is discarded and the transaction retries on the locked path.
		if e.store.SnapshotKeysEpoch(keys, eval) {
			if evalErr != nil {
				return Result{}, evalErr
			}
			if len(sols) == 0 {
				e.failures.Add(1)
				return Result{Env: req.Env}, nil
			}
			e.commits.Add(1)
			res := Result{OK: true, Env: req.Env}
			for _, sol := range sols {
				res.Solutions = append(res.Solutions, sol.Env)
			}
			if req.Query.Quant == pattern.Exists {
				res.Env = sols[0].Env
			}
			return res, nil
		}
		sols, evalErr = nil, nil
	}

	snapshot := e.store.Snapshot
	if planned {
		snapshot = func(fn func(r dataspace.Reader)) { e.store.SnapshotKeys(keys, fn) }
	}
	snapshot(eval)
	if evalErr != nil {
		return Result{}, evalErr
	}

	if len(sols) == 0 {
		// A definitive failure only if nothing changed since the snapshot;
		// otherwise re-check under the lock.
		if !forced && e.store.Version() == snapVersion {
			e.failures.Add(1)
			return Result{Env: req.Env}, nil
		}
		e.conflicts.Add(1)
		e.m.IncTxnRetry(kind)
		return e.lockedRetry(req, keys, planned)
	}

	if !forced && len(req.Asserts) == 0 && !anyRetracts(sols) {
		// Read-only fast path: commit-free.
		e.commits.Add(1)
		res := Result{OK: true, Env: req.Env}
		for _, sol := range sols {
			res.Solutions = append(res.Solutions, sol.Env)
		}
		if req.Query.Quant == pattern.Exists {
			res.Env = sols[0].Env
		}
		return res, nil
	}

	var res Result
	err := e.update(req, keys, planned, func(w dataspace.Writer) error {
		if forced || w.Version() != snapVersion {
			// Conflict: the snapshot's solutions may be stale; re-evaluate
			// in place.
			e.conflicts.Add(1)
			e.attempts.Add(1)
			e.m.IncTxnRetry(kind)
			r, err := e.evalAndApply(w, req)
			if err != nil {
				return err
			}
			res = r
			return nil
		}
		// Unchanged: the snapshot solutions are still exact.
		r, err := e.apply(w, req, sols)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	switch {
	case errors.Is(err, errFailed):
		e.failures.Add(1)
		return Result{Env: req.Env}, nil
	case err != nil:
		return Result{}, err
	default:
		e.commits.Add(1)
		return res, nil
	}
}

// lockedRetry re-evaluates a transaction under the write lock (of its
// planned shard set, when exact) after a snapshot-phase miss raced with a
// commit.
func (e *Engine) lockedRetry(req Request, keys []dataspace.InterestKey, planned bool) (Result, error) {
	var res Result
	e.sc.Yield(sched.PointTxnRetry)
	e.attempts.Add(1)
	err := e.update(req, keys, planned, func(w dataspace.Writer) error {
		r, err := e.evalAndApply(w, req)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	switch {
	case errors.Is(err, errFailed):
		e.failures.Add(1)
		return Result{Env: req.Env}, nil
	case err != nil:
		return Result{}, err
	default:
		e.commits.Add(1)
		return res, nil
	}
}

// retractFree reports whether the query is statically retract-free: no
// pattern carries a retract tag, so no solution can imply a deletion and a
// successful evaluation needs no write lock at all.
func retractFree(q pattern.Query) bool {
	for _, p := range q.Patterns {
		if p.Retract {
			return false
		}
	}
	return true
}

func anyRetracts(sols []pattern.Binding) bool {
	for _, sol := range sols {
		for _, m := range sol.Matched {
			if m.Retract {
				return true
			}
		}
	}
	return false
}

// evalAndApply evaluates the query against the window over w and applies
// retractions and assertions. It returns errFailed when the query has no
// solution.
func (e *Engine) evalAndApply(w dataspace.Writer, req Request) (Result, error) {
	win := req.View.Window(w, req.Env)
	var sols []pattern.Binding
	switch req.Query.Quant {
	case pattern.ForAll:
		all, err := pattern.SolveAll(req.Query, win, req.Env)
		if err != nil {
			return Result{}, err
		}
		sols = all
	default:
		b, found, err := pattern.Solve(req.Query, win, req.Env)
		if err != nil {
			return Result{}, err
		}
		if found {
			sols = []pattern.Binding{b}
		}
	}
	if len(sols) == 0 {
		return Result{}, errFailed
	}
	return e.apply(w, req, sols)
}

// apply performs the composite effect of the solutions: all retractions
// (deduplicated by instance), then all assertions, as the paper specifies
// for composite transactions.
func (e *Engine) apply(w dataspace.Writer, req Request, sols []pattern.Binding) (Result, error) {
	res := Result{OK: true, Env: req.Env}
	seen := make(map[tuple.ID]struct{})
	for _, sol := range sols {
		res.Solutions = append(res.Solutions, sol.Env)
		for _, m := range sol.Matched {
			if !m.Retract {
				continue
			}
			if _, dup := seen[m.ID]; dup {
				continue
			}
			seen[m.ID] = struct{}{}
			inst, ok := w.Get(m.ID)
			if !ok {
				// The instance vanished between evaluation and application;
				// cannot happen under the write lock.
				return Result{}, dataspace.ErrNoSuchTuple
			}
			if err := w.Delete(m.ID); err != nil {
				return Result{}, err
			}
			res.Retracted = append(res.Retracted, inst)
		}
	}
	for _, sol := range sols {
		for _, ap := range req.Asserts {
			t, err := ap.Ground(sol.Env)
			if err != nil {
				return Result{}, err
			}
			if !req.View.Exports(w, sol.Env, t) {
				if req.Export == ExportError {
					return Result{}, ErrExportViolation
				}
				continue // Export(p) ∩ W_a: drop silently
			}
			id := w.Insert(t, req.Proc)
			res.Asserted = append(res.Asserted, dataspace.Instance{ID: id, Tuple: t, Owner: req.Proc})
		}
	}
	if req.Query.Quant == pattern.Exists {
		res.Env = sols[0].Env
	}
	return res, nil
}

// interestKeys derives the wakeup subscription for a blocked request: one
// key per pattern (positive and negated), with the lead pinned when it is
// determined by the request environment alone.
func interestKeys(req Request) []dataspace.InterestKey {
	keys := make([]dataspace.InterestKey, 0, len(req.Query.Patterns))
	for _, p := range req.Query.Patterns {
		lead, known := p.Lead(req.Env)
		keys = append(keys, dataspace.InterestOf(p.Arity(), lead, known))
	}
	return keys
}

// deltaSafe reports whether a blocked req's guard may be re-evaluated
// lazily, waking only when a commit asserts a tuple that matches one of
// its patterns standalone. The class is deliberately conservative — every
// exclusion falls back to the sound wake-on-any-covering-commit behavior:
//
//   - Wildcard footprints scan arbitrary buckets; the interest keys do
//     not cover them.
//   - Restricted views with impure (configuration-dependent) matchers can
//     change an OLD tuple's window membership on an unrelated commit;
//     universal and pure-matcher (Plannable) views cannot.
//   - Retract-tagged and negated patterns let retractions flip the guard
//     from unsatisfiable to satisfiable; only assertions are delta-checked.
//   - A pattern whose lead is not determined by the request environment,
//     or with an expression field that is not closed under it, cannot be
//     matched standalone against a candidate tuple (MatchInto would
//     wrongly reject tuples whose match depends on earlier join bindings).
//
// For the surviving class — pure-positive, lead-known, standalone-
// matchable patterns under a stable window — an unsatisfiable query
// becomes satisfiable only when a NEW tuple matching some pattern is
// asserted, so filtering deltas to standalone pattern matches (ignoring
// guards and the test query: an over-approximation that may overfire but
// never suppresses a needed wakeup) is sound under both quantifiers.
func deltaSafe(req Request) bool {
	if req.Footprint == footprint.Wildcard {
		return false
	}
	if !req.View.Import.All && !req.View.Plannable() {
		return false
	}
	for _, p := range req.Query.Patterns {
		if p.Negated || p.Retract {
			return false
		}
		if p.Arity() > 0 {
			if _, known := p.Lead(req.Env); !known {
				return false
			}
		}
		for _, f := range p.Fields {
			if f.Kind == pattern.FieldExpr {
				if _, err := f.Expr.Eval(req.Env); err != nil {
					return false
				}
			}
		}
	}
	return true
}

// deltaFilter compiles req's guard into the publisher-side subscription
// filter: accept exactly the asserted tuples that match one of the query's
// patterns standalone under the request environment. It returns nil when
// the guard is not delta-safe — the subscription then treats every
// covering commit as requiring a full re-query.
func deltaFilter(req Request) func(dataspace.Delta) bool {
	if !deltaSafe(req) {
		return nil
	}
	return func(d dataspace.Delta) bool {
		if !d.Asserted {
			return false
		}
		for _, p := range req.Query.Patterns {
			if _, ok := p.MatchInto(d.Inst.Tuple, req.Env); ok {
				return true
			}
		}
		return false
	}
}

// Delayed executes req as a delayed ('⇒') transaction: it blocks until a
// successful evaluation is possible or ctx is cancelled. The register-then-
// evaluate protocol guarantees no lost wakeups.
//
// With the store's reactive path enabled, the blocked guard registers one
// delta subscription for the whole wait: commits publish their asserted/
// retracted tuples through the publisher-side filter, irrelevant commits
// are suppressed before any wakeup, and the commits of one group-commit
// drain batch into a single re-evaluation. With it disabled (the E16
// ablation), every covering commit wakes the waiter for a full re-query
// through a fresh one-shot Wait registration.
func (e *Engine) Delayed(ctx context.Context, req Request) (Result, error) {
	keys := interestKeys(req)
	if !e.store.Reactive() {
		for {
			ch, cancel := e.store.Wait(keys)
			res, err := e.exec(req, metrics.TxnDelayed)
			if err != nil {
				cancel()
				return Result{}, err
			}
			if res.OK {
				cancel()
				return res, nil
			}
			e.m.IncTxnBlock(metrics.TxnDelayed)
			select {
			case <-ch:
				e.wakeups.Add(1)
				cancel()
				e.sc.Yield(sched.PointTxnWakeup)
			case <-ctx.Done():
				cancel()
				return Result{}, ctx.Err()
			}
		}
	}

	filter := deltaFilter(req)
	sub := e.store.Subscribe(keys, filter)
	defer sub.Cancel()
	for {
		res, err := e.exec(req, metrics.TxnDelayed)
		if err != nil {
			return Result{}, err
		}
		if res.OK {
			return res, nil
		}
		e.m.IncTxnBlock(metrics.TxnDelayed)
		select {
		case <-sub.Ready():
			e.wakeups.Add(1)
			e.sc.Yield(sched.PointTxnWakeup)
			deltas, full := sub.Drain()
			e.m.IncReactiveEval()
			if filter != nil && !full && len(deltas) > 0 {
				e.m.IncReactiveHit()
			} else {
				e.m.IncReactiveFallback()
			}
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
}
