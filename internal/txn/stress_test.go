package txn

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/view"
)

// Bank stress: random concurrent transfers between account tuples must
// preserve the total balance under both concurrency-control modes, never
// produce a negative balance (the guard forbids overdrafts), and the
// final state must equal the commit-log replay — a strong serializability
// and atomicity check.
func TestBankTransferStress(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		const (
			accounts = 8
			workers  = 6
			transfer = 60
			initial  = 100
		)
		s := dataspace.New()
		// The recorder-equivalent: track the log through commit hooks.
		type logEntry struct {
			inserted, deleted []dataspace.Instance
		}
		var logMu sync.Mutex
		var log []logEntry
		s.OnCommit(func(rec dataspace.CommitRecord) {
			logMu.Lock()
			log = append(log, logEntry{inserted: rec.Inserted, deleted: rec.Deleted})
			logMu.Unlock()
		})
		acct := tuple.Atom("acct")
		for i := 0; i < accounts; i++ {
			s.Assert(tuple.Environment, tuple.New(acct, tuple.Int(int64(i)), tuple.Int(initial)))
		}
		e := New(s, mode)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(testSeed(int64(w))))
				for i := 0; i < transfer; i++ {
					from := rng.Int63n(accounts)
					to := rng.Int63n(accounts)
					if from == to {
						continue
					}
					amt := 1 + rng.Int63n(5)
					// Atomic guarded transfer: fails (no effect) when the
					// source balance is insufficient.
					res, err := e.Delayed(context.Background(), Request{
						Proc: tuple.ProcessID(w + 1),
						View: view.Universal(),
						Query: pattern.Q(
							pattern.R(pattern.C(acct), pattern.C(tuple.Int(from)), pattern.V("x")).
								Guarded(expr.Ge(expr.V("x"), expr.Const(tuple.Int(amt)))),
							pattern.R(pattern.C(acct), pattern.C(tuple.Int(to)), pattern.V("y")),
						),
						Asserts: []pattern.Pattern{
							pattern.P(pattern.C(acct), pattern.C(tuple.Int(from)),
								pattern.E(expr.Sub(expr.V("x"), expr.Const(tuple.Int(amt))))),
							pattern.P(pattern.C(acct), pattern.C(tuple.Int(to)),
								pattern.E(expr.Add(expr.V("y"), expr.Const(tuple.Int(amt))))),
						},
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
					if !res.OK {
						t.Error("delayed transfer reported failure")
						return
					}
				}
			}(w)
		}
		wg.Wait()

		// Invariant 1: conservation and non-negativity.
		var total int64
		balances := map[int64]int64{}
		s.Snapshot(func(r dataspace.Reader) {
			r.Each(func(inst dataspace.Instance) bool {
				id, _ := inst.Tuple.Field(1).AsInt()
				v, _ := inst.Tuple.Field(2).AsInt()
				balances[id] = v
				total += v
				return true
			})
		})
		if total != accounts*initial {
			t.Errorf("total = %d, want %d", total, accounts*initial)
		}
		if len(balances) != accounts {
			t.Errorf("accounts = %d", len(balances))
		}
		for id, v := range balances {
			if v < 0 {
				t.Errorf("account %d overdrawn: %d", id, v)
			}
		}

		// Invariant 2: replaying the commit log reproduces the final state
		// exactly (every commit was atomic and fully recorded).
		replay := map[tuple.ID]tuple.Tuple{}
		logMu.Lock()
		for _, entry := range log {
			for _, del := range entry.deleted {
				delete(replay, del.ID)
			}
			for _, ins := range entry.inserted {
				replay[ins.ID] = ins.Tuple
			}
		}
		logMu.Unlock()
		if len(replay) != s.Len() {
			t.Fatalf("replay has %d instances, store %d", len(replay), s.Len())
		}
		s.Snapshot(func(r dataspace.Reader) {
			r.Each(func(inst dataspace.Instance) bool {
				if got, ok := replay[inst.ID]; !ok || !got.Equal(inst.Tuple) {
					t.Errorf("replay mismatch at %d: %v vs %v", inst.ID, got, inst.Tuple)
				}
				return true
			})
		})
	})
}

// Random mixed workload: asserts, guarded retracts, and reads race; the
// store's Len must equal asserts minus retracts observed through results.
func TestMixedWorkloadAccounting(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		e := New(s, mode)
		const workers = 4
		const ops = 150
		var inserted, removed int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(testSeed(int64(100 + w))))
				for i := 0; i < ops; i++ {
					switch rng.Intn(3) {
					case 0: // assert
						res, err := e.Immediate(Request{
							Proc:  tuple.ProcessID(w + 1),
							View:  view.Universal(),
							Query: pattern.Query{Quant: pattern.Exists},
							Asserts: []pattern.Pattern{pattern.P(
								pattern.C(tuple.Atom("item")), pattern.C(tuple.Int(rng.Int63n(50))))},
						})
						if err != nil || !res.OK {
							t.Errorf("assert: %v %v", res.OK, err)
							return
						}
						mu.Lock()
						inserted++
						mu.Unlock()
					case 1: // retract one, if any
						res, err := e.Immediate(Request{
							Proc:  tuple.ProcessID(w + 1),
							View:  view.Universal(),
							Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("item")), pattern.W())),
						})
						if err != nil {
							t.Errorf("retract: %v", err)
							return
						}
						if res.OK {
							mu.Lock()
							removed++
							mu.Unlock()
						}
					default: // read
						if _, err := e.Immediate(Request{
							Proc:  tuple.ProcessID(w + 1),
							View:  view.Universal(),
							Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("item")), pattern.V("v"))),
						}); err != nil {
							t.Errorf("read: %v", err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if got := int64(s.Len()); got != inserted-removed {
			t.Errorf("len = %d, inserted-removed = %d", got, inserted-removed)
		}
	})
}
