package txn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/view"
)

func year(n int64) tuple.Tuple { return tuple.New(tuple.Atom("year"), tuple.Int(n)) }

// modes runs a subtest under both concurrency-control modes.
func modes(t *testing.T, fn func(t *testing.T, mode Mode)) {
	t.Helper()
	t.Run("coarse", func(t *testing.T) { fn(t, Coarse) })
	t.Run("optimistic", func(t *testing.T) { fn(t, Optimistic) })
}

func TestImmediatePaperExample(t *testing.T) {
	// ∃α: <year, α>! : α > 87 → (found, α)
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(85), year(90))
		e := New(s, mode)
		res, err := e.Immediate(Request{
			Proc: 1,
			View: view.Universal(),
			Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("year")), pattern.V("a"))).
				Where(expr.Gt(expr.V("a"), expr.Const(tuple.Int(87)))),
			Asserts: []pattern.Pattern{
				pattern.P(pattern.C(tuple.Atom("found")), pattern.V("a")),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatal("transaction failed")
		}
		if res.Env["a"] != tuple.Int(90) {
			t.Errorf("a = %v", res.Env["a"])
		}
		if len(res.Retracted) != 1 || !res.Retracted[0].Tuple.Equal(year(90)) {
			t.Errorf("retracted = %v", res.Retracted)
		}
		if len(res.Asserted) != 1 {
			t.Fatalf("asserted = %v", res.Asserted)
		}
		want := tuple.New(tuple.Atom("found"), tuple.Int(90))
		if !res.Asserted[0].Tuple.Equal(want) {
			t.Errorf("asserted %v, want %v", res.Asserted[0].Tuple, want)
		}
		if s.Len() != 2 { // year(85) + found(90)
			t.Errorf("store len = %d", s.Len())
		}
	})
}

func TestImmediateFailureHasNoEffect(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(85))
		e := New(s, mode)
		v0 := s.Version()
		res, err := e.Immediate(Request{
			Proc: 1,
			View: view.Universal(),
			Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("year")), pattern.V("a"))).
				Where(expr.Gt(expr.V("a"), expr.Const(tuple.Int(87)))),
			Asserts: []pattern.Pattern{
				pattern.P(pattern.C(tuple.Atom("found")), pattern.V("a")),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OK {
			t.Fatal("should have failed")
		}
		if s.Version() != v0 || s.Len() != 1 {
			t.Error("failed transaction changed the dataspace")
		}
		st := e.Stats()
		if st.Failures != 1 || st.Commits != 0 {
			t.Errorf("stats = %+v", st)
		}
	})
}

func TestMembershipTestNoEffect(t *testing.T) {
	// A pure membership test commits without mutating (version unchanged).
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(87))
		e := New(s, mode)
		v0 := s.Version()
		res, err := e.Immediate(Request{
			Proc:  1,
			View:  view.Universal(),
			Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("year")), pattern.C(tuple.Int(87)))),
		})
		if err != nil || !res.OK {
			t.Fatalf("res=%+v err=%v", res, err)
		}
		if s.Version() != v0 {
			t.Error("membership test bumped version")
		}
	})
}

func TestForAllCompositeEffect(t *testing.T) {
	// ∀α: <year, α>! : α > 87 → (old, α): retract all matching, assert one
	// tuple per solution, atomically.
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(85), year(90), year(95))
		e := New(s, mode)
		res, err := e.Immediate(Request{
			Proc: 1,
			View: view.Universal(),
			Query: pattern.QAll(pattern.R(pattern.C(tuple.Atom("year")), pattern.V("a"))).
				Where(expr.Gt(expr.V("a"), expr.Const(tuple.Int(87)))),
			Asserts: []pattern.Pattern{
				pattern.P(pattern.C(tuple.Atom("old")), pattern.V("a")),
			},
		})
		if err != nil || !res.OK {
			t.Fatalf("res=%+v err=%v", res, err)
		}
		if len(res.Solutions) != 2 || len(res.Retracted) != 2 || len(res.Asserted) != 2 {
			t.Errorf("sols=%d retracted=%d asserted=%d",
				len(res.Solutions), len(res.Retracted), len(res.Asserted))
		}
		if s.Len() != 3 { // year(85), old(90), old(95)
			t.Errorf("store len = %d", s.Len())
		}
	})
}

func TestForAllZeroSolutionsFails(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		e := New(s, mode)
		res, err := e.Immediate(Request{
			Proc:  1,
			View:  view.Universal(),
			Query: pattern.QAll(pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a"))),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OK {
			t.Error("∀ with no matches should fail as a guard")
		}
	})
}

func TestViewRestrictsTransaction(t *testing.T) {
	// With the paper's `α ≤ 87` import view, the transaction cannot see
	// year(90).
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(85), year(90))
		v := view.New(
			view.Union(view.PatWhere(
				pattern.P(pattern.C(tuple.Atom("year")), pattern.V("x")),
				expr.Le(expr.V("x"), expr.Const(tuple.Int(87))),
			)),
			view.Everything(),
		)
		e := New(s, mode)
		res, err := e.Immediate(Request{
			Proc: 1,
			View: v,
			Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a"))).
				Where(expr.Gt(expr.V("a"), expr.Const(tuple.Int(87)))),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OK {
			t.Error("view should hide year(90)")
		}
	})
}

func TestExportDropAndError(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(85))
		v := view.New(
			view.Everything(),
			view.Union(view.Pat(pattern.P(pattern.C(tuple.Atom("year")), pattern.W()))),
		)
		e := New(s, mode)
		req := Request{
			Proc:  1,
			View:  v,
			Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a"))),
			Asserts: []pattern.Pattern{
				pattern.P(pattern.C(tuple.Atom("noexport")), pattern.V("a")),
				pattern.P(pattern.C(tuple.Atom("year")), pattern.E(expr.Add(expr.V("a"), expr.Const(tuple.Int(1))))),
			},
		}
		res, err := e.Immediate(req)
		if err != nil || !res.OK {
			t.Fatalf("res=%+v err=%v", res, err)
		}
		// Only the exportable tuple landed.
		if len(res.Asserted) != 1 || !res.Asserted[0].Tuple.Equal(year(86)) {
			t.Errorf("asserted = %v", res.Asserted)
		}

		req.Export = ExportError
		_, err = e.Immediate(req)
		if !errors.Is(err, ErrExportViolation) {
			t.Errorf("strict export err = %v", err)
		}
	})
}

func TestExportErrorRollsBack(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(85))
		v := view.New(view.Everything(), view.Union()) // exports nothing
		e := New(s, mode)
		_, err := e.Immediate(Request{
			Proc:    1,
			View:    v,
			Query:   pattern.Q(pattern.R(pattern.C(tuple.Atom("year")), pattern.V("a"))),
			Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("x")), pattern.V("a"))},
			Export:  ExportError,
		})
		if !errors.Is(err, ErrExportViolation) {
			t.Fatalf("err = %v", err)
		}
		if s.Len() != 1 {
			t.Error("rollback failed: retraction persisted")
		}
	})
}

func TestRetractOneInstanceLeavesOthers(t *testing.T) {
	// "retracting one instance of a tuple may leave other instances of it
	// in the dataspace."
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(87), year(87))
		e := New(s, mode)
		res, err := e.Immediate(Request{
			Proc:  1,
			View:  view.Universal(),
			Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("year")), pattern.C(tuple.Int(87)))),
		})
		if err != nil || !res.OK {
			t.Fatalf("res=%+v err=%v", res, err)
		}
		if s.Len() != 1 {
			t.Errorf("store len = %d, want 1", s.Len())
		}
	})
}

func TestDelayedBlocksUntilEnabled(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		e := New(s, mode)
		done := make(chan Result, 1)
		go func() {
			res, err := e.Delayed(context.Background(), Request{
				Proc: 1,
				View: view.Universal(),
				Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a"))).
					Where(expr.Gt(expr.V("a"), expr.Const(tuple.Int(87)))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("new_year")))},
			})
			if err != nil {
				t.Error(err)
			}
			done <- res
		}()
		// Not enabled by an unrelated tuple or a too-small year.
		s.Assert(tuple.Environment, tuple.New(tuple.Atom("noise"), tuple.Int(1)))
		s.Assert(tuple.Environment, year(80))
		select {
		case <-done:
			t.Fatal("delayed transaction fired prematurely")
		case <-time.After(30 * time.Millisecond):
		}
		s.Assert(tuple.Environment, year(90))
		select {
		case res := <-done:
			if !res.OK || res.Env["a"] != tuple.Int(90) {
				t.Errorf("res = %+v", res)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("delayed transaction never fired")
		}
	})
}

func TestDelayedContextCancel(t *testing.T) {
	s := dataspace.New()
	e := New(s, Coarse)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Delayed(ctx, Request{
			Proc:  1,
			View:  view.Universal(),
			Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("never")))),
		})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Delayed did not observe cancellation")
	}
}

func TestDelayedImmediatelyEnabled(t *testing.T) {
	s := dataspace.New()
	s.Assert(tuple.Environment, year(90))
	e := New(s, Optimistic)
	res, err := e.Delayed(context.Background(), Request{
		Proc:  1,
		View:  view.Universal(),
		Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a")))},
	)
	if err != nil || !res.OK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// Serializability: concurrent read-modify-write increments of a counter
// tuple must not lose updates, under both modes.
func TestConcurrentIncrementsSerializable(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, tuple.New(tuple.Atom("counter"), tuple.Int(0)))
		e := New(s, mode)
		const workers = 8
		const perWorker = 50
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					res, err := e.Delayed(context.Background(), Request{
						Proc:  tuple.ProcessID(w + 1),
						View:  view.Universal(),
						Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("counter")), pattern.V("n"))),
						Asserts: []pattern.Pattern{pattern.P(
							pattern.C(tuple.Atom("counter")),
							pattern.E(expr.Add(expr.V("n"), expr.Const(tuple.Int(1)))),
						)},
					})
					if err != nil || !res.OK {
						t.Errorf("increment failed: %+v %v", res, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		var got int64
		s.Snapshot(func(r dataspace.Reader) {
			r.Scan(2, tuple.Atom("counter"), true, func(_ tuple.ID, tp tuple.Tuple) bool {
				got, _ = tp.Field(1).AsInt()
				return false
			})
		})
		if got != workers*perWorker {
			t.Errorf("counter = %d, want %d", got, workers*perWorker)
		}
		if s.Len() != 1 {
			t.Errorf("store len = %d", s.Len())
		}
	})
}

// Two concurrent retractors of a single instance: exactly one must win.
func TestConcurrentRetractionExactlyOnce(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		for trial := 0; trial < 20; trial++ {
			s := dataspace.New()
			s.Assert(tuple.Environment, year(90))
			e := New(s, mode)
			results := make(chan bool, 2)
			for w := 0; w < 2; w++ {
				go func(w int) {
					res, err := e.Immediate(Request{
						Proc:  tuple.ProcessID(w + 1),
						View:  view.Universal(),
						Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("year")), pattern.V("a"))),
					})
					if err != nil {
						t.Error(err)
					}
					results <- res.OK
				}(w)
			}
			wins := 0
			for i := 0; i < 2; i++ {
				if <-results {
					wins++
				}
			}
			if wins != 1 {
				t.Fatalf("trial %d: wins = %d, want exactly 1", trial, wins)
			}
			if s.Len() != 0 {
				t.Fatalf("trial %d: store len = %d", trial, s.Len())
			}
		}
	})
}

func TestOptimisticConflictCounted(t *testing.T) {
	// Force a conflict: evaluate under snapshot, mutate between phases.
	// We can't hook between phases directly, so run contended increments
	// and just require the engine to have recorded activity consistently.
	s := dataspace.New()
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("counter"), tuple.Int(0)))
	e := New(s, Optimistic)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, _ = e.Immediate(Request{
					Proc:  tuple.ProcessID(w + 1),
					View:  view.Universal(),
					Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("counter")), pattern.V("n"))),
					Asserts: []pattern.Pattern{pattern.P(
						pattern.C(tuple.Atom("counter")),
						pattern.E(expr.Add(expr.V("n"), expr.Const(tuple.Int(1)))),
					)},
				})
			}
		}(w)
	}
	wg.Wait()
	st := e.Stats()
	if st.Commits != 400 {
		t.Errorf("commits = %d", st.Commits)
	}
	if st.Attempts < st.Commits {
		t.Errorf("attempts %d < commits %d", st.Attempts, st.Commits)
	}
}

func TestInvalidModeDefaultsToCoarse(t *testing.T) {
	e := New(dataspace.New(), Mode(99))
	if e.Mode() != Coarse {
		t.Errorf("mode = %v", e.Mode())
	}
	if e.Store() == nil {
		t.Error("Store() nil")
	}
}

func TestQueryErrorPropagates(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(90))
		e := New(s, mode)
		_, err := e.Immediate(Request{
			Proc: 1,
			View: view.Universal(),
			Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a"))).
				Where(expr.Add(expr.V("a"), expr.Const(tuple.Int(1)))), // non-bool test
		})
		if err == nil {
			t.Error("expected evaluation error")
		}
	})
}

func TestAssertGroundErrorFailsTransaction(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		s.Assert(tuple.Environment, year(90))
		e := New(s, mode)
		_, err := e.Immediate(Request{
			Proc:    1,
			View:    view.Universal(),
			Query:   pattern.Q(pattern.R(pattern.C(tuple.Atom("year")), pattern.V("a"))),
			Asserts: []pattern.Pattern{pattern.P(pattern.V("unbound_var"))},
		})
		if err == nil {
			t.Fatal("expected ground error")
		}
		if s.Len() != 1 {
			t.Error("failed assertion did not roll back retraction")
		}
	})
}

func TestOptimisticConflictPathsExercised(t *testing.T) {
	// Force the snapshot-miss-then-version-moved path: a flipper toggles
	// the presence of <x> while a prober runs immediate queries for it.
	s := dataspace.New()
	e := New(s, Optimistic)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ids := s.Assert(tuple.Environment, tuple.New(tuple.Atom("x")))
			_ = s.Update(tuple.Environment, func(w dataspace.Writer) error {
				return w.Delete(ids[0])
			})
		}
	}()
	req := Request{
		Proc:    1,
		View:    view.Universal(),
		Query:   pattern.Q(pattern.R(pattern.C(tuple.Atom("x")))),
		Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("seen")))},
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Conflicts == 0 && time.Now().Before(deadline) {
		if _, err := e.Immediate(req); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if e.Stats().Conflicts == 0 {
		t.Skip("no conflict provoked on this host (single-threaded scheduling)")
	}
	// Consistency: every committed probe left exactly one seen tuple and
	// removed one x.
	st := e.Stats()
	var seen int
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(1, tuple.Atom("seen"), true, func(tuple.ID, tuple.Tuple) bool {
			seen++
			return true
		})
	})
	if uint64(seen) != st.Commits {
		t.Errorf("seen=%d commits=%d", seen, st.Commits)
	}
}

func TestDelayedNegationOnlyQuery(t *testing.T) {
	// A delayed transaction whose query is a lone negation fires when the
	// blocking tuple is retracted.
	modes(t, func(t *testing.T, mode Mode) {
		s := dataspace.New()
		ids := s.Assert(tuple.Environment, tuple.New(tuple.Atom("busy")))
		e := New(s, mode)
		done := make(chan Result, 1)
		go func() {
			res, err := e.Delayed(context.Background(), Request{
				Proc:    1,
				View:    view.Universal(),
				Query:   pattern.Q(pattern.N(pattern.C(tuple.Atom("busy")))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("idle")))},
			})
			if err != nil {
				t.Error(err)
			}
			done <- res
		}()
		select {
		case <-done:
			t.Fatal("negation fired while busy tuple present")
		case <-time.After(30 * time.Millisecond):
		}
		_ = s.Update(tuple.Environment, func(w dataspace.Writer) error {
			return w.Delete(ids[0])
		})
		select {
		case res := <-done:
			if !res.OK {
				t.Error("not OK")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("negation-only delayed txn never fired after retract")
		}
	})
}

func TestModeAndKindStrings(t *testing.T) {
	if Coarse.String() != "coarse" || Optimistic.String() != "optimistic" || Mode(0).String() != "invalid" {
		t.Error("Mode.String misnames")
	}
}

func BenchmarkImmediateReadOnly(b *testing.B) {
	for _, mode := range []Mode{Coarse, Optimistic} {
		b.Run(mode.String(), func(b *testing.B) {
			s := dataspace.New()
			s.Assert(tuple.Environment, year(90))
			e := New(s, mode)
			req := Request{
				Proc:  1,
				View:  view.Universal(),
				Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("year")), pattern.V("a"))),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.Immediate(req)
				if err != nil || !res.OK {
					b.Fatal(res.OK, err)
				}
			}
		})
	}
}

func BenchmarkImmediateRMW(b *testing.B) {
	for _, mode := range []Mode{Coarse, Optimistic} {
		b.Run(mode.String(), func(b *testing.B) {
			s := dataspace.New()
			s.Assert(tuple.Environment, tuple.New(tuple.Atom("counter"), tuple.Int(0)))
			e := New(s, mode)
			req := Request{
				Proc:  1,
				View:  view.Universal(),
				Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("counter")), pattern.V("n"))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("counter")),
					pattern.E(expr.Add(expr.V("n"), expr.Const(tuple.Int(1)))))},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.Immediate(req)
				if err != nil || !res.OK {
					b.Fatal(res.OK, err)
				}
			}
		})
	}
}

// TestFieldIndexedQueryStaysUnplanned pins the footprintKeys contract: a
// pattern whose lead is unknown under the issuing environment stays off
// the key-latch plan even when its constant non-lead fields give the
// matcher an indexed access path — the field index changes which tuples a
// scan visits inside the locked footprint, not which shards the footprint
// locks. The lookups below promote their shape and are index-served, yet
// every mutating commit still publishes through the coarse full-store
// path.
func TestFieldIndexedQueryStaysUnplanned(t *testing.T) {
	s := dataspace.New(dataspace.WithShards(4), dataspace.WithSecondaryIndex(true))
	e := New(s, Coarse)
	for i := 0; i < 32; i++ {
		s.Assert(tuple.Environment,
			tuple.New(tuple.Int(int64(i)), tuple.Atom("rec"), tuple.Int(int64(i%4))))
	}
	pre := s.Metrics().Snapshot()
	const lookups = 8
	for i := 0; i < lookups; i++ {
		res, err := e.Immediate(Request{
			Proc: 1,
			View: view.Universal(),
			Query: pattern.Q(pattern.P(
				pattern.V("x"), pattern.C(tuple.Atom("rec")), pattern.C(tuple.Int(int64(i%4))))),
			Asserts: []pattern.Pattern{
				pattern.P(pattern.C(tuple.Atom("hit")), pattern.V("x")),
			},
		})
		if err != nil || !res.OK {
			t.Fatalf("lookup %d: res=%+v err=%v", i, res, err)
		}
	}
	post := s.Metrics().Snapshot()
	if post.KeyCommits != pre.KeyCommits {
		t.Errorf("unknown-lead commits took the key-latch path: %d -> %d",
			pre.KeyCommits, post.KeyCommits)
	}
	if got := post.CoarseCommits - pre.CoarseCommits; got != lookups {
		t.Errorf("coarse commits grew by %d, want %d", got, lookups)
	}
	if post.SecondaryPromotions == pre.SecondaryPromotions {
		t.Error("repeated field scans promoted no shape")
	}
	if post.SecondaryIndexedScans == pre.SecondaryIndexedScans {
		t.Error("promoted shape served no indexed scan")
	}
}
