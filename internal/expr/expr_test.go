package expr

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/sdl-lang/sdl/internal/tuple"
)

func mustEval(t *testing.T, e Expr, env Env) tuple.Value {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestArithmeticInt(t *testing.T) {
	env := Env{"a": tuple.Int(10), "b": tuple.Int(3)}
	tests := []struct {
		e    Expr
		want tuple.Value
	}{
		{Add(V("a"), V("b")), tuple.Int(13)},
		{Sub(V("a"), V("b")), tuple.Int(7)},
		{Mul(V("a"), V("b")), tuple.Int(30)},
		{Div(V("a"), V("b")), tuple.Int(3)},
		{Mod(V("a"), V("b")), tuple.Int(1)},
		{Neg(V("a")), tuple.Int(-10)},
	}
	for _, tc := range tests {
		if got := mustEval(t, tc.e, env); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestArithmeticMixed(t *testing.T) {
	env := Env{"a": tuple.Int(10), "f": tuple.Float(2.5)}
	got := mustEval(t, Add(V("a"), V("f")), env)
	if got != tuple.Float(12.5) {
		t.Errorf("10 + 2.5 = %v", got)
	}
	got = mustEval(t, Div(V("f"), Const(tuple.Float(0.5))), env)
	if got != tuple.Float(5.0) {
		t.Errorf("2.5 / 0.5 = %v", got)
	}
	got = mustEval(t, Neg(V("f")), env)
	if got != tuple.Float(-2.5) {
		t.Errorf("-2.5 = %v", got)
	}
}

func TestStringConcat(t *testing.T) {
	env := Env{"s": tuple.String("ab")}
	got := mustEval(t, Add(V("s"), Const(tuple.String("cd"))), env)
	if got != tuple.String("abcd") {
		t.Errorf("concat = %v", got)
	}
}

func TestDivideByZero(t *testing.T) {
	for _, e := range []Expr{
		Div(Const(tuple.Int(1)), Const(tuple.Int(0))),
		Mod(Const(tuple.Int(1)), Const(tuple.Int(0))),
		Div(Const(tuple.Float(1)), Const(tuple.Float(0))),
	} {
		if _, err := e.Eval(nil); !errors.Is(err, ErrDivZero) {
			t.Errorf("%s: err = %v, want ErrDivZero", e, err)
		}
	}
}

func TestComparisons(t *testing.T) {
	env := Env{"x": tuple.Int(90)}
	tests := []struct {
		e    Expr
		want bool
	}{
		{Gt(V("x"), Const(tuple.Int(87))), true},
		{Ge(V("x"), Const(tuple.Int(90))), true},
		{Lt(V("x"), Const(tuple.Int(87))), false},
		{Le(V("x"), Const(tuple.Int(90))), true},
		{Eq(V("x"), Const(tuple.Float(90.0))), true},
		{Ne(V("x"), Const(tuple.Int(87))), true},
		{Eq(Const(tuple.Atom("nil")), Const(tuple.Atom("nil"))), true},
		{Ne(Const(tuple.Atom("a")), Const(tuple.Atom("b"))), true},
	}
	for _, tc := range tests {
		got, err := EvalBool(tc.e, env)
		if err != nil {
			t.Fatalf("%s: %v", tc.e, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestLogicShortCircuit(t *testing.T) {
	// The right operand would error (unbound variable); short-circuiting
	// must avoid evaluating it.
	e := And(Const(tuple.Bool(false)), V("missing"))
	got, err := EvalBool(e, nil)
	if err != nil || got {
		t.Errorf("false and X = %v, %v", got, err)
	}
	e2 := Or(Const(tuple.Bool(true)), V("missing"))
	got, err = EvalBool(e2, nil)
	if err != nil || !got {
		t.Errorf("true or X = %v, %v", got, err)
	}
	// Non-short-circuit path must evaluate the right side.
	e3 := And(Const(tuple.Bool(true)), V("missing"))
	if _, err := EvalBool(e3, nil); !errors.Is(err, ErrUnbound) {
		t.Errorf("true and unbound: err = %v", err)
	}
}

func TestNot(t *testing.T) {
	got := mustEval(t, Not(Const(tuple.Bool(true))), nil)
	if got != tuple.Bool(false) {
		t.Errorf("not true = %v", got)
	}
	if _, err := Not(Const(tuple.Int(1))).Eval(nil); !errors.Is(err, ErrType) {
		t.Errorf("not 1: err = %v", err)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []Expr{
		Add(Const(tuple.Atom("a")), Const(tuple.Int(1))),
		Mod(Const(tuple.Float(1)), Const(tuple.Float(2))),
		And(Const(tuple.Int(1)), Const(tuple.Bool(true))),
		Or(Const(tuple.Bool(false)), Const(tuple.Int(1))),
		Neg(Const(tuple.Atom("a"))),
	}
	for _, e := range cases {
		if _, err := e.Eval(nil); !errors.Is(err, ErrType) {
			t.Errorf("%s: err = %v, want ErrType", e, err)
		}
	}
}

func TestUnbound(t *testing.T) {
	if _, err := V("zz").Eval(Env{}); !errors.Is(err, ErrUnbound) {
		t.Errorf("err = %v", err)
	}
}

func TestBuiltins(t *testing.T) {
	tests := []struct {
		e    Expr
		want tuple.Value
	}{
		{Fn("abs", Const(tuple.Int(-4))), tuple.Int(4)},
		{Fn("abs", Const(tuple.Float(-2.5))), tuple.Float(2.5)},
		{Fn("min", Const(tuple.Int(3)), Const(tuple.Int(7))), tuple.Int(3)},
		{Fn("max", Const(tuple.Int(3)), Const(tuple.Int(7))), tuple.Int(7)},
		{Fn("pow2", Const(tuple.Int(10))), tuple.Int(1024)},
		{Fn("int", Const(tuple.Float(3.9))), tuple.Int(3)},
	}
	for _, tc := range tests {
		if got := mustEval(t, tc.e, nil); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestBuiltinErrors(t *testing.T) {
	cases := []Expr{
		Fn("nosuch", Const(tuple.Int(1))),
		Fn("abs"),
		Fn("abs", Const(tuple.Atom("a"))),
		Fn("pow2", Const(tuple.Int(-1))),
		Fn("pow2", Const(tuple.Int(64))),
		Fn("int", Const(tuple.Atom("a"))),
		Fn("min", Const(tuple.Int(1))),
	}
	for _, e := range cases {
		if _, err := e.Eval(nil); err == nil {
			t.Errorf("%s: expected error", e)
		}
	}
	if !HasBuiltin("abs") || HasBuiltin("nosuch") {
		t.Error("HasBuiltin misreports")
	}
}

func TestVarsCollection(t *testing.T) {
	e := And(Gt(V("a"), Const(tuple.Int(0))), Ne(V("b"), Fn("min", V("c"), V("a"))))
	vars := e.Vars(nil)
	sort.Strings(vars)
	want := []string{"a", "a", "b", "c"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestEvalBoolNilExpr(t *testing.T) {
	got, err := EvalBool(nil, nil)
	if err != nil || !got {
		t.Errorf("EvalBool(nil) = %v, %v; want true", got, err)
	}
}

func TestEvalBoolNonBool(t *testing.T) {
	if _, err := EvalBool(Const(tuple.Int(1)), nil); !errors.Is(err, ErrType) {
		t.Errorf("err = %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	env := Env{"a": tuple.Int(1)}
	cp := env.Clone()
	cp["a"] = tuple.Int(2)
	cp["b"] = tuple.Int(3)
	if env["a"] != tuple.Int(1) {
		t.Error("Clone aliased the original")
	}
	if _, ok := env["b"]; ok {
		t.Error("Clone aliased the original (new key)")
	}
}

func TestStringRendering(t *testing.T) {
	e := And(Gt(V("x"), Const(tuple.Int(87))), Not(Eq(V("y"), Const(tuple.Atom("nil")))))
	want := "((x > 87) and (not (y == nil)))"
	if got := e.String(); got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

// Property: integer arithmetic on the expression tree agrees with Go.
func TestQuickIntArithAgreesWithGo(t *testing.T) {
	f := func(a, b int32) bool {
		env := Env{"a": tuple.Int(int64(a)), "b": tuple.Int(int64(b))}
		sum := mustVal(Add(V("a"), V("b")), env)
		diff := mustVal(Sub(V("a"), V("b")), env)
		prod := mustVal(Mul(V("a"), V("b")), env)
		return sum == tuple.Int(int64(a)+int64(b)) &&
			diff == tuple.Int(int64(a)-int64(b)) &&
			prod == tuple.Int(int64(a)*int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison operators form a coherent set (exactly one of <, ==, >).
func TestQuickComparisonTrichotomy(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(42))}
	f := func(a, b int16) bool {
		env := Env{"a": tuple.Int(int64(a)), "b": tuple.Int(int64(b))}
		lt, _ := EvalBool(Lt(V("a"), V("b")), env)
		eq, _ := EvalBool(Eq(V("a"), V("b")), env)
		gt, _ := EvalBool(Gt(V("a"), V("b")), env)
		count := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func mustVal(e Expr, env Env) tuple.Value {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

func TestCondBuiltin(t *testing.T) {
	env := Env{"x": tuple.Int(5)}
	got := mustEval(t, Fn("cond",
		Gt(V("x"), Const(tuple.Int(3))),
		Const(tuple.Atom("big")),
		Const(tuple.Atom("small"))), env)
	if got != tuple.Atom("big") {
		t.Errorf("cond = %v", got)
	}
	got = mustEval(t, Fn("cond",
		Const(tuple.Bool(false)),
		Const(tuple.Int(1)),
		Const(tuple.Int(2))), nil)
	if got != tuple.Int(2) {
		t.Errorf("cond = %v", got)
	}
	if _, err := Fn("cond", Const(tuple.Int(1)), Const(tuple.Int(1)), Const(tuple.Int(2))).Eval(nil); err == nil {
		t.Error("non-bool condition accepted")
	}
	if _, err := Fn("cond", Const(tuple.Bool(true))).Eval(nil); err == nil {
		t.Error("wrong arity accepted")
	}
}
