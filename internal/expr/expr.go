// Package expr implements the expression sublanguage of SDL: the predicates
// that appear in test queries (e.g. `α > 87`, `ν1 ≠ ν2`) and the value
// expressions that appear in assertions and let-actions (e.g. `α + β`,
// `k − 2^(j−1)`).
//
// Expressions evaluate against an Env, the variable bindings produced by a
// binding query. Evaluation is side-effect free.
package expr

import (
	"errors"
	"fmt"
	"strings"

	"github.com/sdl-lang/sdl/internal/tuple"
)

// Env holds variable bindings during query evaluation. Variable names are
// the quantified variables of the enclosing transaction (the paper writes
// them as Greek letters) plus process parameters and let-constants.
type Env map[string]tuple.Value

// Clone returns an independent copy of the environment.
func (e Env) Clone() Env {
	cp := make(Env, len(e))
	for k, v := range e {
		cp[k] = v
	}
	return cp
}

// Errors reported by evaluation.
var (
	// ErrUnbound reports a reference to a variable with no binding.
	ErrUnbound = errors.New("expr: unbound variable")
	// ErrType reports an operand of the wrong kind.
	ErrType = errors.New("expr: type error")
	// ErrDivZero reports integer or float division by zero.
	ErrDivZero = errors.New("expr: division by zero")
)

// Expr is a side-effect-free expression over an Env.
type Expr interface {
	// Eval computes the value of the expression under env.
	Eval(env Env) (tuple.Value, error)
	// Vars appends the free variables of the expression to dst.
	Vars(dst []string) []string
	// String renders the expression in SDL surface syntax.
	String() string
}

// Lit is a literal value.
type Lit struct{ Value tuple.Value }

// Const returns a literal expression.
func Const(v tuple.Value) Lit { return Lit{Value: v} }

// Eval implements Expr.
func (l Lit) Eval(Env) (tuple.Value, error) { return l.Value, nil }

// Vars implements Expr.
func (l Lit) Vars(dst []string) []string { return dst }

func (l Lit) String() string { return l.Value.String() }

// Var is a variable reference.
type Var struct{ Name string }

// V returns a variable-reference expression.
func V(name string) Var { return Var{Name: name} }

// Eval implements Expr.
func (v Var) Eval(env Env) (tuple.Value, error) {
	val, ok := env[v.Name]
	if !ok {
		return tuple.Value{}, fmt.Errorf("%w: %s", ErrUnbound, v.Name)
	}
	return val, nil
}

// Vars implements Expr.
func (v Var) Vars(dst []string) []string { return append(dst, v.Name) }

func (v Var) String() string { return v.Name }

// Op enumerates the binary and unary operators.
type Op uint8

// Operators. Arithmetic operators require numeric operands; comparison
// operators use the total order of tuple.Value; logical operators require
// booleans.
const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "and", OpOr: "or", OpNot: "not", OpNeg: "-",
}

// String returns the operator's surface syntax.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "?"
}

// Binary is a binary operation.
type Binary struct {
	Op   Op
	L, R Expr
}

// Bin builds a binary expression.
func Bin(op Op, l, r Expr) Binary { return Binary{Op: op, L: l, R: r} }

// Convenience constructors for the common operators.
func Add(l, r Expr) Binary { return Bin(OpAdd, l, r) }
func Sub(l, r Expr) Binary { return Bin(OpSub, l, r) }
func Mul(l, r Expr) Binary { return Bin(OpMul, l, r) }
func Div(l, r Expr) Binary { return Bin(OpDiv, l, r) }
func Mod(l, r Expr) Binary { return Bin(OpMod, l, r) }
func Eq(l, r Expr) Binary  { return Bin(OpEq, l, r) }
func Ne(l, r Expr) Binary  { return Bin(OpNe, l, r) }
func Lt(l, r Expr) Binary  { return Bin(OpLt, l, r) }
func Le(l, r Expr) Binary  { return Bin(OpLe, l, r) }
func Gt(l, r Expr) Binary  { return Bin(OpGt, l, r) }
func Ge(l, r Expr) Binary  { return Bin(OpGe, l, r) }
func And(l, r Expr) Binary { return Bin(OpAnd, l, r) }
func Or(l, r Expr) Binary  { return Bin(OpOr, l, r) }

// Eval implements Expr.
func (b Binary) Eval(env Env) (tuple.Value, error) {
	// Short-circuit logical operators.
	switch b.Op {
	case OpAnd, OpOr:
		lv, err := b.L.Eval(env)
		if err != nil {
			return tuple.Value{}, err
		}
		lb, ok := lv.AsBool()
		if !ok {
			return tuple.Value{}, fmt.Errorf("%w: %s operand %v", ErrType, b.Op, lv)
		}
		if b.Op == OpAnd && !lb {
			return tuple.Bool(false), nil
		}
		if b.Op == OpOr && lb {
			return tuple.Bool(true), nil
		}
		rv, err := b.R.Eval(env)
		if err != nil {
			return tuple.Value{}, err
		}
		rb, ok := rv.AsBool()
		if !ok {
			return tuple.Value{}, fmt.Errorf("%w: %s operand %v", ErrType, b.Op, rv)
		}
		return tuple.Bool(rb), nil
	}

	lv, err := b.L.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	rv, err := b.R.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}

	switch b.Op {
	case OpEq:
		return tuple.Bool(lv.Equal(rv)), nil
	case OpNe:
		return tuple.Bool(!lv.Equal(rv)), nil
	case OpLt:
		return tuple.Bool(lv.Compare(rv) < 0), nil
	case OpLe:
		return tuple.Bool(lv.Compare(rv) <= 0), nil
	case OpGt:
		return tuple.Bool(lv.Compare(rv) > 0), nil
	case OpGe:
		return tuple.Bool(lv.Compare(rv) >= 0), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(b.Op, lv, rv)
	default:
		return tuple.Value{}, fmt.Errorf("expr: bad binary op %d", b.Op)
	}
}

func evalArith(op Op, lv, rv tuple.Value) (tuple.Value, error) {
	li, lok := lv.AsInt()
	ri, rok := rv.AsInt()
	if lok && rok {
		switch op {
		case OpAdd:
			return tuple.Int(li + ri), nil
		case OpSub:
			return tuple.Int(li - ri), nil
		case OpMul:
			return tuple.Int(li * ri), nil
		case OpDiv:
			if ri == 0 {
				return tuple.Value{}, ErrDivZero
			}
			return tuple.Int(li / ri), nil
		case OpMod:
			if ri == 0 {
				return tuple.Value{}, ErrDivZero
			}
			return tuple.Int(li % ri), nil
		}
	}
	lf, lok := lv.Numeric()
	rf, rok := rv.Numeric()
	if !lok || !rok {
		// String concatenation is permitted for +.
		if op == OpAdd {
			ls, lsok := lv.AsString()
			rs, rsok := rv.AsString()
			if lsok && rsok {
				return tuple.String(ls + rs), nil
			}
		}
		return tuple.Value{}, fmt.Errorf("%w: %s on %v, %v", ErrType, op, lv, rv)
	}
	switch op {
	case OpAdd:
		return tuple.Float(lf + rf), nil
	case OpSub:
		return tuple.Float(lf - rf), nil
	case OpMul:
		return tuple.Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return tuple.Value{}, ErrDivZero
		}
		return tuple.Float(lf / rf), nil
	case OpMod:
		return tuple.Value{}, fmt.Errorf("%w: %% on floats", ErrType)
	}
	return tuple.Value{}, fmt.Errorf("expr: bad arith op %d", op)
}

// Vars implements Expr.
func (b Binary) Vars(dst []string) []string { return b.R.Vars(b.L.Vars(dst)) }

func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Unary is a unary operation: logical not or arithmetic negation.
type Unary struct {
	Op Op
	X  Expr
}

// Not builds a logical negation.
func Not(x Expr) Unary { return Unary{Op: OpNot, X: x} }

// Neg builds an arithmetic negation.
func Neg(x Expr) Unary { return Unary{Op: OpNeg, X: x} }

// Eval implements Expr.
func (u Unary) Eval(env Env) (tuple.Value, error) {
	v, err := u.X.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	switch u.Op {
	case OpNot:
		b, ok := v.AsBool()
		if !ok {
			return tuple.Value{}, fmt.Errorf("%w: not %v", ErrType, v)
		}
		return tuple.Bool(!b), nil
	case OpNeg:
		if i, ok := v.AsInt(); ok {
			return tuple.Int(-i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return tuple.Float(-f), nil
		}
		return tuple.Value{}, fmt.Errorf("%w: - %v", ErrType, v)
	default:
		return tuple.Value{}, fmt.Errorf("expr: bad unary op %d", u.Op)
	}
}

// Vars implements Expr.
func (u Unary) Vars(dst []string) []string { return u.X.Vars(dst) }

func (u Unary) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.X) }

// Call is a built-in function application. The available functions are the
// small numeric library needed by the paper's examples (powers of two for
// the summation phases, neighbourhood predicates, …).
type Call struct {
	Name string
	Args []Expr
}

// Fn builds a built-in call expression.
func Fn(name string, args ...Expr) Call { return Call{Name: name, Args: args} }

// Builtins maps function names to implementations. It is immutable at run
// time; the language front-end validates names at parse time via HasBuiltin.
var builtins = map[string]func(args []tuple.Value) (tuple.Value, error){
	"abs": func(a []tuple.Value) (tuple.Value, error) {
		if err := arity("abs", a, 1); err != nil {
			return tuple.Value{}, err
		}
		if i, ok := a[0].AsInt(); ok {
			if i < 0 {
				i = -i
			}
			return tuple.Int(i), nil
		}
		if f, ok := a[0].AsFloat(); ok {
			if f < 0 {
				f = -f
			}
			return tuple.Float(f), nil
		}
		return tuple.Value{}, fmt.Errorf("%w: abs %v", ErrType, a[0])
	},
	"min": func(a []tuple.Value) (tuple.Value, error) {
		if err := arity("min", a, 2); err != nil {
			return tuple.Value{}, err
		}
		if a[0].Compare(a[1]) <= 0 {
			return a[0], nil
		}
		return a[1], nil
	},
	"max": func(a []tuple.Value) (tuple.Value, error) {
		if err := arity("max", a, 2); err != nil {
			return tuple.Value{}, err
		}
		if a[0].Compare(a[1]) >= 0 {
			return a[0], nil
		}
		return a[1], nil
	},
	"pow2": func(a []tuple.Value) (tuple.Value, error) {
		if err := arity("pow2", a, 1); err != nil {
			return tuple.Value{}, err
		}
		i, ok := a[0].AsInt()
		if !ok || i < 0 || i > 62 {
			return tuple.Value{}, fmt.Errorf("%w: pow2 %v", ErrType, a[0])
		}
		return tuple.Int(1 << i), nil
	},
	"int": func(a []tuple.Value) (tuple.Value, error) {
		if err := arity("int", a, 1); err != nil {
			return tuple.Value{}, err
		}
		f, ok := a[0].Numeric()
		if !ok {
			return tuple.Value{}, fmt.Errorf("%w: int %v", ErrType, a[0])
		}
		return tuple.Int(int64(f)), nil
	},
	// cond(c, a, b) selects a when c is true, else b. Arguments are
	// evaluated eagerly (expressions are side-effect free, so this only
	// costs work, never correctness).
	"cond": func(a []tuple.Value) (tuple.Value, error) {
		if err := arity("cond", a, 3); err != nil {
			return tuple.Value{}, err
		}
		c, ok := a[0].AsBool()
		if !ok {
			return tuple.Value{}, fmt.Errorf("%w: cond condition %v", ErrType, a[0])
		}
		if c {
			return a[1], nil
		}
		return a[2], nil
	},
}

func arity(name string, args []tuple.Value, want int) error {
	if len(args) != want {
		return fmt.Errorf("expr: %s expects %d args, got %d", name, want, len(args))
	}
	return nil
}

// HasBuiltin reports whether name is a known built-in function.
func HasBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

// Eval implements Expr.
func (c Call) Eval(env Env) (tuple.Value, error) {
	fn, ok := builtins[c.Name]
	if !ok {
		return tuple.Value{}, fmt.Errorf("expr: unknown function %q", c.Name)
	}
	args := make([]tuple.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(env)
		if err != nil {
			return tuple.Value{}, err
		}
		args[i] = v
	}
	return fn(args)
}

// Vars implements Expr.
func (c Call) Vars(dst []string) []string {
	for _, a := range c.Args {
		dst = a.Vars(dst)
	}
	return dst
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// EvalBool evaluates e and asserts a boolean result; it is the entry point
// used for test queries.
func EvalBool(e Expr, env Env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("%w: test query yielded %v, want bool", ErrType, v)
	}
	return b, nil
}

// Compile-time interface checks.
var (
	_ Expr = Lit{}
	_ Expr = Var{}
	_ Expr = Binary{}
	_ Expr = Unary{}
	_ Expr = Call{}
)
