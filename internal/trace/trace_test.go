package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

func setup(limit int) (*dataspace.Store, *Recorder) {
	s := dataspace.New()
	r := NewRecorder(limit)
	r.Attach(s)
	return s, r
}

func TestRecorderObservesAssertsAndRetracts(t *testing.T) {
	s, r := setup(0)
	ids := s.Assert(3, tuple.New(tuple.Atom("a"), tuple.Int(1)))
	_ = s.Update(4, func(w dataspace.Writer) error { return w.Delete(ids[0]) })

	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != Assert || events[0].Owner != 3 || events[0].Actor != 3 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != Retract || events[1].Actor != 4 || events[1].Owner != 3 {
		t.Errorf("event 1 = %+v", events[1])
	}
	if events[0].Seq >= events[1].Seq {
		t.Error("sequence not monotonic")
	}
}

func TestHistoryTracksInstanceLifecycle(t *testing.T) {
	s, r := setup(0)
	ids := s.Assert(1, tuple.New(tuple.Atom("x")))
	s.Assert(1, tuple.New(tuple.Atom("y")))
	_ = s.Update(2, func(w dataspace.Writer) error { return w.Delete(ids[0]) })

	h := r.History(ids[0])
	if len(h) != 2 || h[0].Kind != Assert || h[1].Kind != Retract {
		t.Errorf("history = %+v", h)
	}
}

func TestReplayAt(t *testing.T) {
	s, r := setup(0)
	ids := s.Assert(1, tuple.New(tuple.Atom("a")))   // v1
	s.Assert(1, tuple.New(tuple.Atom("b")))          // v2
	_ = s.Update(1, func(w dataspace.Writer) error { // v3
		return w.Delete(ids[0])
	})

	if got := r.ReplayAt(0); len(got) != 0 {
		t.Errorf("v0 state = %v", got)
	}
	if got := r.ReplayAt(1); len(got) != 1 {
		t.Errorf("v1 state = %v", got)
	}
	if got := r.ReplayAt(2); len(got) != 2 {
		t.Errorf("v2 state = %v", got)
	}
	v3 := r.ReplayAt(3)
	if len(v3) != 1 {
		t.Fatalf("v3 state = %v", v3)
	}
	for _, tp := range v3 {
		if !tp.Equal(tuple.New(tuple.Atom("b"))) {
			t.Errorf("v3 tuple = %v", tp)
		}
	}
	// Replay must agree with the live store.
	if len(r.ReplayAt(s.Version())) != s.Len() {
		t.Error("replay at head disagrees with store")
	}
}

func TestByActor(t *testing.T) {
	s, r := setup(0)
	s.Assert(2, tuple.New(tuple.Atom("a")), tuple.New(tuple.Atom("b")))
	ids := s.Assert(5, tuple.New(tuple.Atom("c")))
	_ = s.Update(5, func(w dataspace.Writer) error { return w.Delete(ids[0]) })

	acts := r.ByActor()
	if len(acts) != 2 {
		t.Fatalf("actors = %+v", acts)
	}
	if acts[0].Process != 2 || acts[0].Asserts != 2 || acts[0].Retracts != 0 {
		t.Errorf("actor 2 = %+v", acts[0])
	}
	if acts[1].Process != 5 || acts[1].Asserts != 1 || acts[1].Retracts != 1 {
		t.Errorf("actor 5 = %+v", acts[1])
	}
}

func TestLimitKeepsPrefix(t *testing.T) {
	s, r := setup(3)
	for i := 0; i < 10; i++ {
		s.Assert(1, tuple.New(tuple.Int(int64(i))))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	events := r.Events()
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Errorf("kept suffix, not prefix: %+v", events)
		}
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	s, r := setup(0)
	s.Assert(1, tuple.New(tuple.Atom("year"), tuple.Int(87)))

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "<year, 87>") || !strings.Contains(txt.String(), "assert") {
		t.Errorf("text = %q", txt.String())
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0]["kind"] != float64(Assert) {
		t.Errorf("json = %v", decoded)
	}
}
