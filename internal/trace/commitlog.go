package trace

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/sdl-lang/sdl/internal/dataspace"
)

// CommitLog records whole commit events — version, committing process, and
// the retracted/asserted instances — rather than the Recorder's flattened
// per-tuple events. External observers (and the serializability audit in
// internal/refmodel) use it to reconstruct the committed history: because
// every commit holds its shard write locks while the hook runs and takes
// its version from one global atomic, replaying the records in version
// order is an equivalent serial execution of the concurrent history.
type CommitLog struct {
	// detached flips when no consumer will read further records; the
	// observe hook cannot be unsubscribed from the store, so it gates
	// itself instead. Checked without the mutex: the hook runs inside
	// commit critical sections, and a detached log must cost them nothing.
	detached atomic.Bool

	mu   sync.Mutex
	recs []dataspace.CommitRecord
}

// NewCommitLog returns an empty log.
func NewCommitLog() *CommitLog { return &CommitLog{} }

// Attach subscribes the log to the store's commits. Call before the store
// is shared between goroutines.
func (l *CommitLog) Attach(s *dataspace.Store) {
	s.OnCommit(l.observe)
}

// Detach stops recording. Commit hooks cannot be removed from a store, so
// this is how a consumer that is done reading (an audit that has run, a
// bench harness past its measured phase) stops paying the per-commit copy
// of the effect slices. Records gathered so far stay readable. A commit
// racing with Detach may or may not be recorded — callers detach only
// once they no longer care.
func (l *CommitLog) Detach() { l.detached.Store(true) }

func (l *CommitLog) observe(rec dataspace.CommitRecord) {
	if l.detached.Load() {
		return
	}
	// Copy the effect slices: they are owned by the committing writer and
	// only valid during the hook call. Len-gated so effect-free sides of a
	// commit don't allocate.
	cp := dataspace.CommitRecord{Version: rec.Version, Owner: rec.Owner}
	if len(rec.Inserted) > 0 {
		cp.Inserted = append([]dataspace.Instance(nil), rec.Inserted...)
	}
	if len(rec.Deleted) > 0 {
		cp.Deleted = append([]dataspace.Instance(nil), rec.Deleted...)
	}
	l.mu.Lock()
	l.recs = append(l.recs, cp)
	l.mu.Unlock()
}

// Len returns the number of recorded commits.
func (l *CommitLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Commits returns a copy of the log sorted by commit version. Commits on
// disjoint shard sets append concurrently, so the internal order is not
// version-sorted; the version sort recovers the serialization order.
func (l *CommitLog) Commits() []dataspace.CommitRecord {
	l.mu.Lock()
	out := make([]dataspace.CommitRecord, len(l.recs))
	copy(out, l.recs)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}
