// Package trace records the evolution of a dataspace for debugging,
// testing, and visualization — the paper's motivating concern ("there is
// no other way for humans to assimilate voluminous information about the
// continuously changing program state"), and the reason SDL attaches a
// unique identifier and owner to every tuple instance.
//
// A Recorder subscribes to a store's commit hooks and keeps an append-only
// event log: one event per tuple assertion or retraction, stamped with the
// commit version and owning process. The log supports per-tuple histories,
// per-process activity summaries, full-state replay at any past version,
// and text/JSON export.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Kind distinguishes assertion from retraction events.
type Kind uint8

// Event kinds.
const (
	Assert Kind = iota + 1
	Retract
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Assert:
		return "assert"
	case Retract:
		return "retract"
	default:
		return "?"
	}
}

// Event is one tuple assertion or retraction.
type Event struct {
	Seq     uint64          `json:"seq"`
	Version uint64          `json:"version"`
	Kind    Kind            `json:"kind"`
	ID      tuple.ID        `json:"tupleId"`
	Owner   tuple.ProcessID `json:"owner"` // owner of the tuple instance
	Actor   tuple.ProcessID `json:"actor"` // process that issued the commit
	Tuple   string          `json:"tuple"` // rendered tuple
	fields  tuple.Tuple     // retained for replay
}

// Recorder is an append-only commit log. Attach it to a store before the
// store is shared between goroutines.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
	limit  int // 0 = unbounded
}

// NewRecorder returns a recorder keeping at most limit events (0 =
// unbounded). When the limit is reached, recording stops (the prefix of
// the run is kept — replay needs a prefix, not a suffix).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Attach subscribes the recorder to the store's commits.
func (r *Recorder) Attach(s *dataspace.Store) {
	s.OnCommit(r.observe)
}

func (r *Recorder) observe(rec dataspace.CommitRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	add := func(kind Kind, inst dataspace.Instance) {
		if r.limit > 0 && len(r.events) >= r.limit {
			return
		}
		r.seq++
		r.events = append(r.events, Event{
			Seq:     r.seq,
			Version: rec.Version,
			Kind:    kind,
			ID:      inst.ID,
			Owner:   inst.Owner,
			Actor:   rec.Owner,
			Tuple:   inst.Tuple.String(),
			fields:  inst.Tuple,
		})
	}
	for _, inst := range rec.Deleted {
		add(Retract, inst)
	}
	for _, inst := range rec.Inserted {
		add(Assert, inst)
	}
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the log.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// History returns the events affecting one tuple instance, in order —
// typically an assert followed (possibly) by a retract.
func (r *Recorder) History(id tuple.ID) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.ID == id {
			out = append(out, e)
		}
	}
	return out
}

// OwnerActivity summarizes per-process activity: tuples asserted and
// retractions performed (as the committing actor).
type OwnerActivity struct {
	Process  tuple.ProcessID
	Asserts  int
	Retracts int
}

// ByActor aggregates activity per committing process, sorted by process ID.
func (r *Recorder) ByActor() []OwnerActivity {
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := make(map[tuple.ProcessID]*OwnerActivity)
	for _, e := range r.events {
		a := agg[e.Actor]
		if a == nil {
			a = &OwnerActivity{Process: e.Actor}
			agg[e.Actor] = a
		}
		if e.Kind == Assert {
			a.Asserts++
		} else {
			a.Retracts++
		}
	}
	out := make([]OwnerActivity, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Process < out[j].Process })
	return out
}

// ReplayAt reconstructs the multiset of tuple instances present after the
// given version committed (version 0 = empty initial dataspace). Only
// meaningful when the recorder observed the store from its creation.
//
// Commits on disjoint shard sets run concurrently, so the log's append
// order is not globally version-sorted — events are filtered by version,
// not cut at the first larger one. The reconstruction is still exact:
// events for any one tuple instance (and any one shard) are version-ordered
// because hooks run under the commit's shard write locks.
func (r *Recorder) ReplayAt(version uint64) map[tuple.ID]tuple.Tuple {
	r.mu.Lock()
	defer r.mu.Unlock()
	state := make(map[tuple.ID]tuple.Tuple)
	for _, e := range r.events {
		if e.Version > version {
			continue
		}
		switch e.Kind {
		case Assert:
			state[e.ID] = e.fields
		case Retract:
			delete(state, e.ID)
		}
	}
	return state
}

// WriteText renders the log as one line per event.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, e := range r.Events() {
		_, err := fmt.Fprintf(w, "%6d v%-6d %-7s #%-6d by P%-4d %s\n",
			e.Seq, e.Version, e.Kind, e.ID, e.Actor, e.Tuple)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the log as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Events())
}
