package sched

import (
	"strings"
	"sync"
	"testing"
)

func TestDecideDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 100; seed++ {
		for p := Point(0); p < NumPoints; p++ {
			for seq := uint64(0); seq < 50; seq++ {
				a := Decide(seed, p, seq)
				b := Decide(seed, p, seq)
				if a != b {
					t.Fatalf("Decide(%d,%v,%d) unstable: %x vs %x", seed, p, seq, a, b)
				}
				if a == 0 {
					t.Fatalf("Decide(%d,%v,%d) = 0 (reserved)", seed, p, seq)
				}
			}
		}
	}
}

func TestDecideSeedsDiffer(t *testing.T) {
	// Different seeds must produce different streams (overwhelmingly).
	same := 0
	for seq := uint64(0); seq < 1000; seq++ {
		if Decide(1, PointTxnExec, seq) == Decide(2, PointTxnExec, seq) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collide on %d/1000 draws", same)
	}
}

func TestNilControllerNoOps(t *testing.T) {
	var c *Controller
	c.Yield(PointTxnExec)
	if p := c.Perm(PointWakeupDispatch, 5); p != nil {
		t.Errorf("nil Perm = %v", p)
	}
	if c.SpuriousWakeup() || c.ForceRetry() || c.DelaySignal() || c.RacyVersion() {
		t.Error("nil controller injected a fault")
	}
	if n := c.LockSpike(); n != 0 {
		t.Errorf("nil LockSpike = %d", n)
	}
	if c.Seed() != 0 || c.Decisions() != 0 || c.Fingerprint() != 0 {
		t.Error("nil controller reports nonzero state")
	}
	c.SetLimit(5)
	c.EnableTrace(0)
	if tr := c.Trace(); tr != nil {
		t.Errorf("nil Trace = %v", tr)
	}
}

func TestControllerStreamReproduces(t *testing.T) {
	// Two controllers on the same seed consuming the same (point, seq)
	// pattern — even from concurrent goroutines — end with the same
	// fingerprint and the same per-point decision values.
	run := func() (*Controller, uint64) {
		c := New(42, Heavy())
		c.EnableTrace(0)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					c.Yield(PointTxnExec)
					c.Perm(PointWakeupDispatch, 4)
					c.ForceRetry()
				}
			}()
		}
		wg.Wait()
		return c, c.Fingerprint()
	}
	c1, fp1 := run()
	c2, fp2 := run()
	if fp1 != fp2 {
		t.Fatalf("fingerprints differ: %x vs %x", fp1, fp2)
	}
	if c1.Decisions() != c2.Decisions() {
		t.Fatalf("decision counts differ: %d vs %d", c1.Decisions(), c2.Decisions())
	}
	// The traces contain the same (point, seq, value) triples, possibly in
	// different order; index one and compare.
	want := map[[2]uint64]uint64{}
	for _, d := range c1.Trace() {
		want[[2]uint64{uint64(d.Point), d.Seq}] = d.Value
	}
	for _, d := range c2.Trace() {
		if v, ok := want[[2]uint64{uint64(d.Point), d.Seq}]; !ok || v != d.Value {
			t.Fatalf("decision %v#%d: value %x, want %x (ok=%v)", d.Point, d.Seq, d.Value, v, ok)
		}
	}
}

func TestPermValidity(t *testing.T) {
	c := New(7, Faults{Shuffle: 255})
	got := 0
	for i := 0; i < 100; i++ {
		p := c.Perm(PointConsensusClaim, 6)
		if p == nil {
			continue
		}
		got++
		if len(p) != 6 {
			t.Fatalf("perm length %d", len(p))
		}
		seen := map[int]bool{}
		for _, v := range p {
			if v < 0 || v >= 6 || seen[v] {
				t.Fatalf("invalid perm %v", p)
			}
			seen[v] = true
		}
	}
	if got == 0 {
		t.Error("Shuffle=255 never produced a permutation")
	}
	if p := c.Perm(PointConsensusClaim, 1); p != nil {
		t.Errorf("Perm(n=1) = %v, want nil", p)
	}
}

func TestLimitCutsDecisions(t *testing.T) {
	c := New(9, Faults{Shuffle: 255})
	c.SetLimit(10)
	active := 0
	for i := 0; i < 100; i++ {
		if c.Perm(PointWakeupDispatch, 4) != nil {
			active++
		}
	}
	if active > 10 {
		t.Errorf("limit 10 but %d active decisions", active)
	}
	if c.Decisions() != 100 {
		t.Errorf("Decisions() = %d, want 100 (draws beyond limit still count)", c.Decisions())
	}
	// Beyond the limit the fingerprint must stop changing.
	fp := c.Fingerprint()
	c.Perm(PointWakeupDispatch, 4)
	if c.Fingerprint() != fp {
		t.Error("fingerprint changed beyond the limit")
	}
}

func TestFaultProbabilities(t *testing.T) {
	// Probability 0 never fires; 255 fires nearly always.
	never := New(3, Faults{})
	for i := 0; i < 200; i++ {
		if never.SpuriousWakeup() || never.ForceRetry() || never.DelaySignal() || never.RacyVersion() {
			t.Fatal("zero-probability fault fired")
		}
		if never.LockSpike() != 0 {
			t.Fatal("zero-probability lock spike fired")
		}
	}
	always := New(3, Faults{SpuriousWakeup: 255, ForceRetry: 255, DelaySignal: 255, LockSpike: 255, RacyVersionBug: 255})
	hits := 0
	for i := 0; i < 200; i++ {
		if always.SpuriousWakeup() {
			hits++
		}
		if always.ForceRetry() {
			hits++
		}
		if always.LockSpike() > 0 {
			hits++
		}
		if always.RacyVersion() {
			hits++
		}
	}
	if hits < 700 { // 800 draws at p≈255/256
		t.Errorf("high-probability faults fired only %d/800 times", hits)
	}
}

func TestTraceFormatting(t *testing.T) {
	c := New(5, Heavy())
	c.EnableTrace(16)
	for i := 0; i < 40; i++ {
		c.Yield(PointProcStep)
		c.ForceRetry()
	}
	tr := c.Trace()
	if len(tr) != 16 {
		t.Fatalf("trace len %d, want cap 16", len(tr))
	}
	text := FormatTrace(tr)
	if !strings.Contains(text, "proc-step#0=") {
		t.Errorf("FormatTrace missing first decision:\n%s", text)
	}
	sum := TraceSummary(tr)
	if !strings.Contains(sum, "proc-step:") || !strings.Contains(sum, "txn-retry:") {
		t.Errorf("TraceSummary = %q", sum)
	}
}

func TestPointStrings(t *testing.T) {
	seen := map[string]bool{}
	for p := Point(0); p < NumPoints; p++ {
		s := p.String()
		if s == "unknown" || seen[s] {
			t.Errorf("point %d has bad/duplicate name %q", p, s)
		}
		seen[s] = true
	}
	if NumPoints.String() != "unknown" {
		t.Error("out-of-range point should stringify as unknown")
	}
}
