package sched

import (
	"fmt"
	"strings"
)

// FormatTrace renders a decision stream compactly, one decision per line,
// as "point#seq=value". Intended for failure reports: together with the
// seed it pins down exactly which perturbations fired.
func FormatTrace(ds []Decision) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%s#%d=%x\n", d.Point, d.Seq, d.Value)
	}
	return b.String()
}

// TraceSummary counts decisions per point: "txn-exec:12 lock-shard:40 ...".
// Cheaper to print than a full trace and usually enough to see where a
// failing schedule spent its decisions.
func TraceSummary(ds []Decision) string {
	var counts [NumPoints]int
	for _, d := range ds {
		if d.Point < NumPoints {
			counts[d.Point]++
		}
	}
	var parts []string
	for p := Point(0); p < NumPoints; p++ {
		if counts[p] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", p, counts[p]))
		}
	}
	return strings.Join(parts, " ")
}
