// Package explore drives the SDL runtime through adversarial schedules and
// checks every run against the reference semantics.
//
// For each (program, seed) pair it assembles a fresh system — store,
// transaction engine, consensus manager, process runtime — with a
// deterministic sched.Controller installed, runs the program to
// completion, and then verifies:
//
//   - serializability: the commit log's versions form the gap-free
//     sequence 1..n and replay cleanly through refmodel (every retraction
//     references an instance the equivalent serial history contains);
//   - state equivalence: the serial replay's final content multiset equals
//     the store's actual final contents;
//   - all-or-nothing consensus: every commit inserting a community's
//     marker tuples inserts the whole community's worth, never a partial
//     fire;
//   - the program's own final-state invariant.
//
// A failing seed is shrunk (Shrink) to the smallest active-decision budget
// that still fails, giving a minimal perturbation prefix to replay with
// `sdlexplore -seed N -limit L` (or `sdli -sched-seed N`).
package explore

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/sdl-lang/sdl/internal/analysis/dataflow"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/refmodel"
	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/trace"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/wal"
)

// Options configures an exploration campaign.
type Options struct {
	// Seeds is the number of seeds to explore per program (default 100).
	Seeds int
	// StartSeed is the first seed (campaigns partition the seed space by
	// starting at different offsets).
	StartSeed uint64
	// Faults is the perturbation profile (zero = schedule decisions are
	// drawn but no faults fire).
	Faults sched.Faults
	// Shards fixes the store's shard count; 0 derives it from the seed
	// (1, 2, 4, or 8 — reproducible, since it is a pure function of seed).
	Shards int
	// Mode fixes the concurrency-control mode; 0 derives it from the seed.
	Mode txn.Mode
	// Timeout bounds one run (default 30s; runs normally take
	// milliseconds, so hitting it is itself a liveness failure).
	Timeout time.Duration
	// Programs selects the corpus (nil = Corpus()).
	Programs []Program
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// MaxFailures stops the campaign early after this many failures
	// (0 = collect them all).
	MaxFailures int
}

func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 100
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Programs == nil {
		o.Programs = Corpus()
	}
	return o
}

// configFor derives the per-seed system configuration. All knobs are pure
// functions of the seed, so a reported seed reproduces its configuration.
func configFor(seed uint64, o Options) (shards int, mode txn.Mode, reactive, secondary bool) {
	h := sched.Decide(seed, sched.NumPoints-1, 0x5eed)
	shards = o.Shards
	if shards == 0 {
		shards = 1 << (h % 4) // 1, 2, 4, 8
	}
	mode = o.Mode
	if mode == 0 {
		if h&(1<<16) != 0 {
			mode = txn.Optimistic
		} else {
			mode = txn.Coarse
		}
	}
	// The reactive delta-wakeup path and its full re-query ablation must
	// both survive every schedule, so the campaign splits seeds between
	// them. Same for the secondary-index path and its arity-scan ablation.
	reactive = h&(1<<17) != 0
	secondary = h&(1<<18) != 0
	return shards, mode, reactive, secondary
}

// Failure describes one failing (program, seed) pair.
type Failure struct {
	Program   string
	Seed      uint64
	Shards    int
	Mode      txn.Mode
	Reactive  bool
	Secondary bool
	Err       error
	// Decisions is the number of decisions the failing run drew.
	Decisions int64
	// MinLimit is the smallest active-decision budget that still fails
	// (-1 until Shrink has run).
	MinLimit int64
	// Trace is the active decision prefix of the shrunk failing run.
	Trace []sched.Decision
}

func (f Failure) String() string {
	s := fmt.Sprintf("%s: seed %d (shards=%d mode=%s reactive=%t secondary=%t): %v", f.Program, f.Seed, f.Shards, f.Mode, f.Reactive, f.Secondary, f.Err)
	if f.MinLimit >= 0 {
		s += fmt.Sprintf("\n  shrunk to %d active decisions (of %d drawn); replay: sdlexplore -program %s -seed %d -limit %d",
			f.MinLimit, f.Decisions, f.Program, f.Seed, f.MinLimit)
		if sum := sched.TraceSummary(f.Trace); sum != "" {
			s += "\n  decisions: " + sum
		}
	}
	return s
}

// Report summarizes a campaign.
type Report struct {
	Runs     int
	Programs int
	Failures []Failure
}

// Run explores opts.Seeds seeds per corpus program. Every failing seed is
// shrunk before being reported.
func Run(opts Options) Report {
	opts = opts.withDefaults()
	rep := Report{Programs: len(opts.Programs)}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, p := range opts.Programs {
		failed := 0
		for i := 0; i < opts.Seeds; i++ {
			seed := opts.StartSeed + uint64(i)
			decisions, _, err := runOnce(p, seed, -1, false, opts)
			rep.Runs++
			if err == nil {
				continue
			}
			failed++
			shards, mode, reactive, secondary := configFor(seed, opts)
			f := Failure{Program: p.Name, Seed: seed, Shards: shards, Mode: mode,
				Reactive: reactive, Secondary: secondary, Err: err, Decisions: decisions, MinLimit: -1}
			logf("FAIL %s seed=%d: %v (shrinking...)", p.Name, seed, err)
			f = Shrink(p, f, opts)
			rep.Failures = append(rep.Failures, f)
			if opts.MaxFailures > 0 && len(rep.Failures) >= opts.MaxFailures {
				return rep
			}
		}
		if failed == 0 {
			logf("%-16s %d seeds ok (%d..%d)", p.Name, opts.Seeds, opts.StartSeed, opts.StartSeed+uint64(opts.Seeds)-1)
		} else {
			logf("%-16s %d/%d seeds FAILED (%d..%d)", p.Name, failed, opts.Seeds, opts.StartSeed, opts.StartSeed+uint64(opts.Seeds)-1)
		}
	}
	return rep
}

// RunSeed runs one (program, seed) pair with full verification. limit
// bounds the active decisions (< 0 = unlimited). It returns the number of
// decisions the run drew.
func RunSeed(p Program, seed uint64, limit int64, opts Options) (int64, error) {
	opts = opts.withDefaults()
	decisions, _, err := runOnce(p, seed, limit, false, opts)
	return decisions, err
}

// runOnce assembles a fresh system under a seed-deterministic controller,
// runs the program, and verifies the run.
func runOnce(p Program, seed uint64, limit int64, traced bool, opts Options) (int64, []sched.Decision, error) {
	shards, mode, reactive, secondary := configFor(seed, opts)
	c := sched.New(seed, opts.Faults)
	if limit >= 0 {
		c.SetLimit(limit)
	}
	if traced {
		c.EnableTrace(0)
	}
	store := dataspace.New(dataspace.WithShards(shards), dataspace.WithScheduler(c),
		dataspace.WithReactive(reactive), dataspace.WithSecondaryIndex(secondary))
	clog := trace.NewCommitLog()
	clog.Attach(store)

	// Durable programs run with a WAL attached; the sync mode is a pure
	// function of the seed so a reported seed reproduces its fsync timing.
	var (
		wlog   *wal.Log
		walDir string
	)
	if p.Durable {
		var err error
		walDir, err = os.MkdirTemp("", "sdl-explore-wal-")
		if err != nil {
			return 0, nil, fmt.Errorf("wal dir: %w", err)
		}
		defer os.RemoveAll(walDir)
		syncMode := wal.SyncMode(sched.Decide(seed, sched.PointWalSync, 0) % 3)
		wlog, err = wal.Open(walDir, wal.Options{Sync: syncMode})
		if err != nil {
			return 0, nil, fmt.Errorf("wal open: %w", err)
		}
		if _, err := wlog.Recover(store); err != nil {
			return 0, nil, fmt.Errorf("wal recover (empty): %w", err)
		}
		store.SetDurable(wlog)
	}

	engine := txn.New(store, mode)
	rt := process.NewRuntime(engine, nil)

	// Compile through the interprocedural footprint refiner so the
	// exploration campaign exercises the same refined fast-path admissions
	// (Ground/GroundKeys) that production runs take.
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	runErr := func() error {
		prog, err := lang.Parse(p.Src)
		if err != nil {
			return err
		}
		compiled, _, err := dataflow.Compile(prog)
		if err != nil {
			return err
		}
		return compiled.Run(ctx, rt)
	}()
	cancel()
	rt.Shutdown()
	rt.Consensus().Close()

	var tr []sched.Decision
	if traced {
		tr = c.Trace()
	}
	if runErr != nil {
		if wlog != nil {
			wlog.Close()
		}
		return c.Decisions(), tr, fmt.Errorf("run: %w", runErr)
	}
	verr := verify(p, store, clog)
	if verr == nil && wlog != nil {
		verr = verifyDurable(seed, shards, wlog, walDir, clog)
	} else if wlog != nil {
		wlog.Close()
	}
	return c.Decisions(), tr, verr
}

// verifyDurable closes the log, simulates a crash by truncating the tail
// segment at a seed-derived byte offset (sched.PointWalCrash), and checks
// the durability contract on the damaged directory:
//
//   - every record ReadState returns must be byte-identical in effect to
//     the commit-log record holding the same version (the log never
//     invents or mangles history);
//   - the surviving versions are strictly increasing, and every version
//     missing below their maximum commuted out (enforced by ReplayFrom
//     replaying cleanly);
//   - recovering a fresh store from the damaged directory reproduces the
//     reference replay's multiset exactly.
func verifyDurable(seed uint64, shards int, wlog *wal.Log, dir string, clog *trace.CommitLog) error {
	if err := wlog.Close(); err != nil {
		return fmt.Errorf("wal close: %w", err)
	}
	segs, err := wal.SegmentFiles(dir)
	if err != nil || len(segs) == 0 {
		return fmt.Errorf("wal segments: %v (%d files)", err, len(segs))
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		return err
	}
	// Cut anywhere from "right after the header" to "no damage at all".
	span := info.Size() - wal.SegmentHeaderLen + 1
	cut := wal.SegmentHeaderLen + int64(sched.Decide(seed, sched.PointWalCrash, 0)%uint64(span))
	if err := os.Truncate(last, cut); err != nil {
		return fmt.Errorf("crash cut: %w", err)
	}

	st, err := wal.ReadState(dir)
	if err != nil {
		return fmt.Errorf("post-crash read: %w", err)
	}
	byVersion := map[uint64]dataspace.CommitRecord{}
	for _, rec := range clog.Commits() {
		byVersion[rec.Version] = rec
	}
	for _, rec := range st.Records {
		want, ok := byVersion[rec.Version]
		if !ok {
			return fmt.Errorf("durability: recovered version %d never committed", rec.Version)
		}
		if !sameEffects(rec, want) {
			return fmt.Errorf("durability: recovered version %d diverges from its commit record", rec.Version)
		}
	}
	model, err := refmodel.ReplayFrom(st.Base, st.CheckpointVersion, st.Records)
	if err != nil {
		return fmt.Errorf("durability: surviving log does not replay: %w", err)
	}

	s2 := dataspace.New(dataspace.WithShards(shards))
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return fmt.Errorf("post-crash open: %w", err)
	}
	defer l2.Close()
	if _, err := l2.Recover(s2); err != nil {
		return fmt.Errorf("post-crash recover: %w", err)
	}
	if !refmodel.SameMultiset(model.Multiset(), refmodel.MultisetOf(s2)) {
		return fmt.Errorf("durability: recovered store diverges from reference replay of the surviving log")
	}
	return nil
}

func sameEffects(a, b dataspace.CommitRecord) bool {
	if len(a.Inserted) != len(b.Inserted) || len(a.Deleted) != len(b.Deleted) {
		return false
	}
	for i := range a.Inserted {
		if a.Inserted[i].ID != b.Inserted[i].ID || !a.Inserted[i].Tuple.Equal(b.Inserted[i].Tuple) {
			return false
		}
	}
	for i := range a.Deleted {
		if a.Deleted[i].ID != b.Deleted[i].ID || !a.Deleted[i].Tuple.Equal(b.Deleted[i].Tuple) {
			return false
		}
	}
	return true
}

// verify runs the post-run checks described in the package comment.
func verify(p Program, store *dataspace.Store, clog *trace.CommitLog) error {
	recs := clog.Commits()
	model, err := refmodel.Replay(recs)
	if err != nil {
		return fmt.Errorf("serializability: %w", err)
	}
	if got, want := refmodel.MultisetOf(store), model.Multiset(); !refmodel.SameMultiset(got, want) {
		return fmt.Errorf("final state diverges from the serial replay of the commit log (store %d distinct, replay %d distinct)",
			len(got), len(want))
	}
	if p.MarkerLead != "" {
		for _, rec := range recs {
			n := 0
			for _, inst := range rec.Inserted {
				if isMarker(inst.Tuple, p.MarkerLead) {
					n++
				}
			}
			if n != 0 && n != p.MarkerCount {
				return fmt.Errorf("consensus fired partially: commit v%d inserts %d %q markers, want %d (all-or-nothing)",
					rec.Version, n, p.MarkerLead, p.MarkerCount)
			}
		}
	}
	if p.Check != nil {
		final := make([]tuple.Tuple, 0, store.Len())
		for _, inst := range store.All() {
			final = append(final, inst.Tuple)
		}
		if err := p.Check(final); err != nil {
			return fmt.Errorf("invariant: %w", err)
		}
	}
	return nil
}

func isMarker(t tuple.Tuple, lead string) bool {
	if t.Arity() == 0 {
		return false
	}
	a, ok := t.Field(0).AsAtom()
	return ok && a == lead
}

// shrinkAttempts is how many runs may vote on whether a budget still
// fails: the decision stream is deterministic, but the goroutine schedule
// consuming it is not, so a budget's failure is re-tried a few times
// before it is declared passing.
const shrinkAttempts = 4

// Shrink minimizes a failing seed's active-decision budget: decisions
// beyond the budget return "no perturbation", so the smallest failing
// budget is the minimal perturbation prefix that still triggers the
// failure. Binary search over the budget, with retries at each probe
// (see shrinkAttempts). The shrunk failure carries the failing prefix's
// decision trace.
func Shrink(p Program, f Failure, opts Options) Failure {
	opts = opts.withDefaults()
	fails := func(limit int64) (int64, []sched.Decision, error) {
		var (
			lastTrace []sched.Decision
			lastDec   int64
		)
		for a := 0; a < shrinkAttempts; a++ {
			dec, tr, err := runOnce(p, f.Seed, limit, true, opts)
			if err != nil {
				return dec, tr, err
			}
			lastDec, lastTrace = dec, tr
		}
		return lastDec, lastTrace, nil
	}

	// The failure was observed with an unlimited budget; bound the search
	// by the decisions that run drew.
	lo, hi := int64(0), f.Decisions
	if _, _, err := fails(hi); err == nil {
		// The failure did not reproduce even unshrunk; report it as-is.
		return f
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if _, _, err := fails(mid); err != nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Final confirmation at the minimal budget; keep its trace and error.
	dec, tr, err := fails(lo)
	if err == nil {
		// Noise at the boundary: fall back to the full budget.
		lo = f.Decisions
		dec, tr, err = fails(lo)
		if err == nil {
			return f
		}
	}
	f.MinLimit = lo
	f.Err = err
	// Decision counts vary slightly run to run (retries draw extra);
	// keep the largest observed so MinLimit <= Decisions always holds.
	if dec > f.Decisions {
		f.Decisions = dec
	}
	f.Trace = tr
	return f
}
