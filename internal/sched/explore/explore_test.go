package explore

import (
	"strings"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/sched"
)

// testSeeds keeps the in-gate run quick; make explore runs the full
// campaign (1000+ seeds).
func testSeeds(t *testing.T) int {
	if testing.Short() {
		return 2
	}
	return 5
}

func TestExploreCleanSweepLightFaults(t *testing.T) {
	rep := Run(Options{
		Seeds:   testSeeds(t),
		Faults:  sched.Light(),
		Timeout: time.Minute,
		Log:     t.Logf,
	})
	if len(rep.Failures) != 0 {
		for _, f := range rep.Failures {
			t.Errorf("%s", f)
		}
	}
	if want := testSeeds(t) * len(Corpus()); rep.Runs != want {
		t.Errorf("Runs = %d, want %d", rep.Runs, want)
	}
}

func TestExploreHeavyFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy profile skipped in -short")
	}
	// The heavy profile on the most schedule-sensitive programs.
	var subset []Program
	for _, name := range []string{"micro-upsert", "micro-transfer", "micro-consensus", "barrier", "sum1"} {
		p, ok := Find(name)
		if !ok {
			t.Fatalf("corpus program %q missing", name)
		}
		subset = append(subset, p)
	}
	rep := Run(Options{
		Seeds:     4,
		StartSeed: 1000,
		Faults:    sched.Heavy(),
		Timeout:   time.Minute,
		Programs:  subset,
		Log:       t.Logf,
	})
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
}

// TestDecisionStreamReproduces pins the replay guarantee: two runs of the
// same (program, seed) draw identical decision values at every (point,
// seq) position, regardless of how the OS scheduler interleaves the
// goroutines consuming them.
func TestDecisionStreamReproduces(t *testing.T) {
	p, ok := Find("micro-upsert")
	if !ok {
		t.Fatal("micro-upsert missing")
	}
	opts := Options{Faults: sched.Heavy(), Timeout: time.Minute}.withDefaults()
	_, tr1, err := runOnce(p, 77, -1, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, tr2, err := runOnce(p, 77, -1, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr1) == 0 || len(tr2) == 0 {
		t.Fatal("no decisions recorded")
	}
	values := map[[2]uint64]uint64{}
	for _, d := range tr1 {
		values[[2]uint64{uint64(d.Point), d.Seq}] = d.Value
	}
	for _, d := range tr2 {
		if v, seen := values[[2]uint64{uint64(d.Point), d.Seq}]; seen && v != d.Value {
			t.Fatalf("decision %v#%d differs across runs: %x vs %x", d.Point, d.Seq, v, d.Value)
		}
	}
}

// TestInjectedBugCaughtAndShrunk is the harness's teeth: with the
// test-only racy-version fault enabled, exploration must find a
// serializability violation, shrink it to a minimal active-decision
// budget, and the reported (seed, limit) pair must replay the failure.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	p, ok := Find("micro-parallel")
	if !ok {
		t.Fatal("micro-parallel missing")
	}
	opts := Options{
		Seeds:       30,
		Faults:      sched.Faults{Yield: 64, RacyVersionBug: 255},
		Shards:      8, // disjoint-footprint commits must be able to overlap
		Timeout:     time.Minute,
		Programs:    []Program{p},
		MaxFailures: 1,
		Log:         t.Logf,
	}
	rep := Run(opts)
	if len(rep.Failures) == 0 {
		t.Fatal("injected racy-version bug survived 30 explored seeds undetected")
	}
	f := rep.Failures[0]
	if !strings.Contains(f.Err.Error(), "serializability") {
		t.Errorf("failure is not a serializability violation: %v", f.Err)
	}
	if f.MinLimit < 0 {
		t.Fatalf("failure was not shrunk: %+v", f)
	}
	if f.MinLimit > f.Decisions {
		t.Errorf("shrunk budget %d exceeds decisions drawn %d", f.MinLimit, f.Decisions)
	}
	if len(f.Trace) == 0 {
		t.Error("shrunk failure carries no decision trace")
	}
	// The replay pair must reproduce the failure (the schedule is
	// perturbation-driven, so allow a few attempts).
	reproduced := false
	for i := 0; i < 8 && !reproduced; i++ {
		if _, err := RunSeed(p, f.Seed, f.MinLimit, opts); err != nil {
			reproduced = true
		}
	}
	if !reproduced {
		t.Errorf("seed %d limit %d did not reproduce the failure", f.Seed, f.MinLimit)
	}
	t.Logf("caught and shrunk: %s", f)
}

// TestDurableCrashCutsExplored drives micro-durable across seeds: each
// run attaches a WAL (sync mode seed-derived), truncates the log at a
// seed-derived cut after the run, and verifies recovery against the
// reference replay. Any failure here is a durability bug, not noise.
func TestDurableCrashCutsExplored(t *testing.T) {
	p, ok := Find("micro-durable")
	if !ok {
		t.Fatal("micro-durable missing")
	}
	rep := Run(Options{
		Seeds:    testSeeds(t) * 3,
		Faults:   sched.Light(),
		Timeout:  time.Minute,
		Programs: []Program{p},
		Log:      t.Logf,
	})
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
}

// TestDurableInjectedBugShrinks pins that the shrinking loop works with
// the WAL attached: the racy-version fault must be caught on the durable
// program and the reported (seed, limit) pair must replay through the
// full open-recover-run-crash-verify cycle.
func TestDurableInjectedBugShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed fault campaign skipped in -short")
	}
	p, ok := Find("micro-durable")
	if !ok {
		t.Fatal("micro-durable missing")
	}
	opts := Options{
		Seeds:       30,
		Faults:      sched.Faults{Yield: 64, RacyVersionBug: 255},
		Shards:      8,
		Timeout:     time.Minute,
		Programs:    []Program{p},
		MaxFailures: 1,
		Log:         t.Logf,
	}
	rep := Run(opts)
	if len(rep.Failures) == 0 {
		t.Fatal("injected racy-version bug survived on the durable program")
	}
	f := rep.Failures[0]
	if f.MinLimit < 0 {
		t.Fatalf("failure was not shrunk: %+v", f)
	}
	reproduced := false
	for i := 0; i < 8 && !reproduced; i++ {
		if _, err := RunSeed(p, f.Seed, f.MinLimit, opts); err != nil {
			reproduced = true
		}
	}
	if !reproduced {
		t.Errorf("seed %d limit %d did not reproduce through the WAL path", f.Seed, f.MinLimit)
	}
	t.Logf("caught and shrunk through WAL: %s", f)
}

// TestVerifyCatchesBadMarkers exercises the all-or-nothing checker
// directly: a partial-fire commit must be rejected.
func TestShrinkKeepsUnreproducibleFailure(t *testing.T) {
	// A failure that does not reproduce (clean program, no faults) is
	// returned unshrunk rather than dropped.
	p, ok := Find("micro-fair")
	if !ok {
		t.Fatal("micro-fair missing")
	}
	f := Failure{Program: p.Name, Seed: 3, Err: errFake, Decisions: 100, MinLimit: -1}
	got := Shrink(p, f, Options{Timeout: time.Minute})
	if got.MinLimit != -1 {
		t.Errorf("unreproducible failure was shrunk: %+v", got)
	}
	if got.Err != errFake {
		t.Errorf("original error replaced: %v", got.Err)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake failure" }

func TestConfigForIsPure(t *testing.T) {
	sawReactive, sawRequery := false, false
	sawIndexed, sawScan := false, false
	for seed := uint64(0); seed < 64; seed++ {
		s1, m1, r1, x1 := configFor(seed, Options{})
		s2, m2, r2, x2 := configFor(seed, Options{})
		if s1 != s2 || m1 != m2 || r1 != r2 || x1 != x2 {
			t.Fatalf("configFor(%d) unstable", seed)
		}
		if s1 < 1 || s1 > 8 {
			t.Errorf("configFor(%d) shards = %d", seed, s1)
		}
		if r1 {
			sawReactive = true
		} else {
			sawRequery = true
		}
		if x1 {
			sawIndexed = true
		} else {
			sawScan = true
		}
	}
	if !sawReactive || !sawRequery {
		t.Errorf("seed split misses an ablation arm: reactive=%t requery=%t", sawReactive, sawRequery)
	}
	if !sawIndexed || !sawScan {
		t.Errorf("seed split misses a secondary-index arm: indexed=%t scan=%t", sawIndexed, sawScan)
	}
	// Overrides win.
	s, m, _, _ := configFor(9, Options{Shards: 2, Mode: 1})
	if s != 2 || m != 1 {
		t.Errorf("overrides ignored: shards=%d mode=%v", s, m)
	}
}

func TestCorpusComplete(t *testing.T) {
	want := []string{"barrier", "pairing", "philosophers", "proplist", "sort", "sum1", "sum3",
		"micro-upsert", "micro-commute", "micro-transfer", "micro-consensus", "micro-parallel",
		"micro-durable", "micro-fair", "micro-reactive", "micro-index"}
	got := Corpus()
	if len(got) != len(want) {
		t.Fatalf("corpus has %d programs, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("corpus[%d] = %s, want %s", i, got[i].Name, name)
		}
		if got[i].Src == "" || got[i].Check == nil {
			t.Errorf("corpus[%d] %s incomplete", i, name)
		}
	}
	if _, ok := Find("no-such-program"); ok {
		t.Error("Find invented a program")
	}
}
