package explore

import (
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/sched"
)

// fairnessStepBound caps the scheduler decisions one micro-fair run may
// draw. The program issues a handful of transactions; even under the heavy
// fault profile (spurious wakeups forcing the Waiter to re-evaluate) a run
// stays in the hundreds of decisions. Hitting the bound would mean the
// indefinitely-enabled delayed transaction is being starved — a weak-
// fairness violation (paper §2: a transaction that remains enabled is
// eventually executed).
const fairnessStepBound = 50_000

// TestWeakFairnessUnderExploration pins the paper's weak-fairness claim:
// the Waiter's delayed transaction is enabled in the initial configuration
// and nothing ever disables it, so under EVERY explored schedule — heavy
// yields, spurious wakeups, delayed consensus signals, forced retries —
// it must commit (the corpus check demands <done, 1> in the final state)
// within a bounded number of scheduler steps.
func TestWeakFairnessUnderExploration(t *testing.T) {
	p, ok := Find("micro-fair")
	if !ok {
		t.Fatal("micro-fair missing")
	}
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	opts := Options{Faults: sched.Heavy(), Timeout: time.Minute}
	for i := 0; i < seeds; i++ {
		seed := uint64(2000 + i)
		decisions, err := RunSeed(p, seed, -1, opts)
		if err != nil {
			t.Errorf("seed %d: delayed transaction did not commit: %v", seed, err)
			continue
		}
		if decisions > fairnessStepBound {
			t.Errorf("seed %d: run drew %d scheduler decisions (bound %d) — starvation suspected",
				seed, decisions, fairnessStepBound)
		}
	}
}
