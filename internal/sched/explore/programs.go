package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"github.com/sdl-lang/sdl/internal/tuple"
)

// Program is one exploration subject: an SDL source plus the invariants a
// run must satisfy on top of the universal serializability checks.
type Program struct {
	// Name identifies the program in reports and -program selectors.
	Name string
	// Src is the SDL source.
	Src string
	// Check validates the final dataspace contents (nil = no content check
	// beyond the refmodel multiset comparison).
	Check func(final []tuple.Tuple) error
	// MarkerLead and MarkerCount configure the all-or-nothing consensus
	// check: every commit inserting any tuple whose leading field is the
	// atom MarkerLead must insert exactly MarkerCount of them — the
	// composite fire of a whole community, never a partial one. Empty
	// MarkerLead disables the check.
	MarkerLead  string
	MarkerCount int
	// Durable runs the program with a write-ahead log attached and, after
	// the normal verification, simulates a crash: the log's tail is
	// truncated at a seed-derived cut (sched.PointWalCrash), the surviving
	// records are checked to be a consistent subset of the commit log, and
	// recovery from the damaged directory must reproduce their reference
	// replay exactly.
	Durable bool
}

// exact returns a Check asserting the final contents equal want, a
// multiset keyed by the tuple rendering (e.g. "<ready, 3>" → 1).
func exact(want map[string]int) func(final []tuple.Tuple) error {
	return func(final []tuple.Tuple) error {
		got := make(map[string]int, len(final))
		for _, t := range final {
			got[t.String()]++
		}
		for k, n := range want {
			if got[k] != n {
				return fmt.Errorf("final state has %d of %s, want %d%s", got[k], k, n, diffSuffix(got, want))
			}
		}
		for k := range got {
			if want[k] == 0 {
				return fmt.Errorf("final state has unexpected %s%s", k, diffSuffix(got, want))
			}
		}
		return nil
	}
}

func diffSuffix(got, want map[string]int) string {
	render := func(m map[string]int) string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, fmt.Sprintf("%s×%d", k, m[k]))
		}
		sort.Strings(keys)
		return strings.Join(keys, " ")
	}
	return fmt.Sprintf("\n  got:  %s\n  want: %s", render(got), render(want))
}

// exampleDir locates examples/sdl relative to this source file, so the
// corpus works from any test or binary working directory within the repo.
func exampleDir() string {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return filepath.Join("examples", "sdl")
	}
	return filepath.Join(filepath.Dir(self), "..", "..", "..", "examples", "sdl")
}

func mustRead(name string) string {
	data, err := os.ReadFile(filepath.Join(exampleDir(), name))
	if err != nil {
		panic(fmt.Sprintf("explore: corpus program %s: %v", name, err))
	}
	return string(data)
}

// Micro-programs: targeted stressors for the retract, consensus, and
// parallel-commit paths, with fully deterministic final states.
const (
	// microUpsertSrc contends on one counter bucket: three processes each
	// perform three retract-and-reassert increments of the same tuple. Any
	// lost update (the classic optimistic-validation bug) shows up as a
	// final count below 9.
	microUpsertSrc = `
process Inc()
behavior
  exists v: <c, ?v>! => <c, ?v + 1>;
  exists v: <c, ?v>! => <c, ?v + 1>;
  exists v: <c, ?v>! => <c, ?v + 1>
end

main
  -> <c, 0>;
  spawn Inc(), spawn Inc(), spawn Inc()
end
`

	// microCommuteSrc upserts three disjoint counters concurrently: each
	// process owns one key, so every pair of transactions commutes and the
	// run exercises the commutativity-aware commit path (key latches and
	// group commit) rather than shard contention. The per-key invariant —
	// every counter ends at exactly 3, total 9 — catches any cross-key
	// interference or lost update the batched publication could introduce.
	microCommuteSrc = `
process Bump(k)
behavior
  exists v: <k, ?v>! => <k, ?v + 1>;
  exists v: <k, ?v>! => <k, ?v + 1>;
  exists v: <k, ?v>! => <k, ?v + 1>
end

main
  -> <11, 0>, <12, 0>, <13, 0>;
  spawn Bump(11), spawn Bump(12), spawn Bump(13)
end
`

	// microTransferSrc moves value around a three-account cycle; each hop
	// retracts both balances and reasserts them atomically. Conservation
	// (and the guard ?a > 0, which forces movers to block on depleted
	// sources) pins the atomicity of two-retract transactions.
	microTransferSrc = `
process Mover(src, dst)
behavior
  exists a, b: <acct, src, ?a>!, <acct, dst, ?b>! where ?a > 0 => <acct, src, ?a - 1>, <acct, dst, ?b + 1>;
  exists a, b: <acct, src, ?a>!, <acct, dst, ?b>! where ?a > 0 => <acct, src, ?a - 1>, <acct, dst, ?b + 1>;
  exists a, b: <acct, src, ?a>!, <acct, dst, ?b>! where ?a > 0 => <acct, src, ?a - 1>, <acct, dst, ?b + 1>
end

main
  -> <acct, 1, 3>, <acct, 2, 3>, <acct, 3, 3>;
  spawn Mover(1, 2), spawn Mover(2, 3), spawn Mover(3, 1)
end
`

	// microConsensusSrc builds two disjoint three-member communities
	// (param-restricted imports over distinct leads) whose consensus fires
	// assert per-member <fired, g, id> markers — the all-or-nothing check
	// demands each firing commit carries exactly three.
	microConsensusSrc = `
process Member(g, id)
import <g, *>
behavior
  -> <g, id>;
  <g, 1>, <g, 2>, <g, 3> @> <fired, g, id>
end

main
  spawn Member(1, 1), spawn Member(1, 2), spawn Member(1, 3),
  spawn Member(2, 1), spawn Member(2, 2), spawn Member(2, 3)
end
`

	// microParallelSrc commits from six processes into six distinct index
	// buckets, so with several shards the commits run concurrently with
	// disjoint footprints — the workload that exposes the injected
	// racy-version ordering bug as duplicate serialization positions.
	microParallelSrc = `
process Put(k)
behavior
  -> <k, 1>; -> <k, 2>; -> <k, 3>; -> <k, 4>
end

main
  spawn Put(1), spawn Put(2), spawn Put(3), spawn Put(4), spawn Put(5), spawn Put(6)
end
`

	// microDurableSrc mixes the two commit paths the WAL must order — the
	// key-latch upsert path (Bump, contended read-modify-write) and plain
	// disjoint asserts (Put) — so the appended record stream interleaves
	// commuting and conflicting commits. The durability harness then cuts
	// the log at a seed-chosen byte and recovery must reconstruct a
	// consistent prefix-equivalent of the committed history.
	microDurableSrc = `
process Bump(k)
behavior
  exists v: <k, ?v>! => <k, ?v + 1>;
  exists v: <k, ?v>! => <k, ?v + 1>
end

process Put(k)
behavior
  -> <log, k>
end

main
  -> <21, 0>, <22, 0>;
  spawn Bump(21), spawn Bump(22), spawn Put(1), spawn Put(2)
end
`

	// microFairSrc pins weak fairness: the Waiter's delayed transaction is
	// enabled from the first configuration and stays enabled (nothing
	// retracts <go, 1>), so under every explored schedule — spurious
	// wakeups, delayed signals, and all — it must commit.
	microFairSrc = `
process Waiter()
behavior
  <go, 1> => <done, 1>
end

process Noise(k)
behavior
  -> <n, k>;
  -> <n, k + 100>
end

main
  -> <go, 1>;
  spawn Waiter(), spawn Noise(1), spawn Noise(2)
end
`

	// microReactiveSrc stresses the delta-driven wakeup paths. Waiter's
	// pure-positive constant guard is delta-safe: the noise commits land in
	// its own <job, ...> index bucket but never match, so the reactive path
	// suppresses those wakeups outright (and the re-query ablation arm must
	// reach the same final state through full re-evaluation). Taker's
	// retract guard is NOT delta-safe — its nil filter pins the
	// full-re-query fallback under the same churn. Release unblocks both.
	microReactiveSrc = `
process Waiter(i)
behavior
  <job, i, 1> => <done, i>
end

process Taker(i)
behavior
  exists v: <job, i, ?v>! where ?v == 2 => <took, i>
end

process Noise(k)
behavior
  -> <job, k, 0>;
  -> <job, k + 10, 0>
end

process Release(i)
behavior
  -> <job, i, 1>;
  -> <job, i + 1, 2>
end

main
  spawn Waiter(1), spawn Taker(2), spawn Noise(3), spawn Noise(4), spawn Release(1)
end
`

	// microIndexSrc stresses the adaptive secondary-index lifecycle. Finder
	// guards are wildcard-lead with only non-lead constants to select on, so
	// the repeated full-arity scans push the (arity-3, field) shapes past the
	// promotion bar mid-run — while Churners retract and re-assert rows of
	// the same shape, driving incremental maintenance of the hot buckets and
	// write-pressure demotion. The campaign splits seeds between the indexed
	// arm and its arity-scan ablation (configFor), and both must reach the
	// same final state under every schedule.
	microIndexSrc = `
process Find(g, n)
behavior
  <*, rec, g> => <hit, g, n>;
  <*, rec, g> => <hit, g, n + 1>;
  <*, rec, g> => <hit, g, n + 2>
end

process Churn(i)
behavior
  exists g: <i, rec, ?g>! => <i, rec, ?g>;
  exists g: <i, rec, ?g>! => <i, rec, ?g>;
  exists g: <i, rec, ?g>! => <i, rec, ?g>
end

main
  -> <1, rec, 1>, <2, rec, 1>, <3, rec, 2>, <4, rec, 2>;
  spawn Find(1, 1), spawn Find(2, 1), spawn Churn(1), spawn Churn(3)
end
`
)

// Corpus returns the exploration corpus: the seven examples/sdl programs
// plus the targeted micro-programs, each with its final-state invariant.
func Corpus() []Program {
	phil := map[string]int{}
	for id := 1; id <= 5; id++ {
		phil[fmt.Sprintf("<meal, %d>", id)] = 3
		phil[fmt.Sprintf("<fork, %d>", id)] = 1
	}
	return []Program{
		{
			Name: "barrier",
			Src:  mustRead("barrier.sdl"),
			Check: exact(map[string]int{
				"<seed, 0>":  1,
				"<ready, 1>": 1, "<ready, 2>": 1, "<ready, 3>": 1,
				"<passed, 1>": 1, "<passed, 2>": 1, "<passed, 3>": 1,
			}),
			MarkerLead:  "passed",
			MarkerCount: 3,
		},
		{
			Name: "pairing",
			Src:  mustRead("pairing.sdl"),
			Check: exact(map[string]int{
				"<paired, 2>": 1, "<paired, 5>": 1, "<paired, 9>": 1,
			}),
		},
		{
			Name:  "philosophers",
			Src:   mustRead("philosophers.sdl"),
			Check: exact(phil),
		},
		{
			Name: "proplist",
			Src:  mustRead("proplist.sdl"),
			Check: exact(map[string]int{
				"<1, color, 7, 2>":       1,
				"<2, size, 42, 3>":       1,
				"<3, weight, 99, nil>":   1,
				"<found_fast, size, 42>": 1,
				"<result, weight, 99>":   1,
			}),
		},
		{
			Name: "sort",
			Src:  mustRead("sort.sdl"),
			Check: exact(map[string]int{
				"<1, alpha, 10, 2>":   1,
				"<2, beta, 20, 3>":    1,
				"<3, gamma, 30, 4>":   1,
				"<4, delta, 40, nil>": 1,
			}),
		},
		{
			Name:  "sum1",
			Src:   mustRead("sum1.sdl"),
			Check: exact(map[string]int{"<8, 36>": 1}),
		},
		{
			Name: "sum3",
			Src:  mustRead("sum3.sdl"),
			// The surviving lead is schedule-dependent (the last pair
			// combined); only the count and the total are invariant.
			Check: func(final []tuple.Tuple) error {
				if len(final) != 1 {
					return fmt.Errorf("final state has %d tuples, want 1: %v", len(final), final)
				}
				t := final[0]
				if t.Arity() != 2 {
					return fmt.Errorf("final tuple %s has arity %d, want 2", t, t.Arity())
				}
				if n, ok := t.Field(1).Numeric(); !ok || n != 360 {
					return fmt.Errorf("final tuple %s does not total 360", t)
				}
				return nil
			},
		},
		{
			Name:  "micro-upsert",
			Src:   microUpsertSrc,
			Check: exact(map[string]int{"<c, 9>": 1}),
		},
		{
			Name: "micro-commute",
			Src:  microCommuteSrc,
			// Disjoint-key sum invariant: three increments land on each
			// counter, never on a neighbour.
			Check: exact(map[string]int{
				"<11, 3>": 1, "<12, 3>": 1, "<13, 3>": 1,
			}),
		},
		{
			Name: "micro-transfer",
			Src:  microTransferSrc,
			// Each account sends 3 and receives 3; balances return to 3.
			Check: exact(map[string]int{
				"<acct, 1, 3>": 1, "<acct, 2, 3>": 1, "<acct, 3, 3>": 1,
			}),
		},
		{
			Name: "micro-consensus",
			Src:  microConsensusSrc,
			Check: exact(map[string]int{
				"<1, 1>": 1, "<1, 2>": 1, "<1, 3>": 1,
				"<2, 1>": 1, "<2, 2>": 1, "<2, 3>": 1,
				"<fired, 1, 1>": 1, "<fired, 1, 2>": 1, "<fired, 1, 3>": 1,
				"<fired, 2, 1>": 1, "<fired, 2, 2>": 1, "<fired, 2, 3>": 1,
			}),
			MarkerLead:  "fired",
			MarkerCount: 3,
		},
		{
			Name: "micro-parallel",
			Src:  microParallelSrc,
			Check: func(final []tuple.Tuple) error {
				if len(final) != 24 {
					return fmt.Errorf("final state has %d tuples, want 24", len(final))
				}
				return nil
			},
		},
		{
			Name: "micro-durable",
			Src:  microDurableSrc,
			Check: exact(map[string]int{
				"<21, 2>": 1, "<22, 2>": 1,
				"<log, 1>": 1, "<log, 2>": 1,
			}),
			Durable: true,
		},
		{
			Name: "micro-fair",
			Src:  microFairSrc,
			Check: exact(map[string]int{
				"<go, 1>": 1, "<done, 1>": 1,
				"<n, 1>": 1, "<n, 101>": 1, "<n, 2>": 1, "<n, 102>": 1,
			}),
		},
		{
			Name: "micro-reactive",
			Src:  microReactiveSrc,
			Check: exact(map[string]int{
				"<job, 1, 1>": 1, "<done, 1>": 1, "<took, 2>": 1,
				"<job, 3, 0>": 1, "<job, 13, 0>": 1,
				"<job, 4, 0>": 1, "<job, 14, 0>": 1,
			}),
		},
		{
			Name: "micro-index",
			Src:  microIndexSrc,
			Check: exact(map[string]int{
				"<1, rec, 1>": 1, "<2, rec, 1>": 1,
				"<3, rec, 2>": 1, "<4, rec, 2>": 1,
				"<hit, 1, 1>": 1, "<hit, 1, 2>": 1, "<hit, 1, 3>": 1,
				"<hit, 2, 1>": 1, "<hit, 2, 2>": 1, "<hit, 2, 3>": 1,
			}),
		},
	}
}

// Find returns the corpus program with the given name.
func Find(name string) (Program, bool) {
	for _, p := range Corpus() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}
