// Package sched is a seedable deterministic scheduling and fault-injection
// controller for the SDL runtime.
//
// The runtime's hot paths (transaction execution, shard-lock acquisition,
// wakeup dispatch, consensus detection and firing, process stepping) carry
// explicit decision points. Each point calls into an optional Controller;
// with no controller installed every call is a nil-check no-op, so the
// production configuration is unchanged. With a controller installed, every
// decision — whether to yield the goroutine, whether to inject a fault,
// how to permute an ordering — is a pure function of (seed, point,
// per-point sequence number):
//
//	value = Decide(seed, point, seq)
//
// The decision stream therefore replays identically from its seed: running
// the same seed again re-derives exactly the same value for every (point,
// seq) pair, which is what makes a failing exploration seed reproducible.
// (The OS scheduler still chooses which goroutine consumes which sequence
// number; the controller makes the perturbation pattern — not the kernel —
// deterministic, and in practice a failing seed re-creates its failing
// interleaving because the same perturbations are re-applied at the same
// points.)
//
// Faults are correctness-preserving perturbations the runtime must tolerate:
// spurious wakeups (a delayed transaction wakes, re-evaluates, re-blocks),
// forced optimistic retries (the validation path runs even when the version
// matched), delayed consensus invalidation signals (delivery is deferred,
// never lost), and shard-lock contention spikes (critical sections are
// artificially widened). The one exception is RacyVersionBug, a test-only
// injected ordering bug that deliberately breaks the commit-version
// serialization witness — it exists so the exploration harness can prove it
// detects real violations (see internal/sched/explore).
//
// A decision budget (SetLimit) supports shrinking: decisions drawn beyond
// the budget return zero, i.e. "no perturbation", so a failing run can be
// minimized to the shortest active-decision prefix that still fails.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Point identifies one instrumented decision point in the runtime.
type Point uint8

// Decision points. Each point owns an independent decision sequence.
const (
	PointTxnExec          Point = iota // txn: before a transaction evaluation
	PointTxnRetry                      // txn: optimistic conflict / locked retry
	PointTxnWakeup                     // txn: delayed transaction woken
	PointLockShard                     // dataspace: before each shard-lock acquisition
	PointLockSpike                     // dataspace: contention-spike injection under locks
	PointCommitPublish                 // dataspace: commit version allocation
	PointWakeupDispatch                // dataspace: waiter wakeup ordering
	PointWakeupSpurious                // dataspace: spurious-wakeup injection
	PointWaiterRegister                // dataspace: delayed-txn interest registration
	PointConsensusEval                 // consensus: detector evaluation round
	PointConsensusSignal               // consensus: invalidation signal delivery
	PointConsensusClaim                // consensus: offer claiming during a fire
	PointConsensusResolve              // consensus: offer resolution ordering
	PointProcStep                      // process: between behavior statements
	PointProcSpawn                     // process: spawn-group start ordering
	PointLockKey                       // dataspace: before each key-latch acquisition
	PointGroupCommit                   // dataspace: group-commit batch apply ordering
	PointWalSync                       // wal: before a commit blocks on its durability wait
	PointWalCrash                      // wal: crash-injection cut selection (exploration only)
	PointReactiveDeliver               // dataspace: subscription delta-delivery ordering
	PointIndexPromote                  // dataspace: secondary-index shape promotion timing
	NumPoints                          // number of points (not a real point)
)

// String names the point (used in decision traces).
func (p Point) String() string {
	switch p {
	case PointTxnExec:
		return "txn-exec"
	case PointTxnRetry:
		return "txn-retry"
	case PointTxnWakeup:
		return "txn-wakeup"
	case PointLockShard:
		return "lock-shard"
	case PointLockSpike:
		return "lock-spike"
	case PointCommitPublish:
		return "commit-publish"
	case PointWakeupDispatch:
		return "wakeup-dispatch"
	case PointWakeupSpurious:
		return "wakeup-spurious"
	case PointWaiterRegister:
		return "waiter-register"
	case PointConsensusEval:
		return "consensus-eval"
	case PointConsensusSignal:
		return "consensus-signal"
	case PointConsensusClaim:
		return "consensus-claim"
	case PointConsensusResolve:
		return "consensus-resolve"
	case PointProcStep:
		return "proc-step"
	case PointProcSpawn:
		return "proc-spawn"
	case PointLockKey:
		return "lock-key"
	case PointGroupCommit:
		return "group-commit"
	case PointWalSync:
		return "wal-sync"
	case PointWalCrash:
		return "wal-crash"
	case PointReactiveDeliver:
		return "reactive-deliver"
	case PointIndexPromote:
		return "index-promote"
	default:
		return "unknown"
	}
}

// Faults configures the perturbation probabilities, each in 1/256 units
// (0 = never, 255 ≈ always). The zero value disables everything.
type Faults struct {
	// Yield is the probability of a Gosched burst at a decision point.
	Yield uint8
	// Shuffle is the probability of permuting an ordering decision
	// (wakeup dispatch, consensus claim/resolution, spawn start order).
	Shuffle uint8
	// SpuriousWakeup wakes every registered waiter on a commit, not just
	// the interest-matched ones; delayed transactions must re-evaluate and
	// re-block harmlessly.
	SpuriousWakeup uint8
	// ForceRetry makes an optimistic transaction take its conflict path
	// even when the version validated, exercising under-lock re-evaluation.
	ForceRetry uint8
	// DelaySignal defers (never drops) a consensus invalidation signal.
	DelaySignal uint8
	// LockSpike widens a commit's critical section with extra yields while
	// the shard locks are held, simulating contention spikes.
	LockSpike uint8
	// RacyVersionBug is a TEST-ONLY injected ordering bug: commit versions
	// are allocated with a load-yield-store race instead of one atomic add,
	// so concurrent disjoint-shard commits can claim the same version and
	// break the serialization witness. It exists to prove the exploration
	// harness detects real violations. Keep 0 outside harness self-tests.
	RacyVersionBug uint8
}

// NoFaults disables every perturbation (the controller still draws
// decisions, so traces and budgets remain meaningful).
func NoFaults() Faults { return Faults{} }

// Light is a mild exploration profile: frequent yields, occasional faults.
func Light() Faults {
	return Faults{Yield: 64, Shuffle: 64, SpuriousWakeup: 16, ForceRetry: 16, DelaySignal: 16, LockSpike: 8}
}

// Heavy is an adversarial profile for exploration campaigns.
func Heavy() Faults {
	return Faults{Yield: 128, Shuffle: 128, SpuriousWakeup: 48, ForceRetry: 48, DelaySignal: 48, LockSpike: 32}
}

// Decide is the pure decision function: the value drawn at (point, seq)
// under seed. Exposed so tests and tools can re-derive a controller's
// decision stream without running it.
func Decide(seed uint64, p Point, seq uint64) uint64 {
	x := seed
	x ^= (uint64(p) + 1) * 0x9E3779B97F4A7C15
	x += mix64(seq ^ 0x632BE59BD9B4E019)
	v := mix64(x)
	if v == 0 {
		v = 1 // zero is reserved for "no decision" (nil / out of budget)
	}
	return v
}

// mix64 is the murmur3 fmix64 finalizer: full avalanche in 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Decision is one recorded decision of a traced controller.
type Decision struct {
	Point Point
	Seq   uint64
	Value uint64
}

// Controller is a seed-deterministic scheduling/fault controller. All
// methods are safe on a nil receiver (no-ops), so runtime components hold a
// possibly-nil *Controller and call it unconditionally.
type Controller struct {
	seed   uint64
	faults Faults

	counters [NumPoints]atomic.Uint64 // per-point sequence numbers
	budget   atomic.Int64             // decisions drawn so far
	limit    atomic.Int64             // active-decision budget; < 0 = unlimited
	fp       atomic.Uint64            // order-independent stream fingerprint

	tracing  atomic.Bool
	traceMu  sync.Mutex
	trace    []Decision
	traceCap int
}

// New returns a controller for the given seed and fault profile.
func New(seed uint64, f Faults) *Controller {
	c := &Controller{seed: seed, faults: f}
	c.limit.Store(-1)
	return c
}

// Seed returns the controller's seed.
func (c *Controller) Seed() uint64 {
	if c == nil {
		return 0
	}
	return c.seed
}

// Faults returns the fault profile.
func (c *Controller) Faults() Faults {
	if c == nil {
		return Faults{}
	}
	return c.faults
}

// SetLimit bounds the number of ACTIVE decisions: draws beyond the limit
// return zero ("no perturbation"). Negative means unlimited. Shrinking a
// failing seed binary-searches this budget.
func (c *Controller) SetLimit(n int64) {
	if c != nil {
		c.limit.Store(n)
	}
}

// Decisions returns the number of decisions drawn so far (including draws
// beyond the budget).
func (c *Controller) Decisions() int64 {
	if c == nil {
		return 0
	}
	return c.budget.Load()
}

// Fingerprint returns an order-independent hash of every active decision
// drawn so far. Two runs of the same seed that consume the same (point,
// seq) pairs produce the same fingerprint regardless of goroutine
// interleaving.
func (c *Controller) Fingerprint() uint64 {
	if c == nil {
		return 0
	}
	return c.fp.Load()
}

// EnableTrace records up to cap decisions (0 = a generous default) for
// diagnosis; retrieve them with Trace.
func (c *Controller) EnableTrace(cap int) {
	if c == nil {
		return
	}
	if cap <= 0 {
		cap = 1 << 16
	}
	c.traceMu.Lock()
	c.traceCap = cap
	c.trace = make([]Decision, 0, min(cap, 1024))
	c.traceMu.Unlock()
	c.tracing.Store(true)
}

// Trace returns a copy of the recorded decisions.
func (c *Controller) Trace() []Decision {
	if c == nil {
		return nil
	}
	c.traceMu.Lock()
	out := make([]Decision, len(c.trace))
	copy(out, c.trace)
	c.traceMu.Unlock()
	return out
}

// draw consumes the next decision at p. It returns 0 when the controller
// is nil or the active-decision budget is exhausted.
func (c *Controller) draw(p Point) uint64 {
	if c == nil {
		return 0
	}
	seq := c.counters[p].Add(1) - 1
	n := c.budget.Add(1)
	if lim := c.limit.Load(); lim >= 0 && n > lim {
		return 0
	}
	v := Decide(c.seed, p, seq)
	// Commutative fold: the fingerprint is independent of consumption order.
	c.fp.Add(mix64(v + uint64(p)))
	if c.tracing.Load() {
		c.traceMu.Lock()
		if len(c.trace) < c.traceCap {
			c.trace = append(c.trace, Decision{Point: p, Seq: seq, Value: v})
		}
		c.traceMu.Unlock()
	}
	return v
}

// Yield is a decision point: it may perform a burst of Gosched calls to
// perturb the goroutine schedule.
func (c *Controller) Yield(p Point) {
	v := c.draw(p)
	if v == 0 {
		return
	}
	if uint8(v) < c.faults.Yield {
		n := 1 + int((v>>8)&3)
		for i := 0; i < n; i++ {
			runtime.Gosched()
		}
	}
}

// Perm returns a permutation of [0, n) when the shuffle decision fires,
// nil otherwise (callers keep the natural order on nil).
func (c *Controller) Perm(p Point, n int) []int {
	if n < 2 {
		return nil
	}
	v := c.draw(p)
	if v == 0 || uint8(v>>16) >= c.faults.Shuffle {
		return nil
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r := v
	for i := n - 1; i > 0; i-- {
		r = mix64(r)
		j := int(r % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// SpuriousWakeup reports whether a commit should additionally wake every
// registered waiter.
func (c *Controller) SpuriousWakeup() bool {
	v := c.draw(PointWakeupSpurious)
	return v != 0 && uint8(v>>16) < c.faults.SpuriousWakeup
}

// ForceRetry reports whether an optimistic transaction should take its
// conflict path despite a clean validation.
func (c *Controller) ForceRetry() bool {
	v := c.draw(PointTxnRetry)
	return v != 0 && uint8(v>>16) < c.faults.ForceRetry
}

// DelaySignal reports whether a consensus invalidation signal should be
// deferred to a separate goroutine (delivered later, never dropped).
func (c *Controller) DelaySignal() bool {
	v := c.draw(PointConsensusSignal)
	return v != 0 && uint8(v>>16) < c.faults.DelaySignal
}

// DeferPromote reports whether a secondary-index shape that just crossed
// its promotion threshold should stay cold for one more scan, perturbing
// index-build timing relative to concurrent asserts/retracts. Reuses the
// Shuffle probability so existing fault profiles exercise it.
func (c *Controller) DeferPromote() bool {
	v := c.draw(PointIndexPromote)
	return v != 0 && uint8(v>>16) < c.faults.Shuffle
}

// LockSpike returns the number of extra yields to perform while holding a
// commit's shard locks (0 = none).
func (c *Controller) LockSpike() int {
	v := c.draw(PointLockSpike)
	if v == 0 || uint8(v>>16) >= c.faults.LockSpike {
		return 0
	}
	return 2 + int((v>>24)&7)
}

// RacyVersion reports whether this commit's version allocation should run
// the injected load-yield-store race (test-only; see Faults.RacyVersionBug).
func (c *Controller) RacyVersion() bool {
	v := c.draw(PointCommitPublish)
	return v != 0 && uint8(v>>16) < c.faults.RacyVersionBug
}
