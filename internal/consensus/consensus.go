// Package consensus implements SDL's consensus ('⇑') transactions: an
// n-way synchronization among the processes of a consensus set, defined as
// a set of processes closed under the transitive closure of the relation
//
//	p needs q  ≡  Import(p) ∩ Import(q) ∩ D ≠ ∅
//
// A consensus transaction is executed when every process in the consensus
// set is ready to execute a consensus transaction (has an active offer
// whose query succeeds). The composite effect is computed by first
// performing the retractions of all participating transactions and then
// the assertions, as a single atomic transformation. Detection is the
// paper's "very similar to the quiescence detection problem": a detector
// re-evaluates readiness after every relevant event (new offer, dataspace
// commit, membership change).
//
// Processes register with the Manager (carrying their view and parameter
// environment) so that consensus sets range over the whole process
// society: a registered process that is not offering blocks its set, which
// is exactly the paper's semantics — consensus is an agreement of the
// entire community, not of whoever happens to be waiting.
package consensus

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/view"
)

// Errors.
var (
	// ErrNotRegistered reports an offer from a process that has not been
	// registered with the manager.
	ErrNotRegistered = errors.New("consensus: process not registered")
	// ErrClosed reports use of a closed manager.
	ErrClosed = errors.New("consensus: manager closed")
	// errAbortFire aborts a firing attempt whose members' queries no
	// longer all succeed.
	errAbortFire = errors.New("consensus: fire aborted")
)

// offerState tracks the lifecycle of one offer.
type offerState int32

const (
	stateOffered offerState = iota + 1
	stateClaimed            // locked by a firing attempt
	stateFired              // result available
	stateWithdrawn
)

// Offer is one process's pending consensus transaction. An offer carries
// one or more alternative transactions (a selection construct with several
// consensus guards offers them as alternatives of a single offer); when
// the consensus fires, the first alternative whose query succeeds is the
// one executed. Offers are created by StartOffer/StartOfferAlts and
// resolved either by firing (Done closes, Result returns the composite's
// per-process outcome) or by Withdraw.
type Offer struct {
	reqs   []txn.Request
	m      *Manager
	state  atomic.Int32
	done   chan struct{}
	res    txn.Result
	chosen int
	err    error
}

// Done returns a channel closed when the offer has fired.
func (o *Offer) Done() <-chan struct{} { return o.done }

// Result returns the offer's outcome after Done is closed.
func (o *Offer) Result() (txn.Result, error) { return o.res, o.err }

// Chosen returns the index of the alternative that executed, valid after
// Done is closed with a nil error.
func (o *Offer) Chosen() int { return o.chosen }

// pid returns the offering process.
func (o *Offer) pid() tuple.ProcessID { return o.reqs[0].Proc }

// Withdraw removes the offer if it has not fired (and is not being fired).
// It returns true when withdrawn; false means the offer fired (or is about
// to fire) and the caller must take its result. Selection constructs use
// this when another guard commits first.
func (o *Offer) Withdraw() bool {
	if !o.state.CompareAndSwap(int32(stateOffered), int32(stateWithdrawn)) {
		// Claimed or fired: a firing attempt owns it. Claimed reverts to
		// Offered if the attempt aborts; spin until the state settles.
		for {
			switch offerState(o.state.Load()) {
			case stateFired:
				return false
			case stateWithdrawn:
				return true
			case stateOffered:
				if o.state.CompareAndSwap(int32(stateOffered), int32(stateWithdrawn)) {
					o.m.removeOffer(o)
					return true
				}
			default: // stateClaimed: firing in progress, wait for outcome
				runtime.Gosched()
			}
		}
	}
	o.m.removeOffer(o)
	return true
}

// member is one registered process.
type member struct {
	pid  tuple.ProcessID
	view view.View
	env  expr.Env

	// Cached import materialization, maintained by the detector. A member
	// with a bounded import is re-materialized only when a commit touches
	// one of its index buckets (see view.Matcher's bounded contract);
	// unbounded imports are re-materialized on every evaluation. Guarded by
	// Manager.mu.
	cacheIDs   map[tuple.ID]struct{}
	cacheKeys  map[view.BucketKey]struct{}
	cacheValid bool
	bounded    bool
}

// Manager coordinates consensus transactions over one engine/store.
type Manager struct {
	engine *txn.Engine
	sc     *sched.Controller // the store's exploration controller (usually nil)

	mu      sync.Mutex
	members map[tuple.ProcessID]*member
	offers  map[tuple.ProcessID]*Offer
	closed  bool

	kick chan struct{} // detector wakeup (capacity 1)
	stop chan struct{}
	wg   sync.WaitGroup

	// pendingKeys accumulates the index buckets touched by commits since
	// the detector last evaluated; it drives cache invalidation. Guarded
	// by pendingMu (the commit hook runs under the committing shards'
	// write locks and must not take m.mu; commits on disjoint shard sets
	// invoke the hook concurrently, which pendingMu serializes).
	pendingMu   sync.Mutex
	pendingKeys map[view.BucketKey]struct{}

	// relevance is the detector's commit-relevance summary: when non-nil,
	// a commit touching only buckets outside it cannot change any member's
	// import materialization — and, by the bounded-matcher contract, no
	// window-visible query answer either — so the detector kick is elided
	// (the buckets are still recorded in pendingKeys; invalidation is
	// never lost). nil means every commit is relevant (broad): the initial
	// state, the reactive-off ablation, and whenever any member's import
	// is universal, unbounded, or not yet materialized. relGen guards
	// summary writes: membership and offer changes bump it (resetRelevance)
	// so a summary computed against a stale society never lands. Both
	// guarded by pendingMu.
	relevance map[view.BucketKey]struct{}
	relGen    uint64

	reactive bool // store's reactive flag: gates kick suppression

	fires    atomic.Uint64 // successful consensus firings
	attempts atomic.Uint64 // detector evaluations
}

// NewManager creates a manager over the engine and starts its detector.
// Close must be called to stop the detector.
func NewManager(engine *txn.Engine) *Manager {
	m := &Manager{
		engine:      engine,
		sc:          engine.Store().Sched(),
		members:     make(map[tuple.ProcessID]*member),
		offers:      make(map[tuple.ProcessID]*Offer),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		pendingKeys: make(map[view.BucketKey]struct{}),
		reactive:    engine.Store().Reactive(),
	}
	engine.Store().OnCommit(func(rec dataspace.CommitRecord) {
		m.pendingMu.Lock()
		relevant := m.relevance == nil
		record := func(inst dataspace.Instance) {
			a := inst.Tuple.Arity()
			key := view.BucketKey{}
			if a > 0 {
				key = view.CanonBucket(a, inst.Tuple.Field(0))
			}
			m.pendingKeys[key] = struct{}{}
			if !relevant {
				if _, hit := m.relevance[key]; hit {
					relevant = true
				}
			}
		}
		for _, inst := range rec.Inserted {
			record(inst)
		}
		for _, inst := range rec.Deleted {
			record(inst)
		}
		m.pendingMu.Unlock()
		if !relevant {
			// Every touched bucket is outside every registered import: the
			// commit can change neither an import materialization nor a
			// window-visible query answer (see Manager.relevance), so the
			// detector's last decision stands. The buckets were recorded
			// above — cache invalidation is deferred, never lost — and any
			// society change that could widen relevance resets the summary
			// (and signals) itself.
			engine.Metrics().IncConsensusKickSuppressed()
			return
		}
		if m.sc != nil && m.sc.DelaySignal() {
			// Delayed-invalidation fault: the touched buckets are already in
			// pendingKeys (above), so only the detector kick is deferred —
			// delivery is late, never lost. The detector must tolerate
			// learning about a commit arbitrarily after it happened.
			go func() {
				runtime.Gosched()
				m.signal()
			}()
			return
		}
		m.signal()
	})
	m.wg.Add(1)
	go m.detector()
	return m
}

// Close stops the detector. Pending offers fail with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	pending := make([]*Offer, 0, len(m.offers))
	for _, o := range m.offers {
		pending = append(pending, o)
	}
	m.offers = map[tuple.ProcessID]*Offer{}
	m.mu.Unlock()

	close(m.stop)
	m.wg.Wait()
	for _, o := range pending {
		if o.state.CompareAndSwap(int32(stateOffered), int32(stateFired)) {
			o.err = ErrClosed
			close(o.done)
		}
	}
}

// Fires reports the number of consensus transactions executed.
func (m *Manager) Fires() uint64 { return m.fires.Load() }

// Register adds a process (with its view and parameter environment) to the
// society the manager considers for consensus sets.
func (m *Manager) Register(pid tuple.ProcessID, v view.View, env expr.Env) {
	m.mu.Lock()
	m.members[pid] = &member{pid: pid, view: v, env: env}
	m.mu.Unlock()
	m.resetRelevance()
	m.signal()
}

// Unregister removes a process (at termination).
func (m *Manager) Unregister(pid tuple.ProcessID) {
	m.mu.Lock()
	delete(m.members, pid)
	delete(m.offers, pid)
	m.mu.Unlock()
	m.resetRelevance()
	m.signal()
}

// StartOffer submits a consensus transaction for the registered process
// req.Proc. At most one offer per process may be active at a time (a
// process blocks on its consensus transaction).
func (m *Manager) StartOffer(req txn.Request) (*Offer, error) {
	return m.StartOfferAlts([]txn.Request{req})
}

// StartOfferAlts submits a consensus offer with alternative transactions
// (all from the same process): when the consensus fires, the first
// alternative whose query succeeds executes. A selection construct with
// several consensus guards offers them this way.
func (m *Manager) StartOfferAlts(reqs []txn.Request) (*Offer, error) {
	if len(reqs) == 0 {
		return nil, errors.New("consensus: offer with no alternatives")
	}
	pid := reqs[0].Proc
	for _, r := range reqs[1:] {
		if r.Proc != pid {
			return nil, errors.New("consensus: alternatives from different processes")
		}
	}
	o := &Offer{reqs: reqs, m: m, done: make(chan struct{})}
	o.state.Store(int32(stateOffered))
	m.mu.Lock()
	switch {
	case m.closed:
		m.mu.Unlock()
		return nil, ErrClosed
	case m.members[pid] == nil:
		m.mu.Unlock()
		return nil, ErrNotRegistered
	}
	m.offers[pid] = o
	m.mu.Unlock()
	m.engine.Metrics().IncTxnBlock(metrics.TxnConsensus)
	m.resetRelevance()
	m.signal()
	return o, nil
}

// Offer submits a consensus transaction and blocks until it fires or ctx
// is cancelled.
func (m *Manager) Offer(ctx context.Context, req txn.Request) (txn.Result, error) {
	o, err := m.StartOffer(req)
	if err != nil {
		return txn.Result{}, err
	}
	select {
	case <-o.Done():
		return o.Result()
	case <-ctx.Done():
		if o.Withdraw() {
			return txn.Result{}, ctx.Err()
		}
		<-o.Done() // fired while cancelling: the effect is committed
		return o.Result()
	}
}

func (m *Manager) removeOffer(o *Offer) {
	m.mu.Lock()
	if cur := m.offers[o.pid()]; cur == o {
		delete(m.offers, o.pid())
	}
	m.mu.Unlock()
	m.resetRelevance()
	m.signal()
}

func (m *Manager) signal() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// resetRelevance widens the commit-relevance summary back to broad (every
// commit kicks) and bumps the generation so an in-flight detector round
// cannot re-install a summary computed against the previous society.
// Called on every membership or offer change, before the change's own
// signal.
func (m *Manager) resetRelevance() {
	m.pendingMu.Lock()
	m.relGen++
	m.relevance = nil
	m.pendingMu.Unlock()
}

// detector is the manager's background loop: on every signal it looks for
// a consensus set whose members are all ready, and fires it.
func (m *Manager) detector() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case <-m.kick:
		}
		// Keep evaluating until no set fires; each firing changes the
		// dataspace and may enable another set.
		for m.evaluateOnce() {
		}
	}
}

// evaluateOnce looks for a consensus set whose members are all ready and
// fires it. It reports whether anything fired.
//
// The consensus set is defined over the whole society (the transitive
// closure of import overlap), but the expensive part — materializing each
// member's import — is done lazily: first the *offering* members are
// grouped; then non-offering members are examined one at a time only to
// check whether they belong to (and therefore block) a candidate group,
// stopping as soon as every candidate is blocked. Early in a computation,
// when few processes are at their consensus statements, this makes the
// per-commit detection cost proportional to the offers, not the society.
func (m *Manager) evaluateOnce() bool {
	m.sc.Yield(sched.PointConsensusEval)
	m.attempts.Add(1)
	m.engine.Metrics().IncConsensusRound()

	m.mu.Lock()
	if m.closed || len(m.offers) == 0 {
		m.mu.Unlock()
		return false
	}
	members := make([]*member, 0, len(m.members))
	for _, mem := range m.members {
		members = append(members, mem)
	}
	offers := make(map[tuple.ProcessID]*Offer, len(m.offers))
	for pid, o := range m.offers {
		offers[pid] = o
	}
	m.mu.Unlock()

	var offering, idle []*member
	for _, mem := range members {
		if o := offers[mem.pid]; o != nil && offerState(o.state.Load()) == stateOffered {
			offering = append(offering, mem)
		} else {
			idle = append(idle, mem)
		}
	}
	if len(offering) == 0 {
		return false
	}

	groups := m.candidateGroups(members, offering, idle)
	if perm := m.sc.Perm(sched.PointConsensusEval, len(groups)); perm != nil {
		// The attempt order over ready groups is unspecified (each group is
		// an independent consensus set); explore permutations of it.
		permuted := make([][]tuple.ProcessID, len(groups))
		for i, j := range perm {
			permuted[i] = groups[j]
		}
		groups = permuted
	}
	for _, g := range groups {
		if m.tryFire(g, offers) {
			return true
		}
	}
	return false
}

// candidateGroups partitions the offering members into import-overlap
// groups and discards any group that a non-offering member belongs to.
//
// Cache invalidation (draining the commit-touched buckets) happens inside
// the grouping snapshot, while the snapshot's read locks exclude every
// commit: a commit either completed before the snapshot — and its buckets
// are in the drained set, invalidating the caches it staled — or starts
// after it and is drained on the next evaluation. Draining outside the
// snapshot would leave a window (drain, then commit, then snapshot) in
// which a stale cache passes for valid and the overlap relation is
// computed from instance IDs two configurations apart, splitting one
// consensus set into groups that fire separately.
func (m *Manager) candidateGroups(members, offering, idle []*member) [][]tuple.ProcessID {
	parent := make(map[tuple.ProcessID]tuple.ProcessID, len(offering))
	var find func(tuple.ProcessID) tuple.ProcessID
	find = func(x tuple.ProcessID) tuple.ProcessID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b tuple.ProcessID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, mem := range offering {
		parent[mem.pid] = mem.pid
	}

	blockedRoots := make(map[tuple.ProcessID]bool)
	var relGen uint64
	m.engine.Store().Snapshot(func(r dataspace.Reader) {
		// Drain the commit-touched buckets and invalidate affected caches
		// under the snapshot's locks (see the function comment). Cache
		// fields are only ever written by this detector goroutine; never
		// alias the live map outside pendingMu (commit hooks write to it).
		// The relevance generation is read under the same lock: a society
		// change after this point bumps it and voids the summary this
		// round computes.
		m.pendingMu.Lock()
		relGen = m.relGen
		var touched map[view.BucketKey]struct{}
		if len(m.pendingKeys) > 0 {
			touched = m.pendingKeys
			m.pendingKeys = make(map[view.BucketKey]struct{})
		}
		m.pendingMu.Unlock()
		if len(touched) > 0 {
			for _, mem := range members {
				if !mem.cacheValid {
					continue
				}
				for k := range mem.cacheKeys {
					if _, hit := touched[k]; hit {
						mem.cacheValid = false
						break
					}
				}
			}
		}

		if r.Len() == 0 {
			return // empty dataspace: no overlaps; every offer is a singleton set
		}
		// Group the offering members. Universal imports short-circuit: with
		// a nonempty dataspace they overlap each other and every member
		// whose import is nonempty (the Sum1 barrier case).
		var universalRoot tuple.ProcessID
		haveUniversal := false
		for _, mem := range offering {
			if !mem.view.Import.All {
				continue
			}
			if haveUniversal {
				union(universalRoot, mem.pid)
			} else {
				universalRoot, haveUniversal = mem.pid, true
			}
		}
		importers := make(map[tuple.ID]tuple.ProcessID)
		nonEmpty := make(map[tuple.ProcessID]bool)
		for _, mem := range offering {
			if mem.view.Import.All {
				nonEmpty[mem.pid] = true
				continue
			}
			ids := m.importOf(mem, r)
			if len(ids) > 0 {
				nonEmpty[mem.pid] = true
				if haveUniversal {
					union(universalRoot, mem.pid)
				}
			}
			for id := range ids {
				if first, ok := importers[id]; ok {
					union(first, mem.pid)
				} else {
					importers[id] = mem.pid
				}
			}
		}

		// Block-check: a non-offering member whose import overlaps a
		// candidate group is part of that consensus set, so the set is not
		// ready. Stop as soon as everything is blocked.
		totalRoots := make(map[tuple.ProcessID]bool)
		for _, mem := range offering {
			totalRoots[find(mem.pid)] = true
		}
		allBlocked := func() bool { return len(blockedRoots) == len(totalRoots) }
		blockRootOf := func(pid tuple.ProcessID) { blockedRoots[find(pid)] = true }
		for _, mem := range idle {
			if allBlocked() {
				break
			}
			if mem.view.Import.All {
				// Overlaps every group with a nonempty import.
				for _, om := range offering {
					if nonEmpty[om.pid] {
						blockRootOf(om.pid)
					}
				}
				continue
			}
			ids := m.importOf(mem, r)
			if len(ids) == 0 {
				continue
			}
			if haveUniversal {
				blockRootOf(universalRoot)
			}
			for id := range ids {
				if pid, ok := importers[id]; ok {
					blockRootOf(pid)
				}
			}
		}
	})
	m.refreshRelevance(members, relGen)

	groups := make(map[tuple.ProcessID][]tuple.ProcessID)
	for _, mem := range offering {
		root := find(mem.pid)
		if blockedRoots[root] {
			continue
		}
		groups[root] = append(groups[root], mem.pid)
	}
	out := make([][]tuple.ProcessID, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out = append(out, g)
	}
	// Deterministic group order (by first member) for reproducible firing.
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// refreshRelevance recomputes the commit-relevance summary from the
// member caches as of the grouping snapshot: the union of every bounded,
// valid cached import's bucket keys (which, for a bounded pure matcher,
// depend only on the member's view and environment — including currently
// empty buckets, per MaterializeKeyed). Any member with a universal,
// unbounded, invalid, or not-yet-materialized import forces the broad
// (nil) summary. The write is dropped when the generation moved — a
// Register/Unregister/offer change raced this round and already reset the
// summary. Only the detector goroutine reads the cache fields here, so no
// member lock is needed; disabled (summary pinned broad) under the
// reactive-off ablation.
func (m *Manager) refreshRelevance(members []*member, gen uint64) {
	if !m.reactive {
		return
	}
	broad := false
	sum := make(map[view.BucketKey]struct{})
	for _, mem := range members {
		if mem.view.Import.All || !mem.cacheValid || !mem.bounded {
			broad = true
			break
		}
		for k := range mem.cacheKeys {
			sum[k] = struct{}{}
		}
	}
	m.pendingMu.Lock()
	if m.relGen == gen {
		if broad {
			m.relevance = nil
		} else {
			m.relevance = sum
		}
	}
	m.pendingMu.Unlock()
}

// importOf returns the member's materialized import, from the cache when
// it is still valid. Only the detector goroutine touches the cache fields.
func (m *Manager) importOf(mem *member, r dataspace.Reader) map[tuple.ID]struct{} {
	if mem.cacheValid {
		return mem.cacheIDs
	}
	ids, keys, bounded := view.MaterializeKeyed(mem.view, r, mem.env)
	mem.cacheIDs, mem.cacheKeys, mem.bounded = ids, keys, bounded
	// Unbounded imports cannot be invalidated by bucket, so they are never
	// cached (every evaluation recomputes them).
	mem.cacheValid = bounded
	return ids
}

// hidingSource hides tuple instances already claimed for retraction by an
// earlier participant of the same composite, so participants retract
// pairwise-distinct instances.
type hidingSource struct {
	r      dataspace.Reader
	v      view.View
	env    expr.Env
	hidden map[tuple.ID]struct{}
}

func (h hidingSource) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	h.v.Window(h.r, h.env).Scan(arity, lead, leadKnown, func(id tuple.ID, t tuple.Tuple) bool {
		if _, hid := h.hidden[id]; hid {
			return true
		}
		return fn(id, t)
	})
}

// tryFire attempts to execute the composite transaction of a consensus
// set. It claims every member's offer, re-validates all queries under the
// store's full write lock — a composite commit may span member views and
// therefore shards, so it locks every shard rather than planning a
// footprint — applies all retractions then all assertions as one commit,
// and resolves the offers. On any failure the claims revert.
func (m *Manager) tryFire(set []tuple.ProcessID, offers map[tuple.ProcessID]*Offer) bool {
	reg := m.engine.Metrics()
	reg.IncTxnAttempt(metrics.TxnConsensus)
	observed := reg.Observed()
	var start time.Time
	if observed {
		start = time.Now()
	}
	defer func() {
		if observed {
			reg.ObserveTxnLatency(metrics.TxnConsensus, time.Since(start))
		}
	}()
	if perm := m.sc.Perm(sched.PointConsensusClaim, len(set)); perm != nil {
		// Claim (and therefore phase-1 evaluation) order within a set is
		// unspecified: participants hide the instances they retract from
		// later participants, and any claiming order must yield a consistent
		// composite. Explore permutations of it.
		permuted := make([]tuple.ProcessID, len(set))
		for i, j := range perm {
			permuted[i] = set[j]
		}
		set = permuted
	}
	claimed := make([]*Offer, 0, len(set))
	revert := func() {
		for _, o := range claimed {
			o.state.CompareAndSwap(int32(stateClaimed), int32(stateOffered))
		}
	}
	for _, pid := range set {
		o := offers[pid]
		if o == nil || !o.state.CompareAndSwap(int32(stateOffered), int32(stateClaimed)) {
			revert()
			return false
		}
		claimed = append(claimed, o)
	}

	results := make([]txn.Result, len(claimed))
	chosen := make([]int, len(claimed))
	// The window between claiming and committing is where withdrawals and
	// cancellations race a firing attempt; stretch it.
	m.sc.Yield(sched.PointConsensusClaim)
	err := m.engine.Store().Update(tuple.Environment, func(w dataspace.Writer) error {
		hidden := make(map[tuple.ID]struct{})
		type planned struct {
			retract []dataspace.Instance
			assert  []tuple.Tuple
			sol     pattern.Binding
			req     txn.Request
		}
		plans := make([]planned, len(claimed))
		// Phase 1: evaluate every member's query against the pre-state
		// (minus instances claimed by earlier members). For each offer the
		// first alternative whose query succeeds is the one executed.
		for i, o := range claimed {
			matched := false
			for ai, req := range o.reqs {
				src := hidingSource{r: w, v: req.View, env: req.Env, hidden: hidden}
				sol, found, err := pattern.Solve(req.Query, src, req.Env)
				if err != nil {
					return err
				}
				if !found {
					continue
				}
				matched = true
				chosen[i] = ai
				plans[i].sol = sol
				plans[i].req = req
				for _, mt := range sol.Matched {
					if !mt.Retract {
						continue
					}
					inst, ok := w.Get(mt.ID)
					if !ok {
						return errAbortFire
					}
					hidden[mt.ID] = struct{}{}
					plans[i].retract = append(plans[i].retract, inst)
				}
				for _, ap := range req.Asserts {
					t, gerr := ap.Ground(sol.Env)
					if gerr != nil {
						return gerr
					}
					if req.View.Exports(w, sol.Env, t) {
						plans[i].assert = append(plans[i].assert, t)
					} else if req.Export == txn.ExportError {
						return txn.ErrExportViolation
					}
				}
				break
			}
			if !matched {
				return errAbortFire
			}
		}
		// Phase 2: all retractions, then all assertions.
		for i := range plans {
			for _, inst := range plans[i].retract {
				if err := w.Delete(inst.ID); err != nil {
					return err
				}
			}
		}
		for i := range plans {
			owner := plans[i].req.Proc
			res := txn.Result{OK: true, Env: plans[i].sol.Env,
				Solutions: []expr.Env{plans[i].sol.Env},
				Retracted: plans[i].retract}
			for _, t := range plans[i].assert {
				id := w.Insert(t, owner)
				res.Asserted = append(res.Asserted,
					dataspace.Instance{ID: id, Tuple: t, Owner: owner})
			}
			results[i] = res
		}
		return nil
	})
	if err != nil {
		revert()
		reg.IncTxnRetry(metrics.TxnConsensus)
		return false
	}

	m.mu.Lock()
	for _, o := range claimed {
		if cur := m.offers[o.pid()]; cur == o {
			delete(m.offers, o.pid())
		}
	}
	m.mu.Unlock()
	// Count the fire before resolving any offer: a resolved offerer may run
	// (and its observer read Fires) the moment done closes.
	m.fires.Add(1)
	reg.IncTxnCommit(metrics.TxnConsensus)
	reg.ObserveCommunity(len(claimed))
	// Resolution order across participants is unspecified (the composite is
	// already committed); explore permutations and stretch the gaps so some
	// participants resume long before others learn their offer fired.
	order := m.sc.Perm(sched.PointConsensusResolve, len(claimed))
	if order == nil {
		order = make([]int, len(claimed))
		for i := range order {
			order[i] = i
		}
	}
	for _, i := range order {
		o := claimed[i]
		o.res = results[i]
		o.chosen = chosen[i]
		o.state.Store(int32(stateFired))
		close(o.done)
		m.sc.Yield(sched.PointConsensusResolve)
	}
	return true
}
