package consensus

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/view"
)

func newManager(t *testing.T) (*dataspace.Store, *txn.Engine, *Manager) {
	t.Helper()
	s := dataspace.New()
	e := txn.New(s, txn.Coarse)
	m := NewManager(e)
	t.Cleanup(m.Close)
	return s, e, m
}

// barrierReq is a trivial always-true consensus transaction (pure
// synchronization, like Sum1's phase barrier).
func barrierReq(pid tuple.ProcessID) txn.Request {
	return txn.Request{
		Proc:  pid,
		View:  view.Universal(),
		Query: pattern.Query{Quant: pattern.Exists},
	}
}

func TestBarrierAllProcessesSynchronize(t *testing.T) {
	s, _, m := newManager(t)
	// Non-empty dataspace so universal imports overlap.
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))

	const n = 5
	for i := 1; i <= n; i++ {
		m.Register(tuple.ProcessID(i), view.Universal(), nil)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger arrival to exercise partial-readiness states.
			time.Sleep(time.Duration(i) * 5 * time.Millisecond)
			res, err := m.Offer(context.Background(), barrierReq(tuple.ProcessID(i)))
			if err != nil {
				errs <- err
				return
			}
			if !res.OK {
				errs <- errors.New("offer result not OK")
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("barrier never fired")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if m.Fires() != 1 {
		t.Errorf("fires = %d, want 1 (single composite)", m.Fires())
	}
}

func TestConsensusWaitsForWholeSet(t *testing.T) {
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))
	m.Register(1, view.Universal(), nil)
	m.Register(2, view.Universal(), nil)

	o, err := m.StartOffer(barrierReq(1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-o.Done():
		t.Fatal("consensus fired with a member process not offering")
	case <-time.After(50 * time.Millisecond):
	}
	// The second member arrives: now the set is complete.
	res, err := m.Offer(context.Background(), barrierReq(2))
	if err != nil || !res.OK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	select {
	case <-o.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("first offer never resolved")
	}
}

func TestDisjointCommunitiesFireIndependently(t *testing.T) {
	// Two communities with disjoint imports: {1,2} over region a tuples,
	// {3} over region b tuples. Community {1,2} must fire without 3.
	s, _, m := newManager(t)
	s.Assert(tuple.Environment,
		tuple.New(tuple.Atom("a"), tuple.Int(1)),
		tuple.New(tuple.Atom("b"), tuple.Int(2)),
	)
	viewFor := func(tag string) view.View {
		return view.New(
			view.Union(view.Pat(pattern.P(pattern.C(tuple.Atom(tag)), pattern.W()))),
			view.Everything(),
		)
	}
	m.Register(1, viewFor("a"), nil)
	m.Register(2, viewFor("a"), nil)
	m.Register(3, viewFor("b"), nil)

	mkReq := func(pid tuple.ProcessID, tag string) txn.Request {
		return txn.Request{
			Proc:  pid,
			View:  viewFor(tag),
			Query: pattern.Q(pattern.P(pattern.C(tuple.Atom(tag)), pattern.W())),
		}
	}
	var wg sync.WaitGroup
	for _, pid := range []tuple.ProcessID{1, 2} {
		wg.Add(1)
		go func(pid tuple.ProcessID) {
			defer wg.Done()
			if res, err := m.Offer(context.Background(), mkReq(pid, "a")); err != nil || !res.OK {
				t.Errorf("pid %d: res=%+v err=%v", pid, res, err)
			}
		}(pid)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("community {1,2} did not fire while 3 was busy")
	}
}

func TestConsensusQueryMustSucceed(t *testing.T) {
	// A member whose query fails blocks its set even when everyone offers.
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))
	m.Register(1, view.Universal(), nil)
	m.Register(2, view.Universal(), nil)

	okReq := barrierReq(1)
	failReq := txn.Request{
		Proc:  2,
		View:  view.Universal(),
		Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("missing")))),
	}
	o1, err := m.StartOffer(okReq)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m.StartOffer(failReq)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-o1.Done():
		t.Fatal("fired although member 2's query fails")
	case <-time.After(50 * time.Millisecond):
	}
	// Enabling member 2's query lets the composite fire.
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("missing")))
	for _, o := range []*Offer{o1, o2} {
		select {
		case <-o.Done():
			if res, err := o.Result(); err != nil || !res.OK {
				t.Errorf("res=%+v err=%v", res, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("consensus did not fire after enabling")
		}
	}
}

func TestCompositeEffectRetractionsThenAssertions(t *testing.T) {
	// Two processes each retract their own token and assert a result; the
	// composite applies all retractions before all assertions.
	s, _, m := newManager(t)
	s.Assert(tuple.Environment,
		tuple.New(tuple.Atom("tok"), tuple.Int(1)),
		tuple.New(tuple.Atom("tok"), tuple.Int(2)),
	)
	m.Register(1, view.Universal(), nil)
	m.Register(2, view.Universal(), nil)

	mkReq := func(pid tuple.ProcessID, n int64) txn.Request {
		return txn.Request{
			Proc:  pid,
			View:  view.Universal(),
			Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("tok")), pattern.C(tuple.Int(n)))),
			Asserts: []pattern.Pattern{
				pattern.P(pattern.C(tuple.Atom("done")), pattern.C(tuple.Int(n))),
			},
		}
	}
	var wg sync.WaitGroup
	for i := int64(1); i <= 2; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			res, err := m.Offer(context.Background(), mkReq(tuple.ProcessID(i), i))
			if err != nil || !res.OK {
				t.Errorf("res=%+v err=%v", res, err)
				return
			}
			if len(res.Retracted) != 1 || len(res.Asserted) != 1 {
				t.Errorf("per-member effect = %+v", res)
			}
		}(i)
	}
	wg.Wait()
	if m.Fires() != 1 {
		t.Errorf("fires = %d", m.Fires())
	}
	// Dataspace: two done tuples, no tok tuples.
	var toks, dones int
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, tuple.Atom("tok"), true, func(tuple.ID, tuple.Tuple) bool { toks++; return true })
		r.Scan(2, tuple.Atom("done"), true, func(tuple.ID, tuple.Tuple) bool { dones++; return true })
	})
	if toks != 0 || dones != 2 {
		t.Errorf("toks=%d dones=%d", toks, dones)
	}
}

func TestRetractionDistinctAcrossParticipants(t *testing.T) {
	// Both participants want to retract "the" token, but there is only one
	// instance: the composite must not fire on the same instance twice.
	// With a second instance added, it fires.
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("tok")))
	m.Register(1, view.Universal(), nil)
	m.Register(2, view.Universal(), nil)

	mkReq := func(pid tuple.ProcessID) txn.Request {
		return txn.Request{
			Proc:  pid,
			View:  view.Universal(),
			Query: pattern.Q(pattern.R(pattern.C(tuple.Atom("tok")))),
		}
	}
	o1, _ := m.StartOffer(mkReq(1))
	o2, _ := m.StartOffer(mkReq(2))
	select {
	case <-o1.Done():
		t.Fatal("fired with a single shared instance")
	case <-o2.Done():
		t.Fatal("fired with a single shared instance")
	case <-time.After(50 * time.Millisecond):
	}
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("tok")))
	for _, o := range []*Offer{o1, o2} {
		select {
		case <-o.Done():
		case <-time.After(2 * time.Second):
			t.Fatal("did not fire after second instance")
		}
	}
	if s.Len() != 0 {
		t.Errorf("store len = %d", s.Len())
	}
}

func TestWithdraw(t *testing.T) {
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))
	m.Register(1, view.Universal(), nil)
	m.Register(2, view.Universal(), nil)

	o1, err := m.StartOffer(barrierReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !o1.Withdraw() {
		t.Fatal("withdraw before firing should succeed")
	}
	// After withdrawal, the set is not ready even when 2 offers.
	o2, _ := m.StartOffer(barrierReq(2))
	select {
	case <-o2.Done():
		t.Fatal("fired with a withdrawn member")
	case <-time.After(50 * time.Millisecond):
	}
	if !o2.Withdraw() {
		t.Fatal("second withdraw failed")
	}
}

func TestOfferContextCancel(t *testing.T) {
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))
	m.Register(1, view.Universal(), nil)
	m.Register(2, view.Universal(), nil) // never offers

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := m.Offer(ctx, barrierReq(1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Offer did not observe cancellation")
	}
}

func TestUnregisteredOfferRejected(t *testing.T) {
	_, _, m := newManager(t)
	if _, err := m.StartOffer(barrierReq(9)); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("err = %v", err)
	}
}

func TestClosedManager(t *testing.T) {
	s := dataspace.New()
	e := txn.New(s, txn.Coarse)
	m := NewManager(e)
	m.Register(1, view.Universal(), nil)
	o, err := m.StartOffer(barrierReq(1))
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	select {
	case <-o.Done():
		if _, err := o.Result(); !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending offer not resolved on Close")
	}
	if _, err := m.StartOffer(barrierReq(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("offer after close: err = %v", err)
	}
}

func TestEmptyDataspaceSingletonSets(t *testing.T) {
	// With an empty dataspace no imports overlap: every process is its own
	// consensus set and a sole offer fires alone.
	_, _, m := newManager(t)
	m.Register(1, view.Universal(), nil)
	m.Register(2, view.Universal(), nil) // not offering; different set

	res, err := m.Offer(context.Background(), barrierReq(1))
	if err != nil || !res.OK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestUnregisterUnblocksSet(t *testing.T) {
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))
	m.Register(1, view.Universal(), nil)
	m.Register(2, view.Universal(), nil)

	o, err := m.StartOffer(barrierReq(1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-o.Done():
		t.Fatal("fired while member 2 was registered and idle")
	case <-time.After(50 * time.Millisecond):
	}
	// Member 2 terminates: the set shrinks to {1} and fires.
	m.Unregister(2)
	select {
	case <-o.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("did not fire after unregister")
	}
}

// The paper's distributed sort termination: each Sort(i, i+1) process
// offers a consensus transaction asserting that its adjacent pair is
// ordered. When the whole chain is ordered, all exit together.
func TestSortStyleTerminationConsensus(t *testing.T) {
	s, e, m := newManager(t)
	// Chain of nodes <id, value, next>: initially out of order.
	s.Assert(tuple.Environment,
		tuple.New(tuple.Int(1), tuple.Int(30), tuple.Int(2)),
		tuple.New(tuple.Int(2), tuple.Int(10), tuple.Int(3)),
		tuple.New(tuple.Int(3), tuple.Int(20), tuple.Atom("nil")),
	)
	nodeView := func(a, b int64) view.View {
		return view.New(view.Union(
			view.Pat(pattern.P(pattern.C(tuple.Int(a)), pattern.W(), pattern.W())),
			view.Pat(pattern.P(pattern.C(tuple.Int(b)), pattern.W(), pattern.W())),
		), view.Everything())
	}
	orderedQuery := func(a, b int64) pattern.Query {
		return pattern.Q(
			pattern.P(pattern.C(tuple.Int(a)), pattern.V("v1"), pattern.W()),
			pattern.P(pattern.C(tuple.Int(b)), pattern.V("v2"), pattern.W()),
		).Where(expr.Le(expr.V("v1"), expr.V("v2")))
	}
	swap := func(pid tuple.ProcessID, a, b int64) bool {
		res, err := e.Immediate(txn.Request{
			Proc: pid,
			View: nodeView(a, b),
			Query: pattern.Q(
				pattern.R(pattern.C(tuple.Int(a)), pattern.V("v1"), pattern.V("n1")),
				pattern.R(pattern.C(tuple.Int(b)), pattern.V("v2"), pattern.V("n2")),
			).Where(expr.Gt(expr.V("v1"), expr.V("v2"))),
			Asserts: []pattern.Pattern{
				pattern.P(pattern.C(tuple.Int(a)), pattern.V("v2"), pattern.V("n1")),
				pattern.P(pattern.C(tuple.Int(b)), pattern.V("v1"), pattern.V("n2")),
			},
		})
		if err != nil {
			t.Error(err)
		}
		return res.OK
	}

	pairs := [][2]int64{{1, 2}, {2, 3}}
	var wg sync.WaitGroup
	for i, pr := range pairs {
		pid := tuple.ProcessID(i + 1)
		m.Register(pid, nodeView(pr[0], pr[1]), nil)
		wg.Add(1)
		go func(pid tuple.ProcessID, a, b int64) {
			defer wg.Done()
			for {
				if swap(pid, a, b) {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				res, err := m.Offer(ctx, txn.Request{
					Proc:  pid,
					View:  nodeView(a, b),
					Query: orderedQuery(a, b),
				})
				cancel()
				if err != nil {
					continue // timed out (a neighbour swapped); retry loop
				}
				if res.OK {
					return // consensus: the whole chain is sorted
				}
			}
		}(pid, pr[0], pr[1])
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sort did not terminate")
	}
	// Verify sortedness.
	vals := map[int64]int64{}
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			id, _ := inst.Tuple.Field(0).AsInt()
			v, _ := inst.Tuple.Field(1).AsInt()
			vals[id] = v
			return true
		})
	})
	if !(vals[1] <= vals[2] && vals[2] <= vals[3]) {
		t.Errorf("not sorted: %v", vals)
	}
}

func TestRepeatedBarrierRounds(t *testing.T) {
	// The same society synchronizes repeatedly (phase-barrier churn):
	// every round must fire exactly once, in order.
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))
	const procs, rounds = 6, 15
	for i := 1; i <= procs; i++ {
		m.Register(tuple.ProcessID(i), view.Universal(), nil)
	}
	var wg sync.WaitGroup
	for i := 1; i <= procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := m.Offer(context.Background(), barrierReq(tuple.ProcessID(i)))
				if err != nil || !res.OK {
					t.Errorf("proc %d round %d: %v %v", i, r, res.OK, err)
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("barrier churn stalled")
	}
	if m.Fires() != rounds {
		t.Errorf("fires = %d, want %d", m.Fires(), rounds)
	}
}

func TestOfferAlternativesDirect(t *testing.T) {
	// One process offers two alternatives; the first satisfiable one is
	// chosen at firing time.
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("b")))
	m.Register(1, view.Universal(), nil)

	o, err := m.StartOfferAlts([]txn.Request{
		{Proc: 1, View: view.Universal(),
			Query:   pattern.Q(pattern.P(pattern.C(tuple.Atom("a")))),
			Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("chose_a")))}},
		{Proc: 1, View: view.Universal(),
			Query:   pattern.Q(pattern.R(pattern.C(tuple.Atom("b")))),
			Asserts: []pattern.Pattern{pattern.P(pattern.C(tuple.Atom("chose_b")))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-o.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("alternatives offer never fired")
	}
	res, err := o.Result()
	if err != nil || !res.OK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if o.Chosen() != 1 {
		t.Errorf("chosen = %d, want 1 (only b satisfiable)", o.Chosen())
	}
	var chose string
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(1, tuple.Atom("chose_b"), true, func(tuple.ID, tuple.Tuple) bool {
			chose = "b"
			return false
		})
		r.Scan(1, tuple.Atom("chose_a"), true, func(tuple.ID, tuple.Tuple) bool {
			chose = "a"
			return false
		})
	})
	if chose != "b" {
		t.Errorf("effect = %q", chose)
	}
}

func TestOfferAltsValidation(t *testing.T) {
	_, _, m := newManager(t)
	m.Register(1, view.Universal(), nil)
	if _, err := m.StartOfferAlts(nil); err == nil {
		t.Error("empty alternatives accepted")
	}
	if _, err := m.StartOfferAlts([]txn.Request{
		{Proc: 1, View: view.Universal(), Query: pattern.Query{Quant: pattern.Exists}},
		{Proc: 2, View: view.Universal(), Query: pattern.Query{Quant: pattern.Exists}},
	}); err == nil {
		t.Error("mixed-process alternatives accepted")
	}
}

func BenchmarkBarrierRound(b *testing.B) {
	s := dataspace.New()
	e := txn.New(s, txn.Coarse)
	m := NewManager(e)
	defer m.Close()
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("seed"), tuple.Int(1)))
	const procs = 8
	for i := 1; i <= procs; i++ {
		m.Register(tuple.ProcessID(i), view.Universal(), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for p := 1; p <= procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				_, _ = m.Offer(context.Background(), barrierReq(tuple.ProcessID(p)))
			}(p)
		}
		wg.Wait()
	}
}

func TestBoundedImportCacheInvalidation(t *testing.T) {
	// Two members whose bounded views cover the <g, *> bucket. With an
	// empty dataspace their imports are empty (cached as such): disjoint
	// singleton sets, but their queries fail, so nothing fires. Asserting
	// <g, ready> touches their bucket: the caches must be invalidated so
	// the detector sees the overlap and fires ONE composite for both —
	// a stale cache would fire two singletons (or none).
	s, _, m := newManager(t)
	gView := view.New(
		view.Union(view.Pat(pattern.P(pattern.C(tuple.Atom("g")), pattern.W()))),
		view.Everything(),
	)
	m.Register(1, gView, nil)
	m.Register(2, gView, nil)
	req := func(pid tuple.ProcessID) txn.Request {
		return txn.Request{
			Proc:  pid,
			View:  gView,
			Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("g")), pattern.C(tuple.Atom("ready")))),
		}
	}
	o1, err := m.StartOffer(req(1))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m.StartOffer(req(2))
	if err != nil {
		t.Fatal(err)
	}
	// Give the detector a chance to evaluate (and cache empty imports).
	time.Sleep(30 * time.Millisecond)
	select {
	case <-o1.Done():
		t.Fatal("fired with failing query")
	default:
	}
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("g"), tuple.Atom("ready")))
	for _, o := range []*Offer{o1, o2} {
		select {
		case <-o.Done():
			if res, err := o.Result(); err != nil || !res.OK {
				t.Fatalf("res=%+v err=%v", res, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("stale import cache: consensus never fired")
		}
	}
	if m.Fires() != 1 {
		t.Errorf("fires = %d, want 1 (one community after overlap appears)", m.Fires())
	}
}

func TestUnrelatedCommitsDoNotBreakBoundedConsensus(t *testing.T) {
	// Noise in other buckets must neither fire nor wedge a bounded-view
	// community.
	s, _, m := newManager(t)
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("g"), tuple.Int(1)))
	gView := view.New(
		view.Union(view.Pat(pattern.P(pattern.C(tuple.Atom("g")), pattern.W()))),
		view.Everything(),
	)
	m.Register(1, gView, nil)
	m.Register(2, gView, nil)
	o1, _ := m.StartOffer(txn.Request{Proc: 1, View: gView,
		Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("g")), pattern.C(tuple.Atom("go"))))})
	for i := 0; i < 50; i++ {
		s.Assert(tuple.Environment, tuple.New(tuple.Atom("noise"), tuple.Int(int64(i))))
	}
	select {
	case <-o1.Done():
		t.Fatal("noise fired the consensus")
	case <-time.After(30 * time.Millisecond):
	}
	o2, _ := m.StartOffer(txn.Request{Proc: 2, View: gView,
		Query: pattern.Q(pattern.P(pattern.C(tuple.Atom("g")), pattern.C(tuple.Atom("go"))))})
	s.Assert(tuple.Environment, tuple.New(tuple.Atom("g"), tuple.Atom("go")))
	for _, o := range []*Offer{o1, o2} {
		select {
		case <-o.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("consensus wedged after noise")
		}
	}
}
