package pattern

import (
	"fmt"
	"strings"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Quantifier selects between the paper's ∃ and ∀ query forms.
type Quantifier uint8

// Quantifiers.
const (
	Exists Quantifier = iota + 1 // ∃ — an arbitrary single solution
	ForAll                       // ∀ — every solution, as one composite
)

// String renders the quantifier in ASCII surface syntax.
func (q Quantifier) String() string {
	switch q {
	case Exists:
		return "exists"
	case ForAll:
		return "forall"
	default:
		return "?"
	}
}

// Plan selects how the matcher orders the positive patterns of a query.
type Plan uint8

// Plans.
const (
	// PlanAuto (the default) reorders positive patterns greedily by
	// boundness: patterns whose leading field is determined by the
	// bindings accumulated so far are matched first (they hit index
	// buckets instead of arity scans), then patterns sharing a variable
	// with the bindings. The solution set is unchanged — only the join
	// order and therefore the scan cost. Experiment E11 measures it.
	PlanAuto Plan = iota
	// PlanWritten evaluates patterns exactly in written order (the naive
	// semantics, and the ablation baseline).
	PlanWritten
)

// Query is a complete SDL query: quantifier, binding query (patterns), and
// test query (boolean expression over the bound variables).
type Query struct {
	Quant    Quantifier
	Patterns []Pattern
	Test     expr.Expr
	Plan     Plan
}

// Q builds an existential query.
func Q(patterns ...Pattern) Query {
	return Query{Quant: Exists, Patterns: patterns}
}

// QAll builds a universal query.
func QAll(patterns ...Pattern) Query {
	return Query{Quant: ForAll, Patterns: patterns}
}

// Where attaches a test query, returning the modified query.
func (q Query) Where(test expr.Expr) Query {
	q.Test = test
	return q
}

// Validate reports structural errors in the query.
func (q Query) Validate() error {
	if q.Quant != Exists && q.Quant != ForAll {
		return fmt.Errorf("pattern: invalid quantifier %d", q.Quant)
	}
	for _, p := range q.Patterns {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Vars returns the variables bound by the query's positive patterns.
func (q Query) Vars() []string {
	var dst []string
	for _, p := range q.Patterns {
		dst = p.Vars(dst)
	}
	return dst
}

func (q Query) String() string {
	parts := make([]string, len(q.Patterns))
	for i, p := range q.Patterns {
		parts[i] = p.String()
	}
	s := q.Quant.String() + " " + strings.Join(parts, ", ")
	if q.Test != nil {
		s += " where " + q.Test.String()
	}
	return s
}

// Source supplies candidate tuples to the matcher. Implementations (the
// dataspace window) must support reentrant Scan calls: the matcher nests a
// Scan per pattern during the join.
type Source interface {
	// Scan calls fn for every tuple instance with the given arity and —
	// when leadKnown — whose first field Equals lead. Iteration stops when
	// fn returns false. The iteration order is unspecified; SDL's ∃ picks
	// an arbitrary match.
	Scan(arity int, lead tuple.Value, leadKnown bool, fn func(id tuple.ID, t tuple.Tuple) bool)
}

// Match records one positive pattern's matched tuple instance.
type Match struct {
	PatternIndex int
	ID           tuple.ID
	Tuple        tuple.Tuple
	Retract      bool
}

// Binding is one solution of a query: the final variable environment plus
// the tuple instances matched by each positive pattern.
type Binding struct {
	Env     expr.Env
	Matched []Match
}

// RetractedIDs returns the distinct identifiers of tuples tagged for
// retraction by this solution.
func (b Binding) RetractedIDs() []tuple.ID {
	var ids []tuple.ID
	for _, m := range b.Matched {
		if m.Retract {
			ids = append(ids, m.ID)
		}
	}
	return ids
}

// Enumerate finds solutions to q against src starting from the base
// environment, invoking fn for each; enumeration stops early when fn
// returns false. Within one solution, retract-tagged patterns always match
// pairwise-distinct tuple instances (one instance can be retracted only
// once); read patterns may alias.
//
// Negated patterns and the test query are checked per candidate solution
// after all positive patterns have matched; variables that appear only in
// negated patterns act as wildcards.
func Enumerate(q Query, src Source, base expr.Env, fn func(Binding) bool) error {
	if err := q.Validate(); err != nil {
		return err
	}
	var (
		positives []int
		negatives []int
	)
	for i, p := range q.Patterns {
		if p.Negated {
			negatives = append(negatives, i)
		} else {
			positives = append(positives, i)
		}
	}
	if base == nil {
		base = expr.Env{}
	}
	if q.Plan == PlanAuto {
		positives = planJoinOrder(q, positives, base)
	}

	matched := make([]Match, 0, len(positives))
	var walkErr error
	stopped := false

	var walk func(k int, env expr.Env)
	walk = func(k int, env expr.Env) {
		if stopped || walkErr != nil {
			return
		}
		if k == len(positives) {
			ok, err := checkSolution(q, negatives, src, env)
			if err != nil {
				walkErr = err
				return
			}
			if !ok {
				return
			}
			sol := Binding{Env: env, Matched: make([]Match, len(matched))}
			copy(sol.Matched, matched)
			if !fn(sol) {
				stopped = true
			}
			return
		}
		pi := positives[k]
		p := q.Patterns[pi]
		lead, known := p.Lead(env)
		src.Scan(p.Arity(), lead, known, func(id tuple.ID, t tuple.Tuple) bool {
			if p.Retract && retractedAlready(matched, id) {
				return true // distinctness for retract tags
			}
			env2, ok := p.MatchInto(t, env)
			if !ok {
				return true
			}
			if p.Guard != nil {
				pass, err := expr.EvalBool(p.Guard, env2)
				if err != nil {
					walkErr = fmt.Errorf("pattern: guard: %w", err)
					return false
				}
				if !pass {
					return true
				}
			}
			matched = append(matched, Match{PatternIndex: pi, ID: id, Tuple: t, Retract: p.Retract})
			walk(k+1, env2)
			matched = matched[:len(matched)-1]
			return !stopped && walkErr == nil
		})
	}
	walk(0, base)
	return walkErr
}

func retractedAlready(matched []Match, id tuple.ID) bool {
	for _, m := range matched {
		if m.Retract && m.ID == id {
			return true
		}
	}
	return false
}

// checkSolution evaluates the test query and the negated patterns under the
// candidate environment.
func checkSolution(q Query, negatives []int, src Source, env expr.Env) (bool, error) {
	ok, err := expr.EvalBool(q.Test, env)
	if err != nil {
		return false, fmt.Errorf("pattern: test query: %w", err)
	}
	if !ok {
		return false, nil
	}
	for _, ni := range negatives {
		p := q.Patterns[ni]
		lead, known := p.Lead(env)
		found := false
		var guardErr error
		src.Scan(p.Arity(), lead, known, func(_ tuple.ID, t tuple.Tuple) bool {
			env2, m := p.MatchInto(t, env)
			if !m {
				return true
			}
			if p.Guard != nil {
				pass, err := expr.EvalBool(p.Guard, env2)
				if err != nil {
					guardErr = err
					return false
				}
				if !pass {
					return true // guarded out: does not count as a violation
				}
			}
			found = true
			return false
		})
		if guardErr != nil {
			return false, fmt.Errorf("pattern: negation guard: %w", guardErr)
		}
		if found {
			return false, nil
		}
	}
	return true, nil
}

// Solve finds a single solution for an existential query (or the first
// solution of a universal one). found is false when the query has no
// solution.
func Solve(q Query, src Source, base expr.Env) (Binding, bool, error) {
	var (
		sol   Binding
		found bool
	)
	err := Enumerate(q, src, base, func(b Binding) bool {
		sol = b
		found = true
		return false
	})
	return sol, found, err
}

// SolveAll collects every solution of the query. For ForAll transactions
// the composite effect is the union of the per-solution retractions and
// assertions; the caller deduplicates retraction IDs.
func SolveAll(q Query, src Source, base expr.Env) ([]Binding, error) {
	var out []Binding
	err := Enumerate(q, src, base, func(b Binding) bool {
		out = append(out, b)
		return true
	})
	return out, err
}
