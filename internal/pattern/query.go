package pattern

import (
	"fmt"
	"strings"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Quantifier selects between the paper's ∃ and ∀ query forms.
type Quantifier uint8

// Quantifiers.
const (
	Exists Quantifier = iota + 1 // ∃ — an arbitrary single solution
	ForAll                       // ∀ — every solution, as one composite
)

// String renders the quantifier in ASCII surface syntax.
func (q Quantifier) String() string {
	switch q {
	case Exists:
		return "exists"
	case ForAll:
		return "forall"
	default:
		return "?"
	}
}

// Plan selects how the matcher orders the positive patterns of a query.
type Plan uint8

// Plans.
const (
	// PlanAuto (the default) reorders positive patterns greedily by
	// boundness: patterns whose leading field is determined by the
	// bindings accumulated so far are matched first (they hit index
	// buckets instead of arity scans), then patterns sharing a variable
	// with the bindings. The solution set is unchanged — only the join
	// order and therefore the scan cost. Experiment E11 measures it.
	PlanAuto Plan = iota
	// PlanWritten evaluates patterns exactly in written order (the naive
	// semantics, and the ablation baseline).
	PlanWritten
)

// Query is a complete SDL query: quantifier, binding query (patterns), and
// test query (boolean expression over the bound variables).
type Query struct {
	Quant    Quantifier
	Patterns []Pattern
	Test     expr.Expr
	Plan     Plan
}

// Q builds an existential query.
func Q(patterns ...Pattern) Query {
	return Query{Quant: Exists, Patterns: patterns}
}

// QAll builds a universal query.
func QAll(patterns ...Pattern) Query {
	return Query{Quant: ForAll, Patterns: patterns}
}

// Where attaches a test query, returning the modified query.
func (q Query) Where(test expr.Expr) Query {
	q.Test = test
	return q
}

// Validate reports structural errors in the query.
func (q Query) Validate() error {
	if q.Quant != Exists && q.Quant != ForAll {
		return fmt.Errorf("pattern: invalid quantifier %d", q.Quant)
	}
	for _, p := range q.Patterns {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Vars returns the variables bound by the query's positive patterns.
func (q Query) Vars() []string {
	var dst []string
	for _, p := range q.Patterns {
		dst = p.Vars(dst)
	}
	return dst
}

func (q Query) String() string {
	parts := make([]string, len(q.Patterns))
	for i, p := range q.Patterns {
		parts[i] = p.String()
	}
	s := q.Quant.String() + " " + strings.Join(parts, ", ")
	if q.Test != nil {
		s += " where " + q.Test.String()
	}
	return s
}

// Source supplies candidate tuples to the matcher. Implementations (the
// dataspace window) must support reentrant Scan calls: the matcher nests a
// Scan per pattern during the join.
type Source interface {
	// Scan calls fn for every tuple instance with the given arity and —
	// when leadKnown — whose first field Equals lead. Iteration stops when
	// fn returns false. The iteration order is unspecified; SDL's ∃ picks
	// an arbitrary match.
	Scan(arity int, lead tuple.Value, leadKnown bool, fn func(id tuple.ID, t tuple.Tuple) bool)
}

// Match records one positive pattern's matched tuple instance.
type Match struct {
	PatternIndex int
	ID           tuple.ID
	Tuple        tuple.Tuple
	Retract      bool
}

// Binding is one solution of a query: the final variable environment plus
// the tuple instances matched by each positive pattern.
type Binding struct {
	Env     expr.Env
	Matched []Match
}

// RetractedIDs returns the distinct identifiers of tuples tagged for
// retraction by this solution.
func (b Binding) RetractedIDs() []tuple.ID {
	var ids []tuple.ID
	for _, m := range b.Matched {
		if m.Retract {
			ids = append(ids, m.ID)
		}
	}
	return ids
}

// Enumerate finds solutions to q against src starting from the base
// environment, invoking fn for each; enumeration stops early when fn
// returns false. Within one solution, retract-tagged patterns always match
// pairwise-distinct tuple instances (one instance can be retracted only
// once); read patterns may alias.
//
// Negated patterns and the test query are checked per candidate solution
// after all positive patterns have matched; variables that appear only in
// negated patterns act as wildcards.
func Enumerate(q Query, src Source, base expr.Env, fn func(Binding) bool) error {
	if err := q.Validate(); err != nil {
		return err
	}
	var (
		positives []int
		negatives []int
	)
	for i, p := range q.Patterns {
		if p.Negated {
			negatives = append(negatives, i)
		} else {
			positives = append(positives, i)
		}
	}
	if base == nil {
		base = expr.Env{}
	}
	if q.Plan == PlanAuto {
		positives = planJoinOrder(q, positives, base, src)
	}

	// The join mutates one environment in place, recording newly bound
	// variables on a trail and deleting them when backtracking; the
	// environment is cloned only when a solution escapes to fn. This keeps
	// the candidate loop allocation-free (MatchInto would clone per
	// binding candidate).
	env := make(expr.Env, len(base)+8)
	for k, v := range base {
		env[k] = v
	}
	fsrc, hasFields := src.(FieldSource)
	// selsBuf holds per-depth FieldSel buffers, reused across candidates.
	// It is allocated on the first unknown-lead pattern that can use a
	// selective scan, so lead-keyed queries never pay for it.
	var selsBuf [][]FieldSel
	nslots := len(positives) + len(negatives)

	matched := make([]Match, 0, len(positives))
	var (
		trail   []string
		walkErr error
	)
	stopped := false

	var walk func(k int)
	walk = func(k int) {
		if stopped || walkErr != nil {
			return
		}
		if k == len(positives) {
			ok, err := checkSolution(q, negatives, src, fsrc, &selsBuf, nslots, env, &trail)
			if err != nil {
				walkErr = err
				return
			}
			if !ok {
				return
			}
			sol := Binding{Env: env, Matched: make([]Match, len(matched))}
			copy(sol.Matched, matched)
			if !fn(sol) {
				// env escaped inside sol; stopped suppresses the
				// unwinding undos so the handed-off bindings stay intact.
				stopped = true
				return
			}
			// fn kept a live reference but wants more solutions: continue
			// the join on a private copy. The copy carries the same
			// bindings, so the outer frames' trail undos still resolve.
			env = env.Clone()
			return
		}
		pi := positives[k]
		p := q.Patterns[pi]
		lead, known := p.Lead(env)
		deliver := func(id tuple.ID, t tuple.Tuple) bool {
			if p.Retract && retractedAlready(matched, id) {
				return true // distinctness for retract tags
			}
			mark := len(trail)
			var ok bool
			trail, ok = matchTrail(p, t, env, trail)
			if !ok {
				return true
			}
			undo := func() {
				if stopped {
					return // env escaped with the final solution
				}
				for _, name := range trail[mark:] {
					delete(env, name)
				}
				trail = trail[:mark]
			}
			if p.Guard != nil {
				pass, err := expr.EvalBool(p.Guard, env)
				if err != nil {
					walkErr = fmt.Errorf("pattern: guard: %w", err)
					undo()
					return false
				}
				if !pass {
					undo()
					return true
				}
			}
			matched = append(matched, Match{PatternIndex: pi, ID: id, Tuple: t, Retract: p.Retract})
			walk(k + 1)
			matched = matched[:len(matched)-1]
			undo()
			return !stopped && walkErr == nil
		}
		if !known && hasFields {
			if selsBuf == nil {
				selsBuf = make([][]FieldSel, nslots)
			}
			sels := appendFieldSels(p, env, selsBuf[k][:0])
			selsBuf[k] = sels
			if len(sels) > 0 {
				fsrc.ScanFields(p.Arity(), sels, deliver)
				return
			}
		}
		src.Scan(p.Arity(), lead, known, deliver)
	}
	walk(0)
	return walkErr
}

// matchTrail matches p against t by extending env in place, appending each
// newly bound variable to trail. On failure the partial bindings are
// removed and the original trail returned; the caller undoes successful
// binds when backtracking. This is MatchInto without the defensive clone.
func matchTrail(p Pattern, t tuple.Tuple, env expr.Env, trail []string) ([]string, bool) {
	if t.Arity() != len(p.Fields) {
		return trail, false
	}
	mark := len(trail)
	undo := func() []string {
		for _, name := range trail[mark:] {
			delete(env, name)
		}
		return trail[:mark]
	}
	for i, f := range p.Fields {
		fv := t.Field(i)
		switch f.Kind {
		case FieldWildcard:
			// matches anything
		case FieldConst:
			if !f.Value.Equal(fv) {
				return undo(), false
			}
		case FieldVar:
			if bound, ok := env[f.Name]; ok {
				if !bound.Equal(fv) {
					return undo(), false
				}
			} else {
				env[f.Name] = fv
				trail = append(trail, f.Name)
			}
		case FieldExpr:
			want, err := f.Expr.Eval(env)
			if err != nil {
				return undo(), false
			}
			if !want.Equal(fv) {
				return undo(), false
			}
		default:
			return undo(), false
		}
	}
	return trail, true
}

func retractedAlready(matched []Match, id tuple.ID) bool {
	for _, m := range matched {
		if m.Retract && m.ID == id {
			return true
		}
	}
	return false
}

// checkSolution evaluates the test query and the negated patterns under the
// candidate environment. Negated patterns bind via the same trail as the
// join (undone before returning); the last len(negatives) slots of the
// lazily allocated nslots-wide selsBuf hold their reusable FieldSel
// buffers.
func checkSolution(q Query, negatives []int, src Source, fsrc FieldSource, selsBuf *[][]FieldSel, nslots int, env expr.Env, trail *[]string) (bool, error) {
	ok, err := expr.EvalBool(q.Test, env)
	if err != nil {
		return false, fmt.Errorf("pattern: test query: %w", err)
	}
	if !ok {
		return false, nil
	}
	for nk, ni := range negatives {
		p := q.Patterns[ni]
		lead, known := p.Lead(env)
		found := false
		var guardErr error
		deliver := func(_ tuple.ID, t tuple.Tuple) bool {
			mark := len(*trail)
			var m bool
			*trail, m = matchTrail(p, t, env, *trail)
			if !m {
				return true
			}
			undo := func() {
				for _, name := range (*trail)[mark:] {
					delete(env, name)
				}
				*trail = (*trail)[:mark]
			}
			if p.Guard != nil {
				pass, err := expr.EvalBool(p.Guard, env)
				undo()
				if err != nil {
					guardErr = err
					return false
				}
				if !pass {
					return true // guarded out: does not count as a violation
				}
			} else {
				undo()
			}
			found = true
			return false
		}
		if !known && fsrc != nil {
			if *selsBuf == nil {
				*selsBuf = make([][]FieldSel, nslots)
			}
			bi := nslots - len(negatives) + nk
			sels := appendFieldSels(p, env, (*selsBuf)[bi][:0])
			(*selsBuf)[bi] = sels
			if len(sels) > 0 {
				fsrc.ScanFields(p.Arity(), sels, deliver)
				if guardErr != nil {
					return false, fmt.Errorf("pattern: negation guard: %w", guardErr)
				}
				if found {
					return false, nil
				}
				continue
			}
		}
		src.Scan(p.Arity(), lead, known, deliver)
		if guardErr != nil {
			return false, fmt.Errorf("pattern: negation guard: %w", guardErr)
		}
		if found {
			return false, nil
		}
	}
	return true, nil
}

// Solve finds a single solution for an existential query (or the first
// solution of a universal one). found is false when the query has no
// solution.
func Solve(q Query, src Source, base expr.Env) (Binding, bool, error) {
	var (
		sol   Binding
		found bool
	)
	err := Enumerate(q, src, base, func(b Binding) bool {
		sol = b
		found = true
		return false
	})
	return sol, found, err
}

// SolveAll collects every solution of the query. For ForAll transactions
// the composite effect is the union of the per-solution retractions and
// assertions; the caller deduplicates retraction IDs.
func SolveAll(q Query, src Source, base expr.Env) ([]Binding, error) {
	var out []Binding
	err := Enumerate(q, src, base, func(b Binding) bool {
		out = append(out, b)
		return true
	})
	return out, err
}
