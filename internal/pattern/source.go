package pattern

import (
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// FieldSel is one concrete non-lead field constraint of a pattern: the
// matched tuple must carry Val at position Pos. The matcher hands every
// selector it can evaluate to the source, which picks the most selective
// indexed access path among them (or none).
type FieldSel struct {
	Pos int         // field position, >= 1 (position 0 is the lead)
	Val tuple.Value // concrete value the tuple must carry at Pos
}

// FieldSource is a Source with a secondary field-index access path for
// patterns whose leading field is unknown. The dataspace readers implement
// it; sources without field indexes simply don't, and the matcher falls
// back to the arity scan.
type FieldSource interface {
	Source
	// ScanFields calls fn for tuple instances with the given arity,
	// consulting the source's secondary field indexes: among sels it may
	// pick any one selector whose (arity, pos, value) bucket is promoted
	// and deliver only that bucket, falling back to the full arity scan
	// otherwise. Delivery is a superset of the tuples satisfying all sels
	// (the matcher re-verifies every field) and a subset of the full arity
	// scan. Iteration stops when fn returns false. sels is non-empty and
	// must not be retained or re-read after the first fn call: the
	// matcher reuses the backing array across patterns.
	ScanFields(arity int, sels []FieldSel, fn func(id tuple.ID, t tuple.Tuple) bool)
}

// Estimator exposes a source's cardinality statistics so planJoinOrder can
// order patterns by estimated candidates visited instead of the boundness
// heuristic. Every method returns an estimate of the tuple instances a
// scan through the corresponding access path would deliver; estimates may
// be stale or approximate — they steer the join order, never correctness.
// Callers hold whatever locks Scan itself requires.
type Estimator interface {
	// ArityEstimate is the cost of a full arity scan: the live instance
	// count at the given arity.
	ArityEstimate(arity int) float64
	// LeadEstimate is the cost of a lead-indexed scan whose lead value is
	// bound only at run time: the mean (arity, lead) bucket size.
	LeadEstimate(arity int) float64
	// LeadValueEstimate is the cost of a lead-indexed scan on a concrete
	// value: the size of that (arity, lead) bucket.
	LeadValueEstimate(arity int, lead tuple.Value) float64
	// FieldEstimate is the cost of a field scan on (arity, pos) whose
	// value is bound only at run time: the mean field bucket size when the
	// shape is promoted, or the full arity count when it is not.
	FieldEstimate(arity, pos int) float64
	// FieldValueEstimate is the cost of a field scan on a concrete
	// (arity, pos, val): that bucket's size when the shape is promoted, or
	// the full arity count when it is not.
	FieldValueEstimate(arity, pos int, val tuple.Value) float64
}

// EstimatorProvider lets a wrapping source (e.g. a view window) expose the
// estimator of the source it wraps without implementing Estimator itself.
type EstimatorProvider interface {
	JoinEstimator() Estimator
}

// sourceEstimator resolves the estimator a source exposes, directly or via
// EstimatorProvider; nil when it has none.
func sourceEstimator(src Source) Estimator {
	switch s := src.(type) {
	case Estimator:
		return s
	case EstimatorProvider:
		return s.JoinEstimator()
	default:
		return nil
	}
}

// appendFieldSels collects the concrete non-lead field constraints of p
// under env — every position whose required value the matcher already
// knows — appending to dst. Unevaluable computed fields are skipped (they
// fail candidates during the match instead).
func appendFieldSels(p Pattern, env expr.Env, dst []FieldSel) []FieldSel {
	for i := 1; i < len(p.Fields); i++ {
		switch f := p.Fields[i]; f.Kind {
		case FieldConst:
			dst = append(dst, FieldSel{Pos: i, Val: f.Value})
		case FieldVar:
			if v, ok := env[f.Name]; ok {
				dst = append(dst, FieldSel{Pos: i, Val: v})
			}
		case FieldExpr:
			if v, err := f.Expr.Eval(env); err == nil {
				dst = append(dst, FieldSel{Pos: i, Val: v})
			}
		}
	}
	return dst
}
