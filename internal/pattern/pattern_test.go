package pattern

import (
	"testing"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// sliceSource is a minimal in-memory Source for matcher tests.
type sliceSource struct {
	tuples []tuple.Tuple
}

func (s *sliceSource) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	for i, t := range s.tuples {
		if t.Arity() != arity {
			continue
		}
		if leadKnown && (t.Arity() == 0 || !t.Field(0).Equal(lead)) {
			continue
		}
		if !fn(tuple.ID(i+1), t) {
			return
		}
	}
}

func src(ts ...tuple.Tuple) *sliceSource { return &sliceSource{tuples: ts} }

func TestFieldString(t *testing.T) {
	tests := []struct {
		f    Field
		want string
	}{
		{C(tuple.Atom("year")), "year"},
		{W(), "*"},
		{V("a"), "a"},
		{E(expr.Add(expr.V("k"), expr.Const(tuple.Int(1)))), "(k + 1)"},
	}
	for _, tc := range tests {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	p := R(C(tuple.Atom("year")), V("a"))
	if got := p.String(); got != "<year, a>!" {
		t.Errorf("String() = %q", got)
	}
	n := N(C(tuple.Atom("index")), W())
	if got := n.String(); got != "not <index, *>" {
		t.Errorf("String() = %q", got)
	}
}

func TestPatternValidate(t *testing.T) {
	bad := Pattern{Fields: []Field{C(tuple.Int(1))}, Negated: true, Retract: true}
	if err := bad.Validate(); err == nil {
		t.Error("negated+retract should be invalid")
	}
	if err := P(Field{Kind: FieldVar}).Validate(); err == nil {
		t.Error("empty var name should be invalid")
	}
	if err := P(Field{Kind: FieldExpr}).Validate(); err == nil {
		t.Error("nil expr should be invalid")
	}
	if err := P(Field{}).Validate(); err == nil {
		t.Error("invalid field kind should be invalid")
	}
	if err := P(C(tuple.Int(1)), W(), V("x")).Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
}

func TestMatchIntoBasics(t *testing.T) {
	tp := tuple.New(tuple.Atom("year"), tuple.Int(90))

	// Constant + fresh variable.
	env, ok := P(C(tuple.Atom("year")), V("a")).MatchInto(tp, expr.Env{})
	if !ok {
		t.Fatal("expected match")
	}
	if env["a"] != tuple.Int(90) {
		t.Errorf("a = %v", env["a"])
	}

	// Arity mismatch.
	if _, ok := P(C(tuple.Atom("year"))).MatchInto(tp, expr.Env{}); ok {
		t.Error("arity mismatch should fail")
	}

	// Constant mismatch.
	if _, ok := P(C(tuple.Atom("month")), W()).MatchInto(tp, expr.Env{}); ok {
		t.Error("constant mismatch should fail")
	}

	// Bound variable must agree.
	if _, ok := P(C(tuple.Atom("year")), V("a")).MatchInto(tp, expr.Env{"a": tuple.Int(7)}); ok {
		t.Error("bound variable disagreement should fail")
	}
	env2, ok := P(C(tuple.Atom("year")), V("a")).MatchInto(tp, expr.Env{"a": tuple.Int(90)})
	if !ok {
		t.Error("bound variable agreement should match")
	}
	if len(env2) != 1 {
		t.Errorf("env2 = %v", env2)
	}
}

func TestMatchIntoDoesNotMutateBase(t *testing.T) {
	tp := tuple.New(tuple.Atom("k"), tuple.Int(5))
	base := expr.Env{"x": tuple.Int(1)}
	env, ok := P(C(tuple.Atom("k")), V("v")).MatchInto(tp, base)
	if !ok {
		t.Fatal("expected match")
	}
	if _, exists := base["v"]; exists {
		t.Error("MatchInto mutated the base env")
	}
	if env["v"] != tuple.Int(5) || env["x"] != tuple.Int(1) {
		t.Errorf("env = %v", env)
	}
}

func TestMatchIntoRepeatedVariable(t *testing.T) {
	// <a, a> matches only tuples with equal fields.
	p := P(V("a"), V("a"))
	if _, ok := p.MatchInto(tuple.New(tuple.Int(3), tuple.Int(3)), expr.Env{}); !ok {
		t.Error("<3,3> should match <a,a>")
	}
	if _, ok := p.MatchInto(tuple.New(tuple.Int(3), tuple.Int(4)), expr.Env{}); ok {
		t.Error("<3,4> should not match <a,a>")
	}
}

func TestMatchIntoExprField(t *testing.T) {
	// Pattern <k-1, v> with k bound to 5 matches <4, v>.
	p := P(E(expr.Sub(expr.V("k"), expr.Const(tuple.Int(1)))), V("v"))
	env, ok := p.MatchInto(tuple.New(tuple.Int(4), tuple.Int(99)), expr.Env{"k": tuple.Int(5)})
	if !ok {
		t.Fatal("expected match")
	}
	if env["v"] != tuple.Int(99) {
		t.Errorf("v = %v", env["v"])
	}
	if _, ok := p.MatchInto(tuple.New(tuple.Int(3), tuple.Int(99)), expr.Env{"k": tuple.Int(5)}); ok {
		t.Error("<3,99> should not match <k-1, v> with k=5")
	}
	// Unevaluable expression (unbound k) is treated as no-match.
	if _, ok := p.MatchInto(tuple.New(tuple.Int(4), tuple.Int(1)), expr.Env{}); ok {
		t.Error("unbound expression field should not match")
	}
}

func TestLead(t *testing.T) {
	env := expr.Env{"k": tuple.Int(7)}

	if v, known := P(C(tuple.Atom("year")), W()).Lead(nil); !known || v != tuple.Atom("year") {
		t.Errorf("const lead = %v, %v", v, known)
	}
	if _, known := P(W(), W()).Lead(nil); known {
		t.Error("wildcard lead should be unknown")
	}
	if v, known := P(V("k"), W()).Lead(env); !known || v != tuple.Int(7) {
		t.Errorf("bound var lead = %v, %v", v, known)
	}
	if _, known := P(V("z"), W()).Lead(env); known {
		t.Error("unbound var lead should be unknown")
	}
	if v, known := P(E(expr.Add(expr.V("k"), expr.Const(tuple.Int(1))))).Lead(env); !known || v != tuple.Int(8) {
		t.Errorf("expr lead = %v, %v", v, known)
	}
	if _, known := (Pattern{}).Lead(env); known {
		t.Error("empty pattern lead should be unknown")
	}
}

func TestGround(t *testing.T) {
	env := expr.Env{"a": tuple.Int(90)}
	p := P(C(tuple.Atom("found")), V("a"), E(expr.Add(expr.V("a"), expr.Const(tuple.Int(1)))))
	tp, err := p.Ground(env)
	if err != nil {
		t.Fatal(err)
	}
	want := tuple.New(tuple.Atom("found"), tuple.Int(90), tuple.Int(91))
	if !tp.Equal(want) {
		t.Errorf("Ground = %v, want %v", tp, want)
	}

	if _, err := P(W()).Ground(env); err == nil {
		t.Error("wildcard should not ground")
	}
	if _, err := P(V("zz")).Ground(env); err == nil {
		t.Error("unbound var should not ground")
	}
	if _, err := P(E(expr.V("zz"))).Ground(env); err == nil {
		t.Error("unbound expr should not ground")
	}
}
