package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

func year(n int64) tuple.Tuple { return tuple.New(tuple.Atom("year"), tuple.Int(n)) }

func TestSolveMembership(t *testing.T) {
	s := src(year(87), year(90))
	// The paper's membership test: (year, 87).
	q := Q(P(C(tuple.Atom("year")), C(tuple.Int(87))))
	_, found, err := Solve(q, s, nil)
	if err != nil || !found {
		t.Fatalf("membership: found=%v err=%v", found, err)
	}
	q2 := Q(P(C(tuple.Atom("year")), C(tuple.Int(99))))
	_, found, err = Solve(q2, s, nil)
	if err != nil || found {
		t.Fatalf("absent membership: found=%v err=%v", found, err)
	}
}

func TestSolveBindAndTest(t *testing.T) {
	// ∃α: <year, α>! : α > 87 — the paper's immediate transaction example.
	s := src(year(85), year(90), year(87))
	q := Q(R(C(tuple.Atom("year")), V("a"))).
		Where(expr.Gt(expr.V("a"), expr.Const(tuple.Int(87))))
	b, found, err := Solve(q, s, nil)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if b.Env["a"] != tuple.Int(90) {
		t.Errorf("a = %v, want 90", b.Env["a"])
	}
	ids := b.RetractedIDs()
	if len(ids) != 1 {
		t.Fatalf("retractions = %v", ids)
	}
	if got := b.Matched[0].Tuple; !got.Equal(year(90)) {
		t.Errorf("matched %v", got)
	}
}

func TestSolveJoinTwoPatterns(t *testing.T) {
	// Pair an index with a value: <index, p>, <value, v>.
	s := src(
		tuple.New(tuple.Atom("index"), tuple.Int(3)),
		tuple.New(tuple.Atom("value"), tuple.Int(42)),
	)
	q := Q(
		R(C(tuple.Atom("index")), V("p")),
		R(C(tuple.Atom("value")), V("v")),
	)
	b, found, err := Solve(q, s, nil)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if b.Env["p"] != tuple.Int(3) || b.Env["v"] != tuple.Int(42) {
		t.Errorf("env = %v", b.Env)
	}
	if len(b.RetractedIDs()) != 2 {
		t.Errorf("retractions = %v", b.RetractedIDs())
	}
}

func TestRetractDistinctness(t *testing.T) {
	// Sum3 core: ∃: <ν,α>!, <µ,β>! : ν ≠ µ. With a single tuple in the
	// space there is no solution (cannot retract the same instance twice),
	// even without the test.
	s := src(tuple.New(tuple.Int(1), tuple.Int(10)))
	q := Q(R(V("n"), V("a")), R(V("m"), V("b")))
	_, found, err := Solve(q, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("single instance matched two retract patterns")
	}

	// Two instances of the *same* content are two distinct instances.
	s2 := src(tuple.New(tuple.Int(1), tuple.Int(10)), tuple.New(tuple.Int(1), tuple.Int(10)))
	_, found, err = Solve(q, s2, nil)
	if err != nil || !found {
		t.Errorf("multiset instances: found=%v err=%v", found, err)
	}

	// Read patterns may alias the same instance.
	qRead := Q(P(V("n"), V("a")), P(V("m"), V("b")))
	_, found, err = Solve(qRead, s, nil)
	if err != nil || !found {
		t.Errorf("read aliasing: found=%v err=%v", found, err)
	}
}

func TestNegatedPattern(t *testing.T) {
	// ¬(index, *) — succeeds only when no index tuple exists.
	q := Q(N(C(tuple.Atom("index")), W()))
	_, found, err := Solve(q, src(year(87)), nil)
	if err != nil || !found {
		t.Errorf("no index: found=%v err=%v", found, err)
	}
	_, found, err = Solve(q, src(tuple.New(tuple.Atom("index"), tuple.Int(1))), nil)
	if err != nil || found {
		t.Errorf("index present: found=%v err=%v", found, err)
	}
}

func TestNegationSeesBindings(t *testing.T) {
	// Find a node with no successor: <ν, next>, ¬<next, *> over edges.
	edge := func(a, b string) tuple.Tuple {
		return tuple.New(tuple.Atom(a), tuple.Atom(b))
	}
	s := src(edge("a", "b"), edge("b", "c"))
	q := Q(
		P(W(), V("last")),
		N(V("last"), W()),
	)
	b, found, err := Solve(q, s, nil)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if b.Env["last"] != tuple.Atom("c") {
		t.Errorf("last = %v, want c", b.Env["last"])
	}
}

func TestForAllEnumeratesAllSolutions(t *testing.T) {
	s := src(year(85), year(90), year(95))
	q := QAll(P(C(tuple.Atom("year")), V("a"))).
		Where(expr.Ge(expr.V("a"), expr.Const(tuple.Int(90))))
	sols, err := SolveAll(q, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("solutions = %d, want 2", len(sols))
	}
	seen := map[int64]bool{}
	for _, b := range sols {
		v, _ := b.Env["a"].AsInt()
		seen[v] = true
	}
	if !seen[90] || !seen[95] {
		t.Errorf("seen = %v", seen)
	}
}

func TestEmptyBindingQueryTestOnly(t *testing.T) {
	// Guards like `k mod 2 == 0 ⇑ …` have no patterns, only a test.
	q := Query{Quant: Exists, Test: expr.Eq(
		expr.Mod(expr.V("k"), expr.Const(tuple.Int(2))), expr.Const(tuple.Int(0)))}
	_, found, err := Solve(q, src(), expr.Env{"k": tuple.Int(4)})
	if err != nil || !found {
		t.Errorf("even k: found=%v err=%v", found, err)
	}
	_, found, err = Solve(q, src(), expr.Env{"k": tuple.Int(5)})
	if err != nil || found {
		t.Errorf("odd k: found=%v err=%v", found, err)
	}
}

func TestBaseEnvParameterBinding(t *testing.T) {
	// Process parameters flow into queries as pre-bound variables.
	s := src(
		tuple.New(tuple.Int(1), tuple.Atom("color"), tuple.Atom("red"), tuple.Int(2)),
		tuple.New(tuple.Int(2), tuple.Atom("size"), tuple.Int(9), tuple.Atom("nil")),
	)
	// Search(id, P): ∃ν: <id, P, ν, *>
	q := Q(P(V("id"), V("P"), V("v"), W()))
	b, found, err := Solve(q, s, expr.Env{
		"id": tuple.Int(1), "P": tuple.Atom("color"),
	})
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if b.Env["v"] != tuple.Atom("red") {
		t.Errorf("v = %v", b.Env["v"])
	}
}

func TestTestQueryErrorPropagates(t *testing.T) {
	s := src(year(87))
	q := Q(P(C(tuple.Atom("year")), V("a"))).
		Where(expr.Add(expr.V("a"), expr.Const(tuple.Int(1)))) // int, not bool
	if _, _, err := Solve(q, s, nil); err == nil {
		t.Error("non-boolean test should error")
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (Query{}).Validate(); err == nil {
		t.Error("zero quantifier should be invalid")
	}
	q := Q(Pattern{Fields: []Field{C(tuple.Int(1))}, Negated: true, Retract: true})
	if _, _, err := Solve(q, src(), nil); err == nil {
		t.Error("invalid pattern should surface from Solve")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := src(year(1), year(2), year(3), year(4))
	count := 0
	err := Enumerate(Q(P(C(tuple.Atom("year")), V("a"))), s, nil, func(Binding) bool {
		count++
		return count < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2 (early stop)", count)
	}
}

func TestQueryStringRendering(t *testing.T) {
	q := Q(R(C(tuple.Atom("year")), V("a")), N(C(tuple.Atom("stop")))).
		Where(expr.Gt(expr.V("a"), expr.Const(tuple.Int(87))))
	want := "exists <year, a>!, not <stop> where (a > 87)"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if QAll().String() != "forall " {
		t.Errorf("forall rendering = %q", QAll().String())
	}
}

// Property: for random multisets of <k, v> tuples, SolveAll on pattern
// <k, v> finds exactly the tuples present (join completeness).
func TestQuickSolveAllComplete(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(7)), MaxCount: 50}
	f := func(raw []uint8) bool {
		ts := make([]tuple.Tuple, len(raw))
		for i, r := range raw {
			ts[i] = tuple.New(tuple.Int(int64(r%4)), tuple.Int(int64(r)))
		}
		s := src(ts...)
		sols, err := SolveAll(QAll(P(V("k"), V("v"))), s, nil)
		return err == nil && len(sols) == len(ts)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: two retract patterns over the same shape yield n*(n-1) ordered
// solutions for n distinct instances (distinctness invariant).
func TestQuickRetractPairsCount(t *testing.T) {
	for n := 0; n <= 5; n++ {
		ts := make([]tuple.Tuple, n)
		for i := range ts {
			ts[i] = tuple.New(tuple.Int(int64(i)), tuple.Int(int64(i*10)))
		}
		s := src(ts...)
		sols, err := SolveAll(QAll(R(V("a"), V("x")), R(V("b"), V("y"))), s, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := n * (n - 1)
		if len(sols) != want {
			t.Errorf("n=%d: solutions = %d, want %d", n, len(sols), want)
		}
	}
}

func BenchmarkSolveJoin(b *testing.B) {
	ts := make([]tuple.Tuple, 0, 200)
	for i := 0; i < 100; i++ {
		ts = append(ts, tuple.New(tuple.Atom("index"), tuple.Int(int64(i))))
		ts = append(ts, tuple.New(tuple.Atom("value"), tuple.Int(int64(i*7))))
	}
	s := src(ts...)
	q := Q(
		P(C(tuple.Atom("index")), V("p")),
		P(C(tuple.Atom("value")), V("v")),
	).Where(expr.Eq(expr.V("p"), expr.Const(tuple.Int(50))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := Solve(q, s, nil); err != nil || !found {
			b.Fatalf("found=%v err=%v", found, err)
		}
	}
}

func TestGuardedPositivePattern(t *testing.T) {
	s := src(year(85), year(90), year(95))
	q := Q(P(C(tuple.Atom("year")), V("a")).Guarded(
		expr.Gt(expr.V("a"), expr.Const(tuple.Int(92)))))
	b, found, err := Solve(q, s, nil)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if b.Env["a"] != tuple.Int(95) {
		t.Errorf("a = %v", b.Env["a"])
	}
}

func TestGuardedNegation(t *testing.T) {
	// "no year differs from mine": succeeds only when all year values are
	// equal to the bound one.
	q := Q(
		P(C(tuple.Atom("year")), V("l")),
		N(C(tuple.Atom("year")), V("l2")).Guarded(
			expr.Ne(expr.V("l2"), expr.V("l"))),
	)
	_, found, err := Solve(q, src(year(90), year(90)), nil)
	if err != nil || !found {
		t.Errorf("uniform: found=%v err=%v", found, err)
	}
	_, found, err = Solve(q, src(year(90), year(91)), nil)
	if err != nil || found {
		t.Errorf("mixed: found=%v err=%v", found, err)
	}
}

func TestGuardErrorPropagates(t *testing.T) {
	q := Q(P(C(tuple.Atom("year")), V("a")).Guarded(
		expr.Add(expr.V("a"), expr.Const(tuple.Int(1))))) // non-bool guard
	if _, _, err := Solve(q, src(year(90)), nil); err == nil {
		t.Error("non-bool guard should error")
	}
	qn := Q(
		P(C(tuple.Atom("year")), V("a")),
		N(C(tuple.Atom("year")), V("b")).Guarded(expr.V("zzz")),
	)
	if _, _, err := Solve(qn, src(year(90)), nil); err == nil {
		t.Error("negation guard error should propagate")
	}
}

func TestGuardedPatternString(t *testing.T) {
	p := P(C(tuple.Atom("x"))).Guarded(expr.Gt(expr.V("a"), expr.Const(tuple.Int(1))))
	if got := p.String(); got != "<x> if (a > 1)" {
		t.Errorf("String() = %q", got)
	}
}

func TestQueryVars(t *testing.T) {
	q := Q(
		P(C(tuple.Atom("a")), V("x"), V("y")),
		N(C(tuple.Atom("b")), V("z")), // negated: binds nothing
		R(V("x"), W()),
	)
	got := q.Vars()
	want := map[string]int{"x": 2, "y": 1}
	counts := map[string]int{}
	for _, v := range got {
		counts[v]++
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("Vars = %v", got)
		}
	}
	if counts["z"] != 0 {
		t.Errorf("negated pattern leaked var: %v", got)
	}
}
