package pattern

import "github.com/sdl-lang/sdl/internal/expr"

// planJoinOrder greedily reorders the positive patterns of a query by
// boundness. At each step it places, among the *eligible* remaining
// patterns, the one with the best score:
//
//	2 — the leading field is determined by the bindings so far (the scan
//	    hits one index bucket);
//	1 — the pattern shares a variable with the bindings so far (the join
//	    is constrained);
//	0 — unrelated (a full arity scan).
//
// Eligibility preserves semantics exactly: a pattern may be placed only
// when every variable of its computed (FieldExpr) fields is already
// bound — an unevaluable computed field silently fails to match, so
// hoisting it would change results — and every variable of its guard is
// bound or bound by the pattern itself, so guards never see fresh
// unbound variables they would not have seen in written order. When no
// remaining pattern is eligible, the next one in written order is taken
// (reproducing the written-order behavior, including its errors).
//
// Ties break toward written order, keeping plans deterministic.
func planJoinOrder(q Query, positives []int, base expr.Env) []int {
	if len(positives) <= 1 {
		return positives
	}
	bound := make(map[string]bool, len(base))
	for name := range base {
		bound[name] = true
	}

	patVars := func(pi int) (own []string) {
		for _, f := range q.Patterns[pi].Fields {
			if f.Kind == FieldVar {
				own = append(own, f.Name)
			}
		}
		return own
	}
	exprVarsBound := func(pi int) bool {
		for _, f := range q.Patterns[pi].Fields {
			if f.Kind != FieldExpr {
				continue
			}
			for _, v := range f.Expr.Vars(nil) {
				if !bound[v] {
					return false
				}
			}
		}
		return true
	}
	guardVarsBound := func(pi int) bool {
		g := q.Patterns[pi].Guard
		if g == nil {
			return true
		}
		own := map[string]bool{}
		for _, v := range patVars(pi) {
			own[v] = true
		}
		for _, v := range g.Vars(nil) {
			if !bound[v] && !own[v] {
				return false
			}
		}
		return true
	}
	leadKnown := func(pi int) bool {
		fields := q.Patterns[pi].Fields
		if len(fields) == 0 {
			return false
		}
		switch f := fields[0]; f.Kind {
		case FieldConst:
			return true
		case FieldVar:
			return bound[f.Name]
		case FieldExpr:
			for _, v := range f.Expr.Vars(nil) {
				if !bound[v] {
					return false
				}
			}
			return true
		default:
			return false
		}
	}
	sharesVar := func(pi int) bool {
		for _, v := range patVars(pi) {
			if bound[v] {
				return true
			}
		}
		return false
	}

	out := make([]int, 0, len(positives))
	remaining := append([]int(nil), positives...)
	for len(remaining) > 0 {
		bestIdx := -1
		bestScore := -1
		for ri, pi := range remaining {
			if !exprVarsBound(pi) || !guardVarsBound(pi) {
				continue
			}
			score := 0
			if sharesVar(pi) {
				score = 1
			}
			if leadKnown(pi) {
				score = 2
			}
			if score > bestScore {
				bestScore = score
				bestIdx = ri
			}
		}
		if bestIdx < 0 {
			bestIdx = 0 // nothing eligible: fall back to written order
		}
		pi := remaining[bestIdx]
		out = append(out, pi)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		for _, v := range patVars(pi) {
			bound[v] = true
		}
	}
	return out
}
