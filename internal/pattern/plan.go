package pattern

import (
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// planJoinOrder greedily reorders the positive patterns of a query. At
// each step it places, among the *eligible* remaining patterns, the one
// with the lowest estimated scan cost.
//
// When the source exposes an Estimator, cost is the estimated number of
// tuple candidates the pattern's scan would visit given the bindings
// accumulated so far: the concrete (arity, lead) bucket size when the
// lead value is known at plan time, the mean lead-bucket size when the
// lead is bound by an earlier pattern, the best promoted field-index
// bucket when only non-lead fields are constrained, and the full arity
// count otherwise. Otherwise it falls back to the boundness heuristic:
//
//	2 — the leading field is determined by the bindings so far (the scan
//	    hits one index bucket);
//	1 — the pattern shares a variable with the bindings so far (the join
//	    is constrained);
//	0 — unrelated (a full arity scan).
//
// Eligibility preserves semantics exactly: a pattern may be placed only
// when every variable of its computed (FieldExpr) fields is already
// bound — an unevaluable computed field silently fails to match, so
// hoisting it would change results — and every variable of its guard is
// bound or bound by the pattern itself, so guards never see fresh
// unbound variables they would not have seen in written order. When no
// remaining pattern is eligible, the next one in written order is taken
// (reproducing the written-order behavior, including its errors).
//
// Ties break toward written order, keeping plans deterministic.
func planJoinOrder(q Query, positives []int, base expr.Env, src Source) []int {
	if len(positives) <= 1 {
		return positives
	}
	est := sourceEstimator(src)
	bound := make(map[string]bool, len(base))
	for name := range base {
		bound[name] = true
	}

	patVars := func(pi int) (own []string) {
		for _, f := range q.Patterns[pi].Fields {
			if f.Kind == FieldVar {
				own = append(own, f.Name)
			}
		}
		return own
	}
	exprVarsBound := func(pi int) bool {
		for _, f := range q.Patterns[pi].Fields {
			if f.Kind != FieldExpr {
				continue
			}
			for _, v := range f.Expr.Vars(nil) {
				if !bound[v] {
					return false
				}
			}
		}
		return true
	}
	guardVarsBound := func(pi int) bool {
		g := q.Patterns[pi].Guard
		if g == nil {
			return true
		}
		own := map[string]bool{}
		for _, v := range patVars(pi) {
			own[v] = true
		}
		for _, v := range g.Vars(nil) {
			if !bound[v] && !own[v] {
				return false
			}
		}
		return true
	}
	leadKnown := func(pi int) bool {
		fields := q.Patterns[pi].Fields
		if len(fields) == 0 {
			return false
		}
		switch f := fields[0]; f.Kind {
		case FieldConst:
			return true
		case FieldVar:
			return bound[f.Name]
		case FieldExpr:
			for _, v := range f.Expr.Vars(nil) {
				if !bound[v] {
					return false
				}
			}
			return true
		default:
			return false
		}
	}
	sharesVar := func(pi int) bool {
		for _, v := range patVars(pi) {
			if bound[v] {
				return true
			}
		}
		return false
	}

	// planValue resolves a field's concrete value at plan time: constants,
	// variables carried by the base environment, and closed expressions
	// over them. Variables bound by earlier-planned patterns are known at
	// run time but have no plan-time value.
	planValue := func(f Field) (tuple.Value, bool) {
		switch f.Kind {
		case FieldConst:
			return f.Value, true
		case FieldVar:
			v, ok := base[f.Name]
			return v, ok
		case FieldExpr:
			for _, v := range f.Expr.Vars(nil) {
				if _, ok := base[v]; !ok {
					return tuple.Value{}, false
				}
			}
			v, err := f.Expr.Eval(base)
			return v, err == nil
		default:
			return tuple.Value{}, false
		}
	}
	// scanCost estimates the candidates the pattern's scan visits under
	// the bindings so far, mirroring the matcher's access-path selection:
	// lead bucket when the lead is (or will be) known, else the best
	// evaluable field selector, else the full arity scan.
	scanCost := func(pi int) float64 {
		p := q.Patterns[pi]
		arity := p.Arity()
		if leadKnown(pi) {
			if v, ok := planValue(p.Fields[0]); ok {
				return est.LeadValueEstimate(arity, v)
			}
			return est.LeadEstimate(arity)
		}
		best := est.ArityEstimate(arity)
		for i := 1; i < len(p.Fields); i++ {
			f := p.Fields[i]
			var c float64
			if v, ok := planValue(f); ok {
				c = est.FieldValueEstimate(arity, i, v)
			} else if f.Kind == FieldVar && bound[f.Name] {
				c = est.FieldEstimate(arity, i)
			} else {
				continue
			}
			if c < best {
				best = c
			}
		}
		return best
	}

	out := make([]int, 0, len(positives))
	remaining := append([]int(nil), positives...)
	for len(remaining) > 0 {
		bestIdx := -1
		if est != nil {
			bestCost := 0.0
			for ri, pi := range remaining {
				if !exprVarsBound(pi) || !guardVarsBound(pi) {
					continue
				}
				c := scanCost(pi)
				if bestIdx < 0 || c < bestCost {
					bestCost = c
					bestIdx = ri
				}
			}
		} else {
			bestScore := -1
			for ri, pi := range remaining {
				if !exprVarsBound(pi) || !guardVarsBound(pi) {
					continue
				}
				score := 0
				if sharesVar(pi) {
					score = 1
				}
				if leadKnown(pi) {
					score = 2
				}
				if score > bestScore {
					bestScore = score
					bestIdx = ri
				}
			}
		}
		if bestIdx < 0 {
			bestIdx = 0 // nothing eligible: fall back to written order
		}
		pi := remaining[bestIdx]
		out = append(out, pi)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		for _, v := range patVars(pi) {
			bound[v] = true
		}
	}
	return out
}
