// Package pattern implements SDL queries: tuple patterns built from
// constants, wildcards ('*'), and quantified variables; binding queries
// (conjunctions of patterns, some tagged for retraction, some negated); test
// queries (boolean expressions over the bound variables); and the
// existential / universal quantifiers.
//
// The matcher performs a backtracking relational join over a tuple source
// and yields solutions: variable environments plus the tuple instances
// matched by each positive pattern (needed to translate retraction tags
// into dataspace retractions).
package pattern

import (
	"fmt"
	"strings"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// FieldKind discriminates pattern fields.
type FieldKind uint8

// Pattern field kinds.
const (
	FieldInvalid  FieldKind = iota
	FieldConst              // a literal value that must Equal the tuple field
	FieldWildcard           // '*' — matches anything, binds nothing
	FieldVar                // a variable: binds on first use, must Equal after
	FieldExpr               // a computed value: expression over earlier bindings
)

// Field is one position of a tuple pattern.
type Field struct {
	Kind  FieldKind
	Value tuple.Value // FieldConst
	Name  string      // FieldVar
	Expr  expr.Expr   // FieldExpr
}

// C returns a constant field.
func C(v tuple.Value) Field { return Field{Kind: FieldConst, Value: v} }

// W returns a wildcard field.
func W() Field { return Field{Kind: FieldWildcard} }

// V returns a variable field.
func V(name string) Field { return Field{Kind: FieldVar, Name: name} }

// E returns a computed field whose value is an expression over variables
// bound earlier in the query (e.g. the pattern <k-2^(j-1), α, j> in Sum2).
func E(e expr.Expr) Field { return Field{Kind: FieldExpr, Expr: e} }

func (f Field) String() string {
	switch f.Kind {
	case FieldConst:
		return f.Value.String()
	case FieldWildcard:
		return "*"
	case FieldVar:
		return f.Name
	case FieldExpr:
		return f.Expr.String()
	default:
		return "?"
	}
}

// Pattern is one tuple pattern in a binding query.
type Pattern struct {
	Fields []Field
	// Retract marks the pattern with the paper's '↑' tag: the matched tuple
	// instance is retracted when the transaction commits.
	Retract bool
	// Negated marks the pattern with '¬': the query succeeds only if no
	// tuple matches. A negated pattern binds no variables and cannot carry
	// a Retract tag.
	Negated bool
	// Guard is an optional per-pattern predicate over the bindings in
	// scope after the pattern matches. For a positive pattern it filters
	// candidates during the join; for a negated pattern it restricts which
	// tuples count as violations, expressing guarded negation such as
	// "¬∃ q,λ': <q, label, λ'> ∧ λ' ≠ λ".
	Guard expr.Expr
}

// Guarded returns a copy of the pattern with the guard predicate attached.
func (p Pattern) Guarded(g expr.Expr) Pattern {
	p.Guard = g
	return p
}

// P builds a positive (read) pattern.
func P(fields ...Field) Pattern { return Pattern{Fields: fields} }

// R builds a retract-tagged pattern.
func R(fields ...Field) Pattern { return Pattern{Fields: fields, Retract: true} }

// N builds a negated pattern.
func N(fields ...Field) Pattern { return Pattern{Fields: fields, Negated: true} }

// Arity returns the number of fields the pattern requires.
func (p Pattern) Arity() int { return len(p.Fields) }

// Validate reports structural errors (negated+retract, invalid fields).
func (p Pattern) Validate() error {
	if p.Negated && p.Retract {
		return fmt.Errorf("pattern: %s is both negated and retract-tagged", p)
	}
	for i, f := range p.Fields {
		switch f.Kind {
		case FieldConst, FieldWildcard:
		case FieldVar:
			if f.Name == "" {
				return fmt.Errorf("pattern: empty variable name at field %d", i)
			}
		case FieldExpr:
			if f.Expr == nil {
				return fmt.Errorf("pattern: nil expression at field %d", i)
			}
		default:
			return fmt.Errorf("pattern: invalid field %d", i)
		}
	}
	return nil
}

func (p Pattern) String() string {
	var b strings.Builder
	if p.Negated {
		b.WriteString("not ")
	}
	b.WriteByte('<')
	for i, f := range p.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	b.WriteByte('>')
	if p.Retract {
		b.WriteByte('!')
	}
	if p.Guard != nil {
		b.WriteString(" if ")
		b.WriteString(p.Guard.String())
	}
	return b.String()
}

// Lead computes the index key of the pattern's leading field under env:
// the concrete value the matched tuple must carry in position 0, if it is
// determined (constant, bound variable, or closed expression). known=false
// means the pattern must scan all tuples of its arity.
func (p Pattern) Lead(env expr.Env) (v tuple.Value, known bool) {
	if len(p.Fields) == 0 {
		return tuple.Value{}, false
	}
	switch f := p.Fields[0]; f.Kind {
	case FieldConst:
		return f.Value, true
	case FieldVar:
		val, ok := env[f.Name]
		return val, ok
	case FieldExpr:
		val, err := f.Expr.Eval(env)
		if err != nil {
			return tuple.Value{}, false
		}
		return val, true
	default:
		return tuple.Value{}, false
	}
}

// MatchInto attempts to match p against t under env. On success it returns
// true and env extended with any new bindings; the returned env is a fresh
// map only when new bindings were added (callers must treat it as
// read-through). On failure it returns env unchanged and false.
func (p Pattern) MatchInto(t tuple.Tuple, env expr.Env) (expr.Env, bool) {
	if t.Arity() != len(p.Fields) {
		return env, false
	}
	var extended expr.Env
	current := func() expr.Env {
		if extended != nil {
			return extended
		}
		return env
	}
	for i, f := range p.Fields {
		fv := t.Field(i)
		switch f.Kind {
		case FieldWildcard:
			// matches anything
		case FieldConst:
			if !f.Value.Equal(fv) {
				return env, false
			}
		case FieldVar:
			if bound, ok := current()[f.Name]; ok {
				if !bound.Equal(fv) {
					return env, false
				}
			} else {
				if extended == nil {
					extended = env.Clone()
				}
				extended[f.Name] = fv
			}
		case FieldExpr:
			want, err := f.Expr.Eval(current())
			if err != nil {
				return env, false
			}
			if !want.Equal(fv) {
				return env, false
			}
		default:
			return env, false
		}
	}
	return current(), true
}

// Vars appends the variables that the pattern can bind (FieldVar names in
// positive patterns) to dst.
func (p Pattern) Vars(dst []string) []string {
	if p.Negated {
		return dst
	}
	for _, f := range p.Fields {
		if f.Kind == FieldVar {
			dst = append(dst, f.Name)
		}
	}
	return dst
}

// Ground instantiates the pattern into a concrete tuple under env. It fails
// if the pattern contains wildcards or unbound variables; used to
// materialize Export checks and negated-pattern display.
func (p Pattern) Ground(env expr.Env) (tuple.Tuple, error) {
	fields := make([]tuple.Value, len(p.Fields))
	for i, f := range p.Fields {
		switch f.Kind {
		case FieldConst:
			fields[i] = f.Value
		case FieldVar:
			v, ok := env[f.Name]
			if !ok {
				return tuple.Tuple{}, fmt.Errorf("pattern: ground: unbound %s", f.Name)
			}
			fields[i] = v
		case FieldExpr:
			v, err := f.Expr.Eval(env)
			if err != nil {
				return tuple.Tuple{}, fmt.Errorf("pattern: ground: %w", err)
			}
			fields[i] = v
		default:
			return tuple.Tuple{}, fmt.Errorf("pattern: ground: field %d is not groundable", i)
		}
	}
	return tuple.New(fields...), nil
}
