package pattern

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// countingSource counts tuples visited by scans.
type countingSource struct {
	inner   *sliceSource
	visited int
}

func (c *countingSource) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	if leadKnown {
		// Emulate an index: visit only matching-lead tuples.
		c.inner.Scan(arity, lead, true, func(id tuple.ID, t tuple.Tuple) bool {
			c.visited++
			return fn(id, t)
		})
		return
	}
	c.inner.Scan(arity, lead, false, func(id tuple.ID, t tuple.Tuple) bool {
		c.visited++
		return fn(id, t)
	})
}

func TestPlannerReducesScans(t *testing.T) {
	// Written order starts with an unbounded arity-3 scan; the planner
	// starts from the constant-led adjacency pattern <7, p2>, after which
	// the label pattern's lead is bound and both scans hit index buckets.
	var ts []tuple.Tuple
	for i := int64(0); i < 50; i++ {
		ts = append(ts, tuple.New(tuple.Int(i), tuple.Int((i+1)%50)))                   // adjacency
		ts = append(ts, tuple.New(tuple.Int(i), tuple.Atom("label"), tuple.Int(i)))     // labels
		ts = append(ts, tuple.New(tuple.Int(i), tuple.Atom("noise"), tuple.Int(100+i))) // noise
	}
	q := Q(
		P(V("p2"), C(tuple.Atom("label")), V("l2")), // written first: full arity-3 scan
		P(C(tuple.Int(7)), V("p2")),                 // constant lead: one bucket
	)

	run := func(plan Plan) (int, bool) {
		q := q
		q.Plan = plan
		src := &countingSource{inner: &sliceSource{tuples: ts}}
		_, found, err := Solve(q, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		return src.visited, found
	}
	unplannedVisits, f1 := run(PlanWritten)
	plannedVisits, f2 := run(PlanAuto)
	if f1 != f2 {
		t.Fatalf("planned/unplanned disagree: %v vs %v", f1, f2)
	}
	if !f1 {
		t.Fatal("query should succeed")
	}
	if plannedVisits >= unplannedVisits {
		t.Errorf("planner did not reduce scans: planned=%d unplanned=%d",
			plannedVisits, unplannedVisits)
	}
}

func TestPlannerRespectsComputedFieldDependencies(t *testing.T) {
	// <k, v> binds k; <k+1, w> must stay after it even though it has a
	// "known" lead expression — its variable is unbound initially.
	s := src(
		tuple.New(tuple.Int(1), tuple.Int(10)),
		tuple.New(tuple.Int(2), tuple.Int(20)),
	)
	q := Q(
		P(pattern_E_add("k"), V("w")), // written first, depends on k
		P(V("k"), V("v")).Guarded(expr.Eq(expr.V("k"), expr.Const(tuple.Int(1)))),
	)
	sols, err := SolveAll(QAll(q.Patterns...).Where(q.Test), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %d", len(sols))
	}
	if sols[0].Env["w"] != tuple.Int(20) {
		t.Errorf("w = %v", sols[0].Env["w"])
	}
}

func pattern_E_add(name string) Field {
	return E(expr.Add(expr.V(name), expr.Const(tuple.Int(1))))
}

// Property: planned and written-order evaluation produce the same solution
// multiset for random queries over random stores.
func TestQuickPlannerPreservesSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		var ts []tuple.Tuple
		n := 5 + rng.Intn(15)
		for i := 0; i < n; i++ {
			ts = append(ts, tuple.New(
				tuple.Int(int64(rng.Intn(4))),
				tuple.Int(int64(rng.Intn(4))),
			))
		}
		s := src(ts...)
		// Random 2-3 pattern query over shared variables.
		vars := []string{"a", "b", "c"}
		mk := func() Pattern {
			f := func() Field {
				switch rng.Intn(3) {
				case 0:
					return C(tuple.Int(int64(rng.Intn(4))))
				case 1:
					return V(vars[rng.Intn(len(vars))])
				default:
					return W()
				}
			}
			p := P(f(), f())
			if rng.Intn(2) == 0 {
				p.Retract = true
			}
			return p
		}
		pats := []Pattern{mk(), mk()}
		if rng.Intn(2) == 0 {
			pats = append(pats, mk())
		}
		qAuto := Query{Quant: ForAll, Patterns: pats, Plan: PlanAuto}
		qWritten := Query{Quant: ForAll, Patterns: pats, Plan: PlanWritten}
		a, err := SolveAll(qAuto, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveAll(qWritten, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolutionSet(a, b) {
			t.Fatalf("trial %d: planner changed solutions\npatterns: %v\nauto: %d sols, written: %d sols",
				trial, pats, len(a), len(b))
		}
	}
}

// stubEstimator is a Source carrying a fixed cost table, for golden plan
// tests: scans are never executed, only estimated. Zero-value lookups fall
// back to the listed defaults so tests only spell out what they exercise.
type stubEstimator struct {
	Source
	arity    map[int]float64    // per-arity full-scan cost (default 1000)
	leadVal  map[string]float64 // LeadValueEstimate by value rendering (default 2)
	lead     map[int]float64    // LeadEstimate by arity (default 10)
	field    map[[2]int]float64 // FieldEstimate by (arity, pos) (default arity cost)
	fieldVal map[string]float64 // FieldValueEstimate by "pos:value" (default arity cost)
}

func (s *stubEstimator) ArityEstimate(arity int) float64 {
	if c, ok := s.arity[arity]; ok {
		return c
	}
	return 1000
}

func (s *stubEstimator) LeadEstimate(arity int) float64 {
	if c, ok := s.lead[arity]; ok {
		return c
	}
	return 10
}

func (s *stubEstimator) LeadValueEstimate(arity int, lead tuple.Value) float64 {
	if c, ok := s.leadVal[lead.String()]; ok {
		return c
	}
	return 2
}

func (s *stubEstimator) FieldEstimate(arity, pos int) float64 {
	if c, ok := s.field[[2]int{arity, pos}]; ok {
		return c
	}
	return s.ArityEstimate(arity)
}

func (s *stubEstimator) FieldValueEstimate(arity, pos int, val tuple.Value) float64 {
	if c, ok := s.fieldVal[itoa(pos)+":"+val.String()]; ok {
		return c
	}
	return s.ArityEstimate(arity)
}

func itoa(n int) string { return string(rune('0' + n)) }

// TestPlanOrderGolden pins planJoinOrder's exact output for the
// eligibility edge cases: guard variables that are not bound yet, computed
// (FieldExpr) fields as hoisting barriers, the written-order fallback when
// nothing is eligible, and estimator-driven cost ordering with its
// written-order tie-break.
func TestPlanOrderGolden(t *testing.T) {
	label := tuple.Atom("label")
	cases := []struct {
		name string
		q    Query
		base expr.Env
		src  Source
		want []int
	}{
		{
			// Legacy heuristic (no estimator): the constant-led pattern
			// scores 2 and jumps ahead of the written-first arity scan.
			name: "legacy-boundness",
			q: Q(
				P(V("a"), V("b")),
				P(C(tuple.Int(1)), V("a")),
			),
			src:  src(),
			want: []int{1, 0},
		},
		{
			// A guard over a variable bound only by the OTHER pattern makes
			// the constant-led pattern ineligible until that variable exists:
			// hoisting it would let the guard see an unbound variable.
			name: "guard-variable-barrier",
			q: Q(
				P(V("x"), V("y")),
				P(C(tuple.Int(5)), V("z")).
					Guarded(expr.Eq(expr.V("y"), expr.V("z"))),
			),
			src:  src(),
			want: []int{0, 1},
		},
		{
			// A computed field over an unbound variable cannot be hoisted —
			// an unevaluable FieldExpr silently fails to match.
			name: "computed-field-barrier",
			q: Q(
				P(pattern_E_add("k"), V("w")),
				P(V("k"), V("v")),
			),
			src:  src(),
			want: []int{1, 0},
		},
		{
			// A guard variable already carried by the base environment is no
			// barrier: the guarded constant-led pattern may go first.
			name: "base-env-unblocks-guard",
			q: Q(
				P(V("x"), V("y")),
				P(C(tuple.Int(5)), V("z")).
					Guarded(expr.Eq(expr.V("y"), expr.V("z"))),
			),
			base: expr.Env{"y": tuple.Int(9)},
			src:  src(),
			want: []int{1, 0},
		},
		{
			// Nothing eligible at the first step (each guard needs the other
			// pattern's variable): fall back to written order, which then
			// unblocks the second pattern.
			name: "written-order-fallback",
			q: Q(
				P(V("a")).Guarded(expr.Eq(expr.V("b"), expr.V("b"))),
				P(V("b")).Guarded(expr.Eq(expr.V("a"), expr.V("a"))),
			),
			src:  src(),
			want: []int{0, 1},
		},
		{
			// Estimator-driven: the written-last pattern's concrete lead
			// bucket (cost 2) beats the lead-unknown patterns (arity 1000),
			// and after it binds "a", pattern 0's lead is runtime-known
			// (LeadEstimate 10) and beats pattern 1's full scan.
			name: "estimator-cheapest-first",
			q: Q(
				P(V("a"), V("x")),
				P(V("y"), V("x")),
				P(C(tuple.Int(7)), V("a")),
			),
			src:  &stubEstimator{},
			want: []int{2, 0, 1},
		},
		{
			// Estimator tie-break: identical costs keep written order.
			name: "estimator-tie-written-order",
			q: Q(
				P(C(tuple.Int(1)), V("p")),
				P(C(tuple.Int(2)), V("q")),
			),
			src:  &stubEstimator{},
			want: []int{0, 1},
		},
		{
			// A constant non-lead field with a cheap field-index bucket
			// overtakes a runtime-known lead whose mean bucket is larger.
			name: "estimator-field-selectivity",
			q: Q(
				P(V("r"), V("s")),
				P(V("w"), C(label), C(tuple.Int(3))),
			),
			base: expr.Env{"r": tuple.Int(1)},
			src: &stubEstimator{
				leadVal:  map[string]float64{tuple.Int(1).String(): 50},
				fieldVal: map[string]float64{"2:" + tuple.Int(3).String(): 4},
			},
			want: []int{1, 0},
		},
		{
			// An unbound variable field is NOT a selector at plan time: the
			// pattern costs a full arity scan until the variable is bound,
			// so the lead-known pattern still goes first.
			name: "estimator-unbound-field-var",
			q: Q(
				P(V("m"), C(label), V("g")),
				P(C(tuple.Int(9)), V("g")),
			),
			src: &stubEstimator{
				field: map[[2]int]float64{{3, 2}: 1},
			},
			want: []int{1, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			positives := make([]int, 0, len(tc.q.Patterns))
			for i, p := range tc.q.Patterns {
				if !p.Negated {
					positives = append(positives, i)
				}
			}
			got := planJoinOrder(tc.q, positives, tc.base, tc.src)
			if len(got) != len(tc.want) {
				t.Fatalf("plan = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("plan = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// sameSolutionSet compares solution multisets by canonical rendering.
func sameSolutionSet(a, b []Binding) bool {
	key := func(bd Binding) string {
		var parts []string
		var names []string
		for k := range bd.Env {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			parts = append(parts, k+"="+bd.Env[k].String())
		}
		var ids []string
		for _, id := range bd.RetractedIDs() {
			ids = append(ids, tuple.New(tuple.Int(int64(id))).String())
		}
		sort.Strings(ids)
		return strings.Join(parts, ",") + "|" + strings.Join(ids, ",")
	}
	ka := make(map[string]int)
	for _, bd := range a {
		ka[key(bd)]++
	}
	for _, bd := range b {
		ka[key(bd)]--
	}
	for _, c := range ka {
		if c != 0 {
			return false
		}
	}
	return len(a) == len(b)
}
