package pattern

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// countingSource counts tuples visited by scans.
type countingSource struct {
	inner   *sliceSource
	visited int
}

func (c *countingSource) Scan(arity int, lead tuple.Value, leadKnown bool, fn func(tuple.ID, tuple.Tuple) bool) {
	if leadKnown {
		// Emulate an index: visit only matching-lead tuples.
		c.inner.Scan(arity, lead, true, func(id tuple.ID, t tuple.Tuple) bool {
			c.visited++
			return fn(id, t)
		})
		return
	}
	c.inner.Scan(arity, lead, false, func(id tuple.ID, t tuple.Tuple) bool {
		c.visited++
		return fn(id, t)
	})
}

func TestPlannerReducesScans(t *testing.T) {
	// Written order starts with an unbounded arity-3 scan; the planner
	// starts from the constant-led adjacency pattern <7, p2>, after which
	// the label pattern's lead is bound and both scans hit index buckets.
	var ts []tuple.Tuple
	for i := int64(0); i < 50; i++ {
		ts = append(ts, tuple.New(tuple.Int(i), tuple.Int((i+1)%50)))                   // adjacency
		ts = append(ts, tuple.New(tuple.Int(i), tuple.Atom("label"), tuple.Int(i)))     // labels
		ts = append(ts, tuple.New(tuple.Int(i), tuple.Atom("noise"), tuple.Int(100+i))) // noise
	}
	q := Q(
		P(V("p2"), C(tuple.Atom("label")), V("l2")), // written first: full arity-3 scan
		P(C(tuple.Int(7)), V("p2")),                 // constant lead: one bucket
	)

	run := func(plan Plan) (int, bool) {
		q := q
		q.Plan = plan
		src := &countingSource{inner: &sliceSource{tuples: ts}}
		_, found, err := Solve(q, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		return src.visited, found
	}
	unplannedVisits, f1 := run(PlanWritten)
	plannedVisits, f2 := run(PlanAuto)
	if f1 != f2 {
		t.Fatalf("planned/unplanned disagree: %v vs %v", f1, f2)
	}
	if !f1 {
		t.Fatal("query should succeed")
	}
	if plannedVisits >= unplannedVisits {
		t.Errorf("planner did not reduce scans: planned=%d unplanned=%d",
			plannedVisits, unplannedVisits)
	}
}

func TestPlannerRespectsComputedFieldDependencies(t *testing.T) {
	// <k, v> binds k; <k+1, w> must stay after it even though it has a
	// "known" lead expression — its variable is unbound initially.
	s := src(
		tuple.New(tuple.Int(1), tuple.Int(10)),
		tuple.New(tuple.Int(2), tuple.Int(20)),
	)
	q := Q(
		P(pattern_E_add("k"), V("w")), // written first, depends on k
		P(V("k"), V("v")).Guarded(expr.Eq(expr.V("k"), expr.Const(tuple.Int(1)))),
	)
	sols, err := SolveAll(QAll(q.Patterns...).Where(q.Test), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %d", len(sols))
	}
	if sols[0].Env["w"] != tuple.Int(20) {
		t.Errorf("w = %v", sols[0].Env["w"])
	}
}

func pattern_E_add(name string) Field {
	return E(expr.Add(expr.V(name), expr.Const(tuple.Int(1))))
}

// Property: planned and written-order evaluation produce the same solution
// multiset for random queries over random stores.
func TestQuickPlannerPreservesSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		var ts []tuple.Tuple
		n := 5 + rng.Intn(15)
		for i := 0; i < n; i++ {
			ts = append(ts, tuple.New(
				tuple.Int(int64(rng.Intn(4))),
				tuple.Int(int64(rng.Intn(4))),
			))
		}
		s := src(ts...)
		// Random 2-3 pattern query over shared variables.
		vars := []string{"a", "b", "c"}
		mk := func() Pattern {
			f := func() Field {
				switch rng.Intn(3) {
				case 0:
					return C(tuple.Int(int64(rng.Intn(4))))
				case 1:
					return V(vars[rng.Intn(len(vars))])
				default:
					return W()
				}
			}
			p := P(f(), f())
			if rng.Intn(2) == 0 {
				p.Retract = true
			}
			return p
		}
		pats := []Pattern{mk(), mk()}
		if rng.Intn(2) == 0 {
			pats = append(pats, mk())
		}
		qAuto := Query{Quant: ForAll, Patterns: pats, Plan: PlanAuto}
		qWritten := Query{Quant: ForAll, Patterns: pats, Plan: PlanWritten}
		a, err := SolveAll(qAuto, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveAll(qWritten, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolutionSet(a, b) {
			t.Fatalf("trial %d: planner changed solutions\npatterns: %v\nauto: %d sols, written: %d sols",
				trial, pats, len(a), len(b))
		}
	}
}

// sameSolutionSet compares solution multisets by canonical rendering.
func sameSolutionSet(a, b []Binding) bool {
	key := func(bd Binding) string {
		var parts []string
		var names []string
		for k := range bd.Env {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			parts = append(parts, k+"="+bd.Env[k].String())
		}
		var ids []string
		for _, id := range bd.RetractedIDs() {
			ids = append(ids, tuple.New(tuple.Int(int64(id))).String())
		}
		sort.Strings(ids)
		return strings.Join(parts, ",") + "|" + strings.Join(ids, ",")
	}
	ka := make(map[string]int)
	for _, bd := range a {
		ka[key(bd)]++
	}
	for _, bd := range b {
		ka[key(bd)]--
	}
	for _, c := range ka {
		if c != 0 {
			return false
		}
	}
	return len(a) == len(b)
}
