package pattern

import (
	"testing"

	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// FuzzMatch drives MatchInto with randomly decoded (pattern, tuple,
// pre-bound environment) triples and checks it against naiveMatch, an
// independently written structural walk with none of MatchInto's
// copy-on-write optimization. The two must agree on the match verdict and
// on every binding, and MatchInto must never mutate the caller's
// environment.

// fuzz value/expression/variable pools: small enough that random inputs
// collide often (bound-variable re-checks, expression equalities actually
// firing), rich enough to cover every Value kind.
var (
	fuzzVals = []tuple.Value{
		tuple.Atom("a"), tuple.Atom("b"),
		tuple.Int(0), tuple.Int(1), tuple.Int(2),
		tuple.Float(1.5), tuple.String("s"), tuple.Bool(true),
	}
	fuzzNames = []string{"x", "y", "z"}
)

func fuzzExpr(b byte) expr.Expr {
	switch b % 4 {
	case 0:
		return expr.Const(fuzzVals[int(b/4)%len(fuzzVals)])
	case 1:
		return expr.V(fuzzNames[int(b/4)%len(fuzzNames)])
	case 2:
		return expr.Add(expr.V(fuzzNames[int(b/4)%len(fuzzNames)]), expr.Const(tuple.Int(1)))
	default:
		return expr.Mul(expr.Const(tuple.Int(2)), expr.Const(tuple.Int(int64(b/4)%5)))
	}
}

// decode consumes data into a (pattern, tuple, env) triple. Every byte
// string decodes to something valid; exhausted input reads zeros.
func decodeMatchInput(data []byte) (Pattern, tuple.Tuple, expr.Env) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	pat := Pattern{}
	for n := int(next()) % 5; len(pat.Fields) < n; {
		switch k := next(); k % 4 {
		case 0:
			pat.Fields = append(pat.Fields, C(fuzzVals[int(next())%len(fuzzVals)]))
		case 1:
			pat.Fields = append(pat.Fields, W())
		case 2:
			pat.Fields = append(pat.Fields, V(fuzzNames[int(next())%len(fuzzNames)]))
		default:
			pat.Fields = append(pat.Fields, E(fuzzExpr(next())))
		}
	}
	vals := make([]tuple.Value, int(next())%5)
	for i := range vals {
		vals[i] = fuzzVals[int(next())%len(fuzzVals)]
	}
	env := expr.Env{}
	for i := int(next()) % 3; i > 0; i-- {
		env[fuzzNames[int(next())%len(fuzzNames)]] = fuzzVals[int(next())%len(fuzzVals)]
	}
	return pat, tuple.New(vals...), env
}

// naiveMatch is the oracle: the textbook definition of pattern matching,
// cloning the environment up front and extending it in place.
func naiveMatch(p Pattern, t tuple.Tuple, env expr.Env) (expr.Env, bool) {
	if t.Arity() != len(p.Fields) {
		return nil, false
	}
	out := expr.Env{}
	for k, v := range env {
		out[k] = v
	}
	for i, f := range p.Fields {
		fv := t.Field(i)
		switch f.Kind {
		case FieldWildcard:
		case FieldConst:
			if !f.Value.Equal(fv) {
				return nil, false
			}
		case FieldVar:
			if bound, ok := out[f.Name]; ok {
				if !bound.Equal(fv) {
					return nil, false
				}
			} else {
				out[f.Name] = fv
			}
		case FieldExpr:
			want, err := f.Expr.Eval(out)
			if err != nil || !want.Equal(fv) {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	return out, true
}

func sameEnv(a, b expr.Env) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

func FuzzMatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 2, 0, 2, 0, 1, 1, 2, 0}) // const+var vs 2-tuple, one binding
	f.Add([]byte{3, 2, 0, 2, 0, 3, 1, 3, 0, 1, 2, 0})
	f.Add([]byte{4, 1, 3, 5, 2, 1, 2, 2, 4, 2, 3, 4, 2, 1, 0, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		pat, tup, env := decodeMatchInput(data)
		before := expr.Env{}
		for k, v := range env {
			before[k] = v
		}

		gotEnv, gotOK := pat.MatchInto(tup, env)
		wantEnv, wantOK := naiveMatch(pat, tup, env)

		if gotOK != wantOK {
			t.Fatalf("match(%s, %s, %v) = %v, oracle says %v", pat, tup, before, gotOK, wantOK)
		}
		if gotOK && !sameEnv(gotEnv, wantEnv) {
			t.Fatalf("match(%s, %s, %v): env %v, oracle %v", pat, tup, before, gotEnv, wantEnv)
		}
		if !gotOK && !sameEnv(gotEnv, before) {
			t.Fatalf("failed match returned altered env %v, had %v", gotEnv, before)
		}
		// The caller's map must be untouched either way.
		if !sameEnv(env, before) {
			t.Fatalf("MatchInto mutated caller env: %v, had %v", env, before)
		}
	})
}
