package proplist

import (
	"context"
	"sort"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/workload"
)

func newRT(t *testing.T) (*dataspace.Store, *process.Runtime) {
	t.Helper()
	s := dataspace.New()
	rt := process.NewRuntime(txn.New(s, txn.Coarse), nil)
	t.Cleanup(func() {
		rt.Shutdown()
		rt.Consensus().Close()
	})
	return s, rt
}

func waitRT(t *testing.T, rt *process.Runtime) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.WaitCtx(ctx); err != nil {
		t.Fatalf("wait: %v (running=%d)", err, rt.Running())
	}
	for _, err := range rt.Errors() {
		t.Errorf("process error: %v", err)
	}
}

func TestSearchFindsProperty(t *testing.T) {
	s, rt := newRT(t)
	nodes := workload.PropertyList(12, 3)
	workload.LoadPropertyList(s, nodes)
	if err := rt.Define(SearchDef()); err != nil {
		t.Fatal(err)
	}
	target := nodes[9]
	if _, err := rt.Spawn("Search", tuple.Int(nodes[0].ID), tuple.Atom(target.Name)); err != nil {
		t.Fatal(err)
	}
	waitRT(t, rt)
	val, found, present := Result(s, target.Name)
	if !present || !found || val != target.Value {
		t.Errorf("result = %d found=%v present=%v, want %d", val, found, present, target.Value)
	}
	// One process per visited node: 10 hops to reach node 10.
	if rt.SpawnCount() != 10 {
		t.Errorf("spawned = %d, want 10", rt.SpawnCount())
	}
}

func TestSearchNotFound(t *testing.T) {
	s, rt := newRT(t)
	nodes := workload.PropertyList(5, 3)
	workload.LoadPropertyList(s, nodes)
	if err := rt.Define(SearchDef()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("Search", tuple.Int(1), tuple.Atom("nosuch")); err != nil {
		t.Fatal(err)
	}
	waitRT(t, rt)
	_, found, present := Result(s, "nosuch")
	if !present || found {
		t.Errorf("found=%v present=%v, want not_found", found, present)
	}
}

func TestFindContentAddressable(t *testing.T) {
	s, rt := newRT(t)
	nodes := workload.PropertyList(12, 3)
	workload.LoadPropertyList(s, nodes)
	if err := rt.Define(FindDef()); err != nil {
		t.Fatal(err)
	}
	target := nodes[7]
	if _, err := rt.Spawn("Find", tuple.Atom(target.Name)); err != nil {
		t.Fatal(err)
	}
	waitRT(t, rt)
	val, found, present := Result(s, target.Name)
	if !present || !found || val != target.Value {
		t.Errorf("result = %d, want %d", val, target.Value)
	}
	if rt.SpawnCount() != 1 {
		t.Errorf("spawned = %d, want 1 (no traversal)", rt.SpawnCount())
	}
}

func TestFindNotFound(t *testing.T) {
	s, rt := newRT(t)
	workload.LoadPropertyList(s, workload.PropertyList(4, 3))
	if err := rt.Define(FindDef()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Spawn("Find", tuple.Atom("missing")); err != nil {
		t.Fatal(err)
	}
	waitRT(t, rt)
	_, found, present := Result(s, "missing")
	if !present || found {
		t.Errorf("found=%v present=%v", found, present)
	}
}

func TestSortOrdersValuesAndTerminates(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16} {
		n := n
		t.Run(string(rune('a'+n%26)), func(t *testing.T) {
			s, rt := newRT(t)
			nodes := workload.PropertyList(n, int64(n)*7)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := RunSort(ctx, rt, nodes); err != nil {
				t.Fatal(err)
			}
			got, err := Values(s, n)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]int64, n)
			copy(want, got)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("not sorted: %v", got)
				}
			}
			// The payload multiset must be preserved.
			orig := make([]int64, 0, n)
			for _, nd := range nodes {
				orig = append(orig, nd.Value)
			}
			sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
			for i := range orig {
				if orig[i] != want[i] {
					t.Fatalf("values changed: got %v want %v", want, orig)
				}
			}
			if fires := rt.Consensus().Fires(); n > 1 && fires != 1 {
				t.Errorf("consensus fires = %d, want 1", fires)
			}
		})
	}
}

func TestValuesErrorOnMissingNodes(t *testing.T) {
	s, _ := newRT(t)
	if _, err := Values(s, 3); err == nil {
		t.Error("Values on empty store should fail")
	}
}
