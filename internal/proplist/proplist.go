// Package proplist implements the paper's §3.2 property-list programs over
// the SDL runtime: Search (simulated recursive traversal, one process per
// hop), Find (content-addressable lookup), and the distributed Sort whose
// termination is detected by a consensus transaction over the community of
// adjacent-pair processes.
//
// The list is stored as <node_id, property_name, value, next_node_id>
// tuples, exactly as in the paper; `nil` is the atom closing the list.
package proplist

import (
	"context"
	"fmt"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/view"
	"github.com/sdl-lang/sdl/internal/workload"
)

// Atoms used by the programs.
var (
	atomNil      = tuple.Atom("nil")
	atomResult   = tuple.Atom("result")
	atomNotFound = tuple.Atom("not_found")
)

// SearchDef returns the paper's Search(id, P) process: it looks for
// property P at node id and recurses by spawning a new Search on the next
// node ("in place of the normal recursive calls, a new process is created
// to continue the search").
//
//	PROCESS Search(id, P)
//	  ∃ν: <id, P, ν, *>            → (result, ν)
//	  ∃π: <id, π, *, nil> : π ≠ P  → (result, not_found)
//	  ∃π,ι: <id, π, *, ι> : π ≠ P, ι ≠ nil → Search(ι, P)
func SearchDef() *process.Definition {
	return &process.Definition{
		Name:   "Search",
		Params: []string{"id", "P"},
		Body: []process.Stmt{process.Select{Branches: []process.Branch{
			{Guard: process.Transact{
				Kind:    process.Immediate,
				Query:   pattern.Q(pattern.P(pattern.V("id"), pattern.V("P"), pattern.V("v"), pattern.W())),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atomResult), pattern.V("P"), pattern.V("v"))},
			}},
			{Guard: process.Transact{
				Kind: process.Immediate,
				Query: pattern.Q(pattern.P(pattern.V("id"), pattern.V("pi"), pattern.W(), pattern.C(atomNil))).
					Where(expr.Ne(expr.V("pi"), expr.V("P"))),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atomResult), pattern.V("P"), pattern.C(atomNotFound))},
			}},
			{Guard: process.Transact{
				Kind: process.Immediate,
				Query: pattern.Q(pattern.P(pattern.V("id"), pattern.V("pi"), pattern.W(), pattern.V("i"))).
					Where(expr.And(
						expr.Ne(expr.V("pi"), expr.V("P")),
						expr.Ne(expr.V("i"), expr.Const(atomNil)),
					)),
				Actions: []process.Action{process.Spawn{
					Type: "Search",
					Args: []expr.Expr{expr.V("i"), expr.V("P")},
				}},
			}},
		}}},
	}
}

// FindDef returns the paper's Find(P) process: content-addressable lookup,
// no traversal.
//
//	PROCESS Find(P)
//	  ∃ν: <*, P, ν, *>  → (result, ν)
//	  ¬∃ν: <*, P, ν, *> → (result, not_found)
func FindDef() *process.Definition {
	return &process.Definition{
		Name:   "Find",
		Params: []string{"P"},
		Body: []process.Stmt{process.Select{Branches: []process.Branch{
			{Guard: process.Transact{
				Kind:    process.Immediate,
				Query:   pattern.Q(pattern.P(pattern.W(), pattern.V("P"), pattern.V("v"), pattern.W())),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atomResult), pattern.V("P"), pattern.V("v"))},
			}},
			{Guard: process.Transact{
				Kind:    process.Immediate,
				Query:   pattern.Q(pattern.N(pattern.W(), pattern.V("P"), pattern.W(), pattern.W())),
				Asserts: []pattern.Pattern{pattern.P(pattern.C(atomResult), pattern.V("P"), pattern.C(atomNotFound))},
			}},
		}}},
	}
}

// sortView is the Sort process's view: exactly the two nodes it owns.
//
//	IMPORT <node_id,*,*,*>, <next_node_id,*,*,*>
//	EXPORT <node_id,*,*,*>, <next_node_id,*,*,*>
func sortView(env expr.Env) view.View {
	clause := view.Union(
		view.Pat(pattern.P(pattern.V("a"), pattern.W(), pattern.W(), pattern.W())),
		view.Pat(pattern.P(pattern.V("b"), pattern.W(), pattern.W(), pattern.W())),
	)
	_ = env
	return view.New(clause, clause)
}

// SortDef returns the adjacent-pair Sort(a, b) process: it swaps the
// (name, value) payloads of nodes a and b whenever they are out of order
// by value, and participates in the community-wide consensus that detects
// global sortedness and terminates every Sort process together.
func SortDef() *process.Definition {
	swapGuard := process.Transact{
		Kind: process.Immediate,
		Query: pattern.Q(
			pattern.R(pattern.V("a"), pattern.V("n1"), pattern.V("v1"), pattern.V("x")),
			pattern.R(pattern.V("b"), pattern.V("n2"), pattern.V("v2"), pattern.V("y")),
		).Where(expr.Gt(expr.V("v1"), expr.V("v2"))),
		Asserts: []pattern.Pattern{
			pattern.P(pattern.V("a"), pattern.V("n2"), pattern.V("v2"), pattern.V("x")),
			pattern.P(pattern.V("b"), pattern.V("n1"), pattern.V("v1"), pattern.V("y")),
		},
	}
	orderedGuard := process.Transact{
		Kind: process.Consensus,
		Query: pattern.Q(
			pattern.P(pattern.V("a"), pattern.W(), pattern.V("v1"), pattern.W()),
			pattern.P(pattern.V("b"), pattern.W(), pattern.V("v2"), pattern.W()),
		).Where(expr.Le(expr.V("v1"), expr.V("v2"))),
		Actions: []process.Action{process.Exit{}},
	}
	return &process.Definition{
		Name:   "Sort",
		Params: []string{"a", "b"},
		View:   sortView,
		Body: []process.Stmt{process.Repeat{Branches: []process.Branch{
			{Guard: swapGuard},
			{Guard: orderedGuard},
		}}},
	}
}

// RunSort loads the list, spawns one Sort process per adjacent pair, and
// waits for the consensus-detected termination.
func RunSort(ctx context.Context, rt *process.Runtime, nodes []workload.PropertyNode) error {
	workload.LoadPropertyList(rt.Engine().Store(), nodes)
	if err := rt.Define(SortDef()); err != nil {
		return err
	}
	// Spawn the whole community as a group: the termination consensus is
	// over every adjacent pair, so no member may start (and possibly reach
	// a partial consensus) before all members are registered.
	reqs := make([]process.SpawnReq, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		reqs = append(reqs, process.SpawnReq{
			Type: "Sort",
			Args: []tuple.Value{tuple.Int(nodes[i].ID), tuple.Int(nodes[i+1].ID)},
		})
	}
	if _, err := rt.SpawnGroup(reqs); err != nil {
		return err
	}
	if err := rt.WaitCtx(ctx); err != nil {
		return err
	}
	if errs := rt.Errors(); len(errs) > 0 {
		return fmt.Errorf("proplist: sort: %w", errs[0])
	}
	return nil
}

// Values reads back the per-position values of the list (indexed by
// 1-based node_id) for verification.
func Values(s *dataspace.Store, n int) ([]int64, error) {
	out := make([]int64, n)
	seen := 0
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			if inst.Tuple.Arity() != 4 {
				return true
			}
			id, ok := inst.Tuple.Field(0).AsInt()
			if !ok || id < 1 || id > int64(n) {
				return true
			}
			v, _ := inst.Tuple.Field(2).AsInt()
			out[id-1] = v
			seen++
			return true
		})
	})
	if seen != n {
		return nil, fmt.Errorf("proplist: found %d of %d nodes", seen, n)
	}
	return out, nil
}

// Result reads the <result, P, v> tuple left by Search/Find; found is
// false when the value is the not_found atom.
func Result(s *dataspace.Store, prop string) (val int64, found, present bool) {
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(3, atomResult, true, func(_ tuple.ID, tp tuple.Tuple) bool {
			if !tp.Field(1).Equal(tuple.Atom(prop)) {
				return true
			}
			present = true
			if v, ok := tp.Field(2).AsInt(); ok {
				val, found = v, true
			}
			return false
		})
	})
	return val, found, present
}
