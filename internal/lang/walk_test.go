package lang

import (
	"testing"
)

const walkSrc = `
process Stage(k)
import <item, k, *>; <done, *> where k > 0
export <item, k + 1, *>
behavior
  rep {
    exists v: <item, k, ?v>!, not <halt, *> where ?v > 0
      => <item, k + 1, ?v>, let N = ?v + 1
  | not <item, k, *> -> exit
  };
  sel {
    <done, k> -> spawn Stage(k + 1), skip
  | true -> abort
  }
end

main
  -> <item, 1, min(3, 4)>;
  spawn Stage(1)
end
`

func TestWalkVisitsEveryNodeKind(t *testing.T) {
	prog, err := Parse(walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	kind := func(n Node) string {
		switch n.(type) {
		case *Program:
			return "Program"
		case *ProcessDecl:
			return "ProcessDecl"
		case *MainDecl:
			return "MainDecl"
		case ViewRule:
			return "ViewRule"
		case *TxnNode:
			return "TxnNode"
		case *SelNode:
			return "SelNode"
		case *RepNode:
			return "RepNode"
		case *ParNode:
			return "ParNode"
		case BranchNode:
			return "BranchNode"
		case QueryItem:
			return "QueryItem"
		case PatternNode:
			return "PatternNode"
		case WildField:
			return "WildField"
		case ExprField:
			return "ExprField"
		case AssertAction:
			return "AssertAction"
		case LetAction:
			return "LetAction"
		case SpawnAction:
			return "SpawnAction"
		case ExitAction:
			return "ExitAction"
		case AbortAction:
			return "AbortAction"
		case SkipAction:
			return "SkipAction"
		case *LitNode:
			return "LitNode"
		case *IdentNode:
			return "IdentNode"
		case *VarNode:
			return "VarNode"
		case *BinNode:
			return "BinNode"
		case *UnNode:
			return "UnNode"
		case *CallNode:
			return "CallNode"
		}
		return "?"
	}
	Walk(prog, func(n Node) bool {
		seen[kind(n)] = true
		return true
	})
	want := []string{
		"Program", "ProcessDecl", "MainDecl", "ViewRule", "TxnNode",
		"SelNode", "RepNode", "BranchNode", "QueryItem", "PatternNode",
		"WildField", "ExprField", "AssertAction", "LetAction", "SpawnAction",
		"ExitAction", "AbortAction", "SkipAction", "LitNode", "IdentNode",
		"VarNode", "BinNode", "CallNode",
	}
	for _, k := range want {
		if !seen[k] {
			t.Errorf("Walk never visited a %s", k)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	prog, err := Parse(walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Pruning at every TxnNode must suppress all pattern visits.
	patterns := 0
	Walk(prog, func(n Node) bool {
		switch n.(type) {
		case *TxnNode:
			return false
		case PatternNode:
			patterns++
		}
		return true
	})
	if patterns != 3 { // only the three view-rule patterns remain
		t.Errorf("pruned walk saw %d patterns, want 3 (view rules only)", patterns)
	}
}

// TestParsedPositionsNonZero is the contract the analyzer's diagnostics
// rely on: every positioned node produced by the parser carries a real
// line:col, including the nodes that historically dropped it (view rules,
// query items, quantifier declarations).
func TestParsedPositionsNonZero(t *testing.T) {
	prog, err := Parse(walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	Walk(prog, func(n Node) bool {
		if pos, ok := NodePos(n); ok {
			if pos.Line < 1 || pos.Col < 1 {
				t.Errorf("node %T has zero position %v", n, pos)
			}
		}
		if tx, ok := n.(*TxnNode); ok {
			if len(tx.DeclVarPos) != len(tx.DeclVars) {
				t.Errorf("txn at %v: %d decl vars but %d positions",
					tx.Pos, len(tx.DeclVars), len(tx.DeclVarPos))
			}
			for i, p := range tx.DeclVarPos {
				if p.Line < 1 || p.Col < 1 {
					t.Errorf("decl var %s has zero position", tx.DeclVars[i])
				}
			}
		}
		return true
	})
}
