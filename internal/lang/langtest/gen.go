// Package langtest generates random well-formed SDL ASTs for property
// tests: the front-end's format/parse fixpoint test and the static
// analyzer's fuzz harness both drive it from a seeded rand source, so a
// failure reproduces from its seed alone.
package langtest

import (
	"math/rand"

	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Gen is a deterministic random AST generator.
type Gen struct{ rng *rand.Rand }

// NewGen returns a generator driven by rng.
func NewGen(rng *rand.Rand) *Gen { return &Gen{rng: rng} }

func (g *Gen) ident() string {
	names := []string{"alpha", "beta", "k", "j", "node", "value"}
	return names[g.rng.Intn(len(names))]
}

func (g *Gen) varName() string {
	names := []string{"a", "b", "v", "x", "y"}
	return names[g.rng.Intn(len(names))]
}

// Expr generates an expression of at most the given depth.
func (g *Gen) Expr(depth int) lang.ExprNode {
	if depth <= 0 {
		switch g.rng.Intn(4) {
		case 0:
			return &lang.LitNode{Value: tuple.Int(int64(g.rng.Intn(100) - 50))}
		case 1:
			return &lang.LitNode{Value: tuple.Bool(g.rng.Intn(2) == 0)}
		case 2:
			return &lang.VarNode{Name: g.varName()}
		default:
			return &lang.IdentNode{Name: g.ident()}
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		ops := []lang.TokKind{lang.TokPlus, lang.TokMinus, lang.TokStar, lang.TokSlash, lang.TokPercent}
		return &lang.BinNode{Op: ops[g.rng.Intn(len(ops))],
			L: g.Expr(depth - 1), R: g.Expr(depth - 1)}
	case 1:
		ops := []lang.TokKind{lang.TokEQ, lang.TokNE, lang.TokLT, lang.TokLE, lang.TokGT, lang.TokGE}
		return &lang.BinNode{Op: ops[g.rng.Intn(len(ops))],
			L: g.Expr(depth - 1), R: g.Expr(depth - 1)}
	case 2:
		ops := []lang.TokKind{lang.TokAnd, lang.TokOr}
		return &lang.BinNode{Op: ops[g.rng.Intn(len(ops))],
			L: g.Expr(depth - 1), R: g.Expr(depth - 1)}
	case 3:
		if g.rng.Intn(2) == 0 {
			return &lang.UnNode{Op: lang.TokNot, X: g.Expr(depth - 1)}
		}
		return &lang.UnNode{Op: lang.TokMinus, X: g.Expr(depth - 1)}
	case 4:
		return &lang.CallNode{Name: "min", Args: []lang.ExprNode{g.Expr(depth - 1), g.Expr(depth - 1)}}
	default:
		return g.Expr(0)
	}
}

// Pattern generates a tuple pattern of 1–3 fields.
func (g *Gen) Pattern() lang.PatternNode {
	n := 1 + g.rng.Intn(3)
	fields := make([]lang.FieldNode, n)
	for i := range fields {
		switch g.rng.Intn(4) {
		case 0:
			fields[i] = lang.WildField{}
		case 1:
			fields[i] = lang.ExprField{Expr: &lang.VarNode{Name: g.varName()}}
		case 2:
			fields[i] = lang.ExprField{Expr: &lang.IdentNode{Name: g.ident()}}
		default:
			fields[i] = lang.ExprField{Expr: g.Expr(1)}
		}
	}
	return lang.PatternNode{Fields: fields}
}

// Txn generates a transaction; allowBlocking admits delayed and consensus
// tags.
func (g *Gen) Txn(allowBlocking bool) *lang.TxnNode {
	t := &lang.TxnNode{Tag: lang.TagImmediate}
	if allowBlocking {
		t.Tag = []lang.TagKind{lang.TagImmediate, lang.TagDelayed, lang.TagConsensus}[g.rng.Intn(3)]
	}
	switch g.rng.Intn(3) {
	case 0: // pattern query
		if g.rng.Intn(3) == 0 { // quantifier prefix
			t.Quant = []lang.QuantKind{lang.QuantExists, lang.QuantForall}[g.rng.Intn(2)]
			for i := 1 + g.rng.Intn(2); i > 0; i-- {
				t.DeclVars = append(t.DeclVars, g.varName())
			}
		}
		n := 1 + g.rng.Intn(2)
		for i := 0; i < n; i++ {
			item := lang.QueryItem{Pattern: g.Pattern()}
			switch g.rng.Intn(3) {
			case 0:
				item.Retract = true
			case 1:
				item.Negated = true
			}
			t.Items = append(t.Items, item)
		}
		if g.rng.Intn(2) == 0 {
			t.Where = g.Expr(2)
		}
	case 1: // test-only query
		t.Where = g.Expr(2)
	default: // empty query
	}
	// Actions.
	for i := g.rng.Intn(3); i > 0; i-- {
		switch g.rng.Intn(5) {
		case 0:
			t.Actions = append(t.Actions, lang.AssertAction{Pattern: g.Pattern()})
		case 1:
			t.Actions = append(t.Actions, lang.LetAction{Name: "N", Expr: g.Expr(1)})
		case 2:
			t.Actions = append(t.Actions, lang.ExitAction{})
		case 3:
			t.Actions = append(t.Actions, lang.SkipAction{})
		default:
			t.Actions = append(t.Actions, lang.AbortAction{})
		}
	}
	return t
}

// Stmt generates a statement of at most the given nesting depth.
func (g *Gen) Stmt(depth int) lang.StmtNode {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.Txn(true)
	}
	branches := make([]lang.BranchNode, 1+g.rng.Intn(2))
	for i := range branches {
		branches[i] = lang.BranchNode{Guard: g.Txn(true)}
		for j := g.rng.Intn(2); j > 0; j-- {
			branches[i].Body = append(branches[i].Body, g.Stmt(depth-1))
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		return &lang.SelNode{Branches: branches}
	case 1:
		return &lang.RepNode{Branches: branches}
	default:
		// Replication guards must be immediate for the compiler, but the
		// formatter/parser round trip does not compile, so any tag is fine
		// syntactically; still keep it immediate for realism.
		for i := range branches {
			branches[i].Guard.Tag = lang.TagImmediate
		}
		return &lang.ParNode{Branches: branches}
	}
}

// Program generates a whole program: 0–2 process declarations (with
// optional import rules) and a main block.
func (g *Gen) Program() *lang.Program {
	p := &lang.Program{}
	for i := g.rng.Intn(3); i > 0; i-- {
		pd := &lang.ProcessDecl{
			Name:   []string{"Alpha", "Beta", "Gamma"}[g.rng.Intn(3)] + string(rune('A'+g.rng.Intn(26))),
			Params: []string{"k", "j"}[:g.rng.Intn(3)],
		}
		for r := g.rng.Intn(3); r > 0; r-- {
			rule := lang.ViewRule{Pattern: g.Pattern()}
			if g.rng.Intn(2) == 0 {
				rule.Where = g.Expr(1)
			}
			pd.Imports = append(pd.Imports, rule)
		}
		for s := 1 + g.rng.Intn(3); s > 0; s-- {
			pd.Body = append(pd.Body, g.Stmt(2))
		}
		p.Processes = append(p.Processes, pd)
	}
	m := &lang.MainDecl{}
	for s := 1 + g.rng.Intn(3); s > 0; s-- {
		m.Body = append(m.Body, g.Stmt(2))
	}
	p.Main = m
	return p
}
