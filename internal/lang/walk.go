package lang

// Node is any AST node the walker can visit: *Program, *ProcessDecl,
// *MainDecl, ViewRule, the statement nodes, BranchNode, QueryItem,
// PatternNode, the field nodes, the action nodes, and the expression
// nodes. Value-typed nodes (rules, items, fields, actions) are passed to
// the visitor by value.
type Node any

// Walk traverses the AST rooted at n in depth-first source order, calling
// f for each node. If f returns false, the node's children are skipped.
// It is the single traversal shared by the compiler (let collection), the
// formatter's round-trip tests, and the static analyzer.
func Walk(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	walkStmts := func(stmts []StmtNode) {
		for _, s := range stmts {
			Walk(s, f)
		}
	}
	walkBranches := func(bs []BranchNode) {
		for _, b := range bs {
			Walk(b, f)
		}
	}
	switch x := n.(type) {
	case *Program:
		for _, pd := range x.Processes {
			Walk(pd, f)
		}
		if x.Main != nil {
			Walk(x.Main, f)
		}
	case *ProcessDecl:
		for _, r := range x.Imports {
			Walk(r, f)
		}
		for _, r := range x.Exports {
			Walk(r, f)
		}
		walkStmts(x.Body)
	case *MainDecl:
		walkStmts(x.Body)
	case ViewRule:
		Walk(x.Pattern, f)
		if x.Where != nil {
			Walk(x.Where, f)
		}
	case *TxnNode:
		for _, it := range x.Items {
			Walk(it, f)
		}
		if x.Where != nil {
			Walk(x.Where, f)
		}
		for _, a := range x.Actions {
			Walk(a, f)
		}
	case *SelNode:
		walkBranches(x.Branches)
	case *RepNode:
		walkBranches(x.Branches)
	case *ParNode:
		walkBranches(x.Branches)
	case BranchNode:
		Walk(x.Guard, f)
		walkStmts(x.Body)
	case QueryItem:
		Walk(x.Pattern, f)
	case PatternNode:
		for _, fl := range x.Fields {
			Walk(fl, f)
		}
	case ExprField:
		Walk(x.Expr, f)
	case AssertAction:
		Walk(x.Pattern, f)
	case LetAction:
		Walk(x.Expr, f)
	case SpawnAction:
		for _, a := range x.Args {
			Walk(a, f)
		}
	case *BinNode:
		Walk(x.L, f)
		Walk(x.R, f)
	case *UnNode:
		Walk(x.X, f)
	case *CallNode:
		for _, a := range x.Args {
			Walk(a, f)
		}
		// WildField, Exit/Abort/Skip actions, and the leaf expressions
		// (*LitNode, *IdentNode, *VarNode) have no children.
	}
}

// NodePos returns the source position of a node, when it carries one.
// Nodes without an own position (Program, and value nodes that delegate
// to a child) report the position of their leading child.
func NodePos(n Node) (Pos, bool) {
	switch x := n.(type) {
	case *ProcessDecl:
		return x.Pos, true
	case *MainDecl:
		return x.Pos, true
	case ViewRule:
		return x.Pos, true
	case *TxnNode:
		return x.Pos, true
	case *SelNode:
		return x.Pos, true
	case *RepNode:
		return x.Pos, true
	case *ParNode:
		return x.Pos, true
	case BranchNode:
		if x.Guard != nil {
			return x.Guard.Pos, true
		}
	case QueryItem:
		return x.Pos, true
	case PatternNode:
		return x.Pos, true
	case WildField:
		return x.Pos, true
	case ExprField:
		return NodePos(x.Expr)
	case AssertAction:
		return x.Pattern.Pos, true
	case LetAction:
		return x.Pos, true
	case SpawnAction:
		return x.Pos, true
	case ExitAction:
		return x.Pos, true
	case AbortAction:
		return x.Pos, true
	case SkipAction:
		return x.Pos, true
	case *LitNode:
		return x.Pos, true
	case *IdentNode:
		return x.Pos, true
	case *VarNode:
		return x.Pos, true
	case *BinNode:
		return x.Pos, true
	case *UnNode:
		return x.Pos, true
	case *CallNode:
		return x.Pos, true
	}
	return Pos{}, false
}
